package acq

import (
	"context"
	"sync"
	"testing"
	"time"
)

// Two refinement searches on one Session must be safe to run
// concurrently: the engine's statistics, the table stats cache and the
// explorer's counters are all shared state. Run under `go test -race`
// this is the regression test for the batched pipeline's concurrency
// contract.
func TestConcurrentRefineRace(t *testing.T) {
	s, err := NewUsersSession(5000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sqls := []string{
		`SELECT * FROM users CONSTRAINT COUNT(*) = 2000 WHERE age <= 30`,
		`SELECT * FROM users CONSTRAINT COUNT(*) = 1500 WHERE income <= 60000`,
	}
	var wg sync.WaitGroup
	errs := make([]error, len(sqls))
	for i, sql := range sqls {
		wg.Add(1)
		go func(i int, sql string) {
			defer wg.Done()
			q, err := s.Parse(sql)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := s.Refine(q, Options{Gamma: 15, Delta: 0.05})
			if err != nil {
				errs[i] = err
				return
			}
			if !res.Satisfied && res.Closest == nil {
				errs[i] = err
			}
		}(i, sql)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.Queries == 0 {
		t.Error("no evaluation-layer executions recorded")
	}
}

// RefineContext returns the partial result with the context's error
// when cancelled mid-search.
func TestRefineContextCancellation(t *testing.T) {
	s, err := NewUsersSession(20000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 19000 WHERE age <= 20 AND income <= 30000`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := s.RefineContext(ctx, q, Options{Gamma: 0.5, Delta: 0.0001})
	if err == nil {
		// The search can legitimately finish inside the timeout on a
		// fast machine; only a hang or a nil partial result is a bug.
		return
	}
	if res == nil {
		t.Fatal("cancelled RefineContext returned no partial result")
	}
}
