package acq

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"acquire/internal/obs"
)

// promLineRE matches one valid Prometheus text-exposition sample line:
// a metric name with optional labels, a space, and a float value.
var promLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+]?[0-9.eE+-]+|[-+]Inf)$`)

// TestMetricsEndToEnd is the acceptance path of the observability
// layer: a session runs a refinement with a lazily created registry,
// and GET /metrics on the obs mux returns the engine counters,
// per-phase duration histograms and search gauges in valid Prometheus
// text format.
func TestMetricsEndToEnd(t *testing.T) {
	s := tpchSession(t, 2000)
	reg := s.Metrics() // lazy create + attach
	if reg == nil || s.Observer() == nil {
		t.Fatal("Metrics did not attach an observer")
	}
	if got := s.Metrics(); got != reg {
		t.Fatal("Metrics is not idempotent")
	}

	q, err := s.Parse(q2SQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refine(q, Options{Gamma: 40, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.NewMux(reg, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// The engine counters, search gauge and phase histograms from the
	// refinement must all be exposed.
	for _, want := range []string{
		"acquire_engine_queries_total",
		"acquire_engine_rows_scanned_total",
		"acquire_engine_cells_skipped_total",
		"acquire_searches_total 1",
		"acquire_search_layers_explored",
		`acquire_phase_duration_seconds_count{phase="search"} 1`,
		`acquire_phase_duration_seconds_bucket{phase="expand",le="+Inf"}`,
		`acquire_phase_duration_seconds_bucket{phase="fold",le="+Inf"}`,
		`acquire_phase_duration_seconds_bucket{phase="prefetch",le="+Inf"}`,
		`acquire_phase_duration_seconds_bucket{phase="evaluate",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every non-comment line is format-valid.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}

	if resp, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Error(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /healthz: %s", resp.Status)
		}
	}
}

// TestRefineReport exercises the per-search report: deterministic
// fake-clock wall time, a phase breakdown covering the whole pipeline,
// engine counter deltas, and distinct search ids across calls.
func TestRefineReport(t *testing.T) {
	s := tpchSession(t, 2000)
	clk := obs.NewFakeClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	s.Observe(NewObserver(NewMetricsRegistry()).WithClock(clk).WithLogger(logger))

	q, err := s.Parse(q2SQL)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := s.RefineReport(t.Context(), q, Options{Gamma: 40, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("refinement failed: %+v", res)
	}
	if rep.SearchID != "search-1" {
		t.Errorf("SearchID = %q", rep.SearchID)
	}
	if rep.Wall <= 0 {
		t.Errorf("Wall = %v", rep.Wall)
	}
	if rep.Engine.Queries <= 0 || rep.Engine.RowsScanned <= 0 {
		t.Errorf("engine delta not recorded: %+v", rep.Engine)
	}
	for _, phase := range []string{"search", "expand", "prefetch", "fold", "evaluate"} {
		st, ok := rep.Phases[phase]
		if !ok || st.Count == 0 {
			t.Errorf("phase %q missing from report: %+v", phase, rep.Phases)
			continue
		}
		if st.Total <= 0 {
			t.Errorf("phase %q has zero total with auto-advancing clock", phase)
		}
	}
	if st := rep.Phases["search"]; st.Count != 1 {
		t.Errorf("search phase count = %d, want 1", st.Count)
	}

	// Structured events carry the search id.
	if !strings.Contains(buf.String(), `"search_id":"search-1"`) {
		t.Errorf("events missing search_id:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"msg":"search.done"`) {
		t.Errorf("events missing search.done:\n%s", buf.String())
	}

	// Second search gets a fresh id and a fresh phase collector.
	_, rep2, err := s.RefineReport(t.Context(), q, Options{Gamma: 40, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SearchID != "search-2" {
		t.Errorf("second SearchID = %q", rep2.SearchID)
	}
	if rep2.Phases["search"].Count != 1 {
		t.Errorf("phase collector leaked across searches: %+v", rep2.Phases["search"])
	}
}

// TestRefineReportWithoutObserver still yields a usable report (wall
// time and phase breakdown) when nothing was attached.
func TestRefineReportWithoutObserver(t *testing.T) {
	s := tpchSession(t, 1000)
	q, err := s.Parse(q2SQL)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := s.RefineReport(t.Context(), q, Options{Gamma: 40, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SearchID == "" || rep.Phases == nil {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if _, ok := rep.Phases["search"]; !ok {
		t.Errorf("report missing search phase: %+v", rep.Phases)
	}
}
