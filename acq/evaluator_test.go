package acq

import (
	"math"
	"testing"
)

// TestEvaluationLayers runs the same refinement under all three
// evaluation layers (§3) and validates each returned query on the full
// data: exact is exact; sampled and histogram answers land within the
// combined tolerance of δ and the layer's own error.
func TestEvaluationLayers(t *testing.T) {
	s, err := NewUsersSession(30_000, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	const sql = `SELECT * FROM users CONSTRAINT COUNT(*) = 8000
		WHERE age <= 30 AND income <= 60000`
	const delta = 0.05
	target := 8000.0

	trueAggregate := func(rq *RefinedQuery) float64 {
		s.UseExact()
		clone := rq.Base.Clone()
		for i := range clone.Dims {
			clone.Dims[i].Bound = clone.Dims[i].BoundAt(rq.Scores[i])
		}
		v, err := s.Estimate(clone)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	// Exact.
	q, err := s.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := s.Refine(q, Options{Gamma: 12, Delta: delta})
	if err != nil || !exact.Satisfied {
		t.Fatalf("exact: %v %+v", err, exact)
	}
	if v := trueAggregate(exact.Best); math.Abs(v-target)/target > delta+1e-9 {
		t.Errorf("exact layer returned untrue aggregate: %v", v)
	}

	// Sampling at 10%.
	if err := s.UseSampling(0.1, 5); err != nil {
		t.Fatalf("UseSampling: %v", err)
	}
	q2, err := s.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := s.Refine(q2, Options{Gamma: 12, Delta: delta})
	if err != nil {
		t.Fatalf("sampled refine: %v", err)
	}
	if sampled.Satisfied {
		if v := trueAggregate(sampled.Best); math.Abs(v-target)/target > delta+0.12 {
			t.Errorf("sampled answer too far off on true data: %v", v)
		}
	}

	// Histogram estimation.
	if err := s.UseHistograms(64); err != nil {
		t.Fatalf("UseHistograms: %v", err)
	}
	q3, err := s.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.Refine(q3, Options{Gamma: 12, Delta: delta})
	if err != nil {
		t.Fatalf("histogram refine: %v", err)
	}
	if est.Satisfied {
		if v := trueAggregate(est.Best); math.Abs(v-target)/target > delta+0.10 {
			t.Errorf("histogram answer too far off on true data: %v", v)
		}
	}
	// Estimation never scanned rows during the search.
	s.UseExact()
}

func TestUseSamplingValidation(t *testing.T) {
	s, err := NewUsersSession(100, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UseSampling(0, 1); err == nil {
		t.Error("fraction 0: expected error")
	}
	if err := s.UseSampling(2, 1); err == nil {
		t.Error("fraction 2: expected error")
	}
}

func TestHistogramLayerJoinSupport(t *testing.T) {
	s, err := NewTPCHSession(2000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UseHistograms(32); err != nil {
		t.Fatal(err)
	}
	// NOREFINE equi-joins are estimable via the containment formula.
	res, err := s.RefineSQL(`SELECT * FROM part, partsupp CONSTRAINT COUNT(*) = 1200
		WHERE (p_partkey = ps_partkey) NOREFINE AND p_retailprice < 1200`, Options{Gamma: 30, Delta: 0.05})
	if err != nil {
		t.Fatalf("histogram layer on a NOREFINE equi-join: %v", err)
	}
	if !res.Satisfied && res.Closest == nil {
		t.Fatalf("estimated join refinement produced nothing: %+v", res)
	}
	// Refinable join bands need the joint key distribution — rejected.
	_, err = s.RefineSQL(`SELECT * FROM part, partsupp CONSTRAINT COUNT(*) = 100
		WHERE p_partkey = ps_partkey AND p_retailprice < 1200`, Options{})
	if err == nil {
		t.Error("histogram layer on a refinable join band: expected error")
	}
}
