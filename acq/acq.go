// Package acq is the public API of the ACQUIRE reproduction: it
// processes Aggregation Constrained Queries (ACQs) — SQL
// select-project-join queries extended with CONSTRAINT and NOREFINE
// clauses — by refinement, returning the set of minimally refined
// queries whose aggregate meets the constraint.
//
// Typical use:
//
//	s, _ := acq.NewTPCHSession(100_000, 0, 1)
//	res, _ := s.RefineSQL(`
//	    SELECT * FROM supplier, part, partsupp
//	    CONSTRAINT SUM(ps_availqty) >= 0.1M
//	    WHERE (s_suppkey = ps_suppkey) NOREFINE AND
//	          (p_partkey = ps_partkey) NOREFINE AND
//	          (p_retailprice < 1000) AND (s_acctbal < 2000)`,
//	    acq.Options{})
//	fmt.Println(res.Best.ToSQL())
//
// The package re-exports the library's core types by alias so the full
// machinery (engine statistics, norms, baselines, ontologies) is
// reachable without importing internal packages.
package acq

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"acquire/internal/agg"
	"acquire/internal/baseline"
	"acquire/internal/core"
	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/exec/regioncache"
	"acquire/internal/histogram"
	"acquire/internal/norms"
	"acquire/internal/obs"
	"acquire/internal/ontology"
	"acquire/internal/relq"
	"acquire/internal/sqlparse"
	"acquire/internal/tpch"
)

// Re-exported model types. Aliases keep a single definition while
// making the internal machinery usable by downstream importers.
type (
	// Query is an analyzed aggregation constrained query.
	Query = relq.Query
	// Dimension is one refinable predicate.
	Dimension = relq.Dimension
	// FixedPred is a NOREFINE predicate.
	FixedPred = relq.FixedPred
	// Constraint is the CONSTRAINT clause.
	Constraint = relq.Constraint
	// ColumnRef names a table column.
	ColumnRef = relq.ColumnRef
	// RefinedQuery is one refined answer with its scores and aggregate.
	RefinedQuery = relq.RefinedQuery
	// Options tunes the refinement search (γ, δ, norm, ...).
	Options = core.Options
	// Result is the refinement search output.
	Result = core.Result
	// Norm scores refinement vectors (§2.3).
	Norm = norms.Norm
	// Outcome is a baseline comparison record.
	Outcome = baseline.Outcome
	// EngineStats counts evaluation-layer work.
	EngineStats = exec.Stats
	// Taxonomy is an ontology tree for categorical refinement (§7.3).
	Taxonomy = ontology.Tree
	// UDA is a user-defined OSP aggregate (§2.6).
	UDA = agg.UDA
	// Partial is a mergeable aggregate summary fed to UDA finalizers.
	Partial = agg.Partial
	// Tracer receives search events (Options.Trace).
	Tracer = core.Tracer
	// TraceBuffer is a Tracer recording every event.
	TraceBuffer = core.TraceBuffer
	// TraceEvent is one step of the refinement search.
	TraceEvent = core.TraceEvent
	// BinSearchOptions tunes the BinSearch baseline.
	BinSearchOptions = baseline.BinSearchOptions
	// TQGenOptions tunes the TQGen baseline.
	TQGenOptions = baseline.TQGenOptions
)

// Re-exported enumeration values for programmatic query construction.
const (
	// SelectLE is a v <= bound dimension.
	SelectLE = relq.SelectLE
	// SelectGE is a v >= bound dimension.
	SelectGE = relq.SelectGE
	// SelectEQ is a v = bound dimension refined into a band.
	SelectEQ = relq.SelectEQ
	// JoinBand is a refinable join dimension.
	JoinBand = relq.JoinBand

	// FixedRangeKind, FixedEquiJoinKind and FixedStringInKind name the
	// NOREFINE predicate shapes.
	FixedRangeKind    = relq.FixedRange
	FixedEquiJoinKind = relq.FixedEquiJoin
	FixedStringInKind = relq.FixedStringIn

	// AggCount .. AggUser name the constraint aggregates.
	AggCount = relq.AggCount
	AggSum   = relq.AggSum
	AggMin   = relq.AggMin
	AggMax   = relq.AggMax
	AggAvg   = relq.AggAvg
	AggUser  = relq.AggUser

	// CmpEQ .. CmpLT name the constraint comparison operators.
	CmpEQ = relq.CmpEQ
	CmpGE = relq.CmpGE
	CmpGT = relq.CmpGT
	CmpLE = relq.CmpLE
	CmpLT = relq.CmpLT
)

// Norm constructors.

// L1Norm returns the paper's default norm (Eq. 3).
func L1Norm() Norm { return norms.L1{} }

// LpNorm returns a weighted p-norm; weights nil means unweighted.
func LpNorm(p float64, weights []float64) (Norm, error) { return norms.NewLp(p, weights) }

// LInfNorm returns the L∞ norm, optionally weighted.
func LInfNorm(weights []float64) Norm { return norms.LInf{Weights: weights} }

// CustomNorm wraps a user scoring function; it must be monotone and is
// probed for monotonicity at search start.
func CustomNorm(label string, fn func([]float64) float64) Norm {
	return norms.Custom{Fn: fn, Label: label}
}

// NewTaxonomy creates an ontology tree with the given root.
func NewTaxonomy(root string) *Taxonomy { return ontology.NewTree(root) }

// ParseTaxonomy reads a taxonomy from an indentation-based outline
// (see ontology.ParseOutline for the format).
func ParseTaxonomy(r io.Reader) (*Taxonomy, error) { return ontology.ParseOutline(r) }

// LoadTaxonomy reads a taxonomy outline from a file.
func LoadTaxonomy(path string) (*Taxonomy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ontology.ParseOutline(f)
}

// RegisterUDA registers a user-defined aggregate usable in CONSTRAINT
// clauses by name.
func RegisterUDA(u UDA) error { return agg.RegisterUDA(u) }

// Evaluator is the modular evaluation layer of §3; sessions default to
// exact execution and can switch to sampling or histogram estimation.
type Evaluator = core.Evaluator

// Session binds a catalog of tables to an execution engine and an
// evaluation layer for refinement searches.
type Session struct {
	cat *data.Catalog
	eng *exec.Engine
	// sharded, when non-nil, scatter-gathers exact execution across
	// range-partitioned in-process shards (EnableSharding); the
	// monolithic engine stays around for previews and plans.
	sharded *exec.ShardedEvaluator
	// eval answers the refinement search's aggregate queries; defaults
	// to eng (exact execution).
	eval Evaluator
	// obs instruments the session (see Observe/Metrics in observe.go);
	// nil keeps every search uninstrumented at ~zero cost.
	obs *obs.Observer
	// searchSeq numbers RefineReport searches within the session.
	searchSeq atomic.Int64
	// cacheBytes is the region-cache capacity (0 = caching off); kept
	// so an evaluation-layer switch re-attaches an equally sized cache.
	cacheBytes int64
	// autoCluster mirrors the engines' workload-adaptive clustering
	// switch, so EnableSharding can carry it onto fresh shard engines.
	autoCluster bool
	// zorder mirrors the engines' Z-order layout admission, carried onto
	// fresh shard engines the same way.
	zorder bool
}

// NewSession creates an empty session; load tables with LoadCSV or
// build one of the generated datasets with NewTPCHSession /
// NewUsersSession.
func NewSession() *Session {
	cat := data.NewCatalog()
	eng := exec.New(cat)
	return &Session{cat: cat, eng: eng, eval: eng}
}

// NewTPCHSession generates the TPC-H subset of §8.3 (supplier, part,
// partsupp) with `rows` partsupp tuples, Zipf skew z (0 = uniform,
// 1 = the skewed datasets of §8.4.4) and a deterministic seed.
func NewTPCHSession(rows int, z float64, seed int64) (*Session, error) {
	cat, err := tpch.Generate(tpch.Config{Rows: rows, Zipf: z, Seed: seed})
	if err != nil {
		return nil, err
	}
	eng := exec.New(cat)
	return &Session{cat: cat, eng: eng, eval: eng}, nil
}

// NewUsersSession generates the Example-1 advertising dataset.
func NewUsersSession(rows int, z float64, seed int64) (*Session, error) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Zipf: z, Seed: seed})
	if err != nil {
		return nil, err
	}
	eng := exec.New(cat)
	return &Session{cat: cat, eng: eng, eval: eng}, nil
}

// LoadCSV loads a table written by SaveCSV (or any name:TYPE-headed
// CSV) under the given table name.
func (s *Session) LoadCSV(name, path string) error {
	t, err := data.LoadCSVFile(name, path)
	if err != nil {
		return err
	}
	return s.cat.Register(t)
}

// SaveCSV writes a table to path.
func (s *Session) SaveCSV(name, path string) error {
	t, err := s.cat.Table(name)
	if err != nil {
		return err
	}
	return data.SaveCSVFile(t, path)
}

// Tables lists the loaded table names.
func (s *Session) Tables() []string { return s.cat.Names() }

// TableRows returns a table's cardinality.
func (s *Session) TableRows(name string) (int, error) {
	t, err := s.cat.Table(name)
	if err != nil {
		return 0, err
	}
	return t.NumRows(), nil
}

// Parse parses and analyzes an ACQ statement against the session's
// catalog.
func (s *Session) Parse(sql string) (*Query, error) {
	return sqlparse.ParseAndAnalyze(sql, s.cat)
}

// exact returns the exact evaluation layer: the sharded evaluator when
// sharding is enabled, the monolithic engine otherwise.
func (s *Session) exact() exec.Evaluator {
	if s.sharded != nil {
		return s.sharded
	}
	return s.eng
}

// usingExact reports whether s.eval is the exact layer (monolithic or
// sharded), as opposed to sampling or histograms.
func (s *Session) usingExact() bool {
	if e, ok := s.eval.(*exec.Engine); ok {
		return e == s.eng
	}
	if sv, ok := s.eval.(*exec.ShardedEvaluator); ok {
		return sv == s.sharded
	}
	return false
}

// EnableSharding replaces the session's exact evaluation layer with a
// ShardedEvaluator scatter-gathering over n range partitions of the
// catalog's largest table (see exec.NewSharded): every region the
// refinement search dispatches runs on all shards in parallel and the
// per-shard partials fold by the §2.6 merge rule, so results are
// equivalent to the monolithic engine (COUNT/MIN/MAX bit-identical,
// SUM within float re-association tolerance). The session's observer
// and region-cache configuration carry over; shard-local state (grid
// indexes, region caches) lives per shard, so build grid indexes after
// enabling sharding. Previews, plans and materialisation keep using
// the monolithic engine — they need full-catalog row sets, not merged
// partials.
func (s *Session) EnableSharding(n int) error {
	sv, err := exec.NewSharded(s.cat, n)
	if err != nil {
		return err
	}
	sv.SetObserver(s.obs)
	if s.cacheBytes > 0 {
		sv.EnableRegionCache(s.cacheBytes)
	}
	if s.autoCluster {
		sv.SetAutoCluster(true)
	}
	if s.zorder {
		sv.SetZOrder(true)
	}
	wasExact := s.usingExact()
	s.sharded = sv
	if wasExact {
		s.eval = sv
	}
	return nil
}

// DisableSharding restores the monolithic exact engine. Shard-local
// caches and indexes are dropped with the shards.
func (s *Session) DisableSharding() {
	if s.sharded == nil {
		return
	}
	if sv, ok := s.eval.(*exec.ShardedEvaluator); ok && sv == s.sharded {
		s.eval = s.eng
	}
	s.sharded = nil
}

// NumShards reports the active shard count (1 when sharding is off).
func (s *Session) NumShards() int {
	if s.sharded == nil {
		return 1
	}
	return s.sharded.NumShards()
}

// ShardStat is one shard's fact-table row range and work counters.
type ShardStat = exec.ShardStat

// ShardStats reports per-shard statistics in shard order; nil when
// sharding is off.
func (s *Session) ShardStats() []ShardStat {
	if s.sharded == nil {
		return nil
	}
	return s.sharded.ShardStats()
}

// ScatterStats counts the sharded layer's dispatch decisions (scatters
// vs shard-0 routes and gathered partials); zero when sharding is off.
type ScatterStats = exec.ScatterStats

// ScatterStats returns the sharded layer's dispatch counters.
func (s *Session) ScatterStats() ScatterStats {
	if s.sharded == nil {
		return ScatterStats{}
	}
	return s.sharded.ScatterStats()
}

// EnableAutoCluster turns on workload-adaptive clustering on the
// session's exact engines (monolithic and, when sharding is active,
// every shard): scans feed per-column range statistics and the engine
// re-sorts tables around the learned dominant column between region
// batches, so zone-map block skipping engages without a hand-picked
// clustering column. Values, violations and aggregates are unchanged by
// a re-sort; physical row ids of later Materialize/ViolationScan calls
// refer to the re-clustered layout.
func (s *Session) EnableAutoCluster() {
	s.autoCluster = true
	s.eng.SetAutoCluster(true)
	if s.sharded != nil {
		s.sharded.SetAutoCluster(true)
	}
}

// DisableAutoCluster stops statistics collection and clustering sweeps;
// already re-sorted tables keep their layout.
func (s *Session) DisableAutoCluster() {
	s.autoCluster = false
	s.eng.SetAutoCluster(false)
	if s.sharded != nil {
		s.sharded.SetAutoCluster(false)
	}
}

// EnableZOrder admits two-column Z-order (space-filling-curve) layouts
// into the auto-clustering election on the session's exact engines:
// when two range columns both carry workload weight, a table may be
// re-laid along their interleaved rank curve so zone maps prune on both
// axes. No-op unless auto-clustering is also enabled (EnableAutoCluster
// or the engine policy).
func (s *Session) EnableZOrder() {
	s.zorder = true
	s.eng.SetZOrder(true)
	if s.sharded != nil {
		s.sharded.SetZOrder(true)
	}
}

// DisableZOrder removes Z-order layouts from future elections; a table
// already interleaved keeps its layout until a single-column challenger
// beats it through the usual hysteresis and payback gates.
func (s *Session) DisableZOrder() {
	s.zorder = false
	s.eng.SetZOrder(false)
	if s.sharded != nil {
		s.sharded.SetZOrder(false)
	}
}

// Estimate executes the original (unrefined) query and returns its
// actual aggregate value — step 1 of the Figure 2 architecture: if it
// already meets the constraint, no refinement is needed.
func (s *Session) Estimate(q *Query) (float64, error) {
	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		return 0, err
	}
	p, err := s.exact().Aggregate(q, relq.PrefixRegion(make([]float64, q.NumDims())))
	if err != nil {
		return 0, err
	}
	return spec.Final(p), nil
}

// Refine runs ACQUIRE on the query through the session's evaluation
// layer (exact by default; see UseSampling / UseHistograms). When the
// session has an attached observer (Observe/Metrics) and the options
// don't name one, the search runs under the session observer.
func (s *Session) Refine(q *Query, opts Options) (*Result, error) {
	if opts.Observer == nil {
		opts.Observer = s.obs
	}
	return core.Run(s.eval, q, opts)
}

// RefineContext is Refine with cancellation: the context is checked at
// every exploration layer and repartition iteration, and inside the
// evaluation layer's batch loops. On cancellation the partial result
// accumulated so far is returned alongside the context's error, so
// callers can report the best refinement found before the interrupt.
func (s *Session) RefineContext(ctx context.Context, q *Query, opts Options) (*Result, error) {
	if opts.Observer == nil {
		opts.Observer = s.obs
	}
	return core.RunContext(ctx, s.eval, q, opts)
}

// DefaultCacheBytes is the region-cache capacity EnableCache uses when
// passed 0: 64 MiB, roughly 400k cached partials.
const DefaultCacheBytes = 64 << 20

// CacheStats reports the region cache's hit/miss/eviction counters and
// current size (see EnableCache).
type CacheStats = regioncache.Stats

// EnableCache attaches a cross-search partial-aggregate cache to the
// session's evaluation layer: every region the refinement search
// dispatches is first looked up by its canonical (query shape,
// aggregate spec, region) fingerprint, so repeated or overlapping
// searches — including concurrent ones on this session — reuse each
// other's work. Cached partials are the exact bytes a cold execution
// produces, so results are bit-identical with the cache on, off or
// pre-warmed. maxBytes bounds the cache's memory (LRU eviction);
// 0 selects DefaultCacheBytes. A sampling evaluation layer keeps its
// own cache instance, sized equally, because its partials are
// sample-space values.
func (s *Session) EnableCache(maxBytes int64) {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	s.cacheBytes = maxBytes
	s.eng.SetRegionCache(regioncache.New(maxBytes))
	if s.sharded != nil {
		// One instance per shard (sized maxBytes/N): shard fingerprints
		// are not comparable across shards, so instances are never
		// shared between them.
		s.sharded.EnableRegionCache(maxBytes)
	}
	if sm, ok := s.eval.(*exec.Sampled); ok {
		sm.SetRegionCache(regioncache.New(maxBytes))
	}
}

// DisableCache detaches the session's region caches; searches execute
// every region again.
func (s *Session) DisableCache() {
	s.cacheBytes = 0
	s.eng.SetRegionCache(nil)
	if s.sharded != nil {
		s.sharded.EnableRegionCache(0)
	}
	if sm, ok := s.eval.(*exec.Sampled); ok {
		sm.SetRegionCache(nil)
	}
}

// InvalidateCache drops every cached partial. Sessions mutating table
// contents in place (outside ApplyTaxonomy, which invalidates
// automatically) must call it before the next search; appends retire
// their stale entries automatically via row-count generations.
func (s *Session) InvalidateCache() {
	s.eng.InvalidateRegionCache()
	if s.sharded != nil {
		s.sharded.InvalidateRegionCache()
	}
	if sm, ok := s.eval.(*exec.Sampled); ok {
		sm.InvalidateRegionCache()
	}
}

// CacheStats returns the region cache's counters (summed across shard
// caches when sharding is on); the zero value when caching is
// disabled.
func (s *Session) CacheStats() CacheStats {
	if s.sharded != nil {
		return s.sharded.CacheStats()
	}
	if c := s.eng.RegionCache(); c != nil {
		return c.Stats()
	}
	return CacheStats{}
}

// UseSampling switches the evaluation layer to exact execution over a
// Bernoulli sample with extrapolated COUNT/SUM aggregates (§3's
// "sampling" alternative). Refinements get cheaper and noisier; the
// Estimate/Preview methods still use the full data.
func (s *Session) UseSampling(fraction float64, seed int64) error {
	sampled, err := exec.NewSampled(s.cat, fraction, seed)
	if err != nil {
		return err
	}
	sampled.SetObserver(s.obs)
	if s.cacheBytes > 0 {
		sampled.SetRegionCache(regioncache.New(s.cacheBytes))
	}
	s.eval = sampled
	return nil
}

// UseHistograms switches the evaluation layer to scan-free COUNT
// estimation from per-column equi-depth histograms (§3's "estimation"
// alternative). Only single-table COUNT constraints are estimable.
func (s *Session) UseHistograms(buckets int) error {
	ev, err := histogram.NewEvaluator(s.cat, buckets)
	if err != nil {
		return err
	}
	s.eval = ev
	return nil
}

// UseExact restores exact execution (the default evaluation layer) —
// sharded when sharding is enabled, monolithic otherwise.
func (s *Session) UseExact() { s.eval = s.exact() }

// SetParallelism bounds the worker pool used for batched
// evaluation-layer execution. 0 (the default) means GOMAXPROCS.
// Results are bit-identical for every worker count.
func (s *Session) SetParallelism(workers int) {
	s.eng.Parallelism = workers
	if s.sharded != nil {
		s.sharded.SetParallelism(workers)
	}
}

// Explain renders a human-readable summary of a refinement result: the
// search profile and the recommended (or closest) query.
func Explain(q *Query, res *Result) string { return core.ExplainResult(q, res) }

// RefineSQL parses, analyzes and refines in one call.
func (s *Session) RefineSQL(sql string, opts Options) (*Result, error) {
	q, err := s.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Refine(q, opts)
}

// BuildGridIndex builds the §7.4 grid bitmap index over numeric
// columns of a table; subsequent refinements skip provably empty cell
// queries.
func (s *Session) BuildGridIndex(table string, columns []string, binsPerDim int) error {
	return s.exact().BuildGridIndex(table, columns, binsPerDim)
}

// BuildGridAggIndex builds an aggregate-augmented grid over numeric
// columns of a table: per-cell COUNT, SUM/MIN/MAX of each aggCols
// column, and posting lists. Eligible single-table refinement queries
// are then answered by merging stored cell partials (interior cells)
// and scanning only boundary-cell posting lists.
func (s *Session) BuildGridAggIndex(table string, columns, aggCols []string, binsPerDim int) error {
	return s.exact().BuildGridAggIndex(table, columns, aggCols, binsPerDim)
}

// DropGridIndex removes a table's grid index.
func (s *Session) DropGridIndex(table string) { s.exact().DropGridIndex(table) }

// Stats returns cumulative evaluation-layer statistics. With sharding
// enabled this sums the shard engines (plus the monolithic engine's
// preview/estimate work); Queries then counts physical per-shard
// region executions.
func (s *Session) Stats() EngineStats {
	if s.sharded == nil {
		return s.eng.Snapshot()
	}
	return mergeStats(s.sharded.Snapshot(), s.eng.Snapshot())
}

func mergeStats(a, b EngineStats) EngineStats {
	a.Queries += b.Queries
	a.RowsScanned += b.RowsScanned
	a.TuplesExamined += b.TuplesExamined
	a.CellsSkipped += b.CellsSkipped
	a.CellsMerged += b.CellsMerged
	a.BoundaryRows += b.BoundaryRows
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.CacheEvictions += b.CacheEvictions
	return a
}

// ResetStats zeroes the statistics counters.
func (s *Session) ResetStats() {
	s.eng.ResetStats()
	if s.sharded != nil {
		s.sharded.ResetStats()
	}
}

// ResultSet is a materialised SELECT * result.
type ResultSet = exec.ResultSet

// Plan is the engine's EXPLAIN output.
type Plan = exec.Plan

// ExplainPlan returns the access plan the engine would use for the
// (unrefined) query: per-table access paths and join order.
func (s *Session) ExplainPlan(q *Query) (*Plan, error) {
	return s.eng.Explain(q, relq.PrefixRegion(make([]float64, q.NumDims())))
}

// Preview materialises up to limit result tuples of a refined query —
// what the user would see after picking one of ACQUIRE's
// recommendations.
func (s *Session) Preview(rq *RefinedQuery, limit int) (*ResultSet, error) {
	return s.eng.Materialize(rq.Base, relq.PrefixRegion(rq.Scores), limit)
}

// PreviewOriginal materialises the original (unrefined) query.
func (s *Session) PreviewOriginal(q *Query, limit int) (*ResultSet, error) {
	return s.eng.Materialize(q, relq.PrefixRegion(make([]float64, q.NumDims())), limit)
}

// TopK runs the Top-k baseline (§8.2) on the query.
func (s *Session) TopK(q *Query) (*Outcome, error) { return baseline.TopK(s.exact(), q) }

// BinSearch runs the BinSearch baseline (§8.2) on the query.
func (s *Session) BinSearch(q *Query, opts BinSearchOptions) (*Outcome, error) {
	return baseline.BinSearch(s.exact(), q, opts)
}

// TQGen runs the TQGen baseline (§8.2) on the query.
func (s *Session) TQGen(q *Query, opts TQGenOptions) (*Outcome, error) {
	return baseline.TQGen(s.exact(), q, opts)
}

// ApplyTaxonomy rewrites a categorical IN/=-predicate on table.column
// into a refinable ontology-distance dimension (§7.3): the table gains
// a materialised distance column, and the returned dimension can be
// appended to a query's Dims (remove the corresponding FixedStringIn
// predicate first; RewriteCategorical does both).
func (s *Session) ApplyTaxonomy(tree *Taxonomy, table, column string, target []string) (Dimension, error) {
	t, err := s.cat.Table(table)
	if err != nil {
		return Dimension{}, err
	}
	rewritten, dim, err := ontology.BindColumn(tree, t, column, target)
	if err != nil {
		return Dimension{}, err
	}
	s.cat.Replace(rewritten)
	// The replacement keeps the row count, which generation checks
	// cannot see: drop all engine state derived from the old table. The
	// sharded layer additionally re-resolves the partition (re-slicing
	// the fact table or re-broadcasting a dimension pointer) and drops
	// every shard-local cache and grid — a monolithic-only drop would
	// leave shards serving the pre-taxonomy table.
	s.eng.InvalidateTable(table)
	if s.sharded != nil {
		s.sharded.InvalidateTable(table)
	}
	if sm, ok := s.eval.(*exec.Sampled); ok {
		sm.InvalidateRegionCache()
	}
	return dim, nil
}

// RewriteCategorical converts the i-th fixed predicate of q (which
// must be a string IN/=-predicate) into a refinable ontology-distance
// dimension using the taxonomy, returning the rewritten query.
func (s *Session) RewriteCategorical(q *Query, fixedIdx int, tree *Taxonomy) (*Query, error) {
	if fixedIdx < 0 || fixedIdx >= len(q.Fixed) {
		return nil, fmt.Errorf("acq: fixed predicate index %d out of range", fixedIdx)
	}
	p := q.Fixed[fixedIdx]
	if p.Kind != relq.FixedStringIn {
		return nil, fmt.Errorf("acq: fixed predicate %d is not a string predicate", fixedIdx)
	}
	dim, err := s.ApplyTaxonomy(tree, p.Col.Table, p.Col.Column, p.Values)
	if err != nil {
		return nil, err
	}
	out := q.Clone()
	out.Fixed = append(out.Fixed[:fixedIdx], out.Fixed[fixedIdx+1:]...)
	out.Dims = append(out.Dims, dim)
	return out, nil
}
