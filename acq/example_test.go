package acq_test

import (
	"fmt"
	"log"

	"acquire/acq"
)

// The canonical flow: parse an ACQ, check the original aggregate,
// refine, and read the recommended queries.
func Example() {
	session, err := acq.NewTPCHSession(20_000, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	query, err := session.Parse(`
		SELECT * FROM part
		CONSTRAINT COUNT(*) = 3000
		WHERE p_retailprice < 1200`)
	if err != nil {
		log.Fatal(err)
	}
	original, err := session.Estimate(query)
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Refine(query, acq.Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original %.0f of %0.f; satisfied: %v; within δ: %v\n",
		original, query.Constraint.Target, result.Satisfied, result.Best.Err <= 0.05)
	// Output:
	// original 1251 of 3000; satisfied: true; within δ: true
}

// Weighted norms (§7.1) steer the search away from predicates the user
// would rather not touch.
func ExampleLpNorm() {
	session, err := acq.NewUsersSession(10_000, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	query, err := session.Parse(`
		SELECT * FROM users
		CONSTRAINT COUNT(*) = 600
		WHERE age <= 30 AND income <= 60000`)
	if err != nil {
		log.Fatal(err)
	}
	// Penalise refining age 10x.
	norm, err := acq.LpNorm(1, []float64{10, 1})
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Refine(query, acq.Options{Gamma: 10, Delta: 0.05, Norm: norm})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("age refined by %.0f, income refined more: %v\n",
		result.Best.Scores[0], result.Best.Scores[1] > result.Best.Scores[0])
	// Output:
	// age refined by 0, income refined more: true
}

// User-defined aggregates plug into CONSTRAINT clauses by name, as long
// as they satisfy the optimal substructure property (§2.6).
func ExampleRegisterUDA() {
	err := acq.RegisterUDA(acq.UDA{
		Name:  "DOCSUMSQ",
		Map:   func(v float64) float64 { return v * v },
		Final: func(p acq.Partial) float64 { return p.User },
	})
	if err != nil {
		log.Fatal(err)
	}
	session, err := acq.NewUsersSession(5_000, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.RefineSQL(`
		SELECT * FROM users
		CONSTRAINT DOCSUMSQ(sessions) >= 400K
		WHERE age <= 40`, acq.Options{Gamma: 15, Delta: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("satisfied:", result.Satisfied)
	// Output:
	// satisfied: true
}
