package acq

import (
	"reflect"
	"sync"
	"testing"
)

const cacheSQL = `SELECT * FROM users CONSTRAINT COUNT(*) = 2000 WHERE age <= 30 AND income <= 50000`

// A repeated identical search on a cached session re-executes (almost)
// nothing: the evaluation-layer query count must drop at least 5x and
// the refined queries must be bit-identical — with the cache warm and
// after turning it off again.
func TestSessionCacheRepeatedSearch(t *testing.T) {
	s, err := NewUsersSession(5000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableCache(0)
	q, err := s.Parse(cacheSQL)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Gamma: 15, Delta: 0.05}

	cold, err := s.Refine(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	st1 := s.Stats()
	if st1.Queries == 0 || st1.CacheMisses == 0 {
		t.Fatalf("cold search stats: %+v", st1)
	}

	warm, err := s.Refine(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s.Stats()
	warmQ := st2.Queries - st1.Queries
	if warmQ*5 > st1.Queries {
		t.Errorf("warm search executed %d queries vs cold %d; want >=5x reduction", warmQ, st1.Queries)
	}
	if st2.CacheHits == st1.CacheHits {
		t.Error("warm search recorded no cache hits")
	}
	if cold.Satisfied != warm.Satisfied || !reflect.DeepEqual(cold.Queries, warm.Queries) {
		t.Errorf("warm result differs from cold:\ncold %+v\nwarm %+v", cold.Queries, warm.Queries)
	}
	if cs := s.CacheStats(); cs.Hits == 0 || cs.Entries == 0 {
		t.Errorf("cache stats: %+v", cs)
	}

	s.DisableCache()
	off, err := s.Refine(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off.Queries, warm.Queries) {
		t.Error("uncached rerun differs from cached results")
	}
	if s.CacheStats() != (CacheStats{}) {
		t.Errorf("disabled session still reports cache stats: %+v", s.CacheStats())
	}
}

// Eight goroutines interleaving two searches on one session must agree
// exactly with an uncached single-threaded session over the same data,
// and the shared cache must absorb the duplicated work. The session
// race test's concurrency contract, extended to the cache. Run under
// `go test -race`.
func TestSessionCacheConcurrentSessions(t *testing.T) {
	sqls := []string{
		`SELECT * FROM users CONSTRAINT COUNT(*) = 2000 WHERE age <= 30`,
		`SELECT * FROM users CONSTRAINT COUNT(*) = 1500 WHERE income <= 60000`,
	}
	opts := Options{Gamma: 15, Delta: 0.05}

	ref, err := NewUsersSession(5000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Result, len(sqls))
	for i, sql := range sqls {
		q, err := ref.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = ref.Refine(q, opts); err != nil {
			t.Fatal(err)
		}
	}

	s, err := NewUsersSession(5000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableCache(0)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sql := sqls[g%len(sqls)]
			q, err := s.Parse(sql)
			if err != nil {
				errs[g] = err
				return
			}
			res, err := s.Refine(q, opts)
			if err != nil {
				errs[g] = err
				return
			}
			w := want[g%len(sqls)]
			if res.Satisfied != w.Satisfied || !reflect.DeepEqual(res.Queries, w.Queries) {
				t.Errorf("goroutine %d: cached result differs from uncached reference", g)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Error("no cache hits across concurrent searches")
	}
	cs := s.CacheStats()
	if cs.Hits != st.CacheHits || cs.Misses != st.CacheMisses {
		t.Errorf("cache stats %+v disagree with engine stats %+v", cs, st)
	}
}

// InvalidateCache empties the cache; the next search repopulates it
// and still returns identical results.
func TestSessionCacheInvalidate(t *testing.T) {
	s, err := NewUsersSession(3000, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableCache(1 << 20)
	q, err := s.Parse(cacheSQL)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Gamma: 15, Delta: 0.05}
	first, err := s.Refine(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheStats().Entries == 0 {
		t.Fatal("nothing cached")
	}
	s.InvalidateCache()
	if got := s.CacheStats().Entries; got != 0 {
		t.Fatalf("%d entries survived InvalidateCache", got)
	}
	again, err := s.Refine(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Queries, again.Queries) {
		t.Error("post-invalidate search differs")
	}
}
