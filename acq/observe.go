package acq

import (
	"context"
	"fmt"
	"time"

	"acquire/internal/core"
	"acquire/internal/exec"
	"acquire/internal/obs"
)

// Observability re-exports. Aliases keep internal/obs as the single
// definition while letting downstream importers attach registries and
// observers without reaching into internal packages.
type (
	// MetricsRegistry holds counters, gauges and histograms and renders
	// them in Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// Observer bundles metrics, phase spans and structured events
	// behind one handle (Options.Observer). Nil disables all three.
	Observer = obs.Observer
	// PhaseStat is the per-phase (count, total duration) pair of a
	// SearchReport breakdown.
	PhaseStat = obs.PhaseStat
	// Clock abstracts time for span measurement; tests inject
	// obs.NewFakeClock instead of sleeping.
	Clock = obs.Clock
	// SearchTrace is one search's hierarchical span tree (export it
	// with WriteChromeJSON, browse it at /debug/traces/<id>).
	SearchTrace = obs.Trace
	// TraceSpan is one timed node of a SearchTrace.
	TraceSpan = obs.TraceSpan
	// FlightRecorder is the bounded ring of recently completed search
	// traces (byte-capped, tail-based keep).
	FlightRecorder = obs.FlightRecorder
	// RecorderConfig bounds and filters a FlightRecorder.
	RecorderConfig = obs.RecorderConfig
)

// NewMetricsRegistry creates an empty metric registry; attach it with
// Session.Observe(NewObserver(reg)) or let Session.Metrics create one
// lazily.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewObserver creates an observer over the registry (which may be nil
// for spans and structured events without metric collection).
func NewObserver(reg *MetricsRegistry) *Observer { return obs.NewObserver(reg) }

// ServeMetrics starts an HTTP server on addr exposing /metrics
// (Prometheus text format), /healthz, /debug/vars and /debug/pprof/*.
// It returns the bound address (useful with ":0") and a shutdown
// function.
func ServeMetrics(addr string, reg *MetricsRegistry) (string, func(), error) {
	return obs.Serve(addr, reg, nil)
}

// ServeObs is ServeMetrics plus the flight-recorder endpoints: the
// server additionally exposes /debug/traces (index) and
// /debug/traces/<id> (Chrome trace-event JSON). rec may be nil.
func ServeObs(addr string, reg *MetricsRegistry, rec *FlightRecorder) (string, func(), error) {
	return obs.Serve(addr, reg, rec)
}

// EnableTracing attaches a flight recorder to the session: every
// refinement search from then on records a hierarchical span tree
// (search root → per-layer expand/prefetch/fold/repartition spans →
// engine batch / per-shard scatter spans) and deposits it in the
// returned recorder, subject to its tail-based keep and byte cap.
// Calling it again replaces the recorder; a zero RecorderConfig gets
// defaults (8 MiB cap, keep every trace).
func (s *Session) EnableTracing(cfg RecorderConfig) *FlightRecorder {
	rec := obs.NewFlightRecorder(cfg)
	o := s.obs
	if o == nil {
		o = obs.NewObserver(nil)
	}
	s.Observe(o.WithRecorder(rec))
	return rec
}

// Recorder returns the flight recorder attached by EnableTracing (nil
// when tracing is off).
func (s *Session) Recorder() *FlightRecorder { return s.obs.Recorder() }

// Observe attaches an observer to the session: the engine mirrors its
// statistics into the observer's registry, refinement searches run
// under it by default (Options.Observer overrides per call), and the
// evaluation layer's events flow through its logger. Passing nil
// detaches.
func (s *Session) Observe(o *Observer) {
	s.obs = o
	s.eng.SetObserver(o)
	if s.sharded != nil {
		s.sharded.SetObserver(o)
	}
	if sampled, ok := s.eval.(*exec.Sampled); ok {
		sampled.SetObserver(o)
	}
}

// Observer returns the session's attached observer (nil when none).
func (s *Session) Observer() *Observer { return s.obs }

// Metrics returns the session's metric registry, lazily creating and
// attaching a registry-backed observer on first use. Serve it with
// ServeMetrics or render it with WritePrometheus.
func (s *Session) Metrics() *MetricsRegistry {
	if s.obs == nil || s.obs.Registry() == nil {
		reg := obs.NewRegistry()
		o := obs.NewObserver(reg)
		if s.obs != nil {
			// Preserve a previously attached clock/recorder.
			o = o.WithClock(s.obs.Clock()).WithRecorder(s.obs.Recorder())
		}
		s.Observe(o)
	}
	return s.obs.Registry()
}

// SearchReport breaks one refinement search down for dashboards and
// regression tracking: wall time, per-phase durations, and the
// evaluation-layer work the search caused (engine counter deltas).
type SearchReport struct {
	// SearchID tags the search's structured events (search_id attr).
	SearchID string
	// Wall is the end-to-end search duration by the observer's clock.
	Wall time.Duration
	// Phases maps phase name (expand, prefetch, fold, repartition,
	// evaluate, search, ...) to its accumulated span stats.
	Phases map[string]PhaseStat
	// Engine is the engine counter movement during the search.
	Engine EngineStats
}

// RefineReport is RefineContext plus a per-search SearchReport. The
// search runs under a search-scoped observer (derived from
// opts.Observer, the session observer, or a fresh one, in that order),
// so its events carry a unique search_id and its phase spans —
// including the engine's per-query evaluate spans — accumulate
// separately from other searches on the same registry. The report is
// returned even when the search errs mid-way.
//
// The evaluation engine is rescoped to the search observer for the
// duration: concurrent RefineReport calls on one session may attribute
// each other's evaluate spans; counters and metrics are unaffected.
func (s *Session) RefineReport(ctx context.Context, q *Query, opts Options) (*Result, *SearchReport, error) {
	o := opts.Observer
	if o == nil {
		o = s.obs
	}
	if o == nil {
		o = obs.NewObserver(nil) // spans + report without a registry
	}
	id := fmt.Sprintf("search-%d", s.searchSeq.Add(1))
	so := o.ForSearch(id)
	opts.Observer = so

	eng := s.evalEngine()
	prev := eng.Observer()
	eng.SetObserver(so)
	defer eng.SetObserver(prev)

	before := eng.Snapshot()
	start := so.Clock().Now()
	res, err := core.RunContext(ctx, s.eval, q, opts)
	rep := &SearchReport{
		SearchID: id,
		Wall:     so.Clock().Now().Sub(start),
		Phases:   so.Phases(),
		Engine:   eng.Snapshot().Sub(before),
	}
	return res, rep, err
}

// evalEngine returns the evaluator backing the current evaluation
// layer: the sample engine under UseSampling, the sharded evaluator
// under EnableSharding, the session engine otherwise (the histogram
// evaluator issues no engine work).
func (s *Session) evalEngine() exec.Evaluator {
	if sampled, ok := s.eval.(*exec.Sampled); ok {
		return sampled.Engine
	}
	if sv, ok := s.eval.(*exec.ShardedEvaluator); ok {
		return sv
	}
	return s.eng
}
