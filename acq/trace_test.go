package acq

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"acquire/internal/obs"
)

// TestTracingEndToEnd is the acceptance path for the tracing
// subsystem: a sharded session with tracing enabled runs a refinement,
// and the flight recorder holds a span tree with the search root, its
// per-layer spans, and one scatter.shard child per shard — exported as
// valid Chrome trace-event JSON.
func TestTracingEndToEnd(t *testing.T) {
	s, err := NewUsersSession(5000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableSharding(4); err != nil {
		t.Fatal(err)
	}
	reg := s.Metrics() // registry first, so the skew gauge has a home
	rec := s.EnableTracing(RecorderConfig{})
	if s.Recorder() != rec {
		t.Fatal("Recorder() does not return the enabled recorder")
	}

	q, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 2000 WHERE age <= 30`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Refine(q, Options{Gamma: 15, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied && res.Closest == nil {
		t.Fatalf("search failed: %+v", res)
	}
	if rec.Len() != 1 {
		t.Fatalf("recorder holds %d traces, want 1", rec.Len())
	}
	tr := rec.Traces()[0]
	root, ok := tr.Root()
	if !ok || root.Name != "search" {
		t.Fatalf("root = %+v", root)
	}
	var layers, shardSpans int
	for _, sp := range tr.Snapshot() {
		switch sp.Name {
		case "layer":
			layers++
		case "scatter.shard":
			shardSpans++
		}
	}
	if layers == 0 {
		t.Error("trace has no layer spans")
	}
	if shardSpans == 0 || shardSpans%4 != 0 {
		t.Errorf("trace has %d scatter.shard spans, want a positive multiple of 4", shardSpans)
	}

	// Export parses as Chrome JSON and contains every structural name.
	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid Chrome JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"search", "layer", "fold", "scatter", "scatter.shard"} {
		if !names[want] {
			t.Errorf("export missing %q event (have %v)", want, names)
		}
	}

	// The skew gauge populated from the same scatter timings.
	snap := reg.Snapshot()
	if skew := snap["acquire_shard_skew_ratio"]; skew < 1 {
		t.Errorf("acquire_shard_skew_ratio = %v, want >= 1", skew)
	}
}

// TestTracingSampling: with 1-in-N sampling and a slow threshold the
// recorder keeps every search here (fake clock makes them all "slow"),
// while a sampled-out fast path is covered in internal/obs.
func TestTracingSampling(t *testing.T) {
	s, err := NewUsersSession(2000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	clk := obs.NewFakeClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	s.Observe(NewObserver(nil).WithClock(clk))
	rec := s.EnableTracing(RecorderConfig{SampleN: 100, SlowThreshold: time.Millisecond})
	q, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 800 WHERE age <= 30`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Refine(q, Options{Gamma: 15, Delta: 0.05}); err != nil {
			t.Fatal(err)
		}
	}
	// Every search exceeds the 1ms threshold on an auto-advancing clock,
	// so tail-based keep overrides the 1-in-100 sampler.
	if rec.Len() != 3 {
		t.Errorf("recorder kept %d traces, want 3 (tail-based keep)", rec.Len())
	}
}

// TestConcurrentScrapeRace hammers /metrics and /debug/traces while
// sharded searches are in flight — the race-detector regression test
// for the observability surfaces (recorder ring, registry, span trees
// all shared with the search goroutines).
func TestConcurrentScrapeRace(t *testing.T) {
	s, err := NewUsersSession(5000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableSharding(3); err != nil {
		t.Fatal(err)
	}
	rec := s.EnableTracing(RecorderConfig{})
	reg := s.Metrics()

	srv := httptest.NewServer(obs.NewMux(reg, rec))
	defer srv.Close()

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	scrape := func(path string) {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Follow the index to each trace body as it appears.
			if path == "/debug/traces" {
				for _, tr := range rec.Traces() {
					r2, err := http.Get(srv.URL + "/debug/traces/" + tr.ID())
					if err == nil {
						io.Copy(io.Discard, r2.Body)
						r2.Body.Close()
					}
				}
			}
		}
	}
	scrapers.Add(2)
	go scrape("/metrics")
	go scrape("/debug/traces")

	sqls := []string{
		`SELECT * FROM users CONSTRAINT COUNT(*) = 2000 WHERE age <= 30`,
		`SELECT * FROM users CONSTRAINT COUNT(*) = 1500 WHERE income <= 60000`,
	}
	var searches sync.WaitGroup
	for _, sql := range sqls {
		searches.Add(1)
		go func(sql string) {
			defer searches.Done()
			q, err := s.Parse(sql)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Refine(q, Options{Gamma: 15, Delta: 0.05}); err != nil {
				t.Error(err)
			}
		}(sql)
	}
	searches.Wait()
	close(stop)
	scrapers.Wait()

	if rec.Len() != len(sqls) {
		t.Errorf("recorder holds %d traces, want %d", rec.Len(), len(sqls))
	}
	// The index lists every recorded search after the dust settles.
	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, tr := range rec.Traces() {
		if !strings.Contains(string(body), tr.ID()) {
			t.Errorf("/debug/traces index missing %s:\n%s", tr.ID(), body)
		}
	}
}

// TestTracingDisabledNoTraces: without EnableTracing a search records
// nothing and Recorder() is nil — the default path stays dark.
func TestTracingDisabledNoTraces(t *testing.T) {
	s, err := NewUsersSession(1000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder() != nil {
		t.Fatal("fresh session has a recorder")
	}
	q, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 500 WHERE age <= 30`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refine(q, Options{Gamma: 15, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}
	if s.Recorder() != nil {
		t.Error("search attached a recorder")
	}
}
