package acq

import (
	"testing"
)

const shardSQL = `SELECT * FROM users CONSTRAINT COUNT(*) >= 900
	WHERE age <= 30 AND spend <= 50`

// TestShardedSessionEquivalence drives a refinement search through the
// session sharding surface and checks it against an identically seeded
// monolithic session: COUNT aggregates are bit-identical under the
// §2.6 merge rule, so the searches must explore the same frontier and
// recommend the same refinement.
func TestShardedSessionEquivalence(t *testing.T) {
	mono, err := NewUsersSession(3000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewUsersSession(3000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sh.EnableCache(4 << 20) // enabled before sharding: must carry over
	if err := sh.EnableSharding(4); err != nil {
		t.Fatalf("EnableSharding: %v", err)
	}
	if got := sh.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	if got := mono.NumShards(); got != 1 {
		t.Fatalf("monolithic NumShards = %d, want 1", got)
	}

	qm, err := mono.Parse(shardSQL)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sh.Parse(shardSQL)
	if err != nil {
		t.Fatal(err)
	}
	em, err := mono.Estimate(qm)
	if err != nil {
		t.Fatal(err)
	}
	es, err := sh.Estimate(qs)
	if err != nil {
		t.Fatal(err)
	}
	if em != es {
		t.Fatalf("Estimate diverged: monolithic %v, sharded %v", em, es)
	}

	rm, err := mono.Refine(qm, Options{Gamma: 20, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sh.Refine(qs, Options{Gamma: 20, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Satisfied != rs.Satisfied || rm.Explored != rs.Explored {
		t.Fatalf("search shape diverged: monolithic %+v, sharded %+v", rm, rs)
	}
	if rm.Satisfied {
		if rm.Best.Aggregate != rs.Best.Aggregate {
			t.Fatalf("best aggregate diverged: %v vs %v", rm.Best.Aggregate, rs.Best.Aggregate)
		}
		if rm.Best.ToSQL() != rs.Best.ToSQL() {
			t.Fatalf("best refinement diverged:\n%s\nvs\n%s", rm.Best.ToSQL(), rs.Best.ToSQL())
		}
	}

	// Session-level shard accounting.
	sc := sh.ScatterStats()
	if sc.Scatters == 0 || sc.Partials == 0 {
		t.Errorf("scatter stats not engaged: %+v", sc)
	}
	st := sh.ShardStats()
	if len(st) != 4 {
		t.Fatalf("ShardStats len = %d, want 4", len(st))
	}
	rows, work := 0, int64(0)
	for _, s := range st {
		rows += s.Rows
		work += s.Stats.Queries
	}
	n, err := sh.TableRows("users")
	if err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Errorf("shard rows sum to %d, want %d", rows, n)
	}
	if work == 0 {
		t.Error("no per-shard executions recorded")
	}
	if merged := sh.Stats(); merged.Queries == 0 || merged.RowsScanned == 0 {
		t.Errorf("merged session stats not accounted: %+v", merged)
	}
	if cs := sh.CacheStats(); cs.Misses == 0 {
		t.Errorf("carried-over region cache never engaged: %+v", cs)
	}
	if zero := (ScatterStats{}); mono.ScatterStats() != zero || mono.ShardStats() != nil {
		t.Error("monolithic session reports shard state")
	}

	// DisableSharding restores the monolithic engine with identical
	// results.
	sh.DisableSharding()
	if sh.NumShards() != 1 {
		t.Fatalf("NumShards after disable = %d", sh.NumShards())
	}
	rd, err := sh.Refine(qs, Options{Gamma: 20, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Satisfied != rm.Satisfied || rd.Explored != rm.Explored {
		t.Fatalf("post-disable search diverged: %+v vs %+v", rd, rm)
	}
}

// TestShardedSessionTaxonomyBroadcast applies an ontology rewrite to a
// sharded session (the table is replaced in the catalog with a
// materialised distance column) and checks the subsequent search
// against a fresh monolithic session given the same rewrite: stale
// shard-local state — a shard still scanning the pre-taxonomy table —
// would diverge.
func TestShardedSessionTaxonomyBroadcast(t *testing.T) {
	tax := NewTaxonomy("World")
	tax.MustAdd("World", "EastCoast")
	tax.MustAdd("World", "Central")
	tax.MustAdd("EastCoast", "Boston")
	tax.MustAdd("EastCoast", "New York")
	tax.MustAdd("Central", "Austin")
	tax.MustAdd("Central", "Chicago")

	const sql = `SELECT * FROM users CONSTRAINT COUNT(*) = 500
		WHERE (location IN ('Boston', 'New York')) AND age <= 30`
	run := func(shards int) *Result {
		t.Helper()
		s, err := NewUsersSession(2000, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 {
			if err := s.EnableSharding(shards); err != nil {
				t.Fatal(err)
			}
			s.EnableCache(1 << 20)
			// Warm the shard-local caches against the pre-taxonomy
			// table so stale state has something to be stale about.
			q, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 900 WHERE age <= 30`)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Refine(q, Options{Gamma: 10, Delta: 0.05}); err != nil {
				t.Fatal(err)
			}
		}
		q, err := s.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := s.RewriteCategorical(q, 0, tax)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Refine(rq, Options{Gamma: 12, Delta: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run(1)
	got := run(5)
	if want.Satisfied != got.Satisfied || want.Explored != got.Explored {
		t.Fatalf("post-taxonomy search diverged: monolithic %+v, sharded %+v", want, got)
	}
	if want.Satisfied && want.Best.Aggregate != got.Best.Aggregate {
		t.Fatalf("post-taxonomy best diverged: %v vs %v", want.Best.Aggregate, got.Best.Aggregate)
	}
}
