package acq

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tpchSession(t *testing.T, rows int) *Session {
	t.Helper()
	s, err := NewTPCHSession(rows, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const q2SQL = `SELECT * FROM supplier, part, partsupp
	CONSTRAINT SUM(ps_availqty) >= 20000
	WHERE (s_suppkey = ps_suppkey) NOREFINE AND
	(p_partkey = ps_partkey) NOREFINE AND
	(p_retailprice < 1000) AND (s_acctbal < 2000)`

func TestEndToEndQ2(t *testing.T) {
	s := tpchSession(t, 4000)
	q, err := s.Parse(q2SQL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}

	orig, err := s.Estimate(q)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if orig >= 20000 {
		t.Skipf("fixture already satisfies the constraint (%v); adjust target", orig)
	}

	res, err := s.Refine(q, Options{Gamma: 40, Delta: 0.05})
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if !res.Satisfied {
		t.Fatalf("refinement failed: %+v", res)
	}
	if res.Best.Aggregate < 20000*(1-0.05) {
		t.Errorf("aggregate %v below hinge tolerance", res.Best.Aggregate)
	}
	sql := res.Best.ToSQL()
	for _, want := range []string{"p_retailprice <=", "s_acctbal <=", "NOREFINE"} {
		if !strings.Contains(sql, want) {
			t.Errorf("refined SQL missing %q:\n%s", want, sql)
		}
	}
	// NOREFINE predicates are untouched.
	if !strings.Contains(sql, "(part.p_partkey = partsupp.ps_partkey) NOREFINE") {
		t.Errorf("fixed join altered:\n%s", sql)
	}
}

func TestRefineSQLAndStats(t *testing.T) {
	s := tpchSession(t, 2000)
	s.ResetStats()
	res, err := s.RefineSQL(`SELECT * FROM part CONSTRAINT COUNT(*) = 300
		WHERE p_retailprice < 1000`, Options{Delta: 0.05})
	if err != nil {
		t.Fatalf("RefineSQL: %v", err)
	}
	if !res.Satisfied {
		t.Fatalf("result: %+v", res)
	}
	st := s.Stats()
	if st.Queries == 0 || st.RowsScanned == 0 {
		t.Errorf("stats not accounted: %+v", st)
	}
}

func TestSessionTables(t *testing.T) {
	s := tpchSession(t, 400)
	names := s.Tables()
	if len(names) != 3 {
		t.Errorf("tables = %v", names)
	}
	n, err := s.TableRows("partsupp")
	if err != nil || n != 400 {
		t.Errorf("TableRows = %d, %v", n, err)
	}
	if _, err := s.TableRows("nope"); err == nil {
		t.Error("unknown table: expected error")
	}
}

func TestCSVRoundTripThroughSession(t *testing.T) {
	s := tpchSession(t, 200)
	dir := t.TempDir()
	path := filepath.Join(dir, "part.csv")
	if err := s.SaveCSV("part", path); err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	s2 := NewSession()
	if err := s2.LoadCSV("part", path); err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	n1, _ := s.TableRows("part")
	n2, _ := s2.TableRows("part")
	if n1 != n2 {
		t.Errorf("rows differ: %d vs %d", n1, n2)
	}
	if err := s.SaveCSV("ghost", filepath.Join(dir, "x.csv")); err == nil {
		t.Error("SaveCSV unknown table: expected error")
	}
	if err := s2.LoadCSV("y", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("LoadCSV missing file: expected error")
	}
	_ = os.Remove(path)
}

func TestGridIndexThroughSession(t *testing.T) {
	s := tpchSession(t, 2000)
	if err := s.BuildGridIndex("part", []string{"p_retailprice"}, 32); err != nil {
		t.Fatalf("BuildGridIndex: %v", err)
	}
	res, err := s.RefineSQL(`SELECT * FROM part CONSTRAINT COUNT(*) = 400
		WHERE p_retailprice < 1000`, Options{Delta: 0.05})
	if err != nil || !res.Satisfied {
		t.Fatalf("indexed refine: %v %+v", err, res)
	}
	s.DropGridIndex("part")
}

func TestBaselinesThroughSession(t *testing.T) {
	s := tpchSession(t, 2000)
	q, err := s.Parse(`SELECT * FROM part CONSTRAINT COUNT(*) = 300
		WHERE p_retailprice < 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := s.TopK(q); err != nil || !out.Satisfied {
		t.Errorf("TopK: %v %+v", err, out)
	}
	if out, err := s.BinSearch(q, BinSearchOptions{Delta: 0.05}); err != nil || !out.Satisfied {
		t.Errorf("BinSearch: %v %+v", err, out)
	}
	if out, err := s.TQGen(q, TQGenOptions{Delta: 0.05}); err != nil || !out.Satisfied {
		t.Errorf("TQGen: %v %+v", err, out)
	}
}

func TestNormConstructors(t *testing.T) {
	if L1Norm().Score([]float64{1, 2}) != 3 {
		t.Error("L1Norm")
	}
	lp, err := LpNorm(2, nil)
	if err != nil || math.Abs(lp.Score([]float64{3, 4})-5) > 1e-12 {
		t.Errorf("LpNorm: %v", err)
	}
	if LInfNorm(nil).Score([]float64{3, 9}) != 9 {
		t.Error("LInfNorm")
	}
	if CustomNorm("x", func(v []float64) float64 { return v[0] }).Score([]float64{7}) != 7 {
		t.Error("CustomNorm")
	}
	if _, err := LpNorm(0.2, nil); err == nil {
		t.Error("LpNorm p<1: expected error")
	}
}

func TestUDAThroughSession(t *testing.T) {
	if err := RegisterUDA(UDA{
		Name:  "SUMSQ",
		Map:   func(v float64) float64 { return v * v },
		Final: func(p Partial) float64 { return p.User },
	}); err != nil {
		t.Fatalf("RegisterUDA: %v", err)
	}
	s := tpchSession(t, 1000)
	res, err := s.RefineSQL(`SELECT * FROM part CONSTRAINT SUMSQ(p_size) >= 40000
		WHERE p_retailprice < 1000`, Options{Delta: 0.05})
	if err != nil {
		t.Fatalf("UDA refine: %v", err)
	}
	if !res.Satisfied {
		t.Fatalf("UDA result: %+v", res)
	}
}

func TestCategoricalRewrite(t *testing.T) {
	s, err := NewUsersSession(2000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Parse(`SELECT * FROM users CONSTRAINT COUNT(*) = 800
		WHERE (location IN ('Boston', 'New York')) AND age <= 30`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Fixed) != 1 {
		t.Fatalf("fixed = %d", len(q.Fixed))
	}

	// Geography taxonomy à la Figure 7(a).
	tax := NewTaxonomy("World")
	tax.MustAdd("World", "EastCoast")
	tax.MustAdd("World", "WestCoast")
	tax.MustAdd("World", "Central")
	tax.MustAdd("EastCoast", "Boston")
	tax.MustAdd("EastCoast", "New York")
	tax.MustAdd("EastCoast", "Miami")
	tax.MustAdd("WestCoast", "Seattle")
	tax.MustAdd("WestCoast", "Portland")
	tax.MustAdd("Central", "Austin")
	tax.MustAdd("Central", "Chicago")
	tax.MustAdd("Central", "Denver")

	rq, err := s.RewriteCategorical(q, 0, tax)
	if err != nil {
		t.Fatalf("RewriteCategorical: %v", err)
	}
	if len(rq.Fixed) != 0 || len(rq.Dims) != 2 {
		t.Fatalf("rewrite shape: fixed=%d dims=%d", len(rq.Fixed), len(rq.Dims))
	}
	res, err := s.Refine(rq, Options{Gamma: 12, Delta: 0.05})
	if err != nil {
		t.Fatalf("categorical refine: %v", err)
	}
	if !res.Satisfied && res.Closest == nil {
		t.Fatalf("categorical refine produced nothing: %+v", res)
	}

	// Error paths.
	if _, err := s.RewriteCategorical(q, 5, tax); err == nil {
		t.Error("index out of range: expected error")
	}
}

func TestExplainPlanThroughSession(t *testing.T) {
	s := tpchSession(t, 2000)
	q, err := s.Parse(`SELECT * FROM supplier, part, partsupp
		CONSTRAINT COUNT(*) = 100
		WHERE (s_suppkey = ps_suppkey) NOREFINE AND (p_partkey = ps_partkey) NOREFINE
		AND p_retailprice < 1000`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.ExplainPlan(q)
	if err != nil {
		t.Fatalf("ExplainPlan: %v", err)
	}
	rendered := plan.String()
	for _, want := range []string{"supplier", "part", "partsupp", "hash equi-join"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("plan missing %q:\n%s", want, rendered)
		}
	}
}

func TestExplainHelper(t *testing.T) {
	s := tpchSession(t, 1000)
	q, err := s.Parse(`SELECT * FROM part CONSTRAINT COUNT(*) = 100 WHERE p_retailprice < 1200`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Refine(q, Options{Delta: 0.05, Gamma: 30})
	if err != nil {
		t.Fatal(err)
	}
	if out := Explain(q, res); !strings.Contains(out, "explored") {
		t.Errorf("Explain output:\n%s", out)
	}
}
