module acquire

go 1.22
