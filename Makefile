GO ?= go

.PHONY: build test race bench vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Figure-regeneration benchmarks (bench-friendly scale; full scale via
# cmd/acqbench -rows 1000000). The parallel-exploration sweep is
# BenchmarkParallelExplore.
bench:
	$(GO) test -run xxx -bench=. -benchmem .
