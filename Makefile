GO ?= go

.PHONY: build test race bench bench-json bench-check bench-obs vet profile

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Figure-regeneration benchmarks (bench-friendly scale; full scale via
# cmd/acqbench -rows 1000000). The parallel-exploration sweep is
# BenchmarkParallelExplore.
bench:
	$(GO) test -run xxx -bench=. -benchmem .

# Machine-readable baselines: the fig. 8 ratio sweep, the cached
# repeated-workload study, the shard sweep, the scan-path study and the
# clustering studies — figures, config and the metric registry snapshot
# in one JSON file each. The committed BENCH_*.json files are the
# reference artifacts; regenerate after a perf-relevant change and
# compare before committing. Every write goes through schema validation
# (harness.ValidateResults) plus a temp-file rename, and the final
# bench-check pass re-validates the files on disk, so a failed run can
# never leave a malformed or truncated artifact behind.
bench-json:
	$(GO) run ./cmd/acqbench -experiment fig8 -rows 20000 -json BENCH_baseline.json
	$(GO) test -run xxx -bench BenchmarkRepeatedWorkload -benchtime 1x .
	$(GO) run ./cmd/acqbench -experiment repeated -cache -rows 20000 -json BENCH_cache.json
	$(GO) run ./cmd/acqbench -experiment shards -rows 100000 -json BENCH_shards.json
	$(GO) run ./cmd/acqbench -experiment scan -rows 20000 -json BENCH_scan.json
	$(GO) run ./cmd/acqbench -experiment autocluster -rows 20000 -json BENCH_autocluster.json
	$(GO) run ./cmd/acqbench -experiment zorder -rows 20000 -json BENCH_zorder.json
	$(GO) run ./cmd/benchcheck BENCH_*.json

# Validate the committed benchmark artifacts against the harness
# results schema without regenerating them.
bench-check:
	$(GO) run ./cmd/benchcheck BENCH_*.json

# Metrics-overhead guard: the exploration sweep bare vs with a live
# registry/observer attached. The two ns/op columns should be within
# noise of each other.
bench-obs:
	$(GO) test -run xxx -bench='BenchmarkParallelExplore(Observed)?$$' -benchmem .

# Capture a 10s CPU profile from a live acqbench run through the pprof
# endpoint the observability layer serves. Writes cpu.pprof; inspect
# with `go tool pprof cpu.pprof`.
PROFILE_ADDR ?= 127.0.0.1:8099
profile:
	$(GO) run ./cmd/acqbench -experiment fig8 -rows 50000 -metrics-addr $(PROFILE_ADDR) & \
	BENCH_PID=$$!; \
	sleep 2; \
	curl -fsS -o cpu.pprof "http://$(PROFILE_ADDR)/debug/pprof/profile?seconds=10" || { kill $$BENCH_PID; exit 1; }; \
	kill $$BENCH_PID 2>/dev/null; \
	echo "wrote cpu.pprof"
