// Outlier analysis: the paper's third motivating scenario — "select
// patients who had extremely high average cost" — an AVG-constrained
// ACQ. AVG lacks direct optimal substructure but decomposes into
// SUM/COUNT (§2.6), which ACQUIRE maintains incrementally.
//
// We also demonstrate the §7.2 contraction direction (too many rows)
// and a user-defined aggregate registered at runtime.
//
//	go run ./examples/outliers
package main

import (
	"fmt"
	"log"

	"acquire/acq"
)

func main() {
	// The partsupp table stands in for a claims table: ps_supplycost
	// plays "cost per encounter".
	session, err := acq.NewTPCHSession(80_000, 0, 23)
	if err != nil {
		log.Fatal(err)
	}

	// Which cost filter selects a cohort whose AVERAGE supply cost is
	// 600? The analyst's starting filter is far too low.
	const sql = `
		SELECT * FROM partsupp
		CONSTRAINT AVG(ps_supplycost) = 450
		WHERE ps_supplycost <= 300 AND ps_availqty <= 4000`
	query, err := session.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	avg0, err := session.Estimate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("starting cohort has AVG cost %.1f; analyst wants cohorts around 450\n", avg0)

	result, err := session.Refine(query, acq.Options{Gamma: 16, Delta: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	if result.Satisfied {
		fmt.Printf("cohort query with AVG %.1f:\n   %s\n\n", result.Best.Aggregate, result.Best.ToSQL())
	} else {
		fmt.Printf("no cohort within tolerance; closest AVG %.1f\n\n", result.Closest.Aggregate)
	}

	// Contraction (§7.2): the inverse problem. This filter returns far
	// too many rows for a manual chart review — shrink it to at most 20000.
	const wide = `
		SELECT * FROM partsupp
		CONSTRAINT COUNT(*) <= 20000
		WHERE ps_supplycost <= 800`
	cq, err := session.Parse(wide)
	if err != nil {
		log.Fatal(err)
	}
	n0, err := session.Estimate(cq)
	if err != nil {
		log.Fatal(err)
	}
	cres, err := session.Refine(cq, acq.Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	if cres.Satisfied {
		fmt.Printf("contraction: %0.f rows -> %0.f rows via\n   %s\n\n",
			n0, cres.Best.Aggregate, cres.Best.ToSQL())
	}

	// A user-defined OSP aggregate: total squared cost, a dispersion
	// proxy that still merges across disjoint parts (§2.6(b)).
	if err := acq.RegisterUDA(acq.UDA{
		Name:  "SUMSQ",
		Map:   func(v float64) float64 { return v * v },
		Final: func(p acq.Partial) float64 { return p.User },
	}); err != nil {
		log.Fatal(err)
	}
	uq, err := session.Parse(`
		SELECT * FROM partsupp
		CONSTRAINT SUMSQ(ps_supplycost) >= 2B
		WHERE ps_supplycost <= 250`)
	if err != nil {
		log.Fatal(err)
	}
	ures, err := session.Refine(uq, acq.Options{Gamma: 12, Delta: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	if ures.Satisfied {
		fmt.Printf("UDA constraint met at SUMSQ %.3g:\n   %s\n", ures.Best.Aggregate, ures.Best.ToSQL())
	}
}
