// Ontology refinement: §7.3 — categorical predicates refine over a
// taxonomy tree. Alice's campaign targets East-coast cities; when the
// audience is too small, ACQUIRE relaxes the location predicate by
// rolling up the geography taxonomy (nearby regions first), exactly as
// Figure 7 sketches for cuisine and location hierarchies.
//
//	go run ./examples/ontology
package main

import (
	"fmt"
	"log"

	"acquire/acq"
)

func main() {
	session, err := acq.NewUsersSession(100_000, 0, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Geography taxonomy (Figure 7.a's shape).
	geo := acq.NewTaxonomy("US")
	for region, cities := range map[string][]string{
		"EastCoast": {"Boston", "New York", "Miami"},
		"WestCoast": {"Seattle", "Portland"},
		"Central":   {"Austin", "Chicago", "Denver"},
	} {
		geo.MustAdd("US", region)
		for _, c := range cities {
			geo.MustAdd(region, c)
		}
	}

	const sql = `
		SELECT * FROM users
		CONSTRAINT COUNT(*) = 30000
		WHERE (location IN ('Boston', 'New York')) AND age <= 30`
	query, err := session.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	reach, err := session.Estimate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Boston/NY under-30 audience: %.0f of the 30000 needed\n\n", reach)

	// Rewrite the categorical predicate into a refinable
	// taxonomy-distance dimension: refinement score u admits users in
	// cities within u roll-up steps of {Boston, New York}.
	refinable, err := session.RewriteCategorical(query, 0, geo)
	if err != nil {
		log.Fatal(err)
	}

	result, err := session.Refine(refinable, acq.Options{Gamma: 8, Delta: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	if !result.Satisfied {
		log.Fatalf("no refinement found: %+v", result)
	}
	best := result.Best
	fmt.Printf("best refinement reaches %.0f users (refinement %.2f):\n   %s\n\n",
		best.Aggregate, best.QScore, best.ToSQL())

	// Decode the taxonomy dimension: its score is the allowed roll-up
	// distance.
	for i := range refinable.Dims {
		if refinable.Dims[i].Name != "" {
			fmt.Printf("the '%s' dimension relaxed to distance %.1f — ", refinable.Dims[i].Name, best.Scores[i])
			switch {
			case best.Scores[i] < 1:
				fmt.Println("still only the original cities")
			case best.Scores[i] < 3:
				fmt.Println("siblings under the same region (e.g. Miami) are now included")
			default:
				fmt.Println("cross-region cities are now included")
			}
		}
	}
}
