// Ad campaign: Example 1 of the paper (HighStyle Designers).
//
// Campaign manager Alice must reach exactly 1% of the user base, but
// her demographic criteria are too strict. Gender is non-negotiable
// (NOREFINE); age, income and distance-from-store can flex. ACQUIRE
// returns alternative targeting queries that hit the audience size
// while staying as close to her intent as possible — instead of the
// manual trial-and-error loop the Facebook ad interface forces.
//
//	go run ./examples/adcampaign
package main

import (
	"fmt"
	"log"

	"acquire/acq"
)

func main() {
	const population = 200_000
	session, err := acq.NewUsersSession(population, 0, 7)
	if err != nil {
		log.Fatal(err)
	}

	target := population / 100
	sql := fmt.Sprintf(`
		SELECT * FROM users
		CONSTRAINT COUNT(*) = %d
		WHERE (gender = 'Women') NOREFINE
		  AND 18 <= age <= 35
		  AND income <= 70000
		  AND distance <= 35`, target)

	query, err := session.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	reach, err := session.Estimate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alice's criteria reach %.0f users — %.0f%% of the %d she needs.\n\n",
		reach, 100*reach/float64(target), target)

	// Alice would rather widen the income band than the age band:
	// weight the age dimensions 3x so their refinement is penalised.
	// The parser split "18 <= age <= 27" into two dimensions (lo, hi).
	weights := make([]float64, len(query.Dims))
	for i := range query.Dims {
		if query.Dims[i].Col.Column == "age" {
			weights[i] = 3
		}
	}
	norm, err := acq.LpNorm(1, weights)
	if err != nil {
		log.Fatal(err)
	}

	result, err := session.Refine(query, acq.Options{Gamma: 12, Delta: 0.05, Norm: norm})
	if err != nil {
		log.Fatal(err)
	}
	if !result.Satisfied {
		log.Fatalf("no viable targeting found: %+v", result)
	}

	fmt.Println("alternative targeting queries, least-changed first:")
	for i, rq := range result.Queries {
		if i == 3 {
			break
		}
		fmt.Printf("\n%d. reach %.0f users (weighted refinement %.2f)\n   %s\n",
			i+1, rq.Aggregate, rq.QScore, rq.ToSQL())
	}

	stats := session.Stats()
	fmt.Printf("\n[%d evaluation-layer queries, %d rows scanned — one interactive round trip,\n"+
		" not %d manual refine-and-estimate iterations]\n",
		stats.Queries, stats.RowsScanned, result.Explored)
}
