// Quickstart: the smallest end-to-end ACQUIRE run.
//
// We generate a synthetic product catalog, write an aggregation
// constrained query whose WHERE clause is too strict to reach the
// required audience, and let ACQUIRE recommend minimally refined
// queries that hit the target.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"acquire/acq"
)

func main() {
	// A 50K-row TPC-H subset: supplier, part, partsupp.
	session, err := acq.NewTPCHSession(50_000, 0, 42)
	if err != nil {
		log.Fatal(err)
	}

	// An ACQ in the paper's SQL dialect: CONSTRAINT states the
	// aggregate requirement; NOREFINE pins predicates that must not
	// change. Everything else is fair game for refinement.
	const sql = `
		SELECT * FROM part
		CONSTRAINT COUNT(*) = 2500
		WHERE p_retailprice < 1200 AND (p_size <= 25) NOREFINE`

	query, err := session.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 of the architecture (Figure 2): estimate the original
	// aggregate. If it already meets the constraint there is nothing
	// to refine.
	original, err := session.Estimate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original query matches %.0f parts; the order needs %.0f\n",
		original, query.Constraint.Target)

	// Refine: γ bounds how far answers may drift from the optimal
	// refinement, δ bounds the aggregate error.
	result, err := session.Refine(query, acq.Options{Gamma: 10, Delta: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	if !result.Satisfied {
		log.Fatalf("no refinement found: %+v", result)
	}

	fmt.Printf("\nACQUIRE examined %d refined queries using %d cell executions and recommends:\n\n",
		result.Explored, result.CellQueries)
	for i, rq := range result.Queries {
		if i == 3 {
			break
		}
		fmt.Printf("%d. %s\n   -> %0.f parts (refinement score %.2f, error %.3f)\n\n",
			i+1, rq.ToSQL(), rq.Aggregate, rq.QScore, rq.Err)
	}
}
