// Supply chain: Example 2 of the paper (HybridCars Co.).
//
// HybridCars needs 100K units of a part. The join structure of the
// query (supplier ⋈ partsupp ⋈ part) is pinned with NOREFINE; the
// price and account-balance filters may flex. The constraint is on
// SUM(ps_availqty) — an aggregate none of the baseline techniques can
// target (Table 1) — with a >= comparison scored by the hinge error of
// §2.5.
//
//	go run ./examples/supplychain
package main

import (
	"fmt"
	"log"

	"acquire/acq"
)

func main() {
	session, err := acq.NewTPCHSession(100_000, 0, 11)
	if err != nil {
		log.Fatal(err)
	}

	const sql = `
		SELECT * FROM supplier, part, partsupp
		CONSTRAINT SUM(ps_availqty) >= 60M
		WHERE (s_suppkey = ps_suppkey) NOREFINE
		  AND (p_partkey = ps_partkey) NOREFINE
		  AND (p_retailprice < 1000)
		  AND (s_acctbal < 2000)
		  AND (p_size <= 18) NOREFINE`

	query, err := session.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	avail, err := session.Estimate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suppliers matching the original order criteria can provide %.3gM units (need 60M)\n\n",
		avail/1e6)

	result, err := session.Refine(query, acq.Options{Gamma: 20, Delta: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	if !result.Satisfied {
		log.Fatalf("no refinement meets the order volume: %+v", result)
	}

	fmt.Println("procurement queries that secure the volume, least-changed first:")
	for i, rq := range result.Queries {
		if i == 3 {
			break
		}
		fmt.Printf("\n%d. secures %.3gM units (refinement %.2f)\n   %s\n",
			i+1, rq.Aggregate/1e6, rq.QScore, rq.ToSQL())
	}

	// The same search also works when the join itself may relax —
	// e.g. allowing near-miss supplier keys to model alternate
	// fulfilment partners (§2.4: joins refine exactly like selects).
	jq := query.Clone()
	jq.Fixed = jq.Fixed[1:] // unpin the supplier-partsupp equi-join
	jq.Dims = append(jq.Dims, acq.Dimension{
		Kind:  acq.JoinBand,
		Left:  acq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
		Right: acq.ColumnRef{Table: "partsupp", Column: "ps_suppkey"},
		Width: 100,
	})
	jr, err := session.Refine(jq, acq.Options{Gamma: 20, Delta: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	if jr.Satisfied {
		fmt.Printf("\nwith a refinable join, the least-changed plan is:\n   %s\n", jr.Best.ToSQL())
	}
}
