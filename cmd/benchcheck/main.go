// Command benchcheck validates committed benchmark artifacts
// (BENCH_*.json) against the schema the harness writes: a real
// generation timestamp, unique non-empty figure IDs, series lengths
// matching their X axes, and finite numbers throughout. It shares
// harness.ValidateResults with acqbench's write path, so the files in
// the repo are held to exactly the invariants a fresh run must satisfy
// before it may overwrite them.
//
//	benchcheck BENCH_*.json
//	benchcheck                 # defaults to ./BENCH_*.json
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"acquire/internal/harness"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil || len(matches) == 0 {
			fmt.Fprintln(os.Stderr, "benchcheck: no BENCH_*.json files found")
			os.Exit(1)
		}
		args = matches
	}
	bad := 0
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			bad++
			continue
		}
		r, err := harness.ReadResults(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("benchcheck: %s: ok (%d figures, %d metrics, generated %s)\n",
			path, len(r.Figures), len(r.Metrics), r.GeneratedAt.Format("2006-01-02"))
	}
	if bad > 0 {
		os.Exit(1)
	}
}
