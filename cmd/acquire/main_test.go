package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(context.Background(), args, &sb)
	return sb.String(), err
}

func TestRunTPCH(t *testing.T) {
	out, err := runCLI(t,
		"-dataset", "tpch", "-rows", "3000", "-gamma", "30",
		"-sql", `SELECT * FROM part CONSTRAINT COUNT(*) = 400 WHERE p_retailprice < 1200`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"original query aggregate", "satisfy the constraint", "p_retailprice <="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExplainAndShow(t *testing.T) {
	out, err := runCLI(t,
		"-dataset", "users", "-rows", "2000", "-explain", "-show", "2",
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 900 WHERE age <= 30`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"seq", "outcome", "result rows", "users.age"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNorms(t *testing.T) {
	for _, norm := range []string{"l1", "l2", "linf"} {
		out, err := runCLI(t,
			"-dataset", "users", "-rows", "1000", "-norm", norm,
			"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 400 WHERE age <= 30 AND income <= 60000`)
		if err != nil {
			t.Fatalf("norm %s: %v", norm, err)
		}
		if !strings.Contains(out, "explored") {
			t.Errorf("norm %s output:\n%s", norm, out)
		}
	}
}

func TestRunGridIndexFlag(t *testing.T) {
	_, err := runCLI(t,
		"-dataset", "users", "-rows", "1000", "-gridindex", "users:age,income:16",
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 400 WHERE age <= 30`)
	if err != nil {
		t.Fatalf("run with grid index: %v", err)
	}
}

func TestRunLoadCSV(t *testing.T) {
	dir := t.TempDir()
	// Produce a CSV via a session save, then load it through -load.
	csv := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(csv, []byte("x:DOUBLE\n1\n2\n3\n4\n5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t,
		"-load", "t="+csv,
		"-sql", `SELECT * FROM t CONSTRAINT COUNT(*) = 4 WHERE x <= 2`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "satisfy the constraint") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunUnsatisfiable(t *testing.T) {
	out, err := runCLI(t,
		"-dataset", "users", "-rows", "500",
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 1M WHERE age <= 30`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "no refinement met the constraint") || !strings.Contains(out, "closest query") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunTaxonomy(t *testing.T) {
	dir := t.TempDir()
	outline := filepath.Join(dir, "geo.txt")
	if err := os.WriteFile(outline, []byte(
		"US\n  East\n    Boston\n    New York\n    Miami\n  West\n    Seattle\n    Portland\n  Central\n    Austin\n    Chicago\n    Denver\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t,
		"-dataset", "users", "-rows", "3000", "-taxonomy", "location="+outline, "-gamma", "8",
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 1200 WHERE location IN ('Boston', 'New York') AND age <= 40`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "location__dist") {
		t.Errorf("expected taxonomy-distance dimension in output:\n%s", out)
	}

	// Errors: malformed flag, missing file, no matching predicate.
	if _, err := runCLI(t, "-dataset", "users", "-rows", "100", "-taxonomy", "nope",
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 10 WHERE age <= 40`); err == nil {
		t.Error("malformed -taxonomy: expected error")
	}
	if _, err := runCLI(t, "-dataset", "users", "-rows", "100", "-taxonomy", "location=/missing.txt",
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 10 WHERE location IN ('Boston')`); err == nil {
		t.Error("missing outline: expected error")
	}
	if _, err := runCLI(t, "-dataset", "users", "-rows", "100", "-taxonomy", "gender="+outline,
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 10 WHERE age <= 40`); err == nil {
		t.Error("no matching predicate: expected error")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                // no -sql
		{"-sql", "SELECT"},                // no dataset/load
		{"-dataset", "nope", "-sql", "x"}, // bad dataset
		{"-dataset", "users", "-rows", "100", "-sql", "garbage"},
		{"-dataset", "users", "-rows", "100", "-norm", "l9", "-sql", "SELECT * FROM users CONSTRAINT COUNT(*) = 1 WHERE age <= 30"},
		{"-dataset", "users", "-rows", "100", "-gridindex", "bad", "-sql", "SELECT * FROM users CONSTRAINT COUNT(*) = 1 WHERE age <= 30"},
		{"-dataset", "users", "-rows", "100", "-load", "malformed", "-sql", "x"},
		{"-load", "t=/does/not/exist.csv", "-sql", "x"},
	}
	for i, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunSaveFlag(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t,
		"-dataset", "users", "-rows", "200", "-save", dir,
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 50 WHERE age <= 30`); err != nil {
		t.Fatalf("run with -save: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "users.csv")); err != nil {
		t.Errorf("saved CSV missing: %v", err)
	}
}

func TestRunMetricsAndLogFlags(t *testing.T) {
	// -metrics-addr binds an ephemeral port and serves the session
	// registry for the run's duration; -log-json streams events to
	// stderr. Both must compose with a normal refinement.
	out, err := runCLI(t,
		"-dataset", "users", "-rows", "1000",
		"-metrics-addr", "127.0.0.1:0", "-log-json",
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 400 WHERE age <= 30`)
	if err != nil {
		t.Fatalf("run with -metrics-addr/-log-json: %v", err)
	}
	if !strings.Contains(out, "satisfy the constraint") {
		t.Errorf("output:\n%s", out)
	}

	// A malformed address must fail rather than run blind.
	if _, err := runCLI(t,
		"-dataset", "users", "-rows", "100", "-metrics-addr", "256.0.0.1:bad",
		"-sql", `SELECT * FROM users CONSTRAINT COUNT(*) = 10 WHERE age <= 30`); err == nil {
		t.Error("bad -metrics-addr: expected error")
	}
}
