// Command acquire runs an Aggregation Constrained Query against a
// generated or CSV-loaded dataset and prints the refined queries
// ACQUIRE recommends.
//
// Examples:
//
//	# Generated TPC-H subset, the paper's Q2' (Example 2):
//	acquire -dataset tpch -rows 100000 -sql "
//	  SELECT * FROM supplier, part, partsupp
//	  CONSTRAINT SUM(ps_availqty) >= 0.1M
//	  WHERE (s_suppkey = ps_suppkey) NOREFINE AND
//	        (p_partkey = ps_partkey) NOREFINE AND
//	        (p_retailprice < 1000) AND (s_acctbal < 2000)"
//
//	# CSV tables (written by `acquire`'s -save or cmd/tpchgen):
//	acquire -load users=users.csv -sql "SELECT * FROM users CONSTRAINT COUNT(*) = 1000 WHERE age <= 30"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"acquire/acq"
	gridindex "acquire/internal/index"
)

func main() {
	// Ctrl-C / SIGTERM cancels the refinement search; the search checks
	// the context at every exploration layer, so the partial result — the
	// best refinement found before the interrupt — is still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "acquire: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "acquire:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("acquire", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "", "generated dataset: tpch or users (alternative to -load)")
		rows    = fs.Int("rows", 100000, "generated dataset size")
		zipf    = fs.Float64("zipf", 0, "Zipf skew Z for generated data (0 = uniform)")
		seed    = fs.Int64("seed", 1, "generation seed")
		loads   = multiFlag{}
		sql     = fs.String("sql", "", "the ACQ statement (required)")
		gamma   = fs.Float64("gamma", 10, "refinement threshold γ")
		delta   = fs.Float64("delta", 0.05, "aggregate error threshold δ")
		norm    = fs.String("norm", "l1", "refinement norm: l1, l2, linf")
		index   = fs.String("gridindex", "", "build a §7.4 grid index: table:col1,col2[:bins]")
		gridAgg = fs.Bool("gridagg", false, "build an aggregate-augmented grid over the query's select dimensions (single-table queries)")
		cache   = fs.Bool("cache", false, "cache partial aggregates across searches (results stay bit-identical)")
		cacheMB = fs.Int("cache-mb", 64, "partial-aggregate cache capacity in MiB (with -cache)")
		shards  = fs.Int("shards", 1, "scatter-gather exact execution across N range-partitioned in-process shards")
		autoCl  = fs.Bool("autocluster", false, "learn the workload's dominant range column and re-sort tables around it between region batches")
		zorder  = fs.Bool("zorder", false, "admit two-column Z-order layouts so zone maps prune on both range axes (implies -autocluster)")
		maxOut  = fs.Int("max", 5, "maximum refined queries to print")
		taxPath = fs.String("taxonomy", "", "make a string predicate refinable: column=outline-file (§7.3)")
		explain = fs.Bool("explain", false, "print the search trace (one line per explored refined query)")
		show    = fs.Int("show", 0, "materialise up to N result rows of the best refined query")
		saveDir = fs.String("save", "", "write every loaded/generated table to this directory as CSV")
		metrics = fs.String("metrics-addr", "", "serve /metrics, /healthz, /debug/pprof and /debug/traces on this address (e.g. :8080)")
		logJSON = fs.Bool("log-json", false, "emit structured search/engine events as JSON on stderr")
		traceDir    = fs.String("trace-dir", "", "record search span trees and write them here as Chrome trace-event JSON (Perfetto-loadable)")
		traceSample = fs.Int("trace-sample", 0, "with tracing: keep 1-in-N fast searches (0 or 1 = keep all)")
		traceSlow   = fs.Duration("trace-slow", 0, "with tracing: always keep searches slower than this (tail-based keep)")
	)
	fs.Var(&loads, "load", "load a CSV table: name=path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sql == "" {
		return fmt.Errorf("-sql is required")
	}

	var s *acq.Session
	var err error
	switch *dataset {
	case "tpch":
		s, err = acq.NewTPCHSession(*rows, *zipf, *seed)
	case "users":
		s, err = acq.NewUsersSession(*rows, *zipf, *seed)
	case "":
		if len(loads) == 0 {
			return fmt.Errorf("provide -dataset tpch|users or at least one -load name=path")
		}
		s = acq.NewSession()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		return err
	}
	for _, l := range loads {
		name, path, ok := strings.Cut(l, "=")
		if !ok {
			return fmt.Errorf("-load wants name=path, got %q", l)
		}
		if err := s.LoadCSV(name, path); err != nil {
			return err
		}
	}

	// Observability: -metrics-addr serves the session registry live
	// (curl addr/metrics mid-search); -log-json streams the structured
	// event feed; the -trace-* flags record hierarchical search traces
	// into a flight recorder served at /debug/traces and archived to
	// -trace-dir. All attach the same observer, so they compose.
	tracing := *traceDir != "" || *traceSample > 0 || *traceSlow > 0
	var rec *acq.FlightRecorder
	if *metrics != "" || *logJSON || tracing {
		reg := s.Metrics()
		if *logJSON {
			logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
			s.Observe(s.Observer().WithLogger(logger))
		}
		if tracing {
			rec = s.EnableTracing(acq.RecorderConfig{
				SampleN: *traceSample, SlowThreshold: *traceSlow,
			})
		}
		if *metrics != "" {
			addr, shutdown, err := acq.ServeObs(*metrics, reg, rec)
			if err != nil {
				return err
			}
			defer shutdown()
			fmt.Fprintf(os.Stderr, "acquire: serving metrics on http://%s/metrics (pprof at /debug/pprof/, traces at /debug/traces)\n", addr)
		}
	}

	if *saveDir != "" {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			return err
		}
		for _, name := range s.Tables() {
			if err := s.SaveCSV(name, filepath.Join(*saveDir, name+".csv")); err != nil {
				return err
			}
		}
	}

	if *index != "" {
		parts := strings.Split(*index, ":")
		if len(parts) < 2 {
			return fmt.Errorf("-gridindex wants table:col1,col2[:bins]")
		}
		bins := 32
		if len(parts) == 3 {
			if _, err := fmt.Sscanf(parts[2], "%d", &bins); err != nil {
				return fmt.Errorf("-gridindex bins: %w", err)
			}
		}
		if err := s.BuildGridIndex(parts[0], strings.Split(parts[1], ","), bins); err != nil {
			return err
		}
	}

	var n acq.Norm
	switch *norm {
	case "l1":
		n = acq.L1Norm()
	case "l2":
		if n, err = acq.LpNorm(2, nil); err != nil {
			return err
		}
	case "linf":
		n = acq.LInfNorm(nil)
	default:
		return fmt.Errorf("unknown norm %q", *norm)
	}

	q, err := s.Parse(*sql)
	if err != nil {
		return err
	}
	if *taxPath != "" {
		column, path, ok := strings.Cut(*taxPath, "=")
		if !ok {
			return fmt.Errorf("-taxonomy wants column=outline-file, got %q", *taxPath)
		}
		tree, err := acq.LoadTaxonomy(path)
		if err != nil {
			return err
		}
		idx := -1
		for i := range q.Fixed {
			if q.Fixed[i].Kind == acq.FixedStringInKind && strings.EqualFold(q.Fixed[i].Col.Column, column) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("-taxonomy: no string predicate on column %q", column)
		}
		q, err = s.RewriteCategorical(q, idx, tree)
		if err != nil {
			return err
		}
	}

	// Sharding first: grid indexes and the cache attach to whichever
	// exact evaluator is active, so the shards must exist before either.
	if *shards > 1 {
		if err := s.EnableSharding(*shards); err != nil {
			return err
		}
	}
	if *gridAgg {
		if err := buildGridAgg(s, q); err != nil {
			return err
		}
	}
	if *cache {
		s.EnableCache(int64(*cacheMB) << 20)
	}
	if *autoCl || *zorder {
		s.EnableAutoCluster()
	}
	if *zorder {
		s.EnableZOrder()
	}

	orig, err := s.Estimate(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "original query aggregate: %.6g (target %s %.6g)\n",
		orig, q.Constraint.Op, q.Constraint.Target)

	opts := acq.Options{Gamma: *gamma, Delta: *delta, Norm: n}
	var trace acq.TraceBuffer
	if *explain {
		opts.Trace = &trace
	}
	res, runErr := s.RefineContext(ctx, q, opts)
	if runErr != nil && res == nil {
		return runErr
	}
	if runErr != nil {
		// Cancelled mid-search: report what was found before bailing.
		fmt.Fprintf(out, "search interrupted — partial results after %d explored queries:\n", res.Explored)
	}
	if *explain {
		if _, err := trace.WriteTo(out); err != nil {
			return err
		}
	}
	if rec != nil && *traceDir != "" {
		n, err := rec.WriteDir(*traceDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "acquire: wrote %d trace(s) to %s\n", n, *traceDir)
	}
	st := s.Stats()
	fmt.Fprintf(out, "explored %d refined queries via %d evaluation-layer executions (%d rows scanned)\n",
		res.Explored, st.Queries, st.RowsScanned)
	if *cache {
		fmt.Fprintf(out, "partial-aggregate cache: %d hits, %d misses\n", st.CacheHits, st.CacheMisses)
	}
	if *shards > 1 {
		sc := s.ScatterStats()
		fmt.Fprintf(out, "sharding: %d shards, %d batches scattered, %d routed whole, %d partials merged\n",
			s.NumShards(), sc.Scatters, sc.Routed, sc.Partials)
		for _, sh := range s.ShardStats() {
			fmt.Fprintf(out, "  shard %d: rows [%d,%d) — %d executions, %d rows scanned\n",
				sh.Shard, sh.Lo, sh.Hi, sh.Stats.Queries, sh.Stats.RowsScanned)
		}
	}

	if !res.Satisfied {
		fmt.Fprintf(out, "no refinement met the constraint within δ=%g", *delta)
		if res.Note != "" {
			fmt.Fprintf(out, " (%s)", res.Note)
		}
		fmt.Fprintln(out)
		if res.Closest != nil {
			fmt.Fprintf(out, "closest query (aggregate %.6g, error %.4f):\n  %s\n",
				res.Closest.Aggregate, res.Closest.Err, res.Closest.ToSQL())
		}
		return runErr
	}

	fmt.Fprintf(out, "%d refined quer(ies) satisfy the constraint; best %d:\n", len(res.Queries), min(*maxOut, len(res.Queries)))
	for i, rq := range res.Queries {
		if i >= *maxOut {
			break
		}
		fmt.Fprintf(out, "%2d. QScore=%.3f aggregate=%.6g err=%.4f\n    %s\n",
			i+1, rq.QScore, rq.Aggregate, rq.Err, rq.ToSQL())
	}
	if *show > 0 {
		rs, err := s.Preview(res.Best, *show)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nfirst %d result rows of the best refined query:\n%s", len(rs.Rows), strings.Join(rs.Columns, "  "))
		fmt.Fprintln(out)
		for _, row := range rs.Rows {
			for j, v := range row {
				if j > 0 {
					fmt.Fprint(out, "  ")
				}
				fmt.Fprint(out, v.String())
			}
			fmt.Fprintln(out)
		}
		if rs.Truncated {
			fmt.Fprintln(out, "... (truncated)")
		}
	}
	return runErr
}

// buildGridAgg builds an aggregate-augmented grid from the parsed
// query's select dimensions (-gridagg): the grid covers each refinable
// column, materializing the constraint's aggregate column when it lives
// on the queried table. Multi-table queries and non-select dimensions
// are skipped with a note — the box kernel never engages for them.
func buildGridAgg(s *acq.Session, q *acq.Query) error {
	if len(q.Tables) != 1 {
		fmt.Fprintln(os.Stderr, "acquire: -gridagg skipped (multi-table query)")
		return nil
	}
	var cols []string
	seen := map[string]bool{}
	for i := range q.Dims {
		d := &q.Dims[i]
		switch d.Kind {
		case acq.SelectLE, acq.SelectGE, acq.SelectEQ:
		default:
			fmt.Fprintln(os.Stderr, "acquire: -gridagg skipped (non-select dimension)")
			return nil
		}
		key := strings.ToLower(d.Col.Column)
		if !seen[key] {
			seen[key] = true
			cols = append(cols, d.Col.Column)
		}
	}
	if len(cols) == 0 {
		fmt.Fprintln(os.Stderr, "acquire: -gridagg skipped (no refinable dimensions)")
		return nil
	}
	var aggCols []string
	if a := q.Constraint.Attr; a.Column != "" && strings.EqualFold(a.Table, q.Tables[0]) {
		aggCols = []string{a.Column}
	}
	rows, err := s.TableRows(q.Tables[0])
	if err != nil {
		return err
	}
	bins := gridindex.BinsForRows(len(cols), rows)
	if err := s.BuildGridAggIndex(q.Tables[0], cols, aggCols, bins); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "acquire: aggregate grid over %s(%s) at %d bins/dim\n",
		q.Tables[0], strings.Join(cols, ","), bins)
	return nil
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
