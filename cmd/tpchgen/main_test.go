package main

import (
	"os"
	"path/filepath"
	"testing"

	"acquire/acq"
)

func TestGenerateTPCH(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dataset", "tpch", "-rows", "400", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"supplier", "part", "partsupp"} {
		path := filepath.Join(dir, name+".csv")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("missing %s: %v", path, err)
		}
	}
	// Round trip: load the CSVs into a session and query them.
	s := acq.NewSession()
	for _, name := range []string{"supplier", "part", "partsupp"} {
		if err := s.LoadCSV(name, filepath.Join(dir, name+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.TableRows("partsupp")
	if err != nil || n != 400 {
		t.Errorf("partsupp rows = %d, %v", n, err)
	}
	res, err := s.RefineSQL(`SELECT * FROM part CONSTRAINT COUNT(*) = 60
		WHERE p_retailprice < 1200`, acq.Options{Gamma: 30, Delta: 0.05})
	if err != nil {
		t.Fatalf("refine over loaded CSVs: %v", err)
	}
	if !res.Satisfied && res.Closest == nil {
		t.Errorf("refine result: %+v", res)
	}
}

func TestGenerateUsers(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dataset", "users", "-rows", "200", "-zipf", "1", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "users.csv")); err != nil {
		t.Error(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}); err == nil {
		t.Error("bad dataset: expected error")
	}
	if err := run([]string{"-dataset", "tpch", "-rows", "0"}); err == nil {
		t.Error("zero rows: expected error")
	}
}
