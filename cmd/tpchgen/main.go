// Command tpchgen generates the evaluation datasets of §8.3 as CSV
// files: the TPC-H subset (supplier, part, partsupp) or the Example-1
// users table, uniform or Zipf-skewed.
//
//	tpchgen -dataset tpch -rows 100000 -out ./data
//	tpchgen -dataset users -rows 1000000 -zipf 1 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"acquire/acq"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpchgen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "tpch", "dataset: tpch or users")
		rows    = fs.Int("rows", 100000, "dataset size (partsupp rows for tpch)")
		zipf    = fs.Float64("zipf", 0, "Zipf skew Z (0 = uniform, 1 = §8.4.4 skew)")
		seed    = fs.Int64("seed", 1, "generation seed")
		outDir  = fs.String("out", ".", "output directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var s *acq.Session
	var err error
	var tables []string
	switch *dataset {
	case "tpch":
		s, err = acq.NewTPCHSession(*rows, *zipf, *seed)
		tables = []string{"supplier", "part", "partsupp"}
	case "users":
		s, err = acq.NewUsersSession(*rows, *zipf, *seed)
		tables = []string{"users"}
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		path := filepath.Join(*outDir, t+".csv")
		if err := s.SaveCSV(t, path); err != nil {
			return err
		}
		n, err := s.TableRows(t)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", path, n)
	}
	return nil
}
