package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNamesAndKnown(t *testing.T) {
	n := names()
	for _, want := range []string{"fig8", "fig9", "fig10a", "fig10b", "fig10c", "fig11", "skew", "join", "ablation-incremental", "ablation-gridindex"} {
		if !strings.Contains(n, want) {
			t.Errorf("names missing %q", want)
		}
		if !known(want) {
			t.Errorf("known(%q) = false", want)
		}
	}
	if known("nonsense") {
		t.Error("known(nonsense) = true")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// Smallest end-to-end run: fig10b at tiny scale (ACQUIRE only).
	if err := run(context.Background(), []string{"-experiment", "fig10b", "-rows", "1000"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "table1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFig10aWithSizes(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "fig10a", "-sizes", "500,1000", "-tqgen-k", "3", "-tqgen-rounds", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSummary(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "summary", "-rows", "2000", "-tqgen-k", "4", "-tqgen-rounds", "2"}); err != nil {
		t.Fatalf("run summary: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment: expected error")
	}
	if err := run(context.Background(), []string{"-experiment", "fig10a", "-sizes", "a,b"}); err == nil {
		t.Error("bad sizes: expected error")
	}
}

func TestRunJSONResults(t *testing.T) {
	// -json archives figures + config + metric snapshot; the run is
	// instrumented, so engine counters must appear in the snapshot.
	path := filepath.Join(t.TempDir(), "results.json")
	if err := run(context.Background(), []string{
		"-experiment", "fig10b", "-rows", "1000", "-json", path, "-metrics-addr", "127.0.0.1:0",
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Config  map[string]any     `json:"config"`
		Figures []json.RawMessage  `json:"figures"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("results JSON: %v", err)
	}
	if len(res.Figures) == 0 {
		t.Error("results JSON has no figures")
	}
	if res.Config["Rows"] != float64(1000) {
		t.Errorf("config rows = %v", res.Config["Rows"])
	}
	if _, ok := res.Config["Obs"]; ok {
		t.Error("live observer handle leaked into results JSON")
	}
	if res.Metrics["acquire_engine_queries_total"] <= 0 {
		t.Errorf("metric snapshot missing engine counters: %v", res.Metrics)
	}
	if res.Metrics["acquire_searches_total"] <= 0 {
		t.Errorf("metric snapshot missing search counter: %v", res.Metrics)
	}
}
