package main

import (
	"context"
	"strings"
	"testing"
)

func TestNamesAndKnown(t *testing.T) {
	n := names()
	for _, want := range []string{"fig8", "fig9", "fig10a", "fig10b", "fig10c", "fig11", "skew", "join", "ablation-incremental", "ablation-gridindex"} {
		if !strings.Contains(n, want) {
			t.Errorf("names missing %q", want)
		}
		if !known(want) {
			t.Errorf("known(%q) = false", want)
		}
	}
	if known("nonsense") {
		t.Error("known(nonsense) = true")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// Smallest end-to-end run: fig10b at tiny scale (ACQUIRE only).
	if err := run(context.Background(), []string{"-experiment", "fig10b", "-rows", "1000"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "table1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFig10aWithSizes(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "fig10a", "-sizes", "500,1000", "-tqgen-k", "3", "-tqgen-rounds", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSummary(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "summary", "-rows", "2000", "-tqgen-k", "4", "-tqgen-rounds", "2"}); err != nil {
		t.Fatalf("run summary: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment: expected error")
	}
	if err := run(context.Background(), []string{"-experiment", "fig10a", "-sizes", "a,b"}); err == nil {
		t.Error("bad sizes: expected error")
	}
}
