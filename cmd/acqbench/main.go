// Command acqbench regenerates the paper's evaluation figures and
// tables (§8) as text tables: Figures 8-11, the skew and join studies,
// Table 1, and the repository's two ablations. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//
//	acqbench                         # every experiment at default scale
//	acqbench -experiment fig8        # one experiment
//	acqbench -rows 1000000           # paper-scale datasets
//	acqbench -sizes 1000,10000,100000,1000000 -experiment fig10a
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"acquire/internal/harness"
	"acquire/internal/obs"
)

type experiment struct {
	name string
	desc string
	run  func(context.Context, harness.Config, []int) ([]harness.Figure, error)
}

var experiments = []experiment{
	{"fig8", "Figures 8.a-8.c: ratio sweep, all methods", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.Figure8(ctx, c)
	}},
	{"fig9", "Figures 9.a-9.c: dimensionality sweep, all methods", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.Figure9(ctx, c)
	}},
	{"fig10a", "Figure 10.a: table-size sweep", func(ctx context.Context, c harness.Config, sizes []int) ([]harness.Figure, error) {
		return harness.Figure10a(ctx, c, sizes)
	}},
	{"fig10b", "Figure 10.b: refinement-threshold sweep", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.Figure10b(ctx, c)
	}},
	{"fig10c", "Figure 10.c: cardinality-threshold sweep", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.Figure10c(ctx, c)
	}},
	{"fig11", "Figures 11.a-11.b: aggregate types (SUM/COUNT/MAX)", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.Figure11(ctx, c)
	}},
	{"skew", "§8.4.4: Zipf Z=1 robustness study", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.SkewStudy(ctx, c)
	}},
	{"join", "join-predicate refinement study (Table 1 capability)", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.JoinRefinementStudy(ctx, c)
	}},
	{"order-sensitivity", "§8.4.1: BinSearch predicate-order instability sweep", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.OrderSensitivityStudy(ctx, c)
	}},
	{"eval-layers", "evaluation layers study (§3): exact vs sampling vs histogram", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.EvaluationLayerStudy(ctx, c)
	}},
	{"ablation-incremental", "incremental aggregate computation ablation (§5)", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.AblationIncremental(ctx, c)
	}},
	{"ablation-gridindex", "grid bitmap index ablation (§7.4)", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.AblationGridIndex(ctx, c)
	}},
	{"repeated", "repeated-workload study: cross-search partial-aggregate cache (pair with -cache)", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.RepeatedWorkload(ctx, c)
	}},
	{"shards", "sharded evaluation stack sweep: scatter-gather AggregateBatch vs the monolithic engine (fig. 8 workload)", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.ShardSweep(ctx, c)
	}},
	{"scan", "vectorized scan path study: legacy vs block-vectorized on the clustered fig. 8 and tpch join workloads (see -cluster)", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.ScanPathStudy(ctx, c)
	}},
	{"autocluster", "workload-adaptive clustering study: plain vs learned vs explicit -cluster layouts on the fig. 8 workload", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.AutoClusterStudy(ctx, c)
	}},
	{"zorder", "multi-dimensional skipping study: single-column vs Z-order auto-clustering on a two-range-axis workload, plus re-sort scheduling and per-shard divergence", func(ctx context.Context, c harness.Config, _ []int) ([]harness.Figure, error) {
		return harness.ZOrderStudy(ctx, c)
	}},
}

func main() {
	// Ctrl-C / SIGTERM cancels the context, which propagates through
	// every harness runner down to the evaluation layer's batch loops,
	// so even a 1M-row sweep stops within one region evaluation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "acqbench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "acqbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("acqbench", flag.ContinueOnError)
	var (
		expName = fs.String("experiment", "all", "experiment to run (all, table1, summary, "+names()+")")
		rows    = fs.Int("rows", 100000, "dataset size (the paper's headline scale is 1000000)")
		seed    = fs.Int64("seed", 1, "generation seed")
		delta   = fs.Float64("delta", 0.05, "aggregate error threshold δ")
		gamma   = fs.Float64("gamma", 20, "refinement threshold γ")
		sizesCS = fs.String("sizes", "", "comma-separated table sizes for fig10a (default 1000,10000,100000)")
		gridK   = fs.Int("tqgen-k", 0, "TQGen grid values per predicate (default 8)")
		rounds  = fs.Int("tqgen-rounds", 0, "TQGen zoom rounds (default 5)")
		gridAgg = fs.Bool("gridagg", false, "build aggregate-augmented grids: answer eligible cell queries from stored per-cell partials")
		cache   = fs.Bool("cache", false, "attach a cross-search partial-aggregate cache to every engine")
		shards  = fs.Int("shards", 1, "run harness engines as a ShardedEvaluator over N range-partitioned shards")
		cluster = fs.String("cluster", "", "re-sort generated tables by this numeric column before building engines (engages the vectorized path's zone maps)")
		autoCl  = fs.Bool("autocluster", false, "enable workload-adaptive clustering: engines learn the dominant range column from their own scans and re-sort between batches")
		zorder  = fs.Bool("zorder", false, "with -autocluster: admit two-column Z-order layouts so zone maps prune on both range axes (implies -autocluster)")
		cacheMB = fs.Int("cache-mb", 64, "region cache capacity in MiB (with -cache)")
		metrics = fs.String("metrics-addr", "", "serve /metrics, /healthz, /debug/pprof and /debug/traces on this address while experiments run")
		logJSON = fs.Bool("log-json", false, "emit structured search/engine events as JSON on stderr")
		jsonOut = fs.String("json", "", "also write figures + config + metric snapshot as JSON to this file")
		traceDir    = fs.String("trace-dir", "", "record search span trees and write them here as Chrome trace-event JSON")
		traceSample = fs.Int("trace-sample", 0, "with tracing: keep 1-in-N fast searches (0 or 1 = keep all)")
		traceSlow   = fs.Duration("trace-slow", 0, "with tracing: always keep searches slower than this (tail-based keep)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := harness.Config{
		Rows: *rows, Seed: *seed, Delta: *delta, Gamma: *gamma,
		TQGenGridK: *gridK, TQGenRounds: *rounds, GridAgg: *gridAgg,
		Shards: *shards, Cluster: *cluster, AutoCluster: *autoCl, ZOrder: *zorder,
	}
	if *cache {
		cfg.CacheMB = *cacheMB
	}

	// Observability: one registry + observer instruments every engine
	// and search the harness builds; -json snapshots it at the end.
	// The -trace-* flags additionally attach a flight recorder through
	// the same observer, so every harness search records a span tree.
	tracing := *traceDir != "" || *traceSample > 0 || *traceSlow > 0
	var reg *obs.Registry
	var rec *obs.FlightRecorder
	if *metrics != "" || *logJSON || *jsonOut != "" || tracing {
		reg = obs.NewRegistry()
		o := obs.NewObserver(reg)
		if *logJSON {
			o = o.WithLogger(slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})))
		}
		if tracing {
			rec = obs.NewFlightRecorder(obs.RecorderConfig{
				SampleN: *traceSample, SlowThreshold: *traceSlow,
			})
			o = o.WithRecorder(rec)
		}
		cfg.Obs = o
		if *metrics != "" {
			addr, shutdown, err := obs.Serve(*metrics, reg, rec)
			if err != nil {
				return err
			}
			defer shutdown()
			fmt.Fprintf(os.Stderr, "acqbench: serving metrics on http://%s/metrics (pprof at /debug/pprof/, traces at /debug/traces)\n", addr)
		}
	}
	var sizes []int
	if *sizesCS != "" {
		for _, s := range strings.Split(*sizesCS, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("-sizes: %w", err)
			}
			sizes = append(sizes, n)
		}
	}

	// writeJSON finalises the instrumented run: the per-phase latency
	// quantile table on stdout, recorded traces to -trace-dir, and —
	// when -json is set — figures, config and the metric registry
	// snapshot in one machine-readable file.
	writeJSON := func(figs []harness.Figure) error {
		if ls := harness.LatencySummary(reg); ls != "" {
			fmt.Println(ls)
		}
		if rec != nil && *traceDir != "" {
			n, err := rec.WriteDir(*traceDir)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "acqbench: wrote %d trace(s) to %s\n", n, *traceDir)
		}
		if *jsonOut == "" {
			return nil
		}
		// Write-validate-rename: WriteResults schema-checks the payload
		// before a byte lands, and the rename is atomic, so a failed or
		// interrupted run can never clobber a committed BENCH_*.json
		// with a truncated or malformed artifact.
		tmp := *jsonOut + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := harness.WriteResults(f, cfg, figs); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, *jsonOut)
	}

	if *expName == "table1" || *expName == "all" {
		fmt.Println(harness.Table1())
	}
	if *expName == "summary" {
		claims, figs, err := harness.Summary(ctx, cfg)
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Println(harness.FormatFigure(f))
		}
		fmt.Println(harness.FormatClaims(claims))
		return writeJSON(figs)
	}
	var allFigs []harness.Figure
	for _, ex := range experiments {
		if *expName != "all" && *expName != ex.name {
			continue
		}
		fmt.Printf("=== %s — %s (rows=%d, δ=%g, γ=%g) ===\n", ex.name, ex.desc, cfg.Rows, *delta, *gamma)
		figs, err := ex.run(ctx, cfg, sizes)
		if err != nil {
			return fmt.Errorf("%s: %w", ex.name, err)
		}
		for _, f := range figs {
			fmt.Println(harness.FormatFigure(f))
		}
		allFigs = append(allFigs, figs...)
	}
	if *expName != "all" && *expName != "table1" && *expName != "summary" && !known(*expName) {
		return fmt.Errorf("unknown experiment %q (want all, table1, summary, %s)", *expName, names())
	}
	return writeJSON(allFigs)
}

func names() string {
	out := make([]string, len(experiments))
	for i, ex := range experiments {
		out[i] = ex.name
	}
	return strings.Join(out, ", ")
}

func known(name string) bool {
	for _, ex := range experiments {
		if ex.name == name {
			return true
		}
	}
	return false
}
