// Package repro_test holds the figure-regeneration benchmarks: one
// testing.B target per table and figure of the paper's evaluation
// (§8), as indexed in DESIGN.md §4. Each benchmark runs the harness at
// a bench-friendly scale and reports the reproduced series' headline
// values as custom metrics, so `go test -bench=. -benchmem` both times
// the regeneration and exposes the numbers EXPERIMENTS.md records.
// Full-scale reproduction: cmd/acqbench -rows 1000000.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"acquire/internal/core"
	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/harness"
	"acquire/internal/index"
	"acquire/internal/obs"
	"acquire/internal/relq"
	"acquire/internal/tpch"
	"acquire/internal/workload"
)

// benchCfg is the scale used for benchmark runs. TQGen dominates the
// wall clock (by design — that is the paper's finding), so the dataset
// is kept at 10K rows; shapes are scale-stable (Figure 10.a is the
// scale sweep).
func benchCfg() harness.Config {
	return harness.Config{Rows: 10000, Seed: 1, Delta: 0.05, Gamma: 20, TQGenGridK: 6, TQGenRounds: 3}
}

// seriesY extracts one series' values from a figure.
func seriesY(b *testing.B, f harness.Figure, name string) []float64 {
	b.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s.Y
		}
	}
	b.Fatalf("series %q missing from figure %s", name, f.ID)
	return nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// BenchmarkFigure8ExecutionTime regenerates Figure 8.a (ratio sweep,
// execution time, all four methods) and reports the mean per-method
// times plus the TQGen/ACQUIRE slowdown factor.
func BenchmarkFigure8ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure8(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		t := figs[0]
		acq, tq := seriesY(b, t, "ACQUIRE"), seriesY(b, t, "TQGen")
		bs, tk := seriesY(b, t, "BinSearch"), seriesY(b, t, "Top-k")
		b.ReportMetric(mean(acq), "ACQUIRE-ms")
		b.ReportMetric(mean(tq), "TQGen-ms")
		b.ReportMetric(mean(bs), "BinSearch-ms")
		b.ReportMetric(mean(tk), "Top-k-ms")
		b.ReportMetric(mean(tq)/mean(acq), "TQGen/ACQUIRE")
	}
}

// BenchmarkFigure8AggregateError regenerates Figure 8.b (relative
// aggregate error).
func BenchmarkFigure8AggregateError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure8(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		e := figs[1]
		b.ReportMetric(mean(seriesY(b, e, "ACQUIRE")), "ACQUIRE-err")
		b.ReportMetric(mean(seriesY(b, e, "TQGen")), "TQGen-err")
		b.ReportMetric(mean(seriesY(b, e, "BinSearch")), "BinSearch-err")
	}
}

// BenchmarkFigure8RefinementScore regenerates Figure 8.c (refinement
// score) and reports the BinSearch/ACQUIRE refinement ratio the paper
// quotes as ≈4.8X.
func BenchmarkFigure8RefinementScore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure8(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		r := figs[2]
		acq := mean(seriesY(b, r, "ACQUIRE"))
		b.ReportMetric(acq, "ACQUIRE-ref")
		b.ReportMetric(mean(seriesY(b, r, "BinSearch"))/acq, "BinSearch/ACQUIRE")
		b.ReportMetric(mean(seriesY(b, r, "TQGen"))/acq, "TQGen/ACQUIRE")
	}
}

// BenchmarkFigure9ExecutionTime regenerates Figure 9.a (dimensionality
// sweep) and reports the d=5/d=1 growth factors — TQGen's is the
// exponential blow-up the paper highlights.
func BenchmarkFigure9ExecutionTime(b *testing.B) {
	cfg := benchCfg()
	cfg.Rows = 5000
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure9(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		t := figs[0]
		acq, tq := seriesY(b, t, "ACQUIRE"), seriesY(b, t, "TQGen")
		b.ReportMetric(acq[4], "ACQUIRE-d5-ms")
		b.ReportMetric(tq[4], "TQGen-d5-ms")
		b.ReportMetric(tq[4]/acq[4], "TQGen/ACQUIRE-d5")
	}
}

// BenchmarkFigure9AggregateError regenerates Figure 9.b.
func BenchmarkFigure9AggregateError(b *testing.B) {
	cfg := benchCfg()
	cfg.Rows = 5000
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure9(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		e := figs[1]
		b.ReportMetric(mean(seriesY(b, e, "ACQUIRE")), "ACQUIRE-err")
		b.ReportMetric(mean(seriesY(b, e, "BinSearch")), "BinSearch-err")
	}
}

// BenchmarkFigure9RefinementScore regenerates Figure 9.c.
func BenchmarkFigure9RefinementScore(b *testing.B) {
	cfg := benchCfg()
	cfg.Rows = 5000
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure9(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := figs[2]
		acq := mean(seriesY(b, r, "ACQUIRE"))
		b.ReportMetric(acq, "ACQUIRE-ref")
		b.ReportMetric(mean(seriesY(b, r, "BinSearch"))/acq, "BinSearch/ACQUIRE")
	}
}

// BenchmarkFigure10TableSize regenerates Figure 10.a (1K/10K/100K; the
// paper's 1M point comes from cmd/acqbench -sizes ...,1000000).
func BenchmarkFigure10TableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure10a(context.Background(), benchCfg(), []int{1000, 10000, 100000})
		if err != nil {
			b.Fatal(err)
		}
		t := figs[0]
		acq := seriesY(b, t, "ACQUIRE")
		b.ReportMetric(acq[0], "ACQUIRE-1K-ms")
		b.ReportMetric(acq[2], "ACQUIRE-100K-ms")
	}
}

// BenchmarkFigure10RefinementThreshold regenerates Figure 10.b.
func BenchmarkFigure10RefinementThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure10b(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		y := figs[0].Series[0].Y
		b.ReportMetric(y[0], "gamma2-ms")
		b.ReportMetric(y[len(y)-1], "gamma12-ms")
	}
}

// BenchmarkFigure10CardinalityThreshold regenerates Figure 10.c.
func BenchmarkFigure10CardinalityThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure10c(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		y := figs[0].Series[0].Y
		b.ReportMetric(y[0], "delta1e-4-ms")
		b.ReportMetric(y[len(y)-1], "delta0.1-ms")
	}
}

// BenchmarkFigure11AggregateTypes regenerates Figure 11.a (SUM, COUNT,
// MAX on the TPC-H skeleton).
func BenchmarkFigure11AggregateTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure11(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		t := figs[0]
		b.ReportMetric(mean(seriesY(b, t, "SUM")), "SUM-ms")
		b.ReportMetric(mean(seriesY(b, t, "COUNT")), "COUNT-ms")
		b.ReportMetric(mean(seriesY(b, t, "MAX")), "MAX-ms")
	}
}

// BenchmarkFigure11RefinementScore regenerates Figure 11.b.
func BenchmarkFigure11RefinementScore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.Figure11(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		r := figs[1]
		b.ReportMetric(mean(seriesY(b, r, "SUM")), "SUM-ref")
		b.ReportMetric(mean(seriesY(b, r, "COUNT")), "COUNT-ref")
	}
}

// BenchmarkSkewedData regenerates the §8.4.4 skew study (Z=0 vs Z=1).
func BenchmarkSkewedData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.SkewStudy(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(seriesY(b, figs[0], "ACQUIRE")), "Z0-ACQUIRE-ms")
		b.ReportMetric(mean(seriesY(b, figs[1], "ACQUIRE")), "Z1-ACQUIRE-ms")
	}
}

// BenchmarkJoinRefinement exercises the Table-1 capability unique to
// ACQUIRE: refining a join predicate.
func BenchmarkJoinRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.JoinRefinementStudy(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(figs[0].Series[0].Y), "ACQUIRE-ms")
	}
}

// BenchmarkAblationIncremental quantifies §5's incremental aggregate
// computation against whole-query re-execution.
func BenchmarkAblationIncremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.AblationIncremental(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		inc := mean(figs[0].Series[0].Y)
		naive := mean(figs[0].Series[1].Y)
		b.ReportMetric(inc, "incremental-ms")
		b.ReportMetric(naive, "whole-query-ms")
		b.ReportMetric(naive/inc, "speedup")
	}
}

// BenchmarkAblationGridIndex quantifies the §7.4 grid bitmap index.
func BenchmarkAblationGridIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.AblationGridIndex(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		without := mean(figs[0].Series[0].Y)
		with := mean(figs[0].Series[1].Y)
		b.ReportMetric(without, "noindex-ms")
		b.ReportMetric(with, "gridindex-ms")
	}
}

// BenchmarkEvaluationLayers compares the §3 evaluation layers (exact,
// sampling, histogram estimation) driving the same searches.
func BenchmarkEvaluationLayers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := harness.EvaluationLayerStudy(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		t := figs[0]
		b.ReportMetric(mean(seriesY(b, t, "exact")), "exact-ms")
		b.ReportMetric(mean(seriesY(b, t, "sample-10%")), "sample-ms")
		b.ReportMetric(mean(seriesY(b, t, "histogram")), "histogram-ms")
	}
}

// BenchmarkHeadlineClaims machine-checks the §8.5 conclusions.
func BenchmarkHeadlineClaims(b *testing.B) {
	cfg := benchCfg()
	cfg.Rows = 30000 // §8.5(3) is scale-dependent; see harness.Summary docs
	for i := 0; i < b.N; i++ {
		claims, _, err := harness.Summary(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		holds := 0
		for _, c := range claims {
			if c.Holds {
				holds++
			}
		}
		b.ReportMetric(float64(holds), "claims-holding")
		b.ReportMetric(float64(len(claims)), "claims-total")
	}
}

// BenchmarkTable1 regenerates the capability matrix (trivially cheap;
// present so every table and figure has a bench target).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := harness.Table1(); len(s) == 0 {
			b.Fatal("empty Table 1")
		}
	}
}

// BenchmarkParallelExplore measures the batched exploration pipeline
// across evaluation-layer worker counts at 100K-row scale: the same
// calibrated 3-predicate search, with exec.Engine.Parallelism swept
// over 1/2/4/8. Results are deterministic across the sweep (see
// TestRefineDeterministicSerialVsParallel); the timing spread is the
// parallel speedup. On a single-CPU host all worker counts tie — run
// on a multi-core machine for the real curve (EXPERIMENTS.md records
// both).
func BenchmarkParallelExplore(b *testing.B) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e := exec.New(cat)
	q, err := workload.BuildCalibrated(e, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e.Parallelism = w
			var explored, cells int
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), e, q, core.Options{Gamma: 20, Delta: 0.05})
				if err != nil {
					b.Fatal(err)
				}
				explored, cells = res.Explored, res.CellQueries
			}
			b.ReportMetric(float64(explored), "explored")
			b.ReportMetric(float64(cells), "cell-queries")
		})
	}
	e.Parallelism = 0
}

// BenchmarkParallelExploreObserved is BenchmarkParallelExplore with a
// live metric registry and observer attached to the engine and search.
// CI runs both and logs the delta: the instrumented path must stay
// within noise of the bare one (the nil fast path itself is guarded by
// allocation tests in internal/obs).
func BenchmarkParallelExploreObserved(b *testing.B) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e := exec.New(cat)
	o := obs.NewObserver(obs.NewRegistry())
	e.SetObserver(o)
	q, err := workload.BuildCalibrated(e, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e.Parallelism = w
			for i := 0; i < b.N; i++ {
				if _, err := core.RunContext(context.Background(), e, q,
					core.Options{Gamma: 20, Delta: 0.05, Observer: o}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	e.Parallelism = 0
}

// BenchmarkParallelExploreTraced is BenchmarkParallelExploreObserved
// with a flight recorder attached as well, so every search builds and
// records a full span tree (layer, prefetch, fold, engine batch and
// per-region evaluate spans). CI compares it against the bare
// benchmark: tracing must cost less than 3x (in practice the span
// bookkeeping is a small constant per phase, dwarfed by row scans).
func BenchmarkParallelExploreTraced(b *testing.B) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e := exec.New(cat)
	rec := obs.NewFlightRecorder(obs.RecorderConfig{})
	o := obs.NewObserver(obs.NewRegistry()).WithRecorder(rec)
	e.SetObserver(o)
	q, err := workload.BuildCalibrated(e, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e.Parallelism = w
			for i := 0; i < b.N; i++ {
				if _, err := core.RunContext(context.Background(), e, q,
					core.Options{Gamma: 20, Delta: 0.05, Observer: o}); err != nil {
					b.Fatal(err)
				}
			}
			if rec.Len() == 0 {
				b.Fatal("no traces recorded")
			}
		})
	}
	e.Parallelism = 0
}

// BenchmarkShardedExplore measures the full ACQUIRE search against the
// sharded evaluation stack at 100K-row scale: the fig. 8 calibrated
// 3-predicate COUNT search, run through exec.NewShardedOn with the
// shard count swept over 1/2/4/8 (shards=0 is the monolithic engine
// baseline). Results are verified identical across the sweep by
// TestShardedMatchesEngine; the timing spread is the scatter-gather
// cost/benefit. On this single-CPU host the search slows modestly with
// shard count (per-shard bind and merge overhead on narrow cell
// batches); raw AggregateBatch over broad regions is where shard-local
// scan state wins — see the acqbench "shards" experiment and
// EXPERIMENTS.md.
func BenchmarkShardedExplore(b *testing.B) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mono := exec.New(cat)
	q, err := workload.BuildCalibrated(mono, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 4, 8} {
		var ev exec.Evaluator = mono
		name := "engine"
		if n > 0 {
			sv, err := exec.NewShardedOn(cat, "users", n)
			if err != nil {
				b.Fatal(err)
			}
			ev = sv
			name = fmt.Sprintf("shards=%d", n)
		}
		b.Run(name, func(b *testing.B) {
			var explored, cells int
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), ev, q, core.Options{Gamma: 20, Delta: 0.05})
				if err != nil {
					b.Fatal(err)
				}
				explored, cells = res.Explored, res.CellQueries
			}
			b.ReportMetric(float64(explored), "explored")
			b.ReportMetric(float64(cells), "cell-queries")
		})
	}
}

// BenchmarkBoxKernel quantifies the box-aggregate kernel on the fig. 8
// single-table workload (users, 3 dims, ratio 0.3, COUNT): one full
// ACQUIRE search per iteration, once against the plain scan path and
// then with the aggregate-augmented grid. scan-rows vs kernel-rows is
// the RowsScanned reduction the ISSUE's acceptance criterion quotes;
// cells-merged and boundary-rows show how the kernel split the work.
func BenchmarkBoxKernel(b *testing.B) {
	const rows = 100000
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e := exec.New(cat)
	q, err := workload.BuildCalibrated(e, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Gamma: 20, Delta: 0.05}

	// Scan-path reference: rows touched by one search without the grid.
	before := e.Snapshot()
	if _, err := core.RunContext(context.Background(), e, q, opts); err != nil {
		b.Fatal(err)
	}
	scanRows := e.Snapshot().Sub(before).RowsScanned

	cols := make([]string, 0, len(q.Dims))
	for i := range q.Dims {
		cols = append(cols, q.Dims[i].Col.Column)
	}
	if err := e.BuildGridAggIndex("users", cols, nil, index.BinsForRows(len(cols), rows)); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	var d exec.Stats
	for i := 0; i < b.N; i++ {
		before := e.Snapshot()
		if _, err := core.RunContext(context.Background(), e, q, opts); err != nil {
			b.Fatal(err)
		}
		d = e.Snapshot().Sub(before)
	}
	b.ReportMetric(float64(scanRows), "scan-rows")
	b.ReportMetric(float64(d.RowsScanned), "kernel-rows")
	if d.RowsScanned > 0 {
		b.ReportMetric(float64(scanRows)/float64(d.RowsScanned), "rows-reduction")
	}
	b.ReportMetric(float64(d.CellsMerged), "cells-merged")
	b.ReportMetric(float64(d.BoundaryRows), "boundary-rows")
}

// BenchmarkGridAggBuild times the parallel row-partitioned aggregate
// grid build at the fig. 8 scale: 3 index columns plus one
// materialized aggregate column.
func BenchmarkGridAggBuild(b *testing.B) {
	const rows = 100000
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	t, err := cat.Table("users")
	if err != nil {
		b.Fatal(err)
	}
	cols := []string{"age", "income", "distance"}
	bins := index.BinsForRows(len(cols), rows)
	var g *index.Grid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g, err = index.BuildAgg(t, cols, []string{"spend"}, bins, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumCells()), "cells")
	b.ReportMetric(float64(g.AggBytes()), "payload-bytes")
}

// vectorBenchSetup builds the clustered fig. 8 users engine and batch
// used by the vectorized-scan benchmarks: the fact table re-sorted by
// age so zone maps can prove blocks out of range, and a prefix-region
// ladder reaching broad regions so the planner takes full scans.
func vectorBenchSetup(b *testing.B, rows int) (*exec.Engine, *relq.Query, []relq.Region) {
	b.Helper()
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	t, err := cat.Table("users")
	if err != nil {
		b.Fatal(err)
	}
	sorted, err := data.SortedBy(t, "age")
	if err != nil {
		b.Fatal(err)
	}
	cat.Replace(sorted)
	e := exec.New(cat)
	q, err := workload.BuildCalibrated(e, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var regions []relq.Region
	for i := 0; i < 8; i++ {
		h := 10 + float64(i)*8
		regions = append(regions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: 70 - h/2}, {Lo: -1, Hi: h}})
	}
	return e, q, regions
}

// BenchmarkVectorScan times one AggregateBatch of the clustered fig. 8
// workload through the legacy row-at-a-time scan path and the
// vectorized block path. Rows-scanned and blocks-skipped deltas make
// the zone-map pruning visible: the vectorized path's RowsScanned
// excludes every block proven out of range.
func BenchmarkVectorScan(b *testing.B) {
	e, q, regions := vectorBenchSetup(b, 100000)
	for _, legacy := range []bool{true, false} {
		name := "path=vector"
		if legacy {
			name = "path=legacy"
		}
		b.Run(name, func(b *testing.B) {
			e.SetLegacyScan(legacy)
			defer e.SetLegacyScan(false)
			b.ResetTimer()
			var d exec.Stats
			for i := 0; i < b.N; i++ {
				before := e.Snapshot()
				if _, err := e.AggregateBatch(context.Background(), q, regions); err != nil {
					b.Fatal(err)
				}
				d = e.Snapshot().Sub(before)
			}
			b.ReportMetric(float64(d.RowsScanned), "rows-scanned")
			b.ReportMetric(float64(d.BlocksScanned), "blocks-scanned")
			b.ReportMetric(float64(d.BlocksSkipped), "blocks-skipped")
		})
	}
}

// BenchmarkVectorScanObserved is BenchmarkVectorScan's vector path with
// a live metric registry attached, so the per-block counter and
// selection-density histogram updates are exercised. CI compares it
// against the bare vector path: instrumentation must stay within 3x.
func BenchmarkVectorScanObserved(b *testing.B) {
	e, q, regions := vectorBenchSetup(b, 100000)
	e.SetObserver(obs.NewObserver(obs.NewRegistry()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AggregateBatch(context.Background(), q, regions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinPushdown times one AggregateBatch of the three-table
// TPCH SUM workload (supplier ⋈ partsupp ⋈ part, selective prefix
// regions) through both scan paths. The vectorized path pre-filters
// the partsupp scan by the surviving supplier keys (scan-level
// semi-join pushdown) and builds pre-sized, order-preserving join
// tables instead of incrementally grown maps; the legacy/vector ns/op
// ratio is the join-bearing speedup BENCH_scan.json records.
func BenchmarkJoinPushdown(b *testing.B) {
	cat, err := tpch.Generate(tpch.Config{Rows: 50000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e := exec.New(cat)
	q, err := workload.BuildCalibrated(e, workload.Spec{
		Kind: workload.TPCH, Dims: 2, Agg: relq.AggSum, Ratio: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var regions []relq.Region
	for i := 0; i < 8; i++ {
		h := 2 + float64(i)*3
		regions = append(regions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: h / 2}})
	}
	for _, legacy := range []bool{true, false} {
		name := "path=vector"
		if legacy {
			name = "path=legacy"
		}
		b.Run(name, func(b *testing.B) {
			e.SetLegacyScan(legacy)
			defer e.SetLegacyScan(false)
			b.ResetTimer()
			var d exec.Stats
			for i := 0; i < b.N; i++ {
				before := e.Snapshot()
				if _, err := e.AggregateBatch(context.Background(), q, regions); err != nil {
					b.Fatal(err)
				}
				d = e.Snapshot().Sub(before)
			}
			b.ReportMetric(float64(d.RowsScanned), "rows-scanned")
			b.ReportMetric(float64(d.TuplesExamined), "tuples-examined")
		})
	}
}

// BenchmarkRepeatedWorkload times the cross-search partial-aggregate
// cache on the fig. 8 workload replayed over RepeatedSessions sessions
// sharing one engine: the first session fills the cache, later
// identical sessions reuse its region executions. Reports cold vs warm
// evaluation-layer executions (the acceptance target is a >=5x
// reduction), the warm-session hit rate and the cold/warm wall-time
// ratio; results are bit-identical with the cache on or off.
func BenchmarkRepeatedWorkload(b *testing.B) {
	cfg := benchCfg()
	cfg.CacheMB = 64
	for i := 0; i < b.N; i++ {
		figs, err := harness.RepeatedWorkload(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		execs := seriesY(b, figs[0], "ACQUIRE")
		millis := seriesY(b, figs[1], "ACQUIRE")
		hitRate := seriesY(b, figs[2], "ACQUIRE")
		cold, warm := execs[0], mean(execs[1:])
		b.ReportMetric(cold, "cold-execs")
		b.ReportMetric(warm, "warm-execs")
		if warm > 0 {
			b.ReportMetric(cold/warm, "cold/warm-execs")
		}
		b.ReportMetric(mean(hitRate[1:]), "warm-hit-rate")
		if w := mean(millis[1:]); w > 0 {
			b.ReportMetric(millis[0]/w, "cold/warm-time")
		}
		if warm*5 > cold {
			b.Fatalf("warm sessions executed %.0f queries vs cold %.0f; want >=5x reduction", warm, cold)
		}
	}
}
