package norms

import (
	"math"
	"testing"
	"testing/quick"
)

func TestL1(t *testing.T) {
	n := L1{}
	if got := n.Score([]float64{0, 20}); got != 20 {
		t.Errorf("L1 = %v, want 20 (Example 3)", got)
	}
	if got := n.Score(nil); got != 0 {
		t.Errorf("L1(nil) = %v", got)
	}
	if n.Name() != "L1" || n.Infinite() {
		t.Error("L1 metadata")
	}
}

func TestLp(t *testing.T) {
	n, err := NewLp(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Score([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2(3,4) = %v, want 5", got)
	}
	if n.Name() != "L2" {
		t.Errorf("Name = %q", n.Name())
	}
	if _, err := NewLp(0.5, nil); err == nil {
		t.Error("p < 1: expected error")
	}
	if _, err := NewLp(2, []float64{-1}); err == nil {
		t.Error("negative weight: expected error")
	}
}

func TestWeightedLp(t *testing.T) {
	n, err := NewLp(1, []float64{2, 0}) // weight 0 means 1
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Score([]float64{10, 10}); got != 30 {
		t.Errorf("LW1 = %v, want 30", got)
	}
	if n.Name() != "LW1" {
		t.Errorf("Name = %q", n.Name())
	}
}

func TestLInf(t *testing.T) {
	n := LInf{}
	if got := n.Score([]float64{3, 9, 1}); got != 9 {
		t.Errorf("Linf = %v, want 9", got)
	}
	if !n.Infinite() {
		t.Error("Linf.Infinite() = false")
	}
	w := LInf{Weights: []float64{1, 3}}
	if got := w.Score([]float64{10, 5}); got != 15 {
		t.Errorf("weighted Linf = %v, want 15", got)
	}
}

func TestCustom(t *testing.T) {
	c := Custom{Fn: func(v []float64) float64 { return v[0] }}
	if got := c.Score([]float64{7, 100}); got != 7 {
		t.Errorf("custom = %v", got)
	}
	if c.Name() != "custom" {
		t.Errorf("default Name = %q", c.Name())
	}
	c.Label = "first"
	if c.Name() != "first" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.Infinite() {
		t.Error("custom Infinite")
	}
}

// Property: all built-in norms are monotone (Theorem 2's requirement).
func TestBuiltinsMonotoneProperty(t *testing.T) {
	l2, _ := NewLp(2, nil)
	lw, _ := NewLp(1, []float64{1, 5, 0.5})
	for _, n := range []Norm{L1{}, l2, lw, LInf{}, LInf{Weights: []float64{2, 1, 1}}} {
		f := func(a, b, c float64, dim uint, bump float64) bool {
			v := []float64{math.Abs(a), math.Abs(b), math.Abs(c)}
			for i := range v {
				v[i] = math.Mod(v[i], 1000)
			}
			w := append([]float64(nil), v...)
			w[dim%3] += math.Mod(math.Abs(bump), 1000)
			return n.Score(w) >= n.Score(v)-1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", n.Name(), err)
		}
	}
}

func TestCheckMonotone(t *testing.T) {
	if err := CheckMonotone(L1{}, 3, 500, 1); err != nil {
		t.Errorf("L1 flagged non-monotone: %v", err)
	}
	bad := Custom{Fn: func(v []float64) float64 { return -v[0] }, Label: "neg"}
	if err := CheckMonotone(bad, 2, 500, 1); err == nil {
		t.Error("negating norm should be flagged")
	}
}
