// Package norms implements the query refinement scoring of §2.3: the
// QScore of a refined query is a monotonic function of its predicate
// refinement vector (PScore, Eq. 2). The paper's default is the L1
// norm (Eq. 3); weighted vector p-norms express refinement preferences
// (§7.1), L∞ scores a query by its worst-refined predicate, and any
// user-supplied monotonic function plugs in without algorithm changes.
package norms

import (
	"fmt"
	"math"
)

// Norm maps a predicate refinement vector to a scalar QScore. It must
// be monotone: growing any component must not shrink the result — the
// Expand phase's layer ordering (Theorem 2) depends on it.
type Norm interface {
	// Score computes QScore(Q, Q') from the PScore vector.
	Score(pscore []float64) float64
	// Name identifies the norm in reports.
	Name() string
	// Infinite reports whether this is an L∞-style norm, which needs
	// Algorithm 2's layer enumeration instead of BFS (§4).
	Infinite() bool
}

// L1 is the paper's default: the sum of predicate refinement scores.
type L1 struct{}

// Score implements Norm.
func (L1) Score(pscore []float64) float64 {
	s := 0.0
	for _, v := range pscore {
		s += v
	}
	return s
}

// Name implements Norm.
func (L1) Name() string { return "L1" }

// Infinite implements Norm.
func (L1) Infinite() bool { return false }

// Lp is the p-norm (sum v^p)^(1/p) with optional per-dimension weights.
type Lp struct {
	P float64
	// Weights is optional; nil or zero entries mean weight 1.
	Weights []float64
}

// NewLp validates and builds an Lp norm.
func NewLp(p float64, weights []float64) (Lp, error) {
	if p < 1 {
		return Lp{}, fmt.Errorf("norms: p must be >= 1, got %v", p)
	}
	for i, w := range weights {
		if w < 0 {
			return Lp{}, fmt.Errorf("norms: weight %d is negative", i)
		}
	}
	return Lp{P: p, Weights: weights}, nil
}

func (n Lp) weight(i int) float64 {
	if i >= len(n.Weights) || n.Weights[i] == 0 {
		return 1
	}
	return n.Weights[i]
}

// Score implements Norm.
func (n Lp) Score(pscore []float64) float64 {
	p := n.P
	if p == 0 {
		p = 1
	}
	s := 0.0
	for i, v := range pscore {
		s += n.weight(i) * math.Pow(v, p)
	}
	return math.Pow(s, 1/p)
}

// Name implements Norm.
func (n Lp) Name() string {
	if len(n.Weights) > 0 {
		return fmt.Sprintf("LW%g", n.P)
	}
	return fmt.Sprintf("L%g", n.P)
}

// Infinite implements Norm.
func (Lp) Infinite() bool { return false }

// LInf scores a vector by its largest (weighted) component. Its
// query-layers in the refined space are L-shaped (§4, Figure 3), so the
// Expand phase enumerates them with Algorithm 2.
type LInf struct {
	Weights []float64
}

func (n LInf) weight(i int) float64 {
	if i >= len(n.Weights) || n.Weights[i] == 0 {
		return 1
	}
	return n.Weights[i]
}

// Score implements Norm.
func (n LInf) Score(pscore []float64) float64 {
	m := 0.0
	for i, v := range pscore {
		if w := n.weight(i) * v; w > m {
			m = w
		}
	}
	return m
}

// Name implements Norm.
func (LInf) Name() string { return "Linf" }

// Infinite implements Norm.
func (LInf) Infinite() bool { return true }

// Custom wraps a user-supplied monotonic scoring function (§2.3 allows
// overriding the metric "without changes to our algorithm").
type Custom struct {
	Fn    func([]float64) float64
	Label string
}

// Score implements Norm.
func (c Custom) Score(pscore []float64) float64 { return c.Fn(pscore) }

// Name implements Norm.
func (c Custom) Name() string {
	if c.Label == "" {
		return "custom"
	}
	return c.Label
}

// Infinite implements Norm.
func (Custom) Infinite() bool { return false }

// CheckMonotone probes the norm for monotonicity violations over the
// given dimensionality: a defensive check applied to Custom norms at
// search setup so a non-monotone function fails fast instead of
// silently breaking Theorem 2's ordering guarantee.
func CheckMonotone(n Norm, dims int, samples int, seed int64) error {
	// Simple LCG so the package stays free of math/rand in library code.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	base := make([]float64, dims)
	bumped := make([]float64, dims)
	for s := 0; s < samples; s++ {
		for i := range base {
			base[i] = next() * 100
		}
		copy(bumped, base)
		i := int(next() * float64(dims))
		if i >= dims {
			i = dims - 1
		}
		bumped[i] += next() * 50
		if n.Score(bumped) < n.Score(base)-1e-9 {
			return fmt.Errorf("norms: %s is not monotone: score(%v)=%v < score(%v)=%v",
				n.Name(), bumped, n.Score(bumped), base, n.Score(base))
		}
	}
	return nil
}
