package sqlparse

import (
	"fmt"
	"strings"
)

// Parse parses an ACQ statement into an AST.
func Parse(input string) (*AST, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	ast, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tkEOF) {
		return nil, p.errorf("trailing input starting at %s", p.peek())
	}
	return ast, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token       { return p.toks[p.i] }
func (p *parser) next() token       { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool { return p.toks[p.i].kind == k }

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tkIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %s, got %s", kw, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errorf("expected %s, got %s", what, p.peek())
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "constraint": true,
	"norefine": true, "and": true, "in": true, "between": true, "abs": true,
}

func (p *parser) parseQuery() (*AST, error) {
	ast := &AST{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkStar, "'*'"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(tkIdent, "table name")
		if err != nil {
			return nil, err
		}
		if reservedWords[strings.ToLower(t.text)] {
			return nil, p.errorf("reserved word %q used as table name", t.text)
		}
		ast.Tables = append(ast.Tables, t.text)
		if !p.at(tkComma) {
			break
		}
		p.next()
	}

	if p.atKeyword("CONSTRAINT") {
		p.next()
		agg, err := p.parseAggClause()
		if err != nil {
			return nil, err
		}
		ast.Agg = agg
	} else {
		return nil, p.errorf("ACQ requires a CONSTRAINT clause")
	}

	if p.atKeyword("WHERE") {
		p.next()
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			ast.Preds = append(ast.Preds, pred)
			if !p.atKeyword("AND") {
				break
			}
			p.next()
		}
	}
	return ast, nil
}

func (p *parser) parseAggClause() (AggClause, error) {
	var a AggClause
	t, err := p.expect(tkIdent, "aggregate function")
	if err != nil {
		return a, err
	}
	a.FuncName = strings.ToUpper(t.text)
	if _, err := p.expect(tkLParen, "'('"); err != nil {
		return a, err
	}
	if p.at(tkStar) {
		p.next()
		a.Star = true
	} else {
		col, err := p.parseColRef()
		if err != nil {
			return a, err
		}
		a.Col = col
	}
	if _, err := p.expect(tkRParen, "')'"); err != nil {
		return a, err
	}
	op, err := p.expect(tkOp, "comparison operator")
	if err != nil {
		return a, err
	}
	a.Op = op.text
	num, err := p.expect(tkNumber, "constraint target")
	if err != nil {
		return a, err
	}
	a.Target = num.num
	return a, nil
}

// parseColRef parses [coef '*'] ident ['.' ident].
func (p *parser) parseColRef() (ColAST, error) {
	var c ColAST
	if p.at(tkNumber) {
		coef := p.next().num
		if _, err := p.expect(tkStar, "'*' after coefficient"); err != nil {
			return c, err
		}
		c.Coef = coef
	}
	t, err := p.expect(tkIdent, "column reference")
	if err != nil {
		return c, err
	}
	if reservedWords[strings.ToLower(t.text)] {
		return c, p.errorf("reserved word %q used as column", t.text)
	}
	c.Column = t.text
	if p.at(tkDot) {
		p.next()
		t2, err := p.expect(tkIdent, "column name after '.'")
		if err != nil {
			return c, err
		}
		c.Table, c.Column = c.Column, t2.text
	}
	return c, nil
}

// term is one side of a comparison: a number or a column reference.
type term struct {
	isNum bool
	num   float64
	col   ColAST
}

func (p *parser) parseTerm() (term, error) {
	if p.at(tkNumber) {
		// Lookahead: "2*col" is a scaled column, plain "2" is a number.
		if p.toks[p.i+1].kind == tkStar {
			c, err := p.parseColRef()
			if err != nil {
				return term{}, err
			}
			return term{col: c}, nil
		}
		return term{isNum: true, num: p.next().num}, nil
	}
	c, err := p.parseColRef()
	if err != nil {
		return term{}, err
	}
	return term{col: c}, nil
}

func (p *parser) parsePred() (PredAST, error) {
	var pred PredAST
	parens := 0
	for p.at(tkLParen) {
		p.next()
		parens++
	}

	lhs, err := p.parseTerm()
	if err != nil {
		return pred, err
	}

	switch {
	case !lhs.isNum && p.atKeyword("IN"):
		p.next()
		if _, err := p.expect(tkLParen, "'('"); err != nil {
			return pred, err
		}
		pred.kind = pkIn
		pred.Col = lhs.col
		for {
			s, err := p.expect(tkString, "string literal")
			if err != nil {
				return pred, err
			}
			pred.Strings = append(pred.Strings, s.text)
			if !p.at(tkComma) {
				break
			}
			p.next()
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return pred, err
		}

	case !lhs.isNum && p.atKeyword("BETWEEN"):
		p.next()
		lo, err := p.expect(tkNumber, "number")
		if err != nil {
			return pred, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return pred, err
		}
		hi, err := p.expect(tkNumber, "number")
		if err != nil {
			return pred, err
		}
		pred.kind = pkRange
		pred.Col = lhs.col
		pred.Lo, pred.Hi = lo.num, hi.num

	default:
		op, err := p.expect(tkOp, "comparison operator")
		if err != nil {
			return pred, err
		}
		// String equality: col = 'str'.
		if !lhs.isNum && op.text == "=" && p.at(tkString) {
			s := p.next()
			pred.kind = pkStrEq
			pred.Col = lhs.col
			pred.Strings = []string{s.text}
			break
		}
		rhs, err := p.parseTerm()
		if err != nil {
			return pred, err
		}
		// Chained range: "10 <= col <= 50".
		if lhs.isNum && !rhs.isNum && p.at(tkOp) {
			op2 := p.next()
			hi, err := p.expect(tkNumber, "range upper bound")
			if err != nil {
				return pred, err
			}
			if !isLess(op.text) || !isLess(op2.text) {
				return pred, p.errorf("range predicate must use < or <= on both sides")
			}
			pred.kind = pkRange
			pred.Col = rhs.col
			pred.Lo, pred.Hi = lhs.num, hi.num
			break
		}
		pred.kind = pkCmp
		pred.Op = op.text
		if lhs.isNum {
			pred.LNum = lhs.num
		} else {
			c := lhs.col
			pred.LCol = &c
		}
		if rhs.isNum {
			pred.RNum = rhs.num
		} else {
			c := rhs.col
			pred.RCol = &c
		}
		if pred.LCol == nil && pred.RCol == nil {
			return pred, p.errorf("predicate compares two constants")
		}
	}

	for parens > 0 {
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return pred, err
		}
		parens--
	}
	if p.atKeyword("NOREFINE") {
		p.next()
		pred.NoRefine = true
	}
	return pred, nil
}

func isLess(op string) bool { return op == "<" || op == "<=" }
