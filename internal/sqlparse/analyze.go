package sqlparse

import (
	"fmt"
	"math"
	"strings"

	"acquire/internal/data"
	"acquire/internal/relq"
)

// Analyze resolves a parsed AST against the catalog into an executable
// relq.Query. Column references are qualified, types checked, and every
// refinable predicate's interval — hence its PScore denominator —
// derived from attribute domain statistics as §2.2 prescribes ("if the
// minimum value of B.y is 0, the predicate (B.y < 50) is decomposed
// into PF = B.y and PI = (0, 50)").
func Analyze(ast *AST, cat *data.Catalog) (*relq.Query, error) {
	q := &relq.Query{Tables: append([]string(nil), ast.Tables...)}
	for _, t := range ast.Tables {
		if _, err := cat.Table(t); err != nil {
			return nil, err
		}
	}

	resolve := func(c ColAST) (relq.ColumnRef, error) {
		tbl, col, err := cat.ResolveColumn(c.Ref(), ast.Tables)
		if err != nil {
			return relq.ColumnRef{}, err
		}
		return relq.ColumnRef{Table: tbl, Column: col}, nil
	}
	numericStats := func(ref relq.ColumnRef) (data.ColumnStats, error) {
		t, err := cat.Table(ref.Table)
		if err != nil {
			return data.ColumnStats{}, err
		}
		ord := t.Schema().Ordinal(ref.Column)
		col, _ := t.Schema().Column(ref.Column)
		if !col.Type.Numeric() {
			return data.ColumnStats{}, fmt.Errorf("sqlparse: column %s is not numeric", ref)
		}
		return t.Stats(ord)
	}
	isString := func(ref relq.ColumnRef) bool {
		t, err := cat.Table(ref.Table)
		if err != nil {
			return false
		}
		col, ok := t.Schema().Column(ref.Column)
		return ok && col.Type == data.String
	}

	c, err := analyzeAgg(ast.Agg, resolve)
	if err != nil {
		return nil, err
	}
	q.Constraint = c

	for i := range ast.Preds {
		if err := analyzePred(&ast.Preds[i], q, resolve, numericStats, isString); err != nil {
			return nil, fmt.Errorf("predicate %d: %w", i+1, err)
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseAndAnalyze is the one-call form: SQL text to executable query.
func ParseAndAnalyze(sql string, cat *data.Catalog) (*relq.Query, error) {
	ast, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Analyze(ast, cat)
}

func analyzeAgg(a AggClause, resolve func(ColAST) (relq.ColumnRef, error)) (relq.Constraint, error) {
	var c relq.Constraint
	switch a.FuncName {
	case "COUNT":
		c.Func = relq.AggCount
	case "SUM":
		c.Func = relq.AggSum
	case "MIN":
		c.Func = relq.AggMin
	case "MAX":
		c.Func = relq.AggMax
	case "AVG", "AVERAGE":
		c.Func = relq.AggAvg
	case "STDDEV", "VARIANCE":
		return c, fmt.Errorf("sqlparse: %s does not satisfy the optimal substructure property (§2.6) and is not supported", a.FuncName)
	default:
		c.Func = relq.AggUser
		c.UserName = a.FuncName
	}
	if a.Star {
		if c.Func != relq.AggCount {
			return c, fmt.Errorf("sqlparse: %s(*) is not valid; only COUNT(*)", a.FuncName)
		}
	} else {
		ref, err := resolve(a.Col)
		if err != nil {
			return c, err
		}
		c.Attr = ref
	}
	switch a.Op {
	case "=":
		c.Op = relq.CmpEQ
	case ">=":
		c.Op = relq.CmpGE
	case ">":
		c.Op = relq.CmpGT
	case "<=":
		c.Op = relq.CmpLE
	case "<":
		c.Op = relq.CmpLT
	default:
		return c, fmt.Errorf("sqlparse: unsupported constraint operator %q", a.Op)
	}
	c.Target = a.Target
	return c, nil
}

func analyzePred(
	p *PredAST,
	q *relq.Query,
	resolve func(ColAST) (relq.ColumnRef, error),
	numericStats func(relq.ColumnRef) (data.ColumnStats, error),
	isString func(relq.ColumnRef) bool,
) error {
	switch p.kind {
	case pkIn, pkStrEq:
		ref, err := resolve(p.Col)
		if err != nil {
			return err
		}
		if !isString(ref) {
			return fmt.Errorf("sqlparse: %s is not a TEXT column", ref)
		}
		// String predicates are always fixed filters; categorical
		// refinement requires an ontology adapter (§7.3) and is exposed
		// programmatically, not through SQL.
		q.Fixed = append(q.Fixed, relq.FixedPred{
			Kind: relq.FixedStringIn, Col: ref, Values: append([]string(nil), p.Strings...),
		})
		return nil

	case pkRange:
		ref, err := resolve(p.Col)
		if err != nil {
			return err
		}
		if _, err := numericStats(ref); err != nil {
			return err
		}
		if p.Lo > p.Hi {
			return fmt.Errorf("sqlparse: empty range [%v, %v] on %s", p.Lo, p.Hi, ref)
		}
		if p.NoRefine {
			q.Fixed = append(q.Fixed, relq.FixedPred{Kind: relq.FixedRange, Col: ref, Lo: p.Lo, Hi: p.Hi})
			return nil
		}
		// §2.2: a range predicate is rewritten as two one-sided
		// predicates so each side refines independently. Both sides
		// score departures against the original interval width.
		width := p.Hi - p.Lo
		if width <= 0 {
			width = 100 // degenerate interval, §2.3 convention
		}
		q.Dims = append(q.Dims,
			relq.Dimension{Kind: relq.SelectGE, Col: ref, Bound: p.Lo, Width: width},
			relq.Dimension{Kind: relq.SelectLE, Col: ref, Bound: p.Hi, Width: width},
		)
		return nil

	case pkCmp:
		switch {
		case p.LCol != nil && p.RCol != nil: // join predicate
			l, err := resolve(*p.LCol)
			if err != nil {
				return err
			}
			r, err := resolve(*p.RCol)
			if err != nil {
				return err
			}
			if _, err := numericStats(l); err != nil {
				return err
			}
			if _, err := numericStats(r); err != nil {
				return err
			}
			if p.Op != "=" {
				return fmt.Errorf("sqlparse: only equality join predicates are supported, got %q", p.Op)
			}
			if p.NoRefine {
				q.Fixed = append(q.Fixed, relq.FixedPred{
					Kind: relq.FixedEquiJoin, Left: l, Right: r,
					LCoef: p.LCol.Coef, RCoef: p.RCol.Coef,
				})
			} else {
				q.Dims = append(q.Dims, relq.Dimension{
					Kind: relq.JoinBand, Left: l, Right: r,
					LCoef: p.LCol.Coef, RCoef: p.RCol.Coef,
					Width: 100, // §2.3: equality joins score in absolute units
				})
			}
			return nil

		default: // column vs constant
			colAST, num, op := p.LCol, p.RNum, p.Op
			if colAST == nil {
				// Constant on the left: flip.
				colAST, num = p.RCol, p.LNum
				op = flipOp(op)
			}
			if colAST.Coef != 0 && colAST.Coef != 1 {
				return fmt.Errorf("sqlparse: coefficients are only valid in join predicates")
			}
			ref, err := resolve(*colAST)
			if err != nil {
				return err
			}
			stats, err := numericStats(ref)
			if err != nil {
				return err
			}
			switch op {
			case "<", "<=":
				if p.NoRefine {
					q.Fixed = append(q.Fixed, relq.FixedPred{Kind: relq.FixedRange, Col: ref, Lo: math.Inf(-1), Hi: num})
					return nil
				}
				// Interval anchored at the attribute minimum (§2.2).
				width := num - stats.Min
				if width <= 0 {
					width = stats.Max - stats.Min
				}
				if width <= 0 {
					width = 100
				}
				q.Dims = append(q.Dims, relq.Dimension{Kind: relq.SelectLE, Col: ref, Bound: num, Width: width})
			case ">", ">=":
				if p.NoRefine {
					q.Fixed = append(q.Fixed, relq.FixedPred{Kind: relq.FixedRange, Col: ref, Lo: num, Hi: math.Inf(1)})
					return nil
				}
				width := stats.Max - num
				if width <= 0 {
					width = stats.Max - stats.Min
				}
				if width <= 0 {
					width = 100
				}
				q.Dims = append(q.Dims, relq.Dimension{Kind: relq.SelectGE, Col: ref, Bound: num, Width: width})
			case "=":
				if p.NoRefine {
					q.Fixed = append(q.Fixed, relq.FixedPred{Kind: relq.FixedRange, Col: ref, Lo: num, Hi: num})
					return nil
				}
				q.Dims = append(q.Dims, relq.Dimension{Kind: relq.SelectEQ, Col: ref, Bound: num, Width: 100})
			default:
				return fmt.Errorf("sqlparse: unsupported predicate operator %q", op)
			}
			return nil
		}

	default:
		return fmt.Errorf("sqlparse: internal: unknown predicate kind")
	}
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// FuncNames lists the aggregate function spellings Analyze accepts,
// for diagnostics.
func FuncNames() string {
	return strings.Join([]string{"COUNT", "SUM", "MIN", "MAX", "AVG"}, ", ")
}
