package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that any statement it
// accepts has internally consistent structure. Run with
// `go test -fuzz=FuzzParse ./internal/sqlparse`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * FROM users CONSTRAINT COUNT(*) = 1M WHERE age <= 30`,
		`SELECT * FROM supplier, part, partsupp CONSTRAINT SUM(ps_availqty) >= 0.1M
		 WHERE (s_suppkey = ps_suppkey) NOREFINE AND (p_retailprice < 1000)`,
		`SELECT * FROM t CONSTRAINT AVG(x) = 5 WHERE 10 <= y <= 50 AND s = 'it''s'`,
		`SELECT * FROM a, b CONSTRAINT MAX(v) > 9 WHERE 2*a.u = 3*b.v AND x BETWEEN 1 AND 9`,
		`SELECT * FROM t CONSTRAINT MYUDA(x) = 2K WHERE s IN ('a', 'b') NOREFINE -- c`,
		`SELECT * FROM t CONSTRAINT COUNT(*) <= .5 WHERE x >= -1.5e3`,
		``,
		`SELECT * FROM`,
		`)(*&^%$`,
		strings.Repeat("(", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		ast, err := Parse(input)
		if err != nil {
			return // rejections are fine; panics are not
		}
		if len(ast.Tables) == 0 {
			t.Fatalf("accepted statement with no tables: %q", input)
		}
		if ast.Agg.FuncName == "" {
			t.Fatalf("accepted statement with no aggregate: %q", input)
		}
		for i, p := range ast.Preds {
			switch p.kind {
			case pkCmp:
				if p.LCol == nil && p.RCol == nil {
					t.Fatalf("pred %d compares constants in accepted %q", i, input)
				}
			case pkIn, pkStrEq:
				if len(p.Strings) == 0 {
					t.Fatalf("pred %d has empty string set in accepted %q", i, input)
				}
			case pkRange:
				// lo/hi are whatever was written; analyzer validates order.
			default:
				t.Fatalf("pred %d has invalid kind in accepted %q", i, input)
			}
		}
	})
}

// FuzzLex asserts the lexer terminates without panicking on arbitrary
// input and that token positions are monotone.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"a 1.5M 'x''y' <= (", "--only comment", "\x00\xff", "1e", "'"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		last := -1
		for _, tk := range toks {
			if tk.pos < last {
				t.Fatalf("token positions regress in %q", input)
			}
			last = tk.pos
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tkEOF {
			t.Fatalf("token stream must end with EOF for %q", input)
		}
	})
}
