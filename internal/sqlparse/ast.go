package sqlparse

// AST is the parsed form of an aggregation constrained query, before
// name resolution and domain analysis.
type AST struct {
	Tables []string
	Agg    AggClause
	Preds  []PredAST
}

// AggClause is the CONSTRAINT clause.
type AggClause struct {
	FuncName string // COUNT, SUM, ... or a UDA name
	Star     bool   // COUNT(*)
	Col      ColAST
	Op       string // = <= < >= >
	Target   float64
}

// ColAST is a possibly qualified, possibly coefficient-scaled column
// reference (the "2*a.x" of non-equi joins).
type ColAST struct {
	Coef   float64 // 0 means 1
	Table  string  // empty for bare references
	Column string
}

// Ref renders the reference for resolution ("tbl.col" or "col").
func (c ColAST) Ref() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// predKind discriminates the parsed predicate shapes.
type predKind uint8

const (
	// pkCmp is "term op term" where terms are columns or numbers.
	pkCmp predKind = iota + 1
	// pkRange is "lo op col op hi" or "col BETWEEN lo AND hi".
	pkRange
	// pkIn is "col IN ('a', 'b', ...)".
	pkIn
	// pkStrEq is "col = 'string'".
	pkStrEq
)

// PredAST is one parsed WHERE conjunct with its NOREFINE flag.
type PredAST struct {
	kind     predKind
	NoRefine bool

	// pkCmp:
	LCol, RCol *ColAST // nil when the side is a number
	LNum, RNum float64
	Op         string

	// pkRange:
	Col    ColAST
	Lo, Hi float64

	// pkIn / pkStrEq:
	Strings []string
}
