// Package sqlparse implements the paper's SQL extension for
// Aggregation Constrained Queries (§2.1):
//
//	SELECT * FROM t1, t2, ...
//	CONSTRAINT AGG(attribute) Op X
//	WHERE P1 [NOREFINE] AND P2 [NOREFINE] AND ...
//
// Parse produces an AST; Analyze resolves it against a catalog into a
// relq.Query, computing predicate intervals (and hence PScore widths)
// from attribute domain statistics, exactly as §2.2 anchors intervals
// at attribute minima/maxima.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkStar
	tkComma
	tkDot
	tkLParen
	tkRParen
	tkOp // = < <= > >= <> !=
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tkEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes the input. Numbers accept the paper's K/M/B magnitude
// suffixes ("CONSTRAINT COUNT(*)=1M", "SUM(ps_availqty) >= 0.1M").
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// SQL line comment: skip to end of line.
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '*':
			toks = append(toks, token{kind: tkStar, text: "*", pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tkComma, text: ",", pos: i})
			i++
		case c == '.' && (i+1 >= n || !isDigit(input[i+1])):
			toks = append(toks, token{kind: tkDot, text: ".", pos: i})
			i++
		case c == '(':
			toks = append(toks, token{kind: tkLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tkRParen, text: ")", pos: i})
			i++
		case c == '=':
			toks = append(toks, token{kind: tkOp, text: "=", pos: i})
			i++
		case c == '<' || c == '>' || c == '!':
			op := string(c)
			i++
			if i < n && (input[i] == '=' || (c == '<' && input[i] == '>')) {
				op += string(input[i])
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("sqlparse: stray '!' at offset %d", i-1)
			}
			toks = append(toks, token{kind: tkOp, text: op, pos: i - len(op)})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{kind: tkString, text: sb.String(), pos: start})
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])) ||
			(c == '-' && i+1 < n && (isDigit(input[i+1]) || input[i+1] == '.')):
			start := i
			if c == '-' {
				i++
			}
			for i < n && (isDigit(input[i]) || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			text := input[start:i]
			mult := 1.0
			if i < n {
				switch input[i] {
				case 'K', 'k':
					mult, i = 1e3, i+1
				case 'M', 'm':
					mult, i = 1e6, i+1
				case 'B', 'b':
					mult, i = 1e9, i+1
				}
				// A magnitude suffix must end the number (not start an identifier).
				if mult != 1 && i < n && isIdentChar(input[i]) {
					return nil, fmt.Errorf("sqlparse: malformed number at offset %d", start)
				}
			}
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: malformed number %q at offset %d", text, start)
			}
			toks = append(toks, token{kind: tkNumber, text: text, num: v * mult, pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentChar(input[i]) {
				i++
			}
			toks = append(toks, token{kind: tkIdent, text: input[start:i], pos: start})
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c)
}
