package sqlparse

import (
	"math"
	"strings"
	"testing"

	"acquire/internal/data"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT * FROM t WHERE (x <= 10.5) AND s = 'it''s' AND n >= 0.1M")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	// Spot checks.
	found := false
	for _, tk := range toks {
		if tk.kind == tkString && tk.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Error("escaped string not lexed")
	}
	for _, tk := range toks {
		if tk.kind == tkNumber && tk.num == 1e5 {
			found = true
		}
	}
	if !found {
		t.Error("0.1M suffix not lexed as 1e5")
	}
	_ = kinds
}

func TestLexerErrors(t *testing.T) {
	for _, in := range []string{"'unterminated", "a ! b", "x = 1Mx", "x @ y"} {
		if _, err := lex(in); err == nil {
			t.Errorf("lex(%q): expected error", in)
		}
	}
}

func TestLexerNumberForms(t *testing.T) {
	cases := map[string]float64{
		"42":    42,
		"-1.5":  -1.5,
		"2K":    2000,
		"1M":    1e6,
		"3B":    3e9,
		"1e3":   1000,
		"2.5e2": 250,
		".5":    0.5,
	}
	for in, want := range cases {
		toks, err := lex(in)
		if err != nil {
			t.Errorf("lex(%q): %v", in, err)
			continue
		}
		if toks[0].kind != tkNumber || toks[0].num != want {
			t.Errorf("lex(%q) = %v (%v), want %v", in, toks[0].num, toks[0].kind, want)
		}
	}
}

func TestParsePaperQ1(t *testing.T) {
	// Q1' from the paper (numeric-adapted): the ad-campaign ACQ.
	sql := `SELECT * FROM users
	CONSTRAINT COUNT(*) = 1M
	WHERE (gender = 'Women') NOREFINE AND (25 <= age <= 35)
	AND (location IN ('Boston', 'New York', 'Seattle')) NOREFINE`
	ast, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(ast.Tables) != 1 || ast.Tables[0] != "users" {
		t.Errorf("tables = %v", ast.Tables)
	}
	if ast.Agg.FuncName != "COUNT" || !ast.Agg.Star || ast.Agg.Target != 1e6 {
		t.Errorf("agg = %+v", ast.Agg)
	}
	if len(ast.Preds) != 3 {
		t.Fatalf("preds = %d", len(ast.Preds))
	}
	if !ast.Preds[0].NoRefine || ast.Preds[0].kind != pkStrEq {
		t.Errorf("pred 0 = %+v", ast.Preds[0])
	}
	if ast.Preds[1].kind != pkRange || ast.Preds[1].Lo != 25 || ast.Preds[1].Hi != 35 || ast.Preds[1].NoRefine {
		t.Errorf("pred 1 = %+v", ast.Preds[1])
	}
	if ast.Preds[2].kind != pkIn || len(ast.Preds[2].Strings) != 3 || !ast.Preds[2].NoRefine {
		t.Errorf("pred 2 = %+v", ast.Preds[2])
	}
}

func TestParsePaperQ2(t *testing.T) {
	sql := `SELECT * FROM supplier, part, partsupp
	CONSTRAINT SUM(ps_availqty) >= 0.1M
	WHERE (s_suppkey = ps_suppkey) NOREFINE AND
	(p_partkey = ps_partkey) NOREFINE AND
	(p_retailprice < 1000) AND (s_acctbal < 2000)
	AND (p_size = 10) NOREFINE AND
	(p_type = 'SMALL BURNISHED STEEL') NOREFINE`
	ast, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(ast.Tables) != 3 {
		t.Errorf("tables = %v", ast.Tables)
	}
	if ast.Agg.FuncName != "SUM" || ast.Agg.Op != ">=" || ast.Agg.Target != 1e5 {
		t.Errorf("agg = %+v", ast.Agg)
	}
	if len(ast.Preds) != 6 {
		t.Fatalf("preds = %d", len(ast.Preds))
	}
	if ast.Preds[0].kind != pkCmp || ast.Preds[0].LCol == nil || ast.Preds[0].RCol == nil {
		t.Errorf("join pred 0 = %+v", ast.Preds[0])
	}
}

func TestParseBetweenAndCoef(t *testing.T) {
	ast, err := Parse(`SELECT * FROM a, b CONSTRAINT COUNT(*) = 5
	WHERE x BETWEEN 1 AND 9 AND 2*a.u = 3*b.v`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if ast.Preds[0].kind != pkRange || ast.Preds[0].Lo != 1 || ast.Preds[0].Hi != 9 {
		t.Errorf("between = %+v", ast.Preds[0])
	}
	j := ast.Preds[1]
	if j.kind != pkCmp || j.LCol.Coef != 2 || j.RCol.Coef != 3 || j.LCol.Table != "a" {
		t.Errorf("coef join = %+v", j)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT x FROM t CONSTRAINT COUNT(*)=1",
		"SELECT * FROM CONSTRAINT COUNT(*)=1",
		"SELECT * FROM t",                                         // missing CONSTRAINT
		"SELECT * FROM t CONSTRAINT COUNT(*)",                     // missing op
		"SELECT * FROM t CONSTRAINT COUNT(*) = ",                  // missing target
		"SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE",           // empty WHERE
		"SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE 1=2",       // const vs const
		"SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE (x<1",      // unbalanced paren
		"SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE 1 < x > 2", // bad range ops
		"SELECT * FROM select CONSTRAINT COUNT(*) = 1",            // reserved table
		"SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE x < 1 garbage",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

func analyzeCat(t *testing.T) *data.Catalog {
	t.Helper()
	cat, err := tpch.Generate(tpch.Config{Rows: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestAnalyzeQ2(t *testing.T) {
	cat := analyzeCat(t)
	q, err := ParseAndAnalyze(`SELECT * FROM supplier, part, partsupp
	CONSTRAINT SUM(ps_availqty) >= 0.1M
	WHERE (s_suppkey = ps_suppkey) NOREFINE AND
	(p_partkey = ps_partkey) NOREFINE AND
	(p_retailprice < 1000) AND (s_acctbal < 2000)
	AND (p_size = 10) NOREFINE AND
	(p_type = 'SMALL BURNISHED STEEL') NOREFINE`, cat)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	if q.Constraint.Func != relq.AggSum || q.Constraint.Attr.Column != "ps_availqty" ||
		q.Constraint.Attr.Table != "partsupp" {
		t.Errorf("constraint = %+v", q.Constraint)
	}
	if len(q.Dims) != 2 {
		t.Fatalf("dims = %d, want 2", len(q.Dims))
	}
	// p_retailprice < 1000: interval anchored at domain min (§2.2).
	d := q.Dims[0]
	if d.Kind != relq.SelectLE || d.Col.Column != "p_retailprice" || d.Bound != 1000 {
		t.Errorf("dim 0 = %+v", d)
	}
	part, _ := cat.Table("part")
	stats, _ := part.Stats(part.Schema().Ordinal("p_retailprice"))
	wantWidth := 1000 - stats.Min
	if math.Abs(d.Width-wantWidth) > 1e-9 {
		t.Errorf("dim 0 width = %v, want %v", d.Width, wantWidth)
	}
	// NOREFINE produced fixed predicates.
	if len(q.Fixed) != 4 {
		t.Errorf("fixed = %d, want 4", len(q.Fixed))
	}
	kinds := map[relq.FixedKind]int{}
	for _, f := range q.Fixed {
		kinds[f.Kind]++
	}
	if kinds[relq.FixedEquiJoin] != 2 || kinds[relq.FixedRange] != 1 || kinds[relq.FixedStringIn] != 1 {
		t.Errorf("fixed kinds = %v", kinds)
	}
}

func TestAnalyzeRangeSplit(t *testing.T) {
	cat := analyzeCat(t)
	q, err := ParseAndAnalyze(`SELECT * FROM part CONSTRAINT COUNT(*) = 50
	WHERE 10 <= p_size <= 20`, cat)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	if len(q.Dims) != 2 {
		t.Fatalf("range should split into 2 dims, got %d", len(q.Dims))
	}
	if q.Dims[0].Kind != relq.SelectGE || q.Dims[0].Bound != 10 || q.Dims[0].Width != 10 {
		t.Errorf("lo dim = %+v", q.Dims[0])
	}
	if q.Dims[1].Kind != relq.SelectLE || q.Dims[1].Bound != 20 || q.Dims[1].Width != 10 {
		t.Errorf("hi dim = %+v", q.Dims[1])
	}
}

func TestAnalyzeRefinableJoinAndEquality(t *testing.T) {
	cat := analyzeCat(t)
	q, err := ParseAndAnalyze(`SELECT * FROM part, partsupp CONSTRAINT COUNT(*) = 10
	WHERE p_partkey = ps_partkey AND p_size = 10`, cat)
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	if len(q.Dims) != 2 {
		t.Fatalf("dims = %d", len(q.Dims))
	}
	if q.Dims[0].Kind != relq.JoinBand || q.Dims[0].Width != 100 {
		t.Errorf("join dim = %+v", q.Dims[0])
	}
	if q.Dims[1].Kind != relq.SelectEQ || q.Dims[1].Width != 100 {
		t.Errorf("eq dim = %+v", q.Dims[1])
	}
}

func TestAnalyzeFlippedComparison(t *testing.T) {
	cat := analyzeCat(t)
	q, err := ParseAndAnalyze(`SELECT * FROM part CONSTRAINT COUNT(*) = 10
	WHERE 1000 > p_retailprice`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Dims) != 1 || q.Dims[0].Kind != relq.SelectLE || q.Dims[0].Bound != 1000 {
		t.Errorf("flipped dim = %+v", q.Dims)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cat := analyzeCat(t)
	bad := []string{
		`SELECT * FROM nosuch CONSTRAINT COUNT(*) = 1`,
		`SELECT * FROM part CONSTRAINT COUNT(*) = 1 WHERE nocol < 5`,
		`SELECT * FROM part CONSTRAINT SUM(*) = 1`,
		`SELECT * FROM part CONSTRAINT STDDEV(p_size) = 1`,
		`SELECT * FROM part CONSTRAINT COUNT(*) <> 1`,
		`SELECT * FROM part CONSTRAINT COUNT(*) = 1 WHERE p_type < 5`,
		`SELECT * FROM part CONSTRAINT COUNT(*) = 1 WHERE p_size = 'x' AND p_size < 3`,
		`SELECT * FROM part, partsupp CONSTRAINT COUNT(*) = 1 WHERE p_partkey < ps_partkey`,
		`SELECT * FROM part CONSTRAINT COUNT(*) = 1 WHERE 9 <= p_size <= 2`,
		`SELECT * FROM part CONSTRAINT COUNT(*) = 1 WHERE 2*p_size < 7`,
		`SELECT * FROM part, partsupp CONSTRAINT COUNT(*) = 1 WHERE p_type IN ('A') AND p_partkey = nokey`,
	}
	for _, sql := range bad {
		if _, err := ParseAndAnalyze(sql, cat); err == nil {
			t.Errorf("ParseAndAnalyze(%q): expected error", sql)
		}
	}
}

// Round-trip: Analyze then render via relq.ToSQL, reparse, re-analyze;
// resulting queries must be structurally identical.
func TestSQLRoundTrip(t *testing.T) {
	cat := analyzeCat(t)
	sqls := []string{
		`SELECT * FROM part CONSTRAINT COUNT(*) = 50 WHERE p_retailprice <= 1200 AND (p_size >= 10) NOREFINE`,
		`SELECT * FROM part, partsupp CONSTRAINT SUM(ps_availqty) >= 1000 WHERE (p_partkey = ps_partkey) NOREFINE AND p_retailprice <= 1500`,
		`SELECT * FROM part CONSTRAINT AVG(p_retailprice) = 1400 WHERE p_size <= 25`,
	}
	for _, sql := range sqls {
		q1, err := ParseAndAnalyze(sql, cat)
		if err != nil {
			t.Fatalf("first analyze of %q: %v", sql, err)
		}
		rendered := q1.ToSQL()
		q2, err := ParseAndAnalyze(rendered, cat)
		if err != nil {
			t.Fatalf("reparse of %q: %v", rendered, err)
		}
		if len(q1.Dims) != len(q2.Dims) || len(q1.Fixed) != len(q2.Fixed) {
			t.Errorf("round trip changed shape:\n  %s\n  %s", sql, rendered)
			continue
		}
		for i := range q1.Dims {
			a, b := q1.Dims[i], q2.Dims[i]
			if a.Kind != b.Kind || a.Col != b.Col || a.Bound != b.Bound {
				t.Errorf("dim %d differs: %+v vs %+v", i, a, b)
			}
		}
		if q1.Constraint != q2.Constraint {
			t.Errorf("constraint differs: %+v vs %+v", q1.Constraint, q2.Constraint)
		}
	}
}

func TestLineComments(t *testing.T) {
	cat := analyzeCat(t)
	q, err := ParseAndAnalyze(`SELECT * FROM part -- the catalog
	CONSTRAINT COUNT(*) = 10 -- audience size
	WHERE p_retailprice < 1000 -- budget cap
	AND p_size >= -5`, cat)
	if err != nil {
		t.Fatalf("ParseAndAnalyze with comments: %v", err)
	}
	if len(q.Dims) != 2 {
		t.Errorf("dims = %d", len(q.Dims))
	}
	if q.Dims[1].Bound != -5 {
		t.Errorf("negative bound parsed as %v", q.Dims[1].Bound)
	}
}

func TestFuncNames(t *testing.T) {
	if !strings.Contains(FuncNames(), "COUNT") {
		t.Error("FuncNames missing COUNT")
	}
}
