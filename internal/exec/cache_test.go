package exec

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"acquire/internal/data"
	"acquire/internal/exec/regioncache"
	"acquire/internal/relq"
)

func priceQuery() *relq.Query {
	return countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 500, Width: 2000,
	}, relq.Dimension{
		Kind: relq.SelectGE, Col: relq.ColumnRef{Table: "part", Column: "p_size"},
		Bound: 25, Width: 50,
	})
}

// randomRegions draws n distinct cells from a 10x10 grid so that hit
// and miss counts within one batch are exact (duplicate regions would
// hit the cache mid-batch).
func randomRegions(rng *rand.Rand, n int) []relq.Region {
	cells := rng.Perm(100)[:n]
	regions := make([]relq.Region, n)
	for i, c := range cells {
		lo1 := float64(c/10) * 2.5
		lo2 := float64(c%10) * 2.5
		regions[i] = relq.Region{
			{Lo: lo1 - 2.5, Hi: lo1},
			{Lo: lo2 - 2.5, Hi: lo2},
		}
	}
	return regions
}

// A repeated batch is answered entirely from the cache: Queries does
// not move, CacheHits covers every region, and the partials are
// byte-identical to the cold run.
func TestRegionCacheHits(t *testing.T) {
	e := New(smallCatalog(t, 10, 400, 3))
	e.SetRegionCache(regioncache.New(1 << 20))
	q := priceQuery()
	regions := randomRegions(rand.New(rand.NewSource(7)), 20)

	cold, err := e.AggregateBatch(context.Background(), q, regions)
	if err != nil {
		t.Fatal(err)
	}
	st1 := e.Snapshot()
	if st1.CacheMisses == 0 || st1.CacheHits != 0 {
		t.Fatalf("cold run stats = %+v", st1)
	}

	warm, err := e.AggregateBatch(context.Background(), q, regions)
	if err != nil {
		t.Fatal(err)
	}
	st2 := e.Snapshot()
	if st2.Queries != st1.Queries {
		t.Errorf("warm run executed %d queries, want 0", st2.Queries-st1.Queries)
	}
	if got := st2.CacheHits - st1.CacheHits; got != int64(len(regions)) {
		t.Errorf("warm run hits = %d, want %d", got, len(regions))
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Fatalf("region %d: warm partial %+v != cold %+v", i, warm[i], cold[i])
		}
	}
}

// Policy-only query variants (different constraint target/op) share
// cache entries: the second engine-level search is fully warm.
func TestRegionCacheSharedAcrossTargets(t *testing.T) {
	e := New(smallCatalog(t, 10, 400, 3))
	e.SetRegionCache(regioncache.New(1 << 20))
	regions := randomRegions(rand.New(rand.NewSource(9)), 10)
	if _, err := e.AggregateBatch(context.Background(), priceQuery(), regions); err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	v := priceQuery()
	v.Constraint.Target = 12345
	v.Constraint.Op = relq.CmpGE
	if _, err := e.AggregateBatch(context.Background(), v, regions); err != nil {
		t.Fatal(err)
	}
	d := e.Snapshot().Sub(before)
	if d.Queries != 0 || d.CacheHits != int64(len(regions)) {
		t.Errorf("target variant not served from cache: %+v", d)
	}
}

// Appending rows changes the row-count generation word, so every prior
// entry misses and results match a fresh engine over the grown table.
func TestRegionCacheRowCountGeneration(t *testing.T) {
	cat := smallCatalog(t, 10, 300, 5)
	e := New(cat)
	e.SetRegionCache(regioncache.New(1 << 20))
	q := priceQuery()
	regions := randomRegions(rand.New(rand.NewSource(11)), 25)
	if _, err := e.AggregateBatch(context.Background(), q, regions); err != nil {
		t.Fatal(err)
	}

	part, err := cat.Table("part")
	if err != nil {
		t.Fatal(err)
	}
	if err := part.AppendRow(data.IntValue(999999), data.FloatValue(100), data.IntValue(30), data.StringValue("STEEL")); err != nil {
		t.Fatal(err)
	}

	before := e.Snapshot()
	got, err := e.AggregateBatch(context.Background(), q, regions)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Snapshot().Sub(before); d.CacheHits != 0 {
		t.Errorf("stale entries served after append: %+v", d)
	}
	fresh := New(cat)
	want, err := fresh.AggregateBatch(context.Background(), q, regions)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("region %d after append: cached-engine %+v != fresh %+v", i, got[i], want[i])
		}
	}
}

// In-place table mutation (catalog Replace) is invisible to the
// row-count generation; after InvalidateRegionCache the cached engine's
// results over 50 randomized regions are identical to a cold engine on
// the mutated data.
func TestRegionCacheInvalidateMatchesColdRun(t *testing.T) {
	cat := smallCatalog(t, 10, 300, 13)
	e := New(cat)
	e.SetRegionCache(regioncache.New(1 << 20))
	q := priceQuery()
	regions := randomRegions(rand.New(rand.NewSource(17)), 50)
	if _, err := e.AggregateBatch(context.Background(), q, regions); err != nil {
		t.Fatal(err)
	}
	if e.RegionCache().Len() == 0 {
		t.Fatal("cache empty after cold run")
	}

	// Rebuild "part" with shifted prices and the same row count — the
	// mutation an append generation cannot detect.
	old, err := cat.Table("part")
	if err != nil {
		t.Fatal(err)
	}
	repl := data.NewTable("part", old.Schema())
	row := make([]data.Value, old.Schema().Len())
	for r := 0; r < old.NumRows(); r++ {
		for c := range row {
			row[c] = old.ValueAt(r, c)
		}
		price, err := row[1].AsFloat()
		if err != nil {
			t.Fatal(err)
		}
		row[1] = data.FloatValue(price + 250)
		if err := repl.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	cat.Replace(repl)
	e.InvalidateTable("part")
	if e.RegionCache().Len() != 0 {
		t.Fatal("region cache not emptied by InvalidateTable")
	}

	got, err := e.AggregateBatch(context.Background(), q, regions)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(cat).AggregateBatch(context.Background(), q, regions)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("region %d after invalidate: %+v != cold %+v", i, got[i], want[i])
		}
	}
}

// Concurrent sessions hammering one shared cache (stats_race pattern):
// 10 goroutines interleave overlapping batches on one engine; every
// result must be byte-identical to an uncached reference engine, and
// hits+misses must account for every dispatched region. Run under
// `go test -race`.
func TestRegionCacheConcurrentSessions(t *testing.T) {
	cat := smallCatalog(t, 10, 500, 19)
	e := New(cat)
	e.SetRegionCache(regioncache.New(1 << 20))
	ref := New(cat)
	q := priceQuery()

	regions := randomRegions(rand.New(rand.NewSource(23)), 40)
	want, err := ref.AggregateBatch(context.Background(), q, regions)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 10
	const rounds = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	dispatched := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < rounds; r++ {
				// Overlapping slices: different sessions request many of
				// the same regions concurrently.
				lo := rng.Intn(len(regions) / 2)
				hi := lo + len(regions)/2 + rng.Intn(len(regions)/2)
				if hi > len(regions) {
					hi = len(regions)
				}
				sub := regions[lo:hi]
				got, err := e.AggregateBatch(context.Background(), q, sub)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				for i := range got {
					if got[i] != want[lo+i] {
						t.Errorf("goroutine %d round %d region %d: %+v != %+v", g, r, lo+i, got[i], want[lo+i])
						return
					}
				}
				mu.Lock()
				dispatched += len(sub)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	st := e.Snapshot()
	if st.CacheHits+st.CacheMisses != int64(dispatched) {
		t.Errorf("hits %d + misses %d != dispatched %d", st.CacheHits, st.CacheMisses, dispatched)
	}
	if st.CacheHits == 0 {
		t.Error("no cache hits across concurrent sessions")
	}
	// Singleflight + cache: unique regions execute at most once each.
	if st.Queries > int64(len(regions)) {
		t.Errorf("executed %d queries for %d unique regions", st.Queries, len(regions))
	}
	cs := e.RegionCache().Stats()
	if cs.Hits != st.CacheHits || cs.Misses != st.CacheMisses {
		t.Errorf("cache stats %+v disagree with engine stats %+v", cs, st)
	}
}

// The cache path preserves the zero-region and error behaviors of the
// uncached batch entry point.
func TestRegionCacheEdgeCases(t *testing.T) {
	e := New(smallCatalog(t, 10, 100, 29))
	e.SetRegionCache(regioncache.New(1 << 20))
	out, err := e.AggregateBatch(context.Background(), priceQuery(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	bad := &relq.Query{Tables: []string{"nope"}, Dims: priceQuery().Dims,
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1}}
	if _, err := e.AggregateBatch(context.Background(), bad, randomRegions(rand.New(rand.NewSource(1)), 1)); err == nil {
		t.Fatal("missing-table batch did not error")
	}
	// Detach: runs execute directly again.
	e.SetRegionCache(nil)
	before := e.Snapshot()
	if _, err := e.AggregateBatch(context.Background(), priceQuery(), randomRegions(rand.New(rand.NewSource(2)), 3)); err != nil {
		t.Fatal(err)
	}
	if d := e.Snapshot().Sub(before); d.CacheMisses != 0 || d.Queries != 3 {
		t.Errorf("detached engine still counting cache traffic: %+v", d)
	}
}
