package exec

import (
	"math"
	"testing"
)

// sortedFrom builds a sortedIdx directly from an already-sorted value
// slice, with row ids equal to sort positions.
func sortedFrom(vals ...float64) *sortedIdx {
	ix := &sortedIdx{vals: vals, rows: make([]int32, len(vals))}
	for i := range ix.rows {
		ix.rows[i] = int32(i)
	}
	return ix
}

func TestRangeSizeEdgeCases(t *testing.T) {
	empty := sortedFrom()
	uniform := sortedFrom(5, 5, 5, 5) // degenerate all-equal column
	normal := sortedFrom(1, 2, 3, 4, 5, 6)

	cases := []struct {
		name   string
		ix     *sortedIdx
		lo, hi float64
		want   int
	}{
		{"empty index", empty, 0, 10, 0},
		{"empty index reversed", empty, 10, 0, 0},
		{"reversed bounds", normal, 4, 2, 0},
		{"below domain", normal, -5, 0, 0},
		{"above domain", normal, 7, 100, 0},
		{"full cover", normal, 0, 10, 6},
		{"inclusive endpoints", normal, 2, 4, 3},
		{"single value hit", normal, 3, 3, 1},
		{"single value miss", normal, 2.5, 2.6, 0},
		{"all-equal hit", uniform, 5, 5, 4},
		{"all-equal cover", uniform, 0, 10, 4},
		{"all-equal below", uniform, 0, 4.9, 0},
		{"all-equal above", uniform, 5.1, 10, 0},
		{"all-equal reversed", uniform, 5, 4, 0},
		{"unbounded", normal, math.Inf(-1), math.Inf(1), 6},
	}
	for _, c := range cases {
		if got := c.ix.rangeSize(c.lo, c.hi); got != c.want {
			t.Errorf("%s: rangeSize(%v, %v) = %d, want %d", c.name, c.lo, c.hi, got, c.want)
		}
		// rangeRows must agree with rangeSize on cardinality, and return
		// nil (not an empty non-nil slice) for empty ranges.
		rows := c.ix.rangeRows(c.lo, c.hi)
		if len(rows) != c.want {
			t.Errorf("%s: rangeRows returned %d rows, want %d", c.name, len(rows), c.want)
		}
		if c.want == 0 && rows != nil {
			t.Errorf("%s: empty range returned non-nil slice", c.name)
		}
	}
}

func TestRangeRowsContents(t *testing.T) {
	// Duplicated values: every duplicate's row id must be returned.
	ix := &sortedIdx{
		vals: []float64{1, 2, 2, 2, 3},
		rows: []int32{4, 0, 2, 3, 1},
	}
	got := ix.rangeRows(2, 2)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Errorf("rangeRows(2,2) = %v, want [0 2 3]", got)
	}
	if n := ix.rangeSize(2, 2); n != 3 {
		t.Errorf("rangeSize(2,2) = %d, want 3", n)
	}
	// Half-open boundary behavior: [lo, hi] is closed on both sides.
	if got := ix.rangeRows(2, 3); len(got) != 4 {
		t.Errorf("rangeRows(2,3) = %v, want 4 rows", got)
	}
	if got := ix.rangeRows(1, 1.5); len(got) != 1 || got[0] != 4 {
		t.Errorf("rangeRows(1,1.5) = %v, want [4]", got)
	}
}
