package exec

import (
	"strings"
	"sync"
	"testing"
	"time"

	"acquire/internal/data"
	"acquire/internal/obs"
	"acquire/internal/relq"
)

// TestSnapshotResetCoherent drives Snapshot and ResetStats from
// concurrent goroutines while a writer bumps counters in a fixed
// pattern (queries first, then rowsScanned, through one cell-pointer
// read per iteration — the same access pattern the engine's hot path
// uses). Because ResetStats swaps the whole counter generation, every
// snapshot must come from a single generation: with one writer,
// queries >= rowsScanned and their difference is at most 1 in every
// observable state. The pre-fix sequential reset (zeroing queries
// before rowsScanned) violates this: a snapshot between the two
// stores sees queries == 0 with rowsScanned still at its old value.
// Run with -race to also exercise the memory-model side.
func TestSnapshotResetCoherent(t *testing.T) {
	e := New(data.NewCatalog())
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: the hot-path access pattern
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := e.stats.Load()
			c.queries.Add(1)
			c.rowsScanned.Add(1)
		}
	}()
	wg.Add(1)
	go func() { // resetter
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			e.ResetStats()
		}
	}()

	bad := 0
	for i := 0; i < 20000; i++ {
		s := e.Snapshot()
		d := s.Queries - s.RowsScanned
		if d < 0 || d > 1 {
			bad++
			if bad < 5 {
				t.Errorf("incoherent snapshot: %+v (queries-rows = %d)", s, d)
			}
		}
	}
	close(stop)
	wg.Wait()
	if bad > 0 {
		t.Fatalf("%d incoherent snapshots", bad)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Queries: 10, RowsScanned: 100, TuplesExamined: 50, CellsSkipped: 3,
		CacheHits: 9, CacheMisses: 7, CacheEvictions: 5}
	b := Stats{Queries: 4, RowsScanned: 40, TuplesExamined: 20, CellsSkipped: 1,
		CacheHits: 4, CacheMisses: 3, CacheEvictions: 2}
	got := a.Sub(b)
	want := Stats{Queries: 6, RowsScanned: 60, TuplesExamined: 30, CellsSkipped: 2,
		CacheHits: 5, CacheMisses: 4, CacheEvictions: 3}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}

// TestObserverMirrorsStats checks that an attached observer sees the
// same counter movements as Snapshot, that engine series register
// eagerly (exposed as 0 before any query), and that per-query
// durations land in the evaluate-phase histogram with deterministic
// fake-clock values.
func TestObserverMirrorsStats(t *testing.T) {
	tab := data.NewTable("t", data.MustSchema(data.Column{Name: "v", Type: data.Float64}))
	for i := 0; i < 100; i++ {
		if err := tab.AppendRow(data.FloatValue(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tab); err != nil {
		t.Fatal(err)
	}
	e := New(cat)

	reg := obs.NewRegistry()
	clk := obs.NewFakeClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	e.SetObserver(obs.NewObserver(reg).WithClock(clk))

	// Eager registration: all engine series visible before any query.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"acquire_engine_queries_total 0",
		"acquire_engine_rows_scanned_total 0",
		"acquire_engine_cells_skipped_total 0",
		"acquire_engine_tuples_examined_total 0",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("pre-query exposition missing %q:\n%s", want, b.String())
		}
	}

	q := &relq.Query{
		Tables:     []string{"t"},
		Dims:       []relq.Dimension{{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "v"}, Bound: 10, Width: 100}},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpGE, Target: 1},
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Aggregate(q, relq.PrefixRegion([]float64{0})); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Snapshot()
	if st.Queries != 3 {
		t.Fatalf("snapshot queries = %d, want 3", st.Queries)
	}
	if got := reg.Counter("acquire_engine_queries_total", "").Value(); got != st.Queries {
		t.Errorf("mirrored queries = %d, snapshot = %d", got, st.Queries)
	}
	if got := reg.Counter("acquire_engine_rows_scanned_total", "").Value(); got != st.RowsScanned {
		t.Errorf("mirrored rows = %d, snapshot = %d", got, st.RowsScanned)
	}
	h := reg.Histogram(`acquire_phase_duration_seconds{phase="evaluate"}`, "", nil)
	if h.Count() != 3 {
		t.Errorf("evaluate histogram count = %d, want 3", h.Count())
	}
	// Each query spans exactly one fake-clock step (1ms).
	if got := h.Sum(); got != 0.003 {
		t.Errorf("evaluate histogram sum = %v, want 0.003", got)
	}

	// Detach: counters freeze, Snapshot keeps counting.
	e.SetObserver(nil)
	if _, err := e.Aggregate(q, relq.PrefixRegion([]float64{0})); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("acquire_engine_queries_total", "").Value(); got != 3 {
		t.Errorf("detached observer counter moved: %d", got)
	}
	if e.Snapshot().Queries != 4 {
		t.Errorf("snapshot queries = %d, want 4", e.Snapshot().Queries)
	}
}
