package exec

import (
	"fmt"

	"acquire/internal/data"
	"acquire/internal/relq"
)

// ResultSet is a materialised query result: the qualifying joined
// tuples with their column values, in a stable column order (tables in
// FROM order, columns in schema order, names qualified).
type ResultSet struct {
	Columns []string
	Rows    [][]data.Value
	// Truncated is set when the limit cut the result off.
	Truncated bool
}

// Materialize executes the query restricted to the region and returns
// up to limit qualifying result tuples with all their columns — the
// SELECT * output a user would see for a refined query. Counts as one
// query execution.
func (e *Engine) Materialize(q *relq.Query, region relq.Region, limit int) (*ResultSet, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("exec: Materialize limit must be positive, got %d", limit)
	}
	b, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	if len(region) != len(q.Dims) {
		return nil, fmt.Errorf("exec: region has %d dims, query has %d", len(region), len(q.Dims))
	}
	e.countQueries(1)

	rs := &ResultSet{}
	for ti, t := range b.tables {
		for _, c := range t.Schema().Columns {
			rs.Columns = append(rs.Columns, q.Tables[ti]+"."+c.Name)
		}
	}
	if region.Empty() {
		return rs, nil
	}

	cands := make([][]int32, len(b.tables))
	for ti := range b.tables {
		c, err := e.scanTable(b, region, ti)
		if err != nil {
			return nil, err
		}
		cands[ti] = c
		if len(c) == 0 {
			return rs, nil
		}
	}
	tuples, order, err := e.join(b, region, cands)
	if err != nil {
		return nil, err
	}
	stride := len(order)
	if stride == 0 || len(tuples) == 0 {
		return rs, nil
	}
	pos := make([]int, len(b.tables))
	for slot, ti := range order {
		pos[ti] = slot
	}

	viol := make([]float64, len(q.Dims))
	ntup := len(tuples) / stride
	e.countTuples(int64(ntup))
tuple:
	for t := 0; t < ntup; t++ {
		row := tuples[t*stride : (t+1)*stride]
		for i := range b.equiJoins {
			ej := &b.equiJoins[i]
			if ej.lc*ej.lvec[row[pos[ej.ltbl]]] != ej.rc*ej.rvec[row[pos[ej.rtbl]]] {
				continue tuple
			}
		}
		for i := range b.selDims {
			sd := &b.selDims[i]
			viol[sd.di] = sd.dim.Violation(sd.vec[row[pos[sd.tbl]]])
		}
		for i := range b.joinDims {
			jd := &b.joinDims[i]
			viol[jd.di] = jd.dim.JoinViolation(jd.lvec[row[pos[jd.ltbl]]], jd.rvec[row[pos[jd.rtbl]]])
		}
		if !region.Contains(viol) {
			continue tuple
		}
		if len(rs.Rows) >= limit {
			rs.Truncated = true
			break
		}
		var out []data.Value
		for ti, tbl := range b.tables {
			r := int(row[pos[ti]])
			for c := range tbl.Schema().Columns {
				out = append(out, tbl.ValueAt(r, c))
			}
		}
		rs.Rows = append(rs.Rows, out)
	}
	return rs, nil
}
