package exec

import (
	"log/slog"
	"strings"
	"sync"

	"acquire/internal/data"
)

// This file is the workload-adaptive auto-clustering subsystem: the
// engine learns which columns the workload actually ranges over and
// re-sorts fact tables around the winner so zone maps engage without
// anyone passing -cluster. Refinement workloads concentrate their
// ranging on a small, stable set of dimension columns (the search
// widens the same predicates over and over), which is what makes a
// learned clustering column converge quickly and stay put.
//
// Mechanics: vscanTable feeds per-column touch counters and a
// selectivity EWMA into workloadStats on every scan while auto-
// clustering is enabled. maybeAutoCluster — invoked at the end of each
// AggregateBatch, i.e. between batches, never mid-query — scores the
// columns of each scanned table and, when the projected benefit
// crosses the policy thresholds, rewrites the table via data.SortedBy,
// swaps it into the catalog, and rebuilds the table's grid index from
// the live grid's own spec. Derived state (column vectors, sorted
// indexes, zone maps, region cache) retires through the table-identity
// cache scheme plus InvalidateTable. Appends after a re-sort land in
// an explicit unsorted tail (data.Table.ClusterInfo); once the tail
// outgrows a block, the sweep merges it back into the sorted run with
// data.MergeClusteredTail — insert-into-sorted-run with periodic
// merge, not a full re-sort.
//
// Caveat (documented, deliberate): a re-sort changes physical row ids,
// so ViolationScan/Materialize row numbers refer to the re-clustered
// layout. Values, violations and aggregates are unchanged — for SUM
// bit-identity the batch that triggers a re-sort still computes on the
// layout it bound, and only later batches see the new one.

// AutoClusterPolicy holds the thresholds of the clustering decision.
type AutoClusterPolicy struct {
	// MinScans is the minimum touch count a column needs before it can
	// be elected — the evidence bar against clustering on a transient
	// probe.
	MinScans int64
	// MaxSelectivity is the highest post-scan selectivity EWMA
	// (candidates kept / rows) at which clustering is still projected
	// to pay: scans that keep most of the table leave nothing for zone
	// maps to skip.
	MaxSelectivity float64
	// MinRows exempts tiny tables — a re-sort of a table that fits in
	// a handful of blocks can never recoup its cost.
	MinRows int
	// Hysteresis is the factor by which a challenger column's touch
	// count must exceed the incumbent clustering column's before the
	// table is re-sorted away from it, damping flip-flop under mixed
	// workloads.
	Hysteresis float64
	// TailFraction triggers a tail merge when the unsorted append tail
	// exceeds this fraction of the table (a tail of at least one block
	// always qualifies).
	TailFraction float64
}

// DefaultAutoClusterPolicy is the policy engines start with.
// MaxSelectivity is calibrated against the fig. 8 refinement batch:
// its widening prefix regions drag the post-batch EWMA up to ~0.81
// even though explicit clustering still wins ~1.3x there (the narrow
// early regions reap the skips), so the gate sits above that with
// room, while still rejecting keep-everything scans.
var DefaultAutoClusterPolicy = AutoClusterPolicy{
	MinScans:       24,
	MaxSelectivity: 0.85,
	MinRows:        4 * blockRows,
	Hysteresis:     2,
	TailFraction:   0.05,
}

// workloadStats collects per-table, per-column range-predicate touch
// counters and selectivity EWMAs. The mutex is uncontended in practice:
// observe is called once per table scan (not per block or row), and
// only while auto-clustering is enabled.
type workloadStats struct {
	mu     sync.Mutex
	tables map[string]*tableWorkload
}

type tableWorkload struct {
	scans int64
	cols  map[int]*colWorkload // column ordinal -> stats
}

type colWorkload struct {
	touches int64
	ewma    float64 // selectivity EWMA in [0,1]; seeded on first touch
	seeded  bool
}

// ewmaAlpha weights the newest scan's selectivity; 0.2 smooths over
// roughly the last ten scans.
const ewmaAlpha = 0.2

// observe records one table scan: every driving range predicate
// touches its column, and the scan's overall selectivity (candidates
// kept / table rows) updates each touched column's EWMA.
func (w *workloadStats) observe(table string, n int, drives []scanDrive, kept int) {
	if n == 0 || len(drives) == 0 {
		return
	}
	sel := float64(kept) / float64(n)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tables == nil {
		w.tables = make(map[string]*tableWorkload)
	}
	tw := w.tables[table]
	if tw == nil {
		tw = &tableWorkload{cols: make(map[int]*colWorkload)}
		w.tables[table] = tw
	}
	tw.scans++
	for _, d := range drives {
		cw := tw.cols[d.ord]
		if cw == nil {
			cw = &colWorkload{}
			tw.cols[d.ord] = cw
		}
		cw.touches++
		if !cw.seeded {
			cw.ewma, cw.seeded = sel, true
		} else {
			cw.ewma += ewmaAlpha * (sel - cw.ewma)
		}
	}
}

// forget drops a table's collected statistics (InvalidateTable hook):
// a replaced table re-learns its clustering column from fresh traffic.
func (w *workloadStats) forget(table string) {
	w.mu.Lock()
	delete(w.tables, table)
	w.mu.Unlock()
}

// snapshot returns the touched table names and a copy of one table's
// per-column stats, so the sweep can score without holding the lock
// across catalog operations.
func (w *workloadStats) snapshot() map[string]map[int]colWorkload {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]map[int]colWorkload, len(w.tables))
	for name, tw := range w.tables {
		cols := make(map[int]colWorkload, len(tw.cols))
		for ord, cw := range tw.cols {
			cols[ord] = *cw
		}
		out[name] = cols
	}
	return out
}

// SetAutoCluster enables or disables workload-adaptive clustering:
// scans feed per-column statistics and each AggregateBatch ends with a
// clustering sweep. Disabling stops collection and sweeps; already
// re-sorted tables keep their layout.
func (e *Engine) SetAutoCluster(on bool) { e.autoCluster.Store(on) }

// AutoClusterOn reports whether workload-adaptive clustering is active.
func (e *Engine) AutoClusterOn() bool { return e.autoCluster.Load() }

// clusterPolicy returns the engine's policy, defaulting when unset.
func (e *Engine) clusterPolicy() AutoClusterPolicy {
	p := e.ClusterPolicy
	if p.MinScans == 0 {
		p.MinScans = DefaultAutoClusterPolicy.MinScans
	}
	if p.MaxSelectivity == 0 {
		p.MaxSelectivity = DefaultAutoClusterPolicy.MaxSelectivity
	}
	if p.MinRows == 0 {
		p.MinRows = DefaultAutoClusterPolicy.MinRows
	}
	if p.Hysteresis == 0 {
		p.Hysteresis = DefaultAutoClusterPolicy.Hysteresis
	}
	if p.TailFraction == 0 {
		p.TailFraction = DefaultAutoClusterPolicy.TailFraction
	}
	return p
}

// maybeAutoCluster is the between-batches sweep: for every table the
// workload has scanned, merge an overgrown append tail back into the
// sorted run, and elect/re-elect a clustering column when the policy
// thresholds are met. The sweep mutex serializes layout rewrites; a
// batch running concurrently on another goroutine keeps computing on
// the *Table pointers it bound (the old layout stays intact), and its
// derived-state lookups against the new table miss by identity and
// rebuild.
func (e *Engine) maybeAutoCluster() {
	if !e.autoCluster.Load() {
		return
	}
	snap := e.wstats.snapshot()
	if len(snap) == 0 {
		return
	}
	e.sweepMu.Lock()
	defer e.sweepMu.Unlock()
	pol := e.clusterPolicy()
	for name, cols := range snap {
		e.sweepTable(name, cols, pol)
	}
}

func (e *Engine) sweepTable(name string, cols map[int]colWorkload, pol AutoClusterPolicy) {
	t, err := e.cat.Table(name)
	if err != nil || t.NumRows() < pol.MinRows {
		return
	}

	// Tail maintenance: a clustered table whose unsorted append tail
	// has reached a block (or the policy fraction) gets the tail
	// merged back into the sorted run.
	curCol, _ := t.ClusterInfo()
	if tail := t.ClusterTail(); curCol != "" && tail > 0 &&
		(tail >= blockRows || float64(tail) >= pol.TailFraction*float64(t.NumRows())) {
		merged, err := data.MergeClusteredTail(t)
		if err == nil && merged != t {
			e.swapLayout(name, merged)
			e.countTailMerges(1)
			if eo := e.obsState.Load(); eo != nil && eo.o.LogEnabled(slog.LevelDebug) {
				eo.o.Debug("engine.autocluster.tail_merge", "table", name, "tail", tail)
			}
			t = merged
		}
	}

	// Election: best column by touches * (1 - selectivity EWMA) among
	// those meeting the evidence and selectivity bars.
	bestOrd, bestScore, bestTouches := -1, 0.0, int64(0)
	for ord, cw := range cols {
		if cw.touches < pol.MinScans || cw.ewma > pol.MaxSelectivity {
			continue
		}
		score := float64(cw.touches) * (1 - cw.ewma)
		if score > bestScore {
			bestOrd, bestScore, bestTouches = ord, score, cw.touches
		}
	}
	if bestOrd < 0 || bestOrd >= t.Schema().Len() {
		return
	}
	winner := t.Schema().Columns[bestOrd].Name
	if curCol != "" {
		if strings.EqualFold(curCol, winner) {
			return // already clustered by the winner (tail handled above)
		}
		// Re-electing away from an incumbent needs hysteresis-scaled
		// evidence against the incumbent's own touch count.
		incOrd := t.Schema().Ordinal(curCol)
		var incTouches int64
		if cw, ok := cols[incOrd]; ok {
			incTouches = cw.touches
		}
		if float64(bestTouches) < pol.Hysteresis*float64(incTouches) {
			return
		}
	}

	sorted, err := data.SortedBy(t, winner)
	if err != nil {
		return // non-numeric or vanished column; nothing to do
	}
	e.swapLayout(name, sorted)
	e.countResorts(1)
	if eo := e.obsState.Load(); eo != nil && eo.o.LogEnabled(slog.LevelDebug) {
		eo.o.Debug("engine.autocluster.resort", "table", name,
			"column", winner, "rows", sorted.NumRows())
	}
}

// swapLayout replaces a table's physical layout in the catalog and
// re-derives dependent state: the grid index (if any) is rebuilt from
// its own live spec — same columns, same aggregate columns, same bins —
// over the new row order, and every other cache retires through
// InvalidateTable (which also resets the table's workload statistics,
// so the new layout re-earns its evidence).
func (e *Engine) swapLayout(name string, nt *data.Table) {
	g := e.grid(name)
	e.cat.Replace(nt)
	e.InvalidateTable(name)
	if g == nil {
		return
	}
	if g.HasAggs() {
		_ = e.BuildGridAggIndex(name, g.Columns(), g.AggColumns(), g.Bins(0))
	} else {
		_ = e.BuildGridIndex(name, g.Columns(), g.Bins(0))
	}
}
