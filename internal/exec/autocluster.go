package exec

import (
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"

	"acquire/internal/data"
)

// This file is the workload-adaptive auto-clustering subsystem: the
// engine learns which columns the workload actually ranges over and
// re-lays fact tables out around the winners so zone maps engage
// without anyone passing -cluster. Refinement workloads concentrate
// their ranging on a small, stable set of dimension columns (the search
// widens the same predicates over and over), which is what makes a
// learned layout converge quickly and stay put.
//
// Mechanics: vscanTable feeds per-column touch counters and a *marginal*
// selectivity EWMA into workloadStats on every scan while auto-
// clustering is enabled (the sorted indexes already compute each driving
// interval's exact row count during access-path selection, so the
// marginals are free). maybeAutoCluster — invoked at the end of each
// AggregateBatch, i.e. between batches, never mid-query — scores the
// columns of each scanned table and, when the projected benefit crosses
// the policy thresholds, rewrites the table: a single-column sort
// (data.SortedBy) when one column dominates, or a two-column Z-order
// interleave (data.ZOrderBy) when two range columns both carry weight
// and the cost model projects more blocks skipped from pruning on both
// axes than from perfect clustering on either one. The rewrite swaps
// into the catalog and rebuilds the table's grid index from the live
// grid's own spec; derived state (column vectors, sorted indexes, zone
// maps, region cache) retires through the table-identity cache scheme
// plus InvalidateTable. The workload statistics survive the swap as a
// decayed prior (see swapLayout), so an unchanged winner does not
// re-earn its evidence from zero after every layout action.
//
// Scheduling: a layout rewrite is a stop-the-world O(n log n) moment
// for the table. When other batches are in flight (Engine.pendingBatches
// > 0), the sweep defers the action — counted in DeferredResorts — and
// the last batch of the storm performs it on the way out. Deferring
// never loses the decision (the statistics that justified it only
// accumulate) and keeps a batch storm from stalling behind a rewrite
// it could amortize after draining.
//
// Caveat (documented, deliberate): a re-sort changes physical row ids,
// so ViolationScan/Materialize row numbers refer to the re-clustered
// layout. Values, violations and aggregates are unchanged — for SUM
// bit-identity the batch that triggers a re-sort still computes on the
// layout it bound, and only later batches see the new one.

// AutoClusterPolicy holds the thresholds of the clustering decision.
type AutoClusterPolicy struct {
	// MinScans is the minimum touch count a column needs before it can
	// be elected — the evidence bar against clustering on a transient
	// probe.
	MinScans int64
	// MaxSelectivity is the highest *marginal* selectivity EWMA (rows
	// admitted by that column's own driving interval / table rows) at
	// which the column is still a useful clustering axis: a column whose
	// predicates admit nearly the whole table leaves nothing for zone
	// maps to skip no matter the layout.
	MaxSelectivity float64
	// MinRows exempts tiny tables — a re-sort of a table that fits in
	// a handful of blocks can never recoup its cost.
	MinRows int
	// Hysteresis is the factor by which a challenger layout's projected
	// score must exceed the incumbent layout's (both scored on current
	// statistics) before the table is rewritten away from it, damping
	// flip-flop under mixed workloads.
	Hysteresis float64
	// TailFraction triggers a tail merge when the unsorted append tail
	// exceeds this fraction of the table (a tail of at least one block
	// always qualifies).
	TailFraction float64
	// ZOrder admits two-column Z-order layouts into the election
	// (Engine.SetZOrder is the runtime equivalent; either enables).
	ZOrder bool
	// ZOrderBits is the per-axis rank resolution passed to data.ZOrderBy
	// (0 uses its default).
	ZOrderBits int
	// ZOrderMargin is the factor by which the Z-order candidate's
	// projected score must beat the best single-column score before the
	// curve layout is chosen: interleaving dilutes each axis's run
	// length, so it must not win ties.
	ZOrderMargin float64
	// PaybackScans is the horizon (in future scans) over which a layout
	// *switch* must recoup one full-scan's worth of extra blocks
	// skipped: (candidate skip fraction - incumbent skip fraction) *
	// PaybackScans >= 1. Initial elections from an unclustered layout
	// are exempt — any skipping beats none.
	PaybackScans float64
}

// DefaultAutoClusterPolicy is the policy engines start with.
// MaxSelectivity is calibrated against the fig. 8 refinement batch: its
// widening prefix regions drag each column's *marginal* EWMA up to
// ~0.93 (three dimensions sharing a joint selectivity of ~0.81) even
// though explicit clustering still wins ~1.3x there, so the gate sits
// above that with room while still rejecting admit-everything columns.
var DefaultAutoClusterPolicy = AutoClusterPolicy{
	MinScans:       24,
	MaxSelectivity: 0.97,
	MinRows:        4 * blockRows,
	Hysteresis:     2,
	TailFraction:   0.05,
	ZOrderMargin:   1.1,
	PaybackScans:   16,
}

// workloadStats collects per-table, per-column range-predicate touch
// counters and marginal-selectivity EWMAs. The mutex is uncontended in
// practice: observe is called once per table scan (not per block or
// row), and only while auto-clustering is enabled.
type workloadStats struct {
	mu     sync.Mutex
	tables map[string]*tableWorkload
}

type tableWorkload struct {
	scans int64
	cols  map[int]*colWorkload // column ordinal -> stats
}

type colWorkload struct {
	touches int64
	ewma    float64 // marginal selectivity EWMA in [0,1]; seeded on first touch
	seeded  bool
}

// ewmaAlpha weights the newest scan's selectivity; 0.2 smooths over
// roughly the last ten scans.
const ewmaAlpha = 0.2

// observe records one table scan: every driving range predicate
// touches its column, and that drive's own marginal selectivity (rows
// its interval admits / table rows, from the sorted index) updates the
// column's EWMA. Marginal — not joint — attribution is what lets the
// Z-order cost model reason about each axis separately: under a
// conjunctive two-column workload the joint selectivity says both
// columns look great, while the marginals reveal which column's
// interval actually narrows the table.
func (w *workloadStats) observe(table string, n int, drives []scanDrive, margs []int) {
	if n == 0 || len(drives) == 0 || len(margs) != len(drives) {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tables == nil {
		w.tables = make(map[string]*tableWorkload)
	}
	tw := w.tables[table]
	if tw == nil {
		tw = &tableWorkload{cols: make(map[int]*colWorkload)}
		w.tables[table] = tw
	}
	tw.scans++
	for i, d := range drives {
		sel := float64(margs[i]) / float64(n)
		cw := tw.cols[d.ord]
		if cw == nil {
			cw = &colWorkload{}
			tw.cols[d.ord] = cw
		}
		cw.touches++
		if !cw.seeded {
			cw.ewma, cw.seeded = sel, true
		} else {
			cw.ewma += ewmaAlpha * (sel - cw.ewma)
		}
	}
}

// forget drops a table's collected statistics (InvalidateTable hook):
// a replaced table re-learns its clustering column from fresh traffic.
func (w *workloadStats) forget(table string) {
	w.mu.Lock()
	delete(w.tables, table)
	w.mu.Unlock()
}

// decayedCopy returns a decayed deep copy of one table's statistics
// (touch and scan counts scaled by factor, EWMAs kept — the selectivity
// estimate stays valid across a layout change, only the evidence weight
// ages), or nil when the table has none.
func (w *workloadStats) decayedCopy(table string, factor float64) *tableWorkload {
	w.mu.Lock()
	defer w.mu.Unlock()
	tw := w.tables[table]
	if tw == nil {
		return nil
	}
	out := &tableWorkload{
		scans: int64(float64(tw.scans) * factor),
		cols:  make(map[int]*colWorkload, len(tw.cols)),
	}
	for ord, cw := range tw.cols {
		out.cols[ord] = &colWorkload{
			touches: int64(float64(cw.touches) * factor),
			ewma:    cw.ewma,
			seeded:  cw.seeded,
		}
	}
	return out
}

// restore installs a saved prior for a table unless fresh statistics
// already exist (scans observed between the save and the restore win).
func (w *workloadStats) restore(table string, tw *tableWorkload) {
	if tw == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tables == nil {
		w.tables = make(map[string]*tableWorkload)
	}
	if _, ok := w.tables[table]; !ok {
		w.tables[table] = tw
	}
}

// snapshot returns the touched table names and a copy of one table's
// per-column stats, so the sweep can score without holding the lock
// across catalog operations.
func (w *workloadStats) snapshot() map[string]map[int]colWorkload {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]map[int]colWorkload, len(w.tables))
	for name, tw := range w.tables {
		cols := make(map[int]colWorkload, len(tw.cols))
		for ord, cw := range tw.cols {
			cols[ord] = *cw
		}
		out[name] = cols
	}
	return out
}

// SetAutoCluster enables or disables workload-adaptive clustering:
// scans feed per-column statistics and each AggregateBatch ends with a
// clustering sweep. Disabling stops collection and sweeps; already
// re-sorted tables keep their layout.
func (e *Engine) SetAutoCluster(on bool) { e.autoCluster.Store(on) }

// AutoClusterOn reports whether workload-adaptive clustering is active.
func (e *Engine) AutoClusterOn() bool { return e.autoCluster.Load() }

// clusterPolicy returns the engine's policy, defaulting when unset.
func (e *Engine) clusterPolicy() AutoClusterPolicy {
	p := e.ClusterPolicy
	if p.MinScans == 0 {
		p.MinScans = DefaultAutoClusterPolicy.MinScans
	}
	if p.MaxSelectivity == 0 {
		p.MaxSelectivity = DefaultAutoClusterPolicy.MaxSelectivity
	}
	if p.MinRows == 0 {
		p.MinRows = DefaultAutoClusterPolicy.MinRows
	}
	if p.Hysteresis == 0 {
		p.Hysteresis = DefaultAutoClusterPolicy.Hysteresis
	}
	if p.TailFraction == 0 {
		p.TailFraction = DefaultAutoClusterPolicy.TailFraction
	}
	if p.ZOrderMargin == 0 {
		p.ZOrderMargin = DefaultAutoClusterPolicy.ZOrderMargin
	}
	if p.PaybackScans == 0 {
		p.PaybackScans = DefaultAutoClusterPolicy.PaybackScans
	}
	return p
}

// maybeAutoCluster is the between-batches sweep: for every table the
// workload has scanned, merge an overgrown append tail back into the
// sorted run, and elect/re-elect a layout when the policy thresholds
// are met. The sweep mutex serializes layout rewrites; a batch running
// concurrently on another goroutine keeps computing on the *Table
// pointers it bound (the old layout stays intact), and its derived-
// state lookups against the new table miss by identity and rebuild.
// While other batches are still in flight, layout actions are deferred
// (DeferredResorts) rather than taken — the scheduler's backpressure
// rule.
func (e *Engine) maybeAutoCluster() {
	if !e.autoCluster.Load() {
		return
	}
	snap := e.wstats.snapshot()
	if len(snap) == 0 {
		return
	}
	busy := e.pendingBatches.Load() > 0
	e.sweepMu.Lock()
	defer e.sweepMu.Unlock()
	pol := e.clusterPolicy()
	pol.ZOrder = pol.ZOrder || e.zorder.Load()
	for name, cols := range snap {
		e.sweepTable(name, cols, pol, busy)
	}
}

// layoutCand is one scored layout proposal: the column set (one name
// for a plain sort, two for a Z-order interleave), the cost-model score
// (projected touch-weighted pruning benefit), and the projected
// skipped-block fraction on a typical driving scan (the payback-gate
// currency).
type layoutCand struct {
	cols  []string
	score float64
	skip  float64
	z     bool
}

// zorderInflate is the cost model's boundary-overhead factor for the
// curve layout: a Z-order block covers a rank-space rectangle, so a
// conjunctive two-axis query visits roughly the product selectivity
// worth of blocks *plus* a boundary ring — modeled as visiting
// zorderInflate * sa * sb of the table.
const zorderInflate = 1.5

// zaxis is the projected skipped-block fraction of a *single-axis*
// query against a Z-order layout: an axis-aligned slab of marginal
// selectivity s intersects about sqrt-of-s of the curve's blocks per
// recursion level, so 1-sqrt(s) of blocks are skippable — much weaker
// than the 1-s a dedicated single-column sort would give, which is
// exactly the trade the election weighs.
func zaxis(s float64) float64 {
	if s < 0 {
		s = 0
	}
	if v := 1 - math.Sqrt(s); v > 0 {
		return v
	}
	return 0
}

// zorderScore projects the benefit of interleaving two columns with
// touch counts ta/tb and marginal-selectivity EWMAs sa/sb. Scans that
// drive both columns (about min(ta,tb) of them — refinement batches
// range all their dimensions together) prune on both axes at once;
// the remainder of each column's touches prune single-axis at the
// diluted zaxis rate. skipBoth is the both-axes skipped fraction, the
// candidate's payback currency.
func zorderScore(ta, tb int64, sa, sb float64) (score, skipBoth float64) {
	skipBoth = 1 - math.Min(1, zorderInflate*sa*sb)
	if skipBoth < 0 {
		skipBoth = 0
	}
	m := math.Min(float64(ta), float64(tb))
	score = m*skipBoth + (float64(ta)-m)*zaxis(sa) + (float64(tb)-m)*zaxis(sb)
	return score, skipBoth
}

// electLayout scores the eligible layouts of one table against the
// collected statistics and returns the winner: the best single column
// by touches * (1 - marginal EWMA), or — when Z-order is admitted and
// two columns clear the evidence bars — the interleave of the top two,
// if its projected score beats the best single by the policy margin.
func (e *Engine) electLayout(t *data.Table, cols map[int]colWorkload, pol AutoClusterPolicy) (layoutCand, bool) {
	type single struct {
		ord     int
		touches int64
		sel     float64
		score   float64
	}
	var singles []single
	for ord, cw := range cols {
		if cw.touches < pol.MinScans || cw.ewma > pol.MaxSelectivity {
			continue
		}
		if ord < 0 || ord >= t.Schema().Len() {
			continue
		}
		singles = append(singles, single{ord, cw.touches, cw.ewma, float64(cw.touches) * (1 - cw.ewma)})
	}
	if len(singles) == 0 {
		return layoutCand{}, false
	}
	// Deterministic election: score descending, ordinal ascending.
	sort.Slice(singles, func(i, j int) bool {
		if singles[i].score != singles[j].score {
			return singles[i].score > singles[j].score
		}
		return singles[i].ord < singles[j].ord
	})
	best := singles[0]
	cand := layoutCand{
		cols:  []string{t.Schema().Columns[best.ord].Name},
		score: best.score,
		skip:  1 - best.sel,
	}
	if pol.ZOrder && len(singles) >= 2 {
		a, b := singles[0], singles[1]
		zs, zskip := zorderScore(a.touches, b.touches, a.sel, b.sel)
		if zs > pol.ZOrderMargin*best.score {
			oa, ob := a.ord, b.ord
			if ob < oa {
				oa, ob = ob, oa
			}
			cand = layoutCand{
				cols:  []string{t.Schema().Columns[oa].Name, t.Schema().Columns[ob].Name},
				score: zs,
				skip:  zskip,
				z:     true,
			}
		}
	}
	return cand, true
}

// scoreIncumbent scores the table's current layout under the same cost
// model and current statistics, so challenger and incumbent compare in
// one currency. Columns without fresh statistics score as admitting
// everything (selectivity 1): an incumbent the workload no longer
// ranges over defends nothing.
func (e *Engine) scoreIncumbent(t *data.Table, curCols []string, cols map[int]colWorkload) layoutCand {
	statFor := func(name string) (int64, float64) {
		ord := t.Schema().Ordinal(name)
		if cw, ok := cols[ord]; ok && cw.seeded {
			return cw.touches, cw.ewma
		}
		return 0, 1
	}
	if len(curCols) == 1 {
		touches, sel := statFor(curCols[0])
		return layoutCand{cols: curCols, score: float64(touches) * (1 - sel), skip: 1 - sel}
	}
	ta, sa := statFor(curCols[0])
	tb, sb := statFor(curCols[1])
	score, skip := zorderScore(ta, tb, sa, sb)
	return layoutCand{cols: curCols, score: score, skip: skip, z: true}
}

// sameLayout reports order- and case-insensitive equality of two
// clustering column sets. Order-insensitive on purpose: Z(a,b) and
// Z(b,a) lay rows out differently but prune identically under the cost
// model, so flipping between them would be pure churn.
func sameLayout(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if strings.EqualFold(x, y) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (e *Engine) sweepTable(name string, cols map[int]colWorkload, pol AutoClusterPolicy, busy bool) {
	t, err := e.cat.Table(name)
	if err != nil || t.NumRows() < pol.MinRows {
		return
	}

	// Tail maintenance: a clustered table whose unsorted append tail
	// has reached a block (or the policy fraction) gets the tail
	// merged back into the sorted run — deferred while a batch storm
	// is in flight.
	curCols, _ := t.ClusterSpec()
	if tail := t.ClusterTail(); len(curCols) > 0 && tail > 0 &&
		(tail >= blockRows || float64(tail) >= pol.TailFraction*float64(t.NumRows())) {
		if busy {
			e.countDeferredResorts(1)
			return
		}
		merged, err := data.MergeClusteredTail(t)
		if err == nil && merged != t {
			e.swapLayout(name, merged)
			e.countTailMerges(1)
			if eo := e.obsState.Load(); eo != nil && eo.o.LogEnabled(slog.LevelDebug) {
				eo.o.Debug("engine.autocluster.tail_merge", "table", name, "tail", tail)
			}
			t = merged
		}
	}

	// Election: best projected layout under the cost model.
	cand, ok := e.electLayout(t, cols, pol)
	if !ok || sameLayout(cand.cols, curCols) {
		return
	}
	if len(curCols) > 0 {
		// Switching away from an incumbent layout needs hysteresis-
		// scaled evidence plus a payback check: the extra blocks the
		// challenger would skip per scan must recoup one full scan
		// within the policy horizon. Initial elections are exempt —
		// any skipping beats an unclustered layout.
		inc := e.scoreIncumbent(t, curCols, cols)
		if cand.score < pol.Hysteresis*inc.score {
			return
		}
		if (cand.skip-inc.skip)*pol.PaybackScans < 1 {
			return
		}
	}
	if busy {
		e.countDeferredResorts(1)
		return
	}

	var next *data.Table
	if cand.z {
		next, err = data.ZOrderBy(t, cand.cols, pol.ZOrderBits)
	} else {
		next, err = data.SortedBy(t, cand.cols[0])
	}
	if err != nil {
		return // non-numeric or vanished column; nothing to do
	}
	e.swapLayout(name, next)
	e.countResorts(1)
	if cand.z {
		e.countZOrderResorts(1)
	}
	if eo := e.obsState.Load(); eo != nil && eo.o.LogEnabled(slog.LevelDebug) {
		eo.o.Debug("engine.autocluster.resort", "table", name,
			"columns", strings.Join(cand.cols, ","), "zorder", cand.z,
			"rows", next.NumRows())
	}
}

// swapLayout replaces a table's physical layout in the catalog and
// re-derives dependent state: the grid index (if any) is rebuilt from
// its own live spec — same columns, same aggregate columns, same bins —
// over the new row order, and every other cache retires through
// InvalidateTable. The workload statistics survive the swap as a
// half-weight prior (EWMAs intact, evidence counts halved): the scans
// that justified the layout stay on the record, so an unchanged winner
// is not re-learned from zero, while the decay still lets a workload
// shift re-elect reasonably fast.
func (e *Engine) swapLayout(name string, nt *data.Table) {
	key := strings.ToLower(name)
	prior := e.wstats.decayedCopy(key, 0.5)
	g := e.grid(name)
	e.cat.Replace(nt)
	e.InvalidateTable(name)
	e.wstats.restore(key, prior)
	if g == nil {
		return
	}
	if g.HasAggs() {
		_ = e.BuildGridAggIndex(name, g.Columns(), g.AggColumns(), g.Bins(0))
	} else {
		_ = e.BuildGridIndex(name, g.Columns(), g.Bins(0))
	}
}
