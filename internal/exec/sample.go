package exec

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/relq"
)

// Sampled is a sampling evaluation layer (§3: the evaluation layer
// "can be replaced with other techniques such as estimation, and/or
// sampling"): it executes queries exactly over a Bernoulli row sample
// of every table and extrapolates the extensive aggregates.
//
// COUNT and SUM (and additive UDA summaries) scale by the inverse
// sampling fraction; MIN/MAX/AVG are reported from the sample
// unscaled (they are intensive — sampling only adds noise). For join
// queries each side is sampled independently, so joint-inclusion
// probability is fraction^k for a k-table join; extrapolation uses
// that joint factor.
type Sampled struct {
	*Engine
	full     *data.Catalog
	fraction float64
}

// NewSampled builds a sampling evaluator over the catalog with the
// given per-row inclusion probability (0 < fraction <= 1) and seed.
func NewSampled(full *data.Catalog, fraction float64, seed int64) (*Sampled, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("exec: sampling fraction must be in (0, 1], got %v", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	sampleCat := data.NewCatalog()
	for _, name := range full.Names() {
		t, err := full.Table(name)
		if err != nil {
			return nil, err
		}
		st := data.NewTable(t.Name(), t.Schema())
		row := make([]data.Value, t.Schema().Len())
		for r := 0; r < t.NumRows(); r++ {
			if rng.Float64() >= fraction {
				continue
			}
			for c := range row {
				row[c] = t.ValueAt(r, c)
			}
			if err := st.AppendRow(row...); err != nil {
				return nil, err
			}
		}
		if st.NumRows() == 0 {
			return nil, fmt.Errorf("exec: sample of table %s is empty; raise the fraction", name)
		}
		if err := sampleCat.Register(st); err != nil {
			return nil, err
		}
	}
	return &Sampled{Engine: New(sampleCat), full: full, fraction: fraction}, nil
}

// Fraction returns the per-row inclusion probability.
func (s *Sampled) Fraction() float64 { return s.fraction }

// FullCatalog returns the unsampled catalog the sample was drawn from.
func (s *Sampled) FullCatalog() *data.Catalog { return s.full }

// extrapolate scales the extensive aggregates of a sample partial by
// the inverse joint inclusion probability across independently sampled
// tables. With an observer attached, each extrapolation is counted and
// (at debug level) logged with its scale factor.
func (s *Sampled) extrapolate(p *agg.Partial, q *relq.Query) {
	joint := math.Pow(s.fraction, float64(len(q.Tables)))
	scale := 1 / joint
	sampleCount := p.Count
	p.Count = int64(math.Round(float64(p.Count) * scale))
	p.Sum *= scale
	p.User *= scale
	if o := s.Engine.Observer(); o != nil {
		o.Counter("acquire_sample_extrapolations_total",
			"Aggregates extrapolated from a Bernoulli sample (§3 sampling evaluation layer).").Inc()
		if o.LogEnabled(slog.LevelDebug) {
			o.Debug("engine.extrapolate", "scale", scale,
				"sample_count", sampleCount, "count", p.Count)
		}
	}
}

// Aggregate executes over the sample and extrapolates.
func (s *Sampled) Aggregate(q *relq.Query, region relq.Region) (agg.Partial, error) {
	p, err := s.Engine.Aggregate(q, region)
	if err != nil {
		return agg.Zero(), err
	}
	s.extrapolate(&p, q)
	return p, nil
}

// AggregateBatch executes the batch over the sample and extrapolates
// every partial. It must shadow the embedded Engine's method — the
// embedded form would return raw sample counts.
func (s *Sampled) AggregateBatch(ctx context.Context, q *relq.Query, regions []relq.Region) ([]agg.Partial, error) {
	parts, err := s.Engine.AggregateBatch(ctx, q, regions)
	if err != nil {
		return nil, err
	}
	for i := range parts {
		s.extrapolate(&parts[i], q)
	}
	return parts, nil
}
