package exec

import (
	"log/slog"
	"math"
	"strings"

	"acquire/internal/agg"
	"acquire/internal/index"
	"acquire/internal/relq"
)

// boxConstraint is one select dimension's contribution to the box walk:
// the violation interval it must satisfy, the grid dimension its column
// occupies, and the driving value interval the region admits on it.
type boxConstraint struct {
	dim      *relq.Dimension
	vec      []float64
	di       int // query-dimension index (violation vector slot)
	ord      int // column ordinal in the table (zone-map key)
	pos      int // grid dimension
	iv       relq.ViolInterval
	val      index.Interval // admitted value interval (conservative)
	interior []bool         // per bin offset (binLo..binHi on pos): all rows qualify
}

// boxAggregate answers an eligible single-table region query from an
// aggregate-augmented grid: the region's value box is decomposed into
// interior cells — every row provably qualifies, answered by merging
// the stored per-cell partials with zero row touches (§2.6 OSP) — and
// boundary cells, answered by scanning only their posting lists.
//
// ok=false means the query is not eligible (joins, UDAs, fixed
// predicates, split SelectEQ bands, unindexed dimensions) and the
// caller must run the scan path. The decomposition is conservative:
// a cell is interior only when the padded bin spans prove every
// resident row's violation vector inside the region, so boundary rows
// get the exact per-row check of the scan path and results agree.
func (e *Engine) boxAggregate(b *binding, region relq.Region, eo *engineObs) (agg.Partial, bool, error) {
	if len(b.tables) != 1 || len(b.joinDims) != 0 || len(b.equiJoins) != 0 ||
		len(b.ranges[0]) != 0 || len(b.strFlts[0]) != 0 || b.spec.Func == relq.AggUser {
		return agg.Zero(), false, nil
	}
	g := e.grid(b.q.Tables[0])
	if g == nil || !g.HasAggs() {
		return agg.Zero(), false, nil
	}
	aggIdx := -1
	if b.aggTbl >= 0 {
		if aggIdx = g.AggIndex(b.q.Constraint.Attr.Column); aggIdx < 0 {
			return agg.Zero(), false, nil
		}
	}
	gridCols := g.Columns()
	colPos := make(map[string]int, len(gridCols))
	for i, c := range gridCols {
		colPos[strings.ToLower(c)] = i
	}

	cons := make([]boxConstraint, 0, len(b.selDims))
	for i := range b.selDims {
		sd := &b.selDims[i]
		pos, ok := colPos[strings.ToLower(sd.dim.Col.Column)]
		if !ok {
			return agg.Zero(), false, nil // dimension not indexed
		}
		ivs := valueIntervals(sd.dim, region[sd.di])
		switch len(ivs) {
		case 0:
			return agg.Zero(), true, nil // dimension admits nothing
		case 1:
		default:
			// Split SelectEQ band: two disjoint boxes would need
			// double-count bookkeeping; the scan path handles it.
			return agg.Zero(), false, nil
		}
		cons = append(cons, boxConstraint{
			dim: sd.dim, vec: sd.vec, di: sd.di, ord: sd.ord, pos: pos,
			iv: region[sd.di], val: ivs[0],
		})
	}

	// Bin box: per grid dimension, the full bin range intersected with
	// every constraint's driving interval (padded so float rounding at
	// an interval edge can only widen the box, never lose a row).
	los := make([]int, len(gridCols))
	his := make([]int, len(gridCols))
	for d := range gridCols {
		los[d], his[d] = 0, g.Bins(d)-1
	}
	for i := range cons {
		lo, hi := cons[i].val.Lo, cons[i].val.Hi
		// Pad from the finite endpoints only: an infinite side must not
		// poison the pad (Abs(±Inf) = +Inf would blow the finite side to
		// ±Inf and degenerate the box to the whole grid).
		pad := 1e-9
		if !math.IsInf(lo, -1) {
			pad += 1e-9 * math.Abs(lo)
		}
		if !math.IsInf(hi, 1) {
			pad += 1e-9 * math.Abs(hi)
		}
		if !math.IsInf(lo, -1) {
			lo -= pad
		}
		if !math.IsInf(hi, 1) {
			hi += pad
		}
		bl, bh, ok := g.BinRange(cons[i].pos, lo, hi)
		if !ok {
			return agg.Zero(), true, nil // interval misses the domain
		}
		if bl > los[cons[i].pos] {
			los[cons[i].pos] = bl
		}
		if bh < his[cons[i].pos] {
			his[cons[i].pos] = bh
		}
		if los[cons[i].pos] > his[cons[i].pos] {
			return agg.Zero(), true, nil
		}
	}

	// Per-constraint interior flags, one per bin in the box along the
	// constraint's dimension: true when the padded bin span proves every
	// resident value's violation inside (iv.Lo, iv.Hi]. Violation is
	// monotone on each side of the bound for every select kind, so the
	// span's extremes are attained at its endpoints (plus the bound
	// itself for the V-shaped SelectEQ).
	for i := range cons {
		c := &cons[i]
		c.interior = make([]bool, his[c.pos]-los[c.pos]+1)
		for bin := los[c.pos]; bin <= his[c.pos]; bin++ {
			sLo, sHi := g.BinSpan(c.pos, bin)
			vLo, vHi := c.dim.Violation(sLo), c.dim.Violation(sHi)
			minV, maxV := math.Min(vLo, vHi), math.Max(vLo, vHi)
			if c.dim.Kind == relq.SelectEQ && sLo <= c.dim.Bound && c.dim.Bound <= sHi {
				minV = 0
			}
			c.interior[bin-los[c.pos]] = minV > c.iv.Lo && maxV <= c.iv.Hi
		}
	}

	// Zone predicates for boundary-cell posting runs: the same
	// pruneInterval hulls the full scan uses, keyed by each constraint's
	// column. Posting lists are ascending, so a cell's rows group into
	// per-physical-block runs (Grid.PostingRuns) and a run whose block
	// provably misses a hull is dropped without gathering a single row —
	// sound here because the per-row keep test enforces both interval
	// sides (v > iv.Lo && v <= iv.Hi), so every skipped row is one the
	// filter would have rejected anyway. Only the vectorized branch
	// consults them; the legacy per-row loop stays byte-for-byte put.
	vecPath := !e.legacyScan.Load() && len(cons) == len(b.q.Dims)
	var zps []zonePred
	if vecPath {
		for i := range cons {
			zlo, zhi := pruneInterval(cons[i].dim, cons[i].iv)
			if math.IsInf(zlo, -1) && math.IsInf(zhi, 1) {
				continue
			}
			zm := e.zoneMapFor(b.tables[0], cons[i].ord, cons[i].vec)
			zps = append(zps, zonePred{zm: zm, lo: zlo, hi: zhi})
		}
	}

	// Walk the box in odometer order (deterministic): interior cells
	// merge the stored partial; boundary cells scan their posting list
	// with the exact per-row region check of the scan path.
	out := agg.Zero()
	var cellsMerged, boundaryRows, runsSkipped int64
	viol := make([]float64, len(b.q.Dims))
	cur := make([]int, len(gridCols))
	copy(cur, los)
	for {
		cell := 0
		for d, c := range cur {
			cell += c * g.Stride(d)
		}
		if cnt := g.CellCount(cell); cnt > 0 {
			interior := true
			for i := range cons {
				if !cons[i].interior[cur[cons[i].pos]-los[cons[i].pos]] {
					interior = false
					break
				}
			}
			if interior {
				if aggIdx < 0 {
					// COUNT(*): every row steps 1.0, so the cell's fold is
					// exactly {cnt, cnt, 1, 1} — integer sums are exact.
					out = agg.Merge(out, agg.Partial{Count: cnt, Sum: float64(cnt), Min: 1, Max: 1})
				} else {
					sum, mn, mx := g.CellAgg(aggIdx, cell)
					out = agg.Merge(out, agg.Partial{Count: cnt, Sum: sum, Min: mn, Max: mx})
				}
				cellsMerged++
			} else if vecPath {
				visited, skipped := boundaryCellVec(b, cons, zps, g, cell, &out)
				boundaryRows += visited
				runsSkipped += skipped
			} else {
				rows := g.PostingList(cell)
				boundaryRows += int64(len(rows))
				for _, r := range rows {
					for i := range cons {
						viol[cons[i].di] = cons[i].dim.Violation(cons[i].vec[r])
					}
					if !region.Contains(viol) {
						continue
					}
					v := 1.0
					if b.aggTbl >= 0 {
						v = b.aggVec[r]
					}
					b.spec.StepValue(&out, v)
				}
			}
		}
		d := len(cur) - 1
		for d >= 0 {
			cur[d]++
			if cur[d] <= his[d] {
				break
			}
			cur[d] = los[d]
			d--
		}
		if d < 0 {
			break
		}
	}

	// RowsScanned/boundary_rows count only rows actually gathered; runs
	// dropped by zone predicates surface as skipped blocks, mirroring
	// the full-scan path's accounting.
	e.countRows(boundaryRows)
	e.countBoundaryRows(boundaryRows)
	e.countBlocks(0, runsSkipped)
	e.countCellsMerged(cellsMerged)
	if eo != nil && eo.o.LogEnabled(slog.LevelDebug) {
		eo.o.Debug("engine.boxagg", "table", b.q.Tables[0],
			"cells_merged", cellsMerged, "boundary_rows", boundaryRows,
			"boundary_runs_skipped", runsSkipped)
	}
	return out, true, nil
}

// boundaryCellVec folds one boundary cell's posting list block-style:
// the ascending list is cut into per-physical-block runs, runs whose
// block a zone predicate proves empty of qualifying rows are dropped
// whole (each counted as one skipped block), and surviving runs compact
// a selection vector one constraint at a time — keeping rows with
// Violation in (iv.Lo, iv.Hi], exactly the per-dimension test
// region.Contains performs, and cons covers every query dimension for
// eligible queries. Skipped rows are rows that test would have rejected,
// so survivors step the aggregate in posting-list order — the same
// StepValue sequence as the legacy per-row loop, bit for bit.
func boundaryCellVec(b *binding, cons []boxConstraint, zps []zonePred, g *index.Grid, cell int, out *agg.Partial) (visited, skipped int64) {
	var buf [blockRows]int32
	g.PostingRuns(cell, blockRows, func(bi int, rows []int32) {
		if blockSkippable(zps, bi) {
			skipped++
			return
		}
		visited += int64(len(rows))
		// A run never crosses a block, so it fits the block buffer.
		sel := buf[:len(rows)]
		copy(sel, rows)
		for i := range cons {
			if len(sel) == 0 {
				break
			}
			c := &cons[i]
			k := 0
			for _, r := range sel {
				v := c.dim.Violation(c.vec[r])
				sel[k] = r
				k += b2i(v > c.iv.Lo && v <= c.iv.Hi)
			}
			sel = sel[:k]
		}
		if b.aggTbl >= 0 {
			for _, r := range sel {
				b.spec.StepValue(out, b.aggVec[r])
			}
		} else {
			for range sel {
				b.spec.StepValue(out, 1.0)
			}
		}
	})
	return visited, skipped
}
