package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"acquire/internal/agg"
)

// parallelThreshold is the work size below which fan-out costs more
// than it saves.
const parallelThreshold = 65536

// workers returns the engine's worker count (Parallelism, defaulting
// to GOMAXPROCS, floored at 1).
func (e *Engine) workers() int {
	w := e.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetParallelism bounds the worker pool (the method form of the
// Parallelism field, shared with ShardedEvaluator through the
// Evaluator interface). 0 restores GOMAXPROCS.
func (e *Engine) SetParallelism(workers int) { e.Parallelism = workers }

// chunks splits [0, n) into at most k near-equal contiguous ranges.
func chunks(n, k int) [][2]int {
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// parallelFilter applies verify to every index in [0, n), returning
// the passing indexes in order. Chunks are processed concurrently and
// concatenated in chunk order, so the result is identical to the
// sequential scan.
func (e *Engine) parallelFilter(n int, verify func(r int32) bool) []int32 {
	w := e.workers()
	if w == 1 || n < parallelThreshold {
		out := make([]int32, 0, 64)
		for r := 0; r < n; r++ {
			if verify(int32(r)) {
				out = append(out, int32(r))
			}
		}
		return out
	}
	parts := chunks(n, w)
	results := make([][]int32, len(parts))
	var wg sync.WaitGroup
	for ci, c := range parts {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			local := make([]int32, 0, (hi-lo)/8+8)
			for r := lo; r < hi; r++ {
				if verify(int32(r)) {
					local = append(local, int32(r))
				}
			}
			results[ci] = local
		}(ci, c[0], c[1])
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]int32, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// parallelFilterRows is parallelFilter over an explicit candidate list.
func (e *Engine) parallelFilterRows(cands []int32, verify func(r int32) bool) []int32 {
	w := e.workers()
	if w == 1 || len(cands) < parallelThreshold {
		out := make([]int32, 0, 64)
		for _, r := range cands {
			if verify(r) {
				out = append(out, r)
			}
		}
		return out
	}
	parts := chunks(len(cands), w)
	results := make([][]int32, len(parts))
	var wg sync.WaitGroup
	for ci, c := range parts {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			local := make([]int32, 0, (hi-lo)/8+8)
			for _, r := range cands[lo:hi] {
				if verify(r) {
					local = append(local, r)
				}
			}
			results[ci] = local
		}(ci, c[0], c[1])
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]int32, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// foldChunk is the fixed chunk length of parallelFold. It is a
// constant (not a function of worker count) so the merge tree — and
// therefore the float association of SUM/AVG — depends only on the
// input size, making fold results bit-identical across worker counts.
const foldChunk = parallelThreshold / 2

// fixedChunks splits [0, n) into contiguous ranges of length size
// (the last may be shorter).
func fixedChunks(n, size int) [][2]int {
	out := make([][2]int, 0, n/size+1)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// parallelFold folds chunk aggregates of [0, ntup) and merges them in
// chunk order. Chunk boundaries are a function of ntup alone and the
// merge order is fixed, so the result is deterministic: identical for
// every worker count and scheduling (results differ from a strictly
// sequential fold only by a fixed, chunk-shaped association of
// additions).
func (e *Engine) parallelFold(ntup int, fold func(lo, hi int) agg.Partial) agg.Partial {
	if ntup < parallelThreshold {
		return fold(0, ntup)
	}
	parts := fixedChunks(ntup, foldChunk)
	partials := make([]agg.Partial, len(parts))
	w := e.workers()
	if w > len(parts) {
		w = len(parts)
	}
	if w == 1 {
		for ci, c := range parts {
			partials[ci] = fold(c[0], c[1])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= len(parts) {
						return
					}
					partials[ci] = fold(parts[ci][0], parts[ci][1])
				}
			}()
		}
		wg.Wait()
	}
	out := agg.Zero()
	for _, p := range partials {
		out = agg.Merge(out, p)
	}
	return out
}
