package exec

import (
	"runtime"
	"sync"

	"acquire/internal/agg"
)

// parallelThreshold is the work size below which fan-out costs more
// than it saves.
const parallelThreshold = 65536

// workers returns the engine's worker count (Parallelism, defaulting
// to GOMAXPROCS, floored at 1).
func (e *Engine) workers() int {
	w := e.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunks splits [0, n) into at most k near-equal contiguous ranges.
func chunks(n, k int) [][2]int {
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// parallelFilter applies verify to every index in [0, n), returning
// the passing indexes in order. Chunks are processed concurrently and
// concatenated in chunk order, so the result is identical to the
// sequential scan.
func (e *Engine) parallelFilter(n int, verify func(r int32) bool) []int32 {
	w := e.workers()
	if w == 1 || n < parallelThreshold {
		out := make([]int32, 0, 64)
		for r := 0; r < n; r++ {
			if verify(int32(r)) {
				out = append(out, int32(r))
			}
		}
		return out
	}
	parts := chunks(n, w)
	results := make([][]int32, len(parts))
	var wg sync.WaitGroup
	for ci, c := range parts {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			local := make([]int32, 0, (hi-lo)/8+8)
			for r := lo; r < hi; r++ {
				if verify(int32(r)) {
					local = append(local, int32(r))
				}
			}
			results[ci] = local
		}(ci, c[0], c[1])
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]int32, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// parallelFilterRows is parallelFilter over an explicit candidate list.
func (e *Engine) parallelFilterRows(cands []int32, verify func(r int32) bool) []int32 {
	w := e.workers()
	if w == 1 || len(cands) < parallelThreshold {
		out := make([]int32, 0, 64)
		for _, r := range cands {
			if verify(r) {
				out = append(out, r)
			}
		}
		return out
	}
	parts := chunks(len(cands), w)
	results := make([][]int32, len(parts))
	var wg sync.WaitGroup
	for ci, c := range parts {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			local := make([]int32, 0, (hi-lo)/8+8)
			for _, r := range cands[lo:hi] {
				if verify(r) {
					local = append(local, r)
				}
			}
			results[ci] = local
		}(ci, c[0], c[1])
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]int32, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// parallelFold folds chunk aggregates of [0, ntup) and merges them in
// chunk order (deterministic float summation independent of scheduling;
// results differ from a strictly sequential fold only by a fixed,
// chunk-shaped association of additions).
func (e *Engine) parallelFold(ntup int, fold func(lo, hi int) agg.Partial) agg.Partial {
	w := e.workers()
	if w == 1 || ntup < parallelThreshold {
		return fold(0, ntup)
	}
	parts := chunks(ntup, w)
	partials := make([]agg.Partial, len(parts))
	var wg sync.WaitGroup
	for ci, c := range parts {
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			partials[ci] = fold(lo, hi)
		}(ci, c[0], c[1])
	}
	wg.Wait()
	out := agg.Zero()
	for _, p := range partials {
		out = agg.Merge(out, p)
	}
	return out
}
