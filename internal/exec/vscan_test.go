package exec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

// This file holds the vectorized-vs-legacy equivalence property suite:
// the block scan path must be *bit-identical* to the row-at-a-time
// path — same Count, same Sum bits, same Min/Max/User bits — across
// aggregates, joins, fixed predicates, NaN/±Inf columns, tail blocks,
// shard counts and cache configurations. Tolerance-free comparison is
// the point: any reassociation, reordering, or row loss in the
// vectorized path shows up as a bit difference here.

// exactEqual fails unless two partials are bitwise identical.
func exactEqual(t *testing.T, label string, got, want agg.Partial) {
	t.Helper()
	if got.Count != want.Count ||
		math.Float64bits(got.Sum) != math.Float64bits(want.Sum) ||
		math.Float64bits(got.Min) != math.Float64bits(want.Min) ||
		math.Float64bits(got.Max) != math.Float64bits(want.Max) ||
		math.Float64bits(got.User) != math.Float64bits(want.User) {
		t.Fatalf("%s: vectorized %+v != legacy %+v", label, got, want)
	}
}

// messyCatalog builds a two-table catalog engineered to stress the scan
// path's edge cases: a NaN/±Inf-bearing aggregate column, ±0 join keys,
// a string filter column, dangling join keys, and row counts chosen by
// the caller to produce partial tail blocks.
//
//	cust(c_key, c_score)
//	orders(o_custkey, o_amount [NaN/±Inf/±0], o_qty, o_status)
func messyCatalog(t testing.TB, nOrders, nCust int, seed int64) *data.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cat := data.NewCatalog()

	cust := data.NewTable("cust", data.MustSchema(
		data.Column{Name: "c_key", Type: data.Int64},
		data.Column{Name: "c_score", Type: data.Float64},
	))
	for i := 0; i < nCust; i++ {
		if err := cust.AppendRow(data.IntValue(int64(i)), data.FloatValue(rng.Float64()*100)); err != nil {
			t.Fatal(err)
		}
	}

	statuses := []string{"OPEN", "SHIPPED", "CLOSED", "HELD"}
	orders := data.NewTable("orders", data.MustSchema(
		data.Column{Name: "o_custkey", Type: data.Int64},
		data.Column{Name: "o_amount", Type: data.Float64},
		data.Column{Name: "o_qty", Type: data.Float64},
		data.Column{Name: "o_status", Type: data.String},
	))
	for i := 0; i < nOrders; i++ {
		amount := rng.Float64() * 1000
		switch r := rng.Float64(); {
		case r < 0.02:
			amount = math.NaN()
		case r < 0.03:
			amount = math.Inf(1)
		case r < 0.04:
			amount = math.Inf(-1)
		case r < 0.06:
			amount = math.Copysign(0, rng.Float64()-0.5) // ±0 keys
		}
		// ~10% dangling keys exercise join misses.
		key := int64(rng.Intn(nCust + nCust/10 + 1))
		if err := orders.AppendRow(
			data.IntValue(key),
			data.FloatValue(amount),
			data.FloatValue(rng.Float64()*50),
			data.StringValue(statuses[rng.Intn(len(statuses))]),
		); err != nil {
			t.Fatal(err)
		}
	}

	for _, tbl := range []*data.Table{cust, orders} {
		if err := cat.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// messyAgg picks a random constraint over the messy catalog. The
// NaN/±Inf column o_amount is deliberately over-represented as the
// aggregate attribute.
func messyAgg(rng *rand.Rand) relq.Constraint {
	c := relq.Constraint{Op: relq.CmpEQ, Target: 1}
	attr := relq.ColumnRef{Table: "orders", Column: "o_amount"}
	if rng.Intn(3) == 0 {
		attr = relq.ColumnRef{Table: "orders", Column: "o_qty"}
	}
	switch rng.Intn(6) {
	case 0:
		c.Func = relq.AggCount
	case 1:
		c.Func, c.Attr = relq.AggSum, attr
	case 2:
		c.Func, c.Attr = relq.AggMin, attr
	case 3:
		c.Func, c.Attr = relq.AggMax, attr
	case 4:
		c.Func, c.Attr = relq.AggAvg, attr
	default:
		c.Func, c.Attr, c.UserName = relq.AggUser, attr, "SUMSQ"
	}
	return c
}

// messyQuery generates a random (query, region) pair: single-table
// selects, equi joins, band joins, fixed ranges (selective enough to
// trigger the index path about half the time) and string-set filters.
func messyQuery(rng *rand.Rand) (*relq.Query, relq.Region) {
	var dims []relq.Dimension
	var fixed []relq.FixedPred
	tables := []string{"orders"}

	// 1-2 select dims on orders.
	orderDims := []relq.Dimension{
		{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "orders", Column: "o_amount"}, Bound: 400, Width: 1000},
		{Kind: relq.SelectGE, Col: relq.ColumnRef{Table: "orders", Column: "o_qty"}, Bound: 30, Width: 50},
		{Kind: relq.SelectEQ, Col: relq.ColumnRef{Table: "orders", Column: "o_qty"}, Bound: 20, Width: 50},
	}
	rng.Shuffle(len(orderDims), func(i, j int) { orderDims[i], orderDims[j] = orderDims[j], orderDims[i] })
	dims = append(dims, orderDims[:1+rng.Intn(2)]...)

	switch rng.Intn(3) {
	case 1: // equi join to cust + a cust-side dim
		tables = append(tables, "cust")
		fixed = append(fixed, relq.FixedPred{
			Kind:  relq.FixedEquiJoin,
			Left:  relq.ColumnRef{Table: "orders", Column: "o_custkey"},
			Right: relq.ColumnRef{Table: "cust", Column: "c_key"},
		})
		dims = append(dims, relq.Dimension{
			Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "cust", Column: "c_score"},
			Bound: 30, Width: 100,
		})
	case 2: // band join on the NaN-bearing column
		tables = append(tables, "cust")
		dims = append(dims, relq.Dimension{
			Kind:  relq.JoinBand,
			Left:  relq.ColumnRef{Table: "orders", Column: "o_amount"},
			Right: relq.ColumnRef{Table: "cust", Column: "c_score"},
			Base:  5, Width: 200,
		})
	}

	if rng.Intn(2) == 0 { // fixed range; selective half the time
		lo, hi := 100.0, 900.0
		if rng.Intn(2) == 0 {
			lo, hi = 100.0, 250.0
		}
		fixed = append(fixed, relq.FixedPred{
			Kind: relq.FixedRange,
			Col:  relq.ColumnRef{Table: "orders", Column: "o_amount"},
			Lo:   lo, Hi: hi,
		})
	}
	if rng.Intn(3) == 0 {
		fixed = append(fixed, relq.FixedPred{
			Kind:   relq.FixedStringIn,
			Col:    relq.ColumnRef{Table: "orders", Column: "o_status"},
			Values: []string{"OPEN", "SHIPPED"},
		})
	}

	region := make(relq.Region, len(dims))
	for i := range region {
		hi := rng.Float64() * 90
		if rng.Intn(2) == 0 {
			region[i] = relq.ViolInterval{Lo: -1, Hi: hi}
		} else {
			region[i] = relq.ViolInterval{Lo: hi * rng.Float64(), Hi: hi}
		}
	}

	q := &relq.Query{Tables: tables, Dims: dims, Fixed: fixed, Constraint: messyAgg(rng)}
	return q, region
}

func registerUDAs(t testing.TB) {
	t.Helper()
	for _, u := range agg.StandardUDAs() {
		_ = agg.RegisterUDA(u) // duplicate registration across tests is fine
	}
}

// TestVectorLegacyEquivalence runs 160 randomized (query, region, agg)
// triples — COUNT/SUM/MIN/MAX/AVG plus a UDA, equi and band joins,
// fixed ranges, string sets, NaN/±Inf aggregate values — through the
// vectorized and legacy engines and requires bitwise-identical
// partials.
func TestVectorLegacyEquivalence(t *testing.T) {
	registerUDAs(t)
	cat := messyCatalog(t, 2500, 300, 7)
	vec := New(cat)
	leg := New(cat)
	leg.SetLegacyScan(true)
	if vec.LegacyScan() || !leg.LegacyScan() {
		t.Fatal("legacy-scan flags not set as expected")
	}

	rng := rand.New(rand.NewSource(41))
	nonzero := 0
	for trial := 0; trial < 160; trial++ {
		q, region := messyQuery(rng)
		pv, errV := vec.Aggregate(q, region)
		pl, errL := leg.Aggregate(q, region)
		if (errV != nil) != (errL != nil) {
			t.Fatalf("trial %d: error divergence: vector=%v legacy=%v", trial, errV, errL)
		}
		if errV != nil {
			continue
		}
		exactEqual(t, fmt.Sprintf("trial %d (%v, region %v)", trial, q.Tables, region), pv, pl)
		if pv.Count > 0 {
			nonzero++
		}
	}
	if nonzero < 40 {
		t.Fatalf("only %d/160 trials produced rows; generator too restrictive to be meaningful", nonzero)
	}
}

// TestVectorLegacyEquivalenceTailBlocks sweeps table sizes around the
// block boundary — empty tables, single rows, exactly one block, one
// block plus one row — where off-by-one block math would bite.
func TestVectorLegacyEquivalenceTailBlocks(t *testing.T) {
	registerUDAs(t)
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 16, blockRows - 1, blockRows, blockRows + 1, 2*blockRows + 511} {
		cat := messyCatalog(t, n, 50, int64(n))
		vec := New(cat)
		leg := New(cat)
		leg.SetLegacyScan(true)
		for trial := 0; trial < 8; trial++ {
			q, region := messyQuery(rng)
			pv, errV := vec.Aggregate(q, region)
			pl, errL := leg.Aggregate(q, region)
			if (errV != nil) != (errL != nil) {
				t.Fatalf("n=%d trial %d: error divergence: %v vs %v", n, trial, errV, errL)
			}
			if errV != nil {
				continue
			}
			exactEqual(t, fmt.Sprintf("n=%d trial %d", n, trial), pv, pl)
		}
	}
}

// TestVectorLegacyEquivalenceSharded drives the sweep through
// ShardedEvaluators at shard counts 1-16 with the region cache on and
// off. Vector and legacy evaluators share the same shard layout and
// merge order, so even SUM must agree bit for bit.
func TestVectorLegacyEquivalenceSharded(t *testing.T) {
	const rows = 3000
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dims := usersDims()
	queries := []*relq.Query{
		usersQuery(relq.AggCount, "", dims...),
		usersQuery(relq.AggSum, "spend", dims...),
		usersQuery(relq.AggMin, "spend", dims...),
		usersQuery(relq.AggMax, "spend", dims...),
		usersQuery(relq.AggAvg, "spend", dims...),
	}

	rng := rand.New(rand.NewSource(29))
	ctx := context.Background()
	for _, shards := range []int{1, 2, 3, 5, 16} {
		for _, cache := range []bool{false, true} {
			vec := newShardedUsers(t, cat, shards, shardCfg{cache: cache})
			leg := newShardedUsers(t, cat, shards, shardCfg{cache: cache})
			leg.SetLegacyScan(true)

			regions := make([]relq.Region, 6)
			for i := range regions {
				hi := rng.Float64() * 80
				lo := -1.0
				if i%2 == 1 {
					lo = hi * rng.Float64()
				}
				regions[i] = relq.Region{
					{Lo: lo, Hi: hi},
					{Lo: -1, Hi: rng.Float64() * 80},
					{Lo: -1, Hi: rng.Float64() * 80},
				}
			}
			for qi, q := range queries {
				pv, err := vec.AggregateBatch(ctx, q, regions)
				if err != nil {
					t.Fatal(err)
				}
				pl, err := leg.AggregateBatch(ctx, q, regions)
				if err != nil {
					t.Fatal(err)
				}
				for i := range pv {
					exactEqual(t, fmt.Sprintf("shards=%d cache=%v q=%d region=%d", shards, cache, qi, i), pv[i], pl[i])
				}
				if cache {
					// Cached re-execution must serve identical partials.
					pv2, err := vec.AggregateBatch(ctx, q, regions)
					if err != nil {
						t.Fatal(err)
					}
					for i := range pv2 {
						exactEqual(t, fmt.Sprintf("shards=%d cached-rerun q=%d region=%d", shards, qi, i), pv2[i], pl[i])
					}
				}
			}
		}
	}
}

// clusteredCatalog builds a single-table catalog whose value column is
// sorted — the layout where zone maps can prove whole blocks out of
// range. val runs 0..1000 ascending.
func clusteredCatalog(t testing.TB, n int) *data.Catalog {
	t.Helper()
	cat := data.NewCatalog()
	tbl := data.NewTable("events", data.MustSchema(
		data.Column{Name: "val", Type: data.Float64},
		data.Column{Name: "spend", Type: data.Float64},
	))
	for i := 0; i < n; i++ {
		v := 1000 * float64(i) / float64(n)
		if err := tbl.AppendRow(data.FloatValue(v), data.FloatValue(math.Sqrt(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestVectorZoneSkip verifies the zone-map fast path: on a clustered
// column, a broad fixed range (too wide for the index path, narrow
// enough to exclude whole blocks) must skip blocks without touching
// their rows, RowsScanned must exclude the skipped rows, and the result
// must still match the legacy scan exactly.
func TestVectorZoneSkip(t *testing.T) {
	const n = 20 * blockRows
	cat := clusteredCatalog(t, n)
	vec := New(cat)
	leg := New(cat)
	leg.SetLegacyScan(true)

	q := &relq.Query{
		Tables: []string{"events"},
		Dims: []relq.Dimension{{
			Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "events", Column: "spend"},
			Bound: 20, Width: 30,
		}},
		Fixed: []relq.FixedPred{{
			Kind: relq.FixedRange,
			Col:  relq.ColumnRef{Table: "events", Column: "val"},
			// 60% of the sorted domain: > n/2 matches, so the index path
			// is rejected and the full scan runs with zone pruning.
			Lo: 0, Hi: 600,
		}},
		Constraint: relq.Constraint{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "events", Column: "spend"}, Op: relq.CmpEQ, Target: 1},
	}
	region := relq.PrefixRegion([]float64{100})

	before := vec.Snapshot()
	pv, err := vec.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	d := vec.Snapshot().Sub(before)
	pl, err := leg.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	exactEqual(t, "zone-skip query", pv, pl)

	if d.BlocksSkipped == 0 {
		t.Fatalf("expected zone maps to skip blocks on clustered data; stats: %+v", d)
	}
	if d.BlocksScanned == 0 {
		t.Fatalf("expected some blocks scanned; stats: %+v", d)
	}
	if d.RowsScanned >= int64(n) {
		t.Fatalf("RowsScanned %d should exclude rows in the %d skipped blocks (n=%d)", d.RowsScanned, d.BlocksSkipped, n)
	}
	if got := d.RowsScanned + d.BlocksSkipped*blockRows; got != int64(n) {
		t.Fatalf("scanned rows (%d) + skipped rows (%d blocks) should cover the table: got %d, want %d",
			d.RowsScanned, d.BlocksSkipped, got, n)
	}

	// The legacy path reports every row scanned and no block counters.
	legBefore := leg.Snapshot()
	if _, err := leg.Aggregate(q, region); err != nil {
		t.Fatal(err)
	}
	ld := leg.Snapshot().Sub(legBefore)
	if ld.RowsScanned != int64(n) || ld.BlocksSkipped != 0 {
		t.Fatalf("legacy stats unexpected: %+v", ld)
	}
}

// TestViolationScanEquivalence compares the Top-k primitive row by row:
// same rows, same order, same violation vectors bit for bit, same
// aggregate values — and on a clustered layout the vectorized scan must
// skip blocks while still emitting the identical row stream.
func TestViolationScanEquivalence(t *testing.T) {
	cat := messyCatalog(t, 3*blockRows+100, 50, 23)
	vec := New(cat)
	leg := New(cat)
	leg.SetLegacyScan(true)

	q := &relq.Query{
		Tables: []string{"orders"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "orders", Column: "o_amount"}, Bound: 400, Width: 1000},
			{Kind: relq.SelectGE, Col: relq.ColumnRef{Table: "orders", Column: "o_qty"}, Bound: 30, Width: 50},
		},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedRange, Col: relq.ColumnRef{Table: "orders", Column: "o_amount"}, Lo: 50, Hi: 800},
			{Kind: relq.FixedStringIn, Col: relq.ColumnRef{Table: "orders", Column: "o_status"}, Values: []string{"OPEN", "CLOSED"}},
		},
		Constraint: relq.Constraint{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "orders", Column: "o_qty"}, Op: relq.CmpEQ, Target: 1},
	}

	rv, err := vec.ViolationScan(q)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := leg.ViolationScan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv) != len(rl) {
		t.Fatalf("row count: vectorized %d != legacy %d", len(rv), len(rl))
	}
	for i := range rv {
		if rv[i].Row != rl[i].Row ||
			math.Float64bits(rv[i].AggValue) != math.Float64bits(rl[i].AggValue) {
			t.Fatalf("row %d: %+v != %+v", i, rv[i], rl[i])
		}
		for j := range rv[i].Viol {
			if math.Float64bits(rv[i].Viol[j]) != math.Float64bits(rl[i].Viol[j]) {
				t.Fatalf("row %d viol[%d]: %v != %v", i, j, rv[i].Viol[j], rl[i].Viol[j])
			}
		}
	}

	// Clustered layout: the vectorized ViolationScan must engage zone
	// maps on its fixed range and exclude skipped rows from RowsScanned.
	ccat := clusteredCatalog(t, 10*blockRows)
	cvec := New(ccat)
	cleg := New(ccat)
	cleg.SetLegacyScan(true)
	cq := &relq.Query{
		Tables: []string{"events"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "events", Column: "spend"}, Bound: 10, Width: 30},
		},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedRange, Col: relq.ColumnRef{Table: "events", Column: "val"}, Lo: 0, Hi: 500},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	before := cvec.Snapshot()
	cv, err := cvec.ViolationScan(cq)
	if err != nil {
		t.Fatal(err)
	}
	cd := cvec.Snapshot().Sub(before)
	cl, err := cleg.ViolationScan(cq)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv) != len(cl) {
		t.Fatalf("clustered row count: %d != %d", len(cv), len(cl))
	}
	if cd.BlocksSkipped == 0 {
		t.Fatalf("clustered ViolationScan should skip blocks; stats %+v", cd)
	}
	if cd.RowsScanned >= int64(10*blockRows) {
		t.Fatalf("RowsScanned %d should exclude skipped blocks", cd.RowsScanned)
	}
}

// TestSemiJoinPushdownEquivalence shapes a query so the scan-level
// semi-join pushdown engages (tiny pre-filtered probe side scanned
// before a large build side on an equi edge) and checks the result is
// unchanged.
func TestSemiJoinPushdownEquivalence(t *testing.T) {
	cat := messyCatalog(t, 8000, 400, 31)
	vec := New(cat)
	leg := New(cat)
	leg.SetLegacyScan(true)

	// cust is table 0 (scanned first, becomes the probe side of the
	// planned equi attach of orders); the tight c_score bound keeps its
	// candidate set far below len(orders)/4, arming the pushdown.
	q := &relq.Query{
		Tables: []string{"cust", "orders"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "cust", Column: "c_score"}, Bound: 2, Width: 100},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "orders", Column: "o_amount"}, Bound: 700, Width: 1000},
		},
		Fixed: []relq.FixedPred{{
			Kind:  relq.FixedEquiJoin,
			Left:  relq.ColumnRef{Table: "cust", Column: "c_key"},
			Right: relq.ColumnRef{Table: "orders", Column: "o_custkey"},
		}},
		Constraint: relq.Constraint{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "orders", Column: "o_qty"}, Op: relq.CmpEQ, Target: 1},
	}

	b, err := vec.bind(q)
	if err != nil {
		t.Fatal(err)
	}
	plan := vec.attachPlan(b)
	if plan[1].equi == nil || plan[1].probeTbl != 0 {
		t.Fatalf("attach plan did not arm pushdown for orders: %+v", plan[1])
	}

	for _, hi := range []float64{0, 3, 25, 90} {
		region := relq.PrefixRegion([]float64{hi, hi})
		pv, err := vec.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := leg.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		exactEqual(t, fmt.Sprintf("pushdown hi=%v", hi), pv, pl)
	}
}

// TestVectorLegacyEquivalenceAfterMutation checks zone-map retirement
// under appends: growing a table changes its column lengths, so the
// table-identity cache scheme (exact *Table pointer + matching length)
// must miss and rebuild — the vectorized path never prunes with stale
// block bounds.
func TestVectorLegacyEquivalenceAfterMutation(t *testing.T) {
	cat := clusteredCatalog(t, 4*blockRows)
	vec := New(cat)
	leg := New(cat)
	leg.SetLegacyScan(true)

	q := &relq.Query{
		Tables: []string{"events"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "events", Column: "spend"}, Bound: 20, Width: 30},
		},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedRange, Col: relq.ColumnRef{Table: "events", Column: "val"}, Lo: 0, Hi: 600},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	region := relq.PrefixRegion([]float64{50})

	pv, err := vec.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := leg.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	exactEqual(t, "pre-mutation", pv, pl)

	// Append out-of-order rows that an unrefreshed zone map would
	// wrongly prune (values inside the fixed range land in new blocks,
	// and the old tail block's max changes).
	tbl, err := cat.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blockRows+7; i++ {
		if err := tbl.AppendRow(data.FloatValue(300), data.FloatValue(5)); err != nil {
			t.Fatal(err)
		}
	}
	vec.InvalidateTable("events")
	leg.InvalidateTable("events")

	pv2, err := vec.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := leg.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	exactEqual(t, "post-mutation", pv2, pl2)
	if pv2.Count <= pv.Count {
		t.Fatalf("appended qualifying rows must grow the count: %d -> %d", pv.Count, pv2.Count)
	}
}

// TestZoneMapRetirementSharded is the mutate-then-scan sweep of the
// derived-state retirement story at shard counts 1-16: each round
// mutates the fact table a different way — sub-block append, block-
// sized append, and a same-size catalog Replace (an auto-clustering
// style re-sort, where only the *Table identity changes, not the row
// count) — then re-scans through InvalidateTable. The vectorized
// sharded evaluator must stay bit-identical to its legacy twin after
// every round; a stale zone map, column vector, or sorted index from a
// previous generation shows up here as a pruned qualifying row.
func TestZoneMapRetirementSharded(t *testing.T) {
	q := &relq.Query{
		Tables: []string{"events"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "events", Column: "spend"}, Bound: 20, Width: 30},
		},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedRange, Col: relq.ColumnRef{Table: "events", Column: "val"}, Lo: 0, Hi: 600},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	regions := []relq.Region{
		relq.PrefixRegion([]float64{0}),
		relq.PrefixRegion([]float64{50}),
		relq.PrefixRegion([]float64{100}),
	}

	for _, shards := range []int{1, 2, 3, 5, 8, 16} {
		cat := clusteredCatalog(t, 4*blockRows)
		vec, err := NewShardedOn(cat, "events", shards)
		if err != nil {
			t.Fatal(err)
		}
		leg, err := NewShardedOn(cat, "events", shards)
		if err != nil {
			t.Fatal(err)
		}
		leg.SetLegacyScan(true)

		compare := func(round string) []agg.Partial {
			t.Helper()
			got, err := vec.AggregateBatch(context.Background(), q, regions)
			if err != nil {
				t.Fatal(err)
			}
			want, err := leg.AggregateBatch(context.Background(), q, regions)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				exactEqual(t, fmt.Sprintf("shards=%d %s region %d", shards, round, i), got[i], want[i])
			}
			return got
		}
		invalidate := func() {
			vec.InvalidateTable("events")
			leg.InvalidateTable("events")
		}

		base := compare("baseline")
		tbl, err := cat.Table("events")
		if err != nil {
			t.Fatal(err)
		}

		// Round 1: sub-block append — the tail block's bounds change
		// without adding a full new block.
		for i := 0; i < 7; i++ {
			if err := tbl.AppendRow(data.FloatValue(300), data.FloatValue(5)); err != nil {
				t.Fatal(err)
			}
		}
		invalidate()
		r1 := compare("sub-block append")
		if r1[2].Count != base[2].Count+7 {
			t.Fatalf("shards=%d: sub-block append: count %d -> %d, want +7",
				shards, base[2].Count, r1[2].Count)
		}

		// Round 2: block-sized append — new blocks appear whose rows a
		// stale zone map generation would never have covered.
		for i := 0; i < blockRows+11; i++ {
			if err := tbl.AppendRow(data.FloatValue(300), data.FloatValue(5)); err != nil {
				t.Fatal(err)
			}
		}
		invalidate()
		r2 := compare("block append")
		if r2[2].Count != r1[2].Count+blockRows+11 {
			t.Fatalf("shards=%d: block append: count %d -> %d, want +%d",
				shards, r1[2].Count, r2[2].Count, blockRows+11)
		}

		// Round 3: same-size Replace — a re-sorted copy swaps in with an
		// unchanged row count, so only table identity distinguishes the
		// new layout from the old (the scheme an auto-clustering re-sort
		// retires caches through).
		sorted, err := data.SortedBy(tbl, "val")
		if err != nil {
			t.Fatal(err)
		}
		cat.Replace(sorted)
		invalidate()
		r3 := compare("same-size replace")
		if r3[2].Count != r2[2].Count {
			t.Fatalf("shards=%d: replace changed the count: %d -> %d",
				shards, r2[2].Count, r3[2].Count)
		}

		// Round 4: append onto the replaced generation, out of sorted
		// order, to confirm the new generation's tail retires too.
		sorted2, err := cat.Table("events")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 13; i++ {
			if err := sorted2.AppendRow(data.FloatValue(1), data.FloatValue(2)); err != nil {
				t.Fatal(err)
			}
		}
		invalidate()
		r4 := compare("post-replace append")
		if r4[2].Count != r3[2].Count+13 {
			t.Fatalf("shards=%d: post-replace append: count %d -> %d, want +13",
				shards, r3[2].Count, r4[2].Count)
		}
	}
}
