package exec

import (
	"fmt"

	"acquire/internal/relq"
)

// RowViolations is the per-row output of ViolationScan: the row index,
// its violation vector over the query dimensions, and its aggregate
// attribute value (1 for COUNT(*)).
type RowViolations struct {
	Row      int32
	Viol     []float64
	AggValue float64
}

// ViolationScan scans a single-table query and returns, for every row
// passing the fixed filters, its violation vector over the query's
// select dimensions. This is the primitive behind the Top-k baseline's
// ORDER BY <violation expression> LIMIT k query (§8.2): the whole table
// is examined regardless of how much refinement is eventually needed,
// which is exactly the cost profile the paper observes for Top-k.
//
// Counts as one query execution against the evaluation layer. Join
// queries are rejected: "none of the above techniques are capable of
// refining join predicates" (§8.2).
func (e *Engine) ViolationScan(q *relq.Query) ([]RowViolations, error) {
	b, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	if len(b.tables) != 1 {
		return nil, fmt.Errorf("exec: ViolationScan supports single-table queries, got %d tables", len(b.tables))
	}
	if len(b.joinDims) != 0 {
		return nil, fmt.Errorf("exec: ViolationScan does not support join dimensions")
	}
	e.countQueries(1)
	n := b.tables[0].NumRows()
	e.countRows(int64(n))

	d := len(b.q.Dims)
	out := make([]RowViolations, 0, n)
	// One flat backing array for all violation vectors: a 1M-row scan
	// must not allocate 1M tiny slices.
	backing := make([]float64, 0, n*d)
rows:
	for r := 0; r < n; r++ {
		for _, rb := range b.ranges[0] {
			v := rb.vec[r]
			if v < rb.lo || v > rb.hi {
				continue rows
			}
		}
		for _, sb := range b.strFlts[0] {
			if _, ok := sb.set[sb.vec[r]]; !ok {
				continue rows
			}
		}
		// cap(backing) is n*d, so extending the length never
		// reallocates (which would invalidate earlier sub-slices).
		start := len(backing)
		backing = backing[:start+d]
		viol := backing[start : start+d]
		for _, sd := range b.selDims {
			viol[sd.di] = sd.dim.Violation(sd.vec[r])
		}
		v := 1.0
		if b.aggTbl >= 0 {
			v = b.aggVec[r]
		}
		out = append(out, RowViolations{Row: int32(r), Viol: viol, AggValue: v})
	}
	return out, nil
}

// Count is a convenience wrapper: the COUNT(*) of the query restricted
// to the region, regardless of the query's own constraint aggregate.
func (e *Engine) Count(q *relq.Query, region relq.Region) (int64, error) {
	p, err := e.Aggregate(q, region)
	if err != nil {
		return 0, err
	}
	return p.Count, nil
}
