package exec

import (
	"fmt"
	"math"

	"acquire/internal/relq"
)

// RowViolations is the per-row output of ViolationScan: the row index,
// its violation vector over the query dimensions, and its aggregate
// attribute value (1 for COUNT(*)).
type RowViolations struct {
	Row      int32
	Viol     []float64
	AggValue float64
}

// ViolationScan scans a single-table query and returns, for every row
// passing the fixed filters, its violation vector over the query's
// select dimensions. This is the primitive behind the Top-k baseline's
// ORDER BY <violation expression> LIMIT k query (§8.2): the whole table
// is examined regardless of how much refinement is eventually needed,
// which is exactly the cost profile the paper observes for Top-k.
//
// Counts as one query execution against the evaluation layer. Join
// queries are rejected: "none of the above techniques are capable of
// refining join predicates" (§8.2).
func (e *Engine) ViolationScan(q *relq.Query) ([]RowViolations, error) {
	b, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	if len(b.tables) != 1 {
		return nil, fmt.Errorf("exec: ViolationScan supports single-table queries, got %d tables", len(b.tables))
	}
	if len(b.joinDims) != 0 {
		return nil, fmt.Errorf("exec: ViolationScan does not support join dimensions")
	}
	e.countQueries(1)
	n := b.tables[0].NumRows()
	if e.legacyScan.Load() {
		e.countRows(int64(n))
		return e.violationScanLegacy(b, n)
	}
	return e.violationScanVec(b, n)
}

// violationScanLegacy is the row-at-a-time scan with one branchy
// multi-predicate loop per row.
func (e *Engine) violationScanLegacy(b *binding, n int) ([]RowViolations, error) {
	d := len(b.q.Dims)
	out := make([]RowViolations, 0, n)
	// One flat backing array for all violation vectors: a 1M-row scan
	// must not allocate 1M tiny slices.
	backing := make([]float64, 0, n*d)
rows:
	for r := 0; r < n; r++ {
		for _, rb := range b.ranges[0] {
			v := rb.vec[r]
			if v < rb.lo || v > rb.hi {
				continue rows
			}
		}
		for _, sb := range b.strFlts[0] {
			if _, ok := sb.set[sb.vec[r]]; !ok {
				continue rows
			}
		}
		// cap(backing) is n*d, so extending the length never
		// reallocates (which would invalidate earlier sub-slices).
		start := len(backing)
		backing = backing[:start+d]
		viol := backing[start : start+d]
		for _, sd := range b.selDims {
			viol[sd.di] = sd.dim.Violation(sd.vec[r])
		}
		v := 1.0
		if b.aggTbl >= 0 {
			v = b.aggVec[r]
		}
		out = append(out, RowViolations{Row: int32(r), Viol: viol, AggValue: v})
	}
	return out, nil
}

// violationScanVec is the block-vectorized scan: fixed ranges and
// string sets run through the shared selection-vector filter
// primitives, and blocks a fixed-range zone map proves empty are
// skipped without touching rows. RowsScanned counts only rows in
// visited blocks; skipped blocks are reported via BlocksSkipped. The
// emitted rows, their order and their violation vectors are identical
// to the legacy scan (filterRange keeps NaN exactly as the legacy
// reject test does).
func (e *Engine) violationScanVec(b *binding, n int) ([]RowViolations, error) {
	t := b.tables[0]
	ranges := b.ranges[0]
	strs := b.strFlts[0]
	var zps []zonePred
	for i := range ranges {
		rb := &ranges[i]
		if math.IsInf(rb.lo, -1) && math.IsInf(rb.hi, 1) {
			continue
		}
		zps = append(zps, zonePred{zm: e.zoneMapFor(t, rb.ord, rb.vec), lo: rb.lo, hi: rb.hi})
	}
	eo := e.obsState.Load()

	d := len(b.q.Dims)
	out := make([]RowViolations, 0, n)
	backing := make([]float64, 0, n*d)
	var buf [blockRows]int32
	nb := numBlocks(n)
	var rows, scanned, skipped int64
	for bi := 0; bi < nb; bi++ {
		lo := bi * blockRows
		hi := min(lo+blockRows, n)
		if blockSkippable(zps, bi) {
			skipped++
			continue
		}
		scanned++
		rows += int64(hi - lo)
		sel := buf[:0]
		for r := lo; r < hi; r++ {
			sel = append(sel, int32(r))
		}
		for i := range ranges {
			if len(sel) == 0 {
				break
			}
			sel = filterRange(sel, ranges[i].vec, ranges[i].lo, ranges[i].hi)
		}
		for i := range strs {
			if len(sel) == 0 {
				break
			}
			sel = filterStringIn(sel, strs[i].vec, strs[i].set)
		}
		observeDensity(eo, len(sel), hi-lo)
		for _, r := range sel {
			start := len(backing)
			backing = backing[:start+d]
			viol := backing[start : start+d]
			for _, sd := range b.selDims {
				viol[sd.di] = sd.dim.Violation(sd.vec[r])
			}
			v := 1.0
			if b.aggTbl >= 0 {
				v = b.aggVec[r]
			}
			out = append(out, RowViolations{Row: r, Viol: viol, AggValue: v})
		}
	}
	e.countRows(rows)
	e.countBlocks(scanned, skipped)
	return out, nil
}

// Count is a convenience wrapper: the COUNT(*) of the query restricted
// to the region, regardless of the query's own constraint aggregate.
func (e *Engine) Count(q *relq.Query, region relq.Region) (int64, error) {
	p, err := e.Aggregate(q, region)
	if err != nil {
		return 0, err
	}
	return p.Count, nil
}
