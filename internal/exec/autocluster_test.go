package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"acquire/internal/data"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

// eagerPolicy is a low-threshold policy so tests converge in a couple
// of batches instead of the production default's 24 scans.
var eagerPolicy = AutoClusterPolicy{
	MinScans:       8,
	MaxSelectivity: 0.95,
	MinRows:        2048,
	Hysteresis:     2,
	TailFraction:   0.05,
}

// prefixRegions is the fig. 8-style batch the auto-clustering tests
// drive: 8 widening prefix regions over the three users dims.
func prefixRegions() []relq.Region {
	var regions []relq.Region
	for i := 0; i < 8; i++ {
		h := 10 + float64(i)*8
		regions = append(regions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: 70 - h/2}, {Lo: -1, Hi: h}})
	}
	return regions
}

func TestWorkloadStatsObserve(t *testing.T) {
	var w workloadStats
	drives := []scanDrive{{ord: 1}, {ord: 3}}

	// Marginal attribution: each drive's own in-interval row count
	// updates only its column's EWMA.
	w.observe("users", 1000, drives, []int{100, 300}) // seeds 0.1 / 0.3
	w.observe("users", 1000, drives, []int{500, 300}) // folds at alpha
	snap := w.snapshot()
	cols, ok := snap["users"]
	if !ok || len(cols) != 2 {
		t.Fatalf("snapshot = %+v, want 2 columns under users", snap)
	}
	for _, tc := range []struct {
		ord        int
		seed, next float64
	}{
		{1, 0.1, 0.5},
		{3, 0.3, 0.3},
	} {
		cw := cols[tc.ord]
		if cw.touches != 2 {
			t.Errorf("ord %d touches = %d, want 2", tc.ord, cw.touches)
		}
		want := tc.seed + ewmaAlpha*(tc.next-tc.seed)
		if cw.ewma != want {
			t.Errorf("ord %d ewma = %v, want %v", tc.ord, cw.ewma, want)
		}
	}

	// Degenerate observations are ignored.
	w.observe("users", 0, drives, []int{0, 0})
	w.observe("users", 1000, nil, nil)
	w.observe("users", 1000, drives, []int{10}) // margs misaligned
	if w.snapshot()["users"][1].touches != 2 {
		t.Error("degenerate observe mutated the stats")
	}

	// forget drops the table; a mutated snapshot copy never writes back.
	snap["users"][1] = colWorkload{touches: 99}
	if w.snapshot()["users"][1].touches != 2 {
		t.Error("snapshot aliases live stats")
	}
	w.forget("users")
	if len(w.snapshot()) != 0 {
		t.Error("forget left stats behind")
	}
}

// TestAutoClusterElectsAndResorts drives the fig. 8 users batch through
// an auto-clustering engine until the sweep re-sorts the table, and
// checks the full contract: a clustering column is elected from the
// query's own dims, the catalog table is physically replaced with a
// clustered layout, zone maps engage on later batches (blocks skipped
// with no -cluster anywhere), and every batch before, across, and after
// the re-sort returns bit-identical COUNT partials to a plain engine.
func TestAutoClusterElectsAndResorts(t *testing.T) {
	const rows = 6000
	ctx := context.Background()
	newCat := func() *data.Catalog {
		cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return cat
	}
	ref := New(newCat())
	auto := New(newCat())
	auto.ClusterPolicy = eagerPolicy
	auto.SetAutoCluster(true)
	if !auto.AutoClusterOn() {
		t.Fatal("AutoClusterOn = false after SetAutoCluster(true)")
	}

	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := prefixRegions()

	check := func(batch int) {
		t.Helper()
		want, err := ref.AggregateBatch(ctx, q, regions)
		if err != nil {
			t.Fatal(err)
		}
		got, err := auto.AggregateBatch(ctx, q, regions)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			exactEqual(t, fmt.Sprintf("batch %d region %d", batch, i), got[i], want[i])
		}
	}

	resortAt := -1
	for batch := 1; batch <= 10; batch++ {
		check(batch)
		if auto.Snapshot().Resorts >= 1 {
			resortAt = batch
			break
		}
	}
	if resortAt < 0 {
		t.Fatalf("no re-sort within 10 batches: stats %+v", auto.Snapshot())
	}

	tbl, err := auto.Catalog().Table("users")
	if err != nil {
		t.Fatal(err)
	}
	col, sorted := tbl.ClusterInfo()
	switch col {
	case "age", "income", "distance":
	default:
		t.Fatalf("elected clustering column %q, want one of the query dims", col)
	}
	if sorted != rows {
		t.Fatalf("sorted prefix = %d, want %d", sorted, rows)
	}

	// Steady state: answers still match and zone maps now engage.
	before := auto.Snapshot()
	check(resortAt + 1)
	d := auto.Snapshot().Sub(before)
	if d.BlocksSkipped == 0 {
		t.Errorf("steady-state batch skipped no blocks: %+v", d)
	}

	// An engine that learned once doesn't thrash: the incumbent column
	// holds under equal touch counts (hysteresis), so more batches add
	// no further re-sorts.
	for batch := 0; batch < 3; batch++ {
		check(resortAt + 2 + batch)
	}
	if got := auto.Snapshot().Resorts; got != 1 {
		t.Errorf("Resorts = %d after steady batches, want 1", got)
	}
}

// appendUsers appends k synthetic rows to the users table in schema
// order (u_id, age, income, distance, sessions, spend, gender,
// location).
func appendUsers(t *testing.T, tbl *data.Table, k int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := tbl.NumRows()
	for i := 0; i < k; i++ {
		if err := tbl.AppendRow(
			data.IntValue(int64(base+i)),
			data.IntValue(18+int64(rng.Intn(52))),
			data.FloatValue(rng.Float64()*200000),
			data.FloatValue(rng.Float64()*100),
			data.FloatValue(rng.Float64()*50),
			data.FloatValue(rng.Float64()*1000),
			data.StringValue("F"),
			data.StringValue("city"),
		); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterTailDegradationAndMerge is the SortedBy + append
// regression test: appends after clustering land in an explicit
// unsorted tail, full scans over a block-or-bigger tail surface as
// DegradedScans instead of silently losing pruning, and the
// auto-clustering sweep merges the tail back (TailMerges) — after
// which the degradation stops and answers never change.
func TestClusterTailDegradationAndMerge(t *testing.T) {
	const rows = 6000
	ctx := context.Background()
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := cat.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := data.SortedBy(tbl, "age")
	if err != nil {
		t.Fatal(err)
	}
	cat.Replace(sorted)

	e := New(cat)
	e.ClusterPolicy = eagerPolicy
	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := prefixRegions()

	before := e.Snapshot()
	want, err := e.AggregateBatch(ctx, q, regions)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Snapshot().Sub(before)
	if d.DegradedScans != 0 {
		t.Fatalf("clean clustered table reported %d degraded scans", d.DegradedScans)
	}
	if d.BlocksSkipped == 0 {
		t.Fatalf("clustered table skipped no blocks: %+v", d)
	}

	// Outgrow one block: scans must flag the degraded regime. The
	// appended rows change the expected partials, so recompute the
	// reference from a fresh engine over the same catalog.
	appendUsers(t, sorted, blockRows+100, 7)
	if sorted.ClusterTail() != blockRows+100 {
		t.Fatalf("ClusterTail = %d, want %d", sorted.ClusterTail(), blockRows+100)
	}
	want, err = New(cat).AggregateBatch(ctx, q, regions)
	if err != nil {
		t.Fatal(err)
	}

	before = e.Snapshot()
	e.SetAutoCluster(true) // sweep may now merge the tail at batch end
	got, err := e.AggregateBatch(ctx, q, regions)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		exactEqual(t, fmt.Sprintf("tail batch region %d", i), got[i], want[i])
	}
	d = e.Snapshot().Sub(before)
	if d.DegradedScans == 0 {
		t.Errorf("block-sized tail produced no degraded scans: %+v", d)
	}
	if d.TailMerges != 1 {
		t.Fatalf("TailMerges = %d after sweep, want 1", d.TailMerges)
	}
	if d.Resorts != 0 {
		t.Errorf("tail merge also re-sorted: %+v", d)
	}

	merged, err := cat.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	if col, n := merged.ClusterInfo(); col != "age" || n != merged.NumRows() {
		t.Fatalf("post-merge ClusterInfo = (%q, %d), want (age, %d)", col, n, merged.NumRows())
	}

	// Post-merge: same answers, no more degradation.
	before = e.Snapshot()
	got, err = e.AggregateBatch(ctx, q, regions)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		exactEqual(t, fmt.Sprintf("merged batch region %d", i), got[i], want[i])
	}
	if d := e.Snapshot().Sub(before); d.DegradedScans != 0 {
		t.Errorf("degraded scans persist after tail merge: %+v", d)
	}
}

// TestAutoClusterSharded drives the sharded scatter-gather stack with
// auto-clustering enabled: each shard learns and re-sorts its own range
// independently (the sweep runs after the gather, since the scatter
// path never calls Engine.AggregateBatch), gathered Resorts surface in
// the merged Snapshot, and every batch stays bit-identical to the
// monolithic plain engine.
func TestAutoClusterSharded(t *testing.T) {
	const rows = 6000
	ctx := context.Background()
	newCat := func() *data.Catalog {
		cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return cat
	}
	ref := New(newCat())
	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := prefixRegions()
	want, err := ref.AggregateBatch(ctx, q, regions)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		sv, err := NewShardedOn(newCat(), "users", shards)
		if err != nil {
			t.Fatal(err)
		}
		sv.SetAutoCluster(true)
		for _, se := range sv.engines {
			pol := eagerPolicy
			pol.MinRows = 512 // shards hold rows/shards each
			se.ClusterPolicy = pol
		}

		resorted := false
		for batch := 1; batch <= 10; batch++ {
			got, err := sv.AggregateBatch(ctx, q, regions)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				exactEqual(t, fmt.Sprintf("shards=%d batch %d region %d", shards, batch, i), got[i], want[i])
			}
			if sv.Snapshot().Resorts >= int64(shards) {
				resorted = true
				break
			}
		}
		if !resorted {
			t.Fatalf("shards=%d: %d resorts in 10 batches, want >= %d",
				shards, sv.Snapshot().Resorts, shards)
		}
		// Settled: one more batch must still agree.
		got, err := sv.AggregateBatch(ctx, q, regions)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			exactEqual(t, fmt.Sprintf("shards=%d settled region %d", shards, i), got[i], want[i])
		}
	}
}
