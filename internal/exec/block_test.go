package exec

import (
	"math"
	"testing"

	"acquire/internal/relq"
)

func TestNumBlocks(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {blockRows - 1, 1}, {blockRows, 1},
		{blockRows + 1, 2}, {3 * blockRows, 3}, {3*blockRows + 1, 4},
	}
	for _, c := range cases {
		if got := numBlocks(c.n); got != c.want {
			t.Errorf("numBlocks(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBuildZoneMap(t *testing.T) {
	vec := make([]float64, blockRows+3)
	for i := range vec {
		vec[i] = float64(i)
	}
	vec[5] = math.NaN()             // block 0 carries NaN
	vec[blockRows+1] = math.Inf(-1) // tail block min is -Inf

	zm := buildZoneMap(vec)
	if len(zm.mins) != 2 {
		t.Fatalf("blocks = %d, want 2", len(zm.mins))
	}
	if !zm.nan[0] || zm.nan[1] {
		t.Errorf("nan flags = %v/%v, want true/false", zm.nan[0], zm.nan[1])
	}
	if zm.mins[0] != 0 || zm.maxs[0] != float64(blockRows-1) {
		t.Errorf("block 0 span = [%v, %v]", zm.mins[0], zm.maxs[0])
	}
	if !math.IsInf(zm.mins[1], -1) || zm.maxs[1] != float64(blockRows+2) {
		t.Errorf("block 1 span = [%v, %v]", zm.mins[1], zm.maxs[1])
	}

	// All-NaN block: unskippable via the nan flag, degenerate interval.
	allNaN := buildZoneMap([]float64{math.NaN(), math.NaN()})
	if !allNaN.nan[0] || !math.IsInf(allNaN.mins[0], 1) || !math.IsInf(allNaN.maxs[0], -1) {
		t.Errorf("all-NaN block = {%v, %v, %v}", allNaN.mins[0], allNaN.maxs[0], allNaN.nan[0])
	}
}

func TestZonePredSkip(t *testing.T) {
	zm := &zoneMap{mins: []float64{10, 10}, maxs: []float64{20, 20}, nan: []bool{false, true}}
	cases := []struct {
		lo, hi float64
		bi     int
		skip   bool
	}{
		{30, 40, 0, true},  // block entirely below the range
		{0, 5, 0, true},    // block entirely above the range
		{15, 40, 0, false}, // overlap
		{20, 40, 0, false}, // touching endpoint must not skip
		{0, 10, 0, false},  // touching endpoint must not skip
		{30, 40, 1, false}, // NaN block is never skippable
	}
	for _, c := range cases {
		zp := zonePred{zm: zm, lo: c.lo, hi: c.hi}
		if got := zp.skip(c.bi); got != c.skip {
			t.Errorf("skip(bi=%d, [%v,%v]) = %v, want %v", c.bi, c.lo, c.hi, got, c.skip)
		}
	}
}

func TestFilterRangeKeepsNaN(t *testing.T) {
	vec := []float64{1, math.NaN(), 5, 10, math.Inf(1), math.Inf(-1)}
	sel := []int32{0, 1, 2, 3, 4, 5}
	got := filterRange(sel, vec, 2, 11)
	// Kept: NaN (reject test false), 5, 10. Dropped: 1, +Inf, -Inf.
	want := []int32{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kept %v, want %v", got, want)
		}
	}
}

func TestFilterViolationMatchesDimension(t *testing.T) {
	vec := []float64{-5, 0, 10, 20, 35, 50, math.NaN(), math.Inf(1), math.Inf(-1)}
	dims := []relq.Dimension{
		{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "c"}, Bound: 20, Width: 40},
		{Kind: relq.SelectGE, Col: relq.ColumnRef{Table: "t", Column: "c"}, Bound: 20, Width: 40},
		{Kind: relq.SelectEQ, Col: relq.ColumnRef{Table: "t", Column: "c"}, Bound: 20, Width: 40},
	}
	for _, hi := range []float64{0, 12.5, 60, math.Inf(1)} {
		for di := range dims {
			d := &dims[di]
			sel := make([]int32, len(vec))
			for i := range sel {
				sel[i] = int32(i)
			}
			got := filterViolation(sel, d, vec, hi)
			var want []int32
			for i := range vec {
				if !(d.Violation(vec[i]) > hi) {
					want = append(want, int32(i))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("kind=%v hi=%v: kept %v, want %v", d.Kind, hi, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("kind=%v hi=%v: kept %v, want %v", d.Kind, hi, got, want)
				}
			}
		}
	}
}

func TestPruneIntervalConservative(t *testing.T) {
	// For every select kind, any value whose violation is <= hi must lie
	// inside the prune interval (the interval may be wider, never
	// narrower).
	dims := []relq.Dimension{
		{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "c"}, Bound: 100, Width: 50},
		{Kind: relq.SelectGE, Col: relq.ColumnRef{Table: "t", Column: "c"}, Bound: 100, Width: 50},
		{Kind: relq.SelectEQ, Col: relq.ColumnRef{Table: "t", Column: "c"}, Bound: 100, Width: 50},
	}
	for di := range dims {
		d := &dims[di]
		for _, ivLo := range []float64{0, 2.1, 15} {
			for _, hi := range []float64{0, 7.3, 33.3, 99.9} {
				if hi < ivLo {
					continue
				}
				iv := relq.ViolInterval{Lo: ivLo, Hi: hi}
				lo, up := pruneInterval(d, iv)
				for v := -50.0; v <= 250; v += 0.7 {
					viol := d.Violation(v)
					if viol > iv.Lo && viol <= iv.Hi && (v < lo || v > up) {
						t.Fatalf("kind=%v iv=(%v,%v]: qualifying value %v outside prune hull [%v, %v]",
							d.Kind, iv.Lo, iv.Hi, v, lo, up)
					}
				}
			}
		}
	}
}

func TestPrunePadInfinityHandling(t *testing.T) {
	lo, hi := prunePad(math.Inf(-1), 50)
	if !math.IsInf(lo, -1) || !(hi > 50) || math.IsInf(hi, 1) {
		t.Errorf("prunePad(-Inf, 50) = (%v, %v)", lo, hi)
	}
	lo, hi = prunePad(10, math.Inf(1))
	if !(lo < 10) || math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Errorf("prunePad(10, +Inf) = (%v, %v)", lo, hi)
	}
}
