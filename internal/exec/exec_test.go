package exec

import (
	"math"
	"math/rand"
	"testing"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/relq"
)

// smallCatalog builds a deterministic 3-table mini TPC-H:
//
//	supplier(s_suppkey, s_acctbal)
//	part(p_partkey, p_retailprice, p_size, p_type)
//	partsupp(ps_partkey, ps_suppkey, ps_availqty)
func smallCatalog(t testing.TB, nSupp, nPart int, seed int64) *data.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cat := data.NewCatalog()

	supp := data.NewTable("supplier", data.MustSchema(
		data.Column{Name: "s_suppkey", Type: data.Int64},
		data.Column{Name: "s_acctbal", Type: data.Float64},
	))
	for i := 0; i < nSupp; i++ {
		if err := supp.AppendRow(data.IntValue(int64(i)), data.FloatValue(rng.Float64()*10000)); err != nil {
			t.Fatal(err)
		}
	}

	types := []string{"STEEL", "BRASS", "COPPER"}
	part := data.NewTable("part", data.MustSchema(
		data.Column{Name: "p_partkey", Type: data.Int64},
		data.Column{Name: "p_retailprice", Type: data.Float64},
		data.Column{Name: "p_size", Type: data.Int64},
		data.Column{Name: "p_type", Type: data.String},
	))
	for i := 0; i < nPart; i++ {
		if err := part.AppendRow(
			data.IntValue(int64(i)),
			data.FloatValue(rng.Float64()*2000),
			data.IntValue(int64(rng.Intn(50))),
			data.StringValue(types[rng.Intn(len(types))]),
		); err != nil {
			t.Fatal(err)
		}
	}

	ps := data.NewTable("partsupp", data.MustSchema(
		data.Column{Name: "ps_partkey", Type: data.Int64},
		data.Column{Name: "ps_suppkey", Type: data.Int64},
		data.Column{Name: "ps_availqty", Type: data.Int64},
	))
	for i := 0; i < nPart; i++ {
		for j := 0; j < 2; j++ {
			if err := ps.AppendRow(
				data.IntValue(int64(i)),
				data.IntValue(int64(rng.Intn(nSupp))),
				data.IntValue(int64(rng.Intn(1000))),
			); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, tbl := range []*data.Table{supp, part, ps} {
		if err := cat.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func countQuery(dims ...relq.Dimension) *relq.Query {
	return &relq.Query{
		Tables:     []string{"part"},
		Dims:       dims,
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
}

func TestSingleTableCount(t *testing.T) {
	cat := smallCatalog(t, 10, 200, 1)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 500, Width: 2000,
	})
	p, err := e.Aggregate(q, relq.PrefixRegion([]float64{0}))
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	// Oracle: count manually.
	part, _ := cat.Table("part")
	want := int64(0)
	for r := 0; r < part.NumRows(); r++ {
		v, _ := part.NumericAt(r, 1)
		if v <= 500 {
			want++
		}
	}
	if p.Count != want {
		t.Errorf("count = %d, want %d", p.Count, want)
	}

	// Expanding the region grows the count monotonically.
	p2, err := e.Aggregate(q, relq.PrefixRegion([]float64{10}))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Count < p.Count {
		t.Errorf("expanded count %d < base %d", p2.Count, p.Count)
	}
}

func TestFixedFilters(t *testing.T) {
	cat := smallCatalog(t, 10, 200, 2)
	e := New(cat)
	q := &relq.Query{
		Tables: []string{"part"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedRange, Col: relq.ColumnRef{Table: "part", Column: "p_size"}, Lo: 10, Hi: 20},
			{Kind: relq.FixedStringIn, Col: relq.ColumnRef{Table: "part", Column: "p_type"}, Values: []string{"STEEL"}},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	p, err := e.Aggregate(q, relq.Region{})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	part, _ := cat.Table("part")
	want := int64(0)
	for r := 0; r < part.NumRows(); r++ {
		sz, _ := part.NumericAt(r, 2)
		ty, _ := part.StringAt(r, 3)
		if sz >= 10 && sz <= 20 && ty == "STEEL" {
			want++
		}
	}
	if p.Count != want {
		t.Errorf("count = %d, want %d", p.Count, want)
	}
}

func TestEquiJoinSum(t *testing.T) {
	cat := smallCatalog(t, 10, 100, 3)
	e := New(cat)
	q := &relq.Query{
		Tables: []string{"part", "partsupp"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
		},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"}, Bound: 800, Width: 2000},
		},
		Constraint: relq.Constraint{Func: relq.AggSum,
			Attr: relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"}, Op: relq.CmpGE, Target: 1},
	}
	region := relq.PrefixRegion([]float64{5})
	got, err := e.Aggregate(q, region)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	want, err := e.NaiveAggregate(q, region)
	if err != nil {
		t.Fatalf("NaiveAggregate: %v", err)
	}
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Errorf("hash join: got count=%d sum=%v, naive count=%d sum=%v",
			got.Count, got.Sum, want.Count, want.Sum)
	}
	if got.Count == 0 {
		t.Error("join produced no tuples; fixture is degenerate")
	}
}

func TestBandJoin(t *testing.T) {
	cat := smallCatalog(t, 40, 40, 4)
	e := New(cat)
	q := &relq.Query{
		Tables: []string{"supplier", "part"},
		Dims: []relq.Dimension{
			{Kind: relq.JoinBand,
				Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
				Right: relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	for _, hi := range []float64{0, 1, 3.5, 10} {
		region := relq.PrefixRegion([]float64{hi})
		got, err := e.Aggregate(q, region)
		if err != nil {
			t.Fatalf("Aggregate(hi=%v): %v", hi, err)
		}
		want, err := e.NaiveAggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count {
			t.Errorf("band join hi=%v: got %d, naive %d", hi, got.Count, want.Count)
		}
	}
}

func TestCartesianFallback(t *testing.T) {
	cat := smallCatalog(t, 5, 5, 5)
	e := New(cat)
	q := &relq.Query{
		Tables:     []string{"supplier", "part"},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	p, err := e.Aggregate(q, relq.Region{})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if p.Count != 25 {
		t.Errorf("cartesian count = %d, want 25", p.Count)
	}
}

func TestMaxIntermediateGuard(t *testing.T) {
	cat := smallCatalog(t, 50, 50, 6)
	e := New(cat)
	e.MaxIntermediate = 100
	q := &relq.Query{
		Tables:     []string{"supplier", "part"},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	if _, err := e.Aggregate(q, relq.Region{}); err == nil {
		t.Error("expected intermediate-size error")
	}
}

func TestThreeTableJoin(t *testing.T) {
	cat := smallCatalog(t, 10, 60, 7)
	e := New(cat)
	q := &relq.Query{
		Tables: []string{"supplier", "part", "partsupp"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_suppkey"}},
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
		},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"}, Bound: 1000, Width: 2000},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "supplier", Column: "s_acctbal"}, Bound: 3000, Width: 10000},
		},
		Constraint: relq.Constraint{Func: relq.AggSum,
			Attr: relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"}, Op: relq.CmpGE, Target: 1},
	}
	for _, scores := range [][]float64{{0, 0}, {5, 0}, {0, 5}, {12.5, 30}} {
		region := relq.PrefixRegion(scores)
		got, err := e.Aggregate(q, region)
		if err != nil {
			t.Fatalf("Aggregate(%v): %v", scores, err)
		}
		want, err := e.NaiveAggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count || math.Abs(got.Sum-want.Sum) > 1e-9 {
			t.Errorf("scores %v: got (%d, %v), naive (%d, %v)",
				scores, got.Count, got.Sum, want.Count, want.Sum)
		}
	}
}

// Differential property: Aggregate == NaiveAggregate over random
// queries, regions and aggregates.
func TestDifferentialRandomQueries(t *testing.T) {
	cat := smallCatalog(t, 15, 60, 8)
	e := New(cat)
	rng := rand.New(rand.NewSource(99))

	aggs := []relq.Constraint{
		{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
		{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"}, Op: relq.CmpGE, Target: 1},
		{Func: relq.AggMax, Attr: relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"}, Op: relq.CmpGE, Target: 1},
		{Func: relq.AggMin, Attr: relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"}, Op: relq.CmpEQ, Target: 1},
		{Func: relq.AggAvg, Attr: relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"}, Op: relq.CmpEQ, Target: 1},
	}

	for trial := 0; trial < 40; trial++ {
		q := &relq.Query{
			Tables: []string{"part", "partsupp"},
			Fixed: []relq.FixedPred{
				{Kind: relq.FixedEquiJoin,
					Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
					Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
			},
			Dims: []relq.Dimension{
				{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
					Bound: rng.Float64() * 2000, Width: 2000},
				{Kind: relq.SelectGE, Col: relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"},
					Bound: rng.Float64() * 1000, Width: 1000},
			},
			Constraint: aggs[trial%len(aggs)],
		}
		if trial%3 == 0 {
			q.Fixed = append(q.Fixed, relq.FixedPred{
				Kind: relq.FixedRange, Col: relq.ColumnRef{Table: "part", Column: "p_size"},
				Lo: 0, Hi: float64(rng.Intn(50)),
			})
		}
		var region relq.Region
		switch trial % 3 {
		case 0:
			region = relq.PrefixRegion([]float64{rng.Float64() * 30, rng.Float64() * 30})
		case 1:
			region = relq.CellRegion([]int{rng.Intn(4), rng.Intn(4)}, 5)
		default:
			region = relq.SubQueryRegion([]int{1 + rng.Intn(3), 1 + rng.Intn(3)}, 1+rng.Intn(3), 4)
		}
		got, err := e.Aggregate(q, region)
		if err != nil {
			t.Fatalf("trial %d: Aggregate: %v", trial, err)
		}
		want, err := e.NaiveAggregate(q, region)
		if err != nil {
			t.Fatalf("trial %d: NaiveAggregate: %v", trial, err)
		}
		if got.Count != want.Count || math.Abs(got.Sum-want.Sum) > 1e-6 ||
			got.Min != want.Min || got.Max != want.Max {
			t.Errorf("trial %d region %v:\n got  %+v\n want %+v", trial, region, got, want)
		}
	}
}

func TestGridIndexSkipsEmptyCells(t *testing.T) {
	cat := smallCatalog(t, 10, 300, 9)
	e := New(cat)
	if err := e.BuildGridIndex("part", []string{"p_retailprice"}, 32); err != nil {
		t.Fatalf("BuildGridIndex: %v", err)
	}
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 2500, Width: 2000, // bound beyond domain max: every expansion region is empty
	})
	e.ResetStats()
	p, err := e.Aggregate(q, relq.CellRegion([]int{3}, 5))
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if p.Count != 0 {
		t.Errorf("count = %d, want 0", p.Count)
	}
	st := e.Snapshot()
	if st.CellsSkipped != 1 {
		t.Errorf("CellsSkipped = %d, want 1", st.CellsSkipped)
	}
	if st.RowsScanned != 0 {
		t.Errorf("RowsScanned = %d, want 0 (skip must avoid the scan)", st.RowsScanned)
	}

	// Index answers must agree with the naive oracle on occupied cells.
	q2 := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 500, Width: 2000,
	})
	for u := 0; u < 8; u++ {
		region := relq.CellRegion([]int{u}, 5)
		got, err := e.Aggregate(q2, region)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.NaiveAggregate(q2, region)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count {
			t.Errorf("cell u=%d: indexed %d, naive %d", u, got.Count, want.Count)
		}
	}
	e.DropGridIndex("part")
}

func TestViolationScan(t *testing.T) {
	cat := smallCatalog(t, 10, 50, 10)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 1000, Width: 2000,
	})
	rows, err := e.ViolationScan(q)
	if err != nil {
		t.Fatalf("ViolationScan: %v", err)
	}
	part, _ := cat.Table("part")
	if len(rows) != part.NumRows() {
		t.Errorf("rows = %d, want %d", len(rows), part.NumRows())
	}
	for _, rv := range rows {
		v, _ := part.NumericAt(int(rv.Row), 1)
		want := 0.0
		if v > 1000 {
			want = (v - 1000) / 2000 * 100
		}
		if math.Abs(rv.Viol[0]-want) > 1e-9 {
			t.Fatalf("row %d viol = %v, want %v", rv.Row, rv.Viol[0], want)
		}
		if rv.AggValue != 1 {
			t.Fatalf("COUNT(*) agg value = %v", rv.AggValue)
		}
	}

	// Join queries are rejected.
	qj := &relq.Query{
		Tables:     []string{"part", "partsupp"},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	if _, err := e.ViolationScan(qj); err == nil {
		t.Error("multi-table ViolationScan: expected error")
	}
}

func TestBindErrors(t *testing.T) {
	cat := smallCatalog(t, 5, 5, 11)
	e := New(cat)
	region := relq.Region{}
	cases := []*relq.Query{
		{Tables: []string{"nosuch"}, Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1}},
		{Tables: []string{"part"},
			Dims:       []relq.Dimension{{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "nocol"}, Bound: 1, Width: 1}},
			Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1}},
		{Tables: []string{"part"},
			Dims:       []relq.Dimension{{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "ghost", Column: "x"}, Bound: 1, Width: 1}},
			Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1}},
		{Tables: []string{"part"},
			Constraint: relq.Constraint{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "part", Column: "p_type"}, Op: relq.CmpGE, Target: 1}},
		{Tables: []string{"part"},
			Fixed:      []relq.FixedPred{{Kind: relq.FixedStringIn, Col: relq.ColumnRef{Table: "part", Column: "p_size"}, Values: []string{"x"}}},
			Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1}},
	}
	for i, q := range cases {
		r := region
		if len(q.Dims) == 1 {
			r = relq.PrefixRegion([]float64{1})
		}
		if _, err := e.Aggregate(q, r); err == nil {
			t.Errorf("case %d: expected bind error", i)
		}
	}

	// Region arity mismatch.
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 1000, Width: 2000,
	})
	if _, err := e.Aggregate(q, relq.Region{}); err == nil {
		t.Error("region arity mismatch: expected error")
	}
	if _, err := e.NaiveAggregate(q, relq.Region{}); err == nil {
		t.Error("naive region arity mismatch: expected error")
	}
}

func TestStatsAccounting(t *testing.T) {
	cat := smallCatalog(t, 5, 50, 12)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 1000, Width: 2000,
	})
	e.ResetStats()
	for i := 0; i < 3; i++ {
		if _, err := e.Aggregate(q, relq.PrefixRegion([]float64{0})); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Snapshot()
	if st.Queries != 3 {
		t.Errorf("Queries = %d, want 3", st.Queries)
	}
	// With the sorted-index access path, each selective query touches
	// only the driving range's rows — strictly fewer than 3 full scans.
	if st.RowsScanned <= 0 || st.RowsScanned >= 150 {
		t.Errorf("RowsScanned = %d, want in (0, 150)", st.RowsScanned)
	}
	// The index path and a full scan must agree on the result.
	p1, err := e.Aggregate(q, relq.PrefixRegion([]float64{0}))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.NaiveAggregate(q, relq.PrefixRegion([]float64{0}))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Count != p2.Count {
		t.Errorf("index path count %d != naive %d", p1.Count, p2.Count)
	}
}

func TestAggregateEmptyRegionShortCircuit(t *testing.T) {
	cat := smallCatalog(t, 5, 50, 13)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 1000, Width: 2000,
	})
	p, err := e.Aggregate(q, relq.Region{{Lo: 5, Hi: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Count != 0 {
		t.Errorf("empty region count = %d", p.Count)
	}
}

func TestSpecPartialThroughEngine(t *testing.T) {
	cat := smallCatalog(t, 5, 50, 14)
	e := New(cat)
	q := &relq.Query{
		Tables: []string{"part"},
		Constraint: relq.Constraint{Func: relq.AggAvg,
			Attr: relq.ColumnRef{Table: "part", Column: "p_retailprice"}, Op: relq.CmpEQ, Target: 1},
	}
	p, err := e.Aggregate(q, relq.Region{})
	if err != nil {
		t.Fatal(err)
	}
	spec := agg.Spec{Func: relq.AggAvg}
	got := spec.Final(p)
	part, _ := cat.Table("part")
	sum := 0.0
	for r := 0; r < part.NumRows(); r++ {
		v, _ := part.NumericAt(r, 1)
		sum += v
	}
	want := sum / float64(part.NumRows())
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AVG = %v, want %v", got, want)
	}
}

// Differential property over the full dimension vocabulary: EQ bands,
// GE bounds and coefficient band-joins mixed in one query, random
// regions, indexed vs naive execution.
func TestDifferentialMixedDimKinds(t *testing.T) {
	cat := smallCatalog(t, 20, 80, 61)
	e := New(cat)
	rng := rand.New(rand.NewSource(113))

	for trial := 0; trial < 30; trial++ {
		q := &relq.Query{
			Tables: []string{"supplier", "part"},
			Dims: []relq.Dimension{
				{Kind: relq.JoinBand,
					Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
					Right: relq.ColumnRef{Table: "part", Column: "p_partkey"},
					LCoef: float64(1 + trial%2), RCoef: 1,
					Width: 100},
				{Kind: relq.SelectEQ, Col: relq.ColumnRef{Table: "part", Column: "p_size"},
					Bound: float64(rng.Intn(50)), Width: 100},
				{Kind: relq.SelectGE, Col: relq.ColumnRef{Table: "supplier", Column: "s_acctbal"},
					Bound: rng.Float64() * 10000, Width: 10000},
			},
			Constraint: relq.Constraint{Func: relq.AggSum,
				Attr: relq.ColumnRef{Table: "part", Column: "p_retailprice"}, Op: relq.CmpGE, Target: 1},
		}
		var region relq.Region
		switch trial % 3 {
		case 0:
			region = relq.PrefixRegion([]float64{rng.Float64() * 20, rng.Float64() * 10, rng.Float64() * 40})
		case 1:
			region = relq.CellRegion([]int{rng.Intn(3), rng.Intn(3), rng.Intn(3)}, 4)
		default:
			region = relq.SubQueryRegion([]int{1 + rng.Intn(2), 1 + rng.Intn(2), 1 + rng.Intn(2)}, 1+rng.Intn(4), 3)
		}
		got, err := e.Aggregate(q, region)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := e.NaiveAggregate(q, region)
		if err != nil {
			t.Fatalf("trial %d naive: %v", trial, err)
		}
		if got.Count != want.Count || math.Abs(got.Sum-want.Sum) > 1e-6*(1+math.Abs(want.Sum)) {
			t.Errorf("trial %d region %v: got (%d, %v), naive (%d, %v)",
				trial, region, got.Count, got.Sum, want.Count, want.Sum)
		}
	}
}

// The incremental decomposition is exact for mixed dimension kinds too:
// summing all cells of a prefix equals the prefix aggregate.
func TestCellSumEqualsPrefixMixedKinds(t *testing.T) {
	cat := smallCatalog(t, 15, 60, 62)
	e := New(cat)
	q := &relq.Query{
		Tables: []string{"supplier", "part"},
		Dims: []relq.Dimension{
			{Kind: relq.JoinBand,
				Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
				Right: relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Width: 100},
			{Kind: relq.SelectEQ, Col: relq.ColumnRef{Table: "part", Column: "p_size"},
				Bound: 25, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	const step = 3.0
	u := []int{3, 4}
	total := agg.Zero()
	for a := 0; a <= u[0]; a++ {
		for b := 0; b <= u[1]; b++ {
			p, err := e.Aggregate(q, relq.CellRegion([]int{a, b}, step))
			if err != nil {
				t.Fatal(err)
			}
			total = agg.Merge(total, p)
		}
	}
	prefix, err := e.Aggregate(q, relq.PrefixRegion([]float64{float64(u[0]) * step, float64(u[1]) * step}))
	if err != nil {
		t.Fatal(err)
	}
	if total.Count != prefix.Count {
		t.Errorf("cell sum %d != prefix %d", total.Count, prefix.Count)
	}
}
