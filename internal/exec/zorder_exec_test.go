package exec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"acquire/internal/data"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

// twoDimRegions is an 8-region batch over the first two users dims
// (age, income) whose per-axis marginal masses sit around 0.3-0.55 —
// the regime where pruning on both interleaved axes beats a perfect
// single-column sort under the cost model.
func twoDimRegions() []relq.Region {
	var regions []relq.Region
	for i := 0; i < 8; i++ {
		h := 4 + float64(i)*2
		regions = append(regions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: h}})
	}
	return regions
}

// TestAutoClusterElectsZOrder drives a two-range-dimension workload
// through an engine with auto-clustering and Z-order admission enabled
// and checks the full curve-layout contract: the election picks the
// two-column interleave (ZOrderResorts), the catalog table carries the
// two-column ClusterSpec, steady-state scans skip blocks attributed to
// *both* axes, every batch stays bit-identical to a plain engine, and
// the layout does not flap once learned.
func TestAutoClusterElectsZOrder(t *testing.T) {
	const rows = 20000
	ctx := context.Background()
	newCat := func() *data.Catalog {
		cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return cat
	}
	ref := New(newCat())
	auto := New(newCat())
	auto.ClusterPolicy = eagerPolicy
	auto.SetAutoCluster(true)
	auto.SetZOrder(true)
	if !auto.ZOrderOn() {
		t.Fatal("ZOrderOn = false after SetZOrder(true)")
	}

	q := usersQuery(relq.AggCount, "", usersDims()[:2]...)
	regions := twoDimRegions()

	check := func(batch int) {
		t.Helper()
		want, err := ref.AggregateBatch(ctx, q, regions)
		if err != nil {
			t.Fatal(err)
		}
		got, err := auto.AggregateBatch(ctx, q, regions)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			exactEqual(t, fmt.Sprintf("batch %d region %d", batch, i), got[i], want[i])
		}
	}

	resortAt := -1
	for batch := 1; batch <= 10; batch++ {
		check(batch)
		if auto.Snapshot().ZOrderResorts >= 1 {
			resortAt = batch
			break
		}
	}
	if resortAt < 0 {
		t.Fatalf("no Z-order re-sort within 10 batches: stats %+v wstats %+v",
			auto.Snapshot(), auto.wstats.snapshot())
	}

	tbl, err := auto.Catalog().Table("users")
	if err != nil {
		t.Fatal(err)
	}
	cols, sorted := tbl.ClusterSpec()
	if len(cols) != 2 || cols[0] != "age" || cols[1] != "income" {
		t.Fatalf("ClusterSpec columns = %v, want [age income]", cols)
	}
	if sorted != rows {
		t.Fatalf("sorted prefix = %d, want %d", sorted, rows)
	}
	if col, _ := tbl.ClusterInfo(); col != "" {
		t.Fatalf("ClusterInfo on interleaved layout = %q, want empty", col)
	}

	// Steady state: answers still match, blocks are skipped, and the
	// skips are attributed to both interleaved axes — the property a
	// single-column sort cannot deliver.
	before := auto.Snapshot()
	zsBefore := auto.ZoneSkips()
	check(resortAt + 1)
	d := auto.Snapshot().Sub(before)
	if d.BlocksSkipped == 0 {
		t.Errorf("steady-state batch skipped no blocks: %+v", d)
	}
	zsAfter := auto.ZoneSkips()
	for _, axis := range []string{"users.age", "users.income"} {
		if zsAfter[axis] <= zsBefore[axis] {
			t.Errorf("axis %s skipped no blocks in steady state: before %d after %d (all: %v)",
				axis, zsBefore[axis], zsAfter[axis], zsAfter)
		}
	}

	// No flapping: the carried-forward statistics keep re-electing the
	// same interleave, which sameLayout turns into a no-op.
	for batch := 0; batch < 3; batch++ {
		check(resortAt + 2 + batch)
	}
	if s := auto.Snapshot(); s.Resorts != 1 || s.ZOrderResorts != 1 {
		t.Errorf("Resorts = %d, ZOrderResorts = %d after steady batches, want 1, 1",
			s.Resorts, s.ZOrderResorts)
	}
}

// TestResortDeferredDuringStorm is the deterministic scheduling test:
// with the pending-batch depth held above zero (as if other batches
// were mid-flight), a sweep that has every reason to re-sort defers
// instead — counted in DeferredResorts, layout untouched — and the
// moment the storm drains the next sweep performs the rewrite.
func TestResortDeferredDuringStorm(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 6000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	e.ClusterPolicy = eagerPolicy
	e.SetAutoCluster(true)

	// Aggregate (unlike AggregateBatch) feeds scan statistics without
	// ever sweeping, so the election becomes due without firing.
	q := usersQuery(relq.AggCount, "", usersDims()...)
	for _, r := range prefixRegions() {
		if _, err := e.Aggregate(q, r); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Snapshot(); s.Resorts != 0 || s.DeferredResorts != 0 {
		t.Fatalf("stats before any sweep: %+v", s)
	}

	// Storm in flight: the sweep must defer, not rewrite.
	e.pendingBatches.Add(1)
	e.maybeAutoCluster()
	s := e.Snapshot()
	if s.DeferredResorts < 1 {
		t.Fatalf("busy sweep recorded no deferred re-sort: %+v", s)
	}
	if s.Resorts != 0 {
		t.Fatalf("busy sweep re-sorted anyway: %+v", s)
	}
	tbl, err := cat.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	if cols, _ := tbl.ClusterSpec(); len(cols) != 0 {
		t.Fatalf("busy sweep changed the layout to %v", cols)
	}

	// Storm drained: the deferred decision lands on the next sweep.
	deferred := s.DeferredResorts
	e.pendingBatches.Add(-1)
	e.maybeAutoCluster()
	s = e.Snapshot()
	if s.Resorts != 1 {
		t.Fatalf("post-storm sweep did not re-sort: %+v", s)
	}
	if s.DeferredResorts != deferred {
		t.Errorf("post-storm sweep deferred again: %+v", s)
	}
	tbl, err = e.Catalog().Table("users")
	if err != nil {
		t.Fatal(err)
	}
	if cols, _ := tbl.ClusterSpec(); len(cols) != 1 {
		t.Fatalf("post-storm ClusterSpec = %v, want one elected column", cols)
	}
}

// TestSwapLayoutCarriesForwardStats checks the EWMA-prior satellite: a
// layout rewrite keeps the workload statistics as a half-weight prior
// (touch counts halved, selectivity EWMAs intact) instead of re-learning
// from zero, while a user-facing InvalidateTable still forgets them.
func TestSwapLayoutCarriesForwardStats(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 6000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	e.ClusterPolicy = eagerPolicy
	e.SetAutoCluster(true)
	q := usersQuery(relq.AggCount, "", usersDims()...)
	for _, r := range prefixRegions() {
		if _, err := e.Aggregate(q, r); err != nil {
			t.Fatal(err)
		}
	}

	prior := e.wstats.snapshot()["users"]
	if len(prior) == 0 {
		t.Fatal("no workload stats collected before the sweep")
	}
	e.maybeAutoCluster()
	if got := e.Snapshot().Resorts; got != 1 {
		t.Fatalf("Resorts = %d after sweep, want 1", got)
	}

	after := e.wstats.snapshot()["users"]
	if len(after) == 0 {
		t.Fatal("re-sort forgot the workload statistics entirely")
	}
	for ord, cw := range prior {
		got, ok := after[ord]
		if !ok {
			t.Fatalf("column ord %d lost its stats across the swap", ord)
		}
		if got.touches != cw.touches/2 {
			t.Errorf("ord %d touches = %d after swap, want %d (half of %d)",
				ord, got.touches, cw.touches/2, cw.touches)
		}
		if got.ewma != cw.ewma || !got.seeded {
			t.Errorf("ord %d ewma = (%v, seeded %v) after swap, want (%v, true)",
				ord, got.ewma, got.seeded, cw.ewma)
		}
	}

	// The explicit invalidation path keeps its contract: a user-declared
	// table mutation means the old statistics describe dead data.
	e.InvalidateTable("users")
	if s := e.wstats.snapshot(); len(s["users"]) != 0 {
		t.Errorf("InvalidateTable left workload stats behind: %+v", s)
	}
}

// TestZoneSkipSoundOnZOrderLayout extends the block-level soundness
// property to interleaved layouts: over a Z-ordered two-column table,
// whenever the per-axis zone tests skip a block (skipAxis), the firing
// axis provably admits no qualifying row in it — across randomized
// dimension shapes, two-sided intervals, and NaN/±Inf sprinkles, which
// must pin their blocks (a NaN-bearing block is never skippable on
// that axis).
func TestZoneSkipSoundOnZOrderLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 8 * blockRows
	totalSkips := 0
	for trial := 0; trial < 25; trial++ {
		tbl := data.NewTable("zt", data.MustSchema(
			data.Column{Name: "x", Type: data.Float64},
			data.Column{Name: "y", Type: data.Float64},
		))
		// A handful of non-finite rows per trial: enough to exercise the
		// pinning behavior without poisoning every block.
		specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
		special := make(map[int][2]int, 8) // row -> (column, special index)
		for k := 0; k < 8; k++ {
			special[rng.Intn(n)] = [2]int{rng.Intn(2), rng.Intn(3)}
		}
		for i := 0; i < n; i++ {
			row := [2]float64{rng.Float64() * 1000, rng.Float64() * 1000}
			if s, ok := special[i]; ok {
				row[s[0]] = specials[s[1]]
			}
			if err := tbl.AppendRow(data.FloatValue(row[0]), data.FloatValue(row[1])); err != nil {
				t.Fatal(err)
			}
		}
		zt, err := data.ZOrderBy(tbl, []string{"x", "y"}, 0)
		if err != nil {
			t.Fatal(err)
		}

		dims := make([]*relq.Dimension, 2)
		ivs := make([]relq.ViolInterval, 2)
		zps := make([]zonePred, 2)
		vecs := make([][]float64, 2)
		for ax := 0; ax < 2; ax++ {
			kind := []relq.DimKind{relq.SelectLE, relq.SelectGE, relq.SelectEQ}[rng.Intn(3)]
			d := &relq.Dimension{
				Kind:  kind,
				Bound: rng.Float64() * 1000,
				Width: 50 + rng.Float64()*500,
			}
			if kind == relq.SelectEQ {
				d.Width = 100
			}
			iv := relq.ViolInterval{Hi: rng.Float64() * 120}
			if rng.Intn(2) == 0 {
				iv.Lo = iv.Hi * rng.Float64()
			}
			vec, err := zt.NumericColumn(ax)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := pruneInterval(d, iv)
			dims[ax], ivs[ax], vecs[ax] = d, iv, vec
			zps[ax] = zonePred{zm: buildZoneMap(vec), lo: lo, hi: hi, ord: ax}
		}

		for bi := 0; bi < numBlocks(n); bi++ {
			ax := skipAxis(zps, bi)
			if ax < 0 {
				continue
			}
			totalSkips++
			blo, bhi := bi*blockRows, min((bi+1)*blockRows, n)
			for r := blo; r < bhi; r++ {
				if math.IsNaN(vecs[ax][r]) {
					t.Fatalf("trial %d: axis %d skipped block %d containing NaN row %d", trial, ax, bi, r)
				}
				if v := dims[ax].Violation(vecs[ax][r]); v > ivs[ax].Lo && v <= ivs[ax].Hi {
					t.Fatalf("trial %d axis %d iv=(%v,%v]: skipped block %d holds qualifying row %d (value %v, violation %v)",
						trial, ax, ivs[ax].Lo, ivs[ax].Hi, bi, r, vecs[ax][r], v)
				}
			}
		}
	}
	// The curve layout must make per-axis pruning actually engage: a
	// soundness test that never skips proves nothing.
	if totalSkips == 0 {
		t.Fatal("no block was ever skipped across all trials")
	}
}
