package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"acquire/internal/agg"
	"acquire/internal/index"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

// usersQuery builds a single-table users ACQ with the given dims and
// constraint spec.
func usersQuery(f relq.AggFunc, attr string, dims ...relq.Dimension) *relq.Query {
	c := relq.Constraint{Func: f, Op: relq.CmpEQ, Target: 1}
	if attr != "" {
		c.Attr = relq.ColumnRef{Table: "users", Column: attr}
	}
	return &relq.Query{Tables: []string{"users"}, Dims: dims, Constraint: c}
}

func usersDims() []relq.Dimension {
	return []relq.Dimension{
		{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "age"}, Bound: 40, Width: 62},
		{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "income"}, Bound: 80000, Width: 180000},
		{Kind: relq.SelectGE, Col: relq.ColumnRef{Table: "users", Column: "distance"}, Bound: 60, Width: 100},
	}
}

// TestBoxKernelMatchesScan is the property test of the box-aggregate
// kernel: across randomized regions and COUNT/SUM/MIN/MAX constraints,
// an engine answering through the aggregate grid must agree with a
// grid-less engine running the scan path — COUNT partials bit for bit,
// SUM within float re-association tolerance (the kernel merges
// cell-order partials, the scan folds row chunks).
func TestBoxKernelMatchesScan(t *testing.T) {
	const rows = 5000
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	scan := New(cat)
	kern := New(cat)
	cols := []string{"age", "income", "distance"}
	if err := kern.BuildGridAggIndex("users", cols, []string{"spend"}, index.BinsForRows(3, rows)); err != nil {
		t.Fatal(err)
	}

	dims := usersDims()
	queries := []*relq.Query{
		usersQuery(relq.AggCount, "", dims...),
		usersQuery(relq.AggSum, "spend", dims...),
		usersQuery(relq.AggMin, "spend", dims...),
		usersQuery(relq.AggMax, "spend", dims...),
	}

	rng := rand.New(rand.NewSource(99))
	randRegion := func() relq.Region {
		r := make(relq.Region, len(dims))
		for i := range r {
			hi := rng.Float64() * 80
			if rng.Intn(2) == 0 {
				r[i] = relq.ViolInterval{Lo: -1, Hi: hi} // prefix
			} else {
				r[i] = relq.ViolInterval{Lo: hi * rng.Float64(), Hi: hi} // cell-style band
			}
		}
		return r
	}

	before := kern.Snapshot()
	nonzero := 0
	for trial := 0; trial < 120; trial++ {
		region := randRegion()
		for _, q := range queries {
			want, err := scan.Aggregate(q, region)
			if err != nil {
				t.Fatal(err)
			}
			got, err := kern.Aggregate(q, region)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
				t.Fatalf("trial %d %v region %v:\nkernel %+v\nscan   %+v",
					trial, q.Constraint.Func, region, got, want)
			}
			if !agg.ApproxEqual(got, want, 1e-9) {
				t.Fatalf("trial %d %v region %v: sum diverged\nkernel %+v\nscan   %+v",
					trial, q.Constraint.Func, region, got, want)
			}
			if q.Constraint.Func == relq.AggCount && got.Sum != want.Sum {
				t.Fatalf("trial %d COUNT sum not bit-identical: %v vs %v", trial, got.Sum, want.Sum)
			}
			spec, err := agg.SpecFor(q.Constraint)
			if err != nil {
				t.Fatal(err)
			}
			gf, wf := spec.Final(got), spec.Final(want)
			if gf != wf && !(math.IsNaN(gf) && math.IsNaN(wf)) &&
				math.Abs(gf-wf) > 1e-9*(1+math.Abs(wf)) {
				t.Fatalf("trial %d: Final %v vs %v", trial, gf, wf)
			}
			if want.Count > 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("property test never produced a non-empty region — workload bug")
	}
	d := kern.Snapshot().Sub(before)
	if d.CellsMerged == 0 {
		t.Errorf("kernel never merged interior cells (CellsMerged = 0)")
	}
	if d.BoundaryRows == 0 {
		t.Errorf("kernel never scanned boundary rows (BoundaryRows = 0)")
	}
	if ds := scan.Snapshot(); ds.CellsMerged != 0 || ds.BoundaryRows != 0 {
		t.Errorf("grid-less engine used the kernel: %+v", ds)
	}
}

// TestBoxKernelSelectEQ covers the V-shaped kind: a single band
// (Lo <= 0) is kernel-eligible; a split band (Lo > 0) falls back to the
// scan path. Both must agree with the grid-less engine.
func TestBoxKernelSelectEQ(t *testing.T) {
	const rows = 3000
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scan := New(cat)
	kern := New(cat)
	if err := kern.BuildGridAggIndex("users", []string{"age", "income"}, nil, 40); err != nil {
		t.Fatal(err)
	}
	q := usersQuery(relq.AggCount, "",
		relq.Dimension{Kind: relq.SelectEQ, Col: relq.ColumnRef{Table: "users", Column: "age"}, Bound: 45, Width: 62},
		relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "income"}, Bound: 100000, Width: 180000},
	)

	single := relq.Region{{Lo: -1, Hi: 30}, {Lo: -1, Hi: 20}}
	split := relq.Region{{Lo: 10, Hi: 30}, {Lo: -1, Hi: 20}}
	for name, region := range map[string]relq.Region{"single-band": single, "split-band": split} {
		want, err := scan.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		before := kern.Snapshot()
		got, err := kern.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count {
			t.Fatalf("%s: count %d, want %d", name, got.Count, want.Count)
		}
		d := kern.Snapshot().Sub(before)
		engaged := d.CellsMerged+d.BoundaryRows > 0
		if name == "split-band" && engaged {
			t.Errorf("split SelectEQ band must fall back to the scan path, got %+v", d)
		}
	}
}

// TestBoxKernelFallback: joins, UDAs, fixed predicates and unindexed
// dimensions must bypass the kernel and still return scan-path results.
func TestBoxKernelFallback(t *testing.T) {
	const rows = 2000
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	scan := New(cat)
	kern := New(cat)
	if err := kern.BuildGridAggIndex("users", []string{"age", "income"}, nil, 32); err != nil {
		t.Fatal(err)
	}
	region := relq.Region{{Lo: -1, Hi: 25}, {Lo: -1, Hi: 25}}

	fixed := usersQuery(relq.AggCount, "",
		relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "age"}, Bound: 40, Width: 62},
		relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "income"}, Bound: 80000, Width: 180000},
	)
	fixed.Fixed = []relq.FixedPred{{
		Kind:   relq.FixedStringIn,
		Col:    relq.ColumnRef{Table: "users", Column: "gender"},
		Values: []string{"Women"},
	}}
	unindexed := usersQuery(relq.AggCount, "",
		relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "age"}, Bound: 40, Width: 62},
		relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "sessions"}, Bound: 20, Width: 50},
	)
	aggUnindexed := usersQuery(relq.AggSum, "spend",
		relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "age"}, Bound: 40, Width: 62},
		relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "income"}, Bound: 80000, Width: 180000},
	) // spend not materialized in this grid

	for name, q := range map[string]*relq.Query{
		"fixed-pred": fixed, "unindexed-dim": unindexed, "unmaterialized-agg": aggUnindexed,
	} {
		want, err := scan.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		before := kern.Snapshot()
		got, err := kern.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: kernel-engine %+v, scan-engine %+v", name, got, want)
		}
		if d := kern.Snapshot().Sub(before); d.CellsMerged != 0 || d.BoundaryRows != 0 {
			t.Errorf("%s: kernel engaged on ineligible query: %+v", name, d)
		}
	}
}

// TestBuildGridAggIdempotent: rebuilding with the same shape keeps the
// registered grid; a different shape replaces it.
func TestBuildGridAggIdempotent(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	if err := e.BuildGridAggIndex("users", []string{"age", "income"}, []string{"spend"}, 16); err != nil {
		t.Fatal(err)
	}
	g1 := e.grid("users")
	if err := e.BuildGridAggIndex("users", []string{"AGE", "Income"}, []string{"SPEND"}, 16); err != nil {
		t.Fatal(err)
	}
	if e.grid("users") != g1 {
		t.Error("same-shape rebuild replaced the grid")
	}
	if err := e.BuildGridAggIndex("users", []string{"age"}, nil, 16); err != nil {
		t.Fatal(err)
	}
	if e.grid("users") == g1 {
		t.Error("different-shape rebuild kept the old grid")
	}
}

// TestBoundaryZoneSkip covers the zone-consulting boundary-cell walk:
// on a clustered layout, a boundary cell's posting list is cut into
// per-block runs and runs whose blocks provably miss the pruned value
// hull are skipped outright. The walk must gather strictly fewer
// posting rows than the legacy per-row walk (the saving BlocksSkipped
// accounts for), while every partial stays bitwise identical — the
// per-row keep test enforces both interval sides, so a skipped run
// can only hold rows the filter would reject anyway.
func TestBoundaryZoneSkip(t *testing.T) {
	const n = 20 * blockRows
	cat := clusteredCatalog(t, n) // events(val sorted 0..1000, spend)
	e := New(cat)
	// 8 bins over 20 blocks: each cell spans ~2.5 physical blocks, so a
	// violation hull cutting mid-cell leaves whole out-of-range blocks
	// inside boundary cells for the zone test to drop.
	if err := e.BuildGridAggIndex("events", []string{"val"}, []string{"spend"}, 8); err != nil {
		t.Fatal(err)
	}

	dims := []relq.Dimension{{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "events", Column: "val"},
		Bound: 200, Width: 300,
	}}
	queries := []*relq.Query{
		{Tables: []string{"events"}, Dims: dims,
			Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1}},
		{Tables: []string{"events"}, Dims: dims,
			Constraint: relq.Constraint{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "events", Column: "spend"}, Op: relq.CmpEQ, Target: 1}},
	}
	// Bands with Lo > 0 exercise the two-sided hull; prefix regions the
	// one-sided one.
	regions := []relq.Region{
		{{Lo: -1, Hi: 30}}, {{Lo: -1, Hi: 75}},
		{{Lo: 10, Hi: 40}}, {{Lo: 33.3, Hi: 66.6}}, {{Lo: 0, Hi: 5}},
	}

	run := func(legacy bool) (parts []agg.Partial, d Stats) {
		t.Helper()
		e.SetLegacyScan(legacy)
		defer e.SetLegacyScan(false)
		before := e.Snapshot()
		for _, q := range queries {
			for _, region := range regions {
				p, err := e.Aggregate(q, region)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, p)
			}
		}
		return parts, e.Snapshot().Sub(before)
	}

	vecParts, vd := run(false)
	legParts, ld := run(true)
	for i := range vecParts {
		exactEqual(t, fmt.Sprintf("boundary query %d", i), vecParts[i], legParts[i])
	}

	if vd.BoundaryRows == 0 || ld.BoundaryRows == 0 {
		t.Fatalf("expected boundary-cell work on both walks: vec %+v, legacy %+v", vd, ld)
	}
	if vd.BlocksSkipped == 0 {
		t.Fatalf("zone-consulting walk skipped no posting runs: %+v", vd)
	}
	if vd.BoundaryRows >= ld.BoundaryRows {
		t.Fatalf("zone-consulting walk gathered %d boundary rows, legacy %d — expected a saving",
			vd.BoundaryRows, ld.BoundaryRows)
	}
	// The kernel (not the scan) answered: cells merged on both walks.
	if vd.CellsMerged == 0 || ld.CellsMerged == 0 {
		t.Fatalf("grid kernel not engaged: vec %+v, legacy %+v", vd, ld)
	}
}
