package exec

import (
	"math"
	"math/rand"
	"testing"

	"acquire/internal/relq"
)

// denseTestVec builds an n-row column with NaN, ±Inf and duplicated
// values mixed in — the inputs the branchless keep conditions must
// treat exactly like the row-at-a-time scan does.
func denseTestVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vec := make([]float64, n)
	for i := range vec {
		switch rng.Intn(25) {
		case 0:
			vec[i] = math.NaN()
		case 1:
			vec[i] = math.Inf(1)
		case 2:
			vec[i] = math.Inf(-1)
		case 3:
			vec[i] = 0
		default:
			vec[i] = rng.NormFloat64() * 100
		}
	}
	return vec
}

// identitySel returns the selection vector [lo, hi) — the dense
// kernels' implicit input, materialized so the scalar gather kernels
// can run over the same rows.
func identitySel(lo, hi int) []int32 {
	sel := make([]int32, hi-lo)
	for i := range sel {
		sel[i] = int32(lo + i)
	}
	return sel
}

// denseStrides exercises the 8-wide main loop, its scalar tail, and the
// degenerate spans around both.
func denseStrides(n int) [][2]int {
	return [][2]int{
		{0, n}, {0, 8}, {0, 7}, {0, 9}, {3, 3}, {5, 6},
		{1, n - 1}, {n - 17, n}, {8, 16}, {0, 1},
	}
}

func TestFilterRangeDenseMatchesScalar(t *testing.T) {
	const n = 300
	vec := denseTestVec(n, 1)
	preds := [][2]float64{
		{-50, 50}, {0, 0}, {math.Inf(-1), math.Inf(1)},
		{math.Inf(-1), -10}, {200, math.Inf(1)}, {10, 5}, // empty range
	}
	var buf [blockRows]int32
	for _, p := range preds {
		for _, s := range denseStrides(n) {
			lo, hi := s[0], s[1]
			got := filterRangeDense(buf[:0], vec, lo, hi, p[0], p[1])
			want := filterRange(identitySel(lo, hi), vec, p[0], p[1])
			if len(got) != len(want) {
				t.Fatalf("pred [%v,%v] rows [%d,%d): dense kept %d, scalar kept %d",
					p[0], p[1], lo, hi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pred [%v,%v] rows [%d,%d): row %d: dense %d vs scalar %d",
						p[0], p[1], lo, hi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFilterViolationDenseMatchesScalar(t *testing.T) {
	const n = 300
	vec := denseTestVec(n, 2)
	dims := []relq.Dimension{
		{Kind: relq.SelectLE, Bound: 10, Width: 60},
		{Kind: relq.SelectGE, Bound: -20, Width: 45},
		{Kind: relq.SelectEQ, Bound: 0, Width: 100},
	}
	var buf [blockRows]int32
	for di := range dims {
		d := &dims[di]
		for _, vhi := range []float64{0, 12.5, 100, math.Inf(1)} {
			for _, s := range denseStrides(n) {
				lo, hi := s[0], s[1]
				got := filterViolationDense(buf[:0], d, vec, lo, hi, vhi)
				want := filterViolation(identitySel(lo, hi), d, vec, vhi)
				if len(got) != len(want) {
					t.Fatalf("kind %d vhi=%v rows [%d,%d): dense kept %d, scalar kept %d",
						d.Kind, vhi, lo, hi, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("kind %d vhi=%v rows [%d,%d): row %d: dense %d vs scalar %d",
							d.Kind, vhi, lo, hi, i, got[i], want[i])
					}
				}
				// The survivors must be exactly the rows the per-row
				// Violation check keeps — the legacy scan's semantics.
				for _, r := range got {
					if d.Violation(vec[r]) > vhi {
						t.Fatalf("kind %d vhi=%v: kept row %d with violation %v",
							d.Kind, vhi, r, d.Violation(vec[r]))
					}
				}
			}
		}
	}
}

// TestZoneSkipNeverDropsQualifyingBlock is the block-level soundness
// property behind two-sided pruneInterval hulls: whenever the zone test
// built from pruneInterval skips a block, no row of that block can
// contribute to the final result — i.e. no value has a violation inside
// (iv.Lo, iv.Hi]. Randomized over dimension shapes, intervals (Lo > 0
// included) and clustered-ish data.
func TestZoneSkipNeverDropsQualifyingBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 16 * blockRows
	for trial := 0; trial < 60; trial++ {
		// Clustered-ish column: sorted base with local jitter, so zone
		// intervals are tight and skips actually fire.
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = float64(i)/float64(n)*1000 + rng.NormFloat64()*5
		}
		if trial%3 == 0 {
			vec[rng.Intn(n)] = math.NaN()
		}

		kind := []relq.DimKind{relq.SelectLE, relq.SelectGE, relq.SelectEQ}[rng.Intn(3)]
		d := &relq.Dimension{
			Kind:  kind,
			Bound: rng.Float64() * 1000,
			Width: 50 + rng.Float64()*500,
		}
		if kind == relq.SelectEQ {
			d.Width = 100
		}
		iv := relq.ViolInterval{Hi: rng.Float64() * 120}
		if rng.Intn(2) == 0 {
			iv.Lo = iv.Hi * rng.Float64()
		}

		lo, hi := pruneInterval(d, iv)
		zp := zonePred{zm: buildZoneMap(vec), lo: lo, hi: hi}
		skips := 0
		for bi := 0; bi < numBlocks(n); bi++ {
			if !zp.skip(bi) {
				continue
			}
			skips++
			blo, bhi := bi*blockRows, min((bi+1)*blockRows, n)
			for r := blo; r < bhi; r++ {
				if v := d.Violation(vec[r]); v > iv.Lo && v <= iv.Hi {
					t.Fatalf("trial %d kind %d iv=(%v,%v]: skipped block %d holds qualifying row %d (value %v, violation %v)",
						trial, kind, iv.Lo, iv.Hi, bi, r, vec[r], v)
				}
			}
		}
		_ = skips // skips may legitimately be 0 for wide intervals
	}
}

func BenchmarkFilterRangeDense(b *testing.B) {
	vec := make([]float64, blockRows)
	rng := rand.New(rand.NewSource(1))
	for i := range vec {
		vec[i] = rng.Float64() * 100
	}
	var buf [blockRows]int32
	b.SetBytes(blockRows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filterRangeDense(buf[:0], vec, 0, blockRows, 25, 75)
	}
}

func BenchmarkFilterViolationDense(b *testing.B) {
	vec := make([]float64, blockRows)
	rng := rand.New(rand.NewSource(1))
	for i := range vec {
		vec[i] = rng.Float64() * 100
	}
	d := &relq.Dimension{Kind: relq.SelectLE, Bound: 25, Width: 50}
	var buf [blockRows]int32
	b.SetBytes(blockRows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filterViolationDense(buf[:0], d, vec, 0, blockRows, 40)
	}
}
