package exec

import (
	"math"
	"testing"

	"acquire/internal/data"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

func TestChunks(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{10, 3, 3}, {3, 10, 3}, {0, 4, 0}, {100, 1, 1},
	}
	for _, c := range cases {
		parts := chunks(c.n, c.k)
		if len(parts) != c.want {
			t.Errorf("chunks(%d,%d) = %d parts, want %d", c.n, c.k, len(parts), c.want)
		}
		// Parts must tile [0, n) exactly.
		next := 0
		for _, p := range parts {
			if p[0] != next || p[1] <= p[0] {
				t.Fatalf("chunks(%d,%d): bad part %v", c.n, c.k, p)
			}
			next = p[1]
		}
		if c.n > 0 && next != c.n {
			t.Errorf("chunks(%d,%d) ends at %d", c.n, c.k, next)
		}
	}
}

// Parallel and sequential execution must produce identical counts and
// near-identical sums (chunked float association) on a table large
// enough to trigger fan-out.
func TestParallelMatchesSequential(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 150_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := &relq.Query{
		Tables: []string{"users"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "age"}, Bound: 40, Width: 61},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "income"}, Bound: 90000, Width: 180000},
		},
		Constraint: relq.Constraint{Func: relq.AggSum,
			Attr: relq.ColumnRef{Table: "users", Column: "spend"}, Op: relq.CmpGE, Target: 1},
	}

	seq := New(cat)
	seq.Parallelism = 1
	par := New(cat)
	par.Parallelism = 8

	for _, scores := range [][]float64{{0, 0}, {20, 10}, {60, 60}} {
		region := relq.PrefixRegion(scores)
		a, err := seq.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if a.Count != b.Count {
			t.Errorf("scores %v: counts differ %d vs %d", scores, a.Count, b.Count)
		}
		if math.Abs(a.Sum-b.Sum) > 1e-6*(1+math.Abs(a.Sum)) {
			t.Errorf("scores %v: sums differ %v vs %v", scores, a.Sum, b.Sum)
		}
		if a.Min != b.Min || a.Max != b.Max {
			t.Errorf("scores %v: extrema differ", scores)
		}
	}
}

// Parallel runs are deterministic: repeated executions give bit-equal
// sums (chunk layout is fixed by Parallelism, not scheduling).
func TestParallelDeterministic(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 120_000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	e.Parallelism = 4
	q := &relq.Query{
		Tables: []string{"users"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "income"}, Bound: 150000, Width: 180000},
		},
		Constraint: relq.Constraint{Func: relq.AggSum,
			Attr: relq.ColumnRef{Table: "users", Column: "spend"}, Op: relq.CmpGE, Target: 1},
	}
	region := relq.PrefixRegion([]float64{0})
	first, err := e.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := e.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if again.Sum != first.Sum || again.Count != first.Count {
			t.Fatalf("run %d differs: %v/%d vs %v/%d", i, again.Sum, again.Count, first.Sum, first.Count)
		}
	}
}

func TestParallelFilterSmallFallback(t *testing.T) {
	e := New(data.NewCatalog())
	e.Parallelism = 8
	out := e.parallelFilter(100, func(r int32) bool { return r%2 == 0 })
	if len(out) != 50 || out[0] != 0 || out[49] != 98 {
		t.Errorf("parallelFilter small = %d rows", len(out))
	}
	out = e.parallelFilterRows([]int32{5, 7, 8}, func(r int32) bool { return r > 6 })
	if len(out) != 2 {
		t.Errorf("parallelFilterRows = %v", out)
	}
}
