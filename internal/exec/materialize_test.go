package exec

import (
	"testing"

	"acquire/internal/relq"
)

func TestMaterializeSingleTable(t *testing.T) {
	cat := smallCatalog(t, 10, 100, 31)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 800, Width: 2000,
	})
	region := relq.PrefixRegion([]float64{0})
	rs, err := e.Materialize(q, region, 1000)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	agg, err := e.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rs.Rows)) != agg.Count {
		t.Errorf("materialized %d rows, aggregate count %d", len(rs.Rows), agg.Count)
	}
	if rs.Truncated {
		t.Error("unexpected truncation")
	}
	if len(rs.Columns) != 4 || rs.Columns[0] != "part.p_partkey" {
		t.Errorf("columns = %v", rs.Columns)
	}
	// Every returned row satisfies the predicate.
	for _, row := range rs.Rows {
		price, err := row[1].AsFloat()
		if err != nil || price > 800 {
			t.Fatalf("row violates predicate: %v (%v)", row, err)
		}
	}
}

func TestMaterializeLimit(t *testing.T) {
	cat := smallCatalog(t, 10, 100, 32)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 2100, Width: 2000,
	})
	rs, err := e.Materialize(q, relq.PrefixRegion([]float64{0}), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 7 || !rs.Truncated {
		t.Errorf("rows = %d truncated = %v", len(rs.Rows), rs.Truncated)
	}
	if _, err := e.Materialize(q, relq.PrefixRegion([]float64{0}), 0); err == nil {
		t.Error("limit 0: expected error")
	}
	if _, err := e.Materialize(q, relq.Region{}, 5); err == nil {
		t.Error("region arity: expected error")
	}
}

func TestMaterializeJoin(t *testing.T) {
	cat := smallCatalog(t, 10, 50, 33)
	e := New(cat)
	q := &relq.Query{
		Tables: []string{"part", "partsupp"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
		},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"}, Bound: 1000, Width: 2000},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	region := relq.PrefixRegion([]float64{3})
	rs, err := e.Materialize(q, region, 10000)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := e.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rs.Rows)) != agg.Count {
		t.Errorf("materialized %d, count %d", len(rs.Rows), agg.Count)
	}
	// Join columns line up: part.p_partkey == partsupp.ps_partkey.
	pkIdx, psIdx := -1, -1
	for i, c := range rs.Columns {
		switch c {
		case "part.p_partkey":
			pkIdx = i
		case "partsupp.ps_partkey":
			psIdx = i
		}
	}
	if pkIdx < 0 || psIdx < 0 {
		t.Fatalf("join columns missing: %v", rs.Columns)
	}
	for _, row := range rs.Rows {
		if row[pkIdx] != row[psIdx] {
			t.Fatalf("join key mismatch in row: %v vs %v", row[pkIdx], row[psIdx])
		}
	}
}

func TestMaterializeEmptyRegion(t *testing.T) {
	cat := smallCatalog(t, 5, 20, 34)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 1000, Width: 2000,
	})
	rs, err := e.Materialize(q, relq.Region{{Lo: 5, Hi: 5}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("rows = %d", len(rs.Rows))
	}
}
