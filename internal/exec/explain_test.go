package exec

import (
	"strings"
	"testing"

	"acquire/internal/relq"
)

func TestExplainSingleTable(t *testing.T) {
	cat := smallCatalog(t, 10, 400, 51)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 400, Width: 2000, // selective: index range scan expected
	})
	plan, err := e.Explain(q, relq.PrefixRegion([]float64{0}))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(plan.Steps) != 1 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	s := plan.Steps[0]
	if s.Access != "index range scan" || s.DrivingColumn != "p_retailprice" {
		t.Errorf("step = %+v", s)
	}
	if s.EstimatedRows <= 0 || s.EstimatedRows > 400 {
		t.Errorf("estimate = %d", s.EstimatedRows)
	}

	// A wide-open predicate degrades to a full scan.
	q2 := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 5000, Width: 2000,
	})
	plan2, err := e.Explain(q2, relq.PrefixRegion([]float64{0}))
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Steps[0].Access != "full scan" {
		t.Errorf("wide predicate should full-scan: %+v", plan2.Steps[0])
	}

	rendered := plan.String()
	if !strings.Contains(rendered, "index range scan on p_retailprice") {
		t.Errorf("rendered plan:\n%s", rendered)
	}
}

func TestExplainJoinOrder(t *testing.T) {
	cat := smallCatalog(t, 10, 100, 52)
	e := New(cat)
	q := &relq.Query{
		Tables: []string{"supplier", "part", "partsupp"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_suppkey"}},
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	plan, err := e.Explain(q, relq.Region{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	if plan.Steps[0].Join != "" {
		t.Errorf("first table has no join: %+v", plan.Steps[0])
	}
	for _, s := range plan.Steps[1:] {
		if s.Join != "hash equi-join" {
			t.Errorf("expected hash equi-join: %+v", s)
		}
	}
}

func TestExplainGridSkipAndBand(t *testing.T) {
	cat := smallCatalog(t, 30, 300, 53)
	e := New(cat)
	if err := e.BuildGridIndex("part", []string{"p_retailprice"}, 32); err != nil {
		t.Fatal(err)
	}
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 5000, Width: 2000, // beyond domain: expansion cells are empty
	})
	plan, err := e.Explain(q, relq.CellRegion([]int{2}, 5))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[0].Access != "grid-index skip" {
		t.Errorf("expected grid-index skip: %+v", plan.Steps[0])
	}
	e.DropGridIndex("part")

	// Band-join attachment.
	jq := &relq.Query{
		Tables: []string{"supplier", "part"},
		Dims: []relq.Dimension{
			{Kind: relq.JoinBand,
				Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
				Right: relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	plan, err = e.Explain(jq, relq.PrefixRegion([]float64{5}))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[1].Join != "band join" {
		t.Errorf("expected band join: %+v", plan.Steps[1])
	}

	// Disconnected tables fall back to cartesian.
	cq := &relq.Query{
		Tables:     []string{"supplier", "part"},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	plan, err = e.Explain(cq, relq.Region{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[1].Join != "cartesian" {
		t.Errorf("expected cartesian: %+v", plan.Steps[1])
	}
}

func TestExplainErrors(t *testing.T) {
	cat := smallCatalog(t, 5, 5, 54)
	e := New(cat)
	q := countQuery(relq.Dimension{
		Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"},
		Bound: 100, Width: 2000,
	})
	if _, err := e.Explain(q, relq.Region{}); err == nil {
		t.Error("region arity: expected error")
	}
	bad := &relq.Query{Tables: []string{"ghost"},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1}}
	if _, err := e.Explain(bad, relq.Region{}); err == nil {
		t.Error("unknown table: expected error")
	}
}
