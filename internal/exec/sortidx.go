package exec

import (
	"sort"
	"strings"

	"acquire/internal/data"
)

// sortedIdx is a lazily built secondary index: column values in sorted
// order with their row ids. Scans use it the way Postgres uses a B-tree
// index: the most selective range predicate drives candidate
// generation, and the remaining predicates are verified per candidate.
// This is what makes ACQUIRE's highly selective cell queries cheap
// relative to the broad whole-query probes of the baselines — the cost
// asymmetry the paper's evaluation rests on.
type sortedIdx struct {
	vals []float64
	rows []int32
}

// sortedIndex returns the cached sorted index for a column, building it
// on first use. Hits require the same *Table identity at the same row
// count (see sortEntry): appends and same-size Replaces both miss.
func (e *Engine) sortedIndex(t *data.Table, ord int) (*sortedIdx, error) {
	key := colKey{table: strings.ToLower(t.Name()), ord: ord}
	e.mu.RLock()
	ent, ok := e.sortIdx[key]
	e.mu.RUnlock()
	if ok && ent.src == t && ent.n == t.NumRows() {
		return ent.idx, nil
	}
	// Refresh through the column cache.
	vec, err := e.numericColumn(t, t.Schema().Columns[ord].Name)
	if err != nil {
		return nil, err
	}
	idx := &sortedIdx{
		vals: make([]float64, len(vec)),
		rows: make([]int32, len(vec)),
	}
	perm := make([]int32, len(vec))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool { return vec[perm[a]] < vec[perm[b]] })
	for i, r := range perm {
		idx.vals[i] = vec[r]
		idx.rows[i] = r
	}
	e.mu.Lock()
	e.sortIdx[key] = sortEntry{idx: idx, src: t, n: t.NumRows()}
	e.mu.Unlock()
	return idx, nil
}

// rangeSize counts how many rows fall in [lo, hi].
func (ix *sortedIdx) rangeSize(lo, hi float64) int {
	a := sort.SearchFloat64s(ix.vals, lo)
	b := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] > hi })
	if b < a {
		return 0
	}
	return b - a
}

// rangeRows returns the row ids with value in [lo, hi].
func (ix *sortedIdx) rangeRows(lo, hi float64) []int32 {
	a := sort.SearchFloat64s(ix.vals, lo)
	b := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] > hi })
	if b <= a {
		return nil
	}
	return ix.rows[a:b]
}
