package exec

import (
	"math"
	"math/rand"
	"testing"
)

func TestF64SetMapSemantics(t *testing.T) {
	s := newF64Set(4)
	s.add(1.5)
	s.add(math.Copysign(0, -1)) // -0 must alias +0
	s.add(math.NaN())           // NaN keys are unreachable

	if !s.contains(1.5) || s.contains(2.5) {
		t.Error("basic membership broken")
	}
	if !s.contains(0) || !s.contains(math.Copysign(0, -1)) {
		t.Error("-0 and +0 must be the same key, as in a Go map")
	}
	if s.contains(math.NaN()) {
		t.Error("NaN must never match (NaN != NaN)")
	}
}

func TestF64SetAgainstGoMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]float64, 500)
	for i := range keys {
		keys[i] = math.Floor(rng.Float64() * 100) // heavy duplication
	}
	s := newF64Set(len(keys))
	m := make(map[float64]struct{})
	for _, k := range keys {
		s.add(k)
		m[k] = struct{}{}
	}
	for probe := -10.0; probe <= 110; probe += 0.5 {
		_, want := m[probe]
		if got := s.contains(probe); got != want {
			t.Fatalf("contains(%v) = %v, map says %v", probe, got, want)
		}
	}
}

func TestF64GroupsMatchesMapBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vec := make([]float64, 800)
	for i := range vec {
		switch r := rng.Intn(20); {
		case r == 0:
			vec[i] = math.NaN()
		case r == 1:
			vec[i] = math.Copysign(0, -1)
		default:
			vec[i] = math.Floor(rng.Float64() * 40)
		}
	}
	rows := make([]int32, len(vec))
	for i := range rows {
		rows[i] = int32(i)
	}
	const coef = 2.5

	g := buildF64Groups(rows, vec, coef)

	// Oracle: the legacy map build. NaN-keyed entries exist in the map
	// but are unreachable by lookup; f64Groups drops them at build.
	ht := make(map[float64][]int32, len(rows))
	for _, r := range rows {
		ht[coef*vec[r]] = append(ht[coef*vec[r]], r)
	}
	probes := []float64{math.NaN(), math.Inf(1), 0, math.Copysign(0, -1)}
	for k := 0.0; k <= 100; k += 0.5 {
		probes = append(probes, k)
	}
	for _, k := range probes {
		want := ht[k] // map lookup with NaN misses — same as g.lookup
		got := g.lookup(k)
		if len(got) != len(want) {
			t.Fatalf("lookup(%v): %d rows, map has %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lookup(%v)[%d] = %d, map order has %d (per-key input order must be preserved)",
					k, i, got[i], want[i])
			}
		}
	}
}

func TestF64SetDenseAgainstGoMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := newF64Set(300)
	m := make(map[float64]struct{})
	for i := 0; i < 300; i++ {
		k := math.Floor(rng.Float64() * 2500) // integral: dense-eligible
		s.add(k)
		m[k] = struct{}{}
	}
	s.add(math.Copysign(0, -1))
	m[math.Copysign(0, -1)] = struct{}{}
	s.add(math.NaN())
	s.freeze()
	if s.dense == nil {
		t.Fatal("integral small-span keys must take the dense bitmap path")
	}
	probes := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0.5, 1e9, math.Copysign(0, -1)}
	for k := -20.0; k <= 2520; k += 1 {
		probes = append(probes, k)
	}
	for _, k := range probes {
		_, want := m[k]
		if got := s.contains(k); got != want {
			t.Fatalf("dense contains(%v) = %v, map says %v", k, got, want)
		}
	}
}

func TestF64SetDenseIneligible(t *testing.T) {
	frac := newF64Set(4)
	frac.add(1.5)
	frac.freeze()
	if frac.dense != nil {
		t.Error("fractional keys must not take the dense path")
	}
	sparse := newF64Set(4)
	sparse.add(0)
	sparse.add(1e9)
	sparse.freeze()
	if sparse.dense != nil {
		t.Error("a huge key span must not take the dense path")
	}
	inf := newF64Set(4)
	inf.add(math.Inf(1))
	inf.freeze()
	if inf.dense != nil {
		t.Error("infinite keys must not take the dense path")
	}
}

func TestF64GroupsDenseMatchesMapBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	vec := make([]float64, 600)
	for i := range vec {
		switch r := rng.Intn(25); {
		case r == 0:
			vec[i] = math.NaN()
		case r == 1:
			vec[i] = math.Copysign(0, -1)
		default:
			vec[i] = math.Floor(rng.Float64() * 900) // integral keys
		}
	}
	rows := make([]int32, len(vec))
	for i := range rows {
		rows[i] = int32(i)
	}

	g := buildF64Groups(rows, vec, 1)
	if !g.dense {
		t.Fatal("integral small-span keys must take the dense group build")
	}
	ht := make(map[float64][]int32, len(rows))
	for _, r := range rows {
		ht[vec[r]] = append(ht[vec[r]], r)
	}
	probes := []float64{math.NaN(), math.Inf(1), -3, 0.25, 1e9, 0, math.Copysign(0, -1)}
	for k := 0.0; k <= 910; k++ {
		probes = append(probes, k)
	}
	for _, k := range probes {
		want := ht[k]
		got := g.lookup(k)
		if len(got) != len(want) {
			t.Fatalf("dense lookup(%v): %d rows, map has %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dense lookup(%v)[%d] = %d, map order has %d", k, i, got[i], want[i])
			}
		}
	}
}

func TestHashF64NormalizesZero(t *testing.T) {
	if hashF64(normKey(0)) != hashF64(normKey(math.Copysign(0, -1))) {
		t.Error("+0 and -0 must hash identically after normKey")
	}
}
