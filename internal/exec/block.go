package exec

import (
	"math"
	"strings"

	"acquire/internal/data"
	"acquire/internal/relq"
)

// blockRows is the unit of vectorized execution: scans, gather-filters
// and the finalize fold all process rows in fixed blocks of this many
// entries, compacting a reusable selection vector per predicate instead
// of running one branchy multi-predicate loop per row. 1024 int32 row
// ids (4 KiB) plus one float64 column block (8 KiB) stay comfortably
// inside L1.
const blockRows = 1024

// zoneMap holds per-block min/max summaries of one column, aligned to
// blockRows-row blocks: block bi covers rows [bi*blockRows,
// (bi+1)*blockRows). A block whose [min, max] provably cannot satisfy a
// range predicate is skipped without touching any row. nan flags blocks
// containing at least one NaN: the scan path keeps NaN rows for fixed
// ranges (`v < lo || v > hi` is false for NaN) and for select
// dimensions (Violation(NaN) > hi is false), so a NaN-bearing block is
// never skippable.
//
// All-NaN blocks get {min:+Inf, max:-Inf}; the nan flag already makes
// them unskippable, and the degenerate interval keeps comparisons safe.
type zoneMap struct {
	mins []float64
	maxs []float64
	nan  []bool
}

// numBlocks returns the number of blockRows-sized blocks covering n rows.
func numBlocks(n int) int {
	return (n + blockRows - 1) / blockRows
}

// buildZoneMap summarizes a column vector into per-block min/max/NaN.
func buildZoneMap(vec []float64) *zoneMap {
	nb := numBlocks(len(vec))
	zm := &zoneMap{
		mins: make([]float64, nb),
		maxs: make([]float64, nb),
		nan:  make([]bool, nb),
	}
	for bi := 0; bi < nb; bi++ {
		lo := bi * blockRows
		hi := min(lo+blockRows, len(vec))
		mn, mx, hasNaN := math.Inf(1), math.Inf(-1), false
		for _, v := range vec[lo:hi] {
			if v != v {
				hasNaN = true
				continue
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		zm.mins[bi], zm.maxs[bi], zm.nan[bi] = mn, mx, hasNaN
	}
	return zm
}

// zoneMapFor returns the cached zone map for a column, building it on
// first use. Zone maps live alongside the column and sorted-index
// caches under the same cacheGen generation scheme: a table that has
// grown since the map was built rebuilds it, and InvalidateTable drops
// it with the rest of the table's derived state. vec must be the
// column's current vector (as resolved through numericColumn), so the
// build never re-fetches.
func (e *Engine) zoneMapFor(t *data.Table, ord int, vec []float64) *zoneMap {
	key := colKey{table: strings.ToLower(t.Name()), ord: ord}
	e.mu.RLock()
	zm, ok := e.zones[key]
	gen := e.cacheGen[key.table]
	e.mu.RUnlock()
	if ok && gen == t.NumRows() && len(zm.mins) == numBlocks(len(vec)) {
		return zm
	}
	zm = buildZoneMap(vec)
	e.mu.Lock()
	e.zones[key] = zm
	e.mu.Unlock()
	return zm
}

// zonePred is one block-skip test: skip a block when its zone interval
// provably misses [lo, hi] and the block holds no NaN (NaN rows pass
// the scan predicates this prunes for, so they pin their block).
type zonePred struct {
	zm     *zoneMap
	lo, hi float64
}

// skip reports whether block bi can be skipped outright.
func (zp *zonePred) skip(bi int) bool {
	return !zp.zm.nan[bi] && (zp.zm.maxs[bi] < zp.lo || zp.zm.mins[bi] > zp.hi)
}

// blockSkippable reports whether any zone predicate proves block bi
// empty of candidates.
func blockSkippable(zps []zonePred, bi int) bool {
	for i := range zps {
		if zps[i].skip(bi) {
			return true
		}
	}
	return false
}

// prunePad widens a finite pruning endpoint by a relative epsilon so
// float rounding between the violation arithmetic ((v-Bound)*(100/W))
// and the inverse bound arithmetic (Bound + hi*(W/100)) can only widen
// the admitted interval, never skip a block holding a qualifying row.
// Mirrors the box-aggregate kernel's padding discipline.
func prunePad(lo, hi float64) (float64, float64) {
	pad := 1e-9
	if !math.IsInf(lo, -1) {
		pad += 1e-9 * math.Abs(lo)
	}
	if !math.IsInf(hi, 1) {
		pad += 1e-9 * math.Abs(hi)
	}
	if !math.IsInf(lo, -1) {
		lo -= pad
	}
	if !math.IsInf(hi, 1) {
		hi += pad
	}
	return lo, hi
}

// pruneInterval returns the conservative value interval a select
// dimension admits under a region upper bound hi — the one-sided hull
// the scan's verify step actually enforces. The scan only rejects rows
// with Violation(v) > hi (the region's lower bound is checked later, in
// finalize), so pruning must not use the Lo side: for SelectLE every
// v <= BoundAt(hi) passes the scan, however negative its violation
// slack.
func pruneInterval(d *relq.Dimension, hi float64) (float64, float64) {
	switch d.Kind {
	case relq.SelectLE:
		return prunePad(math.Inf(-1), d.BoundAt(hi))
	case relq.SelectGE:
		return prunePad(d.BoundAt(hi), math.Inf(1))
	case relq.SelectEQ:
		band := d.BoundAt(hi)
		return prunePad(d.Bound-band, d.Bound+band)
	default:
		return math.Inf(-1), math.Inf(1)
	}
}

// The filter primitives below compact a selection vector in place:
// every surviving row id is written forward, so one pass applies one
// predicate to a whole block with no branch in the store path. The
// keep conditions are the exact negations of the row-at-a-time scan's
// reject conditions — including their NaN behavior — so a filter chain
// keeps precisely the rows the legacy verify loop keeps, in the same
// order.

// filterRange keeps rows with lo <= vec[r] <= hi, NaN included (the
// scan's reject test `v < lo || v > hi` is false for NaN).
func filterRange(sel []int32, vec []float64, lo, hi float64) []int32 {
	k := 0
	for _, r := range sel {
		v := vec[r]
		sel[k] = r
		if !(v < lo || v > hi) {
			k++
		}
	}
	return sel[:k]
}

// filterStringIn keeps rows whose string value is in the set.
func filterStringIn(sel []int32, vec []string, set map[string]struct{}) []int32 {
	k := 0
	for _, r := range sel {
		sel[k] = r
		if _, ok := set[vec[r]]; ok {
			k++
		}
	}
	return sel[:k]
}

// filterViolation keeps rows with Violation(vec[r]) <= hi (NaN values
// pass: their violation is NaN and NaN > hi is false, matching the
// row-at-a-time check). The per-kind loops inline the exact float
// expressions of relq.Dimension.Violation — same operations, same
// order — so results are bit-identical to calling it per row.
func filterViolation(sel []int32, d *relq.Dimension, vec []float64, hi float64) []int32 {
	k := 0
	switch d.Kind {
	case relq.SelectLE:
		bound, scale := d.Bound, 100/d.Width
		for _, r := range sel {
			v := vec[r]
			sel[k] = r
			if !(v > bound && (v-bound)*scale > hi) {
				k++
			}
		}
	case relq.SelectGE:
		bound, scale := d.Bound, 100/d.Width
		for _, r := range sel {
			v := vec[r]
			sel[k] = r
			if !(v < bound && (bound-v)*scale > hi) {
				k++
			}
		}
	case relq.SelectEQ:
		bound, scale := d.Bound, 100/d.Width
		for _, r := range sel {
			sel[k] = r
			if !(math.Abs(vec[r]-bound)*scale > hi) {
				k++
			}
		}
	default:
		for _, r := range sel {
			sel[k] = r
			if !(d.Violation(vec[r]) > hi) {
				k++
			}
		}
	}
	return sel[:k]
}

// filterSemi keeps rows whose scaled join key appears in the probe key
// set — the scan-level semi-join pushdown. NaN keys are dropped: a NaN
// key can never match any probe key in the hash join either.
func filterSemi(sel []int32, vec []float64, coef float64, set *f64Set) []int32 {
	k := 0
	for _, r := range sel {
		sel[k] = r
		if set.contains(coef * vec[r]) {
			k++
		}
	}
	return sel[:k]
}
