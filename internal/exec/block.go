package exec

import (
	"math"
	"strings"

	"acquire/internal/data"
	"acquire/internal/relq"
)

// blockRows is the unit of vectorized execution: scans, gather-filters
// and the finalize fold all process rows in fixed blocks of this many
// entries, compacting a reusable selection vector per predicate instead
// of running one branchy multi-predicate loop per row. 1024 int32 row
// ids (4 KiB) plus one float64 column block (8 KiB) stay comfortably
// inside L1.
const blockRows = 1024

// zoneMap holds per-block min/max summaries of one column, aligned to
// blockRows-row blocks: block bi covers rows [bi*blockRows,
// (bi+1)*blockRows). A block whose [min, max] provably cannot satisfy a
// range predicate is skipped without touching any row. nan flags blocks
// containing at least one NaN: the scan path keeps NaN rows for fixed
// ranges (`v < lo || v > hi` is false for NaN) and for select
// dimensions (Violation(NaN) > hi is false), so a NaN-bearing block is
// never skippable.
//
// All-NaN blocks get {min:+Inf, max:-Inf}; the nan flag already makes
// them unskippable, and the degenerate interval keeps comparisons safe.
type zoneMap struct {
	mins []float64
	maxs []float64
	nan  []bool
}

// numBlocks returns the number of blockRows-sized blocks covering n rows.
func numBlocks(n int) int {
	return (n + blockRows - 1) / blockRows
}

// buildZoneMap summarizes a column vector into per-block min/max/NaN.
func buildZoneMap(vec []float64) *zoneMap {
	nb := numBlocks(len(vec))
	zm := &zoneMap{
		mins: make([]float64, nb),
		maxs: make([]float64, nb),
		nan:  make([]bool, nb),
	}
	for bi := 0; bi < nb; bi++ {
		lo := bi * blockRows
		hi := min(lo+blockRows, len(vec))
		mn, mx, hasNaN := math.Inf(1), math.Inf(-1), false
		for _, v := range vec[lo:hi] {
			if v != v {
				hasNaN = true
				continue
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		zm.mins[bi], zm.maxs[bi], zm.nan[bi] = mn, mx, hasNaN
	}
	return zm
}

// zoneMapFor returns the cached zone map for a column, building it on
// first use. Zone maps live alongside the column and sorted-index
// caches under the same table-identity scheme: a hit requires the exact
// *Table the map was built from at the same column length, so both
// appends and same-size catalog Replaces (auto-clustering re-sorts)
// rebuild, and InvalidateTable drops the entry with the rest of the
// table's derived state. vec must be the column's current vector (as
// resolved through numericColumn), so the build never re-fetches.
func (e *Engine) zoneMapFor(t *data.Table, ord int, vec []float64) *zoneMap {
	key := colKey{table: strings.ToLower(t.Name()), ord: ord}
	e.mu.RLock()
	ent, ok := e.zones[key]
	e.mu.RUnlock()
	if ok && ent.src == t && ent.n == len(vec) {
		return ent.zm
	}
	zm := buildZoneMap(vec)
	e.mu.Lock()
	e.zones[key] = zoneEntry{zm: zm, src: t, n: len(vec)}
	e.mu.Unlock()
	return zm
}

// zonePred is one block-skip test: skip a block when its zone interval
// provably misses [lo, hi] and the block holds no NaN (NaN rows pass
// the scan predicates this prunes for, so they pin their block). ord
// records the column ordinal the predicate prunes on, so skips can be
// attributed per axis — the visibility that tells a Z-order layout's
// operator that *both* interleaved dimensions are earning their keep.
type zonePred struct {
	zm     *zoneMap
	lo, hi float64
	ord    int
}

// skip reports whether block bi can be skipped outright.
func (zp *zonePred) skip(bi int) bool {
	return !zp.zm.nan[bi] && (zp.zm.maxs[bi] < zp.lo || zp.zm.mins[bi] > zp.hi)
}

// skipAxis returns the index (into zps) of the first predicate proving
// block bi empty of candidates, or -1 when the block must be visited.
// Attribution goes to the first firing predicate: a block failing on
// several axes counts once, under the earliest axis in predicate order.
func skipAxis(zps []zonePred, bi int) int {
	for i := range zps {
		if zps[i].skip(bi) {
			return i
		}
	}
	return -1
}

// blockSkippable reports whether any zone predicate proves block bi
// empty of candidates.
func blockSkippable(zps []zonePred, bi int) bool {
	return skipAxis(zps, bi) >= 0
}

// prunePad widens a finite pruning endpoint by a relative epsilon so
// float rounding between the violation arithmetic ((v-Bound)*(100/W))
// and the inverse bound arithmetic (Bound + hi*(W/100)) can only widen
// the admitted interval, never skip a block holding a qualifying row.
// Mirrors the box-aggregate kernel's padding discipline.
func prunePad(lo, hi float64) (float64, float64) {
	pad := 1e-9
	if !math.IsInf(lo, -1) {
		pad += 1e-9 * math.Abs(lo)
	}
	if !math.IsInf(hi, 1) {
		pad += 1e-9 * math.Abs(hi)
	}
	if !math.IsInf(lo, -1) {
		lo -= pad
	}
	if !math.IsInf(hi, 1) {
		hi += pad
	}
	return lo, hi
}

// pruneInterval returns the conservative value interval a select
// dimension admits under a region interval — the hull used for
// zone-map block skipping on full scans.
//
// The Hi side is what the scan's verify step enforces (rows with
// Violation(v) > iv.Hi are rejected at scan time), so it always prunes.
// The Lo side is enforced only later — per surviving tuple, in
// finalize's `v > iv.Lo && v <= iv.Hi` check and Materialize's
// region.Contains — but that is exactly what makes Lo pruning sound for
// the monotone kinds: a block whose every value has Violation <= iv.Lo
// contributes no tuple that survives finalize, so dropping it cannot
// change any aggregate, violation stream, or materialized result. For
// SelectLE violation grows with v, so iv.Lo > 0 yields the sound lower
// bound v > BoundAt(iv.Lo); SelectGE mirrors it. SelectEQ's admitted
// set under iv.Lo > 0 is a band with a hole in the middle — not a
// single interval — so only its outer (Hi) band prunes.
//
// Candidate lists on zone-pruned full scans may therefore be a subset
// of the legacy path's (rows that could never reach the final result);
// surviving tuples, their order, and every aggregate bit are unchanged.
func pruneInterval(d *relq.Dimension, iv relq.ViolInterval) (float64, float64) {
	lo, hi := math.Inf(-1), math.Inf(1)
	switch d.Kind {
	case relq.SelectLE:
		hi = d.BoundAt(iv.Hi)
		if iv.Lo > 0 {
			lo = d.BoundAt(iv.Lo)
		}
	case relq.SelectGE:
		lo = d.BoundAt(iv.Hi)
		if iv.Lo > 0 {
			hi = d.BoundAt(iv.Lo)
		}
	case relq.SelectEQ:
		band := d.BoundAt(iv.Hi)
		lo, hi = d.Bound-band, d.Bound+band
	default:
		return lo, hi
	}
	return prunePad(lo, hi)
}

// The filter primitives below compact a selection vector in place in
// SIMD-friendly shape (the gonum/asm idiom, pure Go): the surviving row
// id is stored unconditionally and the output cursor advances by a
// branchless boolean-to-int increment (`k += b2i(keep)`), so the store
// path compiles to compare + SETcc + add with no data-dependent branch
// for the predictor to miss on mixed-selectivity blocks. Dense variants
// (filterRangeDense / filterViolationDense) run the chain's first
// predicate straight over a contiguous column stride, emitting row ids
// without the identity-fill + gather round trip. The keep conditions
// are the exact negations of the row-at-a-time scan's reject
// conditions — including their NaN behavior — so a filter chain keeps
// precisely the rows the legacy verify loop keeps, in the same order.

// b2i converts a predicate result to an output-cursor increment. The
// compiler lowers it to SETcc, keeping compaction loops branch-free.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// filterRange keeps rows with lo <= vec[r] <= hi, NaN included (the
// scan's reject test `v < lo || v > hi` is false for NaN).
func filterRange(sel []int32, vec []float64, lo, hi float64) []int32 {
	k := 0
	for _, r := range sel {
		v := vec[r]
		sel[k] = r
		k += b2i(!(v < lo || v > hi))
	}
	return sel[:k]
}

// filterRangeDense filters the contiguous rows [lo, hi) of a column
// against [plo, phi], appending surviving row ids into buf — the dense
// first-predicate kernel of a full block scan. The main loop runs
// 8-wide over a fixed stride: each lane is an independent load +
// compare + unconditional store + SETcc advance, the shape
// auto-vectorizers and wide cores both like.
func filterRangeDense(buf []int32, vec []float64, lo, hi int, plo, phi float64) []int32 {
	sel := buf[:cap(buf)]
	col := vec[lo:hi]
	base := int32(lo)
	k, i := 0, 0
	for ; i+8 <= len(col); i += 8 {
		v0, v1, v2, v3 := col[i], col[i+1], col[i+2], col[i+3]
		v4, v5, v6, v7 := col[i+4], col[i+5], col[i+6], col[i+7]
		r := base + int32(i)
		sel[k] = r
		k += b2i(!(v0 < plo || v0 > phi))
		sel[k] = r + 1
		k += b2i(!(v1 < plo || v1 > phi))
		sel[k] = r + 2
		k += b2i(!(v2 < plo || v2 > phi))
		sel[k] = r + 3
		k += b2i(!(v3 < plo || v3 > phi))
		sel[k] = r + 4
		k += b2i(!(v4 < plo || v4 > phi))
		sel[k] = r + 5
		k += b2i(!(v5 < plo || v5 > phi))
		sel[k] = r + 6
		k += b2i(!(v6 < plo || v6 > phi))
		sel[k] = r + 7
		k += b2i(!(v7 < plo || v7 > phi))
	}
	for ; i < len(col); i++ {
		v := col[i]
		sel[k] = base + int32(i)
		k += b2i(!(v < plo || v > phi))
	}
	return sel[:k]
}

// filterStringIn keeps rows whose string value is in the set. (Map
// probes keep a branch — hashing dominates here anyway.)
func filterStringIn(sel []int32, vec []string, set map[string]struct{}) []int32 {
	k := 0
	for _, r := range sel {
		sel[k] = r
		if _, ok := set[vec[r]]; ok {
			k++
		}
	}
	return sel[:k]
}

// filterViolation keeps rows with Violation(vec[r]) <= hi (NaN values
// pass: their violation is NaN and NaN > hi is false, matching the
// row-at-a-time check). The per-kind loops inline the exact float
// expressions of relq.Dimension.Violation — same operations, same
// order — so results are bit-identical to calling it per row.
func filterViolation(sel []int32, d *relq.Dimension, vec []float64, hi float64) []int32 {
	k := 0
	switch d.Kind {
	case relq.SelectLE:
		bound, scale := d.Bound, 100/d.Width
		for _, r := range sel {
			v := vec[r]
			sel[k] = r
			k += b2i(!(v > bound && (v-bound)*scale > hi))
		}
	case relq.SelectGE:
		bound, scale := d.Bound, 100/d.Width
		for _, r := range sel {
			v := vec[r]
			sel[k] = r
			k += b2i(!(v < bound && (bound-v)*scale > hi))
		}
	case relq.SelectEQ:
		bound, scale := d.Bound, 100/d.Width
		for _, r := range sel {
			sel[k] = r
			k += b2i(!(math.Abs(vec[r]-bound)*scale > hi))
		}
	default:
		for _, r := range sel {
			sel[k] = r
			k += b2i(!(d.Violation(vec[r]) > hi))
		}
	}
	return sel[:k]
}

// filterViolationDense is filterViolation's dense first-predicate form:
// it evaluates the dimension's violation over the contiguous rows
// [lo, hi) of its column, appending survivors into buf. Same exact
// float expressions, 8-wide strides for the two monotone kinds.
func filterViolationDense(buf []int32, d *relq.Dimension, vec []float64, lo, hi int, vhi float64) []int32 {
	sel := buf[:cap(buf)]
	col := vec[lo:hi]
	base := int32(lo)
	k, i := 0, 0
	switch d.Kind {
	case relq.SelectLE:
		bound, scale := d.Bound, 100/d.Width
		for ; i+8 <= len(col); i += 8 {
			r := base + int32(i)
			for j := 0; j < 8; j++ {
				v := col[i+j]
				sel[k] = r + int32(j)
				k += b2i(!(v > bound && (v-bound)*scale > vhi))
			}
		}
		for ; i < len(col); i++ {
			v := col[i]
			sel[k] = base + int32(i)
			k += b2i(!(v > bound && (v-bound)*scale > vhi))
		}
	case relq.SelectGE:
		bound, scale := d.Bound, 100/d.Width
		for ; i+8 <= len(col); i += 8 {
			r := base + int32(i)
			for j := 0; j < 8; j++ {
				v := col[i+j]
				sel[k] = r + int32(j)
				k += b2i(!(v < bound && (bound-v)*scale > vhi))
			}
		}
		for ; i < len(col); i++ {
			v := col[i]
			sel[k] = base + int32(i)
			k += b2i(!(v < bound && (bound-v)*scale > vhi))
		}
	case relq.SelectEQ:
		bound, scale := d.Bound, 100/d.Width
		for ; i < len(col); i++ {
			sel[k] = base + int32(i)
			k += b2i(!(math.Abs(col[i]-bound)*scale > vhi))
		}
	default:
		for ; i < len(col); i++ {
			sel[k] = base + int32(i)
			k += b2i(!(d.Violation(col[i]) > vhi))
		}
	}
	return sel[:k]
}

// filterSemi keeps rows whose scaled join key appears in the probe key
// set — the scan-level semi-join pushdown. NaN keys are dropped: a NaN
// key can never match any probe key in the hash join either.
func filterSemi(sel []int32, vec []float64, coef float64, set *f64Set) []int32 {
	k := 0
	for _, r := range sel {
		sel[k] = r
		k += b2i(set.contains(coef * vec[r]))
	}
	return sel[:k]
}
