package exec

import (
	"context"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/obs"
	"acquire/internal/relq"
)

// Evaluator is the full evaluation-engine surface the rest of the
// repository programs against: the core.Evaluator query contract plus
// the operational controls (statistics, observability, indexes,
// caching, invalidation) that baselines, the harness and sessions use.
//
// Two implementations exist: *Engine — the monolithic executor — and
// *ShardedEvaluator, which scatter-gathers the same work across
// range-partitioned in-process shards. Everything that accepts an
// Evaluator is therefore shard-ready; a future multi-process/RPC shard
// backend only has to satisfy this interface to slot in (a transport
// swap, not a rewrite).
//
// Implementations must be deterministic — identical results for every
// worker count and shard count (modulo float SUM association across
// shard boundaries, bounded by agg.ApproxEqual's tolerance) — and must
// stop early when the batch context is cancelled.
type Evaluator interface {
	// Aggregate executes the query restricted to one region — the
	// cache-bypassing oracle path.
	Aggregate(q *relq.Query, region relq.Region) (agg.Partial, error)
	// AggregateBatch executes one partial per region on a worker pool.
	AggregateBatch(ctx context.Context, q *relq.Query, regions []relq.Region) ([]agg.Partial, error)
	// Catalog returns the full (unsharded) catalog: refinement models
	// read domain statistics from it.
	Catalog() *data.Catalog

	// Snapshot / ResetStats expose the cumulative work counters.
	Snapshot() Stats
	ResetStats()

	// SetParallelism bounds the evaluation worker pool(s); 0 restores
	// GOMAXPROCS. Results are identical for every worker count.
	SetParallelism(workers int)

	// SetLegacyScan(true) switches from the block-vectorized scan path
	// (the default) to the row-at-a-time legacy path. Both are
	// bit-identical; the legacy path serves as equivalence oracle and
	// operational escape hatch.
	SetLegacyScan(on bool)

	// SetAutoCluster(true) turns on workload-adaptive clustering: scans
	// feed per-column range statistics and the engine re-sorts tables
	// around the learned dominant column between batches (physical row
	// ids of later ViolationScan/Materialize calls refer to the new
	// layout; values and aggregates are unchanged).
	SetAutoCluster(on bool)

	// SetZOrder(true) admits two-column Z-order (space-filling-curve)
	// layouts into the auto-clustering election: when two range columns
	// both carry workload weight, the table may be re-laid along their
	// interleaved rank curve so zone maps prune on both axes. No-op
	// unless auto-clustering is enabled.
	SetZOrder(on bool)

	// SetObserver attaches (nil detaches) an observer; Observer returns
	// the current one (nil-safe for phase timing).
	SetObserver(o *obs.Observer)
	Observer() *obs.Observer

	// ViolationScan is the Top-k baseline's single-table primitive.
	ViolationScan(q *relq.Query) ([]RowViolations, error)

	// Grid-index management (§7.4 bitmap and aggregate-augmented grid).
	BuildGridIndex(table string, columns []string, binsPerDim int) error
	BuildGridAggIndex(table string, columns, aggCols []string, binsPerDim int) error
	DropGridIndex(table string)

	// EnableRegionCache attaches region caching with maxBytes total
	// capacity (<= 0 detaches); InvalidateRegionCache drops every
	// cached partial; InvalidateTable drops all state derived from one
	// table's contents after an in-place mutation.
	EnableRegionCache(maxBytes int64)
	InvalidateRegionCache()
	InvalidateTable(table string)
}

var (
	_ Evaluator = (*Engine)(nil)
	_ Evaluator = (*ShardedEvaluator)(nil)
)
