package exec

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/exec/regioncache"
	"acquire/internal/index"
	"acquire/internal/obs"
	"acquire/internal/relq"
)

// ShardedEvaluator executes queries by scatter-gather over N
// range-partitioned in-process shards, the architectural form of the
// §2.6 merge rule: each shard owns a full Engine over its shard
// catalog (its own column/sort caches, grid indexes and region cache,
// so hot-path state is shard-local and uncontended), AggregateBatch
// scatters every region to all shards in parallel, and the per-shard
// partials fold back in fixed shard order — COUNT/SUM add, MIN/MAX
// compare, AVG recomposes from SUM+COUNT.
//
// The partitioner cuts one fact table into contiguous row ranges and
// broadcasts the rest (see data.Partitioner), so each result tuple of
// a fact-referencing query lives in exactly one shard and the merged
// partial equals the monolithic one: COUNT/MIN/MAX bit-identically,
// SUM up to float re-association across shard boundaries (within
// agg.ApproxEqual tolerance). Queries that do not reference the fact
// table are routed whole to shard 0 — scattering them would count the
// broadcast tables once per shard. The fixed merge order makes results
// deterministic for every worker count; at one shard the fold is the
// identity, so a single-shard evaluator is bit-identical to a plain
// Engine.
//
// Shards are in-process behind the Evaluator interface; a later
// multi-process/RPC backend replaces the engine slice with stubs
// speaking the same contract — a transport swap, not a rewrite.
type ShardedEvaluator struct {
	cat     *data.Catalog
	part    *data.Partition
	engines []*Engine

	// Parallelism caps the scatter worker pool; 0 means GOMAXPROCS.
	Parallelism int

	// Scatter-layer counters (shard-engine work lands in the engines'
	// own Stats; Snapshot merges those).
	scatters atomic.Int64
	routed   atomic.Int64
	partials atomic.Int64

	obsShard atomic.Pointer[shardedObs]
}

// shardedObs holds the pre-resolved scatter-layer metric handles.
type shardedObs struct {
	o         *obs.Observer
	partials  *obs.Counter
	scatters  *obs.Counter
	routed    *obs.Counter
	regions   []*obs.Counter // per shard
	skew      *obs.Gauge     // slowest/fastest shard busy time per scatter round
	straggler *obs.Histogram // slowest shard's busy time per scatter round
}

// clock returns the observer's clock (Real when detached) — the
// scatter timing path works with or without an attached observer.
func (so *shardedObs) clock() obs.Clock {
	if so == nil {
		return obs.Real
	}
	return so.o.Clock()
}

// NewSharded partitions the catalog into n shards (fact table = the
// largest; see data.Partitioner) and builds one engine per shard.
func NewSharded(cat *data.Catalog, n int) (*ShardedEvaluator, error) {
	return NewShardedOn(cat, "", n)
}

// NewShardedOn is NewSharded with an explicitly designated fact table.
func NewShardedOn(cat *data.Catalog, factTable string, n int) (*ShardedEvaluator, error) {
	part, err := data.Partitioner{Shards: n, Table: factTable}.Partition(cat)
	if err != nil {
		return nil, err
	}
	sv := &ShardedEvaluator{cat: cat, part: part}
	for i := 0; i < part.NumShards(); i++ {
		sv.engines = append(sv.engines, New(part.Shard(i).Catalog))
	}
	return sv, nil
}

// Catalog returns the full parent catalog: refinement models anchor
// predicate domains on whole-table statistics, so searches behave
// identically with and without sharding.
func (sv *ShardedEvaluator) Catalog() *data.Catalog { return sv.cat }

// NumShards returns the shard count.
func (sv *ShardedEvaluator) NumShards() int { return len(sv.engines) }

// FactTable returns the range-partitioned table's name.
func (sv *ShardedEvaluator) FactTable() string { return sv.part.Table() }

// scatterable reports whether the query references the fact table —
// the condition under which per-shard execution partitions the result
// tuples (and scattering is therefore correct).
func (sv *ShardedEvaluator) scatterable(q *relq.Query) bool {
	for _, t := range q.Tables {
		if strings.EqualFold(t, sv.part.Table()) {
			return true
		}
	}
	return false
}

func (sv *ShardedEvaluator) workers() int {
	w := sv.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetParallelism bounds both the scatter pool and every shard engine's
// internal worker pool. 0 restores GOMAXPROCS.
func (sv *ShardedEvaluator) SetParallelism(workers int) {
	sv.Parallelism = workers
	for _, e := range sv.engines {
		e.Parallelism = workers
	}
}

// SetLegacyScan switches every shard engine between the vectorized and
// legacy scan paths.
func (sv *ShardedEvaluator) SetLegacyScan(on bool) {
	for _, e := range sv.engines {
		e.SetLegacyScan(on)
	}
}

// SetAutoCluster switches workload-adaptive clustering on every shard
// engine. Each shard learns from its own scans and re-sorts its own
// row range — shard catalogs are independent, so a re-sort never leaks
// across shard boundaries and the fixed-order merge stays deterministic.
func (sv *ShardedEvaluator) SetAutoCluster(on bool) {
	for _, e := range sv.engines {
		e.SetAutoCluster(on)
	}
}

// SetZOrder admits Z-order layouts into every shard engine's election.
// Each shard's sweep elects independently against its own row range's
// statistics, so shards may legitimately diverge — an interior shard
// whose rows all satisfy the workload's bound on one column sees that
// column's marginal selectivity as ~1 and clusters on the other axis,
// while boundary shards keep the two-axis (or single-axis) layout that
// pays there.
func (sv *ShardedEvaluator) SetZOrder(on bool) {
	for _, e := range sv.engines {
		e.SetZOrder(on)
	}
}

// Aggregate executes one region by serial scatter-gather (the oracle
// path: shard engines bypass their region caches exactly as
// Engine.Aggregate does).
func (sv *ShardedEvaluator) Aggregate(q *relq.Query, region relq.Region) (agg.Partial, error) {
	if !sv.scatterable(q) {
		sv.countRouted()
		return sv.engines[0].Aggregate(q, region)
	}
	sv.countScatter(1)
	var out agg.Partial
	for s, e := range sv.engines {
		p, err := e.Aggregate(q, region)
		if err != nil {
			return agg.Zero(), err
		}
		if s == 0 {
			out = p // identity at one shard: bit-identical to Engine
		} else {
			out = agg.Merge(out, p)
		}
	}
	return out, nil
}

// AggregateBatch scatters each region to all shards on one worker
// pool (the flattened shard × region task grid, so wide batches and
// many shards both saturate the pool) and gathers the per-shard
// partials per region in fixed shard order.
func (sv *ShardedEvaluator) AggregateBatch(ctx context.Context, q *relq.Query, regions []relq.Region) ([]agg.Partial, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !sv.scatterable(q) {
		sv.countRouted()
		return sv.engines[0].AggregateBatch(ctx, q, regions)
	}
	ns, nr := len(sv.engines), len(regions)
	if nr == 0 {
		return nil, nil
	}
	runs := make([]func(relq.Region) (agg.Partial, error), ns)
	for s, e := range sv.engines {
		b, err := e.bind(q)
		if err != nil {
			return nil, err
		}
		runs[s] = e.regionRunner(q, b)
	}
	// The scatter path dispatches to shard regionRunners directly, never
	// through Engine.AggregateBatch, so the pending-batch storm marks and
	// the between-batches auto-cluster sweeps are managed here: every
	// shard engine is marked busy for the scatter's duration (concurrent
	// scatters therefore see each other and defer layout rewrites), and
	// each sweeps on the way out.
	for _, e := range sv.engines {
		e.pendingBatches.Add(1)
	}
	defer func() {
		for _, e := range sv.engines {
			e.pendingBatches.Add(-1)
			e.maybeAutoCluster()
		}
	}()
	sv.countScatter(nr)
	so := sv.obsShard.Load()
	if so != nil && so.o.LogEnabled(slog.LevelDebug) {
		so.o.Debug("engine.scatter", "shards", ns, "regions", nr)
	}

	// Shard-skew visibility: with an observer or an active trace span,
	// every per-shard task is timed so the round's busy-time spread is
	// measurable. Tracing additionally opens one "scatter" span with a
	// "scatter.shard" child per shard (interval = dispatch to that
	// shard's last task completion; attrs = partial counts, busy time
	// and the shard engine's stat deltas). The skew ratio
	// (slowest/fastest shard) feeds acquire_shard_skew_ratio and the
	// straggler histogram. Untraced, unobserved runs skip all of it.
	parentSp := obs.SpanFromContext(ctx)
	timed := parentSp.Active() || so != nil
	var (
		ssp        obs.SpanRef
		shardSpans []obs.SpanRef
		before     []Stats
		busyNS     []atomic.Int64
		lastEnd    []atomic.Int64 // unix nanos of each shard's latest task end
		clk        obs.Clock
	)
	if timed {
		clk = so.clock()
		if parentSp.Active() {
			clk = parentSp.Clock()
			ssp = parentSp.StartChild("scatter")
			ssp.SetAttrs(obs.Int("shards", int64(ns)), obs.Int("regions", int64(nr)))
			shardSpans = make([]obs.SpanRef, ns)
			before = make([]Stats, ns)
			for s := range shardSpans {
				sp := ssp.StartChild("scatter.shard")
				sp.SetAttrs(obs.Int("shard", int64(s)),
					obs.Int("regions", int64(nr)), obs.Int("partials", int64(nr)))
				shardSpans[s] = sp
				before[s] = sv.engines[s].Snapshot()
			}
		}
		busyNS = make([]atomic.Int64, ns)
		lastEnd = make([]atomic.Int64, ns)
		for s := range runs {
			s, inner := s, runs[s]
			runs[s] = func(r relq.Region) (agg.Partial, error) {
				t0 := clk.Now()
				p, err := inner(r)
				t1 := clk.Now()
				busyNS[s].Add(t1.Sub(t0).Nanoseconds())
				for n := t1.UnixNano(); ; {
					cur := lastEnd[s].Load()
					if n <= cur || lastEnd[s].CompareAndSwap(cur, n) {
						break
					}
				}
				return p, err
			}
		}
	}

	parts := make([]agg.Partial, ns*nr)
	total := ns * nr
	w := sv.workers()
	if w > total {
		w = total
	}
	if w <= 1 {
		for t := 0; t < total; t++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := runs[t/nr](regions[t%nr])
			if err != nil {
				return nil, err
			}
			parts[t] = p
		}
	} else {
		var (
			next     atomic.Int64
			failed   atomic.Bool
			errOnce  sync.Once
			firstErr error
			wg       sync.WaitGroup
		)
		fail := func(err error) {
			errOnce.Do(func() { firstErr = err })
			failed.Store(true)
		}
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= total || failed.Load() {
						return
					}
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
					p, err := runs[t/nr](regions[t%nr])
					if err != nil {
						fail(err)
						return
					}
					parts[t] = p
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	if timed {
		minB, maxB := int64(math.MaxInt64), int64(0)
		for s := 0; s < ns; s++ {
			b := busyNS[s].Load()
			if b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
			if shardSpans != nil {
				d := sv.engines[s].Snapshot().Sub(before[s])
				shardSpans[s].SetAttrs(obs.Int("busy_ns", b),
					obs.Int("rows_scanned", d.RowsScanned),
					obs.Int("queries", d.Queries),
					obs.Int("cache_hits", d.CacheHits))
				if e := lastEnd[s].Load(); e != 0 {
					shardSpans[s].EndAt(time.Unix(0, e))
				} else {
					shardSpans[s].End()
				}
			}
		}
		skew := 0.0
		if minB > 0 {
			skew = float64(maxB) / float64(minB)
		}
		if ssp.Active() {
			ssp.SetAttrs(obs.Float("skew_ratio", skew))
			ssp.End()
		}
		if so != nil {
			if skew > 0 {
				so.skew.Set(skew)
			}
			so.straggler.ObserveDuration(time.Duration(maxB))
		}
	}

	// Gather: fold shard partials per region in shard order (§2.6).
	// The order is fixed, so the float association of every SUM is the
	// same for any worker count — deterministic at a given shard count.
	out := parts[:nr:nr]
	for s := 1; s < ns; s++ {
		row := parts[s*nr : (s+1)*nr]
		for i := range out {
			out[i] = agg.Merge(out[i], row[i])
		}
	}
	return out, nil
}

// ViolationScan concatenates per-shard scans in shard order with local
// row ids translated to parent row ids. Range partitioning preserves
// row order, so the output is identical to the monolithic scan.
func (sv *ShardedEvaluator) ViolationScan(q *relq.Query) ([]RowViolations, error) {
	if !sv.scatterable(q) {
		sv.countRouted()
		return sv.engines[0].ViolationScan(q)
	}
	sv.countScatter(1)
	var out []RowViolations
	for s, e := range sv.engines {
		part, err := e.ViolationScan(q)
		if err != nil {
			return nil, err
		}
		if lo := int32(sv.part.Shard(s).Lo); lo != 0 {
			for j := range part {
				part[j].Row += lo
			}
		}
		out = append(out, part...)
	}
	return out, nil
}

// Snapshot merges the shard engines' counters — the cumulative work of
// the whole sharded evaluator. Note Queries counts physical per-shard
// region executions: one scattered region costs NumShards executions.
func (sv *ShardedEvaluator) Snapshot() Stats {
	var out Stats
	for _, e := range sv.engines {
		s := e.Snapshot()
		out.Queries += s.Queries
		out.RowsScanned += s.RowsScanned
		out.BlocksScanned += s.BlocksScanned
		out.BlocksSkipped += s.BlocksSkipped
		out.TuplesExamined += s.TuplesExamined
		out.CellsSkipped += s.CellsSkipped
		out.CellsMerged += s.CellsMerged
		out.BoundaryRows += s.BoundaryRows
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.CacheEvictions += s.CacheEvictions
		out.Resorts += s.Resorts
		out.TailMerges += s.TailMerges
		out.DegradedScans += s.DegradedScans
		out.ZOrderResorts += s.ZOrderResorts
		out.DeferredResorts += s.DeferredResorts
	}
	return out
}

// ZoneSkips merges the shard engines' per-column zone-skip attribution
// ("table.column" -> blocks skipped because that column's predicate
// fired first).
func (sv *ShardedEvaluator) ZoneSkips() map[string]int64 {
	out := make(map[string]int64)
	for _, e := range sv.engines {
		for k, v := range e.ZoneSkips() {
			out[k] += v
		}
	}
	return out
}

// ResetStats zeroes every shard engine's counters and the scatter
// counters.
func (sv *ShardedEvaluator) ResetStats() {
	for _, e := range sv.engines {
		e.ResetStats()
	}
	sv.scatters.Store(0)
	sv.routed.Store(0)
	sv.partials.Store(0)
}

// ShardStat is one shard's identity and work: its fact-table row
// range, its current row count, and its engine counters.
type ShardStat struct {
	Shard int    `json:"shard"`
	Table string `json:"table"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
	Rows  int    `json:"rows"`
	Stats Stats  `json:"stats"`
}

// ShardStats reports per-shard statistics in shard order.
func (sv *ShardedEvaluator) ShardStats() []ShardStat {
	out := make([]ShardStat, len(sv.engines))
	for i, e := range sv.engines {
		sh := sv.part.Shard(i)
		out[i] = ShardStat{
			Shard: i,
			Table: sv.part.Table(),
			Lo:    sh.Lo,
			Hi:    sh.Hi,
			Rows:  sh.Hi - sh.Lo,
			Stats: e.Snapshot(),
		}
	}
	return out
}

// ScatterStats counts scatter-layer dispatch decisions.
type ScatterStats struct {
	// Scatters counts fact-referencing calls fanned out to all shards.
	Scatters int64
	// Routed counts calls sent whole to shard 0 (no fact reference).
	Routed int64
	// Partials counts per-shard partials gathered by the merge fold.
	Partials int64
}

// ScatterStats returns the scatter-layer counters.
func (sv *ShardedEvaluator) ScatterStats() ScatterStats {
	return ScatterStats{
		Scatters: sv.scatters.Load(),
		Routed:   sv.routed.Load(),
		Partials: sv.partials.Load(),
	}
}

func (sv *ShardedEvaluator) countScatter(regions int) {
	sv.scatters.Add(1)
	n := int64(regions) * int64(len(sv.engines))
	sv.partials.Add(n)
	if so := sv.obsShard.Load(); so != nil {
		so.scatters.Add(1)
		so.partials.Add(n)
		for _, c := range so.regions {
			c.Add(int64(regions))
		}
	}
}

func (sv *ShardedEvaluator) countRouted() {
	sv.routed.Add(1)
	if so := sv.obsShard.Load(); so != nil {
		so.routed.Add(1)
		if len(so.regions) > 0 {
			so.regions[0].Add(1)
		}
	}
}

// SetObserver attaches one observer to every shard engine (their
// acquire_engine_* counters share the registry series, so the mirrored
// totals sum across shards exactly like Snapshot) and registers the
// scatter-layer acquire_shard_* metrics. Nil detaches everywhere.
func (sv *ShardedEvaluator) SetObserver(o *obs.Observer) {
	for _, e := range sv.engines {
		e.SetObserver(o)
	}
	if o == nil {
		sv.obsShard.Store(nil)
		return
	}
	so := &shardedObs{
		o:         o,
		partials:  o.Counter("acquire_shard_partials_total", "Per-shard partials gathered by the sharded evaluator's §2.6 merge fold."),
		scatters:  o.Counter("acquire_shard_scatters_total", "Evaluator calls scattered to all shards (fact-referencing queries)."),
		routed:    o.Counter("acquire_shard_routed_total", "Evaluator calls routed whole to shard 0 (no fact-table reference)."),
		skew:      o.Gauge("acquire_shard_skew_ratio", "Slowest/fastest shard busy time of the most recent scatter round (1.0 = perfectly balanced)."),
		straggler: o.Histogram("acquire_shard_straggler_seconds", "Busy time of the slowest shard per scatter round — the scatter's critical path.", nil),
	}
	for i := range sv.engines {
		so.regions = append(so.regions,
			o.Counter(fmt.Sprintf(`acquire_shard_regions_total{shard="%d"}`, i),
				"Regions dispatched to each shard by scatter (plus routed calls for shard 0)."))
	}
	sv.obsShard.Store(so)
}

// Observer returns the attached observer (nil when detached).
func (sv *ShardedEvaluator) Observer() *obs.Observer {
	if so := sv.obsShard.Load(); so != nil {
		return so.o
	}
	return nil
}

// BuildGridIndex builds the §7.4 bitmap grid on every non-empty shard.
func (sv *ShardedEvaluator) BuildGridIndex(table string, columns []string, binsPerDim int) error {
	for _, e := range sv.engines {
		t, err := e.Catalog().Table(table)
		if err != nil {
			return err
		}
		if t.NumRows() == 0 {
			continue // nothing to index; scans of the empty shard are free
		}
		if err := e.BuildGridIndex(table, columns, binsPerDim); err != nil {
			return err
		}
	}
	return nil
}

// BuildGridAggIndex builds an aggregate-augmented grid per non-empty
// shard, reusing the deterministic fixed-shard build of
// index.BuildAgg. binsPerDim <= 0 auto-sizes each shard's grid from
// its own row count (index.BinsForRows), so small shards get
// proportionally coarse grids.
func (sv *ShardedEvaluator) BuildGridAggIndex(table string, columns, aggCols []string, binsPerDim int) error {
	for _, e := range sv.engines {
		t, err := e.Catalog().Table(table)
		if err != nil {
			return err
		}
		if t.NumRows() == 0 {
			continue
		}
		bins := binsPerDim
		if bins <= 0 {
			bins = index.BinsForRows(len(columns), t.NumRows())
		}
		if err := e.BuildGridAggIndex(table, columns, aggCols, bins); err != nil {
			return err
		}
	}
	return nil
}

// DropGridIndex removes the table's grid from every shard.
func (sv *ShardedEvaluator) DropGridIndex(table string) {
	for _, e := range sv.engines {
		e.DropGridIndex(table)
	}
}

// EnableRegionCache attaches one region cache PER SHARD, each sized
// maxBytes/NumShards (<= 0 detaches all). Shard caches are never
// shared: two shards of near-equal row count would produce colliding
// fingerprints for different row ranges, so instance-per-shard is a
// correctness requirement, not a tuning choice.
func (sv *ShardedEvaluator) EnableRegionCache(maxBytes int64) {
	if maxBytes <= 0 {
		for _, e := range sv.engines {
			e.SetRegionCache(nil)
		}
		return
	}
	per := maxBytes / int64(len(sv.engines))
	if per < 1 {
		per = 1
	}
	for _, e := range sv.engines {
		e.SetRegionCache(regioncache.New(per))
	}
}

// InvalidateRegionCache drops every shard's cached partials.
func (sv *ShardedEvaluator) InvalidateRegionCache() {
	for _, e := range sv.engines {
		e.InvalidateRegionCache()
	}
}

// CacheStats sums the shard caches' counters (zero when detached).
func (sv *ShardedEvaluator) CacheStats() regioncache.Stats {
	var out regioncache.Stats
	for _, e := range sv.engines {
		if c := e.RegionCache(); c != nil {
			s := c.Stats()
			out.Hits += s.Hits
			out.Misses += s.Misses
			out.Evictions += s.Evictions
			out.Entries += s.Entries
			out.Bytes += s.Bytes
		}
	}
	return out
}

// InvalidateTable broadcasts an in-place table mutation to every
// layer: the partition re-resolves the table from the parent catalog
// (re-slicing the fact table, re-broadcasting a dimension pointer),
// then every shard engine drops its derived state — column and sort
// caches, grid indexes, and its shard-local region cache. Without the
// broadcast, a monolithic-style single-instance drop would silently
// miss the shard-local caches and serve stale partials.
func (sv *ShardedEvaluator) InvalidateTable(table string) {
	_ = sv.part.Refresh(table) // unknown names still clear engine state below
	for _, e := range sv.engines {
		e.InvalidateTable(table)
	}
}
