package exec

import (
	"fmt"

	"acquire/internal/agg"
	"acquire/internal/relq"
)

// NaiveAggregate evaluates the query by exhaustive nested loops over
// the full cross product, with no pruning, no hash joins and no index.
// It exists as the correctness oracle for Aggregate: every optimization
// in the engine is differential-tested against it on small inputs.
func (e *Engine) NaiveAggregate(q *relq.Query, region relq.Region) (agg.Partial, error) {
	b, err := e.bind(q)
	if err != nil {
		return agg.Zero(), err
	}
	if len(region) != len(q.Dims) {
		return agg.Zero(), fmt.Errorf("exec: region has %d dims, query has %d", len(region), len(q.Dims))
	}

	rows := make([]int32, len(b.tables))
	viol := make([]float64, len(q.Dims))
	part := agg.Zero()

	var rec func(ti int)
	rec = func(ti int) {
		if ti == len(b.tables) {
			for i := range b.ranges {
				for _, rb := range b.ranges[i] {
					v := rb.vec[rows[i]]
					if v < rb.lo || v > rb.hi {
						return
					}
				}
				for _, sb := range b.strFlts[i] {
					if _, ok := sb.set[sb.vec[rows[i]]]; !ok {
						return
					}
				}
			}
			for i := range b.equiJoins {
				ej := &b.equiJoins[i]
				if ej.lc*ej.lvec[rows[ej.ltbl]] != ej.rc*ej.rvec[rows[ej.rtbl]] {
					return
				}
			}
			for _, sd := range b.selDims {
				viol[sd.di] = sd.dim.Violation(sd.vec[rows[sd.tbl]])
			}
			for _, jd := range b.joinDims {
				viol[jd.di] = jd.dim.JoinViolation(jd.lvec[rows[jd.ltbl]], jd.rvec[rows[jd.rtbl]])
			}
			if !region.Contains(viol) {
				return
			}
			v := 1.0
			if b.aggTbl >= 0 {
				v = b.aggVec[rows[b.aggTbl]]
			}
			b.spec.StepValue(&part, v)
			return
		}
		for r := 0; r < b.tables[ti].NumRows(); r++ {
			rows[ti] = int32(r)
			rec(ti + 1)
		}
	}
	rec(0)
	return part, nil
}
