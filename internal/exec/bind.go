package exec

import (
	"fmt"
	"strings"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/relq"
)

// binding is a query compiled against the catalog: every column
// reference resolved to a (table index, column vector) pair so the
// execution loops touch only dense float64 slices.
type binding struct {
	q      *relq.Query
	tables []*data.Table
	tblOf  map[string]int // lower-cased table name -> index in q.Tables order

	// selDims[i] corresponds to q.Dims positions holding select
	// dimensions; joinDims likewise for join-band dimensions.
	selDims  []selBind
	joinDims []joinBind

	// Per-table fixed filters.
	ranges  [][]rangeBind  // [tableIdx]
	strFlts [][]stringBind // [tableIdx]

	equiJoins []equiBind

	// Aggregate attribute: aggTbl < 0 means COUNT(*).
	aggTbl int
	aggVec []float64

	spec agg.Spec
}

type selBind struct {
	dim *relq.Dimension
	di  int // index into q.Dims
	tbl int
	ord int
	vec []float64
}

type joinBind struct {
	dim        *relq.Dimension
	di         int
	ltbl, rtbl int
	lvec, rvec []float64
	lc, rc     float64
}

type rangeBind struct {
	ord    int
	vec    []float64
	lo, hi float64
}

type stringBind struct {
	vec []string
	set map[string]struct{}
}

type equiBind struct {
	ltbl, rtbl int
	lvec, rvec []float64
	lc, rc     float64
}

func coefOr1(c float64) float64 {
	if c == 0 {
		return 1
	}
	return c
}

// bind compiles q against the engine's catalog, resolving column
// references through the numeric-column cache.
func (e *Engine) bind(q *relq.Query) (*binding, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	b := &binding{
		q:      q,
		tables: make([]*data.Table, len(q.Tables)),
		tblOf:  make(map[string]int, len(q.Tables)),
		aggTbl: -1,
	}
	for i, name := range q.Tables {
		t, err := e.cat.Table(name)
		if err != nil {
			return nil, err
		}
		b.tables[i] = t
		b.tblOf[strings.ToLower(name)] = i
	}
	b.ranges = make([][]rangeBind, len(b.tables))
	b.strFlts = make([][]stringBind, len(b.tables))

	numVec := func(ref relq.ColumnRef) (int, int, []float64, error) {
		ti, ok := b.tblOf[strings.ToLower(ref.Table)]
		if !ok {
			return 0, 0, nil, fmt.Errorf("exec: predicate references table %q not in FROM", ref.Table)
		}
		ord := b.tables[ti].Schema().Ordinal(ref.Column)
		vec, err := e.numericColumn(b.tables[ti], ref.Column)
		if err != nil {
			return 0, 0, nil, err
		}
		return ti, ord, vec, nil
	}

	for i := range q.Dims {
		d := &q.Dims[i]
		switch d.Kind {
		case relq.SelectLE, relq.SelectGE, relq.SelectEQ:
			ti, ord, vec, err := numVec(d.Col)
			if err != nil {
				return nil, err
			}
			b.selDims = append(b.selDims, selBind{dim: d, di: i, tbl: ti, ord: ord, vec: vec})
		case relq.JoinBand:
			lt, _, lv, err := numVec(d.Left)
			if err != nil {
				return nil, err
			}
			rt, _, rv, err := numVec(d.Right)
			if err != nil {
				return nil, err
			}
			if lt == rt {
				return nil, fmt.Errorf("exec: join dimension %s joins a table to itself", d.Label())
			}
			b.joinDims = append(b.joinDims, joinBind{
				dim: d, di: i, ltbl: lt, rtbl: rt, lvec: lv, rvec: rv,
				lc: coefOr1(d.LCoef), rc: coefOr1(d.RCoef),
			})
		}
	}

	for i := range q.Fixed {
		p := &q.Fixed[i]
		switch p.Kind {
		case relq.FixedRange:
			ti, ord, vec, err := numVec(p.Col)
			if err != nil {
				return nil, err
			}
			b.ranges[ti] = append(b.ranges[ti], rangeBind{ord: ord, vec: vec, lo: p.Lo, hi: p.Hi})
		case relq.FixedStringIn:
			ti, ok := b.tblOf[strings.ToLower(p.Col.Table)]
			if !ok {
				return nil, fmt.Errorf("exec: predicate references table %q not in FROM", p.Col.Table)
			}
			t := b.tables[ti]
			ord := t.Schema().Ordinal(p.Col.Column)
			if ord < 0 {
				return nil, fmt.Errorf("exec: table %s has no column %q", t.Name(), p.Col.Column)
			}
			svec, ok := t.Strings(ord)
			if !ok {
				return nil, fmt.Errorf("exec: column %s is not TEXT", p.Col)
			}
			set := make(map[string]struct{}, len(p.Values))
			for _, v := range p.Values {
				set[v] = struct{}{}
			}
			b.strFlts[ti] = append(b.strFlts[ti], stringBind{vec: svec, set: set})
		case relq.FixedEquiJoin:
			lt, _, lv, err := numVec(p.Left)
			if err != nil {
				return nil, err
			}
			rt, _, rv, err := numVec(p.Right)
			if err != nil {
				return nil, err
			}
			if lt == rt {
				return nil, fmt.Errorf("exec: fixed join joins table %q to itself", p.Left.Table)
			}
			b.equiJoins = append(b.equiJoins, equiBind{
				ltbl: lt, rtbl: rt, lvec: lv, rvec: rv,
				lc: coefOr1(p.LCoef), rc: coefOr1(p.RCoef),
			})
		}
	}

	c := q.Constraint
	spec, err := agg.SpecFor(c)
	if err != nil {
		return nil, err
	}
	b.spec = spec
	if !(c.Func == relq.AggCount && c.Attr.Column == "") {
		ti, _, vec, err := numVec(c.Attr)
		if err != nil {
			return nil, err
		}
		b.aggTbl, b.aggVec = ti, vec
	}
	return b, nil
}

// numericColumn returns the cached float64 view of a numeric column.
// data.Table.NumericColumn copies Int64 vectors on every call; the cache
// makes repeated cell-query execution allocation-free. Hits require the
// entry to have been built from this exact *Table at this row count
// (see colEntry), so both appends and same-size catalog Replaces — an
// auto-clustering re-sort is one — miss and rebuild.
func (e *Engine) numericColumn(t *data.Table, col string) ([]float64, error) {
	ord := t.Schema().Ordinal(col)
	if ord < 0 {
		return nil, fmt.Errorf("exec: table %s has no column %q", t.Name(), col)
	}
	key := colKey{table: strings.ToLower(t.Name()), ord: ord}
	e.mu.RLock()
	ent, ok := e.colCache[key]
	e.mu.RUnlock()
	if ok && ent.src == t && len(ent.vec) == t.NumRows() {
		return ent.vec, nil
	}
	vec, err := t.NumericColumn(ord)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.colCache[key] = colEntry{vec: vec, src: t}
	e.mu.Unlock()
	return vec, nil
}
