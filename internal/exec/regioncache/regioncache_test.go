package regioncache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"acquire/internal/agg"
)

// kn builds keys that all land on one shard, so LRU-order assertions
// see a single list.
func kn(n int) Key { return Key{Hi: uint64(n) << 4, Lo: uint64(n) << 4} }

func fill(t *testing.T, c *Cache, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := agg.Partial{Count: int64(i)}
		got, hit, _, err := c.Do(kn(i), func() (agg.Partial, error) { return p, nil })
		if err != nil || hit {
			t.Fatalf("fill %d: hit=%v err=%v", i, hit, err)
		}
		if got.Count != int64(i) {
			t.Fatalf("fill %d: got count %d", i, got.Count)
		}
	}
}

// Filling past the byte cap evicts in LRU order; touching an entry
// rescues it from the next eviction round.
func TestEvictionLRUOrder(t *testing.T) {
	c := New(numShards * 4 * EntryBytes) // 4 entries per shard
	fill(t, c, 4)
	if st := c.Stats(); st.Entries != 4 || st.Bytes != 4*EntryBytes {
		t.Fatalf("pre-eviction stats = %+v", st)
	}

	// Touch key 0: it becomes MRU, so key 1 is now the LRU victim.
	if _, ok := c.Get(kn(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	_, _, evicted, _ := c.Do(kn(4), func() (agg.Partial, error) { return agg.Partial{Count: 4}, nil })
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if c.Contains(kn(1)) {
		t.Error("LRU victim 1 still resident")
	}
	for _, want := range []int{0, 2, 3, 4} {
		if !c.Contains(kn(want)) {
			t.Errorf("key %d evicted out of LRU order", want)
		}
	}

	// Two more inserts evict 2 then 3 — strict LRU order.
	c.Do(kn(5), func() (agg.Partial, error) { return agg.Partial{}, nil })
	c.Do(kn(6), func() (agg.Partial, error) { return agg.Partial{}, nil })
	if c.Contains(kn(2)) || c.Contains(kn(3)) {
		t.Error("keys 2/3 not evicted in LRU order")
	}
	if !c.Contains(kn(0)) {
		t.Error("touched key 0 evicted before older entries")
	}
	if st := c.Stats(); st.Evictions != 3 || st.Entries != 4 {
		t.Errorf("post-eviction stats = %+v, want 3 evictions / 4 entries", st)
	}
}

// A cap below one entry still admits one entry per shard.
func TestTinyCap(t *testing.T) {
	c := New(1)
	c.Do(kn(1), func() (agg.Partial, error) { return agg.Partial{Count: 1}, nil })
	if got, ok := c.Get(kn(1)); !ok || got.Count != 1 {
		t.Fatalf("single entry not resident: ok=%v got=%+v", ok, got)
	}
	c.Do(kn(2), func() (agg.Partial, error) { return agg.Partial{Count: 2}, nil })
	if c.Contains(kn(1)) {
		t.Error("previous entry survived a one-entry shard")
	}
}

// Invalidate drops everything; subsequent Do re-executes.
func TestInvalidate(t *testing.T) {
	c := New(1 << 20)
	fill(t, c, 10)
	c.Invalidate()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-invalidate stats = %+v", st)
	}
	ran := false
	_, hit, _, _ := c.Do(kn(3), func() (agg.Partial, error) { ran = true; return agg.Partial{}, nil })
	if hit || !ran {
		t.Errorf("post-invalidate Do: hit=%v ran=%v, want miss + execution", hit, ran)
	}
}

// A fill whose loader straddles an Invalidate must not resurrect the
// stale value.
func TestInvalidateDuringFlight(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(kn(1), func() (agg.Partial, error) {
			close(started)
			<-release
			return agg.Partial{Count: 99}, nil
		})
	}()
	<-started
	c.Invalidate()
	close(release)
	<-done
	if c.Contains(kn(1)) {
		t.Error("stale in-flight fill stored after Invalidate")
	}
}

// Concurrent identical misses collapse to one loader execution; all
// callers receive the same value.
func TestSingleflight(t *testing.T) {
	c := New(1 << 20)
	var execs atomic.Int64
	gate := make(chan struct{})
	const callers = 32
	var wg sync.WaitGroup
	vals := make([]agg.Partial, callers)
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, hit, _, err := c.Do(kn(7), func() (agg.Partial, error) {
				execs.Add(1)
				return agg.Partial{Count: 7, Sum: 7.5}, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], hits[i] = v, hit
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("loader executed %d times, want 1", n)
	}
	misses := 0
	for i := range vals {
		if vals[i] != (agg.Partial{Count: 7, Sum: 7.5}) {
			t.Fatalf("caller %d got %+v", i, vals[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers reported a miss, want exactly the owner", misses)
	}
}

// A failing loader is not cached and does not poison waiters: each
// retries with its own loader and succeeds.
func TestErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	_, _, _, err := c.Do(kn(9), func() (agg.Partial, error) { return agg.Partial{}, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Contains(kn(9)) {
		t.Fatal("error result was cached")
	}
	v, hit, _, err := c.Do(kn(9), func() (agg.Partial, error) { return agg.Partial{Count: 1}, nil })
	if err != nil || hit || v.Count != 1 {
		t.Fatalf("retry after error: v=%+v hit=%v err=%v", v, hit, err)
	}
}

// Race hammer: many goroutines mixing Do, Get, Stats and Invalidate
// over a small hot key set. Run under -race; also asserts every
// returned value matches its key (no cross-key leakage).
func TestConcurrentHammer(t *testing.T) {
	c := New(numShards * 8 * EntryBytes)
	const goroutines = 16
	const rounds = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := (g*rounds + r*13) % 64
				want := int64(n * 3)
				v, _, _, err := c.Do(kn(n), func() (agg.Partial, error) {
					return agg.Partial{Count: want}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.Count != want {
					t.Errorf("key %d returned count %d, want %d", n, v.Count, want)
					return
				}
				if r%97 == 0 {
					c.Stats()
				}
				if g == 0 && r%211 == 0 {
					c.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses < goroutines*rounds {
		t.Errorf("stats undercount: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	// Keys spread across shards: sanity-check the shard router touches
	// more than one shard so the lock-splitting is real.
	c := New(1 << 20)
	shards := map[*shard]bool{}
	for i := 0; i < 64; i++ {
		k := Key{Hi: uint64(i) * 0x9e3779b97f4a7c15, Lo: uint64(i)}
		shards[c.shard(k)] = true
		c.Do(k, func() (agg.Partial, error) { return agg.Partial{}, nil })
	}
	if len(shards) < 4 {
		t.Errorf("64 spread keys landed on %d shards", len(shards))
	}
	if got := fmt.Sprintf("%d", c.Len()); got != "64" {
		t.Errorf("Len = %s, want 64", got)
	}
}
