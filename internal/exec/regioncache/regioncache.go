// Package regioncache is a sharded, concurrency-safe LRU cache of
// partial-aggregate results keyed by the 128-bit canonical fingerprint
// of one (query shape, aggregate spec, region) execution
// (relq.Fingerprint). It lets refinement searches warm-start from the
// cell sub-queries of earlier or concurrent searches: the paper's
// optimal substructure property (§2.6) makes partials freely reusable
// across any searches that evaluate the same region of the same query
// shape.
//
// Concurrent misses on one key collapse onto a single in-flight
// execution (singleflight): the first caller runs the loader, every
// concurrent caller for the same key blocks and shares the result.
// Loader errors are never cached — each waiter retries with its own
// loader, so one caller's cancellation cannot poison another's result.
//
// Values are agg.Partial structs stored by value; a hit returns exactly
// the bytes a cold execution produced, so cached searches stay
// bit-identical to uncached ones.
package regioncache

import (
	"sync"

	"acquire/internal/agg"
)

// Key is the 128-bit fingerprint of one (query shape, aggregate spec,
// region) execution — the two words of a relq.Fingerprint.
type Key struct {
	Hi, Lo uint64
}

// numShards spreads lock contention; must be a power of two. 16 shards
// keep the per-shard critical sections (a map lookup plus two list
// splices) far off the scaling path even at high worker counts.
const numShards = 16

// EntryBytes is the accounted cost of one cache entry: the key, the
// partial, two list pointers and the amortized map slot. The accounting
// is deliberately a fixed constant — agg.Partial is a fixed-size struct
// — so the byte cap translates directly into an entry cap per shard.
const EntryBytes = 160

// entry is an intrusive doubly-linked LRU node.
type entry struct {
	key        Key
	val        agg.Partial
	prev, next *entry
}

// flight is one in-flight loader execution; waiters block on done and
// then read val/err.
type flight struct {
	done chan struct{}
	val  agg.Partial
	err  error
}

type shard struct {
	mu    sync.Mutex
	table map[Key]*entry
	head  *entry // most recently used
	tail  *entry // least recently used
	bytes int64
	// gen is bumped by Invalidate; a fill whose flight started under an
	// older generation is discarded instead of resurrecting stale data.
	gen      uint64
	inflight map[Key]*flight

	hits, misses, evictions int64
}

// Cache is the sharded LRU. The zero value is not usable; construct
// with New.
type Cache struct {
	shards   [numShards]shard
	capShard int64
}

// Stats is a point-in-time summary of cache effectiveness and
// occupancy.
type Stats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes                   int64
}

// New creates a cache bounded to roughly maxBytes across all shards.
// Each shard always admits at least one entry, so a tiny cap degrades
// to a small cache rather than a broken one.
func New(maxBytes int64) *Cache {
	c := &Cache{capShard: maxBytes / numShards}
	if c.capShard < EntryBytes {
		c.capShard = EntryBytes
	}
	for i := range c.shards {
		c.shards[i].table = make(map[Key]*entry)
		c.shards[i].inflight = make(map[Key]*flight)
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	return &c.shards[(k.Lo^k.Hi)&(numShards-1)]
}

// Do returns the cached partial for k, or executes fn exactly once to
// fill it. hit reports whether the value came from the cache (including
// joining another caller's in-flight execution); evicted is the number
// of entries displaced by the fill. Errors are returned uncached.
func (c *Cache) Do(k Key, fn func() (agg.Partial, error)) (val agg.Partial, hit bool, evicted int64, err error) {
	s := c.shard(k)
	for {
		s.mu.Lock()
		if e, ok := s.table[k]; ok {
			s.touch(e)
			s.hits++
			s.mu.Unlock()
			return e.val, true, 0, nil
		}
		if f, ok := s.inflight[k]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err == nil {
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return f.val, true, 0, nil
			}
			// The owner failed (possibly its own cancellation): retry
			// with our fn rather than inheriting a foreign error.
			continue
		}
		f := &flight{done: make(chan struct{})}
		gen := s.gen
		s.inflight[k] = f
		s.misses++
		s.mu.Unlock()

		f.val, f.err = fn()

		s.mu.Lock()
		// Only the registered flight may deregister itself: Invalidate
		// swaps the inflight map, and a successor flight for the same
		// key may already be registered there.
		if s.inflight[k] == f {
			delete(s.inflight, k)
		}
		if f.err == nil && s.gen == gen {
			evicted = s.insert(k, f.val, c.capShard)
		}
		s.mu.Unlock()
		close(f.done)
		return f.val, false, evicted, f.err
	}
}

// Get returns the cached partial for k, refreshing its recency. It
// does not join in-flight executions; the engine path goes through Do.
func (c *Cache) Get(k Key) (agg.Partial, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.table[k]; ok {
		s.touch(e)
		s.hits++
		return e.val, true
	}
	s.misses++
	return agg.Partial{}, false
}

// Contains reports whether k is resident without touching its recency —
// eviction-order tests peek through it.
func (c *Cache) Contains(k Key) bool {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.table[k]
	return ok
}

// Invalidate drops every entry and detaches every in-flight execution:
// loaders that already started still deliver to their current waiters,
// but their results are not stored and later callers start fresh. Call
// it after mutating data the cached partials were computed over.
func (c *Cache) Invalidate() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.table = make(map[Key]*entry)
		s.inflight = make(map[Key]*flight)
		s.head, s.tail = nil, nil
		s.bytes = 0
		s.gen++
		s.mu.Unlock()
	}
}

// Stats sums the per-shard counters.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.table)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Len returns the resident entry count.
func (c *Cache) Len() int { return c.Stats().Entries }

// touch moves e to the MRU position. Caller holds the shard lock.
func (s *shard) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) pushFront(e *entry) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// insert stores (k, v) at the MRU position and evicts from the LRU end
// until the shard fits its byte budget. Caller holds the shard lock.
func (s *shard) insert(k Key, v agg.Partial, capBytes int64) (evicted int64) {
	if e, ok := s.table[k]; ok {
		// A concurrent fill for the same key under a newer generation
		// already landed; refresh the value and recency.
		e.val = v
		s.touch(e)
		return 0
	}
	e := &entry{key: k, val: v}
	s.table[k] = e
	s.pushFront(e)
	s.bytes += EntryBytes
	for s.bytes > capBytes && s.tail != nil && s.tail != e {
		victim := s.tail
		s.unlink(victim)
		delete(s.table, victim.key)
		s.bytes -= EntryBytes
		s.evictions++
		evicted++
	}
	return evicted
}
