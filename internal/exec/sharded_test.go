package exec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/obs"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

// shardCfg is one evaluator configuration of the equivalence sweep.
type shardCfg struct {
	grid  bool
	cache bool
}

func (c shardCfg) String() string {
	return fmt.Sprintf("grid=%v/cache=%v", c.grid, c.cache)
}

// newShardedUsers builds a ShardedEvaluator over the users catalog with
// the requested shard count and configuration.
func newShardedUsers(t *testing.T, cat *data.Catalog, n int, cfg shardCfg) *ShardedEvaluator {
	t.Helper()
	sv, err := NewShardedOn(cat, "users", n)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.grid {
		// binsPerDim <= 0 auto-sizes per shard from its own row count.
		if err := sv.BuildGridAggIndex("users", []string{"age", "income", "distance"}, []string{"spend"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.cache {
		sv.EnableRegionCache(4 << 20)
	}
	return sv
}

// TestShardedMatchesEngine is the shard-equivalence property test:
// across randomized regions, COUNT/SUM/MIN/MAX/AVG constraints, shard
// counts 1–16, and every {grid, cache} configuration, the
// ShardedEvaluator's scatter-gather-merge must agree with the
// monolithic Engine — COUNT/MIN/MAX bit for bit, SUM within float
// re-association tolerance (§2.6: the merge fold re-associates shard
// partials), and bit-identical at one shard where the fold is the
// identity.
func TestShardedMatchesEngine(t *testing.T) {
	const rows = 3000
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: rows, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	oracle := New(cat)

	dims := usersDims()
	queries := []*relq.Query{
		usersQuery(relq.AggCount, "", dims...),
		usersQuery(relq.AggSum, "spend", dims...),
		usersQuery(relq.AggMin, "spend", dims...),
		usersQuery(relq.AggMax, "spend", dims...),
		usersQuery(relq.AggAvg, "spend", dims...),
	}

	rng := rand.New(rand.NewSource(99))
	randRegion := func() relq.Region {
		r := make(relq.Region, len(dims))
		for i := range r {
			hi := rng.Float64() * 80
			if rng.Intn(2) == 0 {
				r[i] = relq.ViolInterval{Lo: -1, Hi: hi}
			} else {
				r[i] = relq.ViolInterval{Lo: hi * rng.Float64(), Hi: hi}
			}
		}
		return r
	}

	// Evaluators are built lazily per (shards, config) and reused across
	// trials, so the sweep touches many combinations without rebuilding
	// grids per trial.
	type evalKey struct {
		shards int
		cfg    shardCfg
	}
	evals := make(map[evalKey]*ShardedEvaluator)
	getEval := func(k evalKey) *ShardedEvaluator {
		if sv, ok := evals[k]; ok {
			return sv
		}
		sv := newShardedUsers(t, cat, k.shards, k.cfg)
		evals[k] = sv
		return sv
	}

	ctx := context.Background()
	triples, nonzero := 0, 0
	for trial := 0; trial < 40; trial++ {
		shards := 1 + rng.Intn(16)
		cfg := shardCfg{grid: rng.Intn(2) == 1, cache: rng.Intn(2) == 1}
		sv := getEval(evalKey{shards, cfg})

		regions := make([]relq.Region, 1+rng.Intn(3))
		for i := range regions {
			regions[i] = randRegion()
		}
		for _, q := range queries {
			got, err := sv.AggregateBatch(ctx, q, regions)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.cache {
				// A second pass must be served from the shard caches and
				// stay bit-identical to the cold execution.
				again, err := sv.AggregateBatch(ctx, q, regions)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != again[i] {
						t.Fatalf("trial %d shards=%d %v: cached re-read diverged\ncold %+v\nwarm %+v",
							trial, shards, cfg, got[i], again[i])
					}
				}
			}
			spec, err := agg.SpecFor(q.Constraint)
			if err != nil {
				t.Fatal(err)
			}
			for i, region := range regions {
				triples++
				want, err := oracle.Aggregate(q, region)
				if err != nil {
					t.Fatal(err)
				}
				p := got[i]
				if p.Count != want.Count || p.Min != want.Min || p.Max != want.Max {
					t.Fatalf("trial %d shards=%d %v %v region %v:\nsharded %+v\nengine  %+v",
						trial, shards, cfg, q.Constraint.Func, region, p, want)
				}
				if !agg.ApproxEqual(p, want, 1e-9) {
					t.Fatalf("trial %d shards=%d %v %v: sum diverged\nsharded %+v\nengine  %+v",
						trial, shards, cfg, q.Constraint.Func, p, want)
				}
				if q.Constraint.Func == relq.AggCount && p.Sum != want.Sum {
					t.Fatalf("trial %d: COUNT sum not bit-identical: %v vs %v", trial, p.Sum, want.Sum)
				}
				if shards == 1 && !cfg.grid && p != want {
					// One shard, no grid: same scan code over the same
					// rows — the merge fold is the identity, so the
					// result is bit-identical, Sum included.
					t.Fatalf("trial %d: single-shard partial not bit-identical\nsharded %+v\nengine  %+v", trial, p, want)
				}
				gf, wf := spec.Final(p), spec.Final(want)
				if gf != wf && !(math.IsNaN(gf) && math.IsNaN(wf)) &&
					math.Abs(gf-wf) > 1e-9*(1+math.Abs(wf)) {
					t.Fatalf("trial %d shards=%d %v: Final %v vs %v", trial, shards, cfg, gf, wf)
				}
				if want.Count > 0 {
					nonzero++
				}
			}
		}
	}
	if triples < 120 {
		t.Fatalf("property test covered only %d (query, region, agg) triples, want >= 120", triples)
	}
	if nonzero == 0 {
		t.Fatal("property test never produced a non-empty region — workload bug")
	}

	// Engagement: the sweep must actually have scattered, merged grid
	// cells, and served cache hits — otherwise the equivalences above
	// compared two copies of the same code path.
	var scattered, gridMerged, cacheHits int64
	for k, sv := range evals {
		scattered += sv.ScatterStats().Partials
		if k.cfg.grid {
			gridMerged += sv.Snapshot().CellsMerged
		}
		if k.cfg.cache {
			cacheHits += sv.CacheStats().Hits
		}
	}
	if scattered == 0 {
		t.Error("no per-shard partials gathered — scatter path never ran")
	}
	if gridMerged == 0 {
		t.Error("grid configurations never merged interior cells")
	}
	if cacheHits == 0 {
		t.Error("cache configurations never produced a hit")
	}
}

// TestShardedDeterministicAcrossWorkers: the gather fold runs in fixed
// shard order, so results are bit-identical for every scatter worker
// count.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 2000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dims := usersDims()
	q := usersQuery(relq.AggSum, "spend", dims...)
	regions := []relq.Region{
		{{Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}},
		{{Lo: -1, Hi: 5}, {Lo: 2, Hi: 9}, {Lo: -1, Hi: 70}},
		{{Lo: 0.5, Hi: 30}, {Lo: -1, Hi: 12}, {Lo: 1, Hi: 44}},
		{{Lo: -1, Hi: 80}, {Lo: -1, Hi: 80}, {Lo: -1, Hi: 80}},
		{{Lo: -1, Hi: 0}, {Lo: -1, Hi: 0}, {Lo: -1, Hi: 0}},
		{{Lo: 3, Hi: 3.5}, {Lo: -1, Hi: 60}, {Lo: -1, Hi: 25}},
		{{Lo: -1, Hi: 15}, {Lo: 1, Hi: 22}, {Lo: 0.25, Hi: 9}},
	}
	sv, err := NewShardedOn(cat, "users", 5)
	if err != nil {
		t.Fatal(err)
	}
	var base []agg.Partial
	for _, workers := range []int{1, 2, 8, 0} {
		sv.SetParallelism(workers)
		got, err := sv.AggregateBatch(context.Background(), q, regions)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d region %d: %+v, want %+v (bit-identical across worker counts)",
					workers, i, got[i], base[i])
			}
		}
	}
}

// edgeCatalog builds a single-table catalog with x = row index (the
// partition axis through select dims) and v = the aggregate attribute.
func edgeCatalog(t *testing.T, vals []float64) *data.Catalog {
	t.Helper()
	cat := data.NewCatalog()
	fact := data.NewTable("fact", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "v", Type: data.Float64},
	))
	for i, v := range vals {
		if err := fact.AppendRow(data.FloatValue(float64(i)), data.FloatValue(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Register(fact); err != nil {
		t.Fatal(err)
	}
	return cat
}

// factQuery builds a fact-table ACQ over a single SelectLE dim on x.
// Violation is (x − Bound)·(100/Width); with Bound 10 and Width 100
// that is x − 10, so region {Lo:-1, Hi:h} admits rows with x <= 10 + h.
func factQuery(f relq.AggFunc, attr string) *relq.Query {
	c := relq.Constraint{Func: f, Op: relq.CmpEQ, Target: 1}
	if attr != "" {
		c.Attr = relq.ColumnRef{Table: "fact", Column: attr}
	}
	return &relq.Query{
		Tables: []string{"fact"},
		Dims: []relq.Dimension{{
			Kind:  relq.SelectLE,
			Col:   relq.ColumnRef{Table: "fact", Column: "x"},
			Bound: 10, Width: 100,
		}},
		Constraint: c,
	}
}

var edgeAggs = []struct {
	f    relq.AggFunc
	attr string
}{
	{relq.AggCount, ""},
	{relq.AggSum, "v"},
	{relq.AggMin, "v"},
	{relq.AggMax, "v"},
	{relq.AggAvg, "v"},
}

// TestShardedMergeEdgeCases covers the §2.6 partial-merge corners:
// more shards than rows (empty shards), every matching row in one
// shard, ±Inf sentinel data, NaN data, and AVG recomposition from
// SUM + COUNT.
func TestShardedMergeEdgeCases(t *testing.T) {
	ctx := context.Background()
	compare := func(t *testing.T, cat *data.Catalog, shards int, region relq.Region) {
		t.Helper()
		mono := New(cat)
		sv, err := NewShardedOn(cat, "fact", shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, ea := range edgeAggs {
			q := factQuery(ea.f, ea.attr)
			want, err := mono.Aggregate(q, region)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := sv.AggregateBatch(ctx, q, []relq.Region{region})
			if err != nil {
				t.Fatal(err)
			}
			got := batch[0]
			if got.Count != want.Count ||
				!(got.Min == want.Min || (math.IsNaN(got.Min) && math.IsNaN(want.Min))) ||
				!(got.Max == want.Max || (math.IsNaN(got.Max) && math.IsNaN(want.Max))) {
				t.Fatalf("%v: sharded %+v, engine %+v", ea.f, got, want)
			}
			if !(math.IsNaN(got.Sum) && math.IsNaN(want.Sum)) && !agg.ApproxEqual(got, want, 1e-9) {
				t.Fatalf("%v: sum diverged: sharded %+v, engine %+v", ea.f, got, want)
			}
			spec, err := agg.SpecFor(q.Constraint)
			if err != nil {
				t.Fatal(err)
			}
			gf, wf := spec.Final(got), spec.Final(want)
			if gf != wf && !(math.IsNaN(gf) && math.IsNaN(wf)) &&
				math.Abs(gf-wf) > 1e-9*(1+math.Abs(wf)) {
				t.Fatalf("%v: Final %v vs %v", ea.f, gf, wf)
			}
		}
	}

	t.Run("empty-shards", func(t *testing.T) {
		// 5 rows over 16 shards: most shards hold zero rows and must
		// contribute the Zero identity ({+Inf, -Inf} sentinels) without
		// perturbing the fold.
		cat := edgeCatalog(t, []float64{3, 1, 4, 1, 5})
		compare(t, cat, 16, relq.Region{{Lo: -1, Hi: 80}})
	})

	t.Run("empty-region", func(t *testing.T) {
		// A region matching nothing: Count 0 and the Zero sentinels must
		// survive a 16-way merge bit-identically; MIN/MAX/AVG Finals are
		// NaN on both sides.
		cat := edgeCatalog(t, []float64{3, 1, 4, 1, 5, 9, 2, 6})
		mono := New(cat)
		sv, err := NewShardedOn(cat, "fact", 16)
		if err != nil {
			t.Fatal(err)
		}
		region := relq.Region{{Lo: -1, Hi: -0.5}} // x <= -40: empty
		for _, ea := range edgeAggs {
			q := factQuery(ea.f, ea.attr)
			want, err := mono.Aggregate(q, region)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sv.Aggregate(q, region)
			if err != nil {
				t.Fatal(err)
			}
			if got != want || got.Count != 0 {
				t.Fatalf("%v: sharded %+v, engine %+v (want empty Zero)", ea.f, got, want)
			}
			if !math.IsInf(got.Min, 1) || !math.IsInf(got.Max, -1) {
				t.Fatalf("%v: empty merge lost the Zero sentinels: %+v", ea.f, got)
			}
		}
		compare(t, cat, 16, region)
	})

	t.Run("one-shard-skew", func(t *testing.T) {
		// 100 rows over 4 shards; region x <= 10 matches rows 0..10,
		// all inside shard 0. The other shards fold in Zero, so the
		// result must be bit-identical to the monolithic scan.
		vals := make([]float64, 100)
		for i := range vals {
			vals[i] = float64(i) * 1.25
		}
		cat := edgeCatalog(t, vals)
		mono := New(cat)
		sv, err := NewShardedOn(cat, "fact", 4)
		if err != nil {
			t.Fatal(err)
		}
		region := relq.Region{{Lo: -1, Hi: 0}} // x <= 10 ⊂ shard 0 ([0,25))
		for _, ea := range edgeAggs {
			q := factQuery(ea.f, ea.attr)
			want, err := mono.Aggregate(q, region)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sv.Aggregate(q, region)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v: skewed merge not bit-identical: sharded %+v, engine %+v", ea.f, got, want)
			}
		}
		// The symmetric skew: all matching rows in the LAST shard.
		last := relq.Region{{Lo: 70, Hi: 120}} // 80 <= x <= 130 ⊂ shard 3 ([75,100))
		compare(t, cat, 4, last)
	})

	t.Run("inf-sentinels", func(t *testing.T) {
		// Data containing ±Inf values must be distinguishable from the
		// Zero sentinels of empty shards: MIN folds to -Inf, MAX to
		// +Inf, exactly as the monolithic scan computes them.
		cat := edgeCatalog(t, []float64{1, math.Inf(1), 2, math.Inf(-1), 3, 4, 5, 6, 7, 8})
		compare(t, cat, 7, relq.Region{{Lo: -1, Hi: 80}})
	})

	t.Run("nan-data", func(t *testing.T) {
		// NaN aggregate values: Step skips them for MIN/MAX (NaN
		// comparisons are false) but poisons SUM; the merged result must
		// mirror the monolithic behaviour — same Count, NaN Sum on both
		// sides, NaN-free Min/Max.
		cat := edgeCatalog(t, []float64{1, math.NaN(), 2, 3, math.NaN(), 4, 5, 6})
		compare(t, cat, 3, relq.Region{{Lo: -1, Hi: 80}})
	})

	t.Run("avg-recomposition", func(t *testing.T) {
		// AVG is carried as SUM + COUNT (§2.6); the merged partial must
		// recompose to Sum/Count, equal to the monolithic average.
		vals := make([]float64, 64)
		for i := range vals {
			vals[i] = math.Sin(float64(i)) * 100
		}
		cat := edgeCatalog(t, vals)
		sv, err := NewShardedOn(cat, "fact", 5)
		if err != nil {
			t.Fatal(err)
		}
		q := factQuery(relq.AggAvg, "v")
		region := relq.Region{{Lo: -1, Hi: 80}}
		got, err := sv.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count == 0 {
			t.Fatal("AVG region matched nothing")
		}
		spec, err := agg.SpecFor(q.Constraint)
		if err != nil {
			t.Fatal(err)
		}
		f := spec.Final(got)
		if want := got.Sum / float64(got.Count); math.Abs(f-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("AVG Final %v does not recompose from Sum/Count = %v", f, want)
		}
		mono, err := New(cat).Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if wf := spec.Final(mono); math.Abs(f-wf) > 1e-9*(1+math.Abs(wf)) {
			t.Fatalf("AVG Final %v, engine %v", f, wf)
		}
	})
}

// TestShardedRoutesNonFactQueries: a query that does not reference the
// partitioned fact table must be routed whole to shard 0 (its broadcast
// catalog is complete for it) — scattering would count the broadcast
// tables once per shard. Fact-referencing join queries scatter and
// still match the monolithic engine.
func TestShardedRoutesNonFactQueries(t *testing.T) {
	cat, err := tpch.Generate(tpch.Config{Rows: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mono := New(cat)
	sv, err := NewSharded(cat, 4) // partsupp is the largest table
	if err != nil {
		t.Fatal(err)
	}
	if sv.FactTable() != "partsupp" {
		t.Fatalf("fact table %q, want partsupp (largest)", sv.FactTable())
	}

	// Supplier-only query: no partsupp reference → routed.
	suppQ := &relq.Query{
		Tables: []string{"supplier"},
		Dims: []relq.Dimension{{
			Kind:  relq.SelectLE,
			Col:   relq.ColumnRef{Table: "supplier", Column: "s_acctbal"},
			Bound: 5000, Width: 10000,
		}},
		Constraint: relq.Constraint{
			Func: relq.AggSum, Op: relq.CmpGE, Target: 1,
			Attr: relq.ColumnRef{Table: "supplier", Column: "s_acctbal"},
		},
	}
	region := relq.Region{{Lo: -1, Hi: 0.3}}
	want, err := mono.Aggregate(suppQ, region)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.Aggregate(suppQ, region)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		// Shard 0 holds the identical broadcast table, so the routed
		// result is bit-identical, no merge involved.
		t.Fatalf("routed query: sharded %+v, engine %+v", got, want)
	}
	batch, err := sv.AggregateBatch(context.Background(), suppQ, []relq.Region{region, region})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		if p != want {
			t.Fatalf("routed batch: %+v, want %+v", p, want)
		}
	}
	st := sv.ScatterStats()
	if st.Routed != 2 || st.Scatters != 0 {
		t.Fatalf("ScatterStats = %+v, want Routed=2 Scatters=0", st)
	}

	// Three-table join through the fact table: scattered, and the
	// per-shard join partials merge to the monolithic result (each fact
	// row joins within exactly one shard).
	joinQ := &relq.Query{
		Tables: []string{"supplier", "part", "partsupp"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "supplier", Column: "s_suppkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_suppkey"}},
		},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE,
				Col:   relq.ColumnRef{Table: "part", Column: "p_retailprice"},
				Bound: 1500, Width: 1000},
			{Kind: relq.SelectLE,
				Col:   relq.ColumnRef{Table: "supplier", Column: "s_acctbal"},
				Bound: 5000, Width: 10000},
		},
		Constraint: relq.Constraint{
			Func: relq.AggSum, Op: relq.CmpGE, Target: 1,
			Attr: relq.ColumnRef{Table: "partsupp", Column: "ps_availqty"},
		},
	}
	jr := relq.Region{{Lo: -1, Hi: 0.6}, {Lo: -1, Hi: 0.4}}
	jwant, err := mono.Aggregate(joinQ, jr)
	if err != nil {
		t.Fatal(err)
	}
	jbatch, err := sv.AggregateBatch(context.Background(), joinQ, []relq.Region{jr})
	if err != nil {
		t.Fatal(err)
	}
	jgot := jbatch[0]
	if jgot.Count != jwant.Count || jgot.Min != jwant.Min || jgot.Max != jwant.Max ||
		!agg.ApproxEqual(jgot, jwant, 1e-9) {
		t.Fatalf("scattered join: sharded %+v, engine %+v", jgot, jwant)
	}
	if jwant.Count == 0 {
		t.Fatal("join region matched nothing — workload bug")
	}
	if st := sv.ScatterStats(); st.Scatters != 1 || st.Partials != 4 {
		t.Fatalf("after join: ScatterStats = %+v, want Scatters=1 Partials=4", st)
	}
}

// errAfter is a context whose Err trips after a fixed number of polls —
// a deterministic stand-in for mid-flight cancellation.
type errAfter struct {
	context.Context
	calls atomic.Int64
	limit int64
}

func (c *errAfter) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

// TestShardedCancellation: both the serial and the pooled scatter paths
// must stop on context cancellation and surface ctx.Err().
func TestShardedCancellation(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewShardedOn(cat, "users", 4)
	if err != nil {
		t.Fatal(err)
	}
	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := make([]relq.Region, 32)
	for i := range regions {
		regions[i] = relq.Region{{Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		sv.SetParallelism(workers)
		if _, err := sv.AggregateBatch(cancelled, q, regions); err != context.Canceled {
			t.Fatalf("workers=%d: pre-cancelled batch returned %v, want context.Canceled", workers, err)
		}
	}

	// Mid-flight: let a handful of tasks through, then trip. The serial
	// path polls once per task, so the trip point is deterministic.
	sv.SetParallelism(1)
	mid := &errAfter{Context: context.Background(), limit: 5}
	if _, err := sv.AggregateBatch(mid, q, regions); err != context.Canceled {
		t.Fatalf("mid-flight cancellation returned %v, want context.Canceled", err)
	}
	sv.SetParallelism(8)
	mid = &errAfter{Context: context.Background(), limit: 20}
	if _, err := sv.AggregateBatch(mid, q, regions); err != context.Canceled {
		t.Fatalf("pooled mid-flight cancellation returned %v, want context.Canceled", err)
	}
}

// TestShardedViolationScan: the concatenated per-shard scans with
// row-id translation must equal the monolithic scan row for row (range
// partitioning preserves row order).
func TestShardedViolationScan(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 1777, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	q := usersQuery(relq.AggSum, "spend", usersDims()...)
	want, err := New(cat).ViolationScan(q)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewShardedOn(cat, "users", 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.ViolationScan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded scan returned %d rows, engine %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Row != w.Row || g.AggValue != w.AggValue || len(g.Viol) != len(w.Viol) {
			t.Fatalf("row %d: sharded %+v, engine %+v", i, g, w)
		}
		for j := range g.Viol {
			if g.Viol[j] != w.Viol[j] {
				t.Fatalf("row %d viol %d: %v vs %v", i, j, g.Viol[j], w.Viol[j])
			}
		}
	}
}

// TestShardedInvalidateTableBroadcast is the regression test for the
// shard-blind invalidation bug: after an in-place table replacement,
// InvalidateTable must re-resolve the partition AND drop every
// shard-local cache, grid and column cache — a single-instance drop
// would leave stale shard state serving old results.
func TestShardedInvalidateTableBroadcast(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i%17) + 1
	}
	cat := edgeCatalog(t, vals)
	sv, err := NewShardedOn(cat, "fact", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.BuildGridAggIndex("fact", []string{"x"}, []string{"v"}, 0); err != nil {
		t.Fatal(err)
	}
	sv.EnableRegionCache(1 << 20)

	q := factQuery(relq.AggSum, "v")
	region := relq.Region{{Lo: -1, Hi: 300}} // x <= 310: everything, even post-growth
	ctx := context.Background()
	warm := func() agg.Partial {
		t.Helper()
		got, err := sv.AggregateBatch(ctx, q, []relq.Region{region})
		if err != nil {
			t.Fatal(err)
		}
		return got[0]
	}
	before := warm()
	warm() // populate + hit the shard caches
	if sv.CacheStats().Hits == 0 {
		t.Fatal("shard region caches never hit — test not exercising cached state")
	}

	// Replace the fact table in place: same rows, v doubled. Row count
	// is unchanged, so no generation-based invalidation can catch this.
	doubled := data.NewTable("fact", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "v", Type: data.Float64},
	))
	for i, v := range vals {
		if err := doubled.AppendRow(data.FloatValue(float64(i)), data.FloatValue(2*v)); err != nil {
			t.Fatal(err)
		}
	}
	cat.Replace(doubled)
	sv.InvalidateTable("fact")

	after := warm()
	want, err := New(cat).Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != want.Count || !agg.ApproxEqual(after, want, 1e-9) {
		t.Fatalf("post-invalidation result stale: sharded %+v, fresh engine %+v", after, want)
	}
	if math.Abs(after.Sum-2*before.Sum) > 1e-6 {
		t.Fatalf("post-invalidation Sum %v, want ~%v (doubled)", after.Sum, 2*before.Sum)
	}

	// Growth: appends land in the parent table; InvalidateTable must
	// re-slice the partition so the new rows join the shards.
	parent, err := cat.Table("fact")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := parent.AppendRow(data.FloatValue(float64(200+i)), data.FloatValue(1000)); err != nil {
			t.Fatal(err)
		}
	}
	sv.InvalidateTable("fact")
	grown := warm()
	want2, err := New(cat).Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Count != want2.Count || grown.Count != after.Count+40 ||
		!agg.ApproxEqual(grown, want2, 1e-9) {
		t.Fatalf("post-growth result stale: sharded %+v, fresh engine %+v", grown, want2)
	}
}

// TestShardedObserverMetrics: the scatter layer must register and move
// the acquire_shard_* series the CI engagement guard asserts on.
func TestShardedObserverMetrics(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 600, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewShardedOn(cat, "users", 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sv.SetObserver(obs.NewObserver(reg))

	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := []relq.Region{
		{{Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}},
		{{Lo: -1, Hi: 10}, {Lo: -1, Hi: 10}, {Lo: -1, Hi: 10}},
	}
	if _, err := sv.AggregateBatch(context.Background(), q, regions); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["acquire_shard_partials_total"]; got != 6 { // 2 regions × 3 shards
		t.Errorf("acquire_shard_partials_total = %v, want 6", got)
	}
	if got := snap["acquire_shard_scatters_total"]; got != 1 {
		t.Errorf("acquire_shard_scatters_total = %v, want 1", got)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf(`acquire_shard_regions_total{shard="%d"}`, i)
		if got := snap[name]; got != 2 {
			t.Errorf("%s = %v, want 2", name, got)
		}
	}
	if st := sv.ShardStats(); len(st) != 3 || st[2].Hi != 600 || st[0].Stats.Queries == 0 {
		t.Errorf("ShardStats unexpected: %+v", st)
	}
}
