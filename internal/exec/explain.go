package exec

import (
	"fmt"
	"math"
	"strings"

	"acquire/internal/relq"
)

// PlanStep describes one access or join decision of a query execution.
type PlanStep struct {
	// Table is the table this step concerns.
	Table string
	// Access is "index range scan", "full scan" or "grid-index skip".
	Access string
	// DrivingColumn names the column whose sorted index drives the
	// scan (empty for full scans).
	DrivingColumn string
	// EstimatedRows is the access path's candidate estimate.
	EstimatedRows int
	// Join is how this table attaches to the previously joined set:
	// "", "hash equi-join", "band join", "cartesian".
	Join string
}

// Plan is the engine's EXPLAIN output: the per-table access decisions
// and join order it would use for the query at the region, computed
// without executing.
type Plan struct {
	Steps []PlanStep
}

// String renders the plan.
func (p *Plan) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "%d. %s: %s", i+1, s.Table, s.Access)
		if s.DrivingColumn != "" {
			fmt.Fprintf(&b, " on %s", s.DrivingColumn)
		}
		if s.EstimatedRows >= 0 {
			fmt.Fprintf(&b, " (~%d rows)", s.EstimatedRows)
		}
		if s.Join != "" {
			fmt.Fprintf(&b, ", attached by %s", s.Join)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Explain computes the access plan for the query at the region without
// executing it: for each table, the driving condition the scan would
// pick; then the join order and join methods.
func (e *Engine) Explain(q *relq.Query, region relq.Region) (*Plan, error) {
	b, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	if len(region) != len(q.Dims) {
		return nil, fmt.Errorf("exec: region has %d dims, query has %d", len(region), len(q.Dims))
	}
	plan := &Plan{}

	// Per-table access decisions, mirroring scanTable's logic.
	access := make([]PlanStep, len(b.tables))
	for ti, t := range b.tables {
		n := t.NumRows()
		step := PlanStep{Table: t.Name(), Access: "full scan", EstimatedRows: n}

		if e.cellProvablyEmpty(b, region, ti) {
			step.Access = "grid-index skip"
			step.EstimatedRows = 0
			access[ti] = step
			continue
		}

		type drive struct {
			ord    int
			lo, hi float64
		}
		var drives []drive
		for i := range b.ranges[ti] {
			rb := b.ranges[ti][i]
			if !math.IsInf(rb.lo, -1) || !math.IsInf(rb.hi, 1) {
				drives = append(drives, drive{ord: rb.ord, lo: rb.lo, hi: rb.hi})
			}
		}
		for _, sd := range b.selDims {
			if sd.tbl != ti {
				continue
			}
			ivs := valueIntervals(sd.dim, region[sd.di])
			if len(ivs) == 1 {
				drives = append(drives, drive{ord: sd.ord, lo: ivs[0].Lo, hi: ivs[0].Hi})
			}
		}
		bestSize := n + 1
		bestOrd := -1
		for _, d := range drives {
			ix, err := e.sortedIndex(t, d.ord)
			if err != nil {
				return nil, err
			}
			if sz := ix.rangeSize(d.lo, d.hi); sz < bestSize {
				bestSize, bestOrd = sz, d.ord
			}
		}
		if bestOrd >= 0 && bestSize <= n/2 {
			step.Access = "index range scan"
			step.DrivingColumn = t.Schema().Columns[bestOrd].Name
			step.EstimatedRows = bestSize
		}
		access[ti] = step
	}

	// Join order, mirroring join()'s greedy connectivity walk.
	attached := map[int]int{0: 0}
	order := []int{0}
	joins := make([]string, len(b.tables))
	for len(order) < len(b.tables) {
		next, edge := e.pickNext(b, attached)
		how := "cartesian"
		if next < 0 {
			for ti := range b.tables {
				if _, ok := attached[ti]; !ok {
					next = ti
					break
				}
			}
		} else if edge.equi != nil {
			how = "hash equi-join"
		} else if edge.band != nil {
			how = "band join"
		}
		joins[next] = how
		attached[next] = len(order)
		order = append(order, next)
	}

	for _, ti := range order {
		s := access[ti]
		s.Join = joins[ti]
		plan.Steps = append(plan.Steps, s)
	}
	return plan, nil
}
