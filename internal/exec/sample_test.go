package exec

import (
	"math"
	"testing"

	"acquire/internal/relq"
)

func TestNewSampledValidation(t *testing.T) {
	cat := smallCatalog(t, 10, 100, 41)
	if _, err := NewSampled(cat, 0, 1); err == nil {
		t.Error("fraction 0: expected error")
	}
	if _, err := NewSampled(cat, 1.5, 1); err == nil {
		t.Error("fraction > 1: expected error")
	}
	// A vanishing fraction leaves some table empty.
	if _, err := NewSampled(cat, 1e-9, 1); err == nil {
		t.Error("empty sample: expected error")
	}
}

func TestSampledExtrapolatesCountAndSum(t *testing.T) {
	cat := smallCatalog(t, 50, 4000, 42)
	full := New(cat)
	s, err := NewSampled(cat, 0.25, 7)
	if err != nil {
		t.Fatalf("NewSampled: %v", err)
	}
	if s.Fraction() != 0.25 || s.FullCatalog() != cat {
		t.Error("metadata")
	}

	q := &relq.Query{
		Tables: []string{"part"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_retailprice"}, Bound: 1000, Width: 2000},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	region := relq.PrefixRegion([]float64{10})
	est, err := s.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := full.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(float64(est.Count)-float64(exact.Count)) / float64(exact.Count)
	if rel > 0.15 {
		t.Errorf("sampled count %d vs exact %d (rel %v)", est.Count, exact.Count, rel)
	}

	// SUM scales the same way.
	qs := q.Clone()
	qs.Constraint = relq.Constraint{Func: relq.AggSum,
		Attr: relq.ColumnRef{Table: "part", Column: "p_retailprice"}, Op: relq.CmpGE, Target: 1}
	estS, err := s.Aggregate(qs, region)
	if err != nil {
		t.Fatal(err)
	}
	exactS, err := full.Aggregate(qs, region)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(estS.Sum-exactS.Sum)/exactS.Sum > 0.15 {
		t.Errorf("sampled sum %v vs exact %v", estS.Sum, exactS.Sum)
	}

	// MIN/MAX are not scaled: sample extrema lie within full extrema.
	if est.Min < exact.Min-1e9 || est.Max > exact.Max {
		t.Errorf("sample extrema out of range: [%v, %v] vs [%v, %v]", est.Min, est.Max, exact.Min, exact.Max)
	}
}

func TestSampledJointJoinScaling(t *testing.T) {
	cat := smallCatalog(t, 40, 4000, 43)
	full := New(cat)
	s, err := NewSampled(cat, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	q := &relq.Query{
		Tables: []string{"part", "partsupp"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	est, err := s.Aggregate(q, relq.Region{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := full.Aggregate(q, relq.Region{})
	if err != nil {
		t.Fatal(err)
	}
	// Joint factor 0.25; sampling noise on joins is larger — accept 30%.
	rel := math.Abs(float64(est.Count)-float64(exact.Count)) / float64(exact.Count)
	if rel > 0.30 {
		t.Errorf("sampled join count %d vs exact %d (rel %v)", est.Count, exact.Count, rel)
	}
}
