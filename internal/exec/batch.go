package exec

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"

	"acquire/internal/agg"
	"acquire/internal/obs"
	"acquire/internal/relq"
)

// AggregateBatch executes the query restricted to each region and
// returns one partial per region, out[i] corresponding to regions[i].
//
// The regions are independent (ACQUIRE's cell sub-queries are mutually
// disjoint), so they are dispatched to a worker pool bounded by the
// engine's Parallelism (default GOMAXPROCS). The query is bound once;
// each region then runs exactly the same per-region code as Aggregate,
// so results are deterministic — identical for every worker count.
// Cancellation is checked before each region; on cancellation or the
// first region error the pool drains and the error is returned.
func (e *Engine) AggregateBatch(ctx context.Context, q *relq.Query, regions []relq.Region) ([]agg.Partial, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	// Auto-clustering sweeps run between batches, never mid-query: the
	// batch computes entirely on the layout it bound, and a re-sort
	// triggered by its own scan statistics only affects later batches.
	// The pending-batch mark (taken after bind, released before the
	// sweep) is the scheduler's storm signal: a sweep that would rewrite
	// a layout while other batches are mid-flight defers instead, so the
	// last batch out performs the amortized rewrite.
	e.pendingBatches.Add(1)
	defer func() {
		e.pendingBatches.Add(-1)
		e.maybeAutoCluster()
	}()
	out := make([]agg.Partial, len(regions))
	w := e.workers()
	if w > len(regions) {
		w = len(regions)
	}
	run := e.regionRunner(q, b)
	// Per-region execution times land in the "evaluate" phase
	// histogram inside aggregateBound; the dispatch event records the
	// batch shape (width × workers) for the structured log.
	if o := e.Observer(); o.LogEnabled(slog.LevelDebug) {
		o.Debug("engine.batch", "regions", len(regions), "workers", w)
	}
	// Hierarchical tracing: when the context carries a span, the batch
	// gets a child span (with this engine's stat deltas — rows scanned,
	// gridagg merges, cache traffic) and every region a nested
	// "evaluate" span carrying its fingerprint and cache outcome. The
	// untraced path pays one context lookup and allocates nothing.
	if parent := obs.SpanFromContext(ctx); parent.Active() {
		bsp := parent.StartChild("engine.batch")
		bsp.SetAttrs(obs.Int("regions", int64(len(regions))), obs.Int("workers", int64(w)))
		run = e.tracedRunner(q, b, bsp)
		before := e.Snapshot()
		defer func() {
			d := e.Snapshot().Sub(before)
			bsp.SetAttrs(obs.Int("rows_scanned", d.RowsScanned),
				obs.Int("blocks_scanned", d.BlocksScanned),
				obs.Int("blocks_skipped", d.BlocksSkipped),
				obs.Int("cells_merged", d.CellsMerged),
				obs.Int("cells_skipped", d.CellsSkipped),
				obs.Int("cache_hits", d.CacheHits),
				obs.Int("cache_misses", d.CacheMisses))
			bsp.End()
		}()
	}
	if w <= 1 {
		for i := range regions {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := run(regions[i])
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(regions) || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				p, err := run(regions[i])
				if err != nil {
					fail(err)
					return
				}
				out[i] = p
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// regionRunner returns the per-region execution function of one bound
// query — the unit of work both AggregateBatch and the sharded
// scatter-gather path dispatch to their worker pools. With a region
// cache attached, every region first consults the cache under its
// (query shape, region) fingerprint; concurrent identical regions —
// including ones dispatched by other sessions sharing the cache —
// collapse onto one execution. The fingerprint is computed once per
// batch.
func (e *Engine) regionRunner(q *relq.Query, b *binding) func(relq.Region) (agg.Partial, error) {
	if c := e.regionCache.Load(); c != nil {
		fp := e.batchFingerprint(q, b)
		return func(r relq.Region) (agg.Partial, error) {
			p, _, err := e.aggregateCached(c, fp, b, r)
			return p, err
		}
	}
	return func(r relq.Region) (agg.Partial, error) { return e.aggregateBound(b, r) }
}

// tracedRunner is regionRunner with per-region "evaluate" child spans
// under parent: each span records the region's (query shape, region)
// fingerprint and — with a cache attached — whether it hit. Only built
// when the incoming context carries an active span.
func (e *Engine) tracedRunner(q *relq.Query, b *binding, parent obs.SpanRef) func(relq.Region) (agg.Partial, error) {
	if c := e.regionCache.Load(); c != nil {
		fp := e.batchFingerprint(q, b)
		return func(r relq.Region) (agg.Partial, error) {
			sp := parent.StartChild("evaluate")
			p, hit, err := e.aggregateCached(c, fp, b, r)
			if sp.Active() {
				k := fp.WithRegion(r)
				sp.SetAttrs(obs.String("fingerprint", fmt.Sprintf("%016x%016x", k.Hi, k.Lo)),
					obs.Bool("cache_hit", hit))
			}
			sp.End()
			return p, err
		}
	}
	return func(r relq.Region) (agg.Partial, error) {
		sp := parent.StartChild("evaluate")
		p, err := e.aggregateBound(b, r)
		sp.End()
		return p, err
	}
}
