package exec

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"

	"acquire/internal/agg"
	"acquire/internal/relq"
)

// AggregateBatch executes the query restricted to each region and
// returns one partial per region, out[i] corresponding to regions[i].
//
// The regions are independent (ACQUIRE's cell sub-queries are mutually
// disjoint), so they are dispatched to a worker pool bounded by the
// engine's Parallelism (default GOMAXPROCS). The query is bound once;
// each region then runs exactly the same per-region code as Aggregate,
// so results are deterministic — identical for every worker count.
// Cancellation is checked before each region; on cancellation or the
// first region error the pool drains and the error is returned.
func (e *Engine) AggregateBatch(ctx context.Context, q *relq.Query, regions []relq.Region) ([]agg.Partial, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	out := make([]agg.Partial, len(regions))
	w := e.workers()
	if w > len(regions) {
		w = len(regions)
	}
	run := e.regionRunner(q, b)
	// Per-region execution times land in the "evaluate" phase
	// histogram inside aggregateBound; the dispatch event records the
	// batch shape (width × workers) for the structured log.
	if o := e.Observer(); o.LogEnabled(slog.LevelDebug) {
		o.Debug("engine.batch", "regions", len(regions), "workers", w)
	}
	if w <= 1 {
		for i := range regions {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := run(regions[i])
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(regions) || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				p, err := run(regions[i])
				if err != nil {
					fail(err)
					return
				}
				out[i] = p
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// regionRunner returns the per-region execution function of one bound
// query — the unit of work both AggregateBatch and the sharded
// scatter-gather path dispatch to their worker pools. With a region
// cache attached, every region first consults the cache under its
// (query shape, region) fingerprint; concurrent identical regions —
// including ones dispatched by other sessions sharing the cache —
// collapse onto one execution. The fingerprint is computed once per
// batch.
func (e *Engine) regionRunner(q *relq.Query, b *binding) func(relq.Region) (agg.Partial, error) {
	if c := e.regionCache.Load(); c != nil {
		fp := e.batchFingerprint(q, b)
		return func(r relq.Region) (agg.Partial, error) { return e.aggregateCached(c, fp, b, r) }
	}
	return func(r relq.Region) (agg.Partial, error) { return e.aggregateBound(b, r) }
}
