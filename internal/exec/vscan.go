package exec

import (
	"log/slog"
	"math"
	"strings"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/relq"
)

// This file is the block-vectorized scan path — the default execution
// mode. It produces surviving tuples and aggregates that are
// bit-identical to the row-at-a-time legacy path (SetLegacyScan(true)):
// access-path selection is shared code, blocks are visited in ascending
// row order, filter chains keep exactly the rows the legacy verify loop
// keeps (including NaN behavior), and the finalize fold steps the
// aggregate in the same tuple order with the same chunk association.
// What changes is the shape of the work: per-block selection vectors
// compacted one predicate at a time, zone maps that skip blocks which
// provably cannot contain a candidate, scan-level semi-join pushdown,
// and pre-sized join hash tables.
//
// One nuance since two-sided pruneInterval hulls landed: on zone-pruned
// full scans the candidate list may be a strict subset of the legacy
// path's — blocks whose every row provably fails the region's *lower*
// bound are dropped at scan time, where the legacy path carries such
// rows until finalize rejects them per tuple. Surviving tuples, their
// order, and every aggregate/violation bit are identical.

// localDim is one select dimension local to the scanned table: rows
// with Violation(v) > hi (the region's upper bound on the dimension)
// cannot qualify anywhere in the region and are dropped at scan time.
// lo carries the region's lower bound for zone-map pruning only — the
// per-row filters never use it (finalize enforces it per tuple).
type localDim struct {
	dim *relq.Dimension
	vec []float64
	ord int
	hi  float64
	lo  float64
}

// localDimsFor collects table ti's local select dimensions.
func localDimsFor(b *binding, region relq.Region, ti int) []localDim {
	var locals []localDim
	for _, sd := range b.selDims {
		if sd.tbl == ti {
			locals = append(locals, localDim{
				dim: sd.dim, vec: sd.vec, ord: sd.ord,
				hi: region[sd.di].Hi, lo: region[sd.di].Lo,
			})
		}
	}
	return locals
}

// scanDrive is one candidate driving interval: a fixed range or a
// single-interval select-dimension region mapped onto column values.
type scanDrive struct {
	ord    int
	lo, hi float64
}

// scanDrives collects table ti's driving intervals. empty=true means
// some select dimension admits no values at all — the scan returns no
// candidates without touching the table.
func scanDrives(b *binding, region relq.Region, ti int) (drives []scanDrive, empty bool) {
	ranges := b.ranges[ti]
	for i := range ranges {
		if !math.IsInf(ranges[i].lo, -1) || !math.IsInf(ranges[i].hi, 1) {
			drives = append(drives, scanDrive{ord: ranges[i].ord, lo: ranges[i].lo, hi: ranges[i].hi})
		}
	}
	for _, sd := range b.selDims {
		if sd.tbl != ti {
			continue
		}
		ivs := valueIntervals(sd.dim, region[sd.di])
		if len(ivs) == 0 {
			return nil, true // dimension admits nothing
		}
		if len(ivs) == 1 {
			drives = append(drives, scanDrive{ord: sd.ord, lo: ivs[0].Lo, hi: ivs[0].Hi})
		}
	}
	return drives, false
}

// pickIndexDrive selects the most selective driving interval and, when
// it narrows the table to at most half its rows, returns the matching
// candidate rows from the sorted index (in value order — the shared
// access-path choice of both scan paths). It also returns every drive's
// exact in-interval row count from the sorted indexes (margs, aligned
// with drives): the per-column *marginal* selectivities the workload
// statistics learn from, already computed here as a byproduct of access-
// path selection.
//
// One layout-aware refinement: when the table is clustered over the
// best drive's column (single-column or Z-order interleave) with at
// most a sub-block append tail, a moderately selective drive (more
// than n/8 rows) stays on the zone-pruned full-scan path instead of
// the index. The clustered layout makes zone maps drop roughly the
// same rows the index would, through dense block kernels instead of
// per-row gathers — and on a Z-order layout the full scan prunes on
// *both* interleaved axes where the index can use only one. Clearly
// narrow drives (<= n/8) still take the index. Both scan paths share
// this choice, so legacy/vectorized equivalence is unaffected.
func (e *Engine) pickIndexDrive(t *data.Table, n int, drives []scanDrive) ([]int32, bool, []int, error) {
	if len(drives) == 0 {
		return nil, false, nil, nil
	}
	margs := make([]int, len(drives))
	bestSize := n + 1
	var best *sortedIdx
	var bestDrive scanDrive
	for i, d := range drives {
		ix, err := e.sortedIndex(t, d.ord)
		if err != nil {
			return nil, false, nil, err
		}
		sz := ix.rangeSize(d.lo, d.hi)
		margs[i] = sz
		if sz < bestSize {
			bestSize, best, bestDrive = sz, ix, d
		}
	}
	if best != nil && bestSize <= n/2 && !e.preferClusteredScan(t, bestDrive, bestSize, n) {
		return best.rangeRows(bestDrive.lo, bestDrive.hi), true, margs, nil
	}
	return nil, false, margs, nil
}

// preferClusteredScan reports whether a moderately-selective best drive
// should stay on the full-scan path because the table's clustered
// layout covers its column (see pickIndexDrive).
func (e *Engine) preferClusteredScan(t *data.Table, d scanDrive, size, n int) bool {
	if size*8 <= n {
		return false // clearly narrow: the index wins outright
	}
	if t.ClusterTail() >= blockRows {
		return false // degraded layout: tail blocks are never skippable
	}
	cols, _ := t.ClusterSpec()
	if len(cols) == 0 {
		return false
	}
	name := t.Schema().Columns[d.ord].Name
	for _, c := range cols {
		if strings.EqualFold(c, name) {
			return true
		}
	}
	return false
}

// semiPred is a scan-level semi-join pushdown predicate: keep only rows
// whose scaled join key appears in the already-scanned probe side's key
// set. Only attached below the join when the static attach plan proves
// the dropped rows could never emit (see attachPlan).
type semiPred struct {
	set  *f64Set
	vec  []float64
	coef float64
}

// blockFilter is the compiled predicate chain applied to each block's
// selection vector. Predicate order matches the legacy verify loop
// (ranges, strings, locals); the chain is a conjunction, so the kept
// set is order-independent, and each filter preserves row order.
type blockFilter struct {
	ranges []rangeBind
	strs   []stringBind
	locals []localDim
	semi   *semiPred
}

func (f *blockFilter) apply(sel []int32) []int32 {
	return f.applySkip(sel, 0, 0)
}

// applySkip runs the chain with the first skipR range filters and
// skipL local filters omitted (already applied by a dense kernel). The
// chain is a conjunction of order-preserving filters, so the kept set
// and its ascending order are independent of which predicate ran first.
func (f *blockFilter) applySkip(sel []int32, skipR, skipL int) []int32 {
	for i := skipR; i < len(f.ranges); i++ {
		if len(sel) == 0 {
			return sel
		}
		sel = filterRange(sel, f.ranges[i].vec, f.ranges[i].lo, f.ranges[i].hi)
	}
	for i := range f.strs {
		if len(sel) == 0 {
			return sel
		}
		sel = filterStringIn(sel, f.strs[i].vec, f.strs[i].set)
	}
	for i := skipL; i < len(f.locals); i++ {
		if len(sel) == 0 {
			return sel
		}
		sel = filterViolation(sel, f.locals[i].dim, f.locals[i].vec, f.locals[i].hi)
	}
	if f.semi != nil && len(sel) > 0 {
		sel = filterSemi(sel, f.semi.vec, f.semi.coef, f.semi.set)
	}
	return sel
}

// applyDense filters the contiguous rows [lo, hi) of the table: the
// first numeric predicate runs as a dense kernel straight over its
// column stride (emitting row ids directly — no identity-fill +
// gather round trip) and the rest compact the resulting selection
// vector as usual. buf must have blockRows capacity.
func (f *blockFilter) applyDense(buf []int32, lo, hi int) []int32 {
	switch {
	case len(f.ranges) > 0:
		sel := filterRangeDense(buf, f.ranges[0].vec, lo, hi, f.ranges[0].lo, f.ranges[0].hi)
		return f.applySkip(sel, 1, 0)
	case len(f.locals) > 0:
		sel := filterViolationDense(buf, f.locals[0].dim, f.locals[0].vec, lo, hi, f.locals[0].hi)
		return f.applySkip(sel, 0, 1)
	default:
		sel := buf[:0]
		for r := lo; r < hi; r++ {
			sel = append(sel, int32(r))
		}
		return f.applySkip(sel, 0, 0)
	}
}

// observeDensity records one block's post-filter selection density into
// the attached observer's histogram (no-op when detached).
func observeDensity(eo *engineObs, kept, blockLen int) {
	if eo == nil || blockLen == 0 {
		return
	}
	eo.selDensity.Observe(float64(kept) / float64(blockLen))
}

// zonePreds compiles the block-skip tests for a full scan: one per
// fixed range with a finite bound, one per local select dimension's
// conservative value hull. String-set and semi predicates never prune —
// zone maps only summarize numeric order.
func (e *Engine) zonePreds(t *data.Table, f *blockFilter) []zonePred {
	var zps []zonePred
	for i := range f.ranges {
		rb := &f.ranges[i]
		if math.IsInf(rb.lo, -1) && math.IsInf(rb.hi, 1) {
			continue
		}
		zps = append(zps, zonePred{zm: e.zoneMapFor(t, rb.ord, rb.vec), lo: rb.lo, hi: rb.hi, ord: rb.ord})
	}
	for i := range f.locals {
		ld := &f.locals[i]
		lo, hi := pruneInterval(ld.dim, relq.ViolInterval{Lo: ld.lo, Hi: ld.hi})
		if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
			continue
		}
		zps = append(zps, zonePred{zm: e.zoneMapFor(t, ld.ord, ld.vec), lo: lo, hi: hi, ord: ld.ord})
	}
	return zps
}

// vscanTable is the vectorized scanTable: identical access-path choice
// and candidate output, executed block-at-a-time. On the full-scan path
// blocks failing a zone test are skipped without touching rows —
// RowsScanned counts only rows in visited blocks (skipped blocks are
// reported via BlocksSkipped), keeping the rows-touched statistics
// honest about physical work.
func (e *Engine) vscanTable(b *binding, region relq.Region, ti int, semi *semiPred) ([]int32, error) {
	t := b.tables[ti]
	n := t.NumRows()
	drives, empty := scanDrives(b, region, ti)
	if empty {
		return nil, nil
	}
	f := &blockFilter{ranges: b.ranges[ti], strs: b.strFlts[ti], locals: localDimsFor(b, region, ti), semi: semi}
	eo := e.obsState.Load()

	candidates, indexed, margs, err := e.pickIndexDrive(t, n, drives)
	if err != nil {
		return nil, err
	}
	if indexed {
		e.countRows(int64(len(candidates)))
		if eo != nil && eo.o.LogEnabled(slog.LevelDebug) {
			eo.o.Debug("engine.scan", "table", b.q.Tables[ti],
				"rows", int64(len(candidates)), "full_scan", false)
		}
		out := e.blockFilterRows(candidates, f, eo)
		if e.autoCluster.Load() {
			e.wstats.observe(tableKey(t), n, drives, margs)
		}
		return out, nil
	}

	zps := e.zonePreds(t, f)
	out, rowsScanned, blocksScanned, axisSkips := e.blockScan(n, zps, f, eo)
	var blocksSkipped int64
	for _, s := range axisSkips {
		blocksSkipped += s
	}
	e.countRows(rowsScanned)
	e.countBlocks(blocksScanned, blocksSkipped)
	if blocksSkipped > 0 {
		e.countZoneAxisSkips(t, zps, axisSkips)
	}
	// A clustered table whose unsorted append tail has outgrown one
	// block runs in a degraded regime: the sorted prefix still prunes
	// but every tail block spans the whole domain. Surface it in stats
	// instead of letting it look like silently-stale zone maps.
	if t.ClusterTail() >= blockRows {
		e.countDegradedScans(1)
	}
	if e.autoCluster.Load() {
		e.wstats.observe(tableKey(t), n, drives, margs)
	}
	if eo != nil && eo.o.LogEnabled(slog.LevelDebug) {
		eo.o.Debug("engine.scan", "table", b.q.Tables[ti],
			"rows", rowsScanned, "full_scan", true,
			"blocks_scanned", blocksScanned, "blocks_skipped", blocksSkipped)
	}
	return out, nil
}

// tableKey is the canonical (lower-cased) catalog key of a table.
func tableKey(t *data.Table) string { return strings.ToLower(t.Name()) }

// blockScan runs the zone-pruned block scan over [0, n) in ascending
// row order. Large tables fan blocks out to the worker pool in
// contiguous chunks concatenated in chunk order, so the output matches
// the sequential scan exactly. axisSkips is aligned with zps: skipped
// blocks are attributed to the first predicate that fired (skipAxis),
// giving per-axis pruning visibility on interleaved layouts.
func (e *Engine) blockScan(n int, zps []zonePred, f *blockFilter, eo *engineObs) (out []int32, rowsScanned, blocksScanned int64, axisSkips []int64) {
	nb := numBlocks(n)
	w := e.workers()
	if w == 1 || n < parallelThreshold {
		return scanBlockRange(0, nb, n, zps, f, eo)
	}
	parts := chunks(nb, w)
	outs := make([][]int32, len(parts))
	var rows, scanned []int64
	rows = make([]int64, len(parts))
	scanned = make([]int64, len(parts))
	skips := make([][]int64, len(parts))
	done := make(chan struct{})
	for ci := range parts {
		go func(ci int) {
			defer func() { done <- struct{}{} }()
			outs[ci], rows[ci], scanned[ci], skips[ci] =
				scanBlockRange(parts[ci][0], parts[ci][1], n, zps, f, eo)
		}(ci)
	}
	for range parts {
		<-done
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out = make([]int32, 0, total)
	axisSkips = make([]int64, len(zps))
	for ci := range outs {
		out = append(out, outs[ci]...)
		rowsScanned += rows[ci]
		blocksScanned += scanned[ci]
		for ai, s := range skips[ci] {
			axisSkips[ai] += s
		}
	}
	return out, rowsScanned, blocksScanned, axisSkips
}

// scanBlockRange scans blocks [b0, b1) of an n-row table.
func scanBlockRange(b0, b1, n int, zps []zonePred, f *blockFilter, eo *engineObs) (out []int32, rows, scanned int64, axisSkips []int64) {
	var buf [blockRows]int32
	out = make([]int32, 0, 64)
	axisSkips = make([]int64, len(zps))
	for bi := b0; bi < b1; bi++ {
		lo := bi * blockRows
		hi := min(lo+blockRows, n)
		if ax := skipAxis(zps, bi); ax >= 0 {
			axisSkips[ax]++
			continue
		}
		scanned++
		rows += int64(hi - lo)
		sel := f.applyDense(buf[:0], lo, hi)
		observeDensity(eo, len(sel), hi-lo)
		out = append(out, sel...)
	}
	return out, rows, scanned, axisSkips
}

// blockFilterRows applies the filter chain to an explicit candidate
// list (the index path) in blockRows-sized gather chunks, preserving
// candidate order. Large lists split across the worker pool with
// chunk-ordered concatenation.
func (e *Engine) blockFilterRows(cands []int32, f *blockFilter, eo *engineObs) []int32 {
	w := e.workers()
	if w == 1 || len(cands) < parallelThreshold {
		return gatherFilterRange(cands, 0, len(cands), f, eo)
	}
	parts := chunks(len(cands), w)
	outs := make([][]int32, len(parts))
	done := make(chan struct{})
	for ci := range parts {
		go func(ci int) {
			defer func() { done <- struct{}{} }()
			outs[ci] = gatherFilterRange(cands, parts[ci][0], parts[ci][1], f, eo)
		}(ci)
	}
	for range parts {
		<-done
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]int32, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// gatherFilterRange filters cands[lo:hi] block by block.
func gatherFilterRange(cands []int32, lo, hi int, f *blockFilter, eo *engineObs) []int32 {
	var buf [blockRows]int32
	out := make([]int32, 0, hi-lo)
	for blo := lo; blo < hi; blo += blockRows {
		bhi := min(blo+blockRows, hi)
		sel := buf[:bhi-blo]
		copy(sel, cands[blo:bhi])
		sel = f.apply(sel)
		observeDensity(eo, len(sel), bhi-blo)
		out = append(out, sel...)
	}
	return out
}

// planEdge records, for one table, the join edge the attach loop will
// use when that table is attached. pickNext depends only on the
// binding's edge lists and the attached set — never on candidate
// contents — so the plan is computable before any table is scanned.
type planEdge struct {
	equi     *equiBind
	probeTbl int // attached-side table of the equi edge; -1 otherwise
}

// attachPlan simulates join()'s attach order without candidates and
// returns each table's planned edge. Used to prove scan-level semi-join
// pushdown sound: filtering table ti's candidates by the key set of an
// earlier-scanned table is only allowed when ti's planned attach edge
// is exactly the equi edge to that table — then every dropped row would
// have matched zero probes and the tuple stream is unchanged.
func (e *Engine) attachPlan(b *binding) []planEdge {
	nt := len(b.tables)
	plan := make([]planEdge, nt)
	for i := range plan {
		plan[i] = planEdge{probeTbl: -1}
	}
	if nt == 1 {
		return plan
	}
	attached := map[int]int{0: 0}
	for len(attached) < nt {
		next, edge := e.pickNext(b, attached)
		if next < 0 {
			for ti := 0; ti < nt; ti++ {
				if _, ok := attached[ti]; !ok {
					next = ti
					break
				}
			}
		}
		if edge != nil && edge.equi != nil {
			probe := edge.equi.ltbl
			if edge.flip {
				probe = edge.equi.rtbl
			}
			plan[next] = planEdge{equi: edge.equi, probeTbl: probe}
		}
		attached[next] = len(attached)
	}
	return plan
}

// semiPredFor builds the scan-level pushdown predicate for table ti, or
// nil when pushdown is unsound or unprofitable. Requirements: ti's
// planned attach edge is an equi edge whose probe side was already
// scanned (table index < ti), and the probe candidate set is at least
// 4x smaller than ti's row count (otherwise the key-set probe costs
// more than it saves).
func semiPredFor(b *binding, plan []planEdge, cands [][]int32, ti int) *semiPred {
	if plan == nil || plan[ti].equi == nil {
		return nil
	}
	probe := plan[ti].probeTbl
	if probe < 0 || probe >= ti {
		return nil
	}
	prev := cands[probe]
	if len(prev)*4 > b.tables[ti].NumRows() {
		return nil
	}
	ej := plan[ti].equi
	var pvec, bvec []float64
	var pc, bc float64
	if ej.ltbl == probe {
		pvec, pc, bvec, bc = ej.lvec, ej.lc, ej.rvec, ej.rc
	} else {
		pvec, pc, bvec, bc = ej.rvec, ej.rc, ej.lvec, ej.lc
	}
	set := newF64Set(len(prev))
	for _, r := range prev {
		set.add(pc * pvec[r])
	}
	set.freeze()
	return &semiPred{set: set, vec: bvec, coef: bc}
}

// finalizeVec is the vectorized finalize: the same parallelFold chunk
// grid as the legacy path (identical chunk boundaries, identical merge
// order), with each chunk processed in blockRows-sized sub-blocks whose
// selection vector is compacted one condition at a time. Qualifying
// tuples step the aggregate in ascending tuple order — the exact
// StepValue sequence of the legacy fold, so SUM bits match.
func (e *Engine) finalizeVec(b *binding, region relq.Region, tuples []int32, order []int) (agg.Partial, error) {
	stride := len(order)
	if stride == 0 {
		return agg.Zero(), nil
	}
	pos := make([]int, len(b.tables)) // table index -> slot in tuple
	for slot, ti := range order {
		pos[ti] = slot
	}
	ntup := len(tuples) / stride
	e.countTuples(int64(ntup))

	part := e.parallelFold(ntup, func(lo, hi int) agg.Partial {
		p := agg.Zero()
		var buf [blockRows]int
		for blo := lo; blo < hi; blo += blockRows {
			bhi := min(blo+blockRows, hi)
			sel := buf[:0]
			for t := blo; t < bhi; t++ {
				sel = append(sel, t)
			}
			for i := range b.equiJoins {
				ej := &b.equiJoins[i]
				ls, rs := pos[ej.ltbl], pos[ej.rtbl]
				k := 0
				for _, t := range sel {
					row := tuples[t*stride:]
					sel[k] = t
					if ej.lc*ej.lvec[row[ls]] == ej.rc*ej.rvec[row[rs]] {
						k++
					}
				}
				sel = sel[:k]
				if len(sel) == 0 {
					break
				}
			}
			for i := range b.selDims {
				if len(sel) == 0 {
					break
				}
				sd := &b.selDims[i]
				iv := region[sd.di]
				slot := pos[sd.tbl]
				k := 0
				for _, t := range sel {
					v := sd.dim.Violation(sd.vec[tuples[t*stride+slot]])
					sel[k] = t
					if v > iv.Lo && v <= iv.Hi {
						k++
					}
				}
				sel = sel[:k]
			}
			for i := range b.joinDims {
				if len(sel) == 0 {
					break
				}
				jd := &b.joinDims[i]
				iv := region[jd.di]
				ls, rs := pos[jd.ltbl], pos[jd.rtbl]
				k := 0
				for _, t := range sel {
					row := tuples[t*stride:]
					v := jd.dim.JoinViolation(jd.lvec[row[ls]], jd.rvec[row[rs]])
					sel[k] = t
					if v > iv.Lo && v <= iv.Hi {
						k++
					}
				}
				sel = sel[:k]
			}
			if b.aggTbl >= 0 {
				slot := pos[b.aggTbl]
				for _, t := range sel {
					b.spec.StepValue(&p, b.aggVec[tuples[t*stride+slot]])
				}
			} else {
				for _, t := range sel {
					_ = t
					b.spec.StepValue(&p, 1.0)
				}
			}
		}
		return p
	})
	return part, nil
}
