package exec

import (
	"strings"

	"acquire/internal/agg"
	"acquire/internal/exec/regioncache"
	"acquire/internal/relq"
)

// SetRegionCache attaches a cross-search partial-aggregate cache: every
// region dispatched through AggregateBatch is first looked up by its
// canonical (query shape, aggregate spec, region) fingerprint, and
// misses fill the cache for later — or concurrent — searches. The cache
// may be shared between engines over the same data; nil detaches.
//
// Hits return exactly the partial a cold execution produced, so search
// results stay bit-identical with the cache on, off, or pre-warmed.
// The single-region Aggregate entry point deliberately bypasses the
// cache: it is the independent oracle the incremental-computation
// verification compares against.
func (e *Engine) SetRegionCache(c *regioncache.Cache) {
	e.regionCache.Store(c)
}

// EnableRegionCache attaches a fresh region cache of maxBytes capacity
// (<= 0 detaches) — the Evaluator-interface form of SetRegionCache for
// callers that size a cache rather than share an instance.
func (e *Engine) EnableRegionCache(maxBytes int64) {
	if maxBytes <= 0 {
		e.SetRegionCache(nil)
		return
	}
	e.SetRegionCache(regioncache.New(maxBytes))
}

// RegionCache returns the attached cache (nil when detached).
func (e *Engine) RegionCache() *regioncache.Cache {
	return e.regionCache.Load()
}

// InvalidateRegionCache drops every cached partial. Call it after
// mutating table contents in place (replacing a table via the catalog,
// rewriting a column); pure appends retire their entries automatically
// because the fingerprint mixes per-table row counts.
func (e *Engine) InvalidateRegionCache() {
	if c := e.regionCache.Load(); c != nil {
		c.Invalidate()
	}
}

// InvalidateTable drops every piece of derived state computed from a
// table's contents: its cached column vectors, sorted indexes, zone
// maps, grid index, and the whole region cache (entries are keyed by
// fingerprint, not table, so a per-table sweep is not possible). Call
// it after rewriting a table's contents in place. Pure appends and
// catalog Replaces need nothing: the column/sort/zone caches key on
// table identity + row count, and the region-cache fingerprints carry
// row-count generations. It also forgets the table's workload-derived
// clustering statistics, so a replaced table re-learns its clustering
// column from fresh traffic.
func (e *Engine) InvalidateTable(table string) {
	key := strings.ToLower(table)
	e.wstats.forget(key)
	e.mu.Lock()
	for k := range e.colCache {
		if k.table == key {
			delete(e.colCache, k)
		}
	}
	for k := range e.sortIdx {
		if k.table == key {
			delete(e.sortIdx, k)
		}
	}
	for k := range e.zones {
		if k.table == key {
			delete(e.zones, k)
		}
	}
	delete(e.grids, key)
	e.mu.Unlock()
	e.InvalidateRegionCache()
}

// batchFingerprint computes the query-shape fingerprint shared by every
// region of one batch, folding in each table's row count as a
// generation word: a table that has grown since an entry was cached can
// never produce that key again, so stale entries age out of the LRU
// instead of being served (the column cache's cacheGen scheme, applied
// to cache keys).
func (e *Engine) batchFingerprint(q *relq.Query, b *binding) relq.Fingerprint {
	fp := relq.QueryFingerprint(q)
	gens := make([]uint64, len(b.tables))
	for i, t := range b.tables {
		gens[i] = uint64(t.NumRows())
	}
	return fp.Mix(gens...)
}

// aggregateCached executes one bound region through the region cache
// and reports whether it hit. A hit (including joining another
// caller's in-flight execution of the same region) returns the stored
// partial without touching the execution path — Stats.Queries does
// not move. A miss executes aggregateBound exactly once per key under
// the cache's singleflight and stores the result.
func (e *Engine) aggregateCached(c *regioncache.Cache, fp relq.Fingerprint, b *binding, region relq.Region) (agg.Partial, bool, error) {
	k := fp.WithRegion(region)
	p, hit, evicted, err := c.Do(regioncache.Key{Hi: k.Hi, Lo: k.Lo}, func() (agg.Partial, error) {
		return e.aggregateBound(b, region)
	})
	if err != nil {
		return agg.Zero(), false, err
	}
	if hit {
		e.countCacheHits(1)
	} else {
		e.countCacheMisses(1)
	}
	if evicted > 0 {
		e.countCacheEvictions(evicted)
	}
	return p, hit, nil
}
