// Package exec is the evaluation layer of the reproduction: an
// in-memory columnar executor for conjunctive select-project-join
// queries with aggregate output. The original system delegated query
// execution to Postgres and noted the layer is modular (§3); every
// technique in this repository — ACQUIRE and the baselines — issues its
// (cell or whole) queries through this same engine, so execution-time
// comparisons count identical work units.
package exec

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/exec/regioncache"
	"acquire/internal/index"
	"acquire/internal/obs"
	"acquire/internal/relq"
)

// DefaultMaxIntermediate bounds intermediate join results, guarding
// accidental unbounded cartesian products.
const DefaultMaxIntermediate = 1 << 26

// Stats counts the work the engine has performed. All counters are
// cumulative and atomically updated; Snapshot returns a consistent copy.
type Stats struct {
	// Queries is the number of query executions (cell queries and whole
	// queries alike — each is one round trip to the evaluation layer).
	Queries int64
	// RowsScanned counts base-table rows touched by scans. Rows in
	// zone-map-skipped blocks are never touched and are not counted
	// (see BlocksSkipped).
	RowsScanned int64
	// BlocksScanned counts column blocks visited by the vectorized scan
	// path (full scans only; index-driven scans count rows, not blocks).
	BlocksScanned int64
	// BlocksSkipped counts column blocks proven candidate-free by zone
	// maps and skipped without touching any row.
	BlocksSkipped int64
	// TuplesExamined counts join tuples tested against regions.
	TuplesExamined int64
	// CellsSkipped counts queries answered empty by the grid index
	// without scanning (§7.4).
	CellsSkipped int64
	// CellsMerged counts grid cells answered by merging stored per-cell
	// partials (the box-aggregate kernel's interior cells) — zero rows
	// touched per cell.
	CellsMerged int64
	// BoundaryRows counts rows scanned from boundary-cell posting lists
	// by the box-aggregate kernel (also included in RowsScanned).
	BoundaryRows int64
	// CacheHits counts region executions answered from the attached
	// region cache (including joins onto another caller's in-flight
	// execution) — these never reach Queries.
	CacheHits int64
	// CacheMisses counts region executions that went through the cache
	// and had to execute (each also increments Queries).
	CacheMisses int64
	// CacheEvictions counts entries displaced from the region cache by
	// fills attributed to this engine.
	CacheEvictions int64
	// Resorts counts auto-clustering re-sorts: the workload-statistics
	// policy picked a clustering column and rewrote the table layout.
	Resorts int64
	// TailMerges counts auto-clustering tail merges: the unsorted append
	// tail of a clustered table was merged back into its sorted run.
	TailMerges int64
	// DegradedScans counts full scans over clustered tables whose
	// unsorted append tail has outgrown the block size — the layout
	// regime where zone maps still prune the sorted prefix but the tail
	// blocks span the whole domain and are never skippable.
	DegradedScans int64
	// ZOrderResorts counts auto-clustering re-sorts that produced a
	// Z-order (two-column interleaved) layout; each also increments
	// Resorts.
	ZOrderResorts int64
	// DeferredResorts counts layout actions (re-sorts or tail merges)
	// the scheduler postponed because a batch storm was in flight —
	// the cost model judged the rewrite cheaper to amortize after the
	// pending batches drain.
	DeferredResorts int64
}

// Sub returns the counter deltas s minus prev — the work performed
// between two snapshots.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Queries:         s.Queries - prev.Queries,
		RowsScanned:     s.RowsScanned - prev.RowsScanned,
		BlocksScanned:   s.BlocksScanned - prev.BlocksScanned,
		BlocksSkipped:   s.BlocksSkipped - prev.BlocksSkipped,
		TuplesExamined:  s.TuplesExamined - prev.TuplesExamined,
		CellsSkipped:    s.CellsSkipped - prev.CellsSkipped,
		CellsMerged:     s.CellsMerged - prev.CellsMerged,
		BoundaryRows:    s.BoundaryRows - prev.BoundaryRows,
		CacheHits:       s.CacheHits - prev.CacheHits,
		CacheMisses:     s.CacheMisses - prev.CacheMisses,
		CacheEvictions:  s.CacheEvictions - prev.CacheEvictions,
		Resorts:         s.Resorts - prev.Resorts,
		TailMerges:      s.TailMerges - prev.TailMerges,
		DegradedScans:   s.DegradedScans - prev.DegradedScans,
		ZOrderResorts:   s.ZOrderResorts - prev.ZOrderResorts,
		DeferredResorts: s.DeferredResorts - prev.DeferredResorts,
	}
}

// statsCells holds one generation of the engine's counters. ResetStats
// swaps in a fresh generation atomically, so a concurrent Snapshot
// reads counters that all belong to the same generation — never a
// half-reset mixture.
type statsCells struct {
	queries         atomic.Int64
	rowsScanned     atomic.Int64
	blocksScanned   atomic.Int64
	blocksSkipped   atomic.Int64
	tuplesExamined  atomic.Int64
	cellsSkipped    atomic.Int64
	cellsMerged     atomic.Int64
	boundaryRows    atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	cacheEvictions  atomic.Int64
	resorts         atomic.Int64
	tailMerges      atomic.Int64
	degradedScans   atomic.Int64
	zorderResorts   atomic.Int64
	deferredResorts atomic.Int64
}

// engineObs holds the pre-resolved observability handles of an
// attached observer, so the hot path pays one nil check and direct
// atomic increments — no registry lookups per query.
type engineObs struct {
	o             *obs.Observer
	queries       *obs.Counter
	rows          *obs.Counter
	blocksScanned *obs.Counter
	blocksSkipped *obs.Counter
	tuples        *obs.Counter
	cells         *obs.Counter
	cellsMerged   *obs.Counter
	boundary      *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheEvict    *obs.Counter
	resorts       *obs.Counter
	tailMerges    *obs.Counter
	degraded      *obs.Counter
	zorderResorts *obs.Counter
	deferred      *obs.Counter
	queryDur      *obs.Histogram
	selDensity    *obs.Histogram

	// axisCtrs are the per-column zone-skip counters, created lazily on
	// first skip attribution for a column (the label set is data-driven:
	// one series per pruning column actually seen).
	axisMu   sync.Mutex
	axisCtrs map[string]*obs.Counter
}

// Engine executes relq queries against a catalog.
type Engine struct {
	cat *data.Catalog

	mu       sync.RWMutex
	colCache map[colKey]colEntry
	grids    map[string]*index.Grid
	sortIdx  map[colKey]sortEntry
	zones    map[colKey]zoneEntry

	// legacyScan switches the row-at-a-time scan/join/finalize path
	// back on (the vectorized block path is the default); it exists as
	// the equivalence oracle for the block path and as an escape hatch.
	legacyScan atomic.Bool

	// MaxIntermediate bounds intermediate join sizes (tuples).
	MaxIntermediate int
	// Parallelism caps scan/aggregation workers; 0 means GOMAXPROCS.
	Parallelism int

	// stats points at the current counter generation; see statsCells.
	stats atomic.Pointer[statsCells]
	// obsState mirrors counters into an attached obs.Observer; nil
	// (the default) is the uninstrumented fast path.
	obsState atomic.Pointer[engineObs]
	// regionCache memoizes per-region partials across searches and
	// sessions (see cache.go); nil (the default) executes every region.
	regionCache atomic.Pointer[regioncache.Cache]

	// autoCluster enables the workload-adaptive clustering policy; see
	// autocluster.go. wstats is its per-column touch/selectivity
	// collector, fed by vscanTable and consulted by maybeAutoCluster at
	// the end of each batch; sweepMu serializes layout rewrites.
	autoCluster atomic.Bool
	wstats      workloadStats
	sweepMu     sync.Mutex
	// ClusterPolicy overrides the auto-clustering thresholds; zero
	// fields fall back to DefaultAutoClusterPolicy (see clusterPolicy).
	ClusterPolicy AutoClusterPolicy
	// zorder admits two-column Z-order layouts into the auto-clustering
	// election (equivalent to ClusterPolicy.ZOrder; either enables).
	zorder atomic.Bool

	// pendingBatches counts AggregateBatch calls currently in flight —
	// the backpressure signal the re-sort scheduler reads: a sweep that
	// would rewrite a layout while other batches are executing defers
	// instead (see sweepTable), so a batch storm never stalls behind a
	// re-sort it could have amortized after draining.
	pendingBatches atomic.Int64

	// zoneSkips attributes zone-map block skips to the pruning column
	// ("table.column" keys) — the per-axis visibility that shows both
	// dimensions of a Z-order layout earning their keep.
	zoneSkipMu sync.Mutex
	zoneSkips  map[string]int64
}

type colKey struct {
	table string
	ord   int
}

// colEntry / sortEntry / zoneEntry are derived-state cache slots keyed
// by *table identity*: a hit requires the exact *data.Table the entry
// was built from (pointer equality) at the same row count. Row-count
// generations alone cannot see a catalog Replace that keeps the row
// count — exactly what an auto-clustering re-sort does — while pointer
// identity retires such entries for free (the catalog hands out a new
// *Table, so lookups against it miss and rebuild). In-place rewrites of
// an existing table still require InvalidateTable, as before.
type colEntry struct {
	vec []float64
	src *data.Table
}

type sortEntry struct {
	idx *sortedIdx
	src *data.Table
	n   int // rows at build time
}

type zoneEntry struct {
	zm  *zoneMap
	src *data.Table
	n   int // column length at build time
}

// New creates an engine over the catalog.
func New(cat *data.Catalog) *Engine {
	e := &Engine{
		cat:             cat,
		colCache:        make(map[colKey]colEntry),
		grids:           make(map[string]*index.Grid),
		sortIdx:         make(map[colKey]sortEntry),
		zones:           make(map[colKey]zoneEntry),
		MaxIntermediate: DefaultMaxIntermediate,
	}
	e.stats.Store(&statsCells{})
	return e
}

// Catalog exposes the underlying catalog (read-only use).
func (e *Engine) Catalog() *data.Catalog { return e.cat }

// SetLegacyScan switches between the block-vectorized execution path
// (false, the default) and the row-at-a-time legacy path (true). Both
// produce bit-identical results — the legacy path is kept as the
// equivalence oracle of the property tests and as an operational
// escape hatch.
func (e *Engine) SetLegacyScan(on bool) { e.legacyScan.Store(on) }

// LegacyScan reports whether the legacy scan path is active.
func (e *Engine) LegacyScan() bool { return e.legacyScan.Load() }

// SetObserver attaches an observer: engine counters are mirrored into
// its registry (acquire_engine_* series, registered eagerly so they
// expose as 0 before the first query), per-query durations land in
// the "evaluate" phase histogram, and engine-level events (query
// completion, grid-index skips) stream to its structured log. A nil
// observer detaches, restoring the zero-cost fast path.
func (e *Engine) SetObserver(o *obs.Observer) {
	if o == nil {
		e.obsState.Store(nil)
		return
	}
	e.obsState.Store(&engineObs{
		o:             o,
		queries:       o.Counter("acquire_engine_queries_total", "Evaluation-layer query executions (cell and whole queries)."),
		rows:          o.Counter("acquire_engine_rows_scanned_total", "Base-table rows touched by scans."),
		blocksScanned: o.Counter("acquire_engine_blocks_scanned_total", "Column blocks visited by the vectorized full-scan path."),
		blocksSkipped: o.Counter("acquire_engine_blocks_skipped_total", "Column blocks proven candidate-free by zone maps and skipped without touching rows."),
		tuples:        o.Counter("acquire_engine_tuples_examined_total", "Join tuples tested against regions."),
		cells:         o.Counter("acquire_engine_cells_skipped_total", "Queries answered empty by the grid index without scanning (§7.4)."),
		cellsMerged:   o.Counter("acquire_engine_cells_merged_total", "Grid cells answered by merging stored per-cell partials (box-aggregate kernel interior cells)."),
		boundary:      o.Counter("acquire_engine_boundary_rows_total", "Rows scanned from boundary-cell posting lists by the box-aggregate kernel."),
		cacheHits:     o.Counter("acquire_cache_hits_total", "Region executions answered from the cross-search partial-aggregate cache."),
		cacheMisses:   o.Counter("acquire_cache_misses_total", "Region executions that missed the cross-search partial-aggregate cache and executed."),
		cacheEvict:    o.Counter("acquire_cache_evictions_total", "Entries displaced from the cross-search partial-aggregate cache by the byte cap."),
		resorts:       o.Counter("acquire_autocluster_resorts_total", "Auto-clustering re-sorts: the workload policy rewrote a table layout around a learned clustering column."),
		tailMerges:    o.Counter("acquire_autocluster_tail_merges_total", "Auto-clustering tail merges: a clustered table's unsorted append tail merged back into its sorted run."),
		degraded:      o.Counter("acquire_engine_cluster_degraded_scans_total", "Full scans over clustered tables whose unsorted append tail exceeds one block (zone maps blind on the tail)."),
		zorderResorts: o.Counter("acquire_autocluster_zorder_resorts_total", "Auto-clustering re-sorts that produced a Z-order (two-column interleaved) layout."),
		deferred:      o.Counter("acquire_autocluster_deferred_resorts_total", "Layout rewrites (re-sorts or tail merges) the scheduler postponed because a batch storm was in flight."),
		queryDur:      o.Histogram(`acquire_phase_duration_seconds{phase="evaluate"}`, "Duration of search/engine phases by phase name.", nil),
		selDensity: o.Histogram("acquire_engine_selection_density",
			"Post-filter selection-vector density per scanned block (kept rows / block rows).",
			[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1}),
	})
}

// Observer returns the attached observer (nil when detached) —
// baselines and other engine clients time their phases through it.
func (e *Engine) Observer() *obs.Observer {
	if eo := e.obsState.Load(); eo != nil {
		return eo.o
	}
	return nil
}

// Snapshot returns a copy of the statistics counters. The copy is
// generation-coherent with ResetStats: all four counters come from
// the same generation, so a snapshot concurrent with a reset is
// either entirely pre-reset or entirely post-reset.
func (e *Engine) Snapshot() Stats {
	c := e.stats.Load()
	return Stats{
		Queries:         c.queries.Load(),
		RowsScanned:     c.rowsScanned.Load(),
		BlocksScanned:   c.blocksScanned.Load(),
		BlocksSkipped:   c.blocksSkipped.Load(),
		TuplesExamined:  c.tuplesExamined.Load(),
		CellsSkipped:    c.cellsSkipped.Load(),
		CellsMerged:     c.cellsMerged.Load(),
		BoundaryRows:    c.boundaryRows.Load(),
		CacheHits:       c.cacheHits.Load(),
		CacheMisses:     c.cacheMisses.Load(),
		CacheEvictions:  c.cacheEvictions.Load(),
		Resorts:         c.resorts.Load(),
		TailMerges:      c.tailMerges.Load(),
		DegradedScans:   c.degradedScans.Load(),
		ZOrderResorts:   c.zorderResorts.Load(),
		DeferredResorts: c.deferredResorts.Load(),
	}
}

// ResetStats zeroes the counters by atomically swapping in a fresh
// counter generation (see Snapshot for the coherence contract).
func (e *Engine) ResetStats() {
	e.stats.Store(&statsCells{})
}

// countQueries / countRows / countTuples bump a counter in the current
// stats generation and mirror it into the attached observer, if any.
func (e *Engine) countQueries(n int64) {
	e.stats.Load().queries.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.queries.Add(n)
	}
}

func (e *Engine) countRows(n int64) {
	e.stats.Load().rowsScanned.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.rows.Add(n)
	}
}

func (e *Engine) countBlocks(scanned, skipped int64) {
	c := e.stats.Load()
	c.blocksScanned.Add(scanned)
	c.blocksSkipped.Add(skipped)
	if eo := e.obsState.Load(); eo != nil {
		eo.blocksScanned.Add(scanned)
		eo.blocksSkipped.Add(skipped)
	}
}

func (e *Engine) countTuples(n int64) {
	e.stats.Load().tuplesExamined.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.tuples.Add(n)
	}
}

func (e *Engine) countCellsMerged(n int64) {
	e.stats.Load().cellsMerged.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.cellsMerged.Add(n)
	}
}

func (e *Engine) countBoundaryRows(n int64) {
	e.stats.Load().boundaryRows.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.boundary.Add(n)
	}
}

func (e *Engine) countCacheHits(n int64) {
	e.stats.Load().cacheHits.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.cacheHits.Add(n)
	}
}

func (e *Engine) countCacheMisses(n int64) {
	e.stats.Load().cacheMisses.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.cacheMisses.Add(n)
	}
}

func (e *Engine) countCacheEvictions(n int64) {
	e.stats.Load().cacheEvictions.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.cacheEvict.Add(n)
	}
}

func (e *Engine) countResorts(n int64) {
	e.stats.Load().resorts.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.resorts.Add(n)
	}
}

func (e *Engine) countTailMerges(n int64) {
	e.stats.Load().tailMerges.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.tailMerges.Add(n)
	}
}

func (e *Engine) countDegradedScans(n int64) {
	e.stats.Load().degradedScans.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.degraded.Add(n)
	}
}

func (e *Engine) countZOrderResorts(n int64) {
	e.stats.Load().zorderResorts.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.zorderResorts.Add(n)
	}
}

func (e *Engine) countDeferredResorts(n int64) {
	e.stats.Load().deferredResorts.Add(n)
	if eo := e.obsState.Load(); eo != nil {
		eo.deferred.Add(n)
	}
}

// countZoneAxisSkips attributes one scan's zone-map block skips to the
// columns whose predicates fired (axisSkips aligned with zps; see
// skipAxis for the attribution rule). Only called when at least one
// block was skipped, so unskipping scans pay nothing.
func (e *Engine) countZoneAxisSkips(t *data.Table, zps []zonePred, axisSkips []int64) {
	cols := t.Schema().Columns
	tk := tableKey(t)
	e.zoneSkipMu.Lock()
	if e.zoneSkips == nil {
		e.zoneSkips = make(map[string]int64)
	}
	for i, n := range axisSkips {
		if n > 0 {
			e.zoneSkips[tk+"."+strings.ToLower(cols[zps[i].ord].Name)] += n
		}
	}
	e.zoneSkipMu.Unlock()
	if eo := e.obsState.Load(); eo != nil {
		for i, n := range axisSkips {
			if n > 0 {
				eo.zoneSkipCounter(strings.ToLower(cols[zps[i].ord].Name)).Add(n)
			}
		}
	}
}

// zoneSkipCounter returns (creating on first use) the per-column
// zone-skip counter series. Registration is idempotent in the registry,
// so concurrent first touches of the same column are safe.
func (eo *engineObs) zoneSkipCounter(column string) *obs.Counter {
	eo.axisMu.Lock()
	defer eo.axisMu.Unlock()
	if eo.axisCtrs == nil {
		eo.axisCtrs = make(map[string]*obs.Counter)
	}
	if c, ok := eo.axisCtrs[column]; ok {
		return c
	}
	c := eo.o.Counter(
		fmt.Sprintf("acquire_engine_zone_skips_total{column=%q}", column),
		"Zone-map block skips attributed to the pruning column (first firing predicate).")
	eo.axisCtrs[column] = c
	return c
}

// ZoneSkips returns a copy of the per-column zone-map skip attribution:
// "table.column" -> blocks skipped because that column's zone predicate
// fired first. On a Z-order layout both interleaved axes should appear
// with nonzero counts once the workload exercises both dimensions.
func (e *Engine) ZoneSkips() map[string]int64 {
	e.zoneSkipMu.Lock()
	defer e.zoneSkipMu.Unlock()
	out := make(map[string]int64, len(e.zoneSkips))
	for k, v := range e.zoneSkips {
		out[k] = v
	}
	return out
}

// SetZOrder admits two-column Z-order layouts into the auto-clustering
// election (no-op unless auto-clustering is also enabled). Off by
// default: single-column elections are strictly cheaper to compute and
// most workloads drive one dominant range column.
func (e *Engine) SetZOrder(on bool) { e.zorder.Store(on) }

// ZOrderOn reports whether Z-order layouts may be elected.
func (e *Engine) ZOrderOn() bool { return e.zorder.Load() }

// PendingBatches reports the number of AggregateBatch calls in flight.
func (e *Engine) PendingBatches() int64 { return e.pendingBatches.Load() }

// BuildGridIndex builds and registers a §7.4 grid bitmap index over the
// named numeric columns of a table. Subsequent Aggregate calls use it to
// skip empty cell queries on that table.
func (e *Engine) BuildGridIndex(table string, columns []string, binsPerDim int) error {
	t, err := e.cat.Table(table)
	if err != nil {
		return err
	}
	g, err := index.Build(t, columns, binsPerDim)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.grids[strings.ToLower(table)] = g
	e.mu.Unlock()
	return nil
}

// BuildGridAggIndex builds and registers an aggregate-augmented grid
// over the named numeric columns: per-cell COUNT, SUM/MIN/MAX of each
// aggCols column, and posting lists. Subsequent Aggregate calls on the
// table answer eligible single-table box queries from the stored
// partials (interior cells) plus posting-list scans (boundary cells).
// The build is idempotent: when the registered grid already covers the
// same columns and aggregate columns it is kept as is.
func (e *Engine) BuildGridAggIndex(table string, columns, aggCols []string, binsPerDim int) error {
	if g := e.grid(table); g != nil && g.HasAggs() && sameColumns(g.Columns(), columns) {
		all := true
		for _, c := range aggCols {
			if g.AggIndex(c) < 0 {
				all = false
				break
			}
		}
		if all {
			return nil
		}
	}
	t, err := e.cat.Table(table)
	if err != nil {
		return err
	}
	g, err := index.BuildAgg(t, columns, aggCols, binsPerDim, e.workers())
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.grids[strings.ToLower(table)] = g
	e.mu.Unlock()
	return nil
}

// sameColumns reports case-insensitive equality of two ordered column
// lists.
func sameColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

// DropGridIndex removes a table's grid index.
func (e *Engine) DropGridIndex(table string) {
	e.mu.Lock()
	delete(e.grids, strings.ToLower(table))
	e.mu.Unlock()
}

func (e *Engine) grid(table string) *index.Grid {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.grids[strings.ToLower(table)]
}

// Aggregate executes the query restricted to the violation region and
// returns the aggregate partial over the qualifying result tuples.
//
// The region has one interval per query dimension (in q.Dims order): a
// result tuple qualifies iff its violation vector lies inside the
// region. PrefixRegion yields whole refined queries; CellRegion yields
// the cell sub-queries of §5.1.1.
func (e *Engine) Aggregate(q *relq.Query, region relq.Region) (agg.Partial, error) {
	b, err := e.bind(q)
	if err != nil {
		return agg.Zero(), err
	}
	return e.aggregateBound(b, region)
}

// aggregateBound executes one bound region. With an observer attached
// it also times the execution into the "evaluate" phase histogram and
// emits a debug-level engine.query event; without one, the only
// instrumentation cost is a nil pointer load.
func (e *Engine) aggregateBound(b *binding, region relq.Region) (agg.Partial, error) {
	eo := e.obsState.Load()
	if eo == nil {
		return e.aggregateRegion(b, region, nil)
	}
	sp := eo.o.StartPhase("evaluate")
	p, err := e.aggregateRegion(b, region, eo)
	d := sp.End()
	if eo.o.LogEnabled(slog.LevelDebug) {
		eo.o.Debug("engine.query",
			"tables", len(b.tables), "dims", len(region),
			"duration_ms", float64(d.Microseconds())/1000,
			"err", err != nil)
	}
	return p, err
}

func (e *Engine) aggregateRegion(b *binding, region relq.Region, eo *engineObs) (agg.Partial, error) {
	if len(region) != len(b.q.Dims) {
		return agg.Zero(), fmt.Errorf("exec: region has %d dims, query has %d", len(region), len(b.q.Dims))
	}
	e.stats.Load().queries.Add(1)
	if eo != nil {
		eo.queries.Add(1)
	}
	if region.Empty() {
		return agg.Zero(), nil
	}

	// Grid-index emptiness check (§7.4): conservative per-table test
	// over the select dimensions.
	for ti := range b.tables {
		if e.cellProvablyEmpty(b, region, ti) {
			e.stats.Load().cellsSkipped.Add(1)
			if eo != nil {
				eo.cells.Add(1)
				eo.o.Debug("engine.grid_skip", "table", b.q.Tables[ti])
			}
			return agg.Zero(), nil
		}
	}

	// Box-aggregate kernel: eligible single-table queries are answered
	// from the aggregate grid's stored partials and posting lists.
	if p, ok, err := e.boxAggregate(b, region, eo); ok || err != nil {
		return p, err
	}

	// Phase 1: per-table candidate scan. On the vectorized path a
	// static attach plan (computable before any scan, since pickNext
	// never looks at candidates) enables scan-level semi-join
	// pushdown: a table whose planned attach edge is an equi edge to
	// an already-scanned table is pre-filtered by that table's key
	// set, shrinking the join build side before it is ever built.
	legacy := e.legacyScan.Load()
	var plan []planEdge
	if !legacy && len(b.tables) > 1 {
		plan = e.attachPlan(b)
	}
	cands := make([][]int32, len(b.tables))
	for ti := range b.tables {
		var c []int32
		var err error
		if legacy {
			c, err = e.scanTableLegacy(b, region, ti)
		} else {
			c, err = e.vscanTable(b, region, ti, semiPredFor(b, plan, cands, ti))
		}
		if err != nil {
			return agg.Zero(), err
		}
		cands[ti] = c
		if len(cands[ti]) == 0 {
			return agg.Zero(), nil
		}
	}

	// Phase 2: join.
	tuples, order, err := e.join(b, region, cands)
	if err != nil {
		return agg.Zero(), err
	}

	// Phase 3: final filter + aggregate.
	return e.finalize(b, region, tuples, order)
}

// scanTable returns the candidate row indexes of table ti: rows passing
// every fixed filter on the table and every local select dimension's
// region upper bound. Dispatches between the block-vectorized default
// and the row-at-a-time legacy path; both produce the identical
// candidate list in the identical order.
func (e *Engine) scanTable(b *binding, region relq.Region, ti int) ([]int32, error) {
	if e.legacyScan.Load() {
		return e.scanTableLegacy(b, region, ti)
	}
	return e.vscanTable(b, region, ti, nil)
}

// scanTableLegacy is the row-at-a-time scan.
//
// Access path selection mirrors a DBMS with secondary indexes: the most
// selective applicable range condition (a fixed range or a select
// dimension's value interval under the region) drives candidate
// generation through a sorted index; the remaining predicates are
// verified per candidate. When no condition narrows the table below
// half its rows, a full scan is used instead. The vectorized path
// shares this access-path choice (scanDrives/pickIndexDrive) and only
// changes how the surviving predicates are evaluated.
func (e *Engine) scanTableLegacy(b *binding, region relq.Region, ti int) ([]int32, error) {
	t := b.tables[ti]
	n := t.NumRows()
	locals := localDimsFor(b, region, ti)
	ranges := b.ranges[ti]
	strs := b.strFlts[ti]

	drives, empty := scanDrives(b, region, ti)
	if empty {
		return nil, nil // some dimension admits nothing
	}
	candidates, indexed, _, err := e.pickIndexDrive(t, n, drives)
	if err != nil {
		return nil, err
	}
	fullScan := !indexed
	scanned := int64(n)
	if !fullScan {
		scanned = int64(len(candidates))
	}
	e.countRows(scanned)
	if eo := e.obsState.Load(); eo != nil && eo.o.LogEnabled(slog.LevelDebug) {
		eo.o.Debug("engine.scan", "table", b.q.Tables[ti],
			"rows", scanned, "full_scan", fullScan)
	}

	verify := func(r int32) bool {
		for i := range ranges {
			v := ranges[i].vec[r]
			if v < ranges[i].lo || v > ranges[i].hi {
				return false
			}
		}
		for i := range strs {
			if _, ok := strs[i].set[strs[i].vec[r]]; !ok {
				return false
			}
		}
		for i := range locals {
			if locals[i].dim.Violation(locals[i].vec[r]) > locals[i].hi {
				return false
			}
		}
		return true
	}

	if fullScan {
		return e.parallelFilter(n, verify), nil
	}
	return e.parallelFilterRows(candidates, verify), nil
}

// cellProvablyEmpty consults a registered grid index to prove the
// region empty on table ti without scanning. It is conservative: it
// only answers true when the index covers every select dimension on the
// table and no occupied grid cell intersects any of the region's value
// boxes.
func (e *Engine) cellProvablyEmpty(b *binding, region relq.Region, ti int) bool {
	g := e.grid(b.q.Tables[ti])
	if g == nil {
		return false
	}
	gridCols := g.Columns()
	colPos := make(map[string]int, len(gridCols))
	for i, c := range gridCols {
		colPos[strings.ToLower(c)] = i
	}

	// Each local select dimension maps its violation interval to one or
	// two value intervals on its column; the cross product of the
	// per-dimension alternatives forms the boxes to test.
	type alt struct {
		pos       int
		intervals []index.Interval
	}
	var alts []alt
	covered := 0
	for _, sd := range b.selDims {
		if sd.tbl != ti {
			continue
		}
		pos, ok := colPos[strings.ToLower(sd.dim.Col.Column)]
		if !ok {
			return false // index does not cover this dimension
		}
		ivs := valueIntervals(sd.dim, region[sd.di])
		if len(ivs) == 0 {
			return true // dimension interval admits no values at all
		}
		alts = append(alts, alt{pos: pos, intervals: ivs})
		covered++
	}
	if covered == 0 {
		return false // nothing to prove with
	}

	box := make([]index.Interval, len(gridCols))
	var walk func(i int) bool // returns true if some box is occupied
	walk = func(i int) bool {
		if i == len(alts) {
			for j := range box {
				used := false
				for _, a := range alts {
					if a.pos == j {
						used = true
					}
				}
				if !used {
					box[j] = index.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
				}
			}
			occ, err := g.AnyInBox(box)
			return err != nil || occ // on error, assume occupied
		}
		for _, iv := range alts[i].intervals {
			box[alts[i].pos] = iv
			if walk(i + 1) {
				return true
			}
		}
		return false
	}
	return !walk(0)
}

// valueIntervals maps a violation interval to the value interval(s) it
// admits on the dimension's column (closed, conservative).
func valueIntervals(d *relq.Dimension, iv relq.ViolInterval) []index.Interval {
	if iv.Hi < 0 {
		return nil
	}
	switch d.Kind {
	case relq.SelectLE:
		hi := d.BoundAt(iv.Hi)
		lo := math.Inf(-1)
		if iv.Lo >= 0 {
			lo = d.BoundAt(iv.Lo)
		}
		return []index.Interval{{Lo: lo, Hi: hi}}
	case relq.SelectGE:
		lo := d.BoundAt(iv.Hi)
		hi := math.Inf(1)
		if iv.Lo >= 0 {
			hi = d.BoundAt(iv.Lo)
		}
		return []index.Interval{{Lo: lo, Hi: hi}}
	case relq.SelectEQ:
		bandHi := d.BoundAt(iv.Hi)
		if iv.Lo <= 0 {
			return []index.Interval{{Lo: d.Bound - bandHi, Hi: d.Bound + bandHi}}
		}
		bandLo := d.BoundAt(iv.Lo)
		return []index.Interval{
			{Lo: d.Bound - bandHi, Hi: d.Bound - bandLo},
			{Lo: d.Bound + bandLo, Hi: d.Bound + bandHi},
		}
	default:
		return []index.Interval{{Lo: math.Inf(-1), Hi: math.Inf(1)}}
	}
}

// join attaches tables one at a time, preferring hash equi-joins, then
// band joins, then cartesian products for disconnected components.
// Returns flattened tuples (stride = len(order)) of candidate-row
// positions translated to base-table row indexes, plus the attach order
// (table indexes).
func (e *Engine) join(b *binding, region relq.Region, cands [][]int32) ([]int32, []int, error) {
	nt := len(b.tables)
	if nt == 1 {
		out := make([]int32, len(cands[0]))
		copy(out, cands[0])
		return out, []int{0}, nil
	}

	attached := map[int]int{0: 0} // table index -> position in order
	order := []int{0}
	tuples := make([]int32, len(cands[0]))
	copy(tuples, cands[0])

	for len(order) < nt {
		next, edge := e.pickNext(b, attached)
		if next < 0 {
			// Disconnected: cartesian with the lowest unattached table.
			for ti := 0; ti < nt; ti++ {
				if _, ok := attached[ti]; !ok {
					next = ti
					break
				}
			}
		}
		var err error
		tuples, err = e.attach(b, region, tuples, order, attached, cands, next, edge)
		if err != nil {
			return nil, nil, err
		}
		attached[next] = len(order)
		order = append(order, next)
		if len(tuples) == 0 {
			return nil, order, nil
		}
	}
	return tuples, order, nil
}

// joinEdge describes how a new table connects to the attached set.
type joinEdge struct {
	equi *equiBind
	band *joinBind
	// flip is true when the new table is the edge's left side.
	flip bool
}

// pickNext finds an unattached table connected to the attached set,
// preferring equi edges.
func (e *Engine) pickNext(b *binding, attached map[int]int) (int, *joinEdge) {
	for i := range b.equiJoins {
		ej := &b.equiJoins[i]
		_, lIn := attached[ej.ltbl]
		_, rIn := attached[ej.rtbl]
		if lIn && !rIn {
			return ej.rtbl, &joinEdge{equi: ej}
		}
		if rIn && !lIn {
			return ej.ltbl, &joinEdge{equi: ej, flip: true}
		}
	}
	for i := range b.joinDims {
		jd := &b.joinDims[i]
		_, lIn := attached[jd.ltbl]
		_, rIn := attached[jd.rtbl]
		if lIn && !rIn {
			return jd.rtbl, &joinEdge{band: jd}
		}
		if rIn && !lIn {
			return jd.ltbl, &joinEdge{band: jd, flip: true}
		}
	}
	return -1, nil
}

// attach joins the tuples with table `next` via the edge, dispatching
// between the pre-sized vectorized attach and the incremental legacy
// one. Both emit the identical tuple stream (same tuples, same order,
// same overflow error).
func (e *Engine) attach(b *binding, region relq.Region, tuples []int32, order []int, attached map[int]int, cands [][]int32, next int, edge *joinEdge) ([]int32, error) {
	if e.legacyScan.Load() {
		return e.attachLegacy(b, region, tuples, order, attached, cands, next, edge)
	}
	return e.attachVec(b, region, tuples, order, attached, cands, next, edge)
}

// attachLegacy is the row-at-a-time attach with incrementally grown
// output and hash table.
func (e *Engine) attachLegacy(b *binding, region relq.Region, tuples []int32, order []int, attached map[int]int, cands [][]int32, next int, edge *joinEdge) ([]int32, error) {
	stride := len(order)
	ntup := len(tuples) / max(stride, 1)
	nextCands := cands[next]
	newStride := stride + 1

	emit := func(out []int32, ti int, row int32) ([]int32, error) {
		if (len(out)+newStride)/newStride > e.MaxIntermediate {
			return nil, fmt.Errorf("exec: intermediate join result exceeds %d tuples", e.MaxIntermediate)
		}
		out = append(out, tuples[ti*stride:(ti+1)*stride]...)
		out = append(out, row)
		return out, nil
	}

	var out []int32
	switch {
	case edge != nil && edge.equi != nil:
		ej := edge.equi
		// Probe side is the attached table; build side is `next`.
		var probeVec, buildVec []float64
		var probeCoef, buildCoef float64
		var probePos int
		if !edge.flip { // next is right side
			probeVec, probeCoef, probePos = ej.lvec, ej.lc, attached[ej.ltbl]
			buildVec, buildCoef = ej.rvec, ej.rc
		} else {
			probeVec, probeCoef, probePos = ej.rvec, ej.rc, attached[ej.rtbl]
			buildVec, buildCoef = ej.lvec, ej.lc
		}
		ht := make(map[float64][]int32, len(nextCands))
		for _, r := range nextCands {
			k := buildCoef * buildVec[r]
			ht[k] = append(ht[k], r)
		}
		for ti := 0; ti < ntup; ti++ {
			probeRow := tuples[ti*stride+probePos]
			k := probeCoef * probeVec[probeRow]
			for _, r := range ht[k] {
				var err error
				out, err = emit(out, ti, r)
				if err != nil {
					return nil, err
				}
			}
		}

	case edge != nil && edge.band != nil:
		jd := edge.band
		maxBand := jd.dim.BoundAt(region[jd.di].Hi)
		var probeVec, buildVec []float64
		var probeCoef, buildCoef float64
		var probePos int
		if !edge.flip { // next is right side
			probeVec, probeCoef, probePos = jd.lvec, jd.lc, attached[jd.ltbl]
			buildVec, buildCoef = jd.rvec, jd.rc
		} else {
			probeVec, probeCoef, probePos = jd.rvec, jd.rc, attached[jd.rtbl]
			buildVec, buildCoef = jd.lvec, jd.lc
		}
		if buildCoef == 0 {
			return nil, fmt.Errorf("exec: zero join coefficient")
		}
		// Sort build side by scaled value; binary-search the band.
		type kv struct {
			key float64
			row int32
		}
		sorted := make([]kv, len(nextCands))
		for i, r := range nextCands {
			sorted[i] = kv{key: buildCoef * buildVec[r], row: r}
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].key < sorted[j].key })
		for ti := 0; ti < ntup; ti++ {
			probeRow := tuples[ti*stride+probePos]
			center := probeCoef * probeVec[probeRow]
			lo := sort.Search(len(sorted), func(i int) bool { return sorted[i].key >= center-maxBand })
			for i := lo; i < len(sorted) && sorted[i].key <= center+maxBand; i++ {
				var err error
				out, err = emit(out, ti, sorted[i].row)
				if err != nil {
					return nil, err
				}
			}
		}

	default: // cartesian
		for ti := 0; ti < ntup; ti++ {
			for _, r := range nextCands {
				var err error
				out, err = emit(out, ti, r)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// finalize verifies every join condition and the region on each tuple,
// folding qualifying tuples into the aggregate. Dispatches between the
// block-compacted vectorized fold and the row-at-a-time legacy one;
// both step the aggregate over the same tuples in the same order on the
// same parallelFold chunk grid, so even SUM bits agree. The vectorized
// fold checks region dimensions individually, which requires every
// query dimension to be bound (always true today — the guard is belt
// and braces against future dimension kinds).
func (e *Engine) finalize(b *binding, region relq.Region, tuples []int32, order []int) (agg.Partial, error) {
	if e.legacyScan.Load() || len(b.selDims)+len(b.joinDims) != len(b.q.Dims) {
		return e.finalizeLegacy(b, region, tuples, order)
	}
	return e.finalizeVec(b, region, tuples, order)
}

func (e *Engine) finalizeLegacy(b *binding, region relq.Region, tuples []int32, order []int) (agg.Partial, error) {
	stride := len(order)
	if stride == 0 {
		return agg.Zero(), nil
	}
	pos := make([]int, len(b.tables)) // table index -> slot in tuple
	for slot, ti := range order {
		pos[ti] = slot
	}
	ntup := len(tuples) / stride
	e.countTuples(int64(ntup))

	part := e.parallelFold(ntup, func(lo, hi int) agg.Partial {
		viol := make([]float64, len(b.q.Dims))
		p := agg.Zero()
	tuple:
		for t := lo; t < hi; t++ {
			row := tuples[t*stride : (t+1)*stride]

			for i := range b.equiJoins {
				ej := &b.equiJoins[i]
				l := ej.lc * ej.lvec[row[pos[ej.ltbl]]]
				r := ej.rc * ej.rvec[row[pos[ej.rtbl]]]
				if l != r {
					continue tuple
				}
			}
			for i := range b.selDims {
				sd := &b.selDims[i]
				viol[sd.di] = sd.dim.Violation(sd.vec[row[pos[sd.tbl]]])
			}
			for i := range b.joinDims {
				jd := &b.joinDims[i]
				viol[jd.di] = jd.dim.JoinViolation(jd.lvec[row[pos[jd.ltbl]]], jd.rvec[row[pos[jd.rtbl]]])
			}
			if !region.Contains(viol) {
				continue tuple
			}

			v := 1.0
			if b.aggTbl >= 0 {
				v = b.aggVec[row[pos[b.aggTbl]]]
			}
			b.spec.StepValue(&p, v)
		}
		return p
	})
	return part, nil
}
