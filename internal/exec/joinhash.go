package exec

import (
	"fmt"
	"math"
	"sort"

	"acquire/internal/relq"
)

// This file holds the vectorized join machinery: an open-addressed
// float64 key set (semi-join pushdown), an order-preserving grouped
// hash table (the pre-sized equi-join build side), and attachVec — the
// block-path counterpart of the row-at-a-time attach.
//
// Both hash structures replicate Go's map semantics for float64 keys,
// which the legacy path relies on: +0 and -0 are the same key, and a
// NaN key is unreachable — a build row with a NaN key can never match
// any probe (NaN != NaN), so dropping such rows at insert preserves
// the emitted tuple stream exactly.

// hashF64 mixes the normalized bit pattern of a key (splitmix64-style
// finalizer — cheap and well distributed for the clustered integer-ish
// keys join columns carry).
func hashF64(k float64) uint64 {
	b := math.Float64bits(k)
	b ^= b >> 33
	b *= 0xff51afd7ed558ccd
	b ^= b >> 33
	b *= 0xc4ceb9fe1a85ec53
	b ^= b >> 33
	return b
}

// normKey folds -0 onto +0 so both hash and compare as one key.
func normKey(k float64) float64 {
	if k == 0 {
		return 0
	}
	return k
}

// Join keys are very often small dense integers (generated surrogate
// keys, TPC-H style foreign keys), where a direct-indexed bitmap or
// offset table beats any hash probe by an order of magnitude. Both
// structures therefore carry a dense fast path, taken when every key
// is integral and the key span is modest relative to the key count.

// denseSpanCap bounds the direct-indexed domain (~1M slots) so a
// pathological key range can never balloon memory.
const denseSpanCap = 1 << 20

// denseLimit is the widest integer key span worth direct-indexing for
// n keys: generously sparse (64x) so realistic selective scans over
// surrogate-key domains still qualify, but never above denseSpanCap.
func denseLimit(n int) float64 {
	limit := 64*n + 1024
	if limit > denseSpanCap {
		limit = denseSpanCap
	}
	return float64(limit)
}

// f64Set is an open-addressed membership set over float64 keys. Empty
// slots hold NaN (a value no stored key can be, since NaN keys are
// skipped on add and never match on contains). freeze() may replace
// the probe loop with a direct-indexed bitmap.
type f64Set struct {
	keys []float64
	mask uint64
	// Dense-domain tracking: adds keep (kmin, kmax, allInt) current so
	// freeze can decide eligibility without a rescan.
	n          int
	kmin, kmax float64
	allInt     bool
	dense      []bool
	dmin       float64
}

// newF64Set sizes the table for n keys at <= 50% load.
func newF64Set(n int) *f64Set {
	cap := 8
	for cap < 2*n {
		cap *= 2
	}
	s := &f64Set{
		keys: make([]float64, cap), mask: uint64(cap - 1),
		kmin: math.Inf(1), kmax: math.Inf(-1), allInt: true,
	}
	for i := range s.keys {
		s.keys[i] = math.NaN()
	}
	return s
}

func (s *f64Set) add(k float64) {
	if k != k {
		return // NaN keys are unreachable; don't store them
	}
	k = normKey(k)
	if k != math.Trunc(k) {
		s.allInt = false
	} else {
		if k < s.kmin {
			s.kmin = k
		}
		if k > s.kmax {
			s.kmax = k
		}
		s.n++
	}
	i := hashF64(k) & s.mask
	for {
		cur := s.keys[i]
		if cur != cur {
			s.keys[i] = k
			return
		}
		if cur == k {
			return
		}
		i = (i + 1) & s.mask
	}
}

// freeze switches contains to a direct-indexed bitmap when every added
// key was integral and the span is dense enough. Call after the last
// add; further adds after freeze are not supported.
func (s *f64Set) freeze() {
	if !s.allInt || s.n == 0 {
		return
	}
	span := s.kmax - s.kmin
	if !(span >= 0) || span+1 > denseLimit(s.n) {
		return
	}
	d := make([]bool, int(span)+1)
	for _, k := range s.keys {
		if k == k {
			d[int(k-s.kmin)] = true
		}
	}
	s.dense, s.dmin = d, s.kmin
}

func (s *f64Set) contains(k float64) bool {
	if k != k {
		return false
	}
	k = normKey(k)
	if s.dense != nil {
		i := k - s.dmin
		if !(i >= 0) || i >= float64(len(s.dense)) || i != math.Trunc(i) {
			return false
		}
		return s.dense[int(i)]
	}
	i := hashF64(k) & s.mask
	for {
		cur := s.keys[i]
		if cur != cur {
			return false
		}
		if cur == k {
			return true
		}
		i = (i + 1) & s.mask
	}
}

// f64Groups is a grouped hash table: every distinct key maps to the
// list of build rows carrying it, in build-input order — exactly the
// per-key append order the legacy map build produces. Built in two
// passes (count, prefix-sum, fill) into one exact-capacity rows array,
// so nothing grows incrementally.
type f64Groups struct {
	keys []float64 // open-addressed; NaN = empty slot
	mask uint64
	off  []int32 // per slot: start offset into rows
	cnt  []int32 // per slot: group length
	rows []int32 // all build rows, grouped by key, input order within a group
	// Dense mode: keys is nil and slots are indexed directly by
	// int(key - dmin) instead of by hash probe.
	dense bool
	dmin  float64
}

// buildDenseGroups is the direct-indexed build, taken when every key
// is integral over a modest span. Returns nil when ineligible.
func buildDenseGroups(buildRows []int32, vec []float64, coef float64) *f64Groups {
	kmin, kmax := math.Inf(1), math.Inf(-1)
	n := 0
	for _, r := range buildRows {
		k := coef * vec[r]
		if k != k {
			continue // NaN keys dropped, as in the hash build
		}
		if k != math.Trunc(k) {
			return nil
		}
		if k < kmin {
			kmin = k
		}
		if k > kmax {
			kmax = k
		}
		n++
	}
	if n == 0 {
		return nil
	}
	span := kmax - kmin
	if !(span >= 0) || span+1 > denseLimit(n) {
		return nil
	}
	w := int(span) + 1
	g := &f64Groups{dense: true, dmin: kmin, off: make([]int32, w), cnt: make([]int32, w)}
	for _, r := range buildRows {
		if k := coef * vec[r]; k == k {
			g.cnt[int(k-kmin)]++
		}
	}
	run := int32(0)
	for i := range g.off {
		g.off[i] = run
		run += g.cnt[i]
	}
	g.rows = make([]int32, n)
	cur := make([]int32, w)
	copy(cur, g.off)
	for _, r := range buildRows {
		if k := coef * vec[r]; k == k {
			i := int(k - kmin)
			g.rows[cur[i]] = r
			cur[i]++
		}
	}
	return g
}

// buildF64Groups groups buildRows by their scaled key. Rows with NaN
// keys are dropped (unreachable in a Go map, see above).
func buildF64Groups(buildRows []int32, vec []float64, coef float64) *f64Groups {
	if g := buildDenseGroups(buildRows, vec, coef); g != nil {
		return g
	}
	cap := 8
	for cap < 2*len(buildRows) {
		cap *= 2
	}
	g := &f64Groups{
		keys: make([]float64, cap),
		mask: uint64(cap - 1),
		off:  make([]int32, cap),
		cnt:  make([]int32, cap),
	}
	for i := range g.keys {
		g.keys[i] = math.NaN()
	}
	// Pass 1: count group sizes.
	total := 0
	for _, r := range buildRows {
		k := coef * vec[r]
		if k != k {
			continue
		}
		k = normKey(k)
		i := hashF64(k) & g.mask
		for {
			cur := g.keys[i]
			if cur != cur {
				g.keys[i] = k
				break
			}
			if cur == k {
				break
			}
			i = (i + 1) & g.mask
		}
		g.cnt[i]++
		total++
	}
	// Prefix-sum offsets, then fill in input order.
	run := int32(0)
	for i := range g.off {
		g.off[i] = run
		run += g.cnt[i]
	}
	g.rows = make([]int32, total)
	cur := make([]int32, len(g.off))
	copy(cur, g.off)
	for _, r := range buildRows {
		k := coef * vec[r]
		if k != k {
			continue
		}
		k = normKey(k)
		i := hashF64(k) & g.mask
		for g.keys[i] != k {
			i = (i + 1) & g.mask
		}
		g.rows[cur[i]] = r
		cur[i]++
	}
	return g
}

// lookup returns the build rows matching a probe key (nil for misses
// and NaN probes — a Go map lookup with a NaN key always misses).
func (g *f64Groups) lookup(k float64) []int32 {
	if k != k {
		return nil
	}
	k = normKey(k)
	if g.dense {
		i := k - g.dmin
		if !(i >= 0) || i >= float64(len(g.off)) || i != math.Trunc(i) {
			return nil
		}
		s := int(i)
		if g.cnt[s] == 0 {
			return nil
		}
		return g.rows[g.off[s] : g.off[s]+g.cnt[s]]
	}
	i := hashF64(k) & g.mask
	for {
		cur := g.keys[i]
		if cur != cur {
			return nil
		}
		if cur == k {
			return g.rows[g.off[i] : g.off[i]+g.cnt[i]]
		}
		i = (i + 1) & g.mask
	}
}

// attachVec joins the tuples with table `next` via the edge — the
// vectorized attach. It emits the exact tuple stream of the legacy
// attach (same tuples, same order, same overflow error) but sizes
// everything up front: a counting pass fixes the output length so the
// result array is allocated once at exact capacity, the equi build
// side goes through the two-pass grouped table instead of an
// incrementally grown map, and when the probe side is much smaller
// than the build side the build rows are pre-filtered by the probe key
// set (a row whose key matches no probe can never emit).
func (e *Engine) attachVec(b *binding, region relq.Region, tuples []int32, order []int, attached map[int]int, cands [][]int32, next int, edge *joinEdge) ([]int32, error) {
	stride := len(order)
	ntup := len(tuples) / max(stride, 1)
	nextCands := cands[next]
	newStride := stride + 1

	overflow := func() error {
		return fmt.Errorf("exec: intermediate join result exceeds %d tuples", e.MaxIntermediate)
	}

	switch {
	case edge != nil && edge.equi != nil:
		ej := edge.equi
		// Probe side is the attached table; build side is `next`.
		var probeVec, buildVec []float64
		var probeCoef, buildCoef float64
		var probePos int
		if !edge.flip { // next is right side
			probeVec, probeCoef, probePos = ej.lvec, ej.lc, attached[ej.ltbl]
			buildVec, buildCoef = ej.rvec, ej.rc
		} else {
			probeVec, probeCoef, probePos = ej.rvec, ej.rc, attached[ej.rtbl]
			buildVec, buildCoef = ej.lvec, ej.lc
		}
		buildRows := nextCands
		// Build-side semi filter: when the probe side is far smaller,
		// drop build rows whose key matches no probe key before
		// building the table. Dropped rows are unreachable from every
		// probe, so the join output is unchanged.
		if ntup > 0 && len(buildRows) >= 4*ntup {
			pset := newF64Set(ntup)
			for ti := 0; ti < ntup; ti++ {
				pset.add(probeCoef * probeVec[tuples[ti*stride+probePos]])
			}
			pset.freeze()
			kept := make([]int32, 0, 4*ntup)
			for _, r := range buildRows {
				if pset.contains(buildCoef * buildVec[r]) {
					kept = append(kept, r)
				}
			}
			buildRows = kept
		}
		g := buildF64Groups(buildRows, buildVec, buildCoef)
		total := 0
		for ti := 0; ti < ntup; ti++ {
			k := probeCoef * probeVec[tuples[ti*stride+probePos]]
			total += len(g.lookup(k))
			if total > e.MaxIntermediate {
				return nil, overflow()
			}
		}
		out := make([]int32, 0, total*newStride)
		for ti := 0; ti < ntup; ti++ {
			k := probeCoef * probeVec[tuples[ti*stride+probePos]]
			for _, r := range g.lookup(k) {
				out = append(out, tuples[ti*stride:(ti+1)*stride]...)
				out = append(out, r)
			}
		}
		return out, nil

	case edge != nil && edge.band != nil:
		jd := edge.band
		maxBand := jd.dim.BoundAt(region[jd.di].Hi)
		var probeVec, buildVec []float64
		var probeCoef, buildCoef float64
		var probePos int
		if !edge.flip { // next is right side
			probeVec, probeCoef, probePos = jd.lvec, jd.lc, attached[jd.ltbl]
			buildVec, buildCoef = jd.rvec, jd.rc
		} else {
			probeVec, probeCoef, probePos = jd.rvec, jd.rc, attached[jd.rtbl]
			buildVec, buildCoef = jd.lvec, jd.lc
		}
		if buildCoef == 0 {
			return nil, fmt.Errorf("exec: zero join coefficient")
		}
		// Sort build side by scaled value once; both the counting and
		// the fill pass run the identical binary-search + linear band
		// walk, so they agree row for row (including NaN key and NaN
		// center behavior, where comparisons are all-false).
		type kv struct {
			key float64
			row int32
		}
		sorted := make([]kv, len(nextCands))
		for i, r := range nextCands {
			sorted[i] = kv{key: buildCoef * buildVec[r], row: r}
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].key < sorted[j].key })
		total := 0
		for ti := 0; ti < ntup; ti++ {
			center := probeCoef * probeVec[tuples[ti*stride+probePos]]
			lo := sort.Search(len(sorted), func(i int) bool { return sorted[i].key >= center-maxBand })
			for i := lo; i < len(sorted) && sorted[i].key <= center+maxBand; i++ {
				total++
			}
			if total > e.MaxIntermediate {
				return nil, overflow()
			}
		}
		out := make([]int32, 0, total*newStride)
		for ti := 0; ti < ntup; ti++ {
			center := probeCoef * probeVec[tuples[ti*stride+probePos]]
			lo := sort.Search(len(sorted), func(i int) bool { return sorted[i].key >= center-maxBand })
			for i := lo; i < len(sorted) && sorted[i].key <= center+maxBand; i++ {
				out = append(out, tuples[ti*stride:(ti+1)*stride]...)
				out = append(out, sorted[i].row)
			}
		}
		return out, nil

	default: // cartesian
		if len(nextCands) > 0 && ntup > e.MaxIntermediate/len(nextCands) {
			return nil, overflow()
		}
		total := ntup * len(nextCands)
		out := make([]int32, 0, total*newStride)
		for ti := 0; ti < ntup; ti++ {
			for _, r := range nextCands {
				out = append(out, tuples[ti*stride:(ti+1)*stride]...)
				out = append(out, r)
			}
		}
		return out, nil
	}
}
