package exec

import (
	"context"
	"testing"
	"time"

	"acquire/internal/obs"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

// TestShardedScatterSpans: a context span over AggregateBatch grows a
// scatter span with one scatter.shard child per shard, and the skew
// gauge + straggler histogram populate from the same timings.
func TestShardedScatterSpans(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 600, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	sv, err := NewShardedOn(cat, "users", shards)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sv.SetObserver(obs.NewObserver(reg))

	tr := obs.NewTrace("scatter-test", nil)
	root := tr.NewSpan(0, "search")
	ctx := obs.ContextWithSpan(context.Background(), root)

	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := []relq.Region{
		{{Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}},
		{{Lo: -1, Hi: 10}, {Lo: -1, Hi: 10}, {Lo: -1, Hi: 10}},
	}
	if _, err := sv.AggregateBatch(ctx, q, regions); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.Snapshot()
	byID := map[obs.SpanID]obs.TraceSpan{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var scatter obs.TraceSpan
	var shardSpans []obs.TraceSpan
	for _, s := range spans {
		switch s.Name {
		case "scatter":
			scatter = s
		case "scatter.shard":
			shardSpans = append(shardSpans, s)
		}
	}
	if scatter.ID == 0 || scatter.Parent != root.ID() {
		t.Fatalf("scatter span = %+v", scatter)
	}
	if len(shardSpans) != shards {
		t.Fatalf("got %d scatter.shard spans, want %d", len(shardSpans), shards)
	}
	seen := map[int64]bool{}
	for _, s := range shardSpans {
		if s.Parent != scatter.ID {
			t.Errorf("shard span %d not under scatter", s.ID)
		}
		if s.End.IsZero() {
			t.Errorf("shard span %d never ended", s.ID)
		}
		idx, ok := s.Attr("shard")
		if !ok {
			t.Errorf("shard span %d missing shard attr", s.ID)
			continue
		}
		seen[idx.I64()] = true
		if a, ok := s.Attr("regions"); !ok || a.I64() != int64(len(regions)) {
			t.Errorf("shard %d regions attr = %+v", idx.I64(), a)
		}
		if a, ok := s.Attr("partials"); !ok || a.I64() != int64(len(regions)) {
			t.Errorf("shard %d partials attr = %+v", idx.I64(), a)
		}
		if a, ok := s.Attr("busy_ns"); !ok || a.I64() <= 0 {
			t.Errorf("shard %d busy_ns attr = %+v", idx.I64(), a)
		}
	}
	if len(seen) != shards {
		t.Errorf("shard indices = %v, want all of 0..%d", seen, shards-1)
	}
	if _, ok := scatter.Attr("skew_ratio"); !ok {
		t.Error("scatter span missing skew_ratio attr")
	}

	// The same timings feed the skew gauge and straggler histogram.
	snap := reg.Snapshot()
	if skew := snap["acquire_shard_skew_ratio"]; skew < 1 {
		t.Errorf("acquire_shard_skew_ratio = %v, want >= 1", skew)
	}
	if c := snap["acquire_shard_straggler_seconds_count"]; c != 1 {
		t.Errorf("acquire_shard_straggler_seconds_count = %v, want 1", c)
	}
}

// TestShardedSkewGaugeWithoutTrace: the skew gauge must populate from
// an observer alone — plain -json metric runs carry no context span.
func TestShardedSkewGaugeWithoutTrace(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 600, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewShardedOn(cat, "users", 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sv.SetObserver(obs.NewObserver(reg))

	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := []relq.Region{{{Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}}}
	if _, err := sv.AggregateBatch(context.Background(), q, regions); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if skew := snap["acquire_shard_skew_ratio"]; skew < 1 {
		t.Errorf("acquire_shard_skew_ratio = %v, want >= 1 without a trace", skew)
	}
	if c := snap["acquire_shard_straggler_seconds_count"]; c != 1 {
		t.Errorf("straggler count = %v, want 1", c)
	}
}

// TestShardedNoTimingWithoutObserverOrTrace: with neither attached the
// scatter path must not record spans anywhere (nothing to attach them
// to) — this is the zero-overhead configuration.
func TestShardedNoTimingWithoutObserverOrTrace(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewShardedOn(cat, "users", 2)
	if err != nil {
		t.Fatal(err)
	}
	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := []relq.Region{{{Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}}}
	if _, err := sv.AggregateBatch(context.Background(), q, regions); err != nil {
		t.Fatal(err)
	}
}

// TestShardedScatterSpanContainment: shard spans are timed with real
// wall-clock dispatch/finish stamps and must sit inside the scatter
// interval, with the scatter span's end no earlier than the last
// shard's.
func TestShardedScatterSpanContainment(t *testing.T) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: 600, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewShardedOn(cat, "users", 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("contain", nil)
	root := tr.NewSpan(0, "search")
	ctx := obs.ContextWithSpan(context.Background(), root)
	q := usersQuery(relq.AggCount, "", usersDims()...)
	regions := []relq.Region{{{Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}, {Lo: -1, Hi: 40}}}
	if _, err := sv.AggregateBatch(ctx, q, regions); err != nil {
		t.Fatal(err)
	}
	root.End()

	var scatter obs.TraceSpan
	var last time.Time
	for _, s := range tr.Snapshot() {
		if s.Name == "scatter" {
			scatter = s
		}
		if s.Name == "scatter.shard" && s.End.After(last) {
			last = s.End
		}
	}
	for _, s := range tr.Snapshot() {
		if s.Name != "scatter.shard" {
			continue
		}
		if s.Start.Before(scatter.Start) {
			t.Errorf("shard span starts before scatter dispatch")
		}
	}
	if scatter.End.Before(last) {
		t.Errorf("scatter ends %v before last shard end %v", scatter.End, last)
	}
}
