package data

import (
	"fmt"
	"strings"
	"sync"
)

// Partitioner range-partitions a catalog into N in-process shards.
//
// Exactly one table — the designated fact table — is cut into N
// contiguous row ranges (the implicit row id is the partition key, so
// partitioning preserves row order and shard i is rows
// [i·n/N, (i+1)·n/N) of the parent). Every other table is broadcast:
// each shard catalog holds the same *Table pointer as the parent, the
// in-process analogue of a replicated dimension table. This keeps
// joins exact — each fact row, and therefore each join result tuple,
// lives in exactly one shard, so per-shard partials over disjoint
// tuple sets compose by the §2.6 merge rule.
//
// Queries that do not reference the fact table must not be scattered
// (every shard would see the full broadcast tables and multiply-count);
// route them to a single shard instead — shard 0 is complete for them.
type Partitioner struct {
	// Shards is the shard count N (>= 1).
	Shards int
	// Table optionally names the fact table to partition. Empty picks
	// the largest table by row count (ties break on the lexicographically
	// smallest name, so the choice is deterministic).
	Table string
}

// Shard is one shard's view of the data: a catalog with the fact
// table's row-range slice plus broadcast pointers to every other
// table, and the fact-table row range it owns.
type Shard struct {
	// Catalog is the shard-local catalog.
	Catalog *Catalog
	// Lo and Hi delimit the shard's fact-table rows [Lo, Hi) in parent
	// row ids; local row r corresponds to parent row Lo+r.
	Lo, Hi int
}

// Partition is the live output of a Partitioner: the shard catalogs
// plus enough bookkeeping to re-slice after the parent catalog
// changes. It is safe for concurrent readers; Refresh takes the write
// lock.
type Partition struct {
	parent *Catalog
	table  string // fact table name as registered

	mu     sync.RWMutex
	shards []Shard
	gen    int // parent fact-table row count at slice time
}

// Partition splits the catalog. The parent catalog is not modified;
// shard catalogs are new Catalog values over slices and shared
// pointers.
func (p Partitioner) Partition(cat *Catalog) (*Partition, error) {
	if p.Shards < 1 {
		return nil, fmt.Errorf("data: partitioner wants >= 1 shards, got %d", p.Shards)
	}
	fact := p.Table
	if fact == "" {
		best := -1
		for _, name := range cat.Names() { // sorted, so ties are deterministic
			t, err := cat.Table(name)
			if err != nil {
				return nil, err
			}
			if t.NumRows() > best {
				best, fact = t.NumRows(), t.Name()
			}
		}
		if fact == "" {
			return nil, fmt.Errorf("data: cannot partition an empty catalog")
		}
	} else if _, err := cat.Table(fact); err != nil {
		return nil, err
	}
	out := &Partition{parent: cat, table: fact}
	if err := out.slice(p.Shards); err != nil {
		return nil, err
	}
	return out, nil
}

// slice (re)builds the shard catalogs from the parent's current
// tables. Existing shard Catalog values are updated in place — engines
// hold pointers to them, so a re-slice must not swap catalogs out from
// under its consumers. Caller holds no locks; slice takes the write
// lock.
func (p *Partition) slice(n int) error {
	ft, err := p.parent.Table(p.table)
	if err != nil {
		return err
	}
	rows := ft.NumRows()
	names := p.parent.Names()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.shards) != n {
		p.shards = make([]Shard, n)
		for i := range p.shards {
			p.shards[i].Catalog = NewCatalog()
		}
	}
	for i := 0; i < n; i++ {
		lo, hi := i*rows/n, (i+1)*rows/n
		p.shards[i].Lo, p.shards[i].Hi = lo, hi
		for _, name := range names {
			t, err := p.parent.Table(name)
			if err != nil {
				return err
			}
			if strings.EqualFold(name, p.table) {
				t = t.Slice(lo, hi)
			}
			p.shards[i].Catalog.Replace(t)
		}
	}
	p.gen = rows
	return nil
}

// Table returns the fact table's registered name.
func (p *Partition) Table() string { return p.table }

// NumShards returns the shard count.
func (p *Partition) NumShards() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.shards)
}

// Shard returns shard i's view.
func (p *Partition) Shard(i int) Shard {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.shards[i]
}

// Generation is the parent fact-table row count the current slices
// were cut from. A parent that has grown past it means the shards are
// stale (appends land only in the parent's backing arrays) — call
// Refresh.
func (p *Partition) Generation() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.gen
}

// Stale reports whether the parent fact table's row count has moved
// since the last slice.
func (p *Partition) Stale() bool {
	ft, err := p.parent.Table(p.table)
	if err != nil {
		return true
	}
	return ft.NumRows() != p.Generation()
}

// Refresh re-resolves one table from the parent catalog into every
// shard: the fact table is re-sliced (new boundaries from its current
// row count), any other table's pointer is re-broadcast. Call it after
// Catalog.Replace or in-place growth — the broadcast pointers and row
// slices cannot see either on their own.
func (p *Partition) Refresh(table string) error {
	if strings.EqualFold(table, p.table) {
		return p.slice(p.NumShards())
	}
	t, err := p.parent.Table(table)
	if err != nil {
		return err
	}
	p.mu.RLock()
	shards := p.shards
	p.mu.RUnlock()
	for _, s := range shards {
		s.Catalog.Replace(t)
	}
	return nil
}
