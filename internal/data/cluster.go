package data

import (
	"fmt"
	"sort"
)

// SortedBy returns a copy of the table with rows reordered ascending by
// the named numeric column (NaNs last, ties in original row order).
// Re-clustering a fact table this way is what makes per-block zone maps
// effective: on an i.i.d. row layout every block spans the whole value
// domain and no block is ever provably out of range, while on a
// clustered layout a range predicate excludes most blocks outright.
// This mirrors how real columnar stores depend on sort keys / clustering
// columns for their zone-map (a.k.a. min-max index) pruning.
func SortedBy(t *Table, column string) (*Table, error) {
	ord := t.schema.Ordinal(column)
	if ord < 0 {
		return nil, fmt.Errorf("data: table %s has no column %q", t.name, column)
	}
	key, err := t.NumericColumn(ord)
	if err != nil {
		return nil, fmt.Errorf("data: cluster column must be numeric: %w", err)
	}

	perm := make([]int, t.rows)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ka, kb := key[perm[a]], key[perm[b]]
		if ka != ka { // NaN sorts last
			return false
		}
		if kb != kb {
			return true
		}
		return ka < kb
	})

	out := &Table{
		name:    t.name,
		schema:  t.schema,
		rows:    t.rows,
		ints:    make(map[int][]int64, len(t.ints)),
		floats:  make(map[int][]float64, len(t.floats)),
		strings: make(map[int][]string, len(t.strings)),
		stats:   make(map[int]ColumnStats),
	}
	for o, v := range t.ints {
		nv := make([]int64, len(v))
		for i, p := range perm {
			nv[i] = v[p]
		}
		out.ints[o] = nv
	}
	for o, v := range t.floats {
		nv := make([]float64, len(v))
		for i, p := range perm {
			nv[i] = v[p]
		}
		out.floats[o] = nv
	}
	for o, v := range t.strings {
		nv := make([]string, len(v))
		for i, p := range perm {
			nv[i] = v[p]
		}
		out.strings[o] = nv
	}
	return out, nil
}
