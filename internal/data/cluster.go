package data

import (
	"fmt"
	"sort"
)

// SortedBy returns a copy of the table with rows reordered ascending by
// the named numeric column (NaNs last, ties in original row order).
// Re-clustering a fact table this way is what makes per-block zone maps
// effective: on an i.i.d. row layout every block spans the whole value
// domain and no block is ever provably out of range, while on a
// clustered layout a range predicate excludes most blocks outright.
// This mirrors how real columnar stores depend on sort keys / clustering
// columns for their zone-map (a.k.a. min-max index) pruning.
//
// The result records its clustering column and sorted-prefix length
// (ClusterInfo), so later appends are visible as an explicit unsorted
// tail rather than silently stale-looking zone-map behavior.
func SortedBy(t *Table, column string) (*Table, error) {
	ord := t.schema.Ordinal(column)
	if ord < 0 {
		return nil, fmt.Errorf("data: table %s has no column %q", t.name, column)
	}
	key, err := t.NumericColumn(ord)
	if err != nil {
		return nil, fmt.Errorf("data: cluster column must be numeric: %w", err)
	}

	perm := make([]int, t.rows)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return keyLess(key[perm[a]], key[perm[b]])
	})

	out := permuted(t, perm)
	out.clusterCols = []string{t.schema.Columns[ord].Name}
	out.sortedRows = out.rows
	return out, nil
}

// MergeClusteredTail merges a clustered table's unsorted append tail
// back into its sorted run: the tail rows are sorted by the clustering
// key and two-run merged with the existing prefix, O(n + k log k) for a
// k-row tail instead of a full re-sort. Row order among equal keys is
// the stable one (prefix rows before tail rows, each in original
// order), so a single-column merge is bitwise identical to SortedBy
// over the same rows, and a Z-order merge is bitwise identical to a
// stable re-sort by the frozen-cut curve keys (the cuts are not
// re-derived — sound for pruning, since zone maps summarize values,
// not keys). It is an error to call this on an unclustered table; a
// table with no tail is returned unchanged.
func MergeClusteredTail(t *Table) (*Table, error) {
	if len(t.clusterCols) == 0 {
		return nil, fmt.Errorf("data: table %s is not clustered", t.name)
	}
	if t.sortedRows >= t.rows {
		return t, nil
	}
	rowLess, err := t.clusterLess()
	if err != nil {
		return nil, err
	}

	s := t.sortedRows
	tail := make([]int, t.rows-s)
	for i := range tail {
		tail[i] = s + i
	}
	sort.SliceStable(tail, func(a, b int) bool {
		return rowLess(tail[a], tail[b])
	})

	perm := make([]int, 0, t.rows)
	i, j := 0, 0
	for i < s && j < len(tail) {
		// Prefix wins ties: prefix rows precede tail rows in the
		// original order, which is what stability requires.
		if rowLess(tail[j], i) {
			perm = append(perm, tail[j])
			j++
		} else {
			perm = append(perm, i)
			i++
		}
	}
	for ; i < s; i++ {
		perm = append(perm, i)
	}
	perm = append(perm, tail[j:]...)

	out := permuted(t, perm)
	out.clusterCols = t.clusterCols
	out.zcuts = t.zcuts
	out.sortedRows = out.rows
	return out, nil
}

// clusterLess returns the row comparator of the table's current
// clustering key: the column value (NaNs last) for single-column
// layouts, the Z-order curve key recomputed from the frozen quantizer
// cuts for interleaved ones.
func (t *Table) clusterLess() (func(a, b int) bool, error) {
	if len(t.clusterCols) == 1 {
		ord := t.schema.Ordinal(t.clusterCols[0])
		if ord < 0 {
			return nil, fmt.Errorf("data: table %s lost cluster column %q", t.name, t.clusterCols[0])
		}
		key, err := t.NumericColumn(ord)
		if err != nil {
			return nil, fmt.Errorf("data: cluster column must be numeric: %w", err)
		}
		return func(a, b int) bool { return keyLess(key[a], key[b]) }, nil
	}
	keys, err := zorderKeys(t, t.clusterCols, t.zcuts)
	if err != nil {
		return nil, err
	}
	return func(a, b int) bool { return keys[a] < keys[b] }, nil
}

// keyLess is the clustering comparator: ascending, NaNs last.
func keyLess(a, b float64) bool {
	if a != a { // NaN sorts last
		return false
	}
	if b != b {
		return true
	}
	return a < b
}

// permuted builds a fresh table whose row i is t's row perm[i].
func permuted(t *Table, perm []int) *Table {
	out := &Table{
		name:    t.name,
		schema:  t.schema,
		rows:    t.rows,
		ints:    make(map[int][]int64, len(t.ints)),
		floats:  make(map[int][]float64, len(t.floats)),
		strings: make(map[int][]string, len(t.strings)),
		stats:   make(map[int]ColumnStats),
	}
	for o, v := range t.ints {
		nv := make([]int64, len(v))
		for i, p := range perm {
			nv[i] = v[p]
		}
		out.ints[o] = nv
	}
	for o, v := range t.floats {
		nv := make([]float64, len(v))
		for i, p := range perm {
			nv[i] = v[p]
		}
		out.floats[o] = nv
	}
	for o, v := range t.strings {
		nv := make([]string, len(v))
		for i, p := range perm {
			nv[i] = v[p]
		}
		out.strings[o] = nv
	}
	return out
}
