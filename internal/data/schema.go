package data

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Column names are compared
// case-insensitively, matching the SQL dialect in internal/sqlparse.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns, validating name uniqueness.
func NewSchema(cols ...Column) (*Schema, error) {
	seen := make(map[string]struct{}, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("data: empty column name")
		}
		if !c.Type.Numeric() && c.Type != String {
			return nil, fmt.Errorf("data: column %q has invalid type", c.Name)
		}
		key := strings.ToLower(c.Name)
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("data: duplicate column %q", c.Name)
		}
		seen[key] = struct{}{}
	}
	return &Schema{Columns: append([]Column(nil), cols...)}, nil
}

// MustSchema is NewSchema that panics on error; for tests and
// generators with statically known schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Ordinal returns the index of the named column, or -1.
func (s *Schema) Ordinal(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the column definition by name.
func (s *Schema) Column(name string) (Column, bool) {
	i := s.Ordinal(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Columns[i], true
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// String renders "name TYPE, name TYPE, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return strings.Join(parts, ", ")
}
