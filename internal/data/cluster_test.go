package data

import (
	"math"
	"math/rand"
	"testing"
)

// clusterTestTable builds an n-row numeric table with a float64 key
// column (including NaN and ±Inf sprinkles), an int64 payload and a
// string tag, so permutation bugs show up in every column kind.
func clusterTestTable(t *testing.T, n int, seed int64) *Table {
	t.Helper()
	tbl := NewTable("events", MustSchema(
		Column{Name: "key", Type: Float64},
		Column{Name: "payload", Type: Int64},
		Column{Name: "tag", Type: String},
	))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := rng.Float64() * 1000
		switch rng.Intn(40) {
		case 0:
			k = math.NaN()
		case 1:
			k = math.Inf(1)
		case 2:
			k = math.Inf(-1)
		}
		if err := tbl.AppendRow(FloatValue(k), IntValue(int64(i)), StringValue(string(rune('a'+i%7)))); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// appendClusterRows appends k more rows in the same style.
func appendClusterRows(t *testing.T, tbl *Table, k int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := tbl.NumRows()
	for i := 0; i < k; i++ {
		v := rng.Float64() * 1000
		if rng.Intn(20) == 0 {
			v = math.NaN()
		}
		if err := tbl.AppendRow(FloatValue(v), IntValue(int64(base+i)), StringValue("t")); err != nil {
			t.Fatal(err)
		}
	}
}

// sameRows asserts two tables hold bitwise-identical column vectors.
func sameRows(t *testing.T, got, want *Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: got %d, want %d", got.NumRows(), want.NumRows())
	}
	for ord := range want.schema.Columns {
		for row := 0; row < want.NumRows(); row++ {
			gv, wv := got.ValueAt(row, ord), want.ValueAt(row, ord)
			if gv.Kind != wv.Kind ||
				math.Float64bits(gv.F) != math.Float64bits(wv.F) ||
				gv.I != wv.I || gv.S != wv.S {
				t.Fatalf("col %d row %d: got %+v, want %+v", ord, row, gv, wv)
			}
		}
	}
}

func TestSortedByClusterInfo(t *testing.T) {
	tbl := clusterTestTable(t, 500, 1)
	if col, sorted := tbl.ClusterInfo(); col != "" || sorted != 0 {
		t.Fatalf("fresh table ClusterInfo = (%q, %d), want empty", col, sorted)
	}
	sorted, err := SortedBy(tbl, "KEY") // case-insensitive lookup
	if err != nil {
		t.Fatal(err)
	}
	if col, n := sorted.ClusterInfo(); col != "key" || n != 500 {
		t.Fatalf("ClusterInfo = (%q, %d), want (key, 500)", col, n)
	}
	if sorted.ClusterTail() != 0 {
		t.Fatalf("ClusterTail = %d, want 0", sorted.ClusterTail())
	}

	// Ascending with NaNs last, and every original row still present.
	key, err := sorted.NumericColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	seenNaN := false
	for i := 1; i < len(key); i++ {
		if math.IsNaN(key[i-1]) {
			seenNaN = true
		}
		if seenNaN && !math.IsNaN(key[i]) {
			t.Fatalf("row %d: non-NaN %v after NaN", i, key[i])
		}
		if !math.IsNaN(key[i-1]) && !math.IsNaN(key[i]) && key[i-1] > key[i] {
			t.Fatalf("row %d: keys out of order: %v > %v", i, key[i-1], key[i])
		}
	}
	seen := make(map[int64]bool, 500)
	pay, _ := sorted.Ints(1)
	for _, p := range pay {
		if seen[p] {
			t.Fatalf("payload %d duplicated by permutation", p)
		}
		seen[p] = true
	}
	if len(seen) != 500 {
		t.Fatalf("permutation lost rows: %d distinct payloads", len(seen))
	}

	// Appends grow an explicit unsorted tail.
	appendClusterRows(t, sorted, 37, 2)
	if col, n := sorted.ClusterInfo(); col != "key" || n != 500 {
		t.Fatalf("post-append ClusterInfo = (%q, %d), want (key, 500)", col, n)
	}
	if sorted.ClusterTail() != 37 {
		t.Fatalf("post-append ClusterTail = %d, want 37", sorted.ClusterTail())
	}

	if _, err := SortedBy(tbl, "tag"); err == nil {
		t.Fatal("SortedBy on a string column: expected error")
	}
	if _, err := SortedBy(tbl, "nope"); err == nil {
		t.Fatal("SortedBy on a missing column: expected error")
	}
}

// TestMergeClusteredTailMatchesSortedBy is the tail-merge soundness
// property the auto-clustering sweep depends on: merging an unsorted
// append tail into the sorted run must be bitwise identical to a full
// re-sort of the same rows (stability included — prefix rows precede
// tail rows among equal keys, which SortedBy's stable sort reproduces).
func TestMergeClusteredTailMatchesSortedBy(t *testing.T) {
	for _, tc := range []struct{ n, tail int }{
		{100, 1}, {100, 99}, {1000, 40}, {1000, 1000}, {3, 2},
	} {
		tbl := clusterTestTable(t, tc.n, int64(tc.n))
		sorted, err := SortedBy(tbl, "key")
		if err != nil {
			t.Fatal(err)
		}
		appendClusterRows(t, sorted, tc.tail, int64(tc.tail)+7)

		merged, err := MergeClusteredTail(sorted)
		if err != nil {
			t.Fatal(err)
		}
		if merged == sorted {
			t.Fatalf("n=%d tail=%d: merge returned the input table", tc.n, tc.tail)
		}
		if col, nr := merged.ClusterInfo(); col != "key" || nr != tc.n+tc.tail {
			t.Fatalf("n=%d tail=%d: merged ClusterInfo = (%q, %d)", tc.n, tc.tail, col, nr)
		}

		want, err := SortedBy(sorted, "key")
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, merged, want)
	}
}

func TestMergeClusteredTailEdgeCases(t *testing.T) {
	tbl := clusterTestTable(t, 50, 9)
	if _, err := MergeClusteredTail(tbl); err == nil {
		t.Fatal("unclustered table: expected error")
	}
	sorted, err := SortedBy(tbl, "key")
	if err != nil {
		t.Fatal(err)
	}
	again, err := MergeClusteredTail(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if again != sorted {
		t.Fatal("no-tail merge should return the table unchanged")
	}
}

// TestSlicePropagatesCluster checks that a zero-copy view inherits the
// clustering column with its sorted prefix clamped to the overlap —
// what lets every shard of a clustered parent keep zone-map pruning.
func TestSlicePropagatesCluster(t *testing.T) {
	tbl := clusterTestTable(t, 200, 3)
	sorted, err := SortedBy(tbl, "key")
	if err != nil {
		t.Fatal(err)
	}
	appendClusterRows(t, sorted, 40, 4) // sortedRows=200, rows=240

	cases := []struct {
		lo, hi     int
		wantSorted int
	}{
		{0, 240, 200},  // full view: same split
		{0, 150, 150},  // inside the sorted run: fully sorted
		{50, 200, 150}, // suffix of the run: fully sorted
		{180, 240, 20}, // straddles the boundary
		{200, 240, 0},  // pure tail: no sorted prefix
		{210, 230, 0},
	}
	for _, tc := range cases {
		v := sorted.Slice(tc.lo, tc.hi)
		col, n := v.ClusterInfo()
		if col != "key" {
			t.Fatalf("slice [%d,%d): lost cluster column", tc.lo, tc.hi)
		}
		if n != tc.wantSorted {
			t.Fatalf("slice [%d,%d): sortedRows = %d, want %d", tc.lo, tc.hi, n, tc.wantSorted)
		}
		if tail := v.ClusterTail(); tail != v.NumRows()-tc.wantSorted {
			t.Fatalf("slice [%d,%d): ClusterTail = %d, want %d", tc.lo, tc.hi, tail, v.NumRows()-tc.wantSorted)
		}
	}

	// An unclustered parent's views stay unclustered.
	v := tbl.Slice(0, 100)
	if col, n := v.ClusterInfo(); col != "" || n != 0 {
		t.Fatalf("unclustered slice ClusterInfo = (%q, %d)", col, n)
	}
}
