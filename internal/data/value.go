// Package data implements the columnar storage substrate used by the
// ACQUIRE evaluation layer: typed values, schemas, column vectors,
// in-memory tables and a catalog, plus CSV import/export.
//
// The paper delegates all query execution to a modular evaluation layer
// (Postgres in the original system); this package together with
// internal/exec is the stand-in substrate. See DESIGN.md §2.
package data

import (
	"fmt"
	"strconv"
)

// Type enumerates the column types the engine supports. ACQUIRE's query
// model (§2.2 of the paper) is defined over numeric predicate functions,
// so Float64 and Int64 are the workhorses; String columns carry
// categorical attributes used by the ontology extension (§7.3).
type Type uint8

const (
	// Invalid is the zero Type; it is never valid in a schema.
	Invalid Type = iota
	// Int64 is a 64-bit signed integer column.
	Int64
	// Float64 is a 64-bit IEEE floating point column.
	Float64
	// String is a variable-length string column.
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "TEXT"
	default:
		return "INVALID"
	}
}

// Numeric reports whether the type participates in numeric predicates
// and aggregates.
func (t Type) Numeric() bool { return t == Int64 || t == Float64 }

// Value is a dynamically typed cell value. Exactly one field is
// meaningful, selected by Kind. Value is used at API boundaries (parser
// literals, CSV, example output); the executor works directly on column
// vectors and never allocates Values in inner loops.
type Value struct {
	Kind Type
	I    int64
	F    float64
	S    string
}

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Kind: Int64, I: v} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Kind: Float64, F: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{Kind: String, S: v} }

// AsFloat converts a numeric Value to float64. String values return an
// error: predicates over categorical data must go through the ontology
// adapter, never through numeric coercion.
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case Int64:
		return float64(v.I), nil
	case Float64:
		return v.F, nil
	default:
		return 0, fmt.Errorf("data: cannot convert %s value to float", v.Kind)
	}
}

// String renders the value as it would appear in CSV output.
func (v Value) String() string {
	switch v.Kind {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	default:
		return "<invalid>"
	}
}

// ParseValue parses s as the given type.
func ParseValue(s string, t Type) (Value, error) {
	switch t {
	case Int64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("data: parse %q as BIGINT: %w", s, err)
		}
		return IntValue(i), nil
	case Float64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("data: parse %q as DOUBLE: %w", s, err)
		}
		return FloatValue(f), nil
	case String:
		return StringValue(s), nil
	default:
		return Value{}, fmt.Errorf("data: parse into invalid type")
	}
}
