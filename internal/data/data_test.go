package data

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "price", Type: Float64},
		Column{Name: "kind", Type: String},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
	}{
		{"empty name", []Column{{Name: "", Type: Int64}}},
		{"invalid type", []Column{{Name: "x", Type: Invalid}}},
		{"duplicate", []Column{{Name: "x", Type: Int64}, {Name: "X", Type: Float64}}},
	}
	for _, tc := range cases {
		if _, err := NewSchema(tc.cols...); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSchemaOrdinalCaseInsensitive(t *testing.T) {
	s := testSchema(t)
	if got := s.Ordinal("PRICE"); got != 1 {
		t.Errorf("Ordinal(PRICE) = %d, want 1", got)
	}
	if got := s.Ordinal("missing"); got != -1 {
		t.Errorf("Ordinal(missing) = %d, want -1", got)
	}
	c, ok := s.Column("Kind")
	if !ok || c.Type != String {
		t.Errorf("Column(Kind) = %+v, %v", c, ok)
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tbl := NewTable("items", testSchema(t))
	rows := []struct {
		id    int64
		price float64
		kind  string
	}{
		{1, 9.5, "a"}, {2, 3.25, "b"}, {3, 12.0, "a"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(IntValue(r.id), FloatValue(r.price), StringValue(r.kind)); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tbl.NumRows())
	}
	for i, r := range rows {
		v, err := tbl.NumericAt(i, 0)
		if err != nil || v != float64(r.id) {
			t.Errorf("NumericAt(%d, 0) = %v, %v", i, v, err)
		}
		p, err := tbl.NumericAt(i, 1)
		if err != nil || p != r.price {
			t.Errorf("NumericAt(%d, 1) = %v, %v", i, p, err)
		}
		s, err := tbl.StringAt(i, 2)
		if err != nil || s != r.kind {
			t.Errorf("StringAt(%d, 2) = %q, %v", i, s, err)
		}
	}
	if _, err := tbl.NumericAt(0, 2); err == nil {
		t.Error("NumericAt on TEXT column: expected error")
	}
	if _, err := tbl.StringAt(0, 0); err == nil {
		t.Error("StringAt on BIGINT column: expected error")
	}
}

func TestTableAppendCoercion(t *testing.T) {
	tbl := NewTable("x", MustSchema(Column{Name: "i", Type: Int64}, Column{Name: "f", Type: Float64}))
	// Integral floats coerce into BIGINT, ints into DOUBLE.
	if err := tbl.AppendRow(FloatValue(4), IntValue(7)); err != nil {
		t.Fatalf("AppendRow with coercible values: %v", err)
	}
	if v := tbl.ValueAt(0, 0); v.Kind != Int64 || v.I != 4 {
		t.Errorf("ValueAt(0,0) = %+v", v)
	}
	if v := tbl.ValueAt(0, 1); v.Kind != Float64 || v.F != 7 {
		t.Errorf("ValueAt(0,1) = %+v", v)
	}
	// Fractional floats do not coerce into BIGINT.
	if err := tbl.AppendRow(FloatValue(4.5), IntValue(7)); err == nil {
		t.Error("AppendRow fractional float into BIGINT: expected error")
	}
	// Arity mismatch.
	if err := tbl.AppendRow(IntValue(1)); err == nil {
		t.Error("AppendRow arity mismatch: expected error")
	}
	// Type mismatch with string.
	if err := tbl.AppendRow(StringValue("x"), FloatValue(1)); err == nil {
		t.Error("AppendRow TEXT into BIGINT: expected error")
	}
}

func TestTableStats(t *testing.T) {
	tbl := NewTable("x", MustSchema(Column{Name: "v", Type: Float64}))
	for _, v := range []float64{5, -2, 5, 9, 0} {
		if err := tbl.AppendRow(FloatValue(v)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.Stats(0)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if s.Min != -2 || s.Max != 9 || s.Distinct != 4 {
		t.Errorf("Stats = %+v, want min=-2 max=9 distinct=4", s)
	}
	// Stats invalidate on append.
	if err := tbl.AppendRow(FloatValue(100)); err != nil {
		t.Fatal(err)
	}
	s, err = tbl.Stats(0)
	if err != nil || s.Max != 100 || s.Distinct != 5 {
		t.Errorf("Stats after append = %+v, %v", s, err)
	}
}

func TestTableStatsEmpty(t *testing.T) {
	tbl := NewTable("x", MustSchema(Column{Name: "v", Type: Float64}))
	s, err := tbl.Stats(0)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if s.Min != 0 || s.Max != 0 || s.Distinct != 0 {
		t.Errorf("empty Stats = %+v", s)
	}
}

func TestNumericColumnIntCopy(t *testing.T) {
	tbl := NewTable("x", MustSchema(Column{Name: "i", Type: Int64}))
	if err := tbl.AppendRow(IntValue(3)); err != nil {
		t.Fatal(err)
	}
	col, err := tbl.NumericColumn(0)
	if err != nil || len(col) != 1 || col[0] != 3 {
		t.Fatalf("NumericColumn = %v, %v", col, err)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl := NewTable("Users", testSchema(t))
	if err := c.Register(tbl); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(NewTable("users", testSchema(t))); err == nil {
		t.Error("duplicate Register: expected error")
	}
	got, err := c.Table("USERS")
	if err != nil || got != tbl {
		t.Errorf("Table(USERS) = %v, %v", got, err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("Table(nope): expected error")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "Users" {
		t.Errorf("Names = %v", names)
	}
}

func TestCatalogResolveColumn(t *testing.T) {
	c := NewCatalog()
	a := NewTable("a", MustSchema(Column{Name: "x", Type: Float64}, Column{Name: "shared", Type: Float64}))
	b := NewTable("b", MustSchema(Column{Name: "y", Type: Float64}, Column{Name: "shared", Type: Float64}))
	if err := c.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(b); err != nil {
		t.Fatal(err)
	}
	tbl, col, err := c.ResolveColumn("a.x", []string{"a", "b"})
	if err != nil || tbl != "a" || col != "x" {
		t.Errorf("qualified resolve = %s.%s, %v", tbl, col, err)
	}
	tbl, col, err = c.ResolveColumn("y", []string{"a", "b"})
	if err != nil || tbl != "b" || col != "y" {
		t.Errorf("bare resolve = %s.%s, %v", tbl, col, err)
	}
	if _, _, err := c.ResolveColumn("shared", []string{"a", "b"}); err == nil {
		t.Error("ambiguous resolve: expected error")
	}
	if _, _, err := c.ResolveColumn("missing", []string{"a", "b"}); err == nil {
		t.Error("missing resolve: expected error")
	}
	if _, _, err := c.ResolveColumn("a.nope", []string{"a"}); err == nil {
		t.Error("qualified missing column: expected error")
	}
}

func TestValueConversions(t *testing.T) {
	if f, err := IntValue(5).AsFloat(); err != nil || f != 5 {
		t.Errorf("IntValue.AsFloat = %v, %v", f, err)
	}
	if f, err := FloatValue(2.5).AsFloat(); err != nil || f != 2.5 {
		t.Errorf("FloatValue.AsFloat = %v, %v", f, err)
	}
	if _, err := StringValue("x").AsFloat(); err == nil {
		t.Error("StringValue.AsFloat: expected error")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42", Int64)
	if err != nil || v.I != 42 {
		t.Errorf("ParseValue int = %+v, %v", v, err)
	}
	v, err = ParseValue("-1.5", Float64)
	if err != nil || v.F != -1.5 {
		t.Errorf("ParseValue float = %+v, %v", v, err)
	}
	v, err = ParseValue("hello", String)
	if err != nil || v.S != "hello" {
		t.Errorf("ParseValue string = %+v, %v", v, err)
	}
	if _, err := ParseValue("abc", Int64); err == nil {
		t.Error("ParseValue bad int: expected error")
	}
	if _, err := ParseValue("abc", Float64); err == nil {
		t.Error("ParseValue bad float: expected error")
	}
	if _, err := ParseValue("abc", Invalid); err == nil {
		t.Error("ParseValue invalid type: expected error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := NewTable("items", testSchema(t))
	if err := tbl.AppendRow(IntValue(1), FloatValue(9.75), StringValue("a,b \"q\"")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(IntValue(-4), FloatValue(math.Pi), StringValue("")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV("items", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRows() != tbl.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", got.NumRows(), tbl.NumRows())
	}
	for r := 0; r < tbl.NumRows(); r++ {
		for c := range tbl.Schema().Columns {
			a, b := tbl.ValueAt(r, c), got.ValueAt(r, c)
			if a != b {
				t.Errorf("cell (%d,%d): %v != %v", r, c, a, b)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad header", "noType\n1\n"},
		{"unknown type", "x:BLOB\n1\n"},
		{"bad cell", "x:BIGINT\nabc\n"},
		{"dup columns", "x:BIGINT,x:BIGINT\n1,2\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV("t", strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// Property: every float64 survives a Value/CSV string round trip.
func TestFloatStringRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true // not representable in our CSV dialect; generators never emit them
		}
		v, err := ParseValue(FloatValue(x).String(), Float64)
		return err == nil && v.F == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
