package data

import (
	"fmt"
	"math"
	"sync"
)

// Table is an immutable-after-load, append-only columnar table. Numeric
// columns are stored as dense vectors so the executor can scan without
// per-cell allocation; string columns are dictionary-free plain slices
// (categorical cardinalities in our workloads are tiny).
type Table struct {
	name   string
	schema *Schema
	rows   int

	ints    map[int][]int64   // ordinal -> vector
	floats  map[int][]float64 // ordinal -> vector
	strings map[int][]string  // ordinal -> vector

	// Clustering metadata: clusterCols names the numeric column(s) the
	// rows were last sorted by — one column for a plain sort (SortedBy),
	// two for a Z-order interleave (ZOrderBy) — and sortedRows is the
	// length of the sorted prefix run. For Z-order layouts zcuts holds
	// the per-axis quantile cut points frozen at layout time, so a tail
	// merge can recompute curve keys without re-deriving quantiles.
	// Appends after clustering land beyond sortedRows as an explicitly-
	// degraded unsorted tail; the executor reads ClusterInfo/ClusterSpec
	// to decide whether (and how far) zone maps stay trustworthy-by-
	// construction and when a tail merge pays for itself.
	clusterCols []string
	zcuts       [][]float64
	sortedRows  int

	// stats are lazily computed min/max per numeric ordinal; ACQUIRE
	// needs attribute domains to anchor predicate intervals (§2.2:
	// "if the minimum value of B.y is 0 ..."). statsMu guards the lazy
	// fill — concurrent refinement searches share one catalog.
	statsMu sync.Mutex
	stats   map[int]ColumnStats
}

// ColumnStats holds the domain statistics the refinement model needs.
type ColumnStats struct {
	Min, Max float64
	// Distinct is an exact distinct count (tables are loaded once and
	// scanned many times, so exactness is affordable).
	Distinct int
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table {
	t := &Table{
		name:    name,
		schema:  schema,
		ints:    make(map[int][]int64),
		floats:  make(map[int][]float64),
		strings: make(map[int][]string),
		stats:   make(map[int]ColumnStats),
	}
	for i, c := range schema.Columns {
		switch c.Type {
		case Int64:
			t.ints[i] = nil
		case Float64:
			t.floats[i] = nil
		case String:
			t.strings[i] = nil
		}
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// ClusterInfo reports the single clustering column the table was last
// sorted by and the length of the sorted prefix run. An unclustered
// table — and a multi-column (Z-order) layout, which has no single sort
// column — returns ("", 0); multi-column layouts report through
// ClusterSpec. sortedRows < NumRows means appends have grown an
// unsorted tail beyond the clustered run.
func (t *Table) ClusterInfo() (column string, sortedRows int) {
	if len(t.clusterCols) == 1 {
		return t.clusterCols[0], t.sortedRows
	}
	return "", 0
}

// ClusterSpec reports the full clustering column set (one column for a
// plain sort, two for a Z-order interleave, nil when unclustered) and
// the sorted prefix length. The returned slice is a copy.
func (t *Table) ClusterSpec() (columns []string, sortedRows int) {
	if len(t.clusterCols) == 0 {
		return nil, 0
	}
	return append([]string(nil), t.clusterCols...), t.sortedRows
}

// ClusterTail returns the number of rows appended after the last
// clustering pass (zero for unclustered or fully-sorted tables).
func (t *Table) ClusterTail() int {
	if len(t.clusterCols) == 0 {
		return 0
	}
	return t.rows - t.sortedRows
}

// AppendRow appends one row given values in schema order.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != t.schema.Len() {
		return fmt.Errorf("data: table %s: append %d values into %d columns", t.name, len(vals), t.schema.Len())
	}
	for i, c := range t.schema.Columns {
		v := vals[i]
		switch c.Type {
		case Int64:
			if v.Kind == Float64 && v.F == math.Trunc(v.F) {
				v = IntValue(int64(v.F))
			}
			if v.Kind != Int64 {
				return fmt.Errorf("data: table %s column %s: expected BIGINT, got %s", t.name, c.Name, v.Kind)
			}
			t.ints[i] = append(t.ints[i], v.I)
		case Float64:
			if v.Kind == Int64 {
				v = FloatValue(float64(v.I))
			}
			if v.Kind != Float64 {
				return fmt.Errorf("data: table %s column %s: expected DOUBLE, got %s", t.name, c.Name, v.Kind)
			}
			t.floats[i] = append(t.floats[i], v.F)
		case String:
			if v.Kind != String {
				return fmt.Errorf("data: table %s column %s: expected TEXT, got %s", t.name, c.Name, v.Kind)
			}
			t.strings[i] = append(t.strings[i], v.S)
		}
	}
	t.rows++
	t.statsMu.Lock()
	t.stats = make(map[int]ColumnStats) // invalidate
	t.statsMu.Unlock()
	return nil
}

// Ints returns the int64 vector for a column ordinal. The returned slice
// must not be mutated.
func (t *Table) Ints(ordinal int) ([]int64, bool) {
	v, ok := t.ints[ordinal]
	return v, ok
}

// Floats returns the float64 vector for a column ordinal.
func (t *Table) Floats(ordinal int) ([]float64, bool) {
	v, ok := t.floats[ordinal]
	return v, ok
}

// Strings returns the string vector for a column ordinal.
func (t *Table) Strings(ordinal int) ([]string, bool) {
	v, ok := t.strings[ordinal]
	return v, ok
}

// NumericAt returns the numeric value at (row, ordinal) as float64.
// It is the executor's main accessor for predicate evaluation.
func (t *Table) NumericAt(row, ordinal int) (float64, error) {
	if iv, ok := t.ints[ordinal]; ok {
		return float64(iv[row]), nil
	}
	if fv, ok := t.floats[ordinal]; ok {
		return fv[row], nil
	}
	return 0, fmt.Errorf("data: table %s: column ordinal %d is not numeric", t.name, ordinal)
}

// NumericColumn materialises a float64 view of a numeric column. For
// Int64 columns this copies; for Float64 it returns the backing vector.
func (t *Table) NumericColumn(ordinal int) ([]float64, error) {
	if fv, ok := t.floats[ordinal]; ok {
		return fv, nil
	}
	if iv, ok := t.ints[ordinal]; ok {
		out := make([]float64, len(iv))
		for i, v := range iv {
			out[i] = float64(v)
		}
		return out, nil
	}
	return nil, fmt.Errorf("data: table %s: column ordinal %d is not numeric", t.name, ordinal)
}

// StringAt returns the string value at (row, ordinal).
func (t *Table) StringAt(row, ordinal int) (string, error) {
	if sv, ok := t.strings[ordinal]; ok {
		return sv[row], nil
	}
	return "", fmt.Errorf("data: table %s: column ordinal %d is not TEXT", t.name, ordinal)
}

// ValueAt returns the boxed value at (row, ordinal); used only at API
// boundaries (examples, CLI output).
func (t *Table) ValueAt(row, ordinal int) Value {
	if iv, ok := t.ints[ordinal]; ok {
		return IntValue(iv[row])
	}
	if fv, ok := t.floats[ordinal]; ok {
		return FloatValue(fv[row])
	}
	return StringValue(t.strings[ordinal][row])
}

// Slice returns a zero-copy view of rows [lo, hi): same name, same
// schema, column vectors sub-sliced from the parent's backing arrays.
// The view is a first-class Table — per-view lazy stats, NumRows equal
// to its own row span (which doubles as the view's row-count
// generation for cache-fingerprint purposes) — so a range partitioner
// can hand each shard an ordinary Table without duplicating data.
// Appending to a slice view is not supported (the capacity clamp makes
// a stray append reallocate instead of clobbering sibling shards).
func (t *Table) Slice(lo, hi int) *Table {
	if lo < 0 {
		lo = 0
	}
	if hi > t.rows {
		hi = t.rows
	}
	if hi < lo {
		hi = lo
	}
	out := &Table{
		name:    t.name,
		schema:  t.schema,
		rows:    hi - lo,
		ints:    make(map[int][]int64, len(t.ints)),
		floats:  make(map[int][]float64, len(t.floats)),
		strings: make(map[int][]string, len(t.strings)),
		stats:   make(map[int]ColumnStats),
	}
	for ord, v := range t.ints {
		out.ints[ord] = v[lo:hi:hi]
	}
	for ord, v := range t.floats {
		out.floats[ord] = v[lo:hi:hi]
	}
	for ord, v := range t.strings {
		out.strings[ord] = v[lo:hi:hi]
	}
	// A contiguous slice of a sorted run is itself sorted (true for the
	// Z-order curve too — a run of consecutive curve positions): the
	// view inherits the clustering spec, cut points included, with its
	// prefix clamped to the overlap between [lo, hi) and the parent's
	// sorted run.
	if len(t.clusterCols) > 0 {
		out.clusterCols = t.clusterCols
		out.zcuts = t.zcuts
		if s := t.sortedRows - lo; s > 0 {
			if s > out.rows {
				s = out.rows
			}
			out.sortedRows = s
		}
	}
	return out
}

// Stats returns min/max/distinct for a numeric column, computing and
// caching on first use. An empty table yields zero stats.
func (t *Table) Stats(ordinal int) (ColumnStats, error) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if s, ok := t.stats[ordinal]; ok {
		return s, nil
	}
	col, err := t.NumericColumn(ordinal)
	if err != nil {
		return ColumnStats{}, err
	}
	s := ColumnStats{}
	if len(col) > 0 {
		s.Min, s.Max = math.Inf(1), math.Inf(-1)
		seen := make(map[float64]struct{})
		for _, v := range col {
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
			seen[v] = struct{}{}
		}
		s.Distinct = len(seen)
	}
	t.stats[ordinal] = s
	return s, nil
}
