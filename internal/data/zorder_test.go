package data

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestInterleaveRoundTrip is the encode/decode property of the Morton
// key: deinterleave2(interleave2(a, b)) == (a, b) over the full 32-bit
// rank domain, and the key is monotone along each axis with the other
// held fixed (what makes curve order consistent with per-axis order
// inside a quadrant).
func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		if i < 100 { // exercise the low/high corners too
			a &= 0xFFFF
			b &= 0xFFFF
		}
		ga, gb := deinterleave2(interleave2(a, b))
		if ga != a || gb != b {
			t.Fatalf("round trip (%#x, %#x) -> (%#x, %#x)", a, b, ga, gb)
		}
	}
	for _, fixed := range []uint32{0, 1, 0x5555, 0xFFFF} {
		for v := uint32(0); v < 1024; v++ {
			if interleave2(v, fixed) >= interleave2(v+1, fixed) {
				t.Fatalf("axis a not monotone at v=%d fixed=%#x", v, fixed)
			}
			if interleave2(fixed, v) >= interleave2(fixed, v+1) {
				t.Fatalf("axis b not monotone at v=%d fixed=%#x", v, fixed)
			}
		}
	}
	// Bit layout: axis a occupies even positions, axis b odd ones.
	if interleave2(1, 0) != 1 || interleave2(0, 1) != 2 || interleave2(3, 3) != 15 {
		t.Fatalf("unexpected bit layout: %d %d %d",
			interleave2(1, 0), interleave2(0, 1), interleave2(3, 3))
	}
}

// zorderTestTable builds an n-row table with two float axes (NaN and
// ±Inf sprinkles), an int payload and a string tag.
func zorderTestTable(t *testing.T, n int, seed int64) *Table {
	t.Helper()
	tbl := NewTable("points", MustSchema(
		Column{Name: "x", Type: Float64},
		Column{Name: "y", Type: Float64},
		Column{Name: "payload", Type: Int64},
		Column{Name: "tag", Type: String},
	))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		x := rng.NormFloat64() * 100
		y := rng.ExpFloat64() * 50 // skewed on purpose: rank cuts must cope
		switch rng.Intn(50) {
		case 0:
			x = math.NaN()
		case 1:
			y = math.NaN()
		case 2:
			x = math.Inf(1)
		case 3:
			y = math.Inf(-1)
		}
		if err := tbl.AppendRow(FloatValue(x), FloatValue(y), IntValue(int64(i)), StringValue(string(rune('a'+i%5)))); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestZOrderByLayout(t *testing.T) {
	tbl := zorderTestTable(t, 2000, 7)
	z, err := ZOrderBy(tbl, []string{"X", "y"}, 0) // case-insensitive lookup
	if err != nil {
		t.Fatal(err)
	}

	// Multi-column spec: ClusterSpec reports both axes; the single-column
	// ClusterInfo view reports unclustered.
	cols, sorted := z.ClusterSpec()
	if len(cols) != 2 || cols[0] != "x" || cols[1] != "y" || sorted != 2000 {
		t.Fatalf("ClusterSpec = (%v, %d), want ([x y], 2000)", cols, sorted)
	}
	if col, n := z.ClusterInfo(); col != "" || n != 0 {
		t.Fatalf("ClusterInfo on z-order layout = (%q, %d), want empty", col, n)
	}
	if z.ClusterTail() != 0 {
		t.Fatalf("ClusterTail = %d, want 0", z.ClusterTail())
	}

	// Rows are in nondecreasing frozen-key order, NaN-bearing rows last.
	keys, err := zorderKeys(z, z.clusterCols, z.zcuts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("row %d: keys out of curve order: %d > %d", i, keys[i-1], keys[i])
		}
	}

	// The permutation lost no rows.
	pay, _ := z.Ints(2)
	seen := make(map[int64]bool, 2000)
	for _, p := range pay {
		if seen[p] {
			t.Fatalf("payload %d duplicated by permutation", p)
		}
		seen[p] = true
	}
	if len(seen) != 2000 {
		t.Fatalf("permutation lost rows: %d distinct payloads", len(seen))
	}

	// Appends grow an explicit unsorted tail under the same spec.
	if err := z.AppendRow(FloatValue(1), FloatValue(2), IntValue(9999), StringValue("t")); err != nil {
		t.Fatal(err)
	}
	if z.ClusterTail() != 1 {
		t.Fatalf("post-append ClusterTail = %d, want 1", z.ClusterTail())
	}

	// Error cases.
	if _, err := ZOrderBy(tbl, []string{"x"}, 12); err == nil {
		t.Fatal("one column: expected error")
	}
	if _, err := ZOrderBy(tbl, []string{"x", "X"}, 12); err == nil {
		t.Fatal("self-interleave: expected error")
	}
	if _, err := ZOrderBy(tbl, []string{"x", "tag"}, 12); err == nil {
		t.Fatal("string axis: expected error")
	}
	if _, err := ZOrderBy(tbl, []string{"x", "nope"}, 12); err == nil {
		t.Fatal("missing axis: expected error")
	}
}

// TestZOrderMergeTailMatchesStableResort is the tail-merge soundness
// property for interleaved layouts: merging the unsorted tail must be
// bitwise identical to a stable re-sort of all rows by the *frozen*
// quantizer's curve keys (the cuts are not re-derived at merge time).
func TestZOrderMergeTailMatchesStableResort(t *testing.T) {
	for _, tc := range []struct{ n, tail int }{
		{500, 1}, {500, 499}, {2000, 64}, {3, 2},
	} {
		tbl := zorderTestTable(t, tc.n, int64(tc.n))
		z, err := ZOrderBy(tbl, []string{"x", "y"}, 10)
		if err != nil {
			t.Fatal(err)
		}
		appendClusterTail := func(k int, seed int64) {
			rng := rand.New(rand.NewSource(seed))
			base := z.NumRows()
			for i := 0; i < k; i++ {
				x, y := rng.NormFloat64()*100, rng.ExpFloat64()*50
				if rng.Intn(15) == 0 {
					x = math.NaN()
				}
				if err := z.AppendRow(FloatValue(x), FloatValue(y), IntValue(int64(base+i)), StringValue("t")); err != nil {
					t.Fatal(err)
				}
			}
		}
		appendClusterTail(tc.tail, int64(tc.tail)+11)

		merged, err := MergeClusteredTail(z)
		if err != nil {
			t.Fatal(err)
		}
		if merged == z {
			t.Fatalf("n=%d tail=%d: merge returned the input table", tc.n, tc.tail)
		}
		cols, nr := merged.ClusterSpec()
		if len(cols) != 2 || cols[0] != "x" || cols[1] != "y" || nr != tc.n+tc.tail {
			t.Fatalf("n=%d tail=%d: merged ClusterSpec = (%v, %d)", tc.n, tc.tail, cols, nr)
		}

		// Expected: stable sort of the pre-merge rows by frozen-cut keys.
		keys, err := zorderKeys(z, z.clusterCols, z.zcuts)
		if err != nil {
			t.Fatal(err)
		}
		perm := make([]int, z.NumRows())
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
		sameRows(t, merged, permuted(z, perm))
	}
}

// TestZOrderSlicePropagatesSpec checks that zero-copy views of a
// Z-order layout keep the full clustering spec (columns and frozen
// cuts) with the sorted prefix clamped — what lets shard slices of an
// interleaved parent keep two-axis pruning and merge their own tails.
func TestZOrderSlicePropagatesSpec(t *testing.T) {
	tbl := zorderTestTable(t, 600, 3)
	z, err := ZOrderBy(tbl, []string{"x", "y"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	v := z.Slice(100, 400)
	cols, sorted := v.ClusterSpec()
	if len(cols) != 2 || cols[0] != "x" || cols[1] != "y" {
		t.Fatalf("slice lost z-order spec: %v", cols)
	}
	if sorted != 300 || v.ClusterTail() != 0 {
		t.Fatalf("slice sortedRows = %d tail = %d, want 300, 0", sorted, v.ClusterTail())
	}
	if len(v.zcuts) != 2 || len(v.zcuts[0]) == 0 {
		t.Fatal("slice lost frozen quantizer cuts")
	}
	// A slice view can merge its own (conceptual) tail: clusterLess
	// still resolves against the frozen cuts.
	if _, err := v.clusterLess(); err != nil {
		t.Fatalf("slice clusterLess: %v", err)
	}
}

// BenchmarkZOrderKeys measures the dense Morton-key kernel — rank
// lookup against frozen quantile cuts plus the interleave cascade —
// over one block-sized stretch of rows per op.
func BenchmarkZOrderKeys(b *testing.B) {
	const n = 1024
	tbl := NewTable("points", MustSchema(
		Column{Name: "x", Type: Float64},
		Column{Name: "y", Type: Float64},
	))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(FloatValue(rng.NormFloat64()*100), FloatValue(rng.ExpFloat64()*50)); err != nil {
			b.Fatal(err)
		}
	}
	cuts := make([][]float64, 2)
	for ax := 0; ax < 2; ax++ {
		vec, err := tbl.NumericColumn(ax)
		if err != nil {
			b.Fatal(err)
		}
		cuts[ax] = zorderCuts(vec, 1<<zorderDefaultBits)
	}
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zorderKeys(tbl, []string{"x", "y"}, cuts); err != nil {
			b.Fatal(err)
		}
	}
}
