package data

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Catalog is a registry of named tables. It is safe for concurrent
// readers once loading is complete; registration is mutex-guarded so
// generators can load tables in parallel.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register adds a table, rejecting duplicate names.
func (c *Catalog) Register(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name())
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("data: table %q already registered", t.Name())
	}
	c.tables[key] = t
	return nil
}

// Replace adds or overwrites a table.
func (c *Catalog) Replace(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(t.Name())] = t
}

// Table looks up a table by (case-insensitive) name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("data: unknown table %q", name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}

// ResolveColumn resolves a possibly table-qualified column reference
// ("part.p_size" or bare "p_size") against the given candidate tables.
// Bare names must be unambiguous across the candidates.
func (c *Catalog) ResolveColumn(ref string, candidates []string) (table string, column string, err error) {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		tbl, col := ref[:i], ref[i+1:]
		t, err := c.Table(tbl)
		if err != nil {
			return "", "", err
		}
		if t.Schema().Ordinal(col) < 0 {
			return "", "", fmt.Errorf("data: table %q has no column %q", tbl, col)
		}
		return t.Name(), col, nil
	}
	var hits []string
	for _, name := range candidates {
		t, err := c.Table(name)
		if err != nil {
			return "", "", err
		}
		if t.Schema().Ordinal(ref) >= 0 {
			hits = append(hits, t.Name())
		}
	}
	switch len(hits) {
	case 0:
		return "", "", fmt.Errorf("data: column %q not found in tables %v", ref, candidates)
	case 1:
		return hits[0], ref, nil
	default:
		return "", "", fmt.Errorf("data: column %q is ambiguous across tables %v", ref, hits)
	}
}
