package data

import (
	"fmt"
	"testing"
)

func partTestCatalog(t *testing.T, factRows, dimRows int) *Catalog {
	t.Helper()
	cat := NewCatalog()
	fact := NewTable("fact", MustSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "v", Type: Float64},
	))
	for i := 0; i < factRows; i++ {
		if err := fact.AppendRow(IntValue(int64(i)), FloatValue(float64(i)*1.5)); err != nil {
			t.Fatal(err)
		}
	}
	dim := NewTable("dim", MustSchema(Column{Name: "k", Type: Int64}))
	for i := 0; i < dimRows; i++ {
		if err := dim.AppendRow(IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, tbl := range []*Table{fact, dim} {
		if err := cat.Register(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// TestPartitionCoversRowsExactly checks the range-partition invariants
// for assorted (rows, shards) combinations, including more shards than
// rows (empty shards) and a single shard: contiguous, disjoint,
// order-preserving, covering.
func TestPartitionCoversRowsExactly(t *testing.T) {
	for _, tc := range []struct{ rows, shards int }{
		{100, 1}, {100, 4}, {101, 4}, {7, 16}, {0, 3}, {1, 1}, {16, 16},
	} {
		t.Run(fmt.Sprintf("rows=%d/shards=%d", tc.rows, tc.shards), func(t *testing.T) {
			cat := partTestCatalog(t, tc.rows, 5)
			p, err := Partitioner{Shards: tc.shards, Table: "fact"}.Partition(cat)
			if err != nil {
				t.Fatal(err)
			}
			if p.Table() != "fact" {
				t.Fatalf("partitioned %q, want fact", p.Table())
			}
			if p.NumShards() != tc.shards {
				t.Fatalf("NumShards = %d, want %d", p.NumShards(), tc.shards)
			}
			prevHi, total := 0, 0
			for i := 0; i < tc.shards; i++ {
				s := p.Shard(i)
				if s.Lo != prevHi {
					t.Fatalf("shard %d starts at %d, want %d (contiguous)", i, s.Lo, prevHi)
				}
				prevHi = s.Hi
				ft, err := s.Catalog.Table("fact")
				if err != nil {
					t.Fatal(err)
				}
				if ft.NumRows() != s.Hi-s.Lo {
					t.Fatalf("shard %d fact rows = %d, want %d", i, ft.NumRows(), s.Hi-s.Lo)
				}
				total += ft.NumRows()
				// Values must be the parent's rows [Lo, Hi) in order.
				for r := 0; r < ft.NumRows(); r++ {
					v, err := ft.NumericAt(r, 0)
					if err != nil {
						t.Fatal(err)
					}
					if int(v) != s.Lo+r {
						t.Fatalf("shard %d row %d id = %v, want %d", i, r, v, s.Lo+r)
					}
				}
				// Broadcast tables are the parent pointer, not a copy.
				parentDim, _ := cat.Table("dim")
				shardDim, err := s.Catalog.Table("dim")
				if err != nil {
					t.Fatal(err)
				}
				if shardDim != parentDim {
					t.Fatalf("shard %d dim is a copy, want the broadcast parent pointer", i)
				}
			}
			if prevHi != tc.rows || total != tc.rows {
				t.Fatalf("shards cover %d rows ending at %d, want %d", total, prevHi, tc.rows)
			}
			if p.Generation() != tc.rows || p.Stale() {
				t.Fatalf("generation = %d stale = %v, want %d and fresh", p.Generation(), p.Stale(), tc.rows)
			}
		})
	}
}

// TestPartitionShardStats checks that shard-local tables compute their
// own column stats over only their row range.
func TestPartitionShardStats(t *testing.T) {
	cat := partTestCatalog(t, 100, 1)
	p, err := Partitioner{Shards: 4}.Partition(cat)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := p.Shard(2).Catalog.Table("fact")
	if err != nil {
		t.Fatal(err)
	}
	s, err := ft.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 50 || s.Max != 74 || s.Distinct != 25 {
		t.Fatalf("shard 2 id stats = %+v, want min 50 max 74 distinct 25", s)
	}
	// Parent stats stay full-range.
	parent, _ := cat.Table("fact")
	ps, err := parent.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Min != 0 || ps.Max != 99 {
		t.Fatalf("parent id stats = %+v, want min 0 max 99", ps)
	}
}

// TestPartitionRefresh covers both Refresh paths: replacing a broadcast
// table re-broadcasts the new pointer; growing the fact table flips
// Stale and re-slicing picks up the new rows.
func TestPartitionRefresh(t *testing.T) {
	cat := partTestCatalog(t, 40, 3)
	p, err := Partitioner{Shards: 4}.Partition(cat)
	if err != nil {
		t.Fatal(err)
	}

	// Broadcast replacement.
	newDim := NewTable("dim", MustSchema(Column{Name: "k", Type: Int64}))
	if err := newDim.AppendRow(IntValue(99)); err != nil {
		t.Fatal(err)
	}
	cat.Replace(newDim)
	if err := p.Refresh("dim"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumShards(); i++ {
		d, err := p.Shard(i).Catalog.Table("dim")
		if err != nil {
			t.Fatal(err)
		}
		if d != newDim {
			t.Fatalf("shard %d dim not re-broadcast after Refresh", i)
		}
	}

	// Fact growth: appends land in the parent only, until Refresh.
	parent, _ := cat.Table("fact")
	for i := 40; i < 60; i++ {
		if err := parent.AppendRow(IntValue(int64(i)), FloatValue(0)); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Stale() {
		t.Fatal("partition should be stale after fact-table growth")
	}
	if err := p.Refresh("fact"); err != nil {
		t.Fatal(err)
	}
	if p.Stale() || p.Generation() != 60 {
		t.Fatalf("after Refresh: stale=%v gen=%d, want fresh gen 60", p.Stale(), p.Generation())
	}
	total := 0
	for i := 0; i < p.NumShards(); i++ {
		ft, err := p.Shard(i).Catalog.Table("fact")
		if err != nil {
			t.Fatal(err)
		}
		total += ft.NumRows()
	}
	if total != 60 {
		t.Fatalf("re-sliced shards cover %d rows, want 60", total)
	}
}

// TestPartitionerValidation rejects nonsense configurations.
func TestPartitionerValidation(t *testing.T) {
	cat := partTestCatalog(t, 10, 2)
	if _, err := (Partitioner{Shards: 0}).Partition(cat); err == nil {
		t.Fatal("want error for 0 shards")
	}
	if _, err := (Partitioner{Shards: 2, Table: "nope"}).Partition(cat); err == nil {
		t.Fatal("want error for unknown fact table")
	}
	if _, err := (Partitioner{Shards: 2}).Partition(NewCatalog()); err == nil {
		t.Fatal("want error for empty catalog")
	}
	// The default fact table is the largest one (fact: 10 rows vs
	// dim: 2); explicit designation overrides the heuristic.
	p, err := Partitioner{Shards: 2}.Partition(cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Table() != "fact" {
		t.Fatalf("partitioned %q, want the largest table fact", p.Table())
	}
	if p, err = (Partitioner{Shards: 2, Table: "dim"}).Partition(cat); err != nil {
		t.Fatal(err)
	}
	if p.Table() != "dim" {
		t.Fatalf("partitioned %q, want designated dim", p.Table())
	}
}

// TestTableSliceIsAView checks the zero-copy contract: the slice
// shares backing arrays and clamps out-of-range bounds.
func TestTableSliceIsAView(t *testing.T) {
	cat := partTestCatalog(t, 10, 1)
	parent, _ := cat.Table("fact")
	s := parent.Slice(3, 7)
	if s.NumRows() != 4 || s.Name() != "fact" || s.Schema() != parent.Schema() {
		t.Fatalf("slice: rows=%d name=%q", s.NumRows(), s.Name())
	}
	pv, _ := parent.Ints(0)
	sv, _ := s.Ints(0)
	if &sv[0] != &pv[3] {
		t.Fatal("slice copied the int vector, want a view")
	}
	if e := parent.Slice(-5, 99); e.NumRows() != 10 {
		t.Fatalf("clamped slice rows = %d, want 10", e.NumRows())
	}
	if e := parent.Slice(8, 3); e.NumRows() != 0 {
		t.Fatalf("inverted slice rows = %d, want 0", e.NumRows())
	}
}
