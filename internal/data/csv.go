package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteCSV writes the table with a header row of "name:TYPE" cells so
// the schema round-trips without a side file.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema().Len())
	for i, c := range t.Schema().Columns {
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, t.Schema().Len())
	for r := 0; r < t.NumRows(); r++ {
		for i := range t.Schema().Columns {
			row[i] = t.ValueAt(r, i).String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: read CSV header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		parts := strings.SplitN(h, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("data: CSV header cell %q is not name:TYPE", h)
		}
		var typ Type
		switch strings.ToUpper(parts[1]) {
		case "BIGINT":
			typ = Int64
		case "DOUBLE":
			typ = Float64
		case "TEXT":
			typ = String
		default:
			return nil, fmt.Errorf("data: CSV header cell %q has unknown type", h)
		}
		cols[i] = Column{Name: parts[0], Type: typ}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t := NewTable(name, schema)
	vals := make([]Value, len(cols))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: read CSV row: %w", err)
		}
		for i, cell := range rec {
			v, err := ParseValue(cell, cols[i].Type)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SaveCSVFile writes the table to path.
func SaveCSVFile(t *Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(t, f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSVFile reads a table from path; the table name is the caller's.
func LoadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f)
}
