package data

import (
	"fmt"
	"math"
	"sort"
)

// Z-order (Morton-curve) clustering: two numeric columns are rank-
// quantized against per-column quantile cut points and their ranks are
// bit-interleaved into one uint64 sort key. Sorting by that key lays
// rows out along a space-filling curve, so *both* columns become
// piecewise-clustered: each 1024-row block covers a small rectangle of
// the two-dimensional rank space, and a range predicate on either
// column (or both) prunes blocks via the ordinary per-column zone
// maps. No scan-side code needs to know about the curve — zone-map
// soundness depends only on actual per-block min/max values, never on
// how the layout was produced.
//
// Rank quantization (rather than value bit-slicing) is what makes the
// interleave robust to skew: quantile cuts give every rank bucket the
// same row mass, so a Zipf-heavy column cannot collapse the curve onto
// a few codes. The cuts are frozen into the table (ClusterSpec) at
// ZOrderBy time; tail merges reuse them, which keeps a merge O(n)
// and is sound for pruning because zone maps summarize values, not keys.

const (
	// zorderDefaultBits is the per-axis rank resolution (bits) used when
	// the caller passes bits <= 0: 2^12 = 4096 rank buckets per axis,
	// plenty below any realistic block count while keeping the cut-point
	// tables small.
	zorderDefaultBits = 12
	// zorderMaxBits caps the per-axis resolution so two interleaved
	// ranks always fit a uint64 with room for the NaN sentinel.
	zorderMaxBits = 16
)

// spreadBits spaces the low 32 bits of x apart so bit i lands at
// position 2i (the standard Morton magic-mask cascade).
func spreadBits(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compactBits inverts spreadBits: it gathers the even-position bits of
// v back into a contiguous 32-bit value.
func compactBits(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return uint32(v)
}

// interleave2 builds the Z-order key of a rank pair: axis a occupies
// the even bit positions, axis b the odd ones.
func interleave2(a, b uint32) uint64 {
	return spreadBits(a) | spreadBits(b)<<1
}

// deinterleave2 recovers the rank pair from a Z-order key.
func deinterleave2(key uint64) (a, b uint32) {
	return compactBits(key), compactBits(key >> 1)
}

// zorderCuts computes bins-1 ascending quantile cut points over the
// non-NaN values of vec — the frozen rank quantizer of one axis. An
// all-NaN (or empty) column yields nil cuts, mapping every value to
// rank 0.
func zorderCuts(vec []float64, bins int) []float64 {
	vals := make([]float64, 0, len(vec))
	for _, v := range vec {
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	cuts := make([]float64, bins-1)
	for i := range cuts {
		cuts[i] = vals[(i+1)*len(vals)/bins]
	}
	return cuts
}

// zorderRank maps a non-NaN value to its rank bucket under the frozen
// cuts. The mapping is monotone non-decreasing in v (all that pruning
// and merging need); ±Inf land in the extreme buckets.
func zorderRank(cuts []float64, v float64) uint32 {
	return uint32(sort.SearchFloat64s(cuts, v))
}

// zorderKeys computes the Z-order key of every row from the frozen
// per-axis cuts. A row with NaN in either axis gets MaxUint64 — NaNs
// sort last, mirroring the single-column comparator — which cannot
// collide with a real key (two 16-bit ranks interleave below 2^32).
func zorderKeys(t *Table, columns []string, cuts [][]float64) ([]uint64, error) {
	if len(columns) != 2 || len(cuts) != 2 {
		return nil, fmt.Errorf("data: table %s: z-order wants exactly 2 columns, have %d", t.name, len(columns))
	}
	vecs := make([][]float64, 2)
	for i, c := range columns {
		ord := t.schema.Ordinal(c)
		if ord < 0 {
			return nil, fmt.Errorf("data: table %s has no column %q", t.name, c)
		}
		vec, err := t.NumericColumn(ord)
		if err != nil {
			return nil, fmt.Errorf("data: z-order column must be numeric: %w", err)
		}
		vecs[i] = vec
	}
	keys := make([]uint64, t.rows)
	for i := 0; i < t.rows; i++ {
		va, vb := vecs[0][i], vecs[1][i]
		if math.IsNaN(va) || math.IsNaN(vb) {
			keys[i] = math.MaxUint64
			continue
		}
		keys[i] = interleave2(zorderRank(cuts[0], va), zorderRank(cuts[1], vb))
	}
	return keys, nil
}

// ZOrderBy returns a copy of the table with rows reordered along the
// Z-order curve over two numeric columns: each column is rank-quantized
// by its own quantile cut points (2^bits buckets; bits <= 0 means
// zorderDefaultBits) and the interleaved ranks are the sort key, ties
// in original row order. Rows with NaN in either column sort last. The
// result records the two-column clustering spec and the frozen cuts
// (ClusterSpec), so appends grow an explicit unsorted tail and
// MergeClusteredTail can recompute keys without re-deriving quantiles.
func ZOrderBy(t *Table, columns []string, bits int) (*Table, error) {
	if len(columns) != 2 {
		return nil, fmt.Errorf("data: ZOrderBy wants exactly 2 columns, got %d", len(columns))
	}
	if bits <= 0 {
		bits = zorderDefaultBits
	}
	if bits > zorderMaxBits {
		bits = zorderMaxBits
	}
	canon := make([]string, 2)
	ords := make([]int, 2)
	for i, c := range columns {
		ord := t.schema.Ordinal(c)
		if ord < 0 {
			return nil, fmt.Errorf("data: table %s has no column %q", t.name, c)
		}
		canon[i] = t.schema.Columns[ord].Name
		ords[i] = ord
	}
	if ords[0] == ords[1] {
		return nil, fmt.Errorf("data: ZOrderBy on table %s: column %q interleaved with itself", t.name, canon[0])
	}
	bins := 1 << bits
	cuts := make([][]float64, 2)
	for i, ord := range ords {
		vec, err := t.NumericColumn(ord)
		if err != nil {
			return nil, fmt.Errorf("data: z-order column must be numeric: %w", err)
		}
		cuts[i] = zorderCuts(vec, bins)
	}
	keys, err := zorderKeys(t, canon, cuts)
	if err != nil {
		return nil, err
	}

	perm := make([]int, t.rows)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return keys[perm[a]] < keys[perm[b]]
	})

	out := permuted(t, perm)
	out.clusterCols = canon
	out.zcuts = cuts
	out.sortedRows = out.rows
	return out, nil
}
