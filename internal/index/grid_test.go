package index

import (
	"math"
	"math/rand"
	"testing"

	"acquire/internal/data"
)

func buildTestTable(t *testing.T, rows [][2]float64) *data.Table {
	t.Helper()
	tbl := data.NewTable("pts", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for _, r := range rows {
		if err := tbl.AppendRow(data.FloatValue(r[0]), data.FloatValue(r[1])); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestBuildValidation(t *testing.T) {
	tbl := buildTestTable(t, [][2]float64{{0, 0}})
	if _, err := Build(tbl, nil, 8); err == nil {
		t.Error("no columns: expected error")
	}
	if _, err := Build(tbl, []string{"x"}, 0); err == nil {
		t.Error("zero bins: expected error")
	}
	if _, err := Build(tbl, []string{"nope"}, 8); err == nil {
		t.Error("unknown column: expected error")
	}
	if _, err := Build(tbl, []string{"x", "x", "x", "x"}, 1<<8); err == nil {
		t.Error("oversized grid: expected error")
	}
}

func TestAnyInBoxBasics(t *testing.T) {
	tbl := buildTestTable(t, [][2]float64{
		{0, 0}, {10, 10}, {100, 100},
	})
	g, err := Build(tbl, []string{"x", "y"}, 10)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Table() != "pts" || len(g.Columns()) != 2 {
		t.Errorf("metadata: %s %v", g.Table(), g.Columns())
	}

	// A box containing (10,10) must report occupied.
	got, err := g.AnyInBox([]Interval{{5, 15}, {5, 15}})
	if err != nil || !got {
		t.Errorf("box around (10,10): %v, %v", got, err)
	}
	// A box far outside the domain must be empty.
	got, err = g.AnyInBox([]Interval{{200, 300}, {200, 300}})
	if err != nil || got {
		t.Errorf("out-of-domain box: %v, %v", got, err)
	}
	// An inverted interval is empty.
	got, err = g.AnyInBox([]Interval{{15, 5}, {0, 100}})
	if err != nil || got {
		t.Errorf("inverted box: %v, %v", got, err)
	}
	// Unbounded box covers everything.
	got, err = g.AnyInBox([]Interval{{math.Inf(-1), math.Inf(1)}, {math.Inf(-1), math.Inf(1)}})
	if err != nil || !got {
		t.Errorf("unbounded box: %v, %v", got, err)
	}
	// Dimension mismatch errors.
	if _, err := g.AnyInBox([]Interval{{0, 1}}); err == nil {
		t.Error("dim mismatch: expected error")
	}
}

func TestDegenerateDomain(t *testing.T) {
	tbl := buildTestTable(t, [][2]float64{{5, 1}, {5, 2}, {5, 3}})
	g, err := Build(tbl, []string{"x", "y"}, 4)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got, err := g.AnyInBox([]Interval{{5, 5}, {0, 10}})
	if err != nil || !got {
		t.Errorf("degenerate hit: %v, %v", got, err)
	}
	got, err = g.AnyInBox([]Interval{{6, 7}, {0, 10}})
	if err != nil || got {
		t.Errorf("degenerate miss: %v, %v", got, err)
	}
}

// Soundness property (§7.4): AnyInBox == false implies no tuple lies in
// the box. False positives are allowed; false negatives are not.
func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rows [][2]float64
	for i := 0; i < 500; i++ {
		rows = append(rows, [2]float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	tbl := buildTestTable(t, rows)
	g, err := Build(tbl, []string{"x", "y"}, 16)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for trial := 0; trial < 200; trial++ {
		x0, y0 := rng.Float64()*1100-50, rng.Float64()*1100-50
		box := []Interval{{x0, x0 + rng.Float64()*200}, {y0, y0 + rng.Float64()*200}}
		any, err := g.AnyInBox(box)
		if err != nil {
			t.Fatal(err)
		}
		holds := false
		for _, r := range rows {
			if r[0] >= box[0].Lo && r[0] <= box[0].Hi && r[1] >= box[1].Lo && r[1] <= box[1].Hi {
				holds = true
				break
			}
		}
		if holds && !any {
			t.Fatalf("false negative: box %v contains a tuple but index says empty", box)
		}
	}
}

func TestOccupiedCells(t *testing.T) {
	tbl := buildTestTable(t, [][2]float64{{0, 0}, {0, 0}, {999, 999}})
	g, err := Build(tbl, []string{"x", "y"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.OccupiedCells(); got != 2 {
		t.Errorf("OccupiedCells = %d, want 2", got)
	}
}
