package index

import (
	"reflect"
	"testing"
)

// TestPostingRuns checks the run-cutting contract the boundary-cell
// zone-skipping walk relies on: for every cell, the emitted runs
// concatenate back to the exact posting list, each run is non-empty and
// stays within one physical block, and block indices strictly increase
// (runs are maximal, and posting lists are ascending).
func TestPostingRuns(t *testing.T) {
	rows := randAggRows(5000, 42)
	tbl := buildAggTable(t, rows)
	g, err := BuildAgg(tbl, []string{"x", "y"}, []string{"v"}, 16, 4)
	if err != nil {
		t.Fatal(err)
	}

	for _, rowsPerBlock := range []int{1, 7, 64, 1024, 1 << 20} {
		for cell := 0; cell < g.NumCells(); cell++ {
			want := g.PostingList(cell)
			var got []int32
			lastBlock := -1
			g.PostingRuns(cell, rowsPerBlock, func(block int, run []int32) {
				if len(run) == 0 {
					t.Fatalf("rpb=%d cell %d: empty run for block %d", rowsPerBlock, cell, block)
				}
				if block <= lastBlock {
					t.Fatalf("rpb=%d cell %d: block %d after %d (runs must be maximal and ascending)",
						rowsPerBlock, cell, block, lastBlock)
				}
				lastBlock = block
				for _, r := range run {
					if int(r)/rowsPerBlock != block {
						t.Fatalf("rpb=%d cell %d: row %d reported in block %d", rowsPerBlock, cell, r, block)
					}
				}
				got = append(got, run...)
			})
			if len(want) == 0 {
				if got != nil {
					t.Fatalf("rpb=%d cell %d: runs emitted for empty posting list", rowsPerBlock, cell)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rpb=%d cell %d: runs concatenate to %v, want %v", rowsPerBlock, cell, got, want)
			}
		}
	}
}
