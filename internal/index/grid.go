// Package index implements the multi-dimensional grid bitmap index of
// §7.4 of the paper: each indexed attribute is divided into equi-width
// parts, forming a grid over the table; each grid cell carries one bit,
// set iff some tuple falls in the cell. The Explore phase consults the
// index to decide whether a cell query is empty without executing it.
package index

import (
	"fmt"
	"math"

	"acquire/internal/data"
)

// maxCells caps the bitmap size (bits). 2^22 bits = 512 KiB.
const maxCells = 1 << 22

// MaxAggCells caps aggregate-augmented grids, which carry per-cell
// partials (8 B count + 4 B posting offset + 24 B per aggregate
// column) rather than one bit. 2^18 cells keeps the steady-state
// payload around 9 MiB/column and the transient build memory (one
// dense accumulator per build shard) under ~70 MiB at the cap; see
// DESIGN.md for the policy.
const MaxAggCells = 1 << 18

// buildShards is the fixed number of row shards of BuildAgg. It is a
// constant — not a function of the worker count — so the §2.6 shard
// merge tree, and therefore the float association of every per-cell
// SUM, depends only on the input, making the payload bit-identical
// across worker counts (the same trick as exec's fixed fold chunks).
const buildShards = 8

// cellAggs is the aggregate payload of an aggregate-augmented grid:
// per-cell COUNT plus SUM/MIN/MAX of each registered aggregate column,
// and a CSR posting list mapping each cell to its row ids.
type cellAggs struct {
	cols   []string    // aggregate column names, original case
	counts []int64     // [cell]
	sums   [][]float64 // [aggIdx][cell]
	mins   [][]float64
	maxs   [][]float64
	// postStart[c]..postStart[c+1] index postRows; postRows holds every
	// table row id, grouped by cell, ascending within each cell.
	postStart []int32
	postRows  []int32
}

// Grid is an immutable equi-width grid bitmap over k numeric columns of
// one table, optionally augmented with per-cell aggregate partials and
// posting lists (BuildAgg).
type Grid struct {
	table   string
	columns []string
	mins    []float64
	widths  []float64 // bin width per dimension (0 for degenerate domains)
	bins    []int     // bins per dimension
	strides []int
	cells   int
	bits    []uint64
	aggs    *cellAggs // nil for plain bitmap grids
}

// newGrid builds the shared geometry (bin edges, strides, bitmap
// storage) and returns the indexed column vectors.
func newGrid(t *data.Table, columns []string, binsPerDim, cellCap int) (*Grid, [][]float64, error) {
	if len(columns) == 0 {
		return nil, nil, fmt.Errorf("index: no columns")
	}
	if binsPerDim < 1 {
		return nil, nil, fmt.Errorf("index: binsPerDim must be >= 1, got %d", binsPerDim)
	}
	total := 1
	for range columns {
		if total > cellCap/binsPerDim {
			return nil, nil, fmt.Errorf("index: grid of %d^%d cells exceeds cap", binsPerDim, len(columns))
		}
		total *= binsPerDim
	}

	g := &Grid{
		table:   t.Name(),
		columns: append([]string(nil), columns...),
		mins:    make([]float64, len(columns)),
		widths:  make([]float64, len(columns)),
		bins:    make([]int, len(columns)),
		strides: make([]int, len(columns)),
		cells:   total,
		bits:    make([]uint64, (total+63)/64),
	}

	vecs := make([][]float64, len(columns))
	for i, col := range columns {
		ord := t.Schema().Ordinal(col)
		if ord < 0 {
			return nil, nil, fmt.Errorf("index: table %s has no column %q", t.Name(), col)
		}
		vec, err := t.NumericColumn(ord)
		if err != nil {
			return nil, nil, err
		}
		stats, err := t.Stats(ord)
		if err != nil {
			return nil, nil, err
		}
		vecs[i] = vec
		g.mins[i] = stats.Min
		g.bins[i] = binsPerDim
		if stats.Max > stats.Min {
			g.widths[i] = (stats.Max - stats.Min) / float64(binsPerDim)
		}
	}
	stride := 1
	for i := len(columns) - 1; i >= 0; i-- {
		g.strides[i] = stride
		stride *= g.bins[i]
	}
	return g, vecs, nil
}

// Build constructs a grid over the named numeric columns with the given
// number of bins per dimension.
func Build(t *data.Table, columns []string, binsPerDim int) (*Grid, error) {
	g, vecs, err := newGrid(t, columns, binsPerDim, maxCells)
	if err != nil {
		return nil, err
	}
	for row := 0; row < t.NumRows(); row++ {
		cell := 0
		for i := range columns {
			cell += g.binOf(i, vecs[i][row]) * g.strides[i]
		}
		g.bits[cell/64] |= 1 << (cell % 64)
	}
	return g, nil
}

// Table returns the indexed table's name.
func (g *Grid) Table() string { return g.table }

// Columns returns the indexed column names in grid order.
func (g *Grid) Columns() []string { return append([]string(nil), g.columns...) }

func (g *Grid) binOf(dim int, v float64) int {
	if g.widths[dim] == 0 {
		return 0
	}
	b := int((v - g.mins[dim]) / g.widths[dim])
	if b < 0 {
		b = 0
	}
	if b >= g.bins[dim] {
		b = g.bins[dim] - 1
	}
	return b
}

// binRange returns the inclusive bin interval overlapping [lo, hi];
// ok=false when the value interval misses the domain entirely.
func (g *Grid) binRange(dim int, lo, hi float64) (int, int, bool) {
	if hi < lo {
		return 0, 0, false
	}
	domainMax := g.mins[dim] + g.widths[dim]*float64(g.bins[dim])
	if g.widths[dim] == 0 {
		// Degenerate domain: single value at mins[dim].
		if lo <= g.mins[dim] && g.mins[dim] <= hi {
			return 0, 0, true
		}
		return 0, 0, false
	}
	if hi < g.mins[dim] || lo > domainMax {
		return 0, 0, false
	}
	return g.binOf(dim, lo), g.binOf(dim, hi), true
}

// Interval is a closed value interval on one grid dimension.
type Interval struct {
	Lo, Hi float64
}

// AnyInBox reports whether any occupied grid cell intersects the box
// given by one closed interval per dimension (in grid column order).
// Unbounded sides are expressed with ±Inf. This is a conservative test:
// true may be a false positive at bin granularity, but false guarantees
// the region holds no tuples — exactly the §7.4 skip condition.
func (g *Grid) AnyInBox(box []Interval) (bool, error) {
	if len(box) != len(g.columns) {
		return false, fmt.Errorf("index: box has %d dims, grid has %d", len(box), len(g.columns))
	}
	los := make([]int, len(box))
	his := make([]int, len(box))
	for i, iv := range box {
		lo, hi := iv.Lo, iv.Hi
		if math.IsInf(lo, -1) {
			lo = g.mins[i]
		}
		if math.IsInf(hi, 1) {
			hi = g.mins[i] + g.widths[i]*float64(g.bins[i])
		}
		l, h, ok := g.binRange(i, lo, hi)
		if !ok {
			return false, nil
		}
		los[i], his[i] = l, h
	}
	// Walk the sub-box in odometer order.
	cur := make([]int, len(box))
	copy(cur, los)
	for {
		cell := 0
		for i, c := range cur {
			cell += c * g.strides[i]
		}
		if g.bits[cell/64]&(1<<(cell%64)) != 0 {
			return true, nil
		}
		i := len(cur) - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= his[i] {
				break
			}
			cur[i] = los[i]
			i--
		}
		if i < 0 {
			return false, nil
		}
	}
}

// OccupiedCells counts set bits; diagnostics and tests.
func (g *Grid) OccupiedCells() int {
	n := 0
	for _, w := range g.bits {
		n += popcount(w)
	}
	return n
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}
