package index

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"acquire/internal/data"
)

// shardAcc is one build shard's dense accumulator: the partial
// aggregate of the shard's rows per cell. Shards are disjoint row
// ranges, so merging them cell-wise by the §2.6 rule (counts and sums
// add, mins/maxs fold) reconstructs the whole-table partials exactly.
type shardAcc struct {
	counts []int32
	sums   [][]float64
	mins   [][]float64
	maxs   [][]float64
}

// BuildAgg constructs an aggregate-augmented grid: the §7.4 occupancy
// bitmap of Build, plus per-cell COUNT, per-cell SUM/MIN/MAX of each
// aggCols column, and a CSR posting list of row ids per cell.
//
// The build is row-partitioned: the table is cut into buildShards
// fixed contiguous row ranges, workers accumulate one dense partial
// grid per shard concurrently, and the shards are merged in shard
// order by the §2.6 merge rule. Fixed shard boundaries and a fixed
// merge order make the payload — including the float association of
// every per-cell SUM — bit-identical for any worker count.
//
// The cell budget is MaxAggCells (smaller than the bitmap's cap: each
// cell costs bytes here, one bit there).
func BuildAgg(t *data.Table, columns, aggCols []string, binsPerDim, workers int) (*Grid, error) {
	g, vecs, err := newGrid(t, columns, binsPerDim, MaxAggCells)
	if err != nil {
		return nil, err
	}
	aggVecs := make([][]float64, len(aggCols))
	for i, col := range aggCols {
		ord := t.Schema().Ordinal(col)
		if ord < 0 {
			return nil, fmt.Errorf("index: table %s has no aggregate column %q", t.Name(), col)
		}
		if aggVecs[i], err = t.NumericColumn(ord); err != nil {
			return nil, err
		}
	}

	n := t.NumRows()
	nc := g.cells
	na := len(aggCols)
	rowCell := make([]int32, n)

	// Shard boundaries are a function of n alone (near-equal contiguous
	// ranges); workers only decide how many shards run concurrently.
	type span struct{ lo, hi int }
	shards := make([]span, 0, buildShards)
	for s := 0; s < buildShards; s++ {
		lo, hi := s*n/buildShards, (s+1)*n/buildShards
		if hi > lo {
			shards = append(shards, span{lo, hi})
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	accs := make([]*shardAcc, len(shards))
	runShard := func(si int) {
		acc := &shardAcc{
			counts: make([]int32, nc),
			sums:   make([][]float64, na),
			mins:   make([][]float64, na),
			maxs:   make([][]float64, na),
		}
		for a := 0; a < na; a++ {
			acc.sums[a] = make([]float64, nc)
			acc.mins[a] = make([]float64, nc)
			acc.maxs[a] = make([]float64, nc)
			for c := range acc.mins[a] {
				acc.mins[a][c] = math.Inf(1)
				acc.maxs[a][c] = math.Inf(-1)
			}
		}
		for row := shards[si].lo; row < shards[si].hi; row++ {
			cell := 0
			for d := range g.columns {
				cell += g.binOf(d, vecs[d][row]) * g.strides[d]
			}
			rowCell[row] = int32(cell)
			acc.counts[cell]++
			for a := 0; a < na; a++ {
				v := aggVecs[a][row]
				acc.sums[a][cell] += v
				if v < acc.mins[a][cell] {
					acc.mins[a][cell] = v
				}
				if v > acc.maxs[a][cell] {
					acc.maxs[a][cell] = v
				}
			}
		}
		accs[si] = acc
	}
	if workers <= 1 {
		for si := range shards {
			runShard(si)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					si := int(next.Add(1)) - 1
					if si >= len(shards) {
						return
					}
					runShard(si)
				}
			}()
		}
		wg.Wait()
	}

	// Merge shards in shard order (§2.6: counts/sums add, mins/maxs
	// fold) into the global payload.
	aggs := &cellAggs{
		cols:      append([]string(nil), aggCols...),
		counts:    make([]int64, nc),
		sums:      make([][]float64, na),
		mins:      make([][]float64, na),
		maxs:      make([][]float64, na),
		postStart: make([]int32, nc+1),
		postRows:  make([]int32, n),
	}
	for a := 0; a < na; a++ {
		aggs.sums[a] = make([]float64, nc)
		aggs.mins[a] = make([]float64, nc)
		aggs.maxs[a] = make([]float64, nc)
		for c := range aggs.mins[a] {
			aggs.mins[a][c] = math.Inf(1)
			aggs.maxs[a][c] = math.Inf(-1)
		}
	}
	for _, acc := range accs {
		for c, cnt := range acc.counts {
			if cnt == 0 {
				continue
			}
			aggs.counts[c] += int64(cnt)
			for a := 0; a < na; a++ {
				aggs.sums[a][c] += acc.sums[a][c]
				if acc.mins[a][c] < aggs.mins[a][c] {
					aggs.mins[a][c] = acc.mins[a][c]
				}
				if acc.maxs[a][c] > aggs.maxs[a][c] {
					aggs.maxs[a][c] = acc.maxs[a][c]
				}
			}
		}
	}

	// CSR posting lists: prefix-sum the counts into start offsets, then
	// one counting-sort pass over the precomputed row cells. The pass is
	// serial (it is a cheap array shuffle next to the aggregation above)
	// and ascending row order keeps each cell's posting list sorted.
	run := int32(0)
	for c := 0; c < nc; c++ {
		aggs.postStart[c] = run
		run += int32(aggs.counts[c])
	}
	aggs.postStart[nc] = run
	cursor := make([]int32, nc)
	copy(cursor, aggs.postStart[:nc])
	for row := 0; row < n; row++ {
		c := rowCell[row]
		aggs.postRows[cursor[c]] = int32(row)
		cursor[c]++
	}

	// Occupancy bits, so AnyInBox and the §7.4 skip path work unchanged.
	for c := 0; c < nc; c++ {
		if aggs.counts[c] > 0 {
			g.bits[c/64] |= 1 << (c % 64)
		}
	}
	g.aggs = aggs
	return g, nil
}

// BinsForRows suggests a per-dimension bin count for an aggregate grid
// over a table of `rows` rows: cells ≈ rows/4, so posting lists
// average a few rows and box walks touch far fewer cells than rows,
// clamped to [2, 64] per dimension and to the MaxAggCells budget.
func BinsForRows(dims, rows int) int {
	if dims < 1 {
		return 2
	}
	bins := int(math.Pow(float64(rows)/4, 1/float64(dims)))
	if bins > 64 {
		bins = 64
	}
	for bins > 2 && pow(bins, dims) > MaxAggCells {
		bins--
	}
	if bins < 2 {
		bins = 2
	}
	return bins
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		if out > MaxAggCells {
			return out
		}
		out *= b
	}
	return out
}

// HasAggs reports whether the grid carries the aggregate payload.
func (g *Grid) HasAggs() bool { return g.aggs != nil }

// AggColumns returns the aggregate column names (nil for plain grids).
func (g *Grid) AggColumns() []string {
	if g.aggs == nil {
		return nil
	}
	return append([]string(nil), g.aggs.cols...)
}

// AggIndex resolves an aggregate column name (case-insensitive) to its
// payload index, or -1 when the column is not materialized.
func (g *Grid) AggIndex(col string) int {
	if g.aggs == nil {
		return -1
	}
	for i, c := range g.aggs.cols {
		if equalFold(c, col) {
			return i
		}
	}
	return -1
}

// equalFold is strings.EqualFold without the import (ASCII column
// names only reach here).
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// NumCells returns the total cell count of the grid.
func (g *Grid) NumCells() int { return g.cells }

// Bins returns the bin count of one dimension.
func (g *Grid) Bins(dim int) int { return g.bins[dim] }

// Stride returns the cell-id stride of one dimension.
func (g *Grid) Stride(dim int) int { return g.strides[dim] }

// BinRange is the exported form of binRange: the inclusive bin
// interval of dimension dim overlapping the closed value interval
// [lo, hi]; ok=false when the interval misses the domain entirely.
// Unbounded sides (±Inf) clamp to the domain edges, as in AnyInBox.
func (g *Grid) BinRange(dim int, lo, hi float64) (int, int, bool) {
	if math.IsInf(lo, -1) {
		lo = g.mins[dim]
	}
	if math.IsInf(hi, 1) {
		hi = g.mins[dim] + g.widths[dim]*float64(g.bins[dim])
	}
	return g.binRange(dim, lo, hi)
}

// BinSpan returns a conservative closed value span of one bin: every
// row the build placed in the bin has its value inside the span. The
// span is the bin's nominal [min + b·w, min + (b+1)·w] widened by a
// relative pad absorbing the float rounding of binOf's division —
// widening can only demote interior cells to boundary cells, never the
// (unsafe) reverse.
func (g *Grid) BinSpan(dim, bin int) (lo, hi float64) {
	w := g.widths[dim]
	if w == 0 {
		return g.mins[dim], g.mins[dim]
	}
	lo = g.mins[dim] + w*float64(bin)
	hi = g.mins[dim] + w*float64(bin+1)
	pad := 1e-9 * (w + math.Abs(lo) + math.Abs(hi))
	return lo - pad, hi + pad
}

// CellCount returns the row count of one cell (0 for plain grids).
func (g *Grid) CellCount(cell int) int64 {
	if g.aggs == nil {
		return 0
	}
	return g.aggs.counts[cell]
}

// CellAgg returns the stored SUM/MIN/MAX partial of aggregate column
// aggIdx over one cell. Empty cells report (0, +Inf, -Inf) — the
// merge identity.
func (g *Grid) CellAgg(aggIdx, cell int) (sum, min, max float64) {
	a := g.aggs
	return a.sums[aggIdx][cell], a.mins[aggIdx][cell], a.maxs[aggIdx][cell]
}

// PostingList returns the row ids of one cell, ascending. The slice
// aliases the index; callers must not mutate it.
func (g *Grid) PostingList(cell int) []int32 {
	a := g.aggs
	return a.postRows[a.postStart[cell]:a.postStart[cell+1]]
}

// PostingRuns cuts one cell's ascending posting list into maximal runs
// of rows sharing a physical block of rowsPerBlock rows and calls fn
// once per run with the block index and the run's row ids (aliasing the
// index — callers must not mutate). Because the CSR build emits rows in
// ascending order, each block's rows form one contiguous run, so a
// caller holding per-block summaries (zone maps) can skip a whole run
// with a single predicate test instead of probing every row.
func (g *Grid) PostingRuns(cell, rowsPerBlock int, fn func(block int, rows []int32)) {
	rows := g.PostingList(cell)
	for i := 0; i < len(rows); {
		bi := int(rows[i]) / rowsPerBlock
		j := i + 1
		for j < len(rows) && int(rows[j])/rowsPerBlock == bi {
			j++
		}
		fn(bi, rows[i:j])
		i = j
	}
}

// AggBytes reports the aggregate payload's steady-state size in bytes;
// diagnostics and benchmarks.
func (g *Grid) AggBytes() int {
	a := g.aggs
	if a == nil {
		return 0
	}
	b := 8*len(a.counts) + 4*len(a.postStart) + 4*len(a.postRows)
	for i := range a.sums {
		b += 8 * (len(a.sums[i]) + len(a.mins[i]) + len(a.maxs[i]))
	}
	return b
}
