package index

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"acquire/internal/data"
)

// buildAggTable builds a 3-column table: x, y index columns plus a v
// aggregate column.
func buildAggTable(t *testing.T, rows [][3]float64) *data.Table {
	t.Helper()
	tbl := data.NewTable("pts", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
		data.Column{Name: "v", Type: data.Float64},
	))
	for _, r := range rows {
		if err := tbl.AppendRow(data.FloatValue(r[0]), data.FloatValue(r[1]), data.FloatValue(r[2])); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func randAggRows(n int, seed int64) [][3]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][3]float64, n)
	for i := range rows {
		rows[i] = [3]float64{rng.Float64() * 1000, rng.Float64() * 1000, rng.NormFloat64() * 50}
	}
	return rows
}

func TestBuildAggValidation(t *testing.T) {
	tbl := buildAggTable(t, [][3]float64{{0, 0, 1}})
	if _, err := BuildAgg(tbl, nil, nil, 8, 1); err == nil {
		t.Error("no columns: expected error")
	}
	if _, err := BuildAgg(tbl, []string{"x"}, []string{"nope"}, 8, 1); err == nil {
		t.Error("unknown aggregate column: expected error")
	}
	if _, err := BuildAgg(tbl, []string{"x", "y"}, nil, 1<<10, 1); err == nil {
		t.Error("oversized agg grid: expected error")
	}
}

// TestBuildAggMatchesDirect checks the per-cell partials and posting
// lists against a direct serial recomputation from the rows.
func TestBuildAggMatchesDirect(t *testing.T) {
	rows := randAggRows(2000, 11)
	tbl := buildAggTable(t, rows)
	g, err := BuildAgg(tbl, []string{"x", "y"}, []string{"v"}, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ai := g.AggIndex("V") // case-insensitive
	if ai != 0 {
		t.Fatalf("AggIndex(V) = %d, want 0", ai)
	}

	nc := g.NumCells()
	counts := make([]int64, nc)
	sums := make([]float64, nc)
	mins := make([]float64, nc)
	maxs := make([]float64, nc)
	post := make([][]int32, nc)
	for c := range mins {
		mins[c], maxs[c] = math.Inf(1), math.Inf(-1)
	}
	for row, r := range rows {
		cell := g.binOf(0, r[0])*g.strides[0] + g.binOf(1, r[1])*g.strides[1]
		counts[cell]++
		sums[cell] += r[2]
		mins[cell] = math.Min(mins[cell], r[2])
		maxs[cell] = math.Max(maxs[cell], r[2])
		post[cell] = append(post[cell], int32(row))
	}

	totalPost := 0
	for c := 0; c < nc; c++ {
		if g.CellCount(c) != counts[c] {
			t.Fatalf("cell %d: count %d, want %d", c, g.CellCount(c), counts[c])
		}
		sum, mn, mx := g.CellAgg(0, c)
		if mn != mins[c] || mx != maxs[c] {
			t.Fatalf("cell %d: min/max %v/%v, want %v/%v", c, mn, mx, mins[c], maxs[c])
		}
		if math.Abs(sum-sums[c]) > 1e-9*(1+math.Abs(sums[c])) {
			t.Fatalf("cell %d: sum %v, want %v", c, sum, sums[c])
		}
		pl := g.PostingList(c)
		totalPost += len(pl)
		if int64(len(pl)) != counts[c] {
			t.Fatalf("cell %d: posting list len %d, want %d", c, len(pl), counts[c])
		}
		for i, r := range pl {
			if r != post[c][i] {
				t.Fatalf("cell %d: posting list %v, want %v", c, pl, post[c])
			}
			if i > 0 && pl[i] <= pl[i-1] {
				t.Fatalf("cell %d: posting list not ascending: %v", c, pl)
			}
		}
		// Occupancy bit consistent with count.
		bit := g.bits[c/64]&(1<<(c%64)) != 0
		if bit != (counts[c] > 0) {
			t.Fatalf("cell %d: bit %v, count %d", c, bit, counts[c])
		}
	}
	if totalPost != len(rows) {
		t.Fatalf("posting lists cover %d rows, want %d", totalPost, len(rows))
	}
	if g.AggBytes() == 0 {
		t.Error("AggBytes = 0 for aggregate grid")
	}
}

// TestBuildAggDeterministic: the payload — including every float SUM —
// must be bit-identical across worker counts (§2.6 fixed shard merge).
func TestBuildAggDeterministic(t *testing.T) {
	rows := randAggRows(5000, 23)
	tbl := buildAggTable(t, rows)
	var ref *cellAggs
	for _, workers := range []int{1, 2, 4, 8, 16} {
		g, err := BuildAgg(tbl, []string{"x", "y"}, []string{"v"}, 24, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = g.aggs
			continue
		}
		if !reflect.DeepEqual(ref, g.aggs) {
			t.Fatalf("workers=%d: payload differs from workers=1 build", workers)
		}
	}
}

func TestBinSpanConservative(t *testing.T) {
	rows := randAggRows(3000, 5)
	tbl := buildAggTable(t, rows)
	g, err := BuildAgg(tbl, []string{"x", "y"}, nil, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every row's value must lie inside the padded span of its own bin.
	for _, r := range rows {
		for d, v := range []float64{r[0], r[1]} {
			b := g.binOf(d, v)
			lo, hi := g.BinSpan(d, b)
			if v < lo || v > hi {
				t.Fatalf("dim %d: value %v outside BinSpan(%d) = [%v, %v]", d, v, b, lo, hi)
			}
		}
	}
	// Exported BinRange mirrors the internal one.
	l, h, ok := g.BinRange(0, 100, 200)
	l2, h2, ok2 := g.binRange(0, 100, 200)
	if l != l2 || h != h2 || ok != ok2 {
		t.Fatal("BinRange disagrees with binRange")
	}
}

func TestBinsForRows(t *testing.T) {
	cases := []struct{ dims, rows, min, max int }{
		{1, 100, 2, 64},
		{3, 100000, 2, 64},
		{0, 1000, 2, 2},
		{5, 10, 2, 2},
		{2, 100000000, 2, 64},
	}
	for _, c := range cases {
		got := BinsForRows(c.dims, c.rows)
		if got < c.min || got > c.max {
			t.Errorf("BinsForRows(%d, %d) = %d, want in [%d, %d]", c.dims, c.rows, got, c.min, c.max)
		}
		if c.dims >= 1 && pow(got, c.dims) > MaxAggCells {
			t.Errorf("BinsForRows(%d, %d) = %d exceeds MaxAggCells", c.dims, c.rows, got)
		}
	}
}
