//go:build race

package harness

// raceEnabled reports whether the race detector is instrumenting this
// test binary. Wall-clock claim checks are skipped under -race: the
// instrumentation slows the methods by different factors, so timing
// ratios no longer measure the algorithms.
const raceEnabled = true
