package harness

import (
	"context"

	"acquire/internal/relq"
	"acquire/internal/workload"
)

// RepeatedSessions is the number of workload replays in RepeatedWorkload.
var RepeatedSessions = 4

// RepeatedWorkload measures the cross-search partial-aggregate cache
// (internal/exec/regioncache): concurrent refinement sessions in a
// deployment ask near-identical questions over shared data, and
// ACQUIRE's cell sub-queries are canonical enough that one session's
// executions answer another's. It replays the Figure 8 ACQUIRE
// workload (3 flexible predicates, every aggregate ratio)
// RepeatedSessions times on one engine and reports per-session
// execution counts, wall time and cache hit rate. With a cache
// attached (Config.CacheMB > 0) sessions after the first are answered
// almost entirely from cached partials; with CacheMB = 0 the study is
// the no-cache ablation (every session pays the cold cost). Results
// are bit-identical either way.
func RepeatedWorkload(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := usersEngine(cfg)
	if err != nil {
		return nil, err
	}
	var xs, execs, millis, hitRate []float64
	for sess := 0; sess < RepeatedSessions; sess++ {
		before := e.Snapshot()
		wall := 0.0
		for _, r := range Ratios {
			q, err := workload.BuildCalibrated(e, workload.Spec{
				Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: r,
			})
			if err != nil {
				return nil, err
			}
			m, err := RunACQUIRE(ctx, e, q, acquireOpts(cfg))
			if err != nil {
				return nil, err
			}
			wall += m.Millis
		}
		d := e.Snapshot().Sub(before)
		xs = append(xs, float64(sess+1))
		execs = append(execs, float64(d.Queries))
		millis = append(millis, wall)
		if lookups := d.CacheHits + d.CacheMisses; lookups > 0 {
			hitRate = append(hitRate, float64(d.CacheHits)/float64(lookups))
		} else {
			hitRate = append(hitRate, 0)
		}
	}
	return []Figure{
		{ID: "cache.a", Title: "Evaluation-layer executions per repeated session", XLabel: "session", X: xs,
			YLabel: "executions", Series: []Series{{Name: "ACQUIRE", Y: execs}}},
		{ID: "cache.b", Title: "Execution time per repeated session", XLabel: "session", X: xs,
			YLabel: "time (ms)", Series: []Series{{Name: "ACQUIRE", Y: millis}}},
		{ID: "cache.c", Title: "Cache hit rate per repeated session", XLabel: "session", X: xs,
			YLabel: "hit rate", Series: []Series{{Name: "ACQUIRE", Y: hitRate}}},
	}, nil
}
