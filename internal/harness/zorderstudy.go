package harness

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/relq"
	"acquire/internal/tpch"
)

// ZOrderWarmupBatches bounds how many warmup batches each learning
// engine gets before a study section stops waiting for its re-sort.
var ZOrderWarmupBatches = 40

// ZOrderStormWaves bounds the scheduler section: each wave appends a
// mergeable tail and completes a batch while a wider sibling batch is
// still in flight, until a sweep defers its layout action.
var ZOrderStormWaves = 12

// zorderQuery is the study's fixed two-range-dimension ACQ over users:
// age and income both carry every region's weight, with per-axis
// marginal masses around 0.3-0.55 — the regime where interleaving the
// two rank spaces beats a perfect sort on either single column.
func zorderQuery() (*relq.Query, []relq.Region) {
	q := &relq.Query{
		Tables: []string{"users"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "age"}, Bound: 40, Width: 62},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "income"}, Bound: 80000, Width: 180000},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	var regions []relq.Region
	for i := 0; i < 8; i++ {
		h := 4 + float64(i)*2
		regions = append(regions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: h}})
	}
	return q, regions
}

// zorderAppendTail appends k synthetic rows to the users table (schema
// order), growing the clustered layout's unsorted tail past the merge
// threshold so the next sweep has a layout action to defer or take.
func zorderAppendTail(t *data.Table, k int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	base := t.NumRows()
	for i := 0; i < k; i++ {
		if err := t.AppendRow(
			data.IntValue(int64(base+i)),
			data.IntValue(18+int64(rng.Intn(52))),
			data.FloatValue(rng.Float64()*200000),
			data.FloatValue(rng.Float64()*100),
			data.FloatValue(rng.Float64()*50),
			data.FloatValue(rng.Float64()*1000),
			data.StringValue("F"),
			data.StringValue("city"),
		); err != nil {
			return err
		}
	}
	return nil
}

// ZOrderStudy measures multi-dimensional data skipping on a fixed
// two-range-dimension users workload. Three engines over identical data
// run the same batch —
//
//   - "plain": generator layout, no clustering;
//   - "single": PR 9's workload-adaptive clustering without curve
//     layouts — the election picks the best single column;
//   - "zorder": the same election with Z-order admitted (SetZOrder);
//     the cost model picks the two-column interleave, so zone maps
//     prune on both axes.
//
// All partials are COUNTs, so every cross-layout comparison is
// bit-exact. Sections: steady-state timing (min of interleaved rounds),
// per-axis skip attribution on the curve layout, cost-modeled re-sort
// *scheduling* (concurrent batch storms force the sweep to defer layout
// actions — DeferredResorts), shard bit-identity at 1/2/4 shards, and a
// per-shard divergence study (an age-sorted parent split into range
// shards: interior shards keep the inherited layout, the low-age shard
// re-elects income — divergence wins exactly where the global layout is
// locally worthless).
//
// With cfg.Obs attached the study publishes the CI-guarded gauges
// acquire_zorder_speedup (single/zorder steady ratio), per-axis
// acquire_zorder_{age,income}_blocks_skipped, and
// acquire_zorder_deferred_resorts; the engines' own counters
// (acquire_autocluster_zorder_resorts_total,
// acquire_autocluster_deferred_resorts_total) flow through the same
// registry.
func ZOrderStudy(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	newCat := func() (*data.Catalog, error) {
		return tpch.GenerateUsers(tpch.UsersConfig{Rows: cfg.Rows, Zipf: cfg.Zipf, Seed: cfg.Seed})
	}
	newVariant := func(c Config) (exec.Evaluator, error) {
		cat, err := newCat()
		if err != nil {
			return nil, err
		}
		return newEngine(cat, c)
	}
	pe, err := newVariant(Config{Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	se, err := newVariant(Config{Obs: cfg.Obs, AutoCluster: true})
	if err != nil {
		return nil, err
	}
	ze, err := newVariant(Config{Obs: cfg.Obs, ZOrder: true})
	if err != nil {
		return nil, err
	}

	q, regions := zorderQuery()
	want, err := pe.AggregateBatch(ctx, q, regions)
	if err != nil {
		return nil, err
	}
	check := func(name string, e exec.Evaluator) error {
		got, err := e.AggregateBatch(ctx, q, regions)
		if err != nil {
			return err
		}
		for i := range got {
			if got[i].Count != want[i].Count || !agg.ApproxEqual(got[i], want[i], 0) {
				return fmt.Errorf("zorder: %s region %d diverged: %+v vs plain %+v",
					name, i, got[i], want[i])
			}
		}
		return nil
	}

	// Warmup both learning engines until their elections land (each
	// batch re-checks the partials — a layout rewrite must never change
	// an answer). The single-column engine must NOT have elected a
	// curve: its ZOrderResorts staying zero is the ablation guarantee.
	singleResortAt, zResortAt := -1, -1
	for batch := 1; batch <= ZOrderWarmupBatches; batch++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if singleResortAt < 0 {
			if err := check("single", se); err != nil {
				return nil, err
			}
			if se.Snapshot().Resorts >= 1 {
				singleResortAt = batch
			}
		}
		if zResortAt < 0 {
			if err := check("zorder", ze); err != nil {
				return nil, err
			}
			if ze.Snapshot().ZOrderResorts >= 1 {
				zResortAt = batch
			}
		}
		if singleResortAt > 0 && zResortAt > 0 {
			break
		}
	}
	if zs := ze.Snapshot(); zs.ZOrderResorts < 1 {
		return nil, fmt.Errorf("zorder: no curve layout elected within %d warmup batches: %+v",
			ZOrderWarmupBatches, zs)
	}
	if ss := se.Snapshot(); ss.ZOrderResorts != 0 {
		return nil, fmt.Errorf("zorder: single-column engine elected a curve layout: %+v", ss)
	}

	// Steady-state timing: interleaved min-of-rounds, then one counted
	// run per variant for rows/blocks deltas and — on the curve layout —
	// the per-axis skip attribution (first firing predicate per block).
	type variant struct {
		name string
		e    exec.Evaluator
	}
	vars := []variant{{"plain", pe}, {"single", se}, {"zorder", ze}}
	best := make([]time.Duration, len(vars))
	for i := range best {
		best[i] = 1<<63 - 1
	}
	for round := 0; round < ScanStudyRounds; round++ {
		for vi := range vars {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := vars[vi].e.AggregateBatch(ctx, q, regions); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best[vi] {
				best[vi] = d
			}
		}
	}
	millis := make([]float64, len(vars))
	rows := make([]float64, len(vars))
	skipped := make([]float64, len(vars))
	axes := map[string]float64{}
	for vi := range vars {
		millis[vi] = float64(best[vi].Microseconds()) / 1000
		var zsBefore map[string]int64
		if vars[vi].name == "zorder" {
			zsBefore = ze.(*exec.Engine).ZoneSkips()
		}
		before := vars[vi].e.Snapshot()
		if err := check(vars[vi].name, vars[vi].e); err != nil {
			return nil, err
		}
		d := vars[vi].e.Snapshot().Sub(before)
		rows[vi] = float64(d.RowsScanned)
		skipped[vi] = float64(d.BlocksSkipped)
		if zsBefore != nil {
			for axis, n := range ze.(*exec.Engine).ZoneSkips() {
				axes[axis] = float64(n - zsBefore[axis])
			}
		}
	}
	ageSkips, incomeSkips := axes["users.age"], axes["users.income"]

	// Scheduler section: grow a mergeable tail on the curve-layout
	// table, then overlap batches so a sweep runs while a sibling batch
	// is still mid-flight and must defer the layout action
	// (DeferredResorts); the last batch out performs it. Free-running
	// goroutines won't reliably overlap sub-millisecond batches on a
	// small box, so each wave holds one wide batch in flight (spinning
	// on PendingBatches until it has bound) and completes a short batch
	// under it — that short batch's sweep sees the storm
	// deterministically. Appends change the answers, so this section
	// stops comparing to plain.
	zeng := ze.(*exec.Engine)
	stormRegions := make([]relq.Region, 0, len(regions)*32)
	for i := 0; i < 32; i++ {
		stormRegions = append(stormRegions, regions...)
	}
	deferredPerWave := make([]float64, 0, ZOrderStormWaves)
	for wave := 1; wave <= ZOrderStormWaves; wave++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := ze.Catalog().Table("users")
		if err != nil {
			return nil, err
		}
		if err := zorderAppendTail(t, 1100, int64(wave)); err != nil {
			return nil, err
		}
		var wg sync.WaitGroup
		var wideErr error
		var wideDone atomic.Bool
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wideDone.Store(true)
			_, wideErr = ze.AggregateBatch(ctx, q, stormRegions)
		}()
		// A finished wide batch also breaks the spin: on a small box the
		// whole batch can run inside one scheduling slot, and a wave that
		// missed its storm just retries rather than spinning forever.
		for zeng.PendingBatches() == 0 && !wideDone.Load() && ctx.Err() == nil {
			runtime.Gosched()
		}
		if _, err := ze.AggregateBatch(ctx, q, regions); err != nil {
			return nil, err
		}
		wg.Wait()
		if wideErr != nil {
			return nil, wideErr
		}
		deferredPerWave = append(deferredPerWave, float64(ze.Snapshot().DeferredResorts))
		if ze.Snapshot().DeferredResorts > 0 {
			break
		}
	}
	deferred := 0.0
	if len(deferredPerWave) > 0 {
		deferred = deferredPerWave[len(deferredPerWave)-1]
	}

	// Shard bit-identity: the same learning stack at 1/2/4 shards must
	// return bit-identical COUNT partials every batch — before, across
	// and after each shard's own independently elected re-sort.
	shardCounts := []float64{1, 2, 4}
	shardMillis := make([]float64, len(shardCounts))
	shardResorts := make([]float64, len(shardCounts))
	for si, scf := range shardCounts {
		shards := int(scf)
		cat, err := newCat()
		if err != nil {
			return nil, err
		}
		sv, err := newEngine(cat, Config{Obs: cfg.Obs, ZOrder: true, Shards: shards})
		if err != nil {
			return nil, err
		}
		for batch := 1; batch <= ZOrderWarmupBatches; batch++ {
			if err := check(fmt.Sprintf("shards=%d", shards), sv); err != nil {
				return nil, err
			}
			if sv.Snapshot().ZOrderResorts >= int64(shards) {
				break
			}
		}
		bestD := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			if err := check(fmt.Sprintf("shards=%d settled", shards), sv); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		shardMillis[si] = float64(bestD.Microseconds()) / 1000
		shardResorts[si] = float64(sv.Snapshot().Resorts)
	}

	// Divergence section: an age-sorted parent split into 2 range
	// shards. The high-age shard's inherited layout is excellent (the
	// workload's age hull excludes almost all of it), but the low-age
	// shard's is worthless (the hull admits nearly everything), so its
	// own sweep re-elects income while its sibling stays put — layouts
	// diverge per shard, and the win concentrates exactly in the shard
	// the uniform layout serves worst.
	divCat := func() (*data.Catalog, error) {
		cat, err := newCat()
		if err != nil {
			return nil, err
		}
		t, err := cat.Table("users")
		if err != nil {
			return nil, err
		}
		sorted, err := data.SortedBy(t, "age")
		if err != nil {
			return nil, err
		}
		cat.Replace(sorted)
		return cat, nil
	}
	uniformCat, err := divCat()
	if err != nil {
		return nil, err
	}
	uniform, err := newEngine(uniformCat, Config{Obs: cfg.Obs, Shards: 2})
	if err != nil {
		return nil, err
	}
	divergentCat, err := divCat()
	if err != nil {
		return nil, err
	}
	divergent, err := newEngine(divergentCat, Config{Obs: cfg.Obs, ZOrder: true, Shards: 2})
	if err != nil {
		return nil, err
	}
	if err := check("uniform", uniform); err != nil {
		return nil, err
	}
	for batch := 1; batch <= ZOrderWarmupBatches; batch++ {
		if err := check("divergent", divergent); err != nil {
			return nil, err
		}
		if divergent.Snapshot().Resorts >= 1 {
			break
		}
	}
	divMillis := make([]float64, 2)
	for vi, e := range []exec.Evaluator{uniform, divergent} {
		bestD := time.Duration(1<<63 - 1)
		for round := 0; round < ScanStudyRounds; round++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := e.AggregateBatch(ctx, q, regions); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		divMillis[vi] = float64(bestD.Microseconds()) / 1000
	}

	ratio := func(num, den float64) float64 {
		if den <= 0 {
			return 1
		}
		return num / den
	}
	speedup := ratio(millis[1], millis[2]) // single / zorder
	vsPlain := ratio(millis[0], millis[2]) // plain / zorder
	divGain := ratio(divMillis[0], divMillis[1])
	if cfg.Obs != nil {
		cfg.Obs.Gauge("acquire_zorder_speedup",
			"Single-column auto-clustered / Z-order auto-clustered steady-state wall-clock ratio of the two-axis batch (ZOrderStudy).").Set(speedup)
		cfg.Obs.Gauge("acquire_zorder_vs_plain",
			"Plain-layout / Z-order auto-clustered steady-state wall-clock ratio (ZOrderStudy).").Set(vsPlain)
		cfg.Obs.Gauge("acquire_zorder_age_blocks_skipped",
			"Blocks skipped per steady-state batch attributed to the age axis of the curve layout (ZOrderStudy).").Set(ageSkips)
		cfg.Obs.Gauge("acquire_zorder_income_blocks_skipped",
			"Blocks skipped per steady-state batch attributed to the income axis of the curve layout (ZOrderStudy).").Set(incomeSkips)
		cfg.Obs.Gauge("acquire_zorder_deferred_resorts",
			"Layout actions the sweep deferred while concurrent batches were in flight during the storm section (ZOrderStudy).").Set(deferred)
		cfg.Obs.Gauge("acquire_zorder_divergence_gain",
			"Uniform-layout / per-shard-divergent steady-state wall-clock ratio on the age-sorted sharded stack (ZOrderStudy).").Set(divGain)
	}

	x := []float64{1, 2, 3} // 1 = plain, 2 = single, 3 = zorder
	waveX := make([]float64, len(deferredPerWave))
	for i := range waveX {
		waveX[i] = float64(i + 1)
	}
	return []Figure{
		{ID: "zorder.batch", Title: fmt.Sprintf("Steady-state two-axis AggregateBatch wall-clock: plain vs single-column auto vs Z-order auto (min of rounds; single re-sorted at batch %d, curve at %d)", singleResortAt, zResortAt),
			XLabel: "layout (1=plain, 2=single, 3=zorder)", X: x, YLabel: "ms/batch", Series: []Series{
				{Name: "ms", Y: millis},
				{Name: "speedup_vs_single", Y: []float64{ratio(millis[1], millis[0]), 1, speedup}},
			}},
		{ID: "zorder.rows", Title: "Rows scanned and blocks zone-skipped per steady-state batch",
			XLabel: "layout (1=plain, 2=single, 3=zorder)", X: x, YLabel: "count", Series: []Series{
				{Name: "rows_scanned", Y: rows},
				{Name: "blocks_skipped", Y: skipped},
			}},
		{ID: "zorder.axes", Title: "Per-axis skip attribution on the curve layout (first firing predicate per skipped block)",
			XLabel: "axis (1=age, 2=income)", X: []float64{1, 2}, YLabel: "blocks skipped/batch", Series: []Series{
				{Name: "blocks_skipped", Y: []float64{ageSkips, incomeSkips}},
			}},
		{ID: "zorder.scheduler", Title: "Re-sort scheduling under batch storms: cumulative deferred layout actions per wave (short batch completing under a wide in-flight batch)",
			XLabel: "storm wave", X: waveX, YLabel: "deferred re-sorts", Series: []Series{
				{Name: "deferred", Y: deferredPerWave},
			}},
		{ID: "zorder.sharded", Title: "Sharded curve-layout stack: steady-state batch and per-shard re-sorts (partials bit-identical at every shard count)",
			XLabel: "shards", X: shardCounts, YLabel: "ms/batch", Series: []Series{
				{Name: "ms", Y: shardMillis},
				{Name: "resorts", Y: shardResorts},
			}},
		{ID: "zorder.divergence", Title: "Per-shard layout divergence on an age-sorted parent (2 range shards): uniform inherited layout vs independent per-shard elections",
			XLabel: "stack (1=uniform, 2=divergent)", X: []float64{1, 2}, YLabel: "ms/batch", Series: []Series{
				{Name: "ms", Y: divMillis},
				{Name: "divergent_resorts", Y: []float64{0, float64(divergent.Snapshot().Resorts)}},
			}},
	}, nil
}
