// Package harness regenerates every table and figure of the paper's
// evaluation section (§8): for each experiment it builds the calibrated
// workload, runs ACQUIRE and the §8.2 baselines on the same evaluation
// engine, and reports the same series the paper plots — execution time,
// relative aggregate error, and refinement score. Absolute numbers
// differ from the paper's 2009-era Java/Postgres testbed; the shapes
// (orderings, factors, crossovers) are the reproduction target (see
// EXPERIMENTS.md).
package harness

import (
	"context"
	"fmt"
	"math"
	"time"

	"strings"

	"acquire/internal/baseline"
	"acquire/internal/core"
	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/index"
	"acquire/internal/obs"
	"acquire/internal/relq"
	"acquire/internal/tpch"
	"acquire/internal/workload"
)

// Config scales the experiments. The zero value gets defaults suitable
// for `go test -bench`: 20K-row datasets finishing in minutes. The
// paper's headline scale is 1M rows (cmd/acqbench -rows 1000000).
type Config struct {
	// Rows is the dataset cardinality (partsupp rows for the TPCH
	// skeleton, users rows for the ad-campaign skeleton).
	Rows int
	// Seed fixes data generation.
	Seed int64
	// Zipf is the data skew Z (§8.4.4).
	Zipf float64
	// Delta is the aggregate error threshold δ (paper: 0.05).
	Delta float64
	// Gamma is the refinement threshold γ.
	Gamma float64
	// TQGenGridK / TQGenRounds bound the TQGen baseline's cost.
	TQGenGridK  int
	TQGenRounds int
	// GridAgg builds an aggregate-augmented grid over each workload
	// query's select dimensions, so eligible cell queries are answered
	// from stored per-cell partials instead of scans (-gridagg).
	GridAgg bool
	// CacheMB, when positive, attaches a cross-search partial-aggregate
	// cache of that many MiB to every engine the harness builds
	// (-cache): repeated and overlapping searches reuse each other's
	// region executions (see the "repeated" experiment).
	CacheMB int
	// Shards, when > 1, replaces the monolithic engine with a
	// ShardedEvaluator scatter-gathering over that many range
	// partitions of the fact table (-shards). Every experiment then
	// exercises the sharded path end to end; results stay equivalent by
	// the §2.6 merge rule.
	Shards int
	// Cluster, when set, re-sorts every generated table that has this
	// numeric column ascending by it before building engines (-cluster).
	// A clustered layout is what lets the vectorized scan path's
	// per-block zone maps prove blocks out of range and skip them; on
	// the generators' i.i.d. layouts every block spans the full value
	// domain and zone maps never fire.
	Cluster string
	// AutoCluster enables workload-adaptive clustering on every engine
	// the harness builds (-autocluster): instead of a user-designated
	// -cluster column, the engine learns the workload's dominant range
	// column from its own scans and re-sorts the table between batches,
	// after which zone maps engage exactly as under -cluster.
	AutoCluster bool
	// ZOrder admits two-column Z-order (space-filling-curve) layouts
	// into the auto-clustering election on every engine the harness
	// builds (-zorder): when two range columns both carry workload
	// weight, tables may be re-laid along their interleaved rank curve
	// so zone maps prune on both axes. Implies AutoCluster.
	ZOrder bool
	// Obs instruments every engine and search the harness builds
	// (metrics, phase spans, events); nil runs uninstrumented. Excluded
	// from results JSON — it is a live handle, not a parameter.
	Obs *obs.Observer `json:"-"`
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Rows == 0 {
		c.Rows = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Delta == 0 {
		c.Delta = 0.05
	}
	if c.Gamma == 0 {
		c.Gamma = 20
	}
	if c.TQGenGridK == 0 {
		c.TQGenGridK = 8
	}
	if c.TQGenRounds == 0 {
		c.TQGenRounds = 5
	}
	return c
}

// Measurement is one method's result at one x-axis position.
type Measurement struct {
	Method string
	// Millis is wall-clock execution time in milliseconds.
	Millis float64
	// Err is the relative aggregate error of the returned answer.
	Err float64
	// Refinement is the L1 refinement score of the returned answer.
	Refinement float64
	// Satisfied reports whether the method met the constraint.
	Satisfied bool
	// Executions counts evaluation-layer query executions.
	Executions int64
}

// Series is one plotted line: y-values per x position.
type Series struct {
	Name string
	Y    []float64
}

// Figure is one reproduced plot.
type Figure struct {
	ID     string // e.g. "8.a"
	Title  string
	XLabel string
	X      []float64
	YLabel string
	Series []Series
}

// usersEngine builds the single-table ad-campaign dataset.
func usersEngine(cfg Config) (exec.Evaluator, error) {
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: cfg.Rows, Zipf: cfg.Zipf, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return newEngine(cat, cfg)
}

// tpchEngine builds the three-table supply-chain dataset.
func tpchEngine(cfg Config) (exec.Evaluator, error) {
	cat, err := tpch.Generate(tpch.Config{Rows: cfg.Rows, Zipf: cfg.Zipf, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return newEngine(cat, cfg)
}

// clusterCatalog re-sorts every table carrying the named numeric
// column ascending by it, replacing each in place in the catalog.
func clusterCatalog(cat *data.Catalog, column string) error {
	found := false
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			return err
		}
		if t.Schema().Ordinal(column) < 0 {
			continue
		}
		sorted, err := data.SortedBy(t, column)
		if err != nil {
			return err
		}
		cat.Replace(sorted)
		found = true
	}
	if !found {
		return fmt.Errorf("harness: no table has cluster column %q", column)
	}
	return nil
}

// newEngine builds the evaluation layer for a catalog: a monolithic
// Engine, or — with cfg.Shards > 1 — a ShardedEvaluator over range
// partitions of the largest table (users / partsupp, the fact table of
// each skeleton).
func newEngine(cat *data.Catalog, cfg Config) (exec.Evaluator, error) {
	if cfg.Cluster != "" {
		if err := clusterCatalog(cat, cfg.Cluster); err != nil {
			return nil, err
		}
	}
	var e exec.Evaluator
	if cfg.Shards > 1 {
		sv, err := exec.NewSharded(cat, cfg.Shards)
		if err != nil {
			return nil, err
		}
		e = sv
	} else {
		e = exec.New(cat)
	}
	e.SetObserver(cfg.Obs)
	if cfg.CacheMB > 0 {
		e.EnableRegionCache(int64(cfg.CacheMB) << 20)
	}
	if cfg.AutoCluster || cfg.ZOrder {
		e.SetAutoCluster(true)
	}
	if cfg.ZOrder {
		e.SetZOrder(true)
	}
	return e, nil
}

// RunACQUIRE measures one ACQUIRE execution. The context cancels the
// search mid-flight (every runner threads it down to the evaluation
// layer, so acqbench's signal handling interrupts real work).
func RunACQUIRE(ctx context.Context, e exec.Evaluator, q *relq.Query, opts core.Options) (Measurement, error) {
	clk := opts.Observer.Clock() // Real for a nil observer
	before := e.Snapshot()
	start := clk.Now()
	res, err := core.RunContext(ctx, e, q, opts)
	elapsed := clk.Now().Sub(start)
	if err != nil {
		return Measurement{}, err
	}
	after := e.Snapshot()
	m := Measurement{
		Method:     "ACQUIRE",
		Millis:     float64(elapsed.Microseconds()) / 1000,
		Satisfied:  res.Satisfied,
		Executions: after.Queries - before.Queries,
	}
	pick := res.Best
	if pick == nil {
		pick = res.Closest
	}
	if pick != nil {
		m.Err = pick.Err
		m.Refinement = l1(pick.Scores)
	} else {
		m.Err = math.Inf(1)
	}
	return m, nil
}

// RunTopK measures the Top-k baseline.
func RunTopK(ctx context.Context, e exec.Evaluator, q *relq.Query) (Measurement, error) {
	clk := e.Observer().Clock()
	start := clk.Now()
	out, err := baseline.TopKContext(ctx, e, q)
	elapsed := clk.Now().Sub(start)
	if err != nil {
		return Measurement{}, err
	}
	return fromOutcome(out, elapsed), nil
}

// RunBinSearch measures the BinSearch baseline.
func RunBinSearch(ctx context.Context, e exec.Evaluator, q *relq.Query, delta float64) (Measurement, error) {
	clk := e.Observer().Clock()
	start := clk.Now()
	out, err := baseline.BinSearchContext(ctx, e, q, baseline.BinSearchOptions{Delta: delta})
	elapsed := clk.Now().Sub(start)
	if err != nil {
		return Measurement{}, err
	}
	return fromOutcome(out, elapsed), nil
}

// RunTQGen measures the TQGen baseline.
func RunTQGen(ctx context.Context, e exec.Evaluator, q *relq.Query, cfg Config) (Measurement, error) {
	clk := e.Observer().Clock()
	start := clk.Now()
	out, err := baseline.TQGenContext(ctx, e, q, baseline.TQGenOptions{
		Delta: cfg.Delta, GridK: cfg.TQGenGridK, Rounds: cfg.TQGenRounds,
	})
	elapsed := clk.Now().Sub(start)
	if err != nil {
		return Measurement{}, err
	}
	return fromOutcome(out, elapsed), nil
}

func fromOutcome(out *baseline.Outcome, elapsed time.Duration) Measurement {
	return Measurement{
		Method:     out.Method,
		Millis:     float64(elapsed.Microseconds()) / 1000,
		Err:        out.Err,
		Refinement: out.QScore,
		Satisfied:  out.Satisfied,
		Executions: out.Executions,
	}
}

func l1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// acquireOpts builds the standard ACQUIRE options for a config.
func acquireOpts(cfg Config) core.Options {
	return core.Options{Gamma: cfg.Gamma, Delta: cfg.Delta, Observer: cfg.Obs}
}

// ensureGridAgg builds (idempotently) an aggregate-augmented grid over
// a single-table query's select-dimension columns, materializing the
// constraint's aggregate column when it lives on the same table. Joins
// and non-select dimensions leave the engine untouched — the kernel
// would never engage for them.
func ensureGridAgg(e exec.Evaluator, q *relq.Query) error {
	if len(q.Tables) != 1 {
		return nil
	}
	var cols []string
	seen := make(map[string]bool)
	for i := range q.Dims {
		d := &q.Dims[i]
		switch d.Kind {
		case relq.SelectLE, relq.SelectGE, relq.SelectEQ:
		default:
			return nil
		}
		key := strings.ToLower(d.Col.Column)
		if !seen[key] {
			seen[key] = true
			cols = append(cols, d.Col.Column)
		}
	}
	if len(cols) == 0 {
		return nil
	}
	var aggCols []string
	if a := q.Constraint.Attr; a.Column != "" && strings.EqualFold(a.Table, q.Tables[0]) {
		aggCols = []string{a.Column}
	}
	t, err := e.Catalog().Table(q.Tables[0])
	if err != nil {
		return err
	}
	return e.BuildGridAggIndex(q.Tables[0], cols, aggCols, index.BinsForRows(len(cols), t.NumRows()))
}

// compareAll runs all four methods on a freshly calibrated Users query.
func compareAll(ctx context.Context, e exec.Evaluator, cfg Config, dims int, ratio float64) (map[string]Measurement, error) {
	out := make(map[string]Measurement, 4)

	build := func() (*relq.Query, error) {
		q, err := workload.BuildCalibrated(e, workload.Spec{
			Kind: workload.Users, Dims: dims, Agg: relq.AggCount, Ratio: ratio,
		})
		if err != nil {
			return nil, err
		}
		if cfg.GridAgg {
			if err := ensureGridAgg(e, q); err != nil {
				return nil, err
			}
		}
		return q, nil
	}

	q, err := build()
	if err != nil {
		return nil, err
	}
	m, err := RunACQUIRE(ctx, e, q, acquireOpts(cfg))
	if err != nil {
		return nil, err
	}
	out["ACQUIRE"] = m

	if q, err = build(); err != nil {
		return nil, err
	}
	if m, err = RunTopK(ctx, e, q); err != nil {
		return nil, err
	}
	out["Top-k"] = m

	if q, err = build(); err != nil {
		return nil, err
	}
	if m, err = RunTQGen(ctx, e, q, cfg); err != nil {
		return nil, err
	}
	out["TQGen"] = m

	if q, err = build(); err != nil {
		return nil, err
	}
	if m, err = RunBinSearch(ctx, e, q, cfg.Delta); err != nil {
		return nil, err
	}
	out["BinSearch"] = m
	return out, nil
}

// seriesFrom assembles per-method series over measurements[x][method].
func seriesFrom(methods []string, rows []map[string]Measurement, pick func(Measurement) float64) []Series {
	out := make([]Series, 0, len(methods))
	for _, name := range methods {
		s := Series{Name: name, Y: make([]float64, len(rows))}
		for i, row := range rows {
			m, ok := row[name]
			if !ok {
				s.Y[i] = math.NaN()
				continue
			}
			s.Y[i] = pick(m)
		}
		out = append(out, s)
	}
	return out
}

// ErrCheck validates a figure's invariants and returns a descriptive
// error when a paper-shape expectation is violated; used by tests.
func ErrCheck(cond bool, format string, args ...any) error {
	if cond {
		return nil
	}
	return fmt.Errorf(format, args...)
}
