package harness

import (
	"context"
	"math"

	"acquire/internal/baseline"
	"acquire/internal/relq"
	"acquire/internal/workload"
)

// OrderSensitivityStudy reproduces §8.4.1's BinSearch instability
// claim directly: "BinSearch is very sensitive to the order in which
// predicates are refined; even a single change to the order can change
// the error by a factor of 100. To illustrate, one ordering of
// predicate refinement in BinSearch produces a refinement error of
// 0.19 or 20% whereas another ordering produces an error of 0.002 or
// 0.2%." Every permutation of the 3-predicate workload is swept at
// each ratio; the figure reports the best- and worst-order errors plus
// ACQUIRE's (order-free) error for reference.
func OrderSensitivityStudy(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := usersEngine(cfg)
	if err != nil {
		return nil, err
	}
	orders := permutations(3)

	best := Series{Name: "BinSearch best order", Y: make([]float64, len(Ratios))}
	worst := Series{Name: "BinSearch worst order", Y: make([]float64, len(Ratios))}
	spread := Series{Name: "worst/best", Y: make([]float64, len(Ratios))}
	acq := Series{Name: "ACQUIRE", Y: make([]float64, len(Ratios))}

	for i, r := range Ratios {
		q, err := workload.BuildCalibrated(e, workload.Spec{
			Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: r,
		})
		if err != nil {
			return nil, err
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, order := range orders {
			out, err := baseline.BinSearchContext(ctx, e, q, baseline.BinSearchOptions{
				Delta: cfg.Delta, Order: order,
			})
			if err != nil {
				return nil, err
			}
			if out.Err < lo {
				lo = out.Err
			}
			if out.Err > hi {
				hi = out.Err
			}
		}
		best.Y[i], worst.Y[i] = lo, hi
		if lo > 0 {
			spread.Y[i] = hi / lo
		} else if hi > 0 {
			spread.Y[i] = math.Inf(1)
		} else {
			spread.Y[i] = 1
		}

		m, err := RunACQUIRE(ctx, e, q, acquireOpts(cfg))
		if err != nil {
			return nil, err
		}
		acq.Y[i] = m.Err
	}
	return []Figure{{
		ID:     "order.err",
		Title:  "BinSearch predicate-order sensitivity (§8.4.1)",
		XLabel: "aggregate ratio", X: Ratios, YLabel: "relative aggregate error",
		Series: []Series{best, worst, spread, acq},
	}}, nil
}

// permutations enumerates all orderings of 0..n-1.
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}
