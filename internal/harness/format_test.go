package harness

import (
	"strings"
	"testing"

	"acquire/internal/obs"
)

// TestLatencySummary pins the quantile table: one sorted row per
// non-empty histogram series, milliseconds, empty registries render
// nothing.
func TestLatencySummary(t *testing.T) {
	if got := LatencySummary(nil); got != "" {
		t.Errorf("nil registry rendered %q", got)
	}
	reg := obs.NewRegistry()
	if got := LatencySummary(reg); got != "" {
		t.Errorf("empty registry rendered %q", got)
	}
	reg.Histogram(`acquire_phase_duration_seconds{phase="idle"}`, "", nil) // stays empty
	search := reg.Histogram(`acquire_phase_duration_seconds{phase="search"}`, "", nil)
	fold := reg.Histogram(`acquire_phase_duration_seconds{phase="fold"}`, "", nil)
	for i := 0; i < 10; i++ {
		search.Observe(0.02)
		fold.Observe(0.002)
	}
	out := LatencySummary(reg)
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p99") {
		t.Fatalf("missing quantile headers:\n%s", out)
	}
	if strings.Contains(out, "idle") {
		t.Errorf("empty series rendered:\n%s", out)
	}
	foldAt := strings.Index(out, `phase="fold"`)
	searchAt := strings.Index(out, `phase="search"`)
	if foldAt < 0 || searchAt < 0 || foldAt > searchAt {
		t.Errorf("rows missing or unsorted:\n%s", out)
	}
	// 20ms observations in seconds-bucketed histograms render as
	// interpolated milliseconds — the search row must exceed the fold row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, two rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}
