package harness

import (
	"context"
	"fmt"
	"time"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/relq"
	"acquire/internal/tpch"
	"acquire/internal/workload"
)

// ScanStudyRounds is how many interleaved timing rounds each scan path
// gets per workload; the reported figure is the per-path minimum, the
// standard low-interference estimator.
var ScanStudyRounds = 10

// ScanPathStudy measures the vectorized block-scan path against the
// legacy row-at-a-time path on two workloads, after verifying both
// produce identical partials:
//
//   - "clustered": the Figure 8 users workload with the fact table
//     re-clustered by age (cfg.Cluster, default "age"), so per-block
//     zone maps can prove blocks out of range and skip them without
//     touching rows. The rows-touched figure records the reduction.
//   - "join": the TPCH supplier ⋈ partsupp ⋈ part SUM workload on the
//     generators' unclustered layout, where the win comes from the
//     scan-level semi-join pushdown (partsupp pre-filtered by the
//     surviving supplier keys) and pre-sized join hash tables.
//
// Both engines share one catalog per workload; the legacy engine is the
// same Engine with SetLegacyScan(true). When cfg.Obs is set, the study
// publishes acquire_scan_join_speedup and acquire_scan_clustered_speedup
// gauges so CI can assert the vectorized path actually pays for itself.
func ScanPathStudy(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	cluster := cfg.Cluster
	if cluster == "" {
		cluster = "age"
	}

	type pathRun struct {
		millis        float64
		rows          int64
		blocksScanned int64
		blocksSkipped int64
	}
	// measure verifies vectorized == legacy on the batch, then times
	// both paths interleaved and reports per-path stats deltas.
	measure := func(e exec.Evaluator, q *relq.Query, regions []relq.Region) (vec, leg pathRun, err error) {
		run := func(legacy bool) (pathRun, []agg.Partial, error) {
			e.SetLegacyScan(legacy)
			before := e.Snapshot()
			parts, err := e.AggregateBatch(ctx, q, regions)
			if err != nil {
				return pathRun{}, nil, err
			}
			d := e.Snapshot()
			return pathRun{
				rows:          d.RowsScanned - before.RowsScanned,
				blocksScanned: d.BlocksScanned - before.BlocksScanned,
				blocksSkipped: d.BlocksSkipped - before.BlocksSkipped,
			}, parts, nil
		}
		vec, want, err := run(false)
		if err != nil {
			return vec, leg, err
		}
		leg, got, err := run(true)
		if err != nil {
			return vec, leg, err
		}
		for i := range got {
			if got[i].Count != want[i].Count || !agg.ApproxEqual(got[i], want[i], 0) {
				return vec, leg, fmt.Errorf("scanstudy: region %d diverged: legacy %+v vs vectorized %+v",
					i, got[i], want[i])
			}
		}
		best := [2]time.Duration{1<<63 - 1, 1<<63 - 1}
		for round := 0; round < ScanStudyRounds; round++ {
			for pi, legacy := range [2]bool{false, true} {
				if err := ctx.Err(); err != nil {
					return vec, leg, err
				}
				e.SetLegacyScan(legacy)
				start := time.Now()
				if _, err := e.AggregateBatch(ctx, q, regions); err != nil {
					return vec, leg, err
				}
				if d := time.Since(start); d < best[pi] {
					best[pi] = d
				}
			}
		}
		e.SetLegacyScan(false)
		vec.millis = float64(best[0].Microseconds()) / 1000
		leg.millis = float64(best[1].Microseconds()) / 1000
		return vec, leg, nil
	}

	// Workload 1: clustered users, prefix-region ladder reaching broad
	// regions so the planner picks full scans and zone maps engage.
	ucat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: cfg.Rows, Zipf: cfg.Zipf, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	ue, err := newEngine(ucat, Config{Obs: cfg.Obs, CacheMB: cfg.CacheMB, Cluster: cluster})
	if err != nil {
		return nil, err
	}
	uq, err := workload.BuildCalibrated(ue, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		return nil, err
	}
	var uregions []relq.Region
	for i := 0; i < 8; i++ {
		h := 10 + float64(i)*8
		uregions = append(uregions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: 70 - h/2}, {Lo: -1, Hi: h}})
	}
	uvec, uleg, err := measure(ue, uq, uregions)
	if err != nil {
		return nil, err
	}

	// Workload 2: the three-table SUM join. The supplier s_acctbal
	// dimension keeps the build side selective, which is what the
	// partsupp-side semi-join pushdown converts into skipped work.
	tcat, err := tpch.Generate(tpch.Config{Rows: cfg.Rows, Zipf: cfg.Zipf, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	te, err := newEngine(tcat, Config{Obs: cfg.Obs, CacheMB: cfg.CacheMB})
	if err != nil {
		return nil, err
	}
	tq, err := workload.BuildCalibrated(te, workload.Spec{
		Kind: workload.TPCH, Dims: 2, Agg: relq.AggSum, Ratio: 0.3,
	})
	if err != nil {
		return nil, err
	}
	var tregions []relq.Region
	for i := 0; i < 8; i++ {
		h := 2 + float64(i)*3
		tregions = append(tregions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: h / 2}})
	}
	tvec, tleg, err := measure(te, tq, tregions)
	if err != nil {
		return nil, err
	}

	speedup := func(leg, vec pathRun) float64 {
		if vec.millis <= 0 {
			return 1
		}
		return leg.millis / vec.millis
	}
	clusteredSpeedup := speedup(uleg, uvec)
	joinSpeedup := speedup(tleg, tvec)
	if cfg.Obs != nil {
		cfg.Obs.Gauge("acquire_scan_clustered_speedup",
			"Legacy/vectorized wall-clock ratio of the clustered fig. 8 batch (ScanPathStudy).").Set(clusteredSpeedup)
		cfg.Obs.Gauge("acquire_scan_join_speedup",
			"Legacy/vectorized wall-clock ratio of the TPCH join batch (ScanPathStudy).").Set(joinSpeedup)
	}

	x := []float64{1, 2} // 1 = clustered users, 2 = tpch join
	return []Figure{
		{ID: "scan.batch", Title: "AggregateBatch wall-clock: legacy vs vectorized scan path (min of rounds)",
			XLabel: "workload (1=clustered fig. 8, 2=tpch join)", X: x, YLabel: "ms/batch", Series: []Series{
				{Name: "legacy", Y: []float64{uleg.millis, tleg.millis}},
				{Name: "vectorized", Y: []float64{uvec.millis, tvec.millis}},
				{Name: "speedup", Y: []float64{clusteredSpeedup, joinSpeedup}},
			}},
		{ID: "scan.rows", Title: "Rows touched per verification batch: legacy vs vectorized (zone-skipped blocks excluded)",
			XLabel: "workload (1=clustered fig. 8, 2=tpch join)", X: x, YLabel: "rows", Series: []Series{
				{Name: "legacy", Y: []float64{float64(uleg.rows), float64(tleg.rows)}},
				{Name: "vectorized", Y: []float64{float64(uvec.rows), float64(tvec.rows)}},
			}},
		{ID: "scan.blocks", Title: "Vectorized block accounting per verification batch",
			XLabel: "workload (1=clustered fig. 8, 2=tpch join)", X: x, YLabel: "blocks", Series: []Series{
				{Name: "scanned", Y: []float64{float64(uvec.blocksScanned), float64(tvec.blocksScanned)}},
				{Name: "skipped", Y: []float64{float64(uvec.blocksSkipped), float64(tvec.blocksSkipped)}},
			}},
	}, nil
}
