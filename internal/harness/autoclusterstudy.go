package harness

import (
	"context"
	"fmt"
	"time"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/index"
	"acquire/internal/relq"
	"acquire/internal/tpch"
	"acquire/internal/workload"
)

// AutoClusterWarmupBatches bounds how many warmup batches the auto-
// clustered engine gets to learn its clustering column before the study
// gives up waiting for a re-sort.
var AutoClusterWarmupBatches = 40

// AutoClusterStudy measures workload-adaptive clustering on the
// Figure 8 users workload: three engines over identical data run the
// same prefix-region batch —
//
//   - "plain": generator layout, no clustering of any kind (the
//     baseline whose zone maps never fire);
//   - "auto": no -cluster column given; the engine learns the dominant
//     range column from its own scans and re-sorts between batches
//     (SetAutoCluster). The study drives warmup batches until the first
//     re-sort lands, then measures steady state;
//   - "explicit": the PR 8 configuration, cfg.Cluster (default "age")
//     sorted up front — the target the learned layout must match.
//
// All three must produce identical partials (COUNT is integer-exact, so
// equality is bit-level). Timing is interleaved min-of-rounds. A final
// section rebuilds the auto engine's steady-state layout with an
// aggregate grid and compares boundary-cell row gathering between the
// legacy walk (every posting row) and the zone-consulting vectorized
// walk, which skips whole posting runs.
//
// With cfg.Obs attached the study publishes the CI-guarded gauges:
// acquire_autocluster_speedup (plain/auto steady-state ratio),
// acquire_autocluster_vs_explicit (auto/explicit ratio — 1.0 means the
// learned layout matches the hand-picked one), and
// acquire_autocluster_blocks_skipped (zone-skipped blocks per steady
// auto batch — the engagement proof that needs no -cluster flag).
func AutoClusterStudy(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	cluster := cfg.Cluster
	if cluster == "" {
		cluster = "age"
	}

	// Three independent catalogs of identical data: each variant owns
	// its layout (the auto engine rewrites its own catalog in place).
	newCat := func() (*data.Catalog, error) {
		return tpch.GenerateUsers(tpch.UsersConfig{Rows: cfg.Rows, Zipf: cfg.Zipf, Seed: cfg.Seed})
	}
	pcat, err := newCat()
	if err != nil {
		return nil, err
	}
	acat, err := newCat()
	if err != nil {
		return nil, err
	}
	ccat, err := newCat()
	if err != nil {
		return nil, err
	}

	// Region caches stay off: the study repeats one batch, and a cache
	// would collapse every repeat into hits — no scans, no statistics,
	// no timing signal.
	pe, err := newEngine(pcat, Config{Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	ae, err := newEngine(acat, Config{Obs: cfg.Obs, AutoCluster: true})
	if err != nil {
		return nil, err
	}
	ce, err := newEngine(ccat, Config{Obs: cfg.Obs, Cluster: cluster})
	if err != nil {
		return nil, err
	}

	q, err := workload.BuildCalibrated(pe, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		return nil, err
	}
	var regions []relq.Region
	for i := 0; i < 8; i++ {
		h := 10 + float64(i)*8
		regions = append(regions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: 70 - h/2}, {Lo: -1, Hi: h}})
	}

	// Correctness gate: identical partials from all three layouts.
	want, err := pe.AggregateBatch(ctx, q, regions)
	if err != nil {
		return nil, err
	}
	check := func(name string, e exec.Evaluator) error {
		got, err := e.AggregateBatch(ctx, q, regions)
		if err != nil {
			return err
		}
		for i := range got {
			if got[i].Count != want[i].Count || !agg.ApproxEqual(got[i], want[i], 0) {
				return fmt.Errorf("autocluster: %s region %d diverged: %+v vs plain %+v",
					name, i, got[i], want[i])
			}
		}
		return nil
	}
	if err := check("explicit", ce); err != nil {
		return nil, err
	}

	// Warmup: drive batches through the auto engine until the first
	// re-sort lands (each also re-checks the partials — a re-sort must
	// never change an answer). warmRows records per-batch scan cost so
	// the convergence figure shows the drop.
	var warmRows []float64
	firstResort := -1
	for batch := 1; batch <= AutoClusterWarmupBatches; batch++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := ae.Snapshot()
		if err := check("auto", ae); err != nil {
			return nil, err
		}
		d := ae.Snapshot().Sub(before)
		warmRows = append(warmRows, float64(d.RowsScanned))
		if firstResort < 0 && ae.Snapshot().Resorts >= 1 {
			firstResort = batch
		}
		if firstResort > 0 && batch >= firstResort+2 {
			break // steady state reached; a couple of settled batches recorded
		}
	}

	// Steady-state timing: interleaved min-of-rounds over the three
	// variants, plus per-batch stats deltas from one extra counted run.
	type variant struct {
		name string
		e    exec.Evaluator
	}
	vars := []variant{{"plain", pe}, {"auto", ae}, {"explicit", ce}}
	best := make([]time.Duration, len(vars))
	for i := range best {
		best[i] = 1<<63 - 1
	}
	for round := 0; round < ScanStudyRounds; round++ {
		for vi := range vars {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := vars[vi].e.AggregateBatch(ctx, q, regions); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best[vi] {
				best[vi] = d
			}
		}
	}
	millis := make([]float64, len(vars))
	rows := make([]float64, len(vars))
	skipped := make([]float64, len(vars))
	for vi := range vars {
		millis[vi] = float64(best[vi].Microseconds()) / 1000
		before := vars[vi].e.Snapshot()
		if _, err := vars[vi].e.AggregateBatch(ctx, q, regions); err != nil {
			return nil, err
		}
		d := vars[vi].e.Snapshot().Sub(before)
		rows[vi] = float64(d.RowsScanned)
		skipped[vi] = float64(d.BlocksSkipped)
	}

	// Boundary-cell section: the auto engine's steady-state layout gets
	// an aggregate grid over the query's select dimensions; the same
	// batch is run on the vectorized walk (posting runs consulted
	// against zone maps) and the legacy walk (every posting row), and
	// boundary row gathering is compared. Partials must stay identical.
	var dimCols []string
	for i := range q.Dims {
		if q.Dims[i].Kind != relq.JoinBand {
			dimCols = append(dimCols, q.Dims[i].Col.Column)
		}
	}
	t, err := ae.Catalog().Table(q.Tables[0])
	if err != nil {
		return nil, err
	}
	bins := index.BinsForRows(len(dimCols), t.NumRows())
	if err := ae.BuildGridAggIndex(q.Tables[0], dimCols, nil, bins); err != nil {
		return nil, err
	}
	boundary := func(legacy bool) (float64, float64, error) {
		ae.SetLegacyScan(legacy)
		defer ae.SetLegacyScan(false)
		before := ae.Snapshot()
		if err := check("auto+gridagg", ae); err != nil {
			return 0, 0, err
		}
		d := ae.Snapshot().Sub(before)
		return float64(d.BoundaryRows), float64(d.BlocksSkipped), nil
	}
	vecBoundary, vecRunsSkipped, err := boundary(false)
	if err != nil {
		return nil, err
	}
	legBoundary, _, err := boundary(true)
	if err != nil {
		return nil, err
	}
	ae.DropGridIndex(q.Tables[0])

	ratio := func(num, den float64) float64 {
		if den <= 0 {
			return 1
		}
		return num / den
	}
	speedup := ratio(millis[0], millis[1])    // plain / auto
	vsExplicit := ratio(millis[1], millis[2]) // auto / explicit
	if cfg.Obs != nil {
		cfg.Obs.Gauge("acquire_autocluster_speedup",
			"Plain-layout / auto-clustered steady-state wall-clock ratio of the fig. 8 batch (AutoClusterStudy).").Set(speedup)
		cfg.Obs.Gauge("acquire_autocluster_vs_explicit",
			"Auto-clustered / explicitly-clustered steady-state wall-clock ratio — 1.0 means the learned layout matches -cluster (AutoClusterStudy).").Set(vsExplicit)
		cfg.Obs.Gauge("acquire_autocluster_blocks_skipped",
			"Zone-skipped blocks per steady-state batch on the auto-clustered engine — engagement proof without any -cluster flag (AutoClusterStudy).").Set(skipped[1])
		cfg.Obs.Gauge("acquire_autocluster_boundary_rows_saved",
			"Boundary posting rows the zone-consulting walk avoided gathering vs the legacy walk on one gridagg batch (AutoClusterStudy).").Set(legBoundary - vecBoundary)
	}

	x := []float64{1, 2, 3} // 1 = plain, 2 = auto, 3 = explicit
	warmX := make([]float64, len(warmRows))
	for i := range warmX {
		warmX[i] = float64(i + 1)
	}
	return []Figure{
		{ID: "autocluster.batch", Title: "Steady-state AggregateBatch wall-clock: plain vs auto-clustered vs explicit -cluster (min of rounds)",
			XLabel: "layout (1=plain, 2=auto, 3=explicit)", X: x, YLabel: "ms/batch", Series: []Series{
				{Name: "ms", Y: millis},
				{Name: "speedup_vs_plain", Y: []float64{1, speedup, ratio(millis[0], millis[2])}},
			}},
		{ID: "autocluster.rows", Title: "Rows scanned and blocks zone-skipped per steady-state batch",
			XLabel: "layout (1=plain, 2=auto, 3=explicit)", X: x, YLabel: "count", Series: []Series{
				{Name: "rows_scanned", Y: rows},
				{Name: "blocks_skipped", Y: skipped},
			}},
		{ID: "autocluster.converge", Title: fmt.Sprintf("Auto-clustering convergence: rows scanned per warmup batch (first re-sort after batch %d)", firstResort),
			XLabel: "warmup batch", X: warmX, YLabel: "rows scanned", Series: []Series{
				{Name: "auto", Y: warmRows},
			}},
		{ID: "autocluster.boundary", Title: "Boundary-cell posting rows gathered per gridagg batch: legacy walk vs zone-consulting walk",
			XLabel: "walk (1=legacy, 2=vectorized)", X: []float64{1, 2}, YLabel: "boundary rows", Series: []Series{
				{Name: "boundary_rows", Y: []float64{legBoundary, vecBoundary}},
				{Name: "posting_runs_skipped", Y: []float64{0, vecRunsSkipped}},
			}},
	}, nil
}
