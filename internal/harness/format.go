package harness

import (
	"fmt"
	"sort"
	"strings"

	"acquire/internal/obs"
)

// FormatFigure renders a figure as an aligned text table, one row per
// x position, one column per series — the textual equivalent of the
// paper's plot.
func FormatFigure(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "(y = %s)\n", f.YLabel)

	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, len(f.X))
	for i, x := range f.X {
		row := make([]string, 0, len(headers))
		row = append(row, formatVal(x))
		for _, s := range f.Series {
			row = append(row, formatVal(s.Y[i]))
		}
		rows[i] = row
	}

	widths := make([]int, len(headers))
	for j, h := range headers {
		widths[j] = len(h)
	}
	for _, row := range rows {
		for j, cell := range row {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[j], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for j := range sep {
		sep[j] = strings.Repeat("-", widths[j])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func formatVal(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v == float64(int64(v)) && v < 1e7 && v > -1e7:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// LatencySummary renders every duration histogram of the registry —
// the per-phase and per-query spans an instrumented run accumulates —
// as a quantile table (count, p50, p95, p99, in milliseconds, by
// bucket interpolation). Returns "" when the registry is nil or holds
// no observations, so callers can print it unconditionally.
func LatencySummary(reg *obs.Registry) string {
	if reg == nil {
		return ""
	}
	type row struct {
		name             string
		count            int64
		p50, p95, p99 float64
	}
	var rows []row
	reg.VisitHistograms(func(name string, h *obs.Histogram) {
		if h.Count() == 0 {
			return
		}
		// Only duration histograms belong in a latency table; unitless
		// ones (e.g. the selection-density histogram) would be garbled
		// by the seconds-to-ms scaling.
		if !strings.Contains(name, "_seconds") {
			return
		}
		rows = append(rows, row{
			name: name, count: h.Count(),
			p50: h.Quantile(0.50) * 1e3,
			p95: h.Quantile(0.95) * 1e3,
			p99: h.Quantile(0.99) * 1e3,
		})
	})
	if len(rows) == 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	w := len("series")
	for _, r := range rows {
		if len(r.name) > w {
			w = len(r.name)
		}
	}
	var b strings.Builder
	b.WriteString("Latency quantiles (bucket-interpolated, ms)\n")
	fmt.Fprintf(&b, "%-*s  %8s  %9s  %9s  %9s\n", w, "series", "count", "p50", "p95", "p99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %8d  %9.3f  %9.3f  %9.3f\n", w, r.name, r.count, r.p50, r.p95, r.p99)
	}
	return b.String()
}

// Table1 renders the related-work capability matrix of the paper's
// Table 1, restricted to the methods implemented in this repository.
// The rows are generated from the same capability flags the code
// enforces (TopK rejects SUM and joins; BinSearch/TQGen only target
// cardinality; ACQUIRE handles OSP aggregates, proximity and query
// output).
func Table1() string {
	type row struct {
		method, aggregates        string
		proximity, card, queryOut bool
	}
	rows := []row{
		{"Top-k (tuple-oriented)", "COUNT", true, true, false},
		{"BinSearch (query-oriented)", "COUNT", false, true, true},
		{"TQGen (query-oriented)", "COUNT", false, true, true},
		{"ACQUIRE", "COUNT, SUM, MIN, MAX, AVG, UDA", true, true, true},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return ""
	}
	var b strings.Builder
	b.WriteString("Table 1: Summary of implemented techniques\n")
	fmt.Fprintf(&b, "%-28s  %-32s  %-9s  %-5s  %-5s\n", "Technique", "Aggregates", "Proximity", "Card.", "Query")
	fmt.Fprintf(&b, "%-28s  %-32s  %-9s  %-5s  %-5s\n",
		strings.Repeat("-", 28), strings.Repeat("-", 32), strings.Repeat("-", 9), strings.Repeat("-", 5), strings.Repeat("-", 5))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s  %-32s  %-9s  %-5s  %-5s\n",
			r.method, r.aggregates, mark(r.proximity), mark(r.card), mark(r.queryOut))
	}
	return b.String()
}
