package harness

import (
	"context"
	"strings"
	"testing"
)

func TestSummaryClaimsHold(t *testing.T) {
	// §8.5(3) (Top-k slower than ACQUIRE) is a scale-dependent claim —
	// the paper itself notes Top-k "can be efficient at small-sized
	// datasets" — so the check runs at a scale where sorting matters.
	cfg := tinyCfg()
	cfg.Rows = 30000
	claims, figs, err := Summary(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Summary: %v", err)
	}
	if len(figs) != 3 {
		t.Fatalf("figures = %d", len(figs))
	}
	if len(claims) != 5 {
		t.Fatalf("claims = %d, want 5", len(claims))
	}
	// §8.5(1a)/(1b)/(3) compare wall-clock across methods; the race
	// detector slows each method by a different factor, so those ratios
	// stop measuring the algorithms. The deterministic claims (error
	// bound, refinement quality) must hold under any instrumentation.
	timing := map[string]bool{"§8.5(1a)": true, "§8.5(1b)": true, "§8.5(3)": true}
	deviated := false
	for _, c := range claims {
		if !c.Holds {
			if raceEnabled && timing[c.ID] {
				t.Logf("claim %s deviates under -race (timing-based, not asserted): %s (%s)", c.ID, c.Paper, c.Measured)
				continue
			}
			deviated = true
			t.Errorf("claim %s deviates: %s (%s)", c.ID, c.Paper, c.Measured)
		}
	}
	s := FormatClaims(claims)
	if !strings.Contains(s, "HOLDS") || !strings.Contains(s, "§8.5") {
		t.Errorf("FormatClaims:\n%s", s)
	}
	if deviated {
		t.Errorf("deviation detail:\n%s", s)
	}
}

func TestOrderSensitivityStudy(t *testing.T) {
	figs, err := OrderSensitivityStudy(context.Background(), tinyCfg())
	if err != nil {
		t.Fatalf("OrderSensitivityStudy: %v", err)
	}
	f := figs[0]
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	var best, worst []float64
	for _, s := range f.Series {
		switch s.Name {
		case "BinSearch best order":
			best = s.Y
		case "BinSearch worst order":
			worst = s.Y
		}
	}
	for i := range best {
		if worst[i] < best[i] {
			t.Errorf("ratio %v: worst %v < best %v", f.X[i], worst[i], best[i])
		}
	}
}

func TestPermutations(t *testing.T) {
	ps := permutations(3)
	if len(ps) != 6 {
		t.Fatalf("permutations(3) = %d", len(ps))
	}
	seen := map[[3]int]bool{}
	for _, p := range ps {
		var k [3]int
		copy(k[:], p)
		if seen[k] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[k] = true
	}
}
