package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func validResults() *Results {
	return &Results{
		GeneratedAt: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC),
		Figures: []Figure{
			{ID: "t.a", Title: "t", X: []float64{1, 2}, Series: []Series{{Name: "ms", Y: []float64{3, 4}}}},
		},
		Metrics: map[string]float64{"acquire_queries_total": 8},
	}
}

func TestValidateResults(t *testing.T) {
	if err := ValidateResults(validResults()); err != nil {
		t.Fatalf("valid results rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Results)
		want   string
	}{
		{"zero timestamp", func(r *Results) { r.GeneratedAt = time.Time{} }, "generated_at"},
		{"no figures", func(r *Results) { r.Figures = nil }, "no figures"},
		{"empty figure ID", func(r *Results) { r.Figures[0].ID = "" }, "empty ID"},
		{"duplicate figure ID", func(r *Results) { r.Figures = append(r.Figures, r.Figures[0]) }, "duplicate"},
		{"empty X axis", func(r *Results) { r.Figures[0].X = nil }, "empty X"},
		{"NaN X", func(r *Results) { r.Figures[0].X[1] = math.NaN() }, "non-finite X"},
		{"no series", func(r *Results) { r.Figures[0].Series = nil }, "no series"},
		{"length mismatch", func(r *Results) { r.Figures[0].Series[0].Y = []float64{1} }, "points"},
		{"Inf Y", func(r *Results) { r.Figures[0].Series[0].Y[0] = math.Inf(1) }, "non-finite value"},
		{"NaN metric", func(r *Results) { r.Metrics["acquire_queries_total"] = math.NaN() }, "non-finite"},
		{"empty metric name", func(r *Results) { r.Metrics[""] = 1 }, "empty name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validResults()
			tc.mutate(r)
			err := ValidateResults(r)
			if err == nil {
				t.Fatalf("mutation accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestWriteResultsRefusesInvalid pins the guard on the write path: a
// malformed figure set must error out before any JSON is emitted, so
// the acqbench temp-file dance never renames garbage over a committed
// artifact.
func TestWriteResultsRefusesInvalid(t *testing.T) {
	cfg := Config{}.WithDefaults()
	var buf bytes.Buffer
	bad := []Figure{{ID: "x", X: []float64{1}, Series: []Series{{Name: "ms", Y: []float64{1, 2}}}}}
	if err := WriteResults(&buf, cfg, bad); err == nil {
		t.Fatal("WriteResults accepted a series/X length mismatch")
	}
	if buf.Len() != 0 {
		t.Fatalf("WriteResults wrote %d bytes before failing validation", buf.Len())
	}

	good := []Figure{{ID: "x", X: []float64{1, 2}, Series: []Series{{Name: "ms", Y: []float64{1, 2}}}}}
	if err := WriteResults(&buf, cfg, good); err != nil {
		t.Fatalf("WriteResults rejected a valid figure set: %v", err)
	}
	if _, err := ReadResults(&buf); err != nil {
		t.Fatalf("ReadResults rejected WriteResults output: %v", err)
	}
}
