package harness

import (
	"context"
	"fmt"
	"time"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/relq"
	"acquire/internal/tpch"
	"acquire/internal/workload"
)

// ShardCounts is the shard sweep of the sharding study.
var ShardCounts = []int{1, 2, 4, 8}

// ShardSweepRounds is how many interleaved timing rounds each
// configuration gets; the reported figure is the per-configuration
// minimum, the standard low-interference estimator.
var ShardSweepRounds = 10

// ShardSweep measures the sharded evaluation stack on the Figure 8
// workload: the same calibrated 3-predicate COUNT query, executed as
// one AggregateBatch of prefix regions and as a full ACQUIRE search,
// against the monolithic engine and a ShardedEvaluator swept over
// ShardCounts. Timing rounds are interleaved round-robin across
// configurations so host drift lands on all of them equally.
//
// Each configuration first has its results checked against the
// monolithic engine (§2.6 merge equivalence: COUNT bit-identical), so
// the timing series compares verified-identical answers.
//
// Shard scatter costs per-shard binds and a merge fold, so the
// single-CPU expectation is batch parity at N=1 and a modest win at
// higher N from shard-local scan state (each shard's column slices
// stay cache-resident across the batch's regions); multi-core hosts
// add near-linear scan parallelism on top (EXPERIMENTS.md records
// both).
func ShardSweep(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	cat, err := tpch.GenerateUsers(tpch.UsersConfig{Rows: cfg.Rows, Zipf: cfg.Zipf, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	mono, err := newEngine(cat, Config{Obs: cfg.Obs, CacheMB: cfg.CacheMB})
	if err != nil {
		return nil, err
	}
	q, err := workload.BuildCalibrated(mono, workload.Spec{
		Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
	})
	if err != nil {
		return nil, err
	}

	type config struct {
		name   string
		shards int // 0 = monolithic engine
		ev     exec.Evaluator
	}
	configs := []config{{name: "engine", ev: mono}}
	for _, n := range ShardCounts {
		sv, err := exec.NewShardedOn(cat, "users", n)
		if err != nil {
			return nil, err
		}
		sv.SetObserver(cfg.Obs)
		if cfg.CacheMB > 0 {
			sv.EnableRegionCache(int64(cfg.CacheMB) << 20)
		}
		configs = append(configs, config{name: fmt.Sprintf("shards=%d", n), shards: n, ev: sv})
	}
	if cfg.GridAgg {
		for _, c := range configs {
			if err := ensureGridAgg(c.ev, q); err != nil {
				return nil, err
			}
		}
	}

	// The batch: prefix regions spanning the refinement space, the
	// shape ACQUIRE's layer exploration dispatches.
	var regions []relq.Region
	for i := 0; i < 8; i++ {
		h := 10 + float64(i)*8
		regions = append(regions, relq.Region{{Lo: -1, Hi: h}, {Lo: -1, Hi: 70 - h/2}, {Lo: -1, Hi: h}})
	}

	// Verification + warm-up pass: every configuration must produce the
	// monolithic partials (COUNT is bit-identical under the merge rule).
	want, err := mono.AggregateBatch(ctx, q, regions)
	if err != nil {
		return nil, err
	}
	for _, c := range configs[1:] {
		got, err := c.ev.AggregateBatch(ctx, q, regions)
		if err != nil {
			return nil, err
		}
		for i := range got {
			if got[i].Count != want[i].Count || !agg.ApproxEqual(got[i], want[i], 1e-9) {
				return nil, fmt.Errorf("shardsweep: %s region %d diverged: %+v vs %+v",
					c.name, i, got[i], want[i])
			}
		}
	}

	// Interleaved batch timing: round-robin over configurations.
	best := make([]time.Duration, len(configs))
	for i := range best {
		best[i] = time.Duration(1<<63 - 1)
	}
	for round := 0; round < ShardSweepRounds; round++ {
		for i, c := range configs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := c.ev.AggregateBatch(ctx, q, regions); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best[i] {
				best[i] = d
			}
		}
	}

	// Full ACQUIRE search per configuration (single-shot; the search is
	// deterministic, so the interesting spread is the batch figure).
	searchMillis := make([]float64, len(configs))
	execs := make([]float64, len(configs))
	for i, c := range configs {
		before := c.ev.Snapshot()
		m, err := RunACQUIRE(ctx, c.ev, q, acquireOpts(cfg))
		if err != nil {
			return nil, err
		}
		searchMillis[i] = m.Millis
		execs[i] = float64(c.ev.Snapshot().Queries - before.Queries)
	}

	x := make([]float64, len(ShardCounts))
	batchSharded := make([]float64, len(ShardCounts))
	batchMono := make([]float64, len(ShardCounts))
	searchSharded := make([]float64, len(ShardCounts))
	searchMono := make([]float64, len(ShardCounts))
	execSharded := make([]float64, len(ShardCounts))
	partials := make([]float64, len(ShardCounts))
	for i, n := range ShardCounts {
		x[i] = float64(n)
		batchSharded[i] = float64(best[i+1].Microseconds()) / 1000
		batchMono[i] = float64(best[0].Microseconds()) / 1000
		searchSharded[i] = searchMillis[i+1]
		searchMono[i] = searchMillis[0]
		execSharded[i] = execs[i+1]
		partials[i] = float64(configs[i+1].ev.(*exec.ShardedEvaluator).ScatterStats().Partials)
	}
	return []Figure{
		{ID: "shards.batch", Title: "AggregateBatch wall-clock vs shard count (fig. 8 workload, min of rounds)",
			XLabel: "shards", X: x, YLabel: "ms/batch", Series: []Series{
				{Name: "sharded", Y: batchSharded},
				{Name: "engine", Y: batchMono},
			}},
		{ID: "shards.explore", Title: "ACQUIRE search time vs shard count",
			XLabel: "shards", X: x, YLabel: "time (ms)", Series: []Series{
				{Name: "sharded", Y: searchSharded},
				{Name: "engine", Y: searchMono},
			}},
		{ID: "shards.work", Title: "Per-shard executions and gathered partials vs shard count",
			XLabel: "shards", X: x, YLabel: "count", Series: []Series{
				{Name: "executions", Y: execSharded},
				{Name: "partials", Y: partials},
			}},
	}, nil
}
