package harness

import (
	"context"
	"math"
	"time"

	"acquire/internal/core"
	"acquire/internal/exec"
	"acquire/internal/histogram"
	"acquire/internal/relq"
	"acquire/internal/workload"
)

// EvaluationLayerStudy compares the three §3 evaluation layers driving
// the same ACQUIRE searches: exact execution, 10% Bernoulli sampling
// with extrapolation, and histogram estimation. For the approximate
// layers, the returned refined query is re-evaluated on the full data
// and its *true* relative error reported — the metric a user actually
// experiences. (Figure 10.a's 1K point "mimic[s] a sample based
// approach"; this study implements the real mechanism.)
func EvaluationLayerStudy(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := usersEngine(cfg)
	if err != nil {
		return nil, err
	}
	sampled, err := exec.NewSampled(e.Catalog(), 0.1, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	hist, err := histogram.NewEvaluator(e.Catalog(), 64)
	if err != nil {
		return nil, err
	}

	layers := []struct {
		name string
		ev   core.Evaluator
	}{
		{"exact", e},
		{"sample-10%", sampled},
		{"histogram", hist},
	}

	timeFig := Figure{ID: "eval.time", Title: "Evaluation layers: ACQUIRE time", XLabel: "aggregate ratio",
		X: Ratios, YLabel: "time (ms)"}
	errFig := Figure{ID: "eval.err", Title: "Evaluation layers: true relative error of returned query",
		XLabel: "aggregate ratio", X: Ratios, YLabel: "true relative error"}

	for _, layer := range layers {
		ts := Series{Name: layer.name, Y: make([]float64, len(Ratios))}
		es := Series{Name: layer.name, Y: make([]float64, len(Ratios))}
		for i, r := range Ratios {
			// Calibrate against the exact engine so every layer chases
			// the same true target.
			q, err := workload.BuildCalibrated(e, workload.Spec{
				Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: r,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := core.RunContext(ctx, layer.ev, q, core.Options{Gamma: cfg.Gamma, Delta: cfg.Delta, Observer: cfg.Obs})
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			ts.Y[i] = float64(elapsed.Microseconds()) / 1000

			pick := res.Best
			if pick == nil {
				pick = res.Closest
			}
			if pick == nil {
				es.Y[i] = math.NaN()
				continue
			}
			// True error: execute the recommended refinement exactly.
			truth, err := e.Aggregate(q, relq.PrefixRegion(pick.Scores))
			if err != nil {
				return nil, err
			}
			es.Y[i] = math.Abs(float64(truth.Count)-q.Constraint.Target) / q.Constraint.Target
		}
		timeFig.Series = append(timeFig.Series, ts)
		errFig.Series = append(errFig.Series, es)
	}
	return []Figure{timeFig, errFig}, nil
}
