package harness

import (
	"context"
	"strconv"

	"acquire/internal/core"
	"acquire/internal/relq"
	"acquire/internal/workload"
)

// Ratios is the aggregate-ratio axis of Figures 8 and 11.
var Ratios = []float64{0.1, 0.3, 0.5, 0.7, 0.9}

// DimCounts is the dimensionality axis of Figure 9.
var DimCounts = []int{1, 2, 3, 4, 5}

var allMethods = []string{"ACQUIRE", "Top-k", "TQGen", "BinSearch"}
var errMethods = []string{"ACQUIRE", "TQGen", "BinSearch"} // Top-k has no error by definition (§8.4.1)

// Figure8 reproduces Figures 8.a-8.c: 3 flexible predicates, δ=0.05,
// aggregate ratio 0.1-0.9, all four methods; reports execution time,
// relative aggregate error and refinement score.
func Figure8(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := usersEngine(cfg)
	if err != nil {
		return nil, err
	}
	var rows []map[string]Measurement
	var xs []float64
	for _, r := range Ratios {
		row, err := compareAll(ctx, e, cfg, 3, r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		xs = append(xs, r)
	}
	return []Figure{
		{ID: "8.a", Title: "Execution time vs aggregate ratio", XLabel: "aggregate ratio", X: xs,
			YLabel: "time (ms)", Series: seriesFrom(allMethods, rows, func(m Measurement) float64 { return m.Millis })},
		{ID: "8.b", Title: "Relative aggregate error vs aggregate ratio", XLabel: "aggregate ratio", X: xs,
			YLabel: "relative error", Series: seriesFrom(errMethods, rows, func(m Measurement) float64 { return m.Err })},
		{ID: "8.c", Title: "Refinement score vs aggregate ratio", XLabel: "aggregate ratio", X: xs,
			YLabel: "refinement score", Series: seriesFrom(allMethods, rows, func(m Measurement) float64 { return m.Refinement })},
	}, nil
}

// Figure9 reproduces Figures 9.a-9.c: ratio 0.3, 1-5 flexible
// predicates.
func Figure9(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := usersEngine(cfg)
	if err != nil {
		return nil, err
	}
	var rows []map[string]Measurement
	var xs []float64
	for _, d := range DimCounts {
		row, err := compareAll(ctx, e, cfg, d, 0.3)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		xs = append(xs, float64(d))
	}
	return []Figure{
		{ID: "9.a", Title: "Execution time vs number of dimensions", XLabel: "dimensions", X: xs,
			YLabel: "time (ms)", Series: seriesFrom(allMethods, rows, func(m Measurement) float64 { return m.Millis })},
		{ID: "9.b", Title: "Relative aggregate error vs dimensions", XLabel: "dimensions", X: xs,
			YLabel: "relative error", Series: seriesFrom(errMethods, rows, func(m Measurement) float64 { return m.Err })},
		{ID: "9.c", Title: "Refinement score vs dimensions", XLabel: "dimensions", X: xs,
			YLabel: "refinement score", Series: seriesFrom(allMethods, rows, func(m Measurement) float64 { return m.Refinement })},
	}, nil
}

// TableSizes is the Figure 10.a axis at default bench scale; pass a
// custom list through Figure10a for the paper's 1K-1M sweep.
var TableSizes = []int{1000, 10000, 100000}

// Figure10a reproduces Figure 10.a: execution time vs table size, all
// four methods, ratio 0.3, 3 predicates.
func Figure10a(ctx context.Context, cfg Config, sizes []int) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	if sizes == nil {
		sizes = TableSizes
	}
	var rows []map[string]Measurement
	var xs []float64
	for _, n := range sizes {
		c := cfg
		c.Rows = n
		e, err := usersEngine(c)
		if err != nil {
			return nil, err
		}
		row, err := compareAll(ctx, e, c, 3, 0.3)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		xs = append(xs, float64(n))
	}
	return []Figure{
		{ID: "10.a", Title: "Execution time vs table size", XLabel: "table size (rows)", X: xs,
			YLabel: "time (ms)", Series: seriesFrom(allMethods, rows, func(m Measurement) float64 { return m.Millis })},
	}, nil
}

// Gammas is the Figure 10.b refinement-threshold axis.
var Gammas = []float64{2, 4, 6, 8, 10, 12}

// Figure10b reproduces Figure 10.b: ACQUIRE execution time vs the
// refinement threshold γ. Smaller γ means a finer grid — more queries
// to reach the same aggregate — so time grows as γ shrinks.
func Figure10b(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := usersEngine(cfg)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, g := range Gammas {
		q, err := workload.BuildCalibrated(e, workload.Spec{
			Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
		})
		if err != nil {
			return nil, err
		}
		if cfg.GridAgg {
			if err := ensureGridAgg(e, q); err != nil {
				return nil, err
			}
		}
		m, err := RunACQUIRE(ctx, e, q, core.Options{Gamma: g, Delta: cfg.Delta, Observer: cfg.Obs})
		if err != nil {
			return nil, err
		}
		xs = append(xs, g)
		ys = append(ys, m.Millis)
	}
	return []Figure{
		{ID: "10.b", Title: "ACQUIRE time vs refinement threshold", XLabel: "refinement threshold γ", X: xs,
			YLabel: "time (ms)", Series: []Series{{Name: "ACQUIRE", Y: ys}}},
	}, nil
}

// Deltas is the Figure 10.c cardinality-threshold axis.
var Deltas = []float64{0.0001, 0.001, 0.01, 0.1}

// Figure10c reproduces Figure 10.c: ACQUIRE execution time vs the
// aggregate (cardinality) threshold δ. Stricter thresholds force more
// repartitioning and deeper exploration.
func Figure10c(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := usersEngine(cfg)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, d := range Deltas {
		q, err := workload.BuildCalibrated(e, workload.Spec{
			Kind: workload.Users, Dims: 3, Agg: relq.AggCount, Ratio: 0.3,
		})
		if err != nil {
			return nil, err
		}
		if cfg.GridAgg {
			if err := ensureGridAgg(e, q); err != nil {
				return nil, err
			}
		}
		m, err := RunACQUIRE(ctx, e, q, core.Options{Gamma: cfg.Gamma, Delta: d, RepartitionDepth: 12, Observer: cfg.Obs})
		if err != nil {
			return nil, err
		}
		xs = append(xs, d)
		ys = append(ys, m.Millis)
	}
	return []Figure{
		{ID: "10.c", Title: "ACQUIRE time vs cardinality threshold", XLabel: "cardinality threshold δ", X: xs,
			YLabel: "time (ms)", Series: []Series{{Name: "ACQUIRE", Y: ys}}},
	}, nil
}

// Figure11 reproduces Figures 11.a-11.b: ACQUIRE on SUM, COUNT and MAX
// constraints over the TPC-H skeleton (Q2 of Example 2), ratio sweep;
// MIN is omitted as MAX(-attribute) (§8.4.6).
func Figure11(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := tpchEngine(cfg)
	if err != nil {
		return nil, err
	}
	aggs := []struct {
		name string
		f    relq.AggFunc
	}{
		{"SUM", relq.AggSum}, {"COUNT", relq.AggCount}, {"MAX", relq.AggMax},
	}
	timeFig := Figure{ID: "11.a", Title: "ACQUIRE time per aggregate type", XLabel: "aggregate ratio",
		X: Ratios, YLabel: "time (ms)"}
	refFig := Figure{ID: "11.b", Title: "ACQUIRE refinement per aggregate type", XLabel: "aggregate ratio",
		X: Ratios, YLabel: "refinement score"}
	for _, a := range aggs {
		ts := Series{Name: a.name, Y: make([]float64, len(Ratios))}
		rs := Series{Name: a.name, Y: make([]float64, len(Ratios))}
		for i, r := range Ratios {
			q, err := workload.BuildCalibrated(e, workload.Spec{
				Kind: workload.TPCH, Dims: 3, Agg: a.f, Ratio: r,
			})
			if err != nil {
				return nil, err
			}
			m, err := RunACQUIRE(ctx, e, q, acquireOpts(cfg))
			if err != nil {
				return nil, err
			}
			ts.Y[i] = m.Millis
			rs.Y[i] = m.Refinement
		}
		timeFig.Series = append(timeFig.Series, ts)
		refFig.Series = append(refFig.Series, rs)
	}
	return []Figure{timeFig, refFig}, nil
}

// SkewStudy reproduces §8.4.4: the Figure-8-style ratio sweep re-run on
// Zipf Z=1 data; the paper reports "trends in results were same".
func SkewStudy(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	out := make([]Figure, 0, 2)
	for _, z := range []float64{0, 1} {
		c := cfg
		c.Zipf = z
		e, err := usersEngine(c)
		if err != nil {
			return nil, err
		}
		var rows []map[string]Measurement
		for _, r := range Ratios {
			row, err := compareAll(ctx, e, c, 3, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		id := "skew.Z0"
		if z > 0 {
			id = "skew.Z1"
		}
		out = append(out, Figure{
			ID: id, Title: "Execution time vs ratio (Zipf Z=" + strconv.Itoa(int(z)) + ")",
			XLabel: "aggregate ratio", X: Ratios, YLabel: "time (ms)",
			Series: seriesFrom(allMethods, rows, func(m Measurement) float64 { return m.Millis }),
		})
	}
	return out, nil
}

// JoinRefinementStudy exercises the capability no baseline has
// (Table 1): refining a join predicate. ACQUIRE only.
func JoinRefinementStudy(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := tpchEngine(cfg)
	if err != nil {
		return nil, err
	}
	var xs, ys, refs []float64
	for _, r := range Ratios {
		q, err := workload.BuildCalibrated(e, workload.Spec{
			Kind: workload.TPCH, Dims: 3, Agg: relq.AggCount, Ratio: r, RefinableJoin: true,
		})
		if err != nil {
			return nil, err
		}
		m, err := RunACQUIRE(ctx, e, q, acquireOpts(cfg))
		if err != nil {
			return nil, err
		}
		xs = append(xs, r)
		ys = append(ys, m.Millis)
		refs = append(refs, m.Refinement)
	}
	return []Figure{
		{ID: "join.time", Title: "ACQUIRE with refinable join", XLabel: "aggregate ratio", X: xs,
			YLabel: "time (ms)", Series: []Series{{Name: "ACQUIRE", Y: ys}}},
		{ID: "join.ref", Title: "Join refinement score", XLabel: "aggregate ratio", X: xs,
			YLabel: "refinement score", Series: []Series{{Name: "ACQUIRE", Y: refs}}},
	}, nil
}

// AblationIncremental quantifies §5's contribution: ACQUIRE with and
// without incremental aggregate computation, ratio sweep. The workload
// is the three-table TPC-H skeleton, where re-executing each refined
// query whole repeats the join work the incremental store shares.
func AblationIncremental(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	e, err := tpchEngine(cfg)
	if err != nil {
		return nil, err
	}
	inc := Series{Name: "incremental", Y: make([]float64, len(Ratios))}
	naive := Series{Name: "whole-query", Y: make([]float64, len(Ratios))}
	for i, r := range Ratios {
		q, err := workload.BuildCalibrated(e, workload.Spec{
			Kind: workload.TPCH, Dims: 3, Agg: relq.AggCount, Ratio: r,
		})
		if err != nil {
			return nil, err
		}
		m, err := RunACQUIRE(ctx, e, q, acquireOpts(cfg))
		if err != nil {
			return nil, err
		}
		inc.Y[i] = m.Millis
		m, err = RunACQUIRE(ctx, e, q, core.Options{Gamma: cfg.Gamma, Delta: cfg.Delta, NoIncremental: true, Observer: cfg.Obs})
		if err != nil {
			return nil, err
		}
		naive.Y[i] = m.Millis
	}
	return []Figure{{
		ID: "ablation.incremental", Title: "Incremental aggregate computation ablation",
		XLabel: "aggregate ratio", X: Ratios, YLabel: "time (ms)",
		Series: []Series{inc, naive},
	}}, nil
}

// AblationGridIndex quantifies §7.4: ACQUIRE with and without the grid
// bitmap index. Cell skipping only matters when the search crawls a
// sparse region in fine steps, so this ablation uses a dedicated
// workload: Zipf Z=1 users (ages concentrate at 18-25), a query
// anchored at age <= 30, and targets that force the search deep into
// the sparse integer tail with sub-year cells. The x-axis is the count
// multiplier demanded of the original query; the third series is the
// fraction of cell queries the index answered without scanning.
func AblationGridIndex(ctx context.Context, cfg Config) ([]Figure, error) {
	cfg = cfg.WithDefaults()
	c := cfg
	c.Zipf = 1
	e, err := usersEngine(c)
	if err != nil {
		return nil, err
	}
	users, err := e.Catalog().Table("users")
	if err != nil {
		return nil, err
	}
	ageStats, err := users.Stats(users.Schema().Ordinal("age"))
	if err != nil {
		return nil, err
	}

	multipliers := []float64{1.05, 1.1, 1.2, 1.3, 1.4}
	without := Series{Name: "no index", Y: make([]float64, len(multipliers))}
	with := Series{Name: "grid index", Y: make([]float64, len(multipliers))}
	skipped := Series{Name: "cells skipped (frac)", Y: make([]float64, len(multipliers))}
	xs := make([]float64, len(multipliers))

	for i, mult := range multipliers {
		xs[i] = mult
		q := &relq.Query{
			Tables: []string{"users"},
			Dims: []relq.Dimension{{
				Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "users", Column: "age"},
				Bound: 30, Width: ageStats.Max - ageStats.Min,
			}},
			Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpGE, Target: 1},
		}
		if _, err := workload.Calibrate(e, q, 1/mult); err != nil {
			return nil, err
		}
		opts := core.Options{Gamma: 0.5, Delta: 0.01, Observer: cfg.Obs} // step = 0.5 score units ≈ 0.3 years

		m, err := RunACQUIRE(ctx, e, q, opts)
		if err != nil {
			return nil, err
		}
		without.Y[i] = m.Millis

		if err := e.BuildGridIndex("users", []string{"age"}, 256); err != nil {
			return nil, err
		}
		before := e.Snapshot()
		m, err = RunACQUIRE(ctx, e, q, opts)
		if err != nil {
			return nil, err
		}
		after := e.Snapshot()
		with.Y[i] = m.Millis
		if queries := after.Queries - before.Queries; queries > 0 {
			skipped.Y[i] = float64(after.CellsSkipped-before.CellsSkipped) / float64(queries)
		}
		e.DropGridIndex("users")
	}
	return []Figure{{
		ID: "ablation.gridindex", Title: "Grid bitmap index ablation (§7.4, sparse integer tail)",
		XLabel: "count multiplier", X: xs, YLabel: "time (ms)",
		Series: []Series{without, with, skipped},
	}}, nil
}
