package harness

import (
	"context"
	"fmt"
	"math"
	"strings"
)

// Claim is one §8.5 headline claim with its measured value.
type Claim struct {
	ID       string
	Paper    string
	Measured string
	Holds    bool
}

// Summary re-runs the Figure 8 sweep at the given configuration and
// checks the paper's §8.5 conclusions programmatically — the machine-
// checkable core of EXPERIMENTS.md. Returns the claims and the figures
// they were computed from. Run at ≥30K rows: below that, Top-k's
// single sorted scan is cheap enough to win (the paper's own §8.5(3)
// caveat), and the corresponding claim legitimately deviates.
func Summary(ctx context.Context, cfg Config) ([]Claim, []Figure, error) {
	cfg = cfg.WithDefaults()
	figs, err := Figure8(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	timeF, errF, refF := figs[0], figs[1], figs[2]

	get := func(f Figure, name string) []float64 {
		for _, s := range f.Series {
			if s.Name == name {
				return s.Y
			}
		}
		return nil
	}
	meanOf := func(v []float64) float64 {
		s, n := 0.0, 0
		for _, x := range v {
			if !math.IsNaN(x) {
				s += x
				n++
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return s / float64(n)
	}

	acqT := meanOf(get(timeF, "ACQUIRE"))
	tqT := meanOf(get(timeF, "TQGen"))
	bsT := meanOf(get(timeF, "BinSearch"))
	tkT := meanOf(get(timeF, "Top-k"))

	var claims []Claim

	tqFactor := tqT / acqT
	claims = append(claims, Claim{
		ID:       "§8.5(1a)",
		Paper:    "ACQUIRE ~2 orders of magnitude faster than TQGen",
		Measured: fmt.Sprintf("TQGen/ACQUIRE = %.0fx on the ratio-sweep means", tqFactor),
		Holds:    tqFactor >= 30, // order-of-magnitude territory at any scale
	})
	bsFactor := bsT / acqT
	claims = append(claims, Claim{
		ID:       "§8.5(1b)",
		Paper:    "ACQUIRE on average 2x faster than BinSearch",
		Measured: fmt.Sprintf("BinSearch/ACQUIRE = %.1fx", bsFactor),
		Holds:    bsFactor >= 1.5,
	})
	tkFactor := tkT / acqT
	claims = append(claims, Claim{
		ID:       "§8.5(3)",
		Paper:    "Top-k about 3.7x slower than ACQUIRE",
		Measured: fmt.Sprintf("Top-k/ACQUIRE = %.1fx", tkFactor),
		Holds:    tkFactor >= 2,
	})

	maxErr := 0.0
	for _, v := range get(errF, "ACQUIRE") {
		if !math.IsNaN(v) && v > maxErr {
			maxErr = v
		}
	}
	claims = append(claims, Claim{
		ID:       "§8.5(2)",
		Paper:    "ACQUIRE aggregate error always below the threshold",
		Measured: fmt.Sprintf("max ACQUIRE error %.4f vs δ=%.4f", maxErr, cfg.Delta),
		Holds:    maxErr <= cfg.Delta+1e-9,
	})

	// Refinement: worst baseline over ACQUIRE at the hardest ratio.
	acqR := get(refF, "ACQUIRE")
	worstFactor := 0.0
	for i := range acqR {
		if acqR[i] <= 0 {
			continue
		}
		for _, s := range refF.Series {
			if s.Name == "ACQUIRE" || math.IsNaN(s.Y[i]) {
				continue
			}
			if f := s.Y[i] / acqR[i]; f > worstFactor {
				worstFactor = f
			}
		}
	}
	claims = append(claims, Claim{
		ID:       "§8.5(4)",
		Paper:    "baseline refinement up to ~2x worse than ACQUIRE",
		Measured: fmt.Sprintf("worst baseline/ACQUIRE refinement = %.1fx", worstFactor),
		Holds:    worstFactor >= 1.5,
	})

	return claims, figs, nil
}

// FormatClaims renders the claims as a verdict table.
func FormatClaims(claims []Claim) string {
	var b strings.Builder
	b.WriteString("Headline claims (§8.5), machine-checked:\n")
	for _, c := range claims {
		verdict := "HOLDS"
		if !c.Holds {
			verdict = "DEVIATES"
		}
		fmt.Fprintf(&b, "  [%s] %-8s %s\n           measured: %s\n", c.ID, verdict, c.Paper, c.Measured)
	}
	return b.String()
}
