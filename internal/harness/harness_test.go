package harness

import (
	"context"
	"math"
	"strings"
	"testing"
)

// tinyCfg keeps harness tests fast; the shapes under test are scale
// free.
func tinyCfg() Config {
	return Config{Rows: 3000, Seed: 7, Delta: 0.05, Gamma: 20, TQGenGridK: 6, TQGenRounds: 3}
}

func TestFigure8ShapesHold(t *testing.T) {
	figs, err := Figure8(context.Background(), tinyCfg())
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if len(figs) != 3 {
		t.Fatalf("figures = %d", len(figs))
	}
	timeFig, errFig, refFig := figs[0], figs[1], figs[2]

	get := func(f Figure, name string) []float64 {
		for _, s := range f.Series {
			if s.Name == name {
				return s.Y
			}
		}
		t.Fatalf("series %q missing from %s", name, f.ID)
		return nil
	}

	acqT := get(timeFig, "ACQUIRE")
	tqT := get(timeFig, "TQGen")
	for i := range acqT {
		// Headline shape: TQGen is much slower than ACQUIRE at every
		// ratio (paper: 2 orders of magnitude; we assert >3x at toy
		// scale — EXPERIMENTS.md records the measured factors at the
		// full scale).
		if tqT[i] < 3*acqT[i] {
			t.Errorf("ratio %v: TQGen %vms not ≫ ACQUIRE %vms", timeFig.X[i], tqT[i], acqT[i])
		}
	}

	// ACQUIRE's error is always within δ (§8.5 conclusion 2).
	for i, v := range get(errFig, "ACQUIRE") {
		if v > 0.05+1e-9 {
			t.Errorf("ratio %v: ACQUIRE error %v exceeds δ", errFig.X[i], v)
		}
	}

	// ACQUIRE's refinement never exceeds the baselines' refinement by a
	// meaningful factor (conclusion 4: baselines are ~2X worse; we
	// assert ACQUIRE is never the strict worst by 20%).
	acqR := get(refFig, "ACQUIRE")
	for i := range acqR {
		worst := 0.0
		for _, s := range refFig.Series {
			if s.Name == "ACQUIRE" {
				continue
			}
			if !math.IsNaN(s.Y[i]) && s.Y[i] > worst {
				worst = s.Y[i]
			}
		}
		if worst > 0 && acqR[i] > worst*1.2 {
			t.Errorf("ratio %v: ACQUIRE refinement %v worse than worst baseline %v", refFig.X[i], acqR[i], worst)
		}
	}
}

func TestFigure9ExponentialTQGen(t *testing.T) {
	cfg := tinyCfg()
	cfg.Rows = 2000
	figs, err := Figure9(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	timeFig := figs[0]
	var tq, acq []float64
	for _, s := range timeFig.Series {
		if s.Name == "TQGen" {
			tq = s.Y
		}
		if s.Name == "ACQUIRE" {
			acq = s.Y
		}
	}
	// TQGen's cost explodes with dimensionality: d=5 ≫ d=1.
	if tq[4] < 10*tq[0] {
		t.Errorf("TQGen d=5 (%vms) should dwarf d=1 (%vms)", tq[4], tq[0])
	}
	// ACQUIRE grows far slower than TQGen.
	if tq[4]/math.Max(tq[0], 0.001) < acq[4]/math.Max(acq[0], 0.001) {
		t.Errorf("ACQUIRE growth (%v→%v) should be slower than TQGen (%v→%v)",
			acq[0], acq[4], tq[0], tq[4])
	}
}

func TestFigure10Axes(t *testing.T) {
	cfg := tinyCfg()
	figs, err := Figure10a(context.Background(), cfg, []int{500, 2000})
	if err != nil {
		t.Fatalf("Figure10a: %v", err)
	}
	if len(figs[0].X) != 2 {
		t.Errorf("10.a x = %v", figs[0].X)
	}

	figs, err = Figure10b(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Figure10b: %v", err)
	}
	if len(figs[0].X) != len(Gammas) {
		t.Errorf("10.b x = %v", figs[0].X)
	}

	figs, err = Figure10c(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Figure10c: %v", err)
	}
	if len(figs[0].X) != len(Deltas) {
		t.Errorf("10.c x = %v", figs[0].X)
	}
}

func TestFigure11AllAggregates(t *testing.T) {
	cfg := tinyCfg()
	figs, err := Figure11(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Figure11: %v", err)
	}
	if len(figs) != 2 || len(figs[0].Series) != 3 {
		t.Fatalf("shape: %d figs, %d series", len(figs), len(figs[0].Series))
	}
	for _, s := range figs[0].Series {
		for i, v := range s.Y {
			if math.IsNaN(v) || v < 0 {
				t.Errorf("%s time[%d] = %v", s.Name, i, v)
			}
		}
	}
}

func TestSkewAndJoinStudies(t *testing.T) {
	cfg := tinyCfg()
	figs, err := SkewStudy(context.Background(), cfg)
	if err != nil {
		t.Fatalf("SkewStudy: %v", err)
	}
	if len(figs) != 2 {
		t.Fatalf("skew figures = %d", len(figs))
	}

	jf, err := JoinRefinementStudy(context.Background(), cfg)
	if err != nil {
		t.Fatalf("JoinRefinementStudy: %v", err)
	}
	if len(jf) != 2 {
		t.Fatalf("join figures = %d", len(jf))
	}
}

func TestAblations(t *testing.T) {
	cfg := tinyCfg()
	figs, err := AblationIncremental(context.Background(), cfg)
	if err != nil {
		t.Fatalf("AblationIncremental: %v", err)
	}
	inc, naive := figs[0].Series[0].Y, figs[0].Series[1].Y
	// At the lowest ratio (deepest search) the incremental explorer
	// must not be slower than whole-query re-execution by any
	// meaningful margin.
	if inc[0] > naive[0]*1.5 {
		t.Errorf("incremental %vms slower than naive %vms at ratio 0.1", inc[0], naive[0])
	}

	if _, err := AblationGridIndex(context.Background(), cfg); err != nil {
		t.Fatalf("AblationGridIndex: %v", err)
	}
}

func TestFormatFigure(t *testing.T) {
	f := Figure{
		ID: "t.1", Title: "demo", XLabel: "x", YLabel: "ms",
		X:      []float64{1, 2},
		Series: []Series{{Name: "A", Y: []float64{1.5, math.NaN()}}, {Name: "B", Y: []float64{3000, 0.001}}},
	}
	s := FormatFigure(f)
	for _, want := range []string{"Figure t.1", "x", "A", "B", "1.50", "-", "3000", "0.0010"} {
		if !strings.Contains(s, want) {
			t.Errorf("FormatFigure missing %q:\n%s", want, s)
		}
	}
}

func TestTable1(t *testing.T) {
	s := Table1()
	for _, want := range []string{"ACQUIRE", "Top-k", "BinSearch", "TQGen", "UDA", "Proximity"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	// ACQUIRE's row has all three capability marks.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "ACQUIRE") && strings.Count(line, "yes") != 3 {
			t.Errorf("ACQUIRE row should have 3 marks: %q", line)
		}
	}
}

func TestMeasurementRunners(t *testing.T) {
	cfg := tinyCfg()
	e, err := usersEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row, err := compareAll(context.Background(), e, cfg, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ACQUIRE", "Top-k", "TQGen", "BinSearch"} {
		m, ok := row[name]
		if !ok {
			t.Fatalf("method %s missing", name)
		}
		if m.Millis < 0 || m.Executions <= 0 {
			t.Errorf("%s measurement: %+v", name, m)
		}
		if !m.Satisfied {
			t.Errorf("%s failed an easy ratio-0.5 target: %+v", name, m)
		}
	}
}

func TestErrCheck(t *testing.T) {
	if err := ErrCheck(true, "x"); err != nil {
		t.Error(err)
	}
	if err := ErrCheck(false, "bad %d", 7); err == nil || !strings.Contains(err.Error(), "bad 7") {
		t.Errorf("ErrCheck: %v", err)
	}
}
