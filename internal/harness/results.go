package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Results is the machine-readable form of an acqbench run: the
// configuration, every reproduced figure, and — when the run was
// instrumented — a flat snapshot of the metric registry (counter and
// gauge values, histogram sums/counts), so a CI job can archive the
// run's cost profile next to its figures.
type Results struct {
	GeneratedAt time.Time          `json:"generated_at"`
	Config      Config             `json:"config"`
	Figures     []Figure           `json:"figures"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// WriteResults serialises the figures (plus the registry snapshot of
// cfg.Obs, when instrumented) as indented JSON to w. The payload is
// validated first — a malformed run must fail loudly rather than
// overwrite a committed BENCH_*.json artifact with garbage.
func WriteResults(w io.Writer, cfg Config, figs []Figure) error {
	r := Results{
		GeneratedAt: time.Now().UTC(),
		Config:      cfg,
		Figures:     figs,
		Metrics:     cfg.Obs.Registry().Snapshot(),
	}
	if err := ValidateResults(&r); err != nil {
		return fmt.Errorf("refusing to write results: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ValidateResults checks the structural invariants every benchmark
// artifact must satisfy before it may replace a committed BENCH_*.json:
// a real generation timestamp, at least one figure, non-empty figure
// IDs (unique across the run), every series exactly as long as its
// figure's X axis, and every number — axis point, series value, metric
// — finite. It is shared by the write path (WriteResults) and the
// repo-artifact checker (cmd/benchcheck), so the committed files and
// fresh runs are held to the same schema.
func ValidateResults(r *Results) error {
	if r.GeneratedAt.IsZero() {
		return fmt.Errorf("results: generated_at is zero")
	}
	if len(r.Figures) == 0 {
		return fmt.Errorf("results: no figures")
	}
	seen := make(map[string]bool, len(r.Figures))
	for i, f := range r.Figures {
		if f.ID == "" {
			return fmt.Errorf("results: figure %d has an empty ID", i)
		}
		if seen[f.ID] {
			return fmt.Errorf("results: duplicate figure ID %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.X) == 0 {
			return fmt.Errorf("results: figure %q has an empty X axis", f.ID)
		}
		for _, x := range f.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("results: figure %q has a non-finite X value", f.ID)
			}
		}
		if len(f.Series) == 0 {
			return fmt.Errorf("results: figure %q has no series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(f.X) {
				return fmt.Errorf("results: figure %q series %q has %d points, X axis has %d",
					f.ID, s.Name, len(s.Y), len(f.X))
			}
			for _, y := range s.Y {
				if math.IsNaN(y) || math.IsInf(y, 0) {
					return fmt.Errorf("results: figure %q series %q has a non-finite value", f.ID, s.Name)
				}
			}
		}
	}
	for name, v := range r.Metrics {
		if name == "" {
			return fmt.Errorf("results: metric with empty name")
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("results: metric %q is non-finite", name)
		}
	}
	return nil
}

// ReadResults parses and validates one results artifact.
func ReadResults(rd io.Reader) (*Results, error) {
	var r Results
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, err
	}
	if err := ValidateResults(&r); err != nil {
		return nil, err
	}
	return &r, nil
}
