package harness

import (
	"encoding/json"
	"io"
	"time"
)

// Results is the machine-readable form of an acqbench run: the
// configuration, every reproduced figure, and — when the run was
// instrumented — a flat snapshot of the metric registry (counter and
// gauge values, histogram sums/counts), so a CI job can archive the
// run's cost profile next to its figures.
type Results struct {
	GeneratedAt time.Time          `json:"generated_at"`
	Config      Config             `json:"config"`
	Figures     []Figure           `json:"figures"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// WriteResults serialises the figures (plus the registry snapshot of
// cfg.Obs, when instrumented) as indented JSON to w.
func WriteResults(w io.Writer, cfg Config, figs []Figure) error {
	r := Results{
		GeneratedAt: time.Now().UTC(),
		Config:      cfg,
		Figures:     figs,
		Metrics:     cfg.Obs.Registry().Snapshot(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
