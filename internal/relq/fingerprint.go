package relq

import (
	"math"
	"sort"
	"strings"
)

// Fingerprint is a 128-bit canonical hash of the result-determining
// shape of a query (tables, dimensions, fixed predicates, aggregate
// spec) optionally extended with a violation region. It keys the
// cross-search partial-aggregate cache: two (query, region) pairs with
// equal fingerprints produce byte-identical agg.Partial results, so a
// cached partial can stand in for a cold execution.
//
// Only fields that affect which tuples qualify and how they accumulate
// are hashed. Constraint.Op and Constraint.Target steer the search, not
// the partial; Dimension.Name, .Weight and .MaxScore steer rendering
// and frontier order. All of those are deliberately excluded, so
// searches that differ only in target or norm share cache entries.
//
// The two words are independent FNV-1a-64 streams over the same
// canonical byte sequence (the second stream whitens each byte), giving
// a 128-bit key; accidental collision of both words is negligible at
// cache scale.
type Fingerprint struct {
	Hi, Lo uint64
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
	// fnvOffsetAlt decorrelates the second stream's initial state
	// (golden-ratio constant).
	fnvOffsetAlt uint64 = fnvOffset64 ^ 0x9e3779b97f4a7c15
)

func (f *Fingerprint) byte(b byte) {
	f.Hi = (f.Hi ^ uint64(b)) * fnvPrime64
	f.Lo = (f.Lo ^ uint64(b^0xa5)) * fnvPrime64
}

func (f *Fingerprint) u64(v uint64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(v >> (8 * i)))
	}
}

// str hashes a length-prefixed string so adjacent fields cannot run
// into each other ("ab"+"c" vs "a"+"bc").
func (f *Fingerprint) str(s string) {
	f.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
}

// f64 hashes a float quantized to 1e-9 units — the same epsilon the
// search uses for score comparisons (ScoresAlmostEqual) — so bounds
// that differ only by accumulated grid arithmetic jitter collapse to
// one entry, while any materially different bound separates.
func (f *Fingerprint) f64(v float64) {
	f.u64(quantize(v))
}

// quantize maps a float to a stable integer code: round(v·1e9) with
// saturation, plus distinct codes for the non-finite values.
func quantize(v float64) uint64 {
	switch {
	case math.IsNaN(v):
		return math.MaxUint64
	case math.IsInf(v, 1):
		return math.MaxUint64 - 1
	case math.IsInf(v, -1):
		return math.MaxUint64 - 2
	}
	r := math.Round(v * 1e9)
	switch {
	case r >= math.MaxInt64:
		return uint64(math.MaxInt64)
	case r <= math.MinInt64:
		return uint64(1) << 63 // MinInt64 bit pattern
	}
	return uint64(int64(r))
}

// coefOr1 normalizes join coefficients: 0 means 1 everywhere a
// coefficient is consumed (JoinViolation, the engine's bindings), so
// the two spellings must fingerprint identically.
func coefOr1(c float64) float64 {
	if c == 0 {
		return 1
	}
	return c
}

func (f *Fingerprint) colRef(c ColumnRef) {
	f.str(strings.ToLower(c.Table))
	f.str(strings.ToLower(c.Column))
}

// QueryFingerprint hashes the canonical shape of q. Table and dimension
// order are significant (dimension i is axis i of every region; table
// order fixes the join fold), but fixed predicates are an unordered
// conjunction and IN-sets are unordered, so both are canonicalized —
// reordering NOREFINE clauses or IN values hits the same entry.
func QueryFingerprint(q *Query) Fingerprint {
	f := Fingerprint{Hi: fnvOffset64, Lo: fnvOffsetAlt}
	f.str("acq-fp-v1")

	f.u64(uint64(len(q.Tables)))
	for _, t := range q.Tables {
		f.str(strings.ToLower(t))
	}

	f.u64(uint64(len(q.Dims)))
	for i := range q.Dims {
		d := &q.Dims[i]
		f.byte(byte(d.Kind))
		switch d.Kind {
		case JoinBand:
			f.colRef(d.Left)
			f.colRef(d.Right)
			f.f64(coefOr1(d.LCoef))
			f.f64(coefOr1(d.RCoef))
			f.f64(d.Base)
		default:
			f.colRef(d.Col)
			f.f64(d.Bound)
		}
		f.f64(d.Width)
	}

	// Fixed predicates: hash each into its own sub-fingerprint, then
	// fold the sub-hashes in sorted order — conjunctive filters are
	// order-insensitive, so equivalent orderings must collide.
	subs := make([]Fingerprint, len(q.Fixed))
	for i := range q.Fixed {
		subs[i] = fixedFingerprint(&q.Fixed[i])
	}
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].Hi != subs[j].Hi {
			return subs[i].Hi < subs[j].Hi
		}
		return subs[i].Lo < subs[j].Lo
	})
	f.u64(uint64(len(subs)))
	for _, s := range subs {
		f.u64(s.Hi)
		f.u64(s.Lo)
	}

	c := &q.Constraint
	f.byte(byte(c.Func))
	f.colRef(c.Attr)
	f.str(c.UserName)
	return f
}

func fixedFingerprint(p *FixedPred) Fingerprint {
	f := Fingerprint{Hi: fnvOffset64, Lo: fnvOffsetAlt}
	f.byte(byte(p.Kind))
	switch p.Kind {
	case FixedRange:
		f.colRef(p.Col)
		f.f64(p.Lo)
		f.f64(p.Hi)
	case FixedEquiJoin:
		f.colRef(p.Left)
		f.colRef(p.Right)
		f.f64(coefOr1(p.LCoef))
		f.f64(coefOr1(p.RCoef))
	case FixedStringIn:
		f.colRef(p.Col)
		vals := append([]string(nil), p.Values...)
		sort.Strings(vals)
		f.u64(uint64(len(vals)))
		for _, v := range vals {
			f.str(v)
		}
	}
	return f
}

// Mix folds extra words into the fingerprint — the engine mixes
// per-table row counts so appending rows retires every entry of the
// grown table's queries without an explicit invalidation (the same
// generation scheme the engine's column cache uses).
func (f Fingerprint) Mix(vals ...uint64) Fingerprint {
	for _, v := range vals {
		f.u64(v)
	}
	return f
}

// WithRegion extends the query fingerprint with the quantized interval
// bounds of a violation region, yielding the full cache key of one
// (query shape, aggregate spec, region) execution.
func (f Fingerprint) WithRegion(r Region) Fingerprint {
	f.u64(uint64(len(r)))
	for _, iv := range r {
		f.f64(iv.Lo)
		f.f64(iv.Hi)
	}
	return f
}
