package relq

import (
	"math"
	"testing"
)

func fpQuery() *Query {
	return &Query{
		Tables: []string{"users"},
		Fixed: []FixedPred{
			{Kind: FixedRange, Col: ColumnRef{Table: "users", Column: "clicks"}, Lo: 0, Hi: 100},
			{Kind: FixedStringIn, Col: ColumnRef{Table: "users", Column: "gender"}, Values: []string{"f", "m"}},
		},
		Dims: []Dimension{
			{Kind: SelectLE, Col: ColumnRef{Table: "users", Column: "age"}, Bound: 30, Width: 50},
			{Kind: SelectGE, Col: ColumnRef{Table: "users", Column: "income"}, Bound: 40000, Width: 80000},
		},
		Constraint: Constraint{Func: AggCount, Op: CmpEQ, Target: 1000},
	}
}

// Clones and case variants must collide; the fingerprint is the cache
// identity, so any instability would make every search cold.
func TestFingerprintStable(t *testing.T) {
	q := fpQuery()
	a := QueryFingerprint(q)
	b := QueryFingerprint(q.Clone())
	if a != b {
		t.Fatalf("clone fingerprint differs: %x != %x", a, b)
	}
	up := q.Clone()
	up.Tables[0] = "USERS"
	up.Dims[0].Col.Column = "AGE"
	if got := QueryFingerprint(up); got != a {
		t.Errorf("case variant fingerprint differs: %x != %x", got, a)
	}
}

// Search-policy fields must not affect the fingerprint: searches that
// differ only in target, operator, norm weights or labels share the
// same partials.
func TestFingerprintIgnoresPolicyFields(t *testing.T) {
	q := fpQuery()
	a := QueryFingerprint(q)
	v := q.Clone()
	v.Constraint.Op = CmpGE
	v.Constraint.Target = 999999
	v.Dims[0].Name = "age-cap"
	v.Dims[0].Weight = 7
	v.Dims[1].MaxScore = 42
	if got := QueryFingerprint(v); got != a {
		t.Errorf("policy-only variant fingerprint differs: %x != %x", got, a)
	}
}

// Equivalent conjunctions collide: fixed predicates reordered, IN-set
// values reordered, join coefficients spelled 0 vs 1.
func TestFingerprintCanonicalization(t *testing.T) {
	q := fpQuery()
	a := QueryFingerprint(q)
	v := q.Clone()
	v.Fixed[0], v.Fixed[1] = v.Fixed[1], v.Fixed[0]
	v.Fixed[0].Values = []string{"m", "f"}
	if got := QueryFingerprint(v); got != a {
		t.Errorf("reordered conjunction fingerprint differs: %x != %x", got, a)
	}

	j := &Query{
		Tables: []string{"a", "b"},
		Dims: []Dimension{{
			Kind: JoinBand,
			Left: ColumnRef{Table: "a", Column: "x"}, Right: ColumnRef{Table: "b", Column: "y"},
			Width: 100,
		}},
		Constraint: Constraint{Func: AggCount},
	}
	fj := QueryFingerprint(j)
	j2 := j.Clone()
	j2.Dims[0].LCoef, j2.Dims[0].RCoef = 1, 1
	if got := QueryFingerprint(j2); got != fj {
		t.Errorf("coef 0 vs 1 fingerprint differs: %x != %x", got, fj)
	}
}

// Every result-determining field must separate fingerprints.
func TestFingerprintSensitivity(t *testing.T) {
	base := QueryFingerprint(fpQuery())
	mutate := []struct {
		name string
		mut  func(*Query)
	}{
		{"table", func(q *Query) { q.Tables[0] = "people" }},
		{"dim-kind", func(q *Query) { q.Dims[0].Kind = SelectGE }},
		{"dim-col", func(q *Query) { q.Dims[0].Col.Column = "height" }},
		{"dim-bound", func(q *Query) { q.Dims[0].Bound = 31 }},
		{"dim-width", func(q *Query) { q.Dims[0].Width = 51 }},
		{"dim-order", func(q *Query) { q.Dims[0], q.Dims[1] = q.Dims[1], q.Dims[0] }},
		{"fixed-hi", func(q *Query) { q.Fixed[0].Hi = 101 }},
		{"fixed-values", func(q *Query) { q.Fixed[1].Values = []string{"f"} }},
		{"fixed-dropped", func(q *Query) { q.Fixed = q.Fixed[:1] }},
		{"agg-func", func(q *Query) { q.Constraint.Func = AggSum; q.Constraint.Attr = ColumnRef{Table: "users", Column: "age"} }},
		{"uda-name", func(q *Query) { q.Constraint.UserName = "revenue" }},
	}
	for _, m := range mutate {
		q := fpQuery()
		m.mut(q)
		if got := QueryFingerprint(q); got == base {
			t.Errorf("%s: mutated query fingerprint collides with base", m.name)
		}
	}
}

// Region extension separates distinct regions, tolerates float jitter
// below the quantum, and distinguishes the -1 closed-at-zero sentinel
// from a zero lower bound.
func TestFingerprintWithRegion(t *testing.T) {
	fp := QueryFingerprint(fpQuery())
	r1 := PrefixRegion([]float64{5, 10})
	r2 := PrefixRegion([]float64{5, 10.5})
	a, b := fp.WithRegion(r1), fp.WithRegion(r2)
	if a == b {
		t.Fatal("distinct regions collide")
	}
	jitter := PrefixRegion([]float64{5 + 1e-12, 10})
	if got := fp.WithRegion(jitter); got != a {
		t.Errorf("sub-quantum jitter separated regions: %x != %x", got, a)
	}
	sentinel := Region{{Lo: -1, Hi: 0}, {Lo: -1, Hi: 0}}
	zero := Region{{Lo: 0, Hi: 0}, {Lo: 0, Hi: 0}}
	if fp.WithRegion(sentinel) == fp.WithRegion(zero) {
		t.Error("closed-at-zero sentinel collides with open-at-zero interval")
	}
	if fp.WithRegion(Region{{Lo: -1, Hi: math.Inf(1)}}) == fp.WithRegion(Region{{Lo: -1, Hi: math.MaxFloat64}}) {
		t.Error("+Inf bound collides with MaxFloat64")
	}
}

// Mix folds generation words: different row counts must yield different
// keys (append-invalidation depends on it), same count the same key.
func TestFingerprintMix(t *testing.T) {
	fp := QueryFingerprint(fpQuery())
	if fp.Mix(1000) == fp.Mix(1001) {
		t.Error("row-count generations collide")
	}
	if fp.Mix(1000) != fp.Mix(1000) {
		t.Error("Mix is not deterministic")
	}
	if fp.Mix(1000) == fp {
		t.Error("Mix is a no-op")
	}
}
