package relq

import (
	"math/rand"
	"testing"
)

// These tests verify the region-algebra identities behind §5's
// incremental aggregate computation, independent of any data or
// engine: the recurrences hold as exact set identities over violation
// space, so OSP merging of the corresponding aggregates is exact.

// containsIn reports how many regions of rs contain v.
func containsIn(rs []Region, v []float64) int {
	n := 0
	for _, r := range rs {
		if r.Contains(v) {
			n++
		}
	}
	return n
}

// sampleAround yields violation vectors probing all boundary cases of
// a grid point's neighbourhood: bucket edges, interiors and the 0 face.
func sampleAround(u []int, step float64, rng *rand.Rand) [][]float64 {
	var out [][]float64
	// Deterministic probes per dimension: 0, each bucket edge below
	// u+1, and interiors.
	probes := make([][]float64, len(u))
	for i, ui := range u {
		var ps []float64
		for b := 0; b <= ui+1; b++ {
			ps = append(ps, float64(b)*step)        // edge (inclusive upper)
			ps = append(ps, float64(b)*step+step/3) // interior
		}
		ps = append(ps, 0)
		probes[i] = ps
	}
	// Random combinations (full cross product is too large for d=4).
	for trial := 0; trial < 500; trial++ {
		v := make([]float64, len(u))
		for i := range v {
			v[i] = probes[i][rng.Intn(len(probes[i]))]
		}
		out = append(out, v)
	}
	return out
}

// Eq. 17 as a set identity: O_i(u) = O_{i-1}(u) ⊎ O_i(u − e_{i-1}),
// disjointly, for all i = 2..d+1 (1-indexed as in the paper).
func TestRecurrenceRegionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(4)
		step := 1 + rng.Float64()*7
		u := make([]int, d)
		for i := range u {
			u[i] = rng.Intn(4)
		}
		for i := 2; i <= d+1; i++ {
			whole := SubQueryRegion(u, i, step)
			partA := SubQueryRegion(u, i-1, step)
			var parts []Region
			parts = append(parts, partA)
			if u[i-2] > 0 { // e_{i-1} decrements dimension i-1 (1-indexed)
				prev := append([]int(nil), u...)
				prev[i-2]--
				parts = append(parts, SubQueryRegion(prev, i, step))
			}
			for _, v := range sampleAround(u, step, rng) {
				want := 0
				if whole.Contains(v) {
					want = 1
				}
				if got := containsIn(parts, v); got != want {
					t.Fatalf("trial %d d=%d i=%d u=%v: point %v in %d parts, want %d",
						trial, d, i, u, v, got, want)
				}
			}
		}
	}
}

// Eq. 11 as a set identity: the whole query at u is the disjoint union
// of the d+1 sub-queries at the decomposition points.
func TestDecompositionPartitionGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(4)
		step := 1 + rng.Float64()*7
		u := make([]int, d)
		for i := range u {
			u[i] = 1 + rng.Intn(3)
		}
		whole := SubQueryRegion(u, d+1, step)
		// Eq. 11: O_{d+1}(u) = O_1(u) + O_2(u−e_1) + O_3(u−e_2) + ...
		// + O_{d+1}(u−e_d).
		var parts []Region
		parts = append(parts, SubQueryRegion(u, 1, step))
		for j := 2; j <= d+1; j++ {
			prev := append([]int(nil), u...)
			if prev[j-2] == 0 {
				continue // empty part
			}
			prev[j-2]--
			parts = append(parts, SubQueryRegion(prev, j, step))
		}
		for _, v := range sampleAround(u, step, rng) {
			want := 0
			if whole.Contains(v) {
				want = 1
			}
			if got := containsIn(parts, v); got != want {
				t.Fatalf("trial %d d=%d u=%v: point %v in %d parts, want %d",
					trial, d, u, v, got, want)
			}
		}
	}
}

// Cells partition every prefix: each violation vector inside the
// prefix region at u belongs to exactly one cell with coordinates
// <= u (componentwise).
func TestCellsPartitionPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	step := 4.0
	u := []int{2, 3}
	prefix := PrefixRegion([]float64{float64(u[0]) * step, float64(u[1]) * step})

	var cells []Region
	for a := 0; a <= u[0]; a++ {
		for b := 0; b <= u[1]; b++ {
			cells = append(cells, CellRegion([]int{a, b}, step))
		}
	}
	for _, v := range sampleAround(u, step, rng) {
		want := 0
		if prefix.Contains(v) {
			want = 1
		}
		if got := containsIn(cells, v); got != want {
			t.Fatalf("point %v in %d cells, want %d", v, got, want)
		}
	}
}
