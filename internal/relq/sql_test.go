package relq

import (
	"math"
	"strings"
	"testing"
)

func tpchQuery() *Query {
	return &Query{
		Tables: []string{"supplier", "part", "partsupp"},
		Fixed: []FixedPred{
			{Kind: FixedEquiJoin, Left: ColumnRef{"supplier", "s_suppkey"}, Right: ColumnRef{"partsupp", "ps_suppkey"}},
			{Kind: FixedEquiJoin, Left: ColumnRef{"part", "p_partkey"}, Right: ColumnRef{"partsupp", "ps_partkey"}},
			{Kind: FixedRange, Col: ColumnRef{"part", "p_size"}, Lo: 10, Hi: 10},
			{Kind: FixedStringIn, Col: ColumnRef{"part", "p_type"}, Values: []string{"SMALL BURNISHED STEEL"}},
		},
		Dims: []Dimension{
			{Kind: SelectLE, Col: ColumnRef{"part", "p_retailprice"}, Bound: 1000, Width: 1000},
			{Kind: SelectLE, Col: ColumnRef{"supplier", "s_acctbal"}, Bound: 2000, Width: 2000},
		},
		Constraint: Constraint{Func: AggSum, Attr: ColumnRef{"partsupp", "ps_availqty"}, Op: CmpGE, Target: 100000},
	}
}

func TestQueryToSQL(t *testing.T) {
	sql := tpchQuery().ToSQL()
	for _, want := range []string{
		"SELECT * FROM supplier, part, partsupp",
		"CONSTRAINT SUM(partsupp.ps_availqty) >= 100000",
		"(supplier.s_suppkey = partsupp.ps_suppkey) NOREFINE",
		"(part.p_size = 10) NOREFINE",
		"(part.p_type = 'SMALL BURNISHED STEEL') NOREFINE",
		"(part.p_retailprice <= 1000)",
		"(supplier.s_acctbal <= 2000)",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("ToSQL missing %q in:\n%s", want, sql)
		}
	}
}

func TestRefinedToSQL(t *testing.T) {
	q := tpchQuery()
	rq := &RefinedQuery{Base: q, Scores: []float64{10, 0}}
	sql := rq.ToSQL()
	if !strings.Contains(sql, "(part.p_retailprice <= 1100)") {
		t.Errorf("expected refined bound 1100 in:\n%s", sql)
	}
	if !strings.Contains(sql, "(supplier.s_acctbal <= 2000)") {
		t.Errorf("unrefined dimension should keep its bound:\n%s", sql)
	}
	if strings.Contains(sql, "CONSTRAINT") {
		t.Errorf("refined query should not carry CONSTRAINT clause:\n%s", sql)
	}
}

func TestRenderJoinAndEQDims(t *testing.T) {
	q := &Query{
		Tables: []string{"a", "b"},
		Dims: []Dimension{
			{Kind: JoinBand, Left: ColumnRef{"a", "x"}, Right: ColumnRef{"b", "x"}, Width: 100},
			{Kind: SelectEQ, Col: ColumnRef{"a", "s"}, Bound: 10, Width: 100},
		},
		Constraint: Constraint{Func: AggCount, Op: CmpEQ, Target: 5},
	}
	// Unrefined: join renders as equality, EQ as equality.
	sql := q.ToSQL()
	if !strings.Contains(sql, "(a.x = b.x)") || !strings.Contains(sql, "(a.s = 10)") {
		t.Errorf("unrefined render:\n%s", sql)
	}
	if !strings.Contains(sql, "COUNT(*)") {
		t.Errorf("COUNT(*) render:\n%s", sql)
	}
	// Refined: band forms.
	rq := &RefinedQuery{Base: q, Scores: []float64{4, 2}}
	sql = rq.ToSQL()
	if !strings.Contains(sql, "(ABS(a.x - b.x) <= 4)") {
		t.Errorf("join band render:\n%s", sql)
	}
	if !strings.Contains(sql, "(a.s BETWEEN 8 AND 12)") {
		t.Errorf("EQ band render:\n%s", sql)
	}
}

func TestRenderNonEquiCoefficients(t *testing.T) {
	q := &Query{
		Tables: []string{"a", "b"},
		Dims: []Dimension{
			{Kind: JoinBand, Left: ColumnRef{"a", "x"}, Right: ColumnRef{"b", "y"}, LCoef: 2, RCoef: 3, Width: 100},
		},
		Constraint: Constraint{Func: AggCount, Op: CmpEQ, Target: 5},
	}
	sql := q.ToSQL()
	if !strings.Contains(sql, "(2*a.x = 3*b.y)") {
		t.Errorf("coefficient render:\n%s", sql)
	}
}

func TestRenderFixedForms(t *testing.T) {
	inf := func(sign int) float64 { return math.Inf(sign) }
	cases := []struct {
		pred FixedPred
		want string
	}{
		{FixedPred{Kind: FixedRange, Col: ColumnRef{"t", "x"}, Lo: inf(-1), Hi: 5}, "(t.x <= 5)"},
		{FixedPred{Kind: FixedRange, Col: ColumnRef{"t", "x"}, Lo: 5, Hi: inf(1)}, "(t.x >= 5)"},
		{FixedPred{Kind: FixedRange, Col: ColumnRef{"t", "x"}, Lo: 1, Hi: 5}, "(t.x BETWEEN 1 AND 5)"},
		{FixedPred{Kind: FixedStringIn, Col: ColumnRef{"t", "s"}, Values: []string{"b", "a"}}, "(t.s IN ('a', 'b'))"},
		{FixedPred{Kind: FixedStringIn, Col: ColumnRef{"t", "s"}, Values: []string{"o'k"}}, "(t.s = 'o''k')"},
	}
	for _, c := range cases {
		got := renderFixed(&c.pred)
		if got != c.want {
			t.Errorf("renderFixed = %q, want %q", got, c.want)
		}
	}
}
