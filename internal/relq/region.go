package relq

import (
	"fmt"
	"math"
)

// ViolInterval is a half-open interval (Lo, Hi] of violation scores for
// one dimension. Violations are non-negative, so Lo = -1 with Hi = 0
// selects exactly the tuples satisfying the original predicate
// (violation 0), and Lo = -1 with Hi = h selects the whole prefix
// [0, h].
type ViolInterval struct {
	Lo, Hi float64
}

// Contains reports whether violation v lies in (Lo, Hi].
func (iv ViolInterval) Contains(v float64) bool { return v > iv.Lo && v <= iv.Hi }

// Region is a d-dimensional box of violation intervals; the engine
// evaluates tuples whose violation vector lies inside it. Grid queries
// are prefix regions; cell queries (§5.1.1) are unit boxes.
type Region []ViolInterval

// PrefixRegion returns the region of the full refined query at score
// vector scores: dimension i admits violations in [0, scores[i]].
func PrefixRegion(scores []float64) Region {
	r := make(Region, len(scores))
	for i, s := range scores {
		r[i] = ViolInterval{Lo: -1, Hi: s}
	}
	return r
}

// CellRegion returns the unit-cell region at grid point u with the given
// per-axis step: dimension i admits violations in
// ((u[i]-1)·step, u[i]·step], or exactly 0 when u[i] == 0 (§5.1.1: the
// cell sub-query O1 has lower bound one unit below the query on every
// dimension; at the origin the cell degenerates to the original query).
func CellRegion(u []int, step float64) Region {
	r := make(Region, len(u))
	for i, ui := range u {
		if ui == 0 {
			r[i] = ViolInterval{Lo: -1, Hi: 0}
		} else {
			r[i] = ViolInterval{Lo: float64(ui-1) * step, Hi: float64(ui) * step}
		}
	}
	return r
}

// SubQueryRegion returns the region of sub-query O_j (1-indexed,
// j = 1..d+1) at grid point u (Eqs. 5-8): dimensions 1..j-1 span their
// full prefix [0, u_i·step]; dimensions j..d span only the unit cell
// ((u_i-1)·step, u_i·step].
func SubQueryRegion(u []int, j int, step float64) Region {
	d := len(u)
	if j < 1 || j > d+1 {
		panic(fmt.Sprintf("relq: sub-query index %d out of range for d=%d", j, d))
	}
	r := make(Region, d)
	for i, ui := range u {
		if i < j-1 { // full prefix
			r[i] = ViolInterval{Lo: -1, Hi: float64(ui) * step}
		} else { // unit cell slice
			if ui == 0 {
				r[i] = ViolInterval{Lo: -1, Hi: 0}
			} else {
				r[i] = ViolInterval{Lo: float64(ui-1) * step, Hi: float64(ui) * step}
			}
		}
	}
	return r
}

// Contains reports whether the violation vector lies inside the region.
func (r Region) Contains(viol []float64) bool {
	for i, iv := range r {
		if !iv.Contains(viol[i]) {
			return false
		}
	}
	return true
}

// MaxViolation returns the per-dimension upper bounds — the loosest
// predicate bounds the engine must scan for.
func (r Region) MaxViolation() []float64 {
	out := make([]float64, len(r))
	for i, iv := range r {
		out[i] = iv.Hi
	}
	return out
}

// Empty reports whether any interval is vacuous.
func (r Region) Empty() bool {
	for _, iv := range r {
		if iv.Hi < 0 || iv.Hi <= iv.Lo && !(iv.Lo < 0) {
			return true
		}
	}
	return false
}

// String renders the region for diagnostics.
func (r Region) String() string {
	s := "["
	for i, iv := range r {
		if i > 0 {
			s += ", "
		}
		if iv.Lo < 0 {
			s += fmt.Sprintf("[0,%g]", iv.Hi)
		} else {
			s += fmt.Sprintf("(%g,%g]", iv.Lo, iv.Hi)
		}
	}
	return s + "]"
}

// ScoresAlmostEqual compares score vectors with a small tolerance;
// grid arithmetic accumulates float error.
func ScoresAlmostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])+math.Abs(b[i])) {
			return false
		}
	}
	return true
}
