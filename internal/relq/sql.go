package relq

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// RefinedQuery is a concrete refinement of a base query: the base plus
// the per-dimension refinement scores (PScore vector, Eq. 2) and the
// aggregate the refined query attains.
type RefinedQuery struct {
	Base *Query
	// Scores is the predicate refinement vector in PScore percent units.
	Scores []float64
	// QScore is the refinement score under the norm the search used
	// (Eq. 3).
	QScore float64
	// Aggregate is the actual aggregate value A_actual of the refined
	// query.
	Aggregate float64
	// Err is the aggregate error Err_A (Eq. 4) w.r.t. the constraint
	// target.
	Err float64
}

// ToSQL renders the refined query in the paper's SQL dialect, with the
// refined predicate bounds substituted.
func (rq *RefinedQuery) ToSQL() string { return renderSQL(rq.Base, rq.Scores) }

// ToSQL renders the original (unrefined) query, including the
// CONSTRAINT clause and NOREFINE markers — the inverse of
// sqlparse.Parse.
func (q *Query) ToSQL() string { return renderSQL(q, nil) }

func renderSQL(q *Query, scores []float64) string {
	var b strings.Builder
	b.WriteString("SELECT * FROM ")
	b.WriteString(strings.Join(q.Tables, ", "))

	// CONSTRAINT clause (only for the original query form).
	if scores == nil {
		c := q.Constraint
		b.WriteString(" CONSTRAINT ")
		if c.Func == AggUser {
			b.WriteString(c.UserName)
		} else {
			b.WriteString(c.Func.String())
		}
		b.WriteString("(")
		if c.Func == AggCount && c.Attr.Column == "" {
			b.WriteString("*")
		} else {
			b.WriteString(c.Attr.String())
		}
		b.WriteString(") ")
		b.WriteString(c.Op.String())
		b.WriteString(" ")
		b.WriteString(formatNum(c.Target))
	}

	var preds []string
	for i := range q.Fixed {
		preds = append(preds, renderFixed(&q.Fixed[i])+" NOREFINE")
	}
	for i := range q.Dims {
		score := 0.0
		if scores != nil {
			score = scores[i]
		}
		preds = append(preds, renderDim(&q.Dims[i], score))
	}
	if len(preds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(preds, " AND "))
	}
	return b.String()
}

func renderFixed(p *FixedPred) string {
	switch p.Kind {
	case FixedRange:
		loInf, hiInf := math.IsInf(p.Lo, -1), math.IsInf(p.Hi, 1)
		switch {
		case loInf && hiInf:
			return fmt.Sprintf("(%s IS NOT NULL)", p.Col)
		case loInf:
			return fmt.Sprintf("(%s <= %s)", p.Col, formatNum(p.Hi))
		case hiInf:
			return fmt.Sprintf("(%s >= %s)", p.Col, formatNum(p.Lo))
		case p.Lo == p.Hi:
			return fmt.Sprintf("(%s = %s)", p.Col, formatNum(p.Lo))
		default:
			return fmt.Sprintf("(%s BETWEEN %s AND %s)", p.Col, formatNum(p.Lo), formatNum(p.Hi))
		}
	case FixedEquiJoin:
		l, r := joinSide(p.Left, p.LCoef), joinSide(p.Right, p.RCoef)
		return fmt.Sprintf("(%s = %s)", l, r)
	case FixedStringIn:
		vals := append([]string(nil), p.Values...)
		sort.Strings(vals)
		quoted := make([]string, len(vals))
		for i, v := range vals {
			quoted[i] = "'" + strings.ReplaceAll(v, "'", "''") + "'"
		}
		if len(quoted) == 1 {
			return fmt.Sprintf("(%s = %s)", p.Col, quoted[0])
		}
		return fmt.Sprintf("(%s IN (%s))", p.Col, strings.Join(quoted, ", "))
	default:
		return "(?)"
	}
}

func renderDim(d *Dimension, score float64) string {
	switch d.Kind {
	case SelectLE:
		return fmt.Sprintf("(%s <= %s)", d.Col, formatNum(d.BoundAt(score)))
	case SelectGE:
		return fmt.Sprintf("(%s >= %s)", d.Col, formatNum(d.BoundAt(score)))
	case SelectEQ:
		band := d.BoundAt(score)
		if band == 0 {
			return fmt.Sprintf("(%s = %s)", d.Col, formatNum(d.Bound))
		}
		return fmt.Sprintf("(%s BETWEEN %s AND %s)", d.Col,
			formatNum(d.Bound-band), formatNum(d.Bound+band))
	case JoinBand:
		l, r := joinSide(d.Left, d.LCoef), joinSide(d.Right, d.RCoef)
		band := d.BoundAt(score)
		if band == 0 {
			return fmt.Sprintf("(%s = %s)", l, r)
		}
		return fmt.Sprintf("(ABS(%s - %s) <= %s)", l, r, formatNum(band))
	default:
		return "(?)"
	}
}

func joinSide(c ColumnRef, coef float64) string {
	if coef == 0 || coef == 1 {
		return c.String()
	}
	return formatNum(coef) + "*" + c.String()
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 10, 64)
}
