// Package relq defines the relational query model shared by the SQL
// parser, the execution engine, the ACQUIRE core and the baselines.
//
// It encodes §2.2 of the paper: every predicate is a monotonic predicate
// function PF plus an interval PI of acceptable values. Range predicates
// are split into two one-sided predicates so each side refines
// independently; join predicates use a distance function Δ(PF1, PF2)
// with interval (0,0) and PScore denominator 100.
//
// A Query separates predicates into:
//
//   - Fixed predicates (NOREFINE, §2.1): hard filters never refined.
//   - Dimensions: refinable predicates; dimension i is axis i of the
//     refined space RS(Q) (§4). Each dimension defines a non-negative
//     violation function over result tuples — the tuple-level PScore of
//     Eq. 1 — where violation 0 means the tuple satisfies the original
//     predicate.
package relq

import (
	"fmt"
	"math"
	"strings"
)

// DimKind discriminates the refinable predicate shapes.
type DimKind uint8

const (
	// SelectLE is a one-sided upper-bound predicate: v <= Bound,
	// refined by raising the bound (e.g. p_retailprice < 1000).
	SelectLE DimKind = iota + 1
	// SelectGE is a one-sided lower-bound predicate: v >= Bound,
	// refined by lowering the bound (e.g. s_acctbal > 2000).
	SelectGE
	// SelectEQ is an equality predicate on a numeric attribute:
	// v = Bound, refined into |v - Bound| <= band. Per §2.3 the PScore
	// denominator for degenerate intervals is 100, so one unit of
	// refinement is one attribute unit of band.
	SelectEQ
	// JoinBand is a (possibly non-equi) join predicate:
	// |LCoef·L - RCoef·R| <= Base, refined by widening the band. An
	// equi-join has Base 0. PScore denominator is 100 (§2.3).
	JoinBand
)

// String names the kind.
func (k DimKind) String() string {
	switch k {
	case SelectLE:
		return "select<="
	case SelectGE:
		return "select>="
	case SelectEQ:
		return "select="
	case JoinBand:
		return "join"
	default:
		return "invalid"
	}
}

// ColumnRef names a column of a specific table.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders "table.column".
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// Dimension is one refinable predicate — one axis of the refined space.
//
// The violation of a tuple τ along the dimension (tuple-level PScore,
// Eq. 1) is, by kind:
//
//	SelectLE:  max(0, (v - Bound)) / Width · 100
//	SelectGE:  max(0, (Bound - v)) / Width · 100
//	SelectEQ:  |v - Bound| / Width · 100            (Width = 100)
//	JoinBand:  max(0, |L' - R'| - Base) / Width · 100 (Width = 100)
//
// where v is the tuple's value of Col, and L' = LCoef·L, R' = RCoef·R.
type Dimension struct {
	Kind DimKind

	// Col is the predicate attribute for the Select* kinds.
	Col ColumnRef
	// Bound is the original predicate bound for the Select* kinds.
	Bound float64

	// Left/Right identify the join attributes for JoinBand.
	Left, Right ColumnRef
	// LCoef and RCoef scale the join sides (non-equi joins like
	// 2·A.x = 3·B.x); both default to 1.
	LCoef, RCoef float64
	// Base is the original band width for JoinBand (0 for equi-joins).
	Base float64

	// Width is the PScore denominator: the original predicate interval
	// width for one-sided predicates, 100 for SelectEQ and JoinBand
	// (§2.3: "For equality join predicates, the denominator is set to
	// 100"; degenerate select intervals are treated identically).
	Width float64

	// Name is an optional human label used in rendered SQL and reports.
	Name string

	// MaxScore optionally caps the refinement of this dimension (§7.1
	// "users can also supply maximum refinement limits on predicates").
	// Zero means unlimited.
	MaxScore float64

	// Weight is the dimension's weight under weighted norms (§7.1).
	// Zero is interpreted as 1.
	Weight float64
}

// Validate checks internal consistency.
func (d *Dimension) Validate() error {
	switch d.Kind {
	case SelectLE, SelectGE, SelectEQ:
		if d.Col.Table == "" || d.Col.Column == "" {
			return fmt.Errorf("relq: %s dimension missing column", d.Kind)
		}
	case JoinBand:
		if d.Left.Table == "" || d.Right.Table == "" {
			return fmt.Errorf("relq: join dimension missing sides")
		}
		if d.Base < 0 {
			return fmt.Errorf("relq: join dimension has negative base band %v", d.Base)
		}
	default:
		return fmt.Errorf("relq: invalid dimension kind %d", d.Kind)
	}
	if d.Width <= 0 {
		return fmt.Errorf("relq: dimension %s has non-positive width %v", d.label(), d.Width)
	}
	if d.MaxScore < 0 {
		return fmt.Errorf("relq: dimension %s has negative MaxScore", d.label())
	}
	if d.Weight < 0 {
		return fmt.Errorf("relq: dimension %s has negative weight", d.label())
	}
	return nil
}

func (d *Dimension) label() string {
	if d.Name != "" {
		return d.Name
	}
	if d.Kind == JoinBand {
		return d.Left.String() + "~" + d.Right.String()
	}
	return d.Col.String()
}

// Label returns a human-readable identifier for the dimension.
func (d *Dimension) Label() string { return d.label() }

// EffectiveWeight returns the norm weight, defaulting to 1.
func (d *Dimension) EffectiveWeight() float64 {
	if d.Weight == 0 {
		return 1
	}
	return d.Weight
}

// Violation computes the tuple-level PScore for a scalar select value.
// Only valid for the Select* kinds.
func (d *Dimension) Violation(v float64) float64 {
	switch d.Kind {
	case SelectLE:
		if v <= d.Bound {
			return 0
		}
		return (v - d.Bound) * (100 / d.Width)
	case SelectGE:
		if v >= d.Bound {
			return 0
		}
		return (d.Bound - v) * (100 / d.Width)
	case SelectEQ:
		return math.Abs(v-d.Bound) * (100 / d.Width)
	default:
		panic("relq: Violation on join dimension; use JoinViolation")
	}
}

// JoinViolation computes the tuple-pair-level PScore for a join
// dimension given the two raw side values.
func (d *Dimension) JoinViolation(l, r float64) float64 {
	if d.Kind != JoinBand {
		panic("relq: JoinViolation on select dimension")
	}
	lc, rc := d.LCoef, d.RCoef
	if lc == 0 {
		lc = 1
	}
	if rc == 0 {
		rc = 1
	}
	delta := math.Abs(lc*l - rc*r)
	if delta <= d.Base {
		return 0
	}
	return (delta - d.Base) * (100 / d.Width)
}

// BoundAt returns the concrete predicate bound after refining the
// dimension by score (in PScore percent units). For SelectEQ and
// JoinBand it returns the half-band width.
func (d *Dimension) BoundAt(score float64) float64 {
	switch d.Kind {
	case SelectLE:
		return d.Bound + score*(d.Width/100)
	case SelectGE:
		return d.Bound - score*(d.Width/100)
	case SelectEQ:
		return score * (d.Width / 100) // band around Bound
	case JoinBand:
		return d.Base + score*(d.Width/100)
	default:
		panic("relq: invalid dimension kind")
	}
}

// FixedKind discriminates the non-refinable predicate shapes.
type FixedKind uint8

const (
	// FixedRange constrains Lo <= v <= Hi (either side may be ±Inf).
	FixedRange FixedKind = iota + 1
	// FixedEquiJoin constrains L == R (after coefficients).
	FixedEquiJoin
	// FixedStringIn constrains a TEXT column to a value set. The paper
	// scopes refinement to numeric predicates (§2.2); string predicates
	// appear only as NOREFINE filters (Example 1's gender/interests).
	FixedStringIn
)

// FixedPred is a NOREFINE predicate: a hard filter applied verbatim.
type FixedPred struct {
	Kind FixedKind

	Col    ColumnRef // FixedRange, FixedStringIn
	Lo, Hi float64   // FixedRange

	Left, Right  ColumnRef // FixedEquiJoin
	LCoef, RCoef float64   // FixedEquiJoin; 0 means 1

	Values []string // FixedStringIn
}

// Validate checks internal consistency.
func (p *FixedPred) Validate() error {
	switch p.Kind {
	case FixedRange:
		if p.Col.Table == "" || p.Col.Column == "" {
			return fmt.Errorf("relq: fixed range missing column")
		}
		if p.Lo > p.Hi {
			return fmt.Errorf("relq: fixed range on %s has Lo %v > Hi %v", p.Col, p.Lo, p.Hi)
		}
	case FixedEquiJoin:
		if p.Left.Table == "" || p.Right.Table == "" {
			return fmt.Errorf("relq: fixed join missing sides")
		}
	case FixedStringIn:
		if p.Col.Table == "" || len(p.Values) == 0 {
			return fmt.Errorf("relq: fixed string-in predicate malformed")
		}
	default:
		return fmt.Errorf("relq: invalid fixed predicate kind %d", p.Kind)
	}
	return nil
}

// AggFunc enumerates the aggregate functions. All satisfy the optimal
// substructure property (§2.6); AVG decomposes into SUM and COUNT.
type AggFunc uint8

const (
	// AggCount is COUNT(*) or COUNT(attr).
	AggCount AggFunc = iota + 1
	// AggSum is SUM(attr).
	AggSum
	// AggMin is MIN(attr).
	AggMin
	// AggMax is MAX(attr).
	AggMax
	// AggAvg is AVG(attr), decomposed into SUM/COUNT.
	AggAvg
	// AggUser is a registered user-defined OSP aggregate.
	AggUser
)

// String names the function as it appears in SQL.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	case AggUser:
		return "UDA"
	default:
		return "INVALID"
	}
}

// CmpOp is the comparison operator of the aggregate constraint. The
// paper restricts processing to =, >= and > (expansion); <= and < name
// the contraction problem handled by the §7.2 extension.
type CmpOp uint8

const (
	// CmpEQ is the = constraint.
	CmpEQ CmpOp = iota + 1
	// CmpGE is the >= constraint.
	CmpGE
	// CmpGT is the > constraint.
	CmpGT
	// CmpLE is the <= constraint (contraction, §7.2).
	CmpLE
	// CmpLT is the < constraint (contraction, §7.2).
	CmpLT
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEQ:
		return "="
	case CmpGE:
		return ">="
	case CmpGT:
		return ">"
	case CmpLE:
		return "<="
	case CmpLT:
		return "<"
	default:
		return "?"
	}
}

// Constraint is the CONSTRAINT clause: AGG(attr) Op Target.
type Constraint struct {
	Func AggFunc
	// Attr is the aggregate attribute; zero value for COUNT(*).
	Attr ColumnRef
	// UserName names the UDA when Func == AggUser.
	UserName string
	Op       CmpOp
	Target   float64
}

// Validate checks internal consistency.
func (c *Constraint) Validate() error {
	switch c.Func {
	case AggCount:
	case AggSum, AggMin, AggMax, AggAvg:
		if c.Attr.Table == "" || c.Attr.Column == "" {
			return fmt.Errorf("relq: %s constraint requires an attribute", c.Func)
		}
	case AggUser:
		if c.UserName == "" {
			return fmt.Errorf("relq: UDA constraint requires a name")
		}
		if c.Attr.Table == "" || c.Attr.Column == "" {
			return fmt.Errorf("relq: UDA constraint requires an attribute")
		}
	default:
		return fmt.Errorf("relq: invalid aggregate function")
	}
	switch c.Op {
	case CmpEQ, CmpGE, CmpGT, CmpLE, CmpLT:
	default:
		return fmt.Errorf("relq: invalid constraint operator")
	}
	if c.Target < 0 {
		return fmt.Errorf("relq: constraint target must be non-negative, got %v", c.Target)
	}
	return nil
}

// Query is an aggregation constrained query: conjunctive
// select-project-join over Tables with NOREFINE predicates Fixed,
// refinable Dimensions, and an aggregate Constraint.
type Query struct {
	Tables     []string
	Fixed      []FixedPred
	Dims       []Dimension
	Constraint Constraint
}

// Validate checks the whole query.
func (q *Query) Validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("relq: query has no tables")
	}
	seen := make(map[string]struct{}, len(q.Tables))
	for _, t := range q.Tables {
		key := strings.ToLower(t)
		if _, dup := seen[key]; dup {
			return fmt.Errorf("relq: duplicate table %q (self-joins are not supported)", t)
		}
		seen[key] = struct{}{}
	}
	for i := range q.Fixed {
		if err := q.Fixed[i].Validate(); err != nil {
			return fmt.Errorf("fixed predicate %d: %w", i, err)
		}
	}
	for i := range q.Dims {
		if err := q.Dims[i].Validate(); err != nil {
			return fmt.Errorf("dimension %d: %w", i, err)
		}
	}
	if err := q.Constraint.Validate(); err != nil {
		return err
	}
	return nil
}

// NumDims returns d, the dimensionality of the refined space.
func (q *Query) NumDims() int { return len(q.Dims) }

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	out := &Query{
		Tables:     append([]string(nil), q.Tables...),
		Constraint: q.Constraint,
	}
	out.Fixed = make([]FixedPred, len(q.Fixed))
	copy(out.Fixed, q.Fixed)
	for i := range out.Fixed {
		out.Fixed[i].Values = append([]string(nil), q.Fixed[i].Values...)
	}
	out.Dims = append([]Dimension(nil), q.Dims...)
	return out
}
