package relq

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func dimLE(table, col string, bound, width float64) Dimension {
	return Dimension{Kind: SelectLE, Col: ColumnRef{table, col}, Bound: bound, Width: width}
}

func dimGE(table, col string, bound, width float64) Dimension {
	return Dimension{Kind: SelectGE, Col: ColumnRef{table, col}, Bound: bound, Width: width}
}

func TestDimensionViolationLE(t *testing.T) {
	d := dimLE("t", "x", 50, 50) // x <= 50, domain width 50
	cases := []struct {
		v    float64
		want float64
	}{
		{0, 0}, {50, 0}, {-10, 0}, {60, 20}, {75, 50}, {100, 100},
	}
	for _, c := range cases {
		if got := d.Violation(c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Violation(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestDimensionViolationGE(t *testing.T) {
	d := dimGE("t", "x", 100, 200) // x >= 100, width 200
	cases := []struct {
		v    float64
		want float64
	}{
		{100, 0}, {300, 0}, {80, 10}, {0, 50},
	}
	for _, c := range cases {
		if got := d.Violation(c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Violation(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestDimensionViolationEQ(t *testing.T) {
	d := Dimension{Kind: SelectEQ, Col: ColumnRef{"t", "x"}, Bound: 10, Width: 100}
	// §2.3: denominator 100 means one unit of band = one score unit.
	if got := d.Violation(10); got != 0 {
		t.Errorf("Violation(10) = %v", got)
	}
	if got := d.Violation(13); got != 3 {
		t.Errorf("Violation(13) = %v, want 3", got)
	}
	if got := d.Violation(7); got != 3 {
		t.Errorf("Violation(7) = %v, want 3", got)
	}
}

func TestJoinViolation(t *testing.T) {
	d := Dimension{Kind: JoinBand, Left: ColumnRef{"a", "x"}, Right: ColumnRef{"b", "x"}, Width: 100}
	if got := d.JoinViolation(5, 5); got != 0 {
		t.Errorf("equal keys: %v", got)
	}
	if got := d.JoinViolation(5, 12); got != 7 {
		t.Errorf("|5-12| = %v, want 7", got)
	}
	// Non-equi: |2x - 3y| with base band 1.
	d2 := Dimension{Kind: JoinBand, Left: ColumnRef{"a", "x"}, Right: ColumnRef{"b", "y"},
		LCoef: 2, RCoef: 3, Base: 1, Width: 100}
	if got := d2.JoinViolation(3, 2); got != 0 { // |6-6| = 0 <= 1
		t.Errorf("non-equi inside band: %v", got)
	}
	if got := d2.JoinViolation(5, 2); got != 3 { // |10-6|-1 = 3
		t.Errorf("non-equi outside band: %v, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Violation on join dim should panic")
		}
	}()
	d.Violation(1)
}

func TestJoinViolationPanicsOnSelect(t *testing.T) {
	d := dimLE("t", "x", 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("JoinViolation on select dim should panic")
		}
	}()
	d.JoinViolation(1, 2)
}

func TestBoundAt(t *testing.T) {
	le := dimLE("t", "x", 50, 50)
	if got := le.BoundAt(20); got != 60 { // +20% of width 50
		t.Errorf("LE BoundAt(20) = %v, want 60", got)
	}
	ge := dimGE("t", "x", 100, 200)
	if got := ge.BoundAt(10); got != 80 {
		t.Errorf("GE BoundAt(10) = %v, want 80", got)
	}
	eq := Dimension{Kind: SelectEQ, Col: ColumnRef{"t", "x"}, Bound: 10, Width: 100}
	if got := eq.BoundAt(3); got != 3 {
		t.Errorf("EQ BoundAt(3) = %v, want band 3", got)
	}
	jn := Dimension{Kind: JoinBand, Left: ColumnRef{"a", "x"}, Right: ColumnRef{"b", "x"}, Width: 100}
	if got := jn.BoundAt(7); got != 7 {
		t.Errorf("Join BoundAt(7) = %v, want 7", got)
	}
}

// Property: violation is exactly 0 iff the tuple satisfies the original
// predicate, and BoundAt(Violation(v)) always re-admits v.
func TestViolationBoundAtConsistency(t *testing.T) {
	f := func(bound, width, v float64) bool {
		width = math.Abs(width)
		if width < 1e-6 || width > 1e9 || math.Abs(bound) > 1e9 || math.Abs(v) > 1e9 {
			return true
		}
		d := dimLE("t", "x", bound, width)
		viol := d.Violation(v)
		if viol < 0 {
			return false
		}
		if (v <= bound) != (viol == 0) {
			return false
		}
		// Refining by the violation must re-admit the tuple.
		return v <= d.BoundAt(viol)+1e-9*math.Max(1, math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDimensionValidate(t *testing.T) {
	bad := []Dimension{
		{Kind: SelectLE, Width: 1},                                       // missing column
		{Kind: JoinBand, Width: 1},                                       // missing sides
		{Kind: SelectLE, Col: ColumnRef{"t", "x"}, Width: 0},             // zero width
		{Kind: DimKind(99), Width: 1},                                    // bad kind
		{Kind: SelectLE, Col: ColumnRef{"t", "x"}, Width: 1, Weight: -1}, // negative weight
		{Kind: SelectLE, Col: ColumnRef{"t", "x"}, Width: 1, MaxScore: -1},
		{Kind: JoinBand, Left: ColumnRef{"a", "x"}, Right: ColumnRef{"b", "x"}, Base: -1, Width: 1},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("dimension %d: expected validation error", i)
		}
	}
	good := dimLE("t", "x", 5, 10)
	if err := good.Validate(); err != nil {
		t.Errorf("valid dimension rejected: %v", err)
	}
}

func TestFixedPredValidate(t *testing.T) {
	bad := []FixedPred{
		{Kind: FixedRange},
		{Kind: FixedRange, Col: ColumnRef{"t", "x"}, Lo: 5, Hi: 1},
		{Kind: FixedEquiJoin},
		{Kind: FixedStringIn, Col: ColumnRef{"t", "x"}},
		{Kind: FixedKind(99)},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("fixed %d: expected validation error", i)
		}
	}
}

func TestConstraintValidate(t *testing.T) {
	bad := []Constraint{
		{Func: AggSum, Op: CmpEQ, Target: 10},                // no attr
		{Func: AggCount, Op: CmpOp(99), Target: 10},          // bad op
		{Func: AggCount, Op: CmpEQ, Target: -1},              // negative target
		{Func: AggUser, Op: CmpEQ, Target: 1},                // no UDA name
		{Func: AggUser, UserName: "f", Op: CmpEQ, Target: 1}, // no attr
		{Func: AggFunc(99), Op: CmpEQ, Target: 1},            // bad func
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("constraint %d: expected validation error", i)
		}
	}
	ok := Constraint{Func: AggCount, Op: CmpEQ, Target: 100}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid COUNT(*) constraint rejected: %v", err)
	}
}

func TestQueryValidateAndClone(t *testing.T) {
	q := &Query{
		Tables: []string{"part", "partsupp"},
		Fixed: []FixedPred{
			{Kind: FixedEquiJoin, Left: ColumnRef{"part", "p_partkey"}, Right: ColumnRef{"partsupp", "ps_partkey"}},
			{Kind: FixedStringIn, Col: ColumnRef{"part", "p_type"}, Values: []string{"STEEL"}},
		},
		Dims: []Dimension{
			dimLE("part", "p_retailprice", 1000, 1000),
		},
		Constraint: Constraint{Func: AggSum, Attr: ColumnRef{"partsupp", "ps_availqty"}, Op: CmpGE, Target: 1e5},
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dup := &Query{Tables: []string{"a", "A"}, Constraint: q.Constraint}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate tables: expected error")
	}
	empty := &Query{Constraint: q.Constraint}
	if err := empty.Validate(); err == nil {
		t.Error("no tables: expected error")
	}

	c := q.Clone()
	c.Dims[0].Bound = 5
	c.Fixed[1].Values[0] = "IRON"
	c.Tables[0] = "x"
	if q.Dims[0].Bound != 1000 || q.Fixed[1].Values[0] != "STEEL" || q.Tables[0] != "part" {
		t.Error("Clone is not deep")
	}
}

func TestRegionSemantics(t *testing.T) {
	r := PrefixRegion([]float64{10, 20})
	if !r.Contains([]float64{0, 0}) || !r.Contains([]float64{10, 20}) {
		t.Error("prefix region should contain origin and corner")
	}
	if r.Contains([]float64{10.5, 0}) {
		t.Error("prefix region should exclude beyond corner")
	}

	cell := CellRegion([]int{2, 0}, 5)
	if !cell.Contains([]float64{7, 0}) {
		t.Error("cell should contain (7, 0)")
	}
	if cell.Contains([]float64{5, 0}) {
		t.Error("cell is half-open: violation 5 belongs to cell u=1")
	}
	if cell.Contains([]float64{7, 0.1}) {
		t.Error("dimension at u=0 admits only violation 0")
	}
	if !cell.Contains([]float64{10, 0}) {
		t.Error("upper edge inclusive")
	}
}

func TestSubQueryRegion(t *testing.T) {
	u := []int{3, 2}
	step := 5.0
	// O1 = cell: both dims unit slices.
	o1 := SubQueryRegion(u, 1, step)
	if o1[0].Lo != 10 || o1[0].Hi != 15 || o1[1].Lo != 5 || o1[1].Hi != 10 {
		t.Errorf("O1 = %v", o1)
	}
	// O2 = pillar: dim 1 full prefix, dim 2 unit slice.
	o2 := SubQueryRegion(u, 2, step)
	if o2[0].Lo != -1 || o2[0].Hi != 15 || o2[1].Lo != 5 || o2[1].Hi != 10 {
		t.Errorf("O2 = %v", o2)
	}
	// O3 = whole query.
	o3 := SubQueryRegion(u, 3, step)
	if o3[0].Lo != -1 || o3[0].Hi != 15 || o3[1].Lo != -1 || o3[1].Hi != 10 {
		t.Errorf("O3 = %v", o3)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range sub-query index should panic")
		}
	}()
	SubQueryRegion(u, 4, step)
}

// Property (§5.1.1): the d+1 sub-queries partition the prefix region —
// every violation vector inside the prefix belongs to exactly one
// sub-query, provided it is inside the "upper slab" of some dimension...
// Precisely: O_{d+1} at u = union of O_j regions at the decomposition
// points of Eq. 11. Validated here for d=2 over a grid of sample points.
func TestDecompositionPartition2D(t *testing.T) {
	u := []int{3, 2}
	step := 5.0
	whole := SubQueryRegion(u, 3, step) // O3 = entire query at u
	// Eq. 9: O3(u1,u2) = O1(u1,u2) + O2(u1-1,u2) + O3(u1,u2-1).
	parts := []Region{
		SubQueryRegion([]int{3, 2}, 1, step),
		SubQueryRegion([]int{2, 2}, 2, step),
		SubQueryRegion([]int{3, 1}, 3, step),
	}
	for v1 := 0.0; v1 <= 16; v1 += 0.5 {
		for v2 := 0.0; v2 <= 11; v2 += 0.5 {
			v := []float64{v1, v2}
			in := 0
			for _, p := range parts {
				if p.Contains(v) {
					in++
				}
			}
			want := 0
			if whole.Contains(v) {
				want = 1
			}
			if in != want {
				t.Fatalf("point %v: in %d parts, want %d", v, in, want)
			}
		}
	}
}

func TestScoresAlmostEqual(t *testing.T) {
	if !ScoresAlmostEqual([]float64{1, 2}, []float64{1, 2 + 1e-12}) {
		t.Error("tiny difference should compare equal")
	}
	if ScoresAlmostEqual([]float64{1}, []float64{1, 2}) {
		t.Error("length mismatch")
	}
	if ScoresAlmostEqual([]float64{1}, []float64{2}) {
		t.Error("different values")
	}
}

func TestRegionEmptyAndString(t *testing.T) {
	if PrefixRegion([]float64{1}).Empty() {
		t.Error("prefix region not empty")
	}
	if !(Region{{Lo: 5, Hi: 5}}).Empty() {
		t.Error("degenerate positive interval is empty")
	}
	s := Region{{Lo: -1, Hi: 3}, {Lo: 2, Hi: 4}}.String()
	if !strings.Contains(s, "[0,3]") || !strings.Contains(s, "(2,4]") {
		t.Errorf("String = %q", s)
	}
}
