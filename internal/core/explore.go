package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"acquire/internal/agg"
	"acquire/internal/relq"
)

// explorer is the Explore phase (§5): it computes the aggregate of each
// grid query, either incrementally (Algorithm 3) or naively (whole-query
// re-execution, the ablation baseline).
//
// The driver feeds it one Expand layer at a time: prefetch dispatches
// the layer's unique cell sub-queries (mutually disjoint, so the
// evaluation layer may execute them concurrently) as one batch, then
// the per-point Eq. 17 recurrence folds serially from the cache — the
// fold order, and therefore the float association of every partial, is
// identical to the fully serial search.
type explorer struct {
	engine Evaluator
	q      *relq.Query
	sp     *space
	spec   agg.Spec

	incremental bool
	// store maps grid point -> the d+1 sub-query partials
	// [O1 (cell), O2 (pillar), ..., Od+1 (whole query)] of §5.1.1.
	store *pstore[[]agg.Partial]
	// cache maps grid point -> the prefetched batch result for the
	// point: its cell partial in incremental mode, its whole-query
	// partial in naive mode. Entries are consumed (deleted) on first
	// use; the store memoizes everything that must persist.
	cache *pstore[agg.Partial]

	// cellQueries counts evaluation-layer round trips (cell executions
	// in incremental mode, whole-query executions in naive mode).
	// Atomic: sessions may run searches concurrently and the snapshot
	// in Result must be race-free.
	cellQueries atomic.Int64
}

func newExplorer(e Evaluator, q *relq.Query, sp *space, spec agg.Spec, incremental bool) *explorer {
	keyer := newPointKeyer(sp)
	return &explorer{
		engine:      e,
		q:           q,
		sp:          sp,
		spec:        spec,
		incremental: incremental,
		store:       newPstore[[]agg.Partial](keyer),
		cache:       newPstore[agg.Partial](keyer),
	}
}

// prefetch dispatches the evaluation-layer queries of an Expand layer
// as one batch: the cell sub-queries in incremental mode, the whole
// refined queries in naive mode. Points whose result is already stored
// or cached are skipped, so every region is fetched at most once —
// exactly the executions the serial search would have issued, just
// batched. Returns the batch width (number of regions dispatched).
func (x *explorer) prefetch(ctx context.Context, pts []point) (int, error) {
	pend := make([]point, 0, len(pts))
	regions := make([]relq.Region, 0, len(pts))
	for _, p := range pts {
		if x.incremental {
			if _, ok := x.store.get(p); ok {
				continue
			}
		}
		if _, ok := x.cache.get(p); ok {
			continue
		}
		pend = append(pend, p)
		if x.incremental {
			regions = append(regions, relq.CellRegion(p, x.sp.step))
		} else {
			regions = append(regions, relq.PrefixRegion(p.scores(x.sp.step)))
		}
	}
	if len(regions) == 0 {
		return 0, nil
	}
	parts, err := x.engine.AggregateBatch(ctx, x.q, regions)
	if err != nil {
		return 0, err
	}
	x.cellQueries.Add(int64(len(regions)))
	for i, p := range pend {
		x.cache.put(p, parts[i])
	}
	return len(regions), nil
}

// aggregate returns the aggregate partial of the whole refined query at
// grid point p.
func (x *explorer) aggregate(ctx context.Context, p point) (agg.Partial, error) {
	if !x.incremental {
		if part, ok := x.cache.get(p); ok {
			x.cache.del(p)
			return part, nil
		}
		x.cellQueries.Add(1)
		return x.evalOne(ctx, relq.PrefixRegion(p.scores(x.sp.step)))
	}
	parts, err := x.computeAll(ctx, p)
	if err != nil {
		return agg.Zero(), err
	}
	return parts[x.sp.dims], nil
}

// evalOne executes a single region through the batched entry point so
// cancellation reaches every evaluation-layer round trip.
func (x *explorer) evalOne(ctx context.Context, r relq.Region) (agg.Partial, error) {
	parts, err := x.engine.AggregateBatch(ctx, x.q, []relq.Region{r})
	if err != nil {
		return agg.Zero(), err
	}
	return parts[0], nil
}

// cellPartial returns the cell sub-query O1 at p, consuming the
// prefetched cache when possible and falling back to an on-demand
// execution otherwise.
func (x *explorer) cellPartial(ctx context.Context, p point) (agg.Partial, error) {
	if part, ok := x.cache.get(p); ok {
		x.cache.del(p)
		return part, nil
	}
	x.cellQueries.Add(1)
	return x.evalOne(ctx, relq.CellRegion(p, x.sp.step))
}

// computeAll is Algorithm 3 (ComputeAggregate): execute only the cell
// sub-query O1, then fold the recurrence of Eq. 17,
//
//	O_i(u) = O_{i-1}(u) + O_i(u - e_{i-1}),
//
// reading O_i(u - e_{i-1}) from the store. The Expand phase guarantees
// (Theorem 3) every contained grid query was explored first; points
// reachable only through ties under exotic norms fall back to on-demand
// computation, preserving correctness.
//
// The traversal is an explicit worklist, not recursion: predecessor
// chains are as long as the grid diagonal, and unbounded recursion
// overflows the stack long before MaxExplored is reached.
func (x *explorer) computeAll(ctx context.Context, p point) ([]agg.Partial, error) {
	if parts, ok := x.store.get(p); ok {
		return parts, nil
	}
	d := x.sp.dims
	stack := []point{p}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		if _, done := x.store.get(cur); done {
			stack = stack[:len(stack)-1]
			continue
		}
		// Push every missing predecessor; revisit cur once they exist.
		missing := false
		for i := 0; i < d; i++ {
			if cur[i] == 0 {
				continue
			}
			prev := cur.clone()
			prev[i]--
			if _, ok := x.store.get(prev); !ok {
				stack = append(stack, prev)
				missing = true
			}
		}
		if missing {
			continue
		}
		parts := make([]agg.Partial, d+1)
		// O1: the cell — the only sub-query unique to this point
		// (§5.1.1 observation 1).
		cell, err := x.cellPartial(ctx, cur)
		if err != nil {
			return nil, err
		}
		parts[0] = cell
		for i := 1; i <= d; i++ {
			// GetPreviousNeighbour(i-1): decrement dimension i-1. A
			// neighbour outside the grid has an empty region, so its
			// aggregate is the identity (DESIGN.md §5.2).
			prevPart := agg.Zero()
			if cur[i-1] > 0 {
				prev := cur.clone()
				prev[i-1]--
				prevParts, _ := x.store.get(prev)
				prevPart = prevParts[i]
			}
			parts[i] = agg.Merge(parts[i-1], prevPart)
		}
		x.store.put(cur, parts)
		stack = stack[:len(stack)-1]
	}
	parts, _ := x.store.get(p)
	return parts, nil
}

// directAggregate executes the whole refined query at an arbitrary
// (possibly off-grid) score vector — used by cell repartitioning, which
// probes points between grid layers (§6).
func (x *explorer) directAggregate(ctx context.Context, scores []float64) (agg.Partial, error) {
	x.cellQueries.Add(1)
	return x.evalOne(ctx, relq.PrefixRegion(scores))
}

// storedPoints reports how many grid points hold cached sub-aggregates.
func (x *explorer) storedPoints() int { return x.store.len() }

// release frees the sub-aggregate store and the prefetch cache. The
// driver calls it once the search result is finalised: a long-lived
// session runs many searches against one engine, and with the
// cross-search region cache holding the reusable state there is no
// reason to pin a finished search's per-point maps until the explorer
// itself is collected. The explorer must not be used afterwards.
func (x *explorer) release() {
	x.store.free()
	x.cache.free()
}

// verifyAgainstDirect cross-checks the incremental aggregate at p with
// a direct whole-query execution; testing hook. The full partial is
// compared: Count/Min/Max exactly, Sum and the UDA summary within a
// relative tolerance (the recurrence associates float additions
// differently than a single scan).
func (x *explorer) verifyAgainstDirect(p point) error {
	inc, err := x.aggregate(context.Background(), p)
	if err != nil {
		return err
	}
	direct, err := x.engine.Aggregate(x.q, relq.PrefixRegion(p.scores(x.sp.step)))
	if err != nil {
		return err
	}
	if !agg.ApproxEqual(inc, direct, 1e-9) {
		return fmt.Errorf("core: incremental partial %+v != direct %+v at %v", inc, direct, p)
	}
	return nil
}
