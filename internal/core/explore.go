package core

import (
	"fmt"

	"acquire/internal/agg"
	"acquire/internal/relq"
)

// explorer is the Explore phase (§5): it computes the aggregate of each
// grid query, either incrementally (Algorithm 3) or naively (whole-query
// re-execution, the ablation baseline).
type explorer struct {
	engine Evaluator
	q      *relq.Query
	sp     *space
	spec   agg.Spec

	incremental bool
	// store maps point key -> the d+1 sub-query partials
	// [O1 (cell), O2 (pillar), ..., Od+1 (whole query)] of §5.1.1.
	store map[string][]agg.Partial

	// cellQueries counts evaluation-layer round trips (cell executions
	// in incremental mode, whole-query executions in naive mode).
	cellQueries int
}

func newExplorer(e Evaluator, q *relq.Query, sp *space, spec agg.Spec, incremental bool) *explorer {
	return &explorer{
		engine:      e,
		q:           q,
		sp:          sp,
		spec:        spec,
		incremental: incremental,
		store:       make(map[string][]agg.Partial),
	}
}

// aggregate returns the aggregate partial of the whole refined query at
// grid point p.
func (x *explorer) aggregate(p point) (agg.Partial, error) {
	if !x.incremental {
		x.cellQueries++
		return x.engine.Aggregate(x.q, relq.PrefixRegion(p.scores(x.sp.step)))
	}
	parts, err := x.computeAll(p)
	if err != nil {
		return agg.Zero(), err
	}
	return parts[x.sp.dims], nil
}

// computeAll is Algorithm 3 (ComputeAggregate): execute only the cell
// sub-query O1, then fold the recurrence of Eq. 17,
//
//	O_i(u) = O_{i-1}(u) + O_i(u - e_{i-1}),
//
// reading O_i(u - e_{i-1}) from the store. The Expand phase guarantees
// (Theorem 3) every contained grid query was explored first; points
// reachable only through ties under exotic norms fall back to on-demand
// recursive computation, preserving correctness.
func (x *explorer) computeAll(p point) ([]agg.Partial, error) {
	if parts, ok := x.store[p.key()]; ok {
		return parts, nil
	}
	d := x.sp.dims
	parts := make([]agg.Partial, d+1)

	// O1: the cell — the only sub-query unique to this point (§5.1.1
	// observation 1).
	cell, err := x.engine.Aggregate(x.q, relq.CellRegion(p, x.sp.step))
	if err != nil {
		return nil, err
	}
	x.cellQueries++
	parts[0] = cell

	for i := 1; i <= d; i++ {
		// GetPreviousNeighbour(i-1): decrement dimension i-1.
		var prevPart agg.Partial
		if p[i-1] == 0 {
			// The neighbour lies outside the grid: its region is
			// empty, its aggregate the identity (DESIGN.md §5.2).
			prevPart = agg.Zero()
		} else {
			prev := p.clone()
			prev[i-1]--
			prevParts, err := x.computeAll(prev)
			if err != nil {
				return nil, err
			}
			prevPart = prevParts[i]
		}
		parts[i] = agg.Merge(parts[i-1], prevPart)
	}
	x.store[p.key()] = parts
	return parts, nil
}

// directAggregate executes the whole refined query at an arbitrary
// (possibly off-grid) score vector — used by cell repartitioning, which
// probes points between grid layers (§6).
func (x *explorer) directAggregate(scores []float64) (agg.Partial, error) {
	x.cellQueries++
	return x.engine.Aggregate(x.q, relq.PrefixRegion(scores))
}

// storedPoints reports how many grid points hold cached sub-aggregates.
func (x *explorer) storedPoints() int { return len(x.store) }

// verifyAgainstDirect cross-checks the incremental aggregate at p with
// a direct whole-query execution; testing hook.
func (x *explorer) verifyAgainstDirect(p point) error {
	inc, err := x.aggregate(p)
	if err != nil {
		return err
	}
	direct, err := x.engine.Aggregate(x.q, relq.PrefixRegion(p.scores(x.sp.step)))
	if err != nil {
		return err
	}
	if inc.Count != direct.Count {
		return fmt.Errorf("core: incremental count %d != direct %d at %v", inc.Count, direct.Count, p)
	}
	return nil
}
