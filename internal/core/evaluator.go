package core

import (
	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/relq"
)

// Evaluator is the evaluation layer contract (§3: "we delegate all
// actual query execution tasks to an evaluation layer ... the
// evaluation layer is modular and can be replaced with other techniques
// such as estimation, and/or sampling").
//
// Implementations in this repository:
//
//   - exec.Engine — exact execution over the full data (the default;
//     the stand-in for the paper's Postgres deployment).
//   - exec.Sampled — exact execution over a Bernoulli sample, with
//     extrapolated COUNT/SUM/UDA aggregates.
//   - histogram.Evaluator — scan-free COUNT estimation from per-column
//     equi-depth histograms under the independence assumption.
//
// Aggregate must treat the region exactly as exec.Engine.Aggregate
// documents; Catalog provides the attribute statistics the refined
// space geometry needs.
type Evaluator interface {
	Aggregate(q *relq.Query, region relq.Region) (agg.Partial, error)
	Catalog() *data.Catalog
}
