package core

import (
	"context"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/relq"
)

// Evaluator is the evaluation layer contract (§3: "we delegate all
// actual query execution tasks to an evaluation layer ... the
// evaluation layer is modular and can be replaced with other techniques
// such as estimation, and/or sampling").
//
// Implementations in this repository:
//
//   - exec.Engine — exact execution over the full data (the default;
//     the stand-in for the paper's Postgres deployment).
//   - exec.Sampled — exact execution over a Bernoulli sample, with
//     extrapolated COUNT/SUM/UDA aggregates.
//   - histogram.Evaluator — scan-free COUNT estimation from per-column
//     equi-depth histograms under the independence assumption.
//
// AggregateBatch is the primary entry point: it evaluates one region
// per output slot, out[i] corresponding to regions[i], and may execute
// the regions concurrently. Implementations must be deterministic —
// the partial returned for a region must not depend on worker count or
// scheduling — and must stop early (returning ctx.Err()) when the
// context is cancelled. Aggregate is the single-region convenience
// form; both must treat a region exactly as exec.Engine.Aggregate
// documents. Catalog provides the attribute statistics the refined
// space geometry needs.
type Evaluator interface {
	Aggregate(q *relq.Query, region relq.Region) (agg.Partial, error)
	AggregateBatch(ctx context.Context, q *relq.Query, regions []relq.Region) ([]agg.Partial, error)
	Catalog() *data.Catalog
}
