package core

// layerEps is the QScore tolerance that delimits a layer; it matches
// the driver's layer-boundary epsilon so the batched search groups
// points exactly where the serial search saw a boundary.
const layerEps = 1e-9

// layerFrontier adapts a point-at-a-time frontier into a
// layer-at-a-time one: nextLayer returns every pending point whose
// QScore ties the head of the frontier (within layerEps). Frontiers
// emit points in non-decreasing score order (Theorem 2), so a layer is
// a contiguous run and buffering at most one lookahead point suffices.
//
// Within a layer the original frontier order is preserved — under L∞
// (and tie-heavy custom norms) a layer can contain points that contain
// one another, and the Explore recurrence needs the containment-
// consistent order the frontier guarantees.
type layerFrontier struct {
	fr    frontier
	score func(point) float64
	// ahead holds the first point of the next layer, popped while
	// detecting the current layer's end.
	ahead    point
	hasAhead bool
}

func newLayerFrontier(fr frontier, score func(point) float64) *layerFrontier {
	return &layerFrontier{fr: fr, score: score}
}

// nextLayer returns the next full layer of grid points, or ok=false
// when the space is exhausted.
func (lf *layerFrontier) nextLayer() ([]point, bool) {
	var first point
	if lf.hasAhead {
		first, lf.hasAhead = lf.ahead, false
		lf.ahead = nil
	} else {
		p, ok := lf.fr.next()
		if !ok {
			return nil, false
		}
		first = p
	}
	layer := []point{first}
	base := lf.score(first)
	for {
		p, ok := lf.fr.next()
		if !ok {
			return layer, true
		}
		if lf.score(p) > base+layerEps {
			lf.ahead, lf.hasAhead = p, true
			return layer, true
		}
		layer = append(layer, p)
	}
}
