package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"acquire/internal/obs"
)

// TestSearchSpanTree: a traced search records one span tree — search
// root with per-layer layer spans, each holding prefetch and fold
// children, engine batches nested below — deposited in the observer's
// flight recorder with deterministic FakeClock timing.
func TestSearchSpanTree(t *testing.T) {
	e := lineTable(t, 1000)
	q := countQ(15, leDim(10)) // forces a repartition (see acquire_test)

	clk := obs.NewFakeClock(time.Unix(1000, 0)).AutoAdvance(time.Millisecond)
	rec := obs.NewFlightRecorder(obs.RecorderConfig{})
	o := obs.NewObserver(nil).WithClock(clk).WithRecorder(rec)

	res, err := Run(e, q, Options{Gamma: 10, Delta: 0.01, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: %+v", res)
	}
	if rec.Len() != 1 {
		t.Fatalf("recorder holds %d traces, want 1", rec.Len())
	}
	tr := rec.Traces()[0]
	spans := tr.Snapshot()
	root, ok := tr.Root()
	if !ok || root.Name != "search" {
		t.Fatalf("root span = %+v", root)
	}
	if root.End.IsZero() {
		t.Fatal("root never ended")
	}
	if a, ok := root.Attr("satisfied"); !ok || !a.B() {
		t.Errorf("root satisfied attr = %+v, %v", a, ok)
	}
	if a, ok := root.Attr("explored"); !ok || a.I64() != int64(res.Explored) {
		t.Errorf("root explored attr = %+v, want %d", a, res.Explored)
	}

	// Count the tree's layers and check phase nesting.
	byID := map[obs.SpanID]obs.TraceSpan{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var layers, prefetches, folds, expands int
	for _, s := range spans {
		switch s.Name {
		case "layer":
			layers++
			if s.Parent != root.ID {
				t.Errorf("layer span %d not under root", s.ID)
			}
			if s.End.IsZero() {
				t.Errorf("layer span %d never ended", s.ID)
			}
		case "prefetch":
			prefetches++
			if byID[s.Parent].Name != "layer" {
				t.Errorf("prefetch under %q", byID[s.Parent].Name)
			}
		case "fold":
			folds++
			if byID[s.Parent].Name != "layer" {
				t.Errorf("fold under %q", byID[s.Parent].Name)
			}
		case "expand":
			expands++
			if s.Parent != root.ID {
				t.Errorf("expand span %d not under root", s.ID)
			}
		}
		// Every non-root span nests timewise in its parent.
		if s.Parent != 0 {
			p := byID[s.Parent]
			if s.Start.Before(p.Start) {
				t.Errorf("span %q starts before parent %q", s.Name, p.Name)
			}
		}
	}
	if layers == 0 || layers != prefetches || layers != folds {
		t.Errorf("layers=%d prefetches=%d folds=%d", layers, prefetches, folds)
	}
	if expands == 0 {
		t.Errorf("no expand spans")
	}

	// The trace exports as valid Chrome JSON.
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("invalid Chrome JSON:\n%s", buf.String())
	}
}

// TestLayerEventsFromTrace: the -explain layer table and the span tree
// are the same data — a search run with both a TraceBuffer and a
// recorder yields identical layer rows from either source.
func TestLayerEventsFromTrace(t *testing.T) {
	e := lineTable(t, 1000)
	q := countQ(15, leDim(10))

	clk := obs.NewFakeClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	rec := obs.NewFlightRecorder(obs.RecorderConfig{})
	o := obs.NewObserver(nil).WithClock(clk).WithRecorder(rec)
	var trace TraceBuffer
	if _, err := Run(e, q, Options{Gamma: 10, Delta: 0.01, Observer: o, Trace: &trace}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 1 {
		t.Fatalf("recorder holds %d traces", rec.Len())
	}
	fromTrace := LayerEventsFromTrace(rec.Traces()[0])
	if len(fromTrace) == 0 || len(fromTrace) != len(trace.Layers) {
		t.Fatalf("LayerEventsFromTrace = %d rows, TraceBuffer = %d", len(fromTrace), len(trace.Layers))
	}
	for i := range fromTrace {
		got, want := fromTrace[i], trace.Layers[i]
		if got.Layer != want.Layer || got.QScore != want.QScore ||
			got.Width != want.Width || got.BatchWidth != want.BatchWidth || got.Wall != want.Wall {
			t.Errorf("layer %d: span-derived %+v != buffer %+v", i, got, want)
		}
	}
}

// TestTraceBufferWithoutRecorder: -explain alone (LayerTracer, no
// recorder) still produces layer rows — the search builds a private
// span tree to derive them even when nothing retains it.
func TestTraceBufferWithoutRecorder(t *testing.T) {
	e := lineTable(t, 1000)
	q := countQ(15, leDim(10))
	var trace TraceBuffer
	if _, err := Run(e, q, Options{Gamma: 10, Delta: 0.01, Trace: &trace}); err != nil {
		t.Fatal(err)
	}
	if len(trace.Layers) == 0 {
		t.Fatal("no layer events without a recorder")
	}
	for i, ev := range trace.Layers {
		if ev.Layer != i {
			t.Errorf("layer %d has index %d", i, ev.Layer)
		}
	}
}

// TestSearchSpanNestsUnderCaller: a caller-provided context span makes
// the search graft its tree under the caller's trace instead of
// opening its own (and nothing lands in the recorder — the caller owns
// the root).
func TestSearchSpanNestsUnderCaller(t *testing.T) {
	e := lineTable(t, 200)
	q := countQ(50, leDim(10))

	clk := obs.NewFakeClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	rec := obs.NewFlightRecorder(obs.RecorderConfig{})
	o := obs.NewObserver(nil).WithClock(clk).WithRecorder(rec)

	caller := obs.NewTrace("caller", clk)
	callerRoot := caller.NewSpan(0, "request")
	ctx := obs.ContextWithSpan(context.Background(), callerRoot)

	if _, err := RunContext(ctx, e, q, Options{Delta: 0.001, Observer: o}); err != nil {
		t.Fatal(err)
	}
	callerRoot.End()
	if rec.Len() != 0 {
		t.Errorf("nested search deposited %d traces in the recorder", rec.Len())
	}
	var found bool
	for _, s := range caller.Snapshot() {
		if s.Name == "search" && s.Parent == callerRoot.ID() {
			found = true
			if s.End.IsZero() {
				t.Error("nested search span never ended")
			}
		}
	}
	if !found {
		t.Error("search span missing from the caller's trace")
	}
}
