package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/histogram"
	"acquire/internal/relq"
)

// samePartial reports bit-identity (not approximate equality): the
// determinism contract is that worker count must not change a single
// bit of any partial.
func samePartial(a, b agg.Partial) bool {
	return a.Count == b.Count &&
		math.Float64bits(a.Sum) == math.Float64bits(b.Sum) &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max) &&
		math.Float64bits(a.User) == math.Float64bits(b.User)
}

// aggQ builds a one-dimensional query over lineTable with the given
// constraint aggregate (v is the attribute for SUM/MIN/MAX/AVG).
func aggQ(f relq.AggFunc, op relq.CmpOp, target float64) *relq.Query {
	c := relq.Constraint{Func: f, Op: op, Target: target}
	if f != relq.AggCount {
		c.Attr = relq.ColumnRef{Table: "t", Column: "v"}
	}
	return &relq.Query{Tables: []string{"t"}, Dims: []relq.Dimension{leDim(10)}, Constraint: c}
}

// AggregateBatch must return bit-identical partials for every worker
// count, on every evaluation layer and aggregate. The 70K-row table
// crosses the engine's intra-region parallel threshold, so both the
// across-regions pool and the within-region fold are exercised.
func TestAggregateBatchDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("70K-row table")
	}
	e := lineTable(t, 70000)
	ctx := context.Background()

	regions := make([]relq.Region, 0, 16)
	for u := 0; u < 16; u++ {
		regions = append(regions, relq.PrefixRegion([]float64{float64(u)}))
	}

	aggs := []relq.AggFunc{relq.AggCount, relq.AggSum, relq.AggMin, relq.AggMax, relq.AggAvg}
	for _, f := range aggs {
		q := aggQ(f, relq.CmpGE, 1)

		// Exact layer.
		e.Parallelism = 1
		serial, err := e.AggregateBatch(ctx, q, regions)
		if err != nil {
			t.Fatalf("%s serial: %v", f, err)
		}
		// The batch must agree with one-at-a-time Aggregate calls.
		for i, r := range regions {
			p, err := e.Aggregate(q, r)
			if err != nil {
				t.Fatalf("%s Aggregate: %v", f, err)
			}
			if !samePartial(serial[i], p) {
				t.Fatalf("%s region %d: batch %+v != Aggregate %+v", f, i, serial[i], p)
			}
		}
		for _, w := range []int{2, 4, 8} {
			e.Parallelism = w
			got, err := e.AggregateBatch(ctx, q, regions)
			if err != nil {
				t.Fatalf("%s w=%d: %v", f, w, err)
			}
			for i := range got {
				if !samePartial(got[i], serial[i]) {
					t.Errorf("%s w=%d region %d: %+v != serial %+v", f, w, i, got[i], serial[i])
				}
			}
		}
		e.Parallelism = 0

		// Sampling layer (extrapolated partials must be deterministic
		// too — the sample membership is seed-fixed, not scheduling
		// dependent).
		sampled, err := exec.NewSampled(e.Catalog(), 0.2, 7)
		if err != nil {
			t.Fatal(err)
		}
		sampled.Parallelism = 1
		sSerial, err := sampled.AggregateBatch(ctx, q, regions)
		if err != nil {
			t.Fatalf("%s sampled serial: %v", f, err)
		}
		sampled.Parallelism = 4
		sPar, err := sampled.AggregateBatch(ctx, q, regions)
		if err != nil {
			t.Fatalf("%s sampled w=4: %v", f, err)
		}
		for i := range sPar {
			if !samePartial(sPar[i], sSerial[i]) {
				t.Errorf("%s sampled w=4 region %d: %+v != serial %+v", f, i, sPar[i], sSerial[i])
			}
		}
	}

	// Histogram layer (COUNT only): batch must agree with per-region
	// estimation and with itself across calls.
	hist, err := histogram.NewEvaluator(e.Catalog(), 64)
	if err != nil {
		t.Fatal(err)
	}
	q := aggQ(relq.AggCount, relq.CmpGE, 1)
	h1, err := hist.AggregateBatch(ctx, q, regions)
	if err != nil {
		t.Fatalf("histogram batch: %v", err)
	}
	h2, err := hist.AggregateBatch(ctx, q, regions)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range regions {
		p, err := hist.Aggregate(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if !samePartial(h1[i], p) || !samePartial(h1[i], h2[i]) {
			t.Errorf("histogram region %d not deterministic: %+v / %+v / %+v", i, h1[i], h2[i], p)
		}
	}
}

// sameResult asserts two refinement results are identical: same
// satisfied/best, the same refined-query list bit-for-bit, and the same
// work accounting — in particular CellQueries, the §5 scan-at-most-once
// invariant the batched driver must preserve.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Satisfied != b.Satisfied || a.Explored != b.Explored {
		t.Fatalf("%s: satisfied/explored differ: %v/%d vs %v/%d",
			label, a.Satisfied, a.Explored, b.Satisfied, b.Explored)
	}
	if a.CellQueries != b.CellQueries {
		t.Errorf("%s: cell queries differ: %d vs %d (scan-at-most-once violated)",
			label, a.CellQueries, b.CellQueries)
	}
	if a.StoredPoints != b.StoredPoints {
		t.Errorf("%s: stored points differ: %d vs %d", label, a.StoredPoints, b.StoredPoints)
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("%s: query counts differ: %d vs %d", label, len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		qa, qb := a.Queries[i], b.Queries[i]
		if math.Float64bits(qa.Aggregate) != math.Float64bits(qb.Aggregate) ||
			math.Float64bits(qa.QScore) != math.Float64bits(qb.QScore) {
			t.Errorf("%s: query %d differs: %+v vs %+v", label, i, qa, qb)
		}
		for d := range qa.Scores {
			if math.Float64bits(qa.Scores[d]) != math.Float64bits(qb.Scores[d]) {
				t.Errorf("%s: query %d score %d differs: %v vs %v", label, i, d, qa.Scores[d], qb.Scores[d])
			}
		}
	}
	ba, bb := a.Best, b.Best
	if (ba == nil) != (bb == nil) {
		t.Fatalf("%s: best presence differs", label)
	}
	if ba != nil && math.Float64bits(ba.Aggregate) != math.Float64bits(bb.Aggregate) {
		t.Errorf("%s: best aggregate differs: %v vs %v", label, ba.Aggregate, bb.Aggregate)
	}
}

// The refined-query output of a whole search must be identical whether
// the evaluation layer runs the layer batches serially or on a worker
// pool — the tentpole's semantics-preservation claim, across aggregates
// and evaluation layers.
func TestRefineDeterministicSerialVsParallel(t *testing.T) {
	e := lineTable(t, 4000)

	cases := []struct {
		name string
		q    *relq.Query
	}{
		{"count-eq", countQ(300, leDim(10))},
		{"count-2d", countQ(500, leDim(10), relq.Dimension{
			Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "v"}, Bound: 2, Width: 7,
		})},
		{"sum-ge", aggQ(relq.AggSum, relq.CmpGE, 900)},
		{"min-eq", aggQ(relq.AggMin, relq.CmpEQ, 0)},
		{"max-ge", aggQ(relq.AggMax, relq.CmpGE, 6)},
		{"avg-ge", aggQ(relq.AggAvg, relq.CmpGE, 3)},
	}
	for _, tc := range cases {
		e.Parallelism = 1
		serial, err := Run(e, tc.q, Options{Gamma: 10, Delta: 0.01})
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		for _, w := range []int{2, 4} {
			e.Parallelism = w
			par, err := Run(e, tc.q, Options{Gamma: 10, Delta: 0.01})
			if err != nil {
				t.Fatalf("%s w=%d: %v", tc.name, w, err)
			}
			sameResult(t, tc.name, serial, par)
		}
		e.Parallelism = 0
	}

	// Sampling layer drives the same search machinery; its searches must
	// be equally worker-count independent.
	sampled, err := exec.NewSampled(e.Catalog(), 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	sampled.Parallelism = 1
	serial, err := Run(sampled, countQ(300, leDim(10)), Options{Gamma: 10, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	sampled.Parallelism = 4
	par, err := Run(sampled, countQ(300, leDim(10)), Options{Gamma: 10, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sampled", serial, par)
}

// slowEval delays every batch so a test can reliably cancel
// mid-search.
type slowEval struct {
	*exec.Engine
	delay time.Duration
}

func (s *slowEval) AggregateBatch(ctx context.Context, q *relq.Query, regions []relq.Region) ([]agg.Partial, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(s.delay):
	}
	return s.Engine.AggregateBatch(ctx, q, regions)
}

// Cancellation mid-refinement must return promptly with the context's
// error and the partial result found so far, and must not leak the
// evaluation layer's worker goroutines.
func TestRunContextCancellation(t *testing.T) {
	e := lineTable(t, 2000)
	e.Parallelism = 4
	ev := &slowEval{Engine: e, delay: 5 * time.Millisecond}
	// Deep search: target near the table's edge with a fine grid.
	q := countQ(1900, leDim(10))

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	res, err := RunContext(ctx, ev, q, Options{Gamma: 2, Delta: 0.001})
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}

	// Worker goroutines must drain after cancellation.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after cancellation", before, n)
	}

	// A pre-expired deadline is reported as such.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := RunContext(dctx, e, q, Options{Gamma: 2, Delta: 0.001}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want DeadlineExceeded", err)
	}
}

// Contraction searches honour cancellation too.
func TestContractContextCancellation(t *testing.T) {
	e := lineTable(t, 500)
	ev := &slowEval{Engine: e, delay: 5 * time.Millisecond}
	q := &relq.Query{
		Tables:     []string{"t"},
		Dims:       []relq.Dimension{leDim(400)},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpLE, Target: 10},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	res, err := RunContext(ctx, ev, q, Options{Gamma: 1, Delta: 0.001})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled contraction returned no partial result")
	}
}
