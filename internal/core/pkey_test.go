package core

import (
	"testing"

	"acquire/internal/agg"
)

// Packed keys must be as collision-free as the string encoding over
// the whole space: enumerate a grid whose widths sum to <= 64 bits and
// assert every point packs to a distinct key.
func TestPointKeyerPackUniqueness(t *testing.T) {
	sp := &space{dims: 3, step: 1, maxCoord: []int{5, 9, 17}}
	k := newPointKeyer(sp)
	if !k.packable {
		t.Fatal("small space not packable")
	}
	seen := make(map[uint64]string)
	for a := 0; a <= 5; a++ {
		for b := 0; b <= 9; b++ {
			for c := 0; c <= 17; c++ {
				p := point{a, b, c}
				v := k.pack(p)
				if prev, dup := seen[v]; dup {
					t.Fatalf("pack collision: %v and %s -> %d", p, prev, v)
				}
				seen[v] = p.key()
			}
		}
	}
}

// Spaces whose coordinate caps overflow 64 packed bits fall back to
// string keys; the store must behave identically on both paths.
func TestPstoreBothPaths(t *testing.T) {
	packed := newPointKeyer(&space{dims: 2, step: 1, maxCoord: []int{100, 100}})
	wide := newPointKeyer(&space{dims: 3, step: 1, maxCoord: []int{1 << 30, 1 << 30, 1 << 30}})
	if !packed.packable {
		t.Fatal("2x100 grid should pack")
	}
	if wide.packable {
		t.Fatal("3x2^30 grid cannot pack into 64 bits")
	}

	for _, k := range []*pointKeyer{packed, wide} {
		s := newPstore[agg.Partial](k)
		a, b := point{3, 4, 2}[:k2dims(k)], point{4, 3, 2}[:k2dims(k)]
		if _, ok := s.get(a); ok {
			t.Fatal("empty store reports a hit")
		}
		s.put(a, agg.Partial{Count: 1})
		s.put(b, agg.Partial{Count: 2})
		if got, ok := s.get(a); !ok || got.Count != 1 {
			t.Fatalf("get(a) = %+v, %v", got, ok)
		}
		if got, ok := s.get(b); !ok || got.Count != 2 {
			t.Fatalf("get(b) = %+v, %v", got, ok)
		}
		if s.len() != 2 {
			t.Fatalf("len = %d, want 2", s.len())
		}
		s.put(a, agg.Partial{Count: 9}) // overwrite, not insert
		if got, _ := s.get(a); got.Count != 9 {
			t.Fatalf("overwrite lost: %+v", got)
		}
		if s.len() != 2 {
			t.Fatalf("len after overwrite = %d, want 2", s.len())
		}
		s.del(a)
		if _, ok := s.get(a); ok {
			t.Fatal("deleted key still present")
		}
		if s.len() != 1 {
			t.Fatalf("len after delete = %d, want 1", s.len())
		}
		s.free()
		if _, ok := s.get(b); ok {
			t.Fatal("freed store reports a hit")
		}
		if s.len() != 0 {
			t.Fatalf("len after free = %d", s.len())
		}
	}
}

func k2dims(k *pointKeyer) int { return len(k.widths) }

// A degenerate dimension (maxCoord 0, width 0 bits) must neither shift
// away neighbours' bits nor alias distinct points.
func TestPointKeyerDegenerateDimension(t *testing.T) {
	k := newPointKeyer(&space{dims: 3, step: 1, maxCoord: []int{7, 0, 7}})
	if !k.packable {
		t.Fatal("degenerate space should pack")
	}
	seen := make(map[uint64]bool)
	for a := 0; a <= 7; a++ {
		for c := 0; c <= 7; c++ {
			v := k.pack(point{a, 0, c})
			if seen[v] {
				t.Fatalf("collision at %d/%d", a, c)
			}
			seen[v] = true
		}
	}
}

// The explorer must release its maps when a search finishes; release
// is idempotent with respect to reads.
func TestExplorerRelease(t *testing.T) {
	sp := &space{dims: 2, step: 1, maxCoord: []int{4, 4}}
	x := newExplorer(nil, nil, sp, agg.Spec{}, true)
	x.store.put(point{1, 1}, []agg.Partial{{Count: 3}})
	if x.storedPoints() != 1 {
		t.Fatalf("storedPoints = %d", x.storedPoints())
	}
	x.release()
	if x.storedPoints() != 0 {
		t.Fatal("release did not drop the store")
	}
	if _, ok := x.cache.get(point{1, 1}); ok {
		t.Fatal("released cache reports a hit")
	}
}
