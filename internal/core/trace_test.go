package core

import (
	"strings"
	"testing"

	"acquire/internal/relq"
)

func TestTraceBuffer(t *testing.T) {
	e := lineTable(t, 1000)
	q := countQ(15, leDim(10)) // forces a repartition (see acquire_test)
	var trace TraceBuffer
	res, err := Run(e, q, Options{Gamma: 10, Delta: 0.01, Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: %+v", res)
	}
	if len(trace.Events) != res.Explored {
		t.Fatalf("trace has %d events, explored %d", len(trace.Events), res.Explored)
	}
	// Theorem 2 visible in the trace: QScores never decrease.
	last := -1.0
	sawRepartition := false
	for i, ev := range trace.Events {
		if ev.Seq != i {
			t.Errorf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.QScore < last-1e-9 {
			t.Errorf("QScore decreased at event %d: %v after %v", i, ev.QScore, last)
		}
		last = ev.QScore
		if ev.Outcome == "repartitioned" {
			sawRepartition = true
		}
	}
	if !sawRepartition {
		t.Error("expected a repartitioned event in this workload")
	}

	var sb strings.Builder
	if _, err := trace.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seq", "QScore", "repartitioned"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered trace missing %q:\n%s", want, sb.String())
		}
	}
}

func TestWriterTracer(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(50, leDim(10))
	var sb strings.Builder
	if _, err := Run(e, q, Options{Delta: 0.001, Trace: WriterTracer{W: &sb}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "satisfied") {
		t.Errorf("streamed trace missing satisfied event:\n%s", sb.String())
	}
}

func TestExplainResult(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(50, leDim(10))
	res, err := Run(e, q, Options{Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	s := ExplainResult(q, res)
	for _, want := range []string{"explored", "satisfy the constraint", "aggregate 50"} {
		if !strings.Contains(s, want) {
			t.Errorf("ExplainResult missing %q:\n%s", want, s)
		}
	}

	// Unsatisfied path.
	q2 := countQ(1e6, leDim(10))
	res2, err := Run(e, q2, Options{Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	s2 := ExplainResult(q2, res2)
	if !strings.Contains(s2, "closest") || !strings.Contains(s2, "exhausted") {
		t.Errorf("unsatisfied ExplainResult:\n%s", s2)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sat, over, rep bool
		want           string
	}{
		{true, false, false, "satisfied"},
		{false, true, false, "overshoot"},
		{false, true, true, "repartitioned"},
		{false, false, false, "undershoot"},
	}
	for _, c := range cases {
		if got := classify(c.sat, c.over, c.rep); got != c.want {
			t.Errorf("classify(%v,%v,%v) = %q, want %q", c.sat, c.over, c.rep, got, c.want)
		}
	}
}

func TestTraceOnContractionAbsent(t *testing.T) {
	// Contraction runs its own loop; tracing is an expansion feature
	// and must simply be ignored (no panic).
	e := lineTable(t, 100)
	q := &relq.Query{
		Tables:     []string{"t"},
		Dims:       []relq.Dimension{leDim(50)},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpLE, Target: 20},
	}
	var trace TraceBuffer
	if _, err := Run(e, q, Options{Delta: 0.001, Trace: &trace}); err != nil {
		t.Fatal(err)
	}
}
