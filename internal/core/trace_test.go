package core

import (
	"strings"
	"testing"
	"time"

	"acquire/internal/relq"
)

func TestTraceBuffer(t *testing.T) {
	e := lineTable(t, 1000)
	q := countQ(15, leDim(10)) // forces a repartition (see acquire_test)
	var trace TraceBuffer
	res, err := Run(e, q, Options{Gamma: 10, Delta: 0.01, Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: %+v", res)
	}
	if len(trace.Events) != res.Explored {
		t.Fatalf("trace has %d events, explored %d", len(trace.Events), res.Explored)
	}
	// Theorem 2 visible in the trace: QScores never decrease.
	last := -1.0
	sawRepartition := false
	for i, ev := range trace.Events {
		if ev.Seq != i {
			t.Errorf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.QScore < last-1e-9 {
			t.Errorf("QScore decreased at event %d: %v after %v", i, ev.QScore, last)
		}
		last = ev.QScore
		if ev.Outcome == "repartitioned" {
			sawRepartition = true
		}
	}
	if !sawRepartition {
		t.Error("expected a repartitioned event in this workload")
	}

	var sb strings.Builder
	if _, err := trace.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seq", "QScore", "repartitioned"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered trace missing %q:\n%s", want, sb.String())
		}
	}
}

// TestWriteToRendersLayers pins the layer table: WriteTo must render
// the recorded Layers slice (one row per Expand layer), not just the
// per-point events.
func TestWriteToRendersLayers(t *testing.T) {
	trace := TraceBuffer{
		Events: []TraceEvent{
			{Seq: 0, Scores: []float64{0}, QScore: 0, Aggregate: 3, Err: 0.8, Outcome: "undershoot"},
		},
		Layers: []LayerEvent{
			{Layer: 0, QScore: 0, Width: 1, BatchWidth: 1, Wall: 250 * time.Millisecond},
			{Layer: 1, QScore: 10, Width: 2, BatchWidth: 2, Wall: 50 * time.Millisecond},
		},
	}
	var sb strings.Builder
	if _, err := trace.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"layer", "width", "batch", "wall", "250ms", "50ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}
	// Both layer rows present, in order.
	if strings.Index(out, "250ms") > strings.Index(out, "50ms") {
		t.Errorf("layer rows out of order:\n%s", out)
	}

	// A search-driven trace records one layer event per explored layer
	// and renders them too.
	e := lineTable(t, 1000)
	q := countQ(15, leDim(10))
	var live TraceBuffer
	if _, err := Run(e, q, Options{Gamma: 10, Delta: 0.01, Trace: &live}); err != nil {
		t.Fatal(err)
	}
	if len(live.Layers) == 0 {
		t.Fatal("search recorded no layer events")
	}
	sb.Reset()
	if _, err := live.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "layer") {
		t.Errorf("live trace missing layer table:\n%s", sb.String())
	}
}

func TestWriterTracer(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(50, leDim(10))
	var sb strings.Builder
	if _, err := Run(e, q, Options{Delta: 0.001, Trace: WriterTracer{W: &sb}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "satisfied") {
		t.Errorf("streamed trace missing satisfied event:\n%s", sb.String())
	}
}

// TestWriterTracerFormat pins the exact one-line-per-event format the
// -trace CLI flag emits.
func TestWriterTracerFormat(t *testing.T) {
	var sb strings.Builder
	WriterTracer{W: &sb}.Event(TraceEvent{
		Seq: 7, Scores: []float64{12.5, 0}, QScore: 12.5,
		Aggregate: 42, Err: 0.16, Outcome: "overshoot",
	})
	want := "#7 (12.5,0) QScore=12.500 agg=42 err=0.1600 overshoot\n"
	if sb.String() != want {
		t.Errorf("WriterTracer.Event = %q, want %q", sb.String(), want)
	}
}

// TestExplainResultLiterals drives ExplainResult through crafted
// Result values, covering the closest-only, exhausted, and note paths
// without running a search.
func TestExplainResultLiterals(t *testing.T) {
	q := countQ(15, leDim(10))
	closest := relq.RefinedQuery{Base: q, Scores: []float64{30}, QScore: 30, Aggregate: 12, Err: 0.2}

	res := &Result{Explored: 9, CellQueries: 4, StoredPoints: 4, Closest: &closest}
	s := ExplainResult(q, res)
	for _, want := range []string{"explored 9 grid queries", "no refinement satisfied", "closest", "error 0.2000"} {
		if !strings.Contains(s, want) {
			t.Errorf("closest-only explain missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "exhausted") {
		t.Errorf("non-exhausted explain mentions exhaustion:\n%s", s)
	}

	res.Exhausted = true
	res.Note = "exploration budget exhausted"
	s = ExplainResult(q, res)
	for _, want := range []string{"search exhausted its budget or grid", "note: exploration budget exhausted"} {
		if !strings.Contains(s, want) {
			t.Errorf("exhausted explain missing %q:\n%s", want, s)
		}
	}

	sat := relq.RefinedQuery{Base: q, Scores: []float64{20}, QScore: 20, Aggregate: 15, Err: 0}
	res2 := &Result{Explored: 3, Satisfied: true, Queries: []relq.RefinedQuery{sat}, Best: &sat}
	s2 := ExplainResult(q, res2)
	for _, want := range []string{"1 refined queries satisfy", "aggregate 15", "refinement 20"} {
		if !strings.Contains(s2, want) {
			t.Errorf("satisfied explain missing %q:\n%s", want, s2)
		}
	}
}

func TestExplainResult(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(50, leDim(10))
	res, err := Run(e, q, Options{Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	s := ExplainResult(q, res)
	for _, want := range []string{"explored", "satisfy the constraint", "aggregate 50"} {
		if !strings.Contains(s, want) {
			t.Errorf("ExplainResult missing %q:\n%s", want, s)
		}
	}

	// Unsatisfied path.
	q2 := countQ(1e6, leDim(10))
	res2, err := Run(e, q2, Options{Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	s2 := ExplainResult(q2, res2)
	if !strings.Contains(s2, "closest") || !strings.Contains(s2, "exhausted") {
		t.Errorf("unsatisfied ExplainResult:\n%s", s2)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sat, over, rep bool
		want           string
	}{
		{true, false, false, "satisfied"},
		{false, true, false, "overshoot"},
		{false, true, true, "repartitioned"},
		{false, false, false, "undershoot"},
	}
	for _, c := range cases {
		if got := classify(c.sat, c.over, c.rep); got != c.want {
			t.Errorf("classify(%v,%v,%v) = %q, want %q", c.sat, c.over, c.rep, got, c.want)
		}
	}
}

func TestTraceOnContractionAbsent(t *testing.T) {
	// Contraction runs its own loop; tracing is an expansion feature
	// and must simply be ignored (no panic).
	e := lineTable(t, 100)
	q := &relq.Query{
		Tables:     []string{"t"},
		Dims:       []relq.Dimension{leDim(50)},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpLE, Target: 20},
	}
	var trace TraceBuffer
	if _, err := Run(e, q, Options{Delta: 0.001, Trace: &trace}); err != nil {
		t.Fatal(err)
	}
}
