// Package core implements ACQUIRE (§3-§6 of the paper): the Expand
// phase generating refined queries over the Refined Space grid in
// non-decreasing refinement order, the Explore phase computing their
// aggregates incrementally via the cell/pillar/wall/block sub-query
// decomposition, and the driver of Algorithm 4 with overshoot
// repartitioning, plus the §7 extensions (refinement preferences,
// contraction, naive-mode ablation).
package core

import (
	"fmt"
	"math"

	"acquire/internal/relq"
)

// point is a grid point in the refined space: coordinate i counts steps
// of size γ/d along dimension i (§4).
type point []int

// key encodes the point for map storage: 4 little-endian bytes per
// coordinate, so points are distinguished over the full 32-bit
// coordinate range (a 3-byte encoding would alias coordinates 2^24
// apart and corrupt the frontier's seen-set).
func (p point) key() string {
	b := make([]byte, 0, len(p)*4)
	for _, c := range p {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

// clone copies the point.
func (p point) clone() point {
	q := make(point, len(p))
	copy(q, p)
	return q
}

// scores converts grid coordinates to PScore percent units.
func (p point) scores(step float64) []float64 {
	out := make([]float64, len(p))
	for i, c := range p {
		out[i] = float64(c) * step
	}
	return out
}

// space holds the refined-space geometry: dimensionality, grid step
// (γ/d, Theorem 1) and per-dimension coordinate caps.
type space struct {
	dims int
	step float64
	// maxCoord[i] bounds dimension i: beyond it, further refinement
	// admits no new tuples (the predicate already spans the attribute
	// domain) or violates the user's per-predicate limit (§7.1).
	maxCoord []int
}

func newSpace(q *relq.Query, gamma float64, domainScore []float64) (*space, error) {
	d := q.NumDims()
	if d == 0 {
		return nil, fmt.Errorf("core: query has no refinable predicates; nothing to refine")
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("core: refinement threshold gamma must be positive, got %v", gamma)
	}
	s := &space{dims: d, step: gamma / float64(d), maxCoord: make([]int, d)}
	for i := range q.Dims {
		limit := domainScore[i]
		if m := q.Dims[i].MaxScore; m > 0 && m < limit {
			limit = m
		}
		if limit <= 0 {
			// Degenerate: the predicate already spans the domain; the
			// dimension cannot usefully refine but still exists as an
			// axis. One step of slack keeps the geometry uniform.
			s.maxCoord[i] = 0
			continue
		}
		s.maxCoord[i] = int(math.Ceil(limit / s.step))
	}
	return s, nil
}

// frontier generates grid points in non-decreasing QScore order
// (Theorem 2). Implementations: bfsFrontier (Algorithm 1),
// linfFrontier (Algorithm 2), priorityFrontier (weighted norms).
type frontier interface {
	// next returns the next grid point, or ok=false when the space is
	// exhausted.
	next() (point, bool)
}

// bfsFrontier is Algorithm 1: FIFO breadth-first search over the grid
// graph whose edges increment one coordinate by one step. BFS order is
// exactly non-decreasing L1 layer order (Theorem 2's proof).
type bfsFrontier struct {
	sp    *space
	queue []point
	seen  map[string]struct{}
}

func newBFSFrontier(sp *space) *bfsFrontier {
	origin := make(point, sp.dims)
	return &bfsFrontier{
		sp:    sp,
		queue: []point{origin},
		seen:  map[string]struct{}{origin.key(): {}},
	}
}

func (f *bfsFrontier) next() (point, bool) {
	if len(f.queue) == 0 {
		return nil, false
	}
	cur := f.queue[0]
	f.queue = f.queue[1:]
	// GetNextNeighbor(i): increment the i-th dimension (Algorithm 1
	// lines 2-5).
	for i := 0; i < f.sp.dims; i++ {
		if cur[i] >= f.sp.maxCoord[i] {
			continue
		}
		nxt := cur.clone()
		nxt[i]++
		k := nxt.key()
		if _, dup := f.seen[k]; !dup {
			f.seen[k] = struct{}{}
			f.queue = append(f.queue, nxt)
		}
	}
	return cur, true
}

// linfFrontier is Algorithm 2: explicit enumeration of the L-shaped
// query-layers of the L∞ norm. Layer k contains every grid point whose
// maximum coordinate equals k.
type linfFrontier struct {
	sp      *space
	layer   int
	pending []point
}

func newLInfFrontier(sp *space) *linfFrontier {
	origin := make(point, sp.dims)
	return &linfFrontier{sp: sp, pending: []point{origin}}
}

func (f *linfFrontier) next() (point, bool) {
	for len(f.pending) == 0 {
		f.layer++
		maxLayer := 0
		for _, m := range f.sp.maxCoord {
			if m > maxLayer {
				maxLayer = m
			}
		}
		if f.layer > maxLayer {
			return nil, false
		}
		f.enumerateLayer(f.layer)
	}
	cur := f.pending[0]
	f.pending = f.pending[1:]
	return cur, true
}

// enumerateLayer emits all points with max coordinate == k: for each
// dimension i fixed at k, every combination of the remaining
// dimensions with coordinates < k (dimensions before i) or <= k
// (dimensions after i) — the standard de-duplicated shell walk.
func (f *linfFrontier) enumerateLayer(k int) {
	d := f.sp.dims
	cur := make(point, d)
	var rec func(dim int, hasK bool)
	rec = func(dim int, hasK bool) {
		if dim == d {
			if hasK {
				f.pending = append(f.pending, cur.clone())
			}
			return
		}
		hi := k
		if hi > f.sp.maxCoord[dim] {
			hi = f.sp.maxCoord[dim]
		}
		for v := 0; v <= hi; v++ {
			cur[dim] = v
			rec(dim+1, hasK || v == k)
		}
	}
	rec(0, false)
}

// priorityFrontier orders points by an arbitrary monotone QScore —
// required for weighted norms (§7.1), where BFS layer order no longer
// coincides with score order. Monotonicity of the norm guarantees a
// point is popped after every point it contains (Theorem 3(2) carries
// over), which the Explore phase's recurrence depends on.
type priorityFrontier struct {
	sp    *space
	score func(point) float64
	heap  pointHeap
	seen  map[string]struct{}
}

func newPriorityFrontier(sp *space, score func(point) float64) *priorityFrontier {
	origin := make(point, sp.dims)
	f := &priorityFrontier{
		sp:    sp,
		score: score,
		seen:  map[string]struct{}{origin.key(): {}},
	}
	f.heap.push(heapItem{p: origin, score: score(origin)})
	return f
}

func (f *priorityFrontier) next() (point, bool) {
	if f.heap.len() == 0 {
		return nil, false
	}
	cur := f.heap.pop().p
	for i := 0; i < f.sp.dims; i++ {
		if cur[i] >= f.sp.maxCoord[i] {
			continue
		}
		nxt := cur.clone()
		nxt[i]++
		k := nxt.key()
		if _, dup := f.seen[k]; !dup {
			f.seen[k] = struct{}{}
			f.heap.push(heapItem{p: nxt, score: f.score(nxt)})
		}
	}
	return cur, true
}

// heapItem and pointHeap are a minimal binary min-heap (container/heap
// would force interface boxing on a hot path).
type heapItem struct {
	p     point
	score float64
}

type pointHeap struct{ items []heapItem }

func (h *pointHeap) len() int { return len(h.items) }

func (h *pointHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].score <= h.items[i].score {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *pointHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].score < h.items[small].score {
			small = l
		}
		if r < len(h.items) && h.items[r].score < h.items[small].score {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
