package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/norms"
	"acquire/internal/obs"
	"acquire/internal/relq"
)

// FrontierKind selects the Expand phase's query generator.
type FrontierKind uint8

const (
	// FrontierAuto picks BFS for L1, the layer enumerator for L∞, and
	// the priority frontier for everything else.
	FrontierAuto FrontierKind = iota
	// FrontierBFS forces Algorithm 1 (valid for L1; ablation hook).
	FrontierBFS
	// FrontierLInfLayers forces Algorithm 2.
	FrontierLInfLayers
	// FrontierPriority forces the monotone-norm priority frontier.
	FrontierPriority
)

// Options tunes ACQUIRE. The zero value gets the paper's sensible
// defaults (§2.3, §8: γ=10, δ=0.05, L1 norm, b=8 repartition rounds).
type Options struct {
	// Gamma is the refinement proximity threshold γ of Definition 1;
	// the grid step is γ/d (Theorem 1). Default 10.
	Gamma float64
	// Delta is the aggregate error threshold δ of Definition 1.
	// Default 0.05.
	Delta float64
	// Norm is the QScore function (§2.3). Default L1.
	Norm norms.Norm
	// ErrFn overrides the aggregate error function (§2.5). Default:
	// agg.DefaultError for the constraint.
	ErrFn agg.ErrorFunc
	// RepartitionDepth is b, the number of cell-repartitioning
	// iterations on overshoot (§6). Default 8.
	RepartitionDepth int
	// MaxExplored caps the number of grid queries investigated, so an
	// unsatisfiable constraint terminates. Default 100000.
	MaxExplored int
	// NoIncremental disables the Explore phase's incremental aggregate
	// computation, re-executing every refined query whole — the
	// ablation quantifying §5's contribution.
	NoIncremental bool
	// Frontier overrides frontier selection.
	Frontier FrontierKind
	// Trace, when set, receives one event per explored grid query
	// (cmd/acquire -explain; tests).
	Trace Tracer
	// Observer, when set, receives the search's metrics (counters,
	// layer gauges, per-phase duration histograms), phase spans and
	// structured events (internal/obs). All layer/span timing reads
	// the observer's Clock, so tests inject a fake clock instead of
	// sleeping. Nil disables instrumentation at ~zero cost.
	Observer *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.Gamma == 0 {
		o.Gamma = 10
	}
	if o.Delta == 0 {
		o.Delta = 0.05
	}
	if o.Norm == nil {
		o.Norm = norms.L1{}
	}
	if o.RepartitionDepth == 0 {
		o.RepartitionDepth = 8
	}
	if o.MaxExplored == 0 {
		o.MaxExplored = 100000
	}
	return o
}

// Result is the output of a refinement search.
type Result struct {
	// Queries are the satisfying refined queries of the minimal layer
	// (Definition 1), sorted by ascending QScore.
	Queries []relq.RefinedQuery
	// Best is Queries[0] when Satisfied.
	Best *relq.RefinedQuery
	// Satisfied reports whether any refined query met the constraint
	// within δ.
	Satisfied bool
	// Closest is the query attaining the smallest aggregate error —
	// returned per §6 when no query satisfies the constraint.
	Closest *relq.RefinedQuery
	// Explored counts grid queries investigated; CellQueries counts
	// evaluation-layer executions (cells in incremental mode).
	Explored    int
	CellQueries int
	// StoredPoints is the size of the sub-aggregate store.
	StoredPoints int
	// Exhausted is set when the search hit MaxExplored or ran out of
	// grid before satisfying the constraint.
	Exhausted bool
	// Note carries a human-readable diagnostic (e.g. "original query
	// already overshoots; use contraction").
	Note string
}

// Run executes ACQUIRE on the query against the engine.
//
// Constraints with <=/< comparison denote the inverse problem — the
// query returns too much — and are routed to the §7.2 contraction
// search automatically.
func Run(e Evaluator, q *relq.Query, opts Options) (*Result, error) {
	return RunContext(context.Background(), e, q, opts)
}

// RunContext is Run with cancellation: the context is checked at every
// Expand layer, every evaluation-layer batch, and every repartitioning
// probe. When the context is cancelled mid-search, RunContext returns
// the partial Result accumulated so far together with the context's
// error, so callers can report progress before abandoning the search.
func RunContext(ctx context.Context, e Evaluator, q *relq.Query, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !agg.HasOSP(q.Constraint.Func) {
		return nil, fmt.Errorf("core: aggregate %s lacks the optimal substructure property (§2.6)", q.Constraint.Func)
	}
	if q.Constraint.Op == relq.CmpLE || q.Constraint.Op == relq.CmpLT {
		return ContractContext(ctx, e, q, opts)
	}
	if c, ok := opts.Norm.(norms.Custom); ok {
		if err := norms.CheckMonotone(c, q.NumDims(), 256, 1); err != nil {
			return nil, err
		}
	}

	domain, err := domainScores(e, q)
	if err != nil {
		return nil, err
	}
	sp, err := newSpace(q, opts.Gamma, domain)
	if err != nil {
		return nil, err
	}
	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		return nil, err
	}
	errFn := opts.ErrFn
	if errFn == nil {
		errFn = agg.DefaultError(q.Constraint)
	}

	fr, err := makeFrontier(opts, sp)
	if err != nil {
		return nil, err
	}
	x := newExplorer(e, q, sp, spec, !opts.NoIncremental)
	return runSearch(ctx, q, sp, fr, x, spec, errFn, opts)
}

// isCancellation reports whether err stems from context cancellation
// or deadline expiry (possibly wrapped).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runSearch is Algorithm 4: iterate Expand and Explore until the first
// satisfying layer is fully investigated.
//
// The loop is organised around whole Expand layers: the layer's unique
// evaluation-layer queries (cell sub-queries in incremental mode) are
// mutually disjoint, so they are dispatched as one batch the evaluator
// may execute concurrently, and then every point's Eq. 17 recurrence
// and repartitioning fold serially in frontier order. The serial fold
// keeps the search byte-identical to the single-threaded one; the
// early-exit checks that the serial loop applied per point can only
// fire at a layer boundary (every point inside a layer ties the
// layer's QScore within eps), so hoisting them to the boundary changes
// nothing observable.
func runSearch(ctx context.Context, q *relq.Query, sp *space, fr frontier, x *explorer, spec agg.Spec, errFn agg.ErrorFunc, opts Options) (*Result, error) {
	res := &Result{}
	target := q.Constraint.Target
	const eps = 1e-9

	// Observability: all handles are nil-tolerant, so the
	// uninstrumented path costs one nil check per use and allocates
	// nothing (see internal/obs). Timing routes through the observer's
	// Clock so deterministic tests inject a fake clock.
	o := opts.Observer
	clk := o.Clock()
	searchSpan := o.StartPhase("search")
	lt, _ := opts.Trace.(LayerTracer)

	// Hierarchical tracing: one span tree per search. The root either
	// nests under a caller-provided span (ctx) or starts a fresh Trace
	// when the observer carries a flight recorder — or when a
	// LayerTracer is attached, so the CLI's -explain layer table is
	// always derived from the same span tree /debug/traces serves.
	// When none of those hold every SpanRef below is the zero value
	// and the whole block is free.
	parentSp := obs.SpanFromContext(ctx)
	var tr *obs.Trace
	var root obs.SpanRef
	switch {
	case parentSp.Active():
		root = parentSp.StartChild("search")
	case o.TracingEnabled() || lt != nil:
		tr = obs.NewTrace(o.SearchID(), clk)
		root = tr.NewSpan(0, "search")
	}
	if root.Active() {
		root.SetAttrs(obs.Float("gamma", opts.Gamma), obs.Float("delta", opts.Delta),
			obs.String("norm", opts.Norm.Name()), obs.Int("dims", int64(q.NumDims())))
	}

	o.Counter("acquire_searches_total", "Refinement searches started.").Inc()
	pointsC := o.Counter("acquire_search_points_explored_total", "Grid queries investigated across all searches.")
	layersG := o.Gauge("acquire_search_layers_explored", "Expand layers explored by the current/most recent search.")
	layersG.Set(0)
	o.Info("search.start", "gamma", opts.Gamma, "delta", opts.Delta,
		"norm", opts.Norm.Name(), "dims", q.NumDims(), "target", target)

	// Engine work attribution: when the evaluator exposes exec.Stats
	// snapshots, search.done reports the deltas this search caused —
	// rows scanned, grid skips, and the box kernel's merge/boundary
	// split.
	engStats, hasEngStats := x.engine.(interface{ Snapshot() exec.Stats })
	var engBefore exec.Stats
	if hasEngStats {
		engBefore = engStats.Snapshot()
	}

	bestLayer := math.Inf(1) // minRefLayer: QScore of the first satisfying layer
	var closestErr = math.Inf(1)

	// Layer tracking for the monotone-overshoot early exit.
	firstLayer := true
	layerAllOvershoot := true
	monotoneEQ := spec.Monotone() && q.Constraint.Op == relq.CmpEQ

	lf := newLayerFrontier(fr, func(p point) float64 {
		return opts.Norm.Score(p.scores(sp.step))
	})
	layerIdx := 0

	record := func(rq relq.RefinedQuery) {
		res.Queries = append(res.Queries, rq)
		if rq.QScore < bestLayer {
			bestLayer = rq.QScore
		}
	}
	finish := func() *Result {
		sort.Slice(res.Queries, func(i, j int) bool {
			if res.Queries[i].QScore != res.Queries[j].QScore {
				return res.Queries[i].QScore < res.Queries[j].QScore
			}
			return res.Queries[i].Err < res.Queries[j].Err
		})
		if len(res.Queries) > 0 {
			res.Satisfied = true
			res.Best = &res.Queries[0]
		}
		res.CellQueries = int(x.cellQueries.Load())
		res.StoredPoints = x.storedPoints()
		x.release()
		searchSpan.End()
		attrs := []any{"satisfied", res.Satisfied, "explored", res.Explored,
			"cell_queries", res.CellQueries, "stored_points", res.StoredPoints,
			"exhausted", res.Exhausted}
		var engDelta exec.Stats
		if hasEngStats {
			engDelta = engStats.Snapshot().Sub(engBefore)
			attrs = append(attrs, "rows_scanned", engDelta.RowsScanned,
				"blocks_scanned", engDelta.BlocksScanned, "blocks_skipped", engDelta.BlocksSkipped,
				"cells_skipped", engDelta.CellsSkipped, "cells_merged", engDelta.CellsMerged,
				"boundary_rows", engDelta.BoundaryRows,
				"cache_hits", engDelta.CacheHits, "cache_misses", engDelta.CacheMisses)
		}
		if root.Active() {
			root.SetAttrs(obs.Bool("satisfied", res.Satisfied),
				obs.Int("explored", int64(res.Explored)),
				obs.Int("cell_queries", int64(res.CellQueries)),
				obs.Bool("exhausted", res.Exhausted))
			if hasEngStats {
				root.SetAttrs(obs.Int("rows_scanned", engDelta.RowsScanned),
					obs.Int("cache_hits", engDelta.CacheHits),
					obs.Int("cache_misses", engDelta.CacheMisses))
			}
			root.End()
			o.Recorder().Add(tr) // tr is nil when nested under a caller's trace
		}
		o.Info("search.done", attrs...)
		return res
	}
	// fail funnels mid-search errors: cancellation still reports the
	// partial result (finalised), anything else is a hard error.
	fail := func(err error) (*Result, error) {
		if isCancellation(err) {
			return finish(), err
		}
		searchSpan.End()
		if root.Active() {
			root.SetAttrs(obs.String("error", err.Error()))
			root.End()
			o.Recorder().Add(tr)
		}
		o.Info("search.error", "error", err.Error())
		return nil, err
	}

search:
	for {
		if err := ctx.Err(); err != nil {
			return finish(), err
		}
		spExpand := o.StartPhase("expand")
		xsp := root.StartChild("expand")
		layer, ok := lf.nextLayer()
		xsp.End()
		spExpand.End()
		if !ok {
			res.Exhausted = len(res.Queries) == 0
			break
		}

		if monotoneEQ && layerAllOvershoot && !firstLayer {
			// Every query of the previous layer overshot a monotone
			// aggregate: deeper layers only overshoot more. Stop (§6's
			// repartitioning already probed the cells).
			res.Exhausted = len(res.Queries) == 0
			if res.Note == "" {
				res.Note = "all queries in a layer overshoot a monotone aggregate; expansion cannot help"
			}
			break
		}
		firstLayer = false
		layerAllOvershoot = true

		// Stop once past the first satisfying layer (Alg. 4's
		// currRefLayer <= minRefLayer loop condition).
		qs0 := opts.Norm.Score(layer[0].scores(sp.step))
		if len(res.Queries) > 0 && qs0 > bestLayer+eps {
			break
		}
		if res.Explored >= opts.MaxExplored {
			res.Exhausted = true
			res.Note = "exploration budget exhausted"
			break
		}

		// Dispatch the layer's evaluation-layer queries as one batch,
		// capped to the remaining exploration budget so the total
		// executions match the serial search even when the budget
		// exhausts mid-layer (§5: no region is scanned more than once,
		// and none is scanned speculatively).
		pre := layer
		if budget := opts.MaxExplored - res.Explored; len(pre) > budget {
			pre = pre[:budget]
		}
		layerStart := clk.Now()
		lsp := root.StartChild("layer")
		spPrefetch := o.StartPhase("prefetch")
		psp := lsp.StartChild("prefetch")
		batchWidth, err := x.prefetch(obs.ContextWithSpan(ctx, psp), pre)
		psp.End()
		spPrefetch.End()
		if err != nil {
			return fail(err)
		}

		spFold := o.StartPhase("fold")
		fsp := lsp.StartChild("fold")
		ctxFold := obs.ContextWithSpan(ctx, fsp)
		for _, pt := range layer {
			if res.Explored >= opts.MaxExplored {
				res.Exhausted = true
				res.Note = "exploration budget exhausted"
				spFold.End()
				fsp.End()
				lsp.End()
				break search
			}
			res.Explored++
			pointsC.Inc()
			scores := pt.scores(sp.step)
			qs := opts.Norm.Score(scores)

			partial, err := x.aggregate(ctxFold, pt)
			if err != nil {
				return fail(err)
			}
			actual := spec.Final(partial)
			ev := errFn(target, actual)

			rq := relq.RefinedQuery{
				Base: q, Scores: scores, QScore: qs, Aggregate: actual, Err: ev,
			}
			if ev < closestErr-eps || (math.Abs(ev-closestErr) <= eps && res.Closest != nil && qs < res.Closest.QScore) {
				closestErr = ev
				c := rq
				res.Closest = &c
			}

			overshoots := agg.Overshoots(q.Constraint, actual, opts.Delta)
			if !overshoots {
				layerAllOvershoot = false
			}

			repartitioned := false
			switch {
			case ev <= opts.Delta:
				record(rq)
			case overshoots:
				// §6: repartition the cell for b iterations.
				spRep := o.StartPhase("repartition")
				rsp := lsp.StartChild("repartition")
				sub, found, err := repartition(obs.ContextWithSpan(ctx, rsp), x, sp, pt, spec, errFn, target, opts, q)
				rsp.End()
				spRep.End()
				if err != nil {
					return fail(err)
				} else if found {
					record(sub)
					repartitioned = true
				}
			}
			outcome := classify(ev <= opts.Delta, overshoots, repartitioned)
			if opts.Trace != nil {
				opts.Trace.Event(TraceEvent{
					Seq: res.Explored - 1, Scores: scores, QScore: qs,
					Aggregate: actual, Err: ev,
					Outcome: outcome,
				})
			}
			if o.LogEnabled(slog.LevelDebug) {
				o.Debug("search.point", "seq", res.Explored-1, "qscore", qs,
					"aggregate", actual, "err", ev, "outcome", outcome)
			}
		}
		spFold.End()
		fsp.End()
		layersG.Set(float64(layerIdx + 1))
		layerWall := clk.Now().Sub(layerStart)
		lsp.SetAttrs(obs.Int("layer", int64(layerIdx)), obs.Float("qscore", qs0),
			obs.Int("width", int64(len(layer))), obs.Int("batch_width", int64(batchWidth)))
		lsp.End()
		if lt != nil {
			// Single source of truth: the CLI's layer table is derived
			// from the very span /debug/traces serves. The literal
			// fallback only fires when the trace hit its span cap.
			if ev, ok := LayerEventFromSpan(lsp); ok {
				lt.LayerDone(ev)
			} else {
				lt.LayerDone(LayerEvent{
					Layer: layerIdx, QScore: qs0, Width: len(layer),
					BatchWidth: batchWidth, Wall: layerWall,
				})
			}
		}
		if o.LogEnabled(slog.LevelInfo) {
			o.Info("search.layer", "layer", layerIdx, "qscore", qs0,
				"width", len(layer), "batch_width", batchWidth,
				"wall_ms", float64(layerWall)/float64(time.Millisecond))
		}
		layerIdx++
	}

	return finish(), nil
}

// repartition is the §6 overshoot handling: the satisfying refinement
// lies inside the cell below pt (between the previous grid layer and
// pt). Binary-search the cell diagonal for b iterations, executing the
// whole refined query at each probe (off-grid points cannot reuse the
// sub-aggregate store).
func repartition(ctx context.Context, x *explorer, sp *space, pt point, spec agg.Spec, errFn agg.ErrorFunc, target float64, opts Options, q *relq.Query) (relq.RefinedQuery, bool, error) {
	if !spec.Monotone() {
		return relq.RefinedQuery{}, false, nil
	}
	hi := pt.scores(sp.step)
	lo := make([]float64, len(hi))
	corner := make(point, len(pt))
	atOrigin := true
	for i, c := range pt {
		if c > 0 {
			lo[i] = float64(c-1) * sp.step
			corner[i] = c - 1
			atOrigin = false
		}
	}
	if atOrigin {
		// The original query itself overshoots; expansion cannot fix
		// it (contraction problem, §7.2).
		return relq.RefinedQuery{}, false, nil
	}
	// Every query in the cell dominates the cell's lower corner, so if
	// the corner already overshoots, the whole cell does: the crossing
	// surface is not here and the binary search would waste b whole
	// executions. The corner is a contained grid point, so its
	// aggregate is already in the incremental store (Theorem 3) — the
	// check costs nothing.
	if x.incremental {
		cornerParts, err := x.computeAll(ctx, corner)
		if err != nil {
			return relq.RefinedQuery{}, false, err
		}
		cornerVal := spec.Final(cornerParts[x.sp.dims])
		if agg.Overshoots(q.Constraint, cornerVal, opts.Delta) {
			return relq.RefinedQuery{}, false, nil
		}
	}
	mid := make([]float64, len(hi))
	for iter := 0; iter < opts.RepartitionDepth; iter++ {
		if err := ctx.Err(); err != nil {
			return relq.RefinedQuery{}, false, err
		}
		for i := range mid {
			mid[i] = (lo[i] + hi[i]) / 2
		}
		partial, err := x.directAggregate(ctx, mid)
		if err != nil {
			return relq.RefinedQuery{}, false, err
		}
		actual := spec.Final(partial)
		ev := errFn(target, actual)
		if ev <= opts.Delta {
			scores := append([]float64(nil), mid...)
			return relq.RefinedQuery{
				Base: q, Scores: scores, QScore: opts.Norm.Score(scores),
				Aggregate: actual, Err: ev,
			}, true, nil
		}
		if agg.Overshoots(q.Constraint, actual, opts.Delta) {
			copy(hi, mid)
		} else {
			copy(lo, mid)
		}
	}
	return relq.RefinedQuery{}, false, nil
}

func makeFrontier(opts Options, sp *space) (frontier, error) {
	kind := opts.Frontier
	if kind == FrontierAuto {
		switch {
		case opts.Norm.Infinite():
			kind = FrontierLInfLayers
		case isPlainL1(opts.Norm):
			kind = FrontierBFS
		default:
			kind = FrontierPriority
		}
	}
	switch kind {
	case FrontierBFS:
		if !isPlainL1(opts.Norm) {
			return nil, fmt.Errorf("core: BFS frontier (Algorithm 1) is only order-correct for the L1 norm; use FrontierPriority for %s", opts.Norm.Name())
		}
		return newBFSFrontier(sp), nil
	case FrontierLInfLayers:
		if !opts.Norm.Infinite() {
			return nil, fmt.Errorf("core: L∞ layer frontier (Algorithm 2) requires an L∞ norm")
		}
		return newLInfFrontier(sp), nil
	case FrontierPriority:
		n := opts.Norm
		return newPriorityFrontier(sp, func(p point) float64 {
			return n.Score(p.scores(sp.step))
		}), nil
	default:
		return nil, fmt.Errorf("core: unknown frontier kind %d", kind)
	}
}

func isPlainL1(n norms.Norm) bool {
	switch v := n.(type) {
	case norms.L1:
		return true
	case norms.Lp:
		return v.P == 1 && len(v.Weights) == 0
	default:
		return false
	}
}

// domainScores computes, per dimension, the refinement score at which
// the predicate spans the entire attribute domain — the natural cap of
// the refined space along that axis.
func domainScores(e Evaluator, q *relq.Query) ([]float64, error) {
	cat := e.Catalog()
	stats := func(ref relq.ColumnRef) (minV, maxV float64, err error) {
		t, err := cat.Table(ref.Table)
		if err != nil {
			return 0, 0, err
		}
		ord := t.Schema().Ordinal(ref.Column)
		if ord < 0 {
			return 0, 0, fmt.Errorf("core: table %s has no column %q", ref.Table, ref.Column)
		}
		s, err := t.Stats(ord)
		if err != nil {
			return 0, 0, err
		}
		return s.Min, s.Max, nil
	}

	out := make([]float64, len(q.Dims))
	for i := range q.Dims {
		d := &q.Dims[i]
		switch d.Kind {
		case relq.SelectLE:
			_, maxV, err := stats(d.Col)
			if err != nil {
				return nil, err
			}
			out[i] = d.Violation(maxV)
		case relq.SelectGE:
			minV, _, err := stats(d.Col)
			if err != nil {
				return nil, err
			}
			out[i] = d.Violation(minV)
		case relq.SelectEQ:
			minV, maxV, err := stats(d.Col)
			if err != nil {
				return nil, err
			}
			out[i] = math.Max(d.Violation(minV), d.Violation(maxV))
		case relq.JoinBand:
			lMin, lMax, err := stats(d.Left)
			if err != nil {
				return nil, err
			}
			rMin, rMax, err := stats(d.Right)
			if err != nil {
				return nil, err
			}
			out[i] = math.Max(d.JoinViolation(lMax, rMin), d.JoinViolation(lMin, rMax))
		}
	}
	return out, nil
}
