package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"acquire/internal/obs"
	"acquire/internal/relq"
)

// TraceEvent is one step of the refinement search, for debugging and
// the CLI's -explain mode. Events are emitted in exploration order, so
// a trace is also a readable proof of Theorem 2's layer ordering.
type TraceEvent struct {
	// Seq is the exploration index (0-based).
	Seq int
	// Scores is the grid query's refinement vector.
	Scores []float64
	// QScore is its refinement score under the search norm.
	QScore float64
	// Aggregate is the actual aggregate value.
	Aggregate float64
	// Err is the aggregate error.
	Err float64
	// Outcome classifies the step: "satisfied", "undershoot",
	// "overshoot", "repartitioned".
	Outcome string
}

// Tracer receives search events. Implementations must be cheap; the
// search calls them on every explored point.
type Tracer interface {
	Event(ev TraceEvent)
}

// LayerEvent summarises one Expand layer of the batched search: how
// wide the layer was, how many evaluation-layer queries the batch
// dispatched (already-stored points are skipped, so BatchWidth <=
// Width), and the wall-clock time the layer took end to end. These
// events make the batch parallelism observable without profiling.
type LayerEvent struct {
	// Layer is the 0-based layer index in exploration order.
	Layer int
	// QScore is the layer's refinement score (the score of its first
	// point).
	QScore float64
	// Width is the number of grid points in the layer.
	Width int
	// BatchWidth is the number of regions dispatched in the layer's
	// prefetch batch.
	BatchWidth int
	// Wall is the elapsed wall-clock time for the whole layer
	// (prefetch + recurrence folds + repartitioning).
	Wall time.Duration
}

// LayerTracer is an optional extension of Tracer: implementations also
// receive one LayerEvent per Expand layer.
type LayerTracer interface {
	Tracer
	LayerDone(ev LayerEvent)
}

// TraceBuffer is a Tracer that records every event.
type TraceBuffer struct {
	Events []TraceEvent
	// Layers records per-layer batch events (LayerTracer).
	Layers []LayerEvent
}

// Event implements Tracer.
func (t *TraceBuffer) Event(ev TraceEvent) { t.Events = append(t.Events, ev) }

// LayerDone implements LayerTracer.
func (t *TraceBuffer) LayerDone(ev LayerEvent) { t.Layers = append(t.Layers, ev) }

// WriteTo renders the trace as an aligned table: the per-point events
// first, then (when the search ran the batched layer pipeline) one row
// per Expand layer with its batch width and wall time.
func (t *TraceBuffer) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s  %-24s  %10s  %12s  %8s  %s\n",
		"seq", "scores", "QScore", "aggregate", "err", "outcome")
	for _, ev := range t.Events {
		fmt.Fprintf(&b, "%4d  %-24s  %10.3f  %12.4g  %8.4f  %s\n",
			ev.Seq, scoresString(ev.Scores), ev.QScore, ev.Aggregate, ev.Err, ev.Outcome)
	}
	if len(t.Layers) > 0 {
		fmt.Fprintf(&b, "\n%5s  %10s  %6s  %6s  %s\n",
			"layer", "QScore", "width", "batch", "wall")
		for _, le := range t.Layers {
			fmt.Fprintf(&b, "%5d  %10.3f  %6d  %6d  %s\n",
				le.Layer, le.QScore, le.Width, le.BatchWidth, le.Wall)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func scoresString(scores []float64) string {
	parts := make([]string, len(scores))
	for i, s := range scores {
		parts[i] = fmt.Sprintf("%.3g", s)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// layerEventFromSpan reconstructs a LayerEvent from one "layer" span
// of a search trace.
func layerEventFromSpan(sp obs.TraceSpan) LayerEvent {
	ev := LayerEvent{Wall: sp.Duration()}
	if a, ok := sp.Attr("layer"); ok {
		ev.Layer = int(a.I64())
	}
	if a, ok := sp.Attr("qscore"); ok {
		ev.QScore = a.F64()
	}
	if a, ok := sp.Attr("width"); ok {
		ev.Width = int(a.I64())
	}
	if a, ok := sp.Attr("batch_width"); ok {
		ev.BatchWidth = int(a.I64())
	}
	return ev
}

// LayerEventFromSpan derives the LayerEvent for a live layer-span ref
// (ok=false when the ref is inactive, e.g. the trace hit its span
// cap). The search emits LayerTracer events through this, so the
// -explain layer table and a trace's layer spans are one dataset.
func LayerEventFromSpan(sp obs.SpanRef) (LayerEvent, bool) {
	rec, ok := sp.Span()
	if !ok {
		return LayerEvent{}, false
	}
	return layerEventFromSpan(rec), true
}

// LayerEventsFromTrace walks a search trace's span tree and returns
// the LayerEvents of every completed "layer" span under the root, in
// start order — the root-span walk /debug/traces consumers use to
// rebuild the CLI's layer table from an exported trace.
func LayerEventsFromTrace(t *obs.Trace) []LayerEvent {
	if t == nil {
		return nil
	}
	root, ok := t.Root()
	if !ok {
		return nil
	}
	var out []LayerEvent
	for _, sp := range t.Snapshot() {
		if sp.Parent == root.ID && sp.Name == "layer" && !sp.End.IsZero() {
			out = append(out, layerEventFromSpan(sp))
		}
	}
	return out
}

// WriterTracer streams events to an io.Writer as they happen.
type WriterTracer struct {
	W io.Writer
}

// Event implements Tracer.
func (t WriterTracer) Event(ev TraceEvent) {
	fmt.Fprintf(t.W, "#%d %s QScore=%.3f agg=%.6g err=%.4f %s\n",
		ev.Seq, scoresString(ev.Scores), ev.QScore, ev.Aggregate, ev.Err, ev.Outcome)
}

// classify names a step's outcome for the trace.
func classify(satisfied, overshoot, repartitioned bool) string {
	switch {
	case satisfied:
		return "satisfied"
	case repartitioned:
		return "repartitioned"
	case overshoot:
		return "overshoot"
	default:
		return "undershoot"
	}
}

// ExplainResult summarises a Result for human consumption: the layer
// profile and the recommended queries.
func ExplainResult(q *relq.Query, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d grid queries (%d evaluation-layer executions, %d stored points)\n",
		res.Explored, res.CellQueries, res.StoredPoints)
	if res.Exhausted {
		b.WriteString("search exhausted its budget or grid\n")
	}
	if res.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", res.Note)
	}
	if res.Satisfied {
		fmt.Fprintf(&b, "%d refined queries satisfy the constraint; best:\n  %s\n",
			len(res.Queries), res.Best.ToSQL())
		fmt.Fprintf(&b, "  aggregate %.6g (error %.4f), refinement %.4g\n",
			res.Best.Aggregate, res.Best.Err, res.Best.QScore)
	} else if res.Closest != nil {
		fmt.Fprintf(&b, "no refinement satisfied; closest:\n  %s\n  aggregate %.6g (error %.4f)\n",
			res.Closest.ToSQL(), res.Closest.Aggregate, res.Closest.Err)
	}
	return b.String()
}
