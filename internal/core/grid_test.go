package core

import (
	"context"
	"math/rand"
	"testing"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/norms"
	"acquire/internal/relq"
)

func testSpace(t *testing.T, dims int, gamma float64, caps []int) *space {
	t.Helper()
	sp := &space{dims: dims, step: gamma / float64(dims), maxCoord: caps}
	return sp
}

// Theorem 2: every frontier emits points in non-decreasing QScore
// order, and a point is emitted only after every point it contains
// (Theorem 3(2)) — the Explore recurrence's precondition.
func TestFrontierOrderingInvariants(t *testing.T) {
	sp := testSpace(t, 3, 9, []int{6, 6, 6})
	l2, err := norms.NewLp(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := norms.NewLp(1, []float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		fr   frontier
		n    norms.Norm
	}{
		{"bfs", newBFSFrontier(sp), norms.L1{}},
		{"linf", newLInfFrontier(sp), norms.LInf{}},
		{"priority-l2", newPriorityFrontier(sp, func(p point) float64 { return l2.Score(p.scores(sp.step)) }), l2},
		{"priority-weighted", newPriorityFrontier(sp, func(p point) float64 { return lw.Score(p.scores(sp.step)) }), lw},
	}
	for _, tc := range cases {
		seen := make(map[string]int)
		var order []point
		last := -1.0
		for {
			p, ok := tc.fr.next()
			if !ok {
				break
			}
			qs := tc.n.Score(p.scores(sp.step))
			if qs < last-1e-9 {
				t.Fatalf("%s: QScore decreased: %v after %v", tc.name, qs, last)
			}
			last = qs
			if _, dup := seen[p.key()]; dup {
				t.Fatalf("%s: duplicate point %v", tc.name, p)
			}
			seen[p.key()] = len(order)
			order = append(order, p.clone())
		}
		// Completeness: every grid point appears exactly once.
		want := 7 * 7 * 7
		if len(order) != want {
			t.Fatalf("%s: emitted %d points, want %d", tc.name, len(order), want)
		}
		// Containment order: direct predecessors come first.
		for idx, p := range order {
			for i := 0; i < sp.dims; i++ {
				if p[i] == 0 {
					continue
				}
				prev := p.clone()
				prev[i]--
				pidx, ok := seen[prev.key()]
				if !ok || pidx >= idx {
					t.Fatalf("%s: %v emitted before contained %v", tc.name, p, prev)
				}
			}
		}
	}
}

func TestFrontierRespectsCaps(t *testing.T) {
	sp := testSpace(t, 2, 10, []int{2, 0})
	fr := newBFSFrontier(sp)
	count := 0
	for {
		p, ok := fr.next()
		if !ok {
			break
		}
		if p[0] > 2 || p[1] > 0 {
			t.Fatalf("point %v beyond caps", p)
		}
		count++
	}
	if count != 3 {
		t.Errorf("points = %d, want 3", count)
	}
}

func TestLInfLayerShape(t *testing.T) {
	sp := testSpace(t, 2, 10, []int{3, 3})
	fr := newLInfFrontier(sp)
	var layers [][]point
	lastMax := -1
	for {
		p, ok := fr.next()
		if !ok {
			break
		}
		m := p[0]
		if p[1] > m {
			m = p[1]
		}
		if m != lastMax {
			if m < lastMax {
				t.Fatalf("layer regressed: %v after max %d", p, lastMax)
			}
			layers = append(layers, nil)
			lastMax = m
		}
		layers[len(layers)-1] = append(layers[len(layers)-1], p.clone())
	}
	// Layer k has (k+1)^2 - k^2 = 2k+1 points.
	wantSizes := []int{1, 3, 5, 7}
	if len(layers) != len(wantSizes) {
		t.Fatalf("layers = %d, want %d", len(layers), len(wantSizes))
	}
	for k, l := range layers {
		if len(l) != wantSizes[k] {
			t.Errorf("layer %d size = %d, want %d", k, len(l), wantSizes[k])
		}
	}
}

func TestPointKeyUniqueness(t *testing.T) {
	seen := make(map[string]point)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		p := point{rng.Intn(300), rng.Intn(300), rng.Intn(300)}
		k := p.key()
		if prev, ok := seen[k]; ok {
			if prev[0] != p[0] || prev[1] != p[1] || prev[2] != p[2] {
				t.Fatalf("key collision: %v and %v", prev, p)
			}
		}
		seen[k] = p.clone()
	}
}

// Regression: the old 3-byte-per-coordinate encoding truncated
// coordinates to 24 bits, so points 2^24 steps apart shared a key and
// the frontier's seen-set silently dropped one of them.
func TestPointKeyHighCoordinates(t *testing.T) {
	pairs := [][2]point{
		{{1 << 24, 0}, {0, 0}},
		{{1<<24 + 1, 0}, {1, 0}},
		{{0, 1 << 25}, {0, 0}},
		{{1 << 30, 1 << 30}, {1<<30 + 1<<24, 1 << 30}},
	}
	for _, pr := range pairs {
		if pr[0].key() == pr[1].key() {
			t.Errorf("points %v and %v share a key", pr[0], pr[1])
		}
	}
	// Different lengths never alias either.
	if (point{1}).key() == (point{1, 0}).key() {
		// Length is implicit in the key's byte count.
		t.Error("points of different dimensionality share a key")
	}
}

func TestPointHeap(t *testing.T) {
	var h pointHeap
	rng := rand.New(rand.NewSource(9))
	var vals []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 100
		vals = append(vals, v)
		h.push(heapItem{p: point{i}, score: v})
	}
	last := -1.0
	for h.len() > 0 {
		it := h.pop()
		if it.score < last {
			t.Fatalf("heap pop out of order: %v after %v", it.score, last)
		}
		last = it.score
	}
	_ = vals
}

// Property: the incremental aggregate (Algorithm 3 + store) equals a
// direct whole-query execution at every grid point, over random data,
// dimensionalities and aggregates — the central §5 claim.
func TestIncrementalAggregateEqualsDirectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		dims := 1 + trial%3
		cols := []data.Column{{Name: "v", Type: data.Float64}}
		names := []string{"a", "b", "c"}[:dims]
		for _, n := range names {
			cols = append(cols, data.Column{Name: n, Type: data.Float64})
		}
		tbl := data.NewTable("t", data.MustSchema(cols...))
		rows := 400 + rng.Intn(400)
		vals := make([]data.Value, len(cols))
		for r := 0; r < rows; r++ {
			vals[0] = data.FloatValue(rng.Float64() * 10)
			for i := 1; i < len(cols); i++ {
				vals[i] = data.FloatValue(rng.Float64() * 100)
			}
			if err := tbl.AppendRow(vals...); err != nil {
				t.Fatal(err)
			}
		}
		cat := data.NewCatalog()
		if err := cat.Register(tbl); err != nil {
			t.Fatal(err)
		}
		e := exec.New(cat)

		var qdims []relq.Dimension
		for _, n := range names {
			qdims = append(qdims, relq.Dimension{
				Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: n},
				Bound: 20 + rng.Float64()*30, Width: 50,
			})
		}
		consts := []relq.Constraint{
			{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
			{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "t", Column: "v"}, Op: relq.CmpGE, Target: 1},
			{Func: relq.AggMax, Attr: relq.ColumnRef{Table: "t", Column: "v"}, Op: relq.CmpGE, Target: 1},
			{Func: relq.AggMin, Attr: relq.ColumnRef{Table: "t", Column: "v"}, Op: relq.CmpEQ, Target: 1},
		}
		q := &relq.Query{Tables: []string{"t"}, Dims: qdims, Constraint: consts[trial%len(consts)]}

		domain, err := domainScores(e, q)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := newSpace(q, 12, domain)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := agg.SpecFor(q.Constraint)
		if err != nil {
			t.Fatal(err)
		}
		x := newExplorer(e, q, sp, spec, true)
		fr := newBFSFrontier(sp)
		for i := 0; i < 60; i++ {
			p, ok := fr.next()
			if !ok {
				break
			}
			if err := x.verifyAgainstDirect(p); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

// The incremental explorer executes exactly one cell query per distinct
// grid point (§5: "a query is executed at most once").
func TestCellQueryAccounting(t *testing.T) {
	e := lineTable(t, 200)
	q := countQ(100, leDim(10))
	domain, err := domainScores(e, q)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := newSpace(q, 10, domain)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		t.Fatal(err)
	}
	x := newExplorer(e, q, sp, spec, true)
	ctx := context.Background()
	for u := 0; u < 5; u++ {
		if _, err := x.aggregate(ctx, point{u}); err != nil {
			t.Fatal(err)
		}
	}
	if n := x.cellQueries.Load(); n != 5 {
		t.Errorf("cellQueries = %d, want 5", n)
	}
	// Re-asking a stored point costs nothing.
	if _, err := x.aggregate(ctx, point{3}); err != nil {
		t.Fatal(err)
	}
	if n := x.cellQueries.Load(); n != 5 {
		t.Errorf("cellQueries after repeat = %d, want 5", n)
	}
	if x.storedPoints() != 5 {
		t.Errorf("storedPoints = %d, want 5", x.storedPoints())
	}
}
