package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"acquire/internal/agg"

	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/norms"
	"acquire/internal/relq"
)

// lineTable builds t(x) with x = 1..n: COUNT(x <= b) == b, so every
// expected refinement is computable by hand.
func lineTable(t testing.TB, n int) *exec.Engine {
	t.Helper()
	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "v", Type: data.Float64},
	))
	for i := 1; i <= n; i++ {
		if err := tbl.AppendRow(data.FloatValue(float64(i)), data.FloatValue(float64(i%7))); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return exec.New(cat)
}

// leDim is "x <= bound" with Width 100, so one score unit widens the
// bound by one attribute unit.
func leDim(bound float64) relq.Dimension {
	return relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "x"}, Bound: bound, Width: 100}
}

func countQ(target float64, dims ...relq.Dimension) *relq.Query {
	return &relq.Query{
		Tables:     []string{"t"},
		Dims:       dims,
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: target},
	}
}

func TestExactGridHit(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(50, leDim(10))
	res, err := Run(e, q, Options{Gamma: 10, Delta: 0.001})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: %+v", res)
	}
	// γ=10, d=1 ⇒ step 10; count(10+u) = 10+u ⇒ u = 40 at layer 4.
	if res.Best.Scores[0] != 40 {
		t.Errorf("best score = %v, want 40", res.Best.Scores[0])
	}
	if res.Best.Aggregate != 50 {
		t.Errorf("aggregate = %v, want 50", res.Best.Aggregate)
	}
	if res.Best.Err != 0 {
		t.Errorf("err = %v", res.Best.Err)
	}
	if res.Best.QScore != 40 {
		t.Errorf("QScore = %v", res.Best.QScore)
	}
}

func TestOriginAlreadySatisfies(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(10, leDim(10))
	res, err := Run(e, q, Options{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied || res.Best.QScore != 0 {
		t.Fatalf("origin should satisfy: %+v", res)
	}
	if res.Explored != 1 {
		t.Errorf("explored = %d, want 1 (stop after origin's layer)", res.Explored)
	}
}

func TestRepartitionOnOvershoot(t *testing.T) {
	e := lineTable(t, 1000)
	// Step 10 jumps counts by 10; target 15 lies strictly between grid
	// layers. δ=0.01 rejects both 10 and 20; §6 repartitioning must
	// find the interior point u=5.
	q := countQ(15, leDim(10))
	res, err := Run(e, q, Options{Gamma: 10, Delta: 0.01, RepartitionDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("repartitioning should satisfy: %+v", res)
	}
	if math.Abs(res.Best.Scores[0]-5) > 2 {
		t.Errorf("best score = %v, want ≈5", res.Best.Scores[0])
	}
	if math.Abs(res.Best.Aggregate-15) > 15*0.01 {
		t.Errorf("aggregate = %v, want 15±1%%", res.Best.Aggregate)
	}
}

func TestOvershootAtOriginReportsContractionProblem(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(5, leDim(50)) // origin already returns 50 > 5
	res, err := Run(e, q, Options{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatalf("expansion cannot shrink an overshooting query: %+v", res)
	}
	if res.Note == "" {
		t.Error("expected a diagnostic note")
	}
	if res.Closest == nil {
		t.Error("closest query must still be reported (§6)")
	}
}

func TestUnsatisfiableExhaustsGrid(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(10000, leDim(10)) // only 100 rows exist
	res, err := Run(e, q, Options{Gamma: 20, Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatal("cannot satisfy target beyond table size")
	}
	if !res.Exhausted {
		t.Error("expected Exhausted")
	}
	if res.Closest == nil || res.Closest.Aggregate != 100 {
		t.Errorf("closest should be full expansion with count 100: %+v", res.Closest)
	}
}

func TestMaxExploredBudget(t *testing.T) {
	e := lineTable(t, 100)
	q := countQ(10000, leDim(10))
	res, err := Run(e, q, Options{MaxExplored: 3, Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Explored > 3 {
		t.Errorf("budget not respected: %+v", res)
	}
}

func TestTwoDimensionalSearch(t *testing.T) {
	// Grid data: (x, y) over 1..40 × 1..40, count(x<=a, y<=b) = a·b.
	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for x := 1; x <= 40; x++ {
		for y := 1; y <= 40; y++ {
			if err := tbl.AppendRow(data.FloatValue(float64(x)), data.FloatValue(float64(y))); err != nil {
				t.Fatal(err)
			}
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	e := exec.New(cat)

	q := &relq.Query{
		Tables: []string{"t"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "x"}, Bound: 10, Width: 100},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "y"}, Bound: 10, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 300},
	}
	// γ=10, d=2 ⇒ step 5. count(10+5i, 10+5j) = (10+5i)(10+5j).
	// Layer i+j=3: (10,25)→250, (15,20)→300 ✓, (20,15)→300 ✓,
	// (25,10)→250. Expect exactly the two satisfying points of the
	// first satisfying layer.
	res, err := Run(e, q, Options{Gamma: 10, Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: %+v", res)
	}
	if len(res.Queries) != 2 {
		t.Fatalf("answers = %d, want 2 symmetric points: %+v", len(res.Queries), res.Queries)
	}
	for _, rq := range res.Queries {
		if rq.Aggregate != 300 || rq.QScore != 15 {
			t.Errorf("answer %+v", rq)
		}
	}
	// All answers in one layer (Alg. 4 stops after the satisfying layer).
	if res.Queries[0].QScore != res.Queries[1].QScore {
		t.Error("answers from different layers")
	}
}

func TestIncrementalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
		data.Column{Name: "v", Type: data.Float64},
	))
	for i := 0; i < 3000; i++ {
		if err := tbl.AppendRow(
			data.FloatValue(rng.Float64()*100),
			data.FloatValue(rng.Float64()*100),
			data.FloatValue(rng.Float64()*10),
		); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	e := exec.New(cat)

	for trial, c := range []relq.Constraint{
		{Func: relq.AggCount, Op: relq.CmpEQ, Target: 900},
		{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "t", Column: "v"}, Op: relq.CmpGE, Target: 3000},
		{Func: relq.AggMax, Attr: relq.ColumnRef{Table: "t", Column: "v"}, Op: relq.CmpGE, Target: 9.9},
		{Func: relq.AggAvg, Attr: relq.ColumnRef{Table: "t", Column: "v"}, Op: relq.CmpEQ, Target: 5},
	} {
		q := &relq.Query{
			Tables: []string{"t"},
			Dims: []relq.Dimension{
				{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "x"}, Bound: 30, Width: 70},
				{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "y"}, Bound: 30, Width: 70},
			},
			Constraint: c,
		}
		inc, err := Run(e, q, Options{Gamma: 20, Delta: 0.05})
		if err != nil {
			t.Fatalf("trial %d incremental: %v", trial, err)
		}
		naive, err := Run(e, q, Options{Gamma: 20, Delta: 0.05, NoIncremental: true})
		if err != nil {
			t.Fatalf("trial %d naive: %v", trial, err)
		}
		if inc.Satisfied != naive.Satisfied {
			t.Errorf("trial %d: satisfied %v vs %v", trial, inc.Satisfied, naive.Satisfied)
			continue
		}
		if inc.Satisfied {
			if math.Abs(inc.Best.QScore-naive.Best.QScore) > 1e-9 {
				t.Errorf("trial %d: best QScore %v vs %v", trial, inc.Best.QScore, naive.Best.QScore)
			}
			if math.Abs(inc.Best.Aggregate-naive.Best.Aggregate) > 1e-6*(1+math.Abs(naive.Best.Aggregate)) {
				t.Errorf("trial %d: best aggregate %v vs %v", trial, inc.Best.Aggregate, naive.Best.Aggregate)
			}
		}
		if inc.Explored != naive.Explored {
			t.Errorf("trial %d: explored %d vs %d (search paths must match)", trial, inc.Explored, naive.Explored)
		}
	}
}

// Property: every satisfying query ACQUIRE reports is (a) within δ, and
// (b) within γ of the optimal grid refinement found by exhaustive
// search (Definition 1).
func TestDefinitionOneGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 500 + rng.Intn(1000)
		e := lineTable(t, n)
		bound := 10 + rng.Float64()*30
		target := float64(100 + rng.Intn(n/2))
		gamma := 4 + rng.Float64()*16
		delta := 0.02 + rng.Float64()*0.08
		q := countQ(target, leDim(bound))

		res, err := Run(e, q, Options{Gamma: gamma, Delta: delta})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Exhaustive scan of the 1-D grid for the optimal layer.
		step := gamma / 1
		opt := math.Inf(1)
		for u := 0; ; u++ {
			cnt := math.Min(bound+float64(u)*step, float64(n))
			if bound+float64(u)*step >= float64(n)+step {
				break
			}
			errv := math.Abs(target-cnt) / target
			if errv <= delta {
				opt = float64(u) * step
				break
			}
		}
		if math.IsInf(opt, 1) {
			continue // no grid point satisfies; nothing to check
		}
		if !res.Satisfied {
			t.Errorf("trial %d: exhaustive found grid answer at %v but ACQUIRE did not", trial, opt)
			continue
		}
		for _, rq := range res.Queries {
			if rq.Err > delta+1e-12 {
				t.Errorf("trial %d: reported query has err %v > δ=%v", trial, rq.Err, delta)
			}
			if rq.QScore > opt+gamma+1e-9 {
				t.Errorf("trial %d: QScore %v exceeds optimal %v + γ=%v", trial, rq.QScore, opt, gamma)
			}
		}
	}
}

func TestAggregateTypesEndToEnd(t *testing.T) {
	e := lineTable(t, 200) // v = i % 7 ∈ [0, 6]
	mk := func(c relq.Constraint) *relq.Query {
		return &relq.Query{Tables: []string{"t"}, Dims: []relq.Dimension{leDim(10)}, Constraint: c}
	}
	vcol := relq.ColumnRef{Table: "t", Column: "v"}

	// SUM: sum of v over x<=b grows with b.
	res, err := Run(e, mk(relq.Constraint{Func: relq.AggSum, Attr: vcol, Op: relq.CmpGE, Target: 200}), Options{Delta: 0.05})
	if err != nil || !res.Satisfied {
		t.Fatalf("SUM: %v %+v", err, res)
	}
	if res.Best.Aggregate < 200 {
		t.Errorf("SUM aggregate %v < target", res.Best.Aggregate)
	}

	// MAX: v caps at 6; target 6 must be reachable, target 10 not.
	res, err = Run(e, mk(relq.Constraint{Func: relq.AggMax, Attr: vcol, Op: relq.CmpGE, Target: 6}), Options{Delta: 0.001})
	if err != nil || !res.Satisfied {
		t.Fatalf("MAX reachable: %v %+v", err, res)
	}
	res, err = Run(e, mk(relq.Constraint{Func: relq.AggMax, Attr: vcol, Op: relq.CmpGE, Target: 10}), Options{Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Error("MAX 10 is unreachable (domain max 6)")
	}

	// MIN: min over any prefix is 0 (x=7 has v=0); with = constraint 0.
	res, err = Run(e, mk(relq.Constraint{Func: relq.AggMin, Attr: vcol, Op: relq.CmpEQ, Target: 0}), Options{Delta: 0.001})
	if err != nil || !res.Satisfied {
		t.Fatalf("MIN: %v %+v", err, res)
	}

	// AVG: v averages ≈3 over large prefixes.
	res, err = Run(e, mk(relq.Constraint{Func: relq.AggAvg, Attr: vcol, Op: relq.CmpEQ, Target: 3}), Options{Delta: 0.05})
	if err != nil || !res.Satisfied {
		t.Fatalf("AVG: %v %+v", err, res)
	}
}

func TestNormVariants(t *testing.T) {
	e := lineTable(t, 200)
	q := countQ(60, leDim(10))

	l2, err := norms.NewLp(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []norms.Norm{norms.L1{}, l2, norms.LInf{}} {
		res, err := Run(e, q, Options{Norm: n, Delta: 0.001})
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if !res.Satisfied || res.Best.Scores[0] != 50 {
			t.Errorf("%s: %+v", n.Name(), res.Best)
		}
	}

	// Weighted norm steers refinement to the cheap dimension.
	tbl := data.NewTable("g", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for x := 1; x <= 30; x++ {
		for y := 1; y <= 30; y++ {
			if err := tbl.AppendRow(data.FloatValue(float64(x)), data.FloatValue(float64(y))); err != nil {
				t.Fatal(err)
			}
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	ge := exec.New(cat)
	gq := &relq.Query{
		Tables: []string{"g"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "g", Column: "x"}, Bound: 10, Width: 100},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "g", Column: "y"}, Bound: 10, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 200},
	}
	// Penalise dim 0 heavily: the answer should refine dim 1.
	lw, err := norms.NewLp(1, []float64{10, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ge, gq, Options{Norm: lw, Gamma: 10, Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("weighted: %+v", res)
	}
	if res.Best.Scores[0] != 0 || res.Best.Scores[1] != 10 {
		t.Errorf("weighted norm should expand only dim 1: %v", res.Best.Scores)
	}
}

func TestFrontierValidation(t *testing.T) {
	e := lineTable(t, 50)
	q := countQ(20, leDim(10))
	l2, _ := norms.NewLp(2, nil)
	if _, err := Run(e, q, Options{Norm: l2, Frontier: FrontierBFS}); err == nil {
		t.Error("BFS with L2: expected error")
	}
	if _, err := Run(e, q, Options{Frontier: FrontierLInfLayers}); err == nil {
		t.Error("L∞ frontier with L1 norm: expected error")
	}
	if _, err := Run(e, q, Options{Frontier: FrontierKind(9)}); err == nil {
		t.Error("unknown frontier: expected error")
	}
	bad := norms.Custom{Fn: func(v []float64) float64 { return -v[0] }, Label: "bad"}
	if _, err := Run(e, q, Options{Norm: bad}); err == nil {
		t.Error("non-monotone custom norm: expected error")
	}
	good := norms.Custom{Fn: func(v []float64) float64 { return 3 * v[0] }, Label: "scaled"}
	if res, err := Run(e, q, Options{Norm: good, Delta: 0.01}); err != nil || !res.Satisfied {
		t.Errorf("monotone custom norm: %v %+v", err, res)
	}
}

func TestRunInputValidation(t *testing.T) {
	e := lineTable(t, 10)
	if _, err := Run(e, &relq.Query{}, Options{}); err == nil {
		t.Error("invalid query: expected error")
	}
	noDims := &relq.Query{
		Tables:     []string{"t"},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 5},
	}
	if _, err := Run(e, noDims, Options{}); err == nil {
		t.Error("no refinable predicates: expected error")
	}
	q := countQ(5, leDim(3))
	if _, err := Run(e, q, Options{Gamma: -1}); err == nil {
		t.Error("negative gamma: expected error")
	}
	badCol := countQ(5, relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "zzz"}, Bound: 1, Width: 1})
	if _, err := Run(e, badCol, Options{}); err == nil {
		t.Error("unknown column: expected error")
	}
}

func TestContraction(t *testing.T) {
	e := lineTable(t, 100)
	// x <= 50 returns 50 rows; constrain COUNT <= 20.
	q := &relq.Query{
		Tables:     []string{"t"},
		Dims:       []relq.Dimension{leDim(50)},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpLE, Target: 20},
	}
	res, err := Run(e, q, Options{Gamma: 10, Delta: 0.001})
	if err != nil {
		t.Fatalf("contract: %v", err)
	}
	if !res.Satisfied {
		t.Fatalf("contraction should satisfy: %+v", res)
	}
	// step 10: w=30 → bound 20 → count 20. Minimal contraction.
	if res.Best.Scores[0] != -30 {
		t.Errorf("contraction score = %v, want -30", res.Best.Scores[0])
	}
	if res.Best.Aggregate != 20 {
		t.Errorf("aggregate = %v, want 20", res.Best.Aggregate)
	}
	// Rendered SQL shows the tightened bound.
	sql := res.Best.ToSQL()
	if want := "(t.x <= 20)"; !strings.Contains(sql, want) {
		t.Errorf("ToSQL = %q, want %q inside", sql, want)
	}
}

func TestContractionUnsatisfiableEquality(t *testing.T) {
	e := lineTable(t, 100)
	// Equality dims cannot contract; the search must terminate.
	q := &relq.Query{
		Tables: []string{"t"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectEQ, Col: relq.ColumnRef{Table: "t", Column: "x"}, Bound: 5, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpLT, Target: 0.5},
	}
	res, err := Run(e, q, Options{Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Errorf("equality predicates cannot contract: %+v", res)
	}
}

func TestExplorerVerifyHook(t *testing.T) {
	e := lineTable(t, 300)
	q := countQ(100, leDim(10))
	domain, err := domainScores(e, q)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := newSpace(q, 10, domain)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		t.Fatal(err)
	}
	x := newExplorer(e, q, sp, spec, true)
	for u := 0; u < 8; u++ {
		if err := x.verifyAgainstDirect(point{u}); err != nil {
			t.Fatal(err)
		}
	}
}

// §7.1: per-predicate maximum refinement limits cap the corresponding
// refined-space axis.
func TestMaxScoreLimits(t *testing.T) {
	e := lineTable(t, 1000)
	capped := leDim(10)
	capped.MaxScore = 25 // axis ends at 25 score units
	q := countQ(500, capped)
	res, err := Run(e, q, Options{Gamma: 10, Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatalf("target needs score 490, cap is 25: %+v", res)
	}
	if res.Closest == nil || res.Closest.Scores[0] > 30+1e-9 {
		t.Errorf("closest exceeded the cap: %+v", res.Closest)
	}

	// With the cap lifted, the same target is reachable.
	q2 := countQ(500, leDim(10))
	res2, err := Run(e, q2, Options{Gamma: 10, Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Satisfied || res2.Best.Scores[0] != 490 {
		t.Errorf("uncapped search: %+v", res2.Best)
	}
}
