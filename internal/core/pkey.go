package core

import "math/bits"

// pointKeyer chooses the map-key representation for a refined space's
// grid points. When the per-dimension coordinate caps fit into 64 bits
// total, a point packs into one uint64 — a fixed-size comparable key
// that hashes without touching the heap. Otherwise the keyer falls
// back to point.key()'s 4-byte-per-coordinate string encoding, which
// stays collision-free over the full 32-bit coordinate range.
type pointKeyer struct {
	// widths[i] = bits.Len(maxCoord[i]): enough bits for 0..maxCoord[i].
	widths   []uint
	packable bool
}

func newPointKeyer(sp *space) *pointKeyer {
	k := &pointKeyer{widths: make([]uint, sp.dims)}
	total := uint(0)
	for i, m := range sp.maxCoord {
		k.widths[i] = uint(bits.Len(uint(m)))
		total += k.widths[i]
	}
	k.packable = total <= 64
	return k
}

// pack encodes p into a uint64; valid only when packable. Callers must
// pass grid points of the keyer's space (0 <= p[i] <= maxCoord[i]) —
// the Expand frontiers never emit coordinates past maxCoord, and the
// Explore recurrence only decrements, so the invariant holds for every
// point the explorer sees.
func (k *pointKeyer) pack(p point) uint64 {
	var v uint64
	for i, c := range p {
		v = v<<k.widths[i] | uint64(c)
	}
	return v
}

// pstore is a point-keyed map with a packed-uint64 fast path. The
// explorer's store and cache sit on the hottest loop of the search —
// every Eq. 17 fold performs several lookups per point — and hashing
// a fixed-size integer is markedly cheaper than allocating and hashing
// a string key.
type pstore[V any] struct {
	k    *pointKeyer
	fast map[uint64]V
	slow map[string]V
}

func newPstore[V any](k *pointKeyer) *pstore[V] {
	s := &pstore[V]{k: k}
	if k.packable {
		s.fast = make(map[uint64]V)
	} else {
		s.slow = make(map[string]V)
	}
	return s
}

func (s *pstore[V]) get(p point) (V, bool) {
	if s.k.packable {
		v, ok := s.fast[s.k.pack(p)]
		return v, ok
	}
	v, ok := s.slow[p.key()]
	return v, ok
}

func (s *pstore[V]) put(p point, v V) {
	if s.k.packable {
		s.fast[s.k.pack(p)] = v
	} else {
		s.slow[p.key()] = v
	}
}

func (s *pstore[V]) del(p point) {
	if s.k.packable {
		delete(s.fast, s.k.pack(p))
	} else {
		delete(s.slow, p.key())
	}
}

func (s *pstore[V]) len() int {
	if s.k.packable {
		return len(s.fast)
	}
	return len(s.slow)
}

// free drops the backing maps so a finished search releases its
// per-point state immediately instead of pinning it until the explorer
// itself is collected. Reads after free miss; writes panic — the store
// is dead.
func (s *pstore[V]) free() {
	s.fast = nil
	s.slow = nil
}
