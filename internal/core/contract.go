package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"acquire/internal/agg"
	"acquire/internal/obs"
	"acquire/internal/relq"
)

// Contract handles the inverse problem of §7.2: the original query
// returns too much (constraints with <= or <, or an = constraint that
// the original query already overshoots). Per the paper, the refined
// space is re-anchored between Q'min (every predicate at its most
// selective value) and Q, and traversed minimizing refinement with
// respect to Q.
//
// Implementation note: each candidate is evaluated as a whole query
// against a tightened clone of Q. The incremental sub-aggregate store
// of §5 does not transfer to shrinking queries for non-invertible
// aggregates (MIN/MAX cannot be "subtracted"), so contraction pays one
// evaluation-layer execution per candidate; the paper makes no
// performance claims for this extension.
func Contract(e Evaluator, q *relq.Query, opts Options) (*Result, error) {
	return ContractContext(context.Background(), e, q, opts)
}

// ContractContext is Contract with cancellation, checked before every
// candidate evaluation. On cancellation the partial Result gathered so
// far is returned together with the context's error.
func ContractContext(ctx context.Context, e Evaluator, q *relq.Query, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		return nil, err
	}
	errFn := opts.ErrFn
	if errFn == nil {
		errFn = contractionError(q.Constraint)
	}

	// Contraction limits: the score at which each predicate becomes
	// maximally selective (its Q'min position).
	limits, err := contractionLimits(e, q)
	if err != nil {
		return nil, err
	}
	sp, err := newSpace(q, opts.Gamma, limits)
	if err != nil {
		return nil, err
	}

	// The w-space frontier explores contraction amounts: w = 0 is Q,
	// growing w tightens predicates. Ordering by ||w|| minimizes
	// refinement w.r.t. Q exactly as §7.2 requires.
	fr, err := makeFrontier(opts, sp)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	target := q.Constraint.Target
	const eps = 1e-9
	bestLayer := math.Inf(1)
	closestErr := math.Inf(1)

	// Contraction shares the search counters with runSearch; its wall
	// time lands in a dedicated "contract" phase histogram.
	o := opts.Observer
	span := o.StartPhase("contract")
	o.Counter("acquire_searches_total", "Refinement searches started.").Inc()
	pointsC := o.Counter("acquire_search_points_explored_total", "Grid queries investigated across all searches.")
	o.Info("contract.start", "gamma", opts.Gamma, "delta", opts.Delta,
		"norm", opts.Norm.Name(), "dims", q.NumDims(), "target", target)

	// Tracing mirrors runSearch: contraction gets its own root (or
	// nests under a caller span) and every candidate's AggregateBatch
	// call carries the root via ctx, so engine and scatter spans nest
	// under it.
	parentSp := obs.SpanFromContext(ctx)
	var tr *obs.Trace
	var root obs.SpanRef
	switch {
	case parentSp.Active():
		root = parentSp.StartChild("contract")
	case o.TracingEnabled():
		tr = obs.NewTrace(o.SearchID(), o.Clock())
		root = tr.NewSpan(0, "contract")
	}
	if root.Active() {
		root.SetAttrs(obs.Float("gamma", opts.Gamma), obs.Float("delta", opts.Delta),
			obs.String("norm", opts.Norm.Name()), obs.Int("dims", int64(q.NumDims())))
	}
	ctxEval := obs.ContextWithSpan(ctx, root)

	finish := func() *Result {
		sort.Slice(res.Queries, func(i, j int) bool { return res.Queries[i].QScore < res.Queries[j].QScore })
		if len(res.Queries) > 0 {
			res.Satisfied = true
			res.Best = &res.Queries[0]
		}
		span.End()
		if root.Active() {
			root.SetAttrs(obs.Bool("satisfied", res.Satisfied),
				obs.Int("explored", int64(res.Explored)),
				obs.Int("cell_queries", int64(res.CellQueries)),
				obs.Bool("exhausted", res.Exhausted))
			root.End()
			o.Recorder().Add(tr)
		}
		o.Info("contract.done", "satisfied", res.Satisfied, "explored", res.Explored,
			"cell_queries", res.CellQueries, "exhausted", res.Exhausted)
		return res
	}

	for {
		if err := ctx.Err(); err != nil {
			return finish(), err
		}
		pt, ok := fr.next()
		if !ok {
			res.Exhausted = len(res.Queries) == 0
			break
		}
		w := pt.scores(sp.step)
		qs := opts.Norm.Score(w)
		if len(res.Queries) > 0 && qs > bestLayer+eps {
			break
		}
		if res.Explored >= opts.MaxExplored {
			res.Exhausted = true
			res.Note = "exploration budget exhausted"
			break
		}
		res.Explored++
		pointsC.Inc()

		contracted, scores := tightenQuery(q, w)
		parts, err := e.AggregateBatch(ctxEval, contracted, []relq.Region{relq.PrefixRegion(make([]float64, len(q.Dims)))})
		if err != nil {
			if isCancellation(err) {
				return finish(), err
			}
			span.End()
			if root.Active() {
				root.SetAttrs(obs.String("error", err.Error()))
				root.End()
				o.Recorder().Add(tr)
			}
			return nil, err
		}
		partial := parts[0]
		res.CellQueries++
		actual := spec.Final(partial)
		ev := errFn(target, actual)

		rq := relq.RefinedQuery{Base: q, Scores: scores, QScore: qs, Aggregate: actual, Err: ev}
		if ev < closestErr-eps {
			closestErr = ev
			c := rq
			res.Closest = &c
		}
		if ev <= opts.Delta {
			res.Queries = append(res.Queries, rq)
			if qs < bestLayer {
				bestLayer = qs
			}
		}
	}

	return finish(), nil
}

// tightenQuery clones q with every dimension's bound contracted by
// w[i] score units, returning the clone plus the signed score vector
// (negative = contraction) that renders correctly through
// RefinedQuery.ToSQL.
func tightenQuery(q *relq.Query, w []float64) (*relq.Query, []float64) {
	out := q.Clone()
	scores := make([]float64, len(w))
	for i := range out.Dims {
		d := &out.Dims[i]
		scores[i] = -w[i]
		switch d.Kind {
		case relq.SelectLE, relq.SelectGE:
			d.Bound = d.BoundAt(-w[i])
		case relq.JoinBand:
			b := d.BoundAt(-w[i])
			if b < 0 {
				b = 0
			}
			d.Base = b
		case relq.SelectEQ:
			// Equality predicates cannot contract; limits force w=0.
		}
	}
	return out, scores
}

// contractionLimits computes, per dimension, the maximum meaningful
// contraction score (reaching Q'min: the predicate excludes every
// tuple).
func contractionLimits(e Evaluator, q *relq.Query) ([]float64, error) {
	cat := e.Catalog()
	stats := func(ref relq.ColumnRef) (minV, maxV float64, err error) {
		t, err := cat.Table(ref.Table)
		if err != nil {
			return 0, 0, err
		}
		ord := t.Schema().Ordinal(ref.Column)
		if ord < 0 {
			return 0, 0, fmt.Errorf("core: table %s has no column %q", ref.Table, ref.Column)
		}
		s, err := t.Stats(ord)
		if err != nil {
			return 0, 0, err
		}
		return s.Min, s.Max, nil
	}
	out := make([]float64, len(q.Dims))
	for i := range q.Dims {
		d := &q.Dims[i]
		switch d.Kind {
		case relq.SelectLE:
			minV, _, err := stats(d.Col)
			if err != nil {
				return nil, err
			}
			out[i] = math.Max(0, (d.Bound-minV)*(100/d.Width))
		case relq.SelectGE:
			_, maxV, err := stats(d.Col)
			if err != nil {
				return nil, err
			}
			out[i] = math.Max(0, (maxV-d.Bound)*(100/d.Width))
		case relq.SelectEQ:
			out[i] = 0
		case relq.JoinBand:
			out[i] = math.Max(0, d.Base*(100/d.Width))
		}
	}
	return out, nil
}

// contractionError penalises only overshoot, normalised by the target:
// the mirror image of agg.HingeError for too-many-results constraints.
func contractionError(c relq.Constraint) agg.ErrorFunc {
	if c.Op == relq.CmpEQ {
		return agg.RelativeError
	}
	return func(expected, actual float64) float64 {
		if math.IsNaN(actual) {
			// Empty result trivially satisfies an upper-bound
			// constraint for COUNT/SUM; MIN/MAX have no value at all.
			if c.Func == relq.AggCount || c.Func == relq.AggSum {
				return 0
			}
			return math.Inf(1)
		}
		if actual <= expected {
			return 0
		}
		if expected == 0 {
			return math.Inf(1)
		}
		return (actual - expected) / expected
	}
}
