package core

import (
	"math"
	"math/rand"
	"testing"

	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/relq"
)

// Metamorphic invariances of the refinement search: transformations of
// the input that must leave the answer predictably unchanged. These
// catch whole classes of bookkeeping bugs (axis mixups, width/score
// confusion, data-order dependence) that example-based tests miss.

func randomEngine2D(t *testing.T, seed int64, n int) (*exec.Engine, [][2]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][2]float64, n)
	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for i := range rows {
		rows[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
		if err := tbl.AppendRow(data.FloatValue(rows[i][0]), data.FloatValue(rows[i][1])); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return exec.New(cat), rows
}

func query2D(target float64, bx, by float64) *relq.Query {
	return &relq.Query{
		Tables: []string{"t"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "x"}, Bound: bx, Width: 100},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "y"}, Bound: by, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: target},
	}
}

// Swapping the two dimensions (and the data columns with them) must
// swap the answer's score vector and nothing else.
func TestDimensionPermutationEquivariance(t *testing.T) {
	e, rows := randomEngine2D(t, 31, 4000)

	// Mirrored engine: columns swapped.
	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for _, r := range rows {
		if err := tbl.AppendRow(data.FloatValue(r[1]), data.FloatValue(r[0])); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	em := exec.New(cat)

	q := query2D(2500, 30, 45)
	qm := query2D(2500, 45, 30) // bounds swapped to match swapped columns

	a, err := Run(e, q, Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(em, qm, Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if a.Satisfied != b.Satisfied || len(a.Queries) != len(b.Queries) {
		t.Fatalf("permuted search differs: %+v vs %+v", a, b)
	}
	if a.Satisfied {
		if a.Best.QScore != b.Best.QScore {
			t.Errorf("best QScore differs: %v vs %v", a.Best.QScore, b.Best.QScore)
		}
		if a.Best.Scores[0] != b.Best.Scores[1] || a.Best.Scores[1] != b.Best.Scores[0] {
			t.Errorf("scores not swapped: %v vs %v", a.Best.Scores, b.Best.Scores)
		}
	}
}

// An affine transform of an attribute (x -> a·x + c, a > 0), with the
// bound and width transformed alike, leaves counts — and therefore the
// whole search trajectory — untouched.
func TestAffineTransformInvariance(t *testing.T) {
	e, rows := randomEngine2D(t, 37, 4000)
	const a, c = 7.5, -300.0

	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for _, r := range rows {
		if err := tbl.AppendRow(data.FloatValue(a*r[0]+c), data.FloatValue(r[1])); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	et := exec.New(cat)

	orig := query2D(2500, 30, 45)
	trans := query2D(2500, a*30+c, 45)
	trans.Dims[0].Width = 100 * a // widths scale with the attribute

	ra, err := Run(e, orig, Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(et, trans, Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Satisfied != rb.Satisfied || ra.Explored != rb.Explored {
		t.Fatalf("affine transform changed the search: %+v vs %+v", ra, rb)
	}
	if ra.Satisfied {
		if !relq.ScoresAlmostEqual(ra.Best.Scores, rb.Best.Scores) {
			t.Errorf("scores differ: %v vs %v", ra.Best.Scores, rb.Best.Scores)
		}
		if ra.Best.Aggregate != rb.Best.Aggregate {
			t.Errorf("aggregates differ: %v vs %v", ra.Best.Aggregate, rb.Best.Aggregate)
		}
	}
}

// Duplicating every row doubles all counts: searching with a doubled
// target over the doubled data must find the same refinement scores.
func TestDataDuplicationScaling(t *testing.T) {
	e, rows := randomEngine2D(t, 41, 3000)

	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for _, r := range rows {
		for k := 0; k < 2; k++ {
			if err := tbl.AppendRow(data.FloatValue(r[0]), data.FloatValue(r[1])); err != nil {
				t.Fatal(err)
			}
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	e2 := exec.New(cat)

	q1 := query2D(1800, 30, 45)
	q2 := query2D(3600, 30, 45)

	a, err := Run(e, q1, Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(e2, q2, Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if a.Satisfied != b.Satisfied {
		t.Fatalf("duplication changed satisfiability")
	}
	if a.Satisfied {
		if !relq.ScoresAlmostEqual(a.Best.Scores, b.Best.Scores) {
			t.Errorf("scores differ: %v vs %v", a.Best.Scores, b.Best.Scores)
		}
		if math.Abs(b.Best.Aggregate-2*a.Best.Aggregate) > 1e-9 {
			t.Errorf("aggregate not doubled: %v vs %v", a.Best.Aggregate, b.Best.Aggregate)
		}
	}
}

// Row order must not matter: shuffling the table leaves every result
// identical (the engine is set-oriented).
func TestRowOrderInvariance(t *testing.T) {
	e, rows := randomEngine2D(t, 43, 3000)
	rng := rand.New(rand.NewSource(99))
	shuffled := append([][2]float64(nil), rows...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for _, r := range shuffled {
		if err := tbl.AppendRow(data.FloatValue(r[0]), data.FloatValue(r[1])); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	es := exec.New(cat)

	q := query2D(2000, 30, 45)
	a, err := Run(e, q.Clone(), Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(es, q.Clone(), Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if a.Satisfied != b.Satisfied || a.Explored != b.Explored {
		t.Fatalf("row order changed the search: %+v vs %+v", a, b)
	}
	if a.Satisfied && (a.Best.QScore != b.Best.QScore || a.Best.Aggregate != b.Best.Aggregate) {
		t.Errorf("row order changed the answer: %+v vs %+v", a.Best, b.Best)
	}
}
