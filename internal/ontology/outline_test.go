package ontology

import (
	"strings"
	"testing"
)

const foodOutline = `# Figure 7(b)
Restaurants
  Mediterranean
    Greek
      Gyro
      Falafel
    Italian
  MiddleEastern
    Shawarma
`

func TestParseOutline(t *testing.T) {
	tr, err := ParseOutline(strings.NewReader(foodOutline))
	if err != nil {
		t.Fatalf("ParseOutline: %v", err)
	}
	d, err := tr.Distance("Gyro", "Shawarma")
	if err != nil || d != 5 {
		t.Errorf("Distance(Gyro, Shawarma) = %v, %v; want 5", d, err)
	}
	if got := len(tr.Nodes()); got != 8 {
		t.Errorf("Nodes = %d, want 8", got)
	}
	leaves := tr.Leaves()
	want := []string{"Falafel", "Gyro", "Italian", "Shawarma"}
	if len(leaves) != len(want) {
		t.Fatalf("Leaves = %v", leaves)
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Errorf("Leaves[%d] = %q, want %q", i, leaves[i], want[i])
		}
	}
}

func TestParseOutlineTabsAndComments(t *testing.T) {
	in := "# taxonomy\nroot\n\tkid\n\t\tgrandkid\n\n\tkid2\n"
	tr, err := ParseOutline(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseOutline: %v", err)
	}
	d, err := tr.Distance("grandkid", "kid2")
	if err != nil || d != 3 {
		t.Errorf("distance = %v, %v; want 3", d, err)
	}
}

func TestParseOutlineErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"comments only", "# nothing\n\n"},
		{"indented root", "  root\n"},
		{"second root", "a\nb\n"},
		{"duplicate node", "a\n  b\n  b\n"},
	}
	for _, c := range cases {
		if _, err := ParseOutline(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestOutlineRoundTrip(t *testing.T) {
	tr, err := ParseOutline(strings.NewReader(foodOutline))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteOutline(&sb); err != nil {
		t.Fatalf("WriteOutline: %v", err)
	}
	tr2, err := ParseOutline(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	n1, n2 := tr.Nodes(), tr2.Nodes()
	if len(n1) != len(n2) {
		t.Fatalf("node sets differ: %v vs %v", n1, n2)
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Errorf("node %d: %q vs %q", i, n1[i], n2[i])
		}
	}
	// Distances preserved.
	for _, pair := range [][2]string{{"Gyro", "Italian"}, {"Greek", "Shawarma"}} {
		d1, err1 := tr.Distance(pair[0], pair[1])
		d2, err2 := tr2.Distance(pair[0], pair[1])
		if err1 != nil || err2 != nil || d1 != d2 {
			t.Errorf("distance %v: %v/%v vs %v/%v", pair, d1, err1, d2, err2)
		}
	}
}
