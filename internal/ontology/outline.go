package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseOutline reads a taxonomy from an indentation-based outline, one
// node per line, children indented more deeply than their parent (any
// consistent mix of spaces/tabs, tabs counting as one level each):
//
//	Restaurants
//	  Mediterranean
//	    Greek
//	      Gyro
//	      Falafel
//	    Italian
//	  MiddleEastern
//	    Shawarma
//
// Blank lines and lines starting with '#' are ignored. The first node
// is the root and must be the only node at its depth.
func ParseOutline(r io.Reader) (*Tree, error) {
	type frame struct {
		indent int
		name   string
	}
	var tree *Tree
	var stack []frame

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		trimmed := strings.TrimLeft(raw, " \t")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := indentWidth(raw[:len(raw)-len(trimmed)])
		name := strings.TrimSpace(trimmed)

		if tree == nil {
			if indent != 0 {
				return nil, fmt.Errorf("ontology: line %d: root %q must not be indented", lineNo, name)
			}
			tree = NewTree(name)
			stack = []frame{{indent: 0, name: name}}
			continue
		}
		// Pop to the nearest shallower frame: that's the parent.
		for len(stack) > 0 && stack[len(stack)-1].indent >= indent {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil, fmt.Errorf("ontology: line %d: %q is a second root", lineNo, name)
		}
		if err := tree.Add(stack[len(stack)-1].name, name); err != nil {
			return nil, fmt.Errorf("ontology: line %d: %w", lineNo, err)
		}
		stack = append(stack, frame{indent: indent, name: name})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tree == nil {
		return nil, fmt.Errorf("ontology: empty outline")
	}
	return tree, nil
}

func indentWidth(ws string) int {
	w := 0
	for _, c := range ws {
		if c == '\t' {
			w += 4
		} else {
			w++
		}
	}
	return w
}

// WriteOutline renders the tree back into the outline format (two
// spaces per level, children in insertion order). ParseOutline and
// WriteOutline round-trip.
func (t *Tree) WriteOutline(w io.Writer) error {
	var rec func(n *node, depth int) error
	rec = func(n *node, depth int) error {
		if _, err := fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", depth), n.name); err != nil {
			return err
		}
		for _, c := range n.children {
			if err := rec(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(t.root, 0)
}

// Nodes returns all node names in the tree, sorted.
func (t *Tree) Nodes() []string {
	out := make([]string, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n.name)
	}
	sort.Strings(out)
	return out
}

// Leaves returns the names of all leaf nodes, sorted.
func (t *Tree) Leaves() []string {
	var out []string
	for _, n := range t.nodes {
		if len(n.children) == 0 {
			out = append(out, n.name)
		}
	}
	sort.Strings(out)
	return out
}
