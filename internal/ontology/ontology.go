// Package ontology implements the categorical-predicate extension of
// §7.3: refinement distance between categorical values is measured on a
// taxonomy tree, where rolling up to an ancestor relaxes the predicate
// and drilling down contracts it. The adapter materialises a numeric
// distance column so a categorical predicate becomes an ordinary
// SelectLE dimension over tree distance — plugging into ACQUIRE with no
// algorithm changes, exactly as the paper claims.
package ontology

import (
	"fmt"
	"strings"

	"acquire/internal/data"
	"acquire/internal/relq"
)

// Tree is a taxonomy over categorical values. Leaves (and interior
// nodes) are addressed by name; names are unique within a tree.
type Tree struct {
	root  *node
	nodes map[string]*node
}

type node struct {
	name     string
	parent   *node
	depth    int
	children []*node
}

// NewTree creates a taxonomy with the given root label.
func NewTree(root string) *Tree {
	r := &node{name: root}
	return &Tree{root: r, nodes: map[string]*node{key(root): r}}
}

func key(name string) string { return strings.ToLower(name) }

// Add inserts a value under the given parent.
func (t *Tree) Add(parent, name string) error {
	p, ok := t.nodes[key(parent)]
	if !ok {
		return fmt.Errorf("ontology: unknown parent %q", parent)
	}
	if _, dup := t.nodes[key(name)]; dup {
		return fmt.Errorf("ontology: duplicate node %q", name)
	}
	n := &node{name: name, parent: p, depth: p.depth + 1}
	p.children = append(p.children, n)
	t.nodes[key(name)] = n
	return nil
}

// MustAdd is Add that panics; for statically known taxonomies.
func (t *Tree) MustAdd(parent, name string) {
	if err := t.Add(parent, name); err != nil {
		panic(err)
	}
}

// Contains reports whether the tree knows the value.
func (t *Tree) Contains(name string) bool {
	_, ok := t.nodes[key(name)]
	return ok
}

// Depth returns a node's depth (root = 0).
func (t *Tree) Depth(name string) (int, error) {
	n, ok := t.nodes[key(name)]
	if !ok {
		return 0, fmt.Errorf("ontology: unknown node %q", name)
	}
	return n.depth, nil
}

// Distance is the §7.3 refinement distance between two values: the
// number of roll-up steps from each value to their lowest common
// ancestor, summed. Rolling the predicate up one level costs one unit;
// two siblings are distance 2 apart; a value matched exactly is 0.
func (t *Tree) Distance(a, b string) (float64, error) {
	if _, ok := t.nodes[key(a)]; !ok {
		return 0, fmt.Errorf("ontology: unknown node %q", a)
	}
	if _, ok := t.nodes[key(b)]; !ok {
		return 0, fmt.Errorf("ontology: unknown node %q", b)
	}
	return t.exactDistance(a, b), nil
}

func (t *Tree) exactDistance(a, b string) float64 {
	na, nb := t.nodes[key(a)], t.nodes[key(b)]
	// Collect ancestors of a.
	anc := map[*node]int{}
	steps := 0
	for n := na; n != nil; n = n.parent {
		anc[n] = steps
		steps++
	}
	steps = 0
	for n := nb; n != nil; n = n.parent {
		if up, ok := anc[n]; ok {
			return float64(up + steps)
		}
		steps++
	}
	return float64(na.depth + nb.depth) // disjoint roots: defensive
}

// DistanceToSet is the minimum distance from value to any member of
// the target set — the violation of a tuple against an IN-predicate.
func (t *Tree) DistanceToSet(value string, set []string) (float64, error) {
	if len(set) == 0 {
		return 0, fmt.Errorf("ontology: empty target set")
	}
	best := -1.0
	for _, s := range set {
		d, err := t.Distance(value, s)
		if err != nil {
			return 0, err
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// BindColumn materialises the distance of every row's categorical value
// to the target set as a new numeric column "<col>__dist" on a copy of
// the table, and returns the refinable dimension over it. The rewritten
// query replaces the FixedStringIn predicate with this dimension:
// refinement score u admits values within u roll-up units of the
// target set (Width 100 per the degenerate-interval convention, §2.3).
func BindColumn(t *Tree, tbl *data.Table, column string, target []string) (*data.Table, relq.Dimension, error) {
	ord := tbl.Schema().Ordinal(column)
	if ord < 0 {
		return nil, relq.Dimension{}, fmt.Errorf("ontology: table %s has no column %q", tbl.Name(), column)
	}
	vals, ok := tbl.Strings(ord)
	if !ok {
		return nil, relq.Dimension{}, fmt.Errorf("ontology: column %s is not TEXT", column)
	}
	for _, s := range target {
		if !t.Contains(s) {
			return nil, relq.Dimension{}, fmt.Errorf("ontology: target %q not in taxonomy", s)
		}
	}

	distCol := column + "__dist"
	cols := append([]data.Column(nil), tbl.Schema().Columns...)
	cols = append(cols, data.Column{Name: distCol, Type: data.Float64})
	schema, err := data.NewSchema(cols...)
	if err != nil {
		return nil, relq.Dimension{}, err
	}
	out := data.NewTable(tbl.Name(), schema)
	row := make([]data.Value, len(cols))
	for r := 0; r < tbl.NumRows(); r++ {
		for c := range tbl.Schema().Columns {
			row[c] = tbl.ValueAt(r, c)
		}
		d, err := t.DistanceToSet(vals[r], target)
		if err != nil {
			// Unknown value: treat as maximally distant rather than
			// failing the whole rewrite.
			d = float64(2 * len(t.nodes))
		}
		row[len(cols)-1] = data.FloatValue(d)
		if err := out.AppendRow(row...); err != nil {
			return nil, relq.Dimension{}, err
		}
	}

	dim := relq.Dimension{
		Kind:  relq.SelectLE,
		Col:   relq.ColumnRef{Table: tbl.Name(), Column: distCol},
		Bound: 0,   // distance 0 = exact match with the target set
		Width: 100, // degenerate interval convention
		Name:  column + " ontology distance",
	}
	return out, dim, nil
}
