package ontology

import (
	"testing"

	"acquire/internal/data"
	"acquire/internal/relq"
)

// foodTree builds Figure 7(b)'s taxonomy: restaurants → cuisines →
// dishes.
func foodTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree("Restaurants")
	tr.MustAdd("Restaurants", "Mediterranean")
	tr.MustAdd("Restaurants", "MiddleEastern")
	tr.MustAdd("Mediterranean", "Greek")
	tr.MustAdd("Mediterranean", "Italian")
	tr.MustAdd("Greek", "Gyro")
	tr.MustAdd("Greek", "Falafel")
	tr.MustAdd("MiddleEastern", "Shawarma")
	return tr
}

func TestTreeBasics(t *testing.T) {
	tr := foodTree(t)
	if !tr.Contains("gyro") { // case-insensitive
		t.Error("Contains(gyro) = false")
	}
	if tr.Contains("Sushi") {
		t.Error("Contains(Sushi) = true")
	}
	d, err := tr.Depth("Gyro")
	if err != nil || d != 3 {
		t.Errorf("Depth(Gyro) = %d, %v", d, err)
	}
	if err := tr.Add("NoSuch", "x"); err == nil {
		t.Error("Add under unknown parent: expected error")
	}
	if err := tr.Add("Greek", "Gyro"); err == nil {
		t.Error("duplicate Add: expected error")
	}
}

func TestDistance(t *testing.T) {
	tr := foodTree(t)
	cases := []struct {
		a, b string
		want float64
	}{
		{"Gyro", "Gyro", 0},
		{"Gyro", "Greek", 1},    // one roll-up (§7.3: relaxation)
		{"Gyro", "Falafel", 2},  // siblings
		{"Gyro", "Italian", 3},  // up 2, down 1
		{"Gyro", "Shawarma", 5}, // up 3, down 2
		{"Greek", "Italian", 2},
		{"Restaurants", "Gyro", 3},
	}
	for _, c := range cases {
		got, err := tr.Distance(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Distance(%s, %s) = %v, %v; want %v", c.a, c.b, got, err, c.want)
		}
		// Symmetry.
		rev, err := tr.Distance(c.b, c.a)
		if err != nil || rev != c.want {
			t.Errorf("Distance(%s, %s) = %v (asymmetric)", c.b, c.a, rev)
		}
	}
	if _, err := tr.Distance("Gyro", "Sushi"); err == nil {
		t.Error("unknown node: expected error")
	}
	if _, err := tr.Distance("Sushi", "Gyro"); err == nil {
		t.Error("unknown node: expected error")
	}
}

func TestDistanceToSet(t *testing.T) {
	tr := foodTree(t)
	d, err := tr.DistanceToSet("Shawarma", []string{"Gyro", "Falafel", "MiddleEastern"})
	if err != nil || d != 1 {
		t.Errorf("DistanceToSet = %v, %v; want 1", d, err)
	}
	if _, err := tr.DistanceToSet("Gyro", nil); err == nil {
		t.Error("empty set: expected error")
	}
}

func TestBindColumn(t *testing.T) {
	tr := foodTree(t)
	tbl := data.NewTable("places", data.MustSchema(
		data.Column{Name: "id", Type: data.Int64},
		data.Column{Name: "cuisine", Type: data.String},
	))
	for i, c := range []string{"Gyro", "Falafel", "Italian", "Shawarma"} {
		if err := tbl.AppendRow(data.IntValue(int64(i)), data.StringValue(c)); err != nil {
			t.Fatal(err)
		}
	}
	out, dim, err := BindColumn(tr, tbl, "cuisine", []string{"Gyro"})
	if err != nil {
		t.Fatalf("BindColumn: %v", err)
	}
	if dim.Kind != relq.SelectLE || dim.Bound != 0 || dim.Col.Column != "cuisine__dist" {
		t.Errorf("dim = %+v", dim)
	}
	ord := out.Schema().Ordinal("cuisine__dist")
	if ord < 0 {
		t.Fatal("distance column missing")
	}
	want := []float64{0, 2, 3, 5}
	for r, w := range want {
		v, err := out.NumericAt(r, ord)
		if err != nil || v != w {
			t.Errorf("row %d dist = %v, %v; want %v", r, v, err, w)
		}
	}

	// A grid query refined by score u admits values within u roll-ups.
	if dim.Violation(2) != 2 {
		t.Errorf("Violation(2) = %v", dim.Violation(2))
	}

	// Error paths.
	if _, _, err := BindColumn(tr, tbl, "nope", []string{"Gyro"}); err == nil {
		t.Error("unknown column: expected error")
	}
	if _, _, err := BindColumn(tr, tbl, "id", []string{"Gyro"}); err == nil {
		t.Error("numeric column: expected error")
	}
	if _, _, err := BindColumn(tr, tbl, "cuisine", []string{"Sushi"}); err == nil {
		t.Error("target outside taxonomy: expected error")
	}
}

func TestBindColumnUnknownValueMaxDistance(t *testing.T) {
	tr := foodTree(t)
	tbl := data.NewTable("places", data.MustSchema(
		data.Column{Name: "cuisine", Type: data.String},
	))
	if err := tbl.AppendRow(data.StringValue("Sushi")); err != nil {
		t.Fatal(err)
	}
	out, _, err := BindColumn(tr, tbl, "cuisine", []string{"Gyro"})
	if err != nil {
		t.Fatalf("BindColumn: %v", err)
	}
	v, err := out.NumericAt(0, out.Schema().Ordinal("cuisine__dist"))
	if err != nil {
		t.Fatal(err)
	}
	if v <= 5 {
		t.Errorf("unknown value distance %v should exceed any in-tree distance", v)
	}
}
