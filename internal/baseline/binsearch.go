package baseline

import (
	"context"
	"fmt"
	"math"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/relq"
)

// BinSearchOptions tunes the BinSearch baseline.
type BinSearchOptions struct {
	// Delta is the aggregate error threshold.
	Delta float64
	// Order permutes the predicate refinement order; nil means query
	// order. The paper's §8.4.1 observation — "even a single change to
	// the order can change the error by a factor of 100" — is
	// reproducible by sweeping this.
	Order []int
	// MaxProbes bounds binary-search probes per predicate (default 20).
	MaxProbes int
}

// BinSearch implements the §8.2 binary-search extension of [11]: refine
// one predicate at a time, binary-searching its expansion for the
// target aggregate while holding the others fixed. If a predicate's
// full expansion still undershoots, it is pinned at its maximum and the
// search moves to the next predicate in order.
//
// Each probe is a whole-query execution; the method is fast (O(d log)
// probes) but order-sensitive and gives no proximity guarantee (Table 1:
// cardinality only, no proximity criterion).
func BinSearch(e exec.Evaluator, q *relq.Query, opts BinSearchOptions) (*Outcome, error) {
	return BinSearchContext(context.Background(), e, q, opts)
}

// BinSearchContext is BinSearch with cancellation, checked at every
// probe.
func BinSearchContext(ctx context.Context, e exec.Evaluator, q *relq.Query, opts BinSearchOptions) (*Outcome, error) {
	sp := e.Observer().StartPhase("baseline_binsearch")
	defer sp.End()
	if opts.Delta == 0 {
		opts.Delta = 0.05
	}
	if opts.MaxProbes == 0 {
		opts.MaxProbes = 20
	}
	order := opts.Order
	if order == nil {
		order = make([]int, len(q.Dims))
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != len(q.Dims) {
		return nil, fmt.Errorf("baseline: order has %d entries for %d dims", len(order), len(q.Dims))
	}
	seen := make(map[int]bool, len(order))
	for _, i := range order {
		if i < 0 || i >= len(q.Dims) || seen[i] {
			return nil, fmt.Errorf("baseline: order is not a permutation of dimensions")
		}
		seen[i] = true
	}

	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		return nil, err
	}
	errFn := agg.DefaultError(q.Constraint)
	limits, err := maxScores(e, q)
	if err != nil {
		return nil, err
	}

	before := e.Snapshot()
	target := q.Constraint.Target
	scores := make([]float64, len(q.Dims))

	best := math.Inf(1)
	bestScores := append([]float64(nil), scores...)
	bestVal := math.NaN()

	consider := func(val float64) {
		ev := errFn(target, val)
		if ev < best {
			best = ev
			bestScores = append(bestScores[:0], scores...)
			bestVal = val
		}
	}

	val, err := evalAt(ctx, e, q, spec, scores)
	if err != nil {
		return nil, err
	}
	consider(val)

	// The probe schedule is fixed: every predicate runs its full binary
	// search regardless of intermediate errors. This is what makes
	// BinSearch's execution time constant across aggregate ratios
	// (§8.4.1: "TQGen and BinSearch both need to explore the same
	// number of queries each time and hence their execution time
	// remains constant") — and what makes its final error so sensitive
	// to predicate order.
	for _, di := range order {
		// Does fully expanding this predicate reach the target?
		lo, hi := 0.0, limits[di]
		if hi <= 0 {
			continue
		}
		scores[di] = hi
		val, err := evalAt(ctx, e, q, spec, scores)
		if err != nil {
			return nil, err
		}
		consider(val)
		if undershoots(q.Constraint, val) {
			// Even the full expansion undershoots: pin at max, move on.
			continue
		}
		// Binary search inside [lo, hi].
		for probe := 0; probe < opts.MaxProbes; probe++ {
			mid := (lo + hi) / 2
			scores[di] = mid
			val, err := evalAt(ctx, e, q, spec, scores)
			if err != nil {
				return nil, err
			}
			consider(val)
			if undershoots(q.Constraint, val) {
				lo = mid
			} else {
				hi = mid
			}
		}
		scores[di] = bestScores[di]
	}

	after := e.Snapshot()
	return &Outcome{
		Method:     "BinSearch",
		Satisfied:  best <= opts.Delta,
		Aggregate:  bestVal,
		Err:        best,
		Scores:     bestScores,
		QScore:     l1(bestScores),
		Executions: after.Queries - before.Queries,
	}, nil
}

// undershoots reports whether the value is below the target (the
// direction expansion fixes).
func undershoots(c relq.Constraint, val float64) bool {
	if math.IsNaN(val) {
		return true
	}
	return val < c.Target
}
