package baseline

import (
	"context"
	"math"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/relq"
)

// TQGenOptions tunes the TQGen baseline. Defaults follow the shape of
// the SIGMOD'08 parameterisation the paper reuses ("our experiments use
// the TQGen parameters reported in [11]"): a coarse value grid per
// predicate, iteratively zoomed around the best combination.
type TQGenOptions struct {
	// Delta is the aggregate error threshold.
	Delta float64
	// GridK is the number of candidate values per predicate per round.
	GridK int
	// Rounds is the number of zoom iterations.
	Rounds int
}

func (o TQGenOptions) withDefaults() TQGenOptions {
	if o.Delta == 0 {
		o.Delta = 0.05
	}
	if o.GridK == 0 {
		o.GridK = 5
	}
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	return o
}

// TQGen implements the §8.2 extension of targeted query generation
// [11]: each round discretises every predicate's refinement range into
// GridK candidate values, executes ALL GridK^d combinations as whole
// queries, picks the combination with the smallest aggregate error, and
// zooms the per-predicate ranges around it for the next round.
//
// The per-round cost is exponential in dimensionality — the defining
// characteristic Figure 9.a measures ("for TQGen, we see an exponential
// increase in the execution time") — while the final error is very low
// (Figure 8.b: "TQGen, in fact, produces lower error rates than
// ACQUIRE... at the cost of a 100X increase in execution time").
// Refinement proximity is not an objective (Figure 8.c), so the method
// reports whatever refinement its best combination happens to carry.
func TQGen(e exec.Evaluator, q *relq.Query, opts TQGenOptions) (*Outcome, error) {
	return TQGenContext(context.Background(), e, q, opts)
}

// TQGenContext is TQGen with cancellation, checked at every grid-cell
// execution — essential here, since a single round issues GridK^d
// whole queries.
func TQGenContext(ctx context.Context, e exec.Evaluator, q *relq.Query, opts TQGenOptions) (*Outcome, error) {
	sp := e.Observer().StartPhase("baseline_tqgen")
	defer sp.End()
	opts = opts.withDefaults()
	spec, err := agg.SpecFor(q.Constraint)
	if err != nil {
		return nil, err
	}
	errFn := agg.DefaultError(q.Constraint)
	limits, err := maxScores(e, q)
	if err != nil {
		return nil, err
	}

	before := e.Snapshot()
	d := len(q.Dims)
	target := q.Constraint.Target

	lo := make([]float64, d)
	hi := append([]float64(nil), limits...)

	best := math.Inf(1)
	bestScores := make([]float64, d)
	bestVal := math.NaN()

	scores := make([]float64, d)
	idx := make([]int, d)

	// Like BinSearch, the schedule is fixed (§8.4.1: execution time is
	// constant across ratios): every round executes the full k^d grid.
	for round := 0; round < opts.Rounds; round++ {
		// Candidate values per dimension this round.
		cands := make([][]float64, d)
		for i := 0; i < d; i++ {
			cands[i] = gridValues(lo[i], hi[i], opts.GridK)
		}

		// Execute every combination (k^d whole queries).
		for i := range idx {
			idx[i] = 0
		}
		for {
			for i := 0; i < d; i++ {
				scores[i] = cands[i][idx[i]]
			}
			val, err := evalAt(ctx, e, q, spec, scores)
			if err != nil {
				return nil, err
			}
			if ev := errFn(target, val); ev < best {
				best = ev
				copy(bestScores, scores)
				bestVal = val
			}
			// Odometer.
			i := d - 1
			for i >= 0 {
				idx[i]++
				if idx[i] < len(cands[i]) {
					break
				}
				idx[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}

		// Zoom: shrink each range around the best value.
		for i := 0; i < d; i++ {
			span := (hi[i] - lo[i]) / float64(opts.GridK)
			c := bestScores[i]
			lo[i] = math.Max(0, c-span)
			hi[i] = math.Min(limits[i], c+span)
		}
	}

	after := e.Snapshot()
	return &Outcome{
		Method:     "TQGen",
		Satisfied:  best <= opts.Delta,
		Aggregate:  bestVal,
		Err:        best,
		Scores:     append([]float64(nil), bestScores...),
		QScore:     l1(bestScores),
		Executions: after.Queries - before.Queries,
	}, nil
}

func gridValues(lo, hi float64, k int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	if k < 2 {
		return []float64{(lo + hi) / 2}
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(k-1)
	}
	return out
}
