package baseline

import (
	"context"
	"fmt"
	"sort"

	"acquire/internal/exec"
	"acquire/internal/relq"
)

// TopK implements the §8.2 Top-k extension: rank every tuple by its
// normalized violation of the refinable predicates —
//
//	ORDER BY (case when (x <= b1) then 0 else (x-b1)/(x.max-x.min)) +
//	         (case when (y <= b2) then 0 else (y-b2)/(y.max-y.min)) ...
//	LIMIT A_exp
//
// — and take the A_exp best. The whole table is scanned and sorted
// regardless of how little refinement is needed (the ranking function
// never changes), which is exactly the constant-cost profile of
// Figure 8.a. Only COUNT constraints translate to Top-k, and join
// predicates cannot be refined (§8.2); both are enforced.
//
// Top-k returns tuples, not a query; its induced refinement — the
// bounding expansion that would admit the selected set — is reported so
// Figures 8.c/9.c can compare refinement quality. Its aggregate error
// is 0 by construction ("a Top-k query explicitly specifies the number
// of tuples to return", §8.4.1) whenever enough tuples exist.
func TopK(e exec.Evaluator, q *relq.Query) (*Outcome, error) {
	return TopKContext(context.Background(), e, q)
}

// TopKContext is TopK with cancellation, checked before the scan and
// before the sort (the two expensive phases).
func TopKContext(ctx context.Context, e exec.Evaluator, q *relq.Query) (*Outcome, error) {
	sp := e.Observer().StartPhase("baseline_topk")
	defer sp.End()
	if q.Constraint.Func != relq.AggCount {
		return nil, fmt.Errorf("baseline: Top-k supports only COUNT constraints, got %s", q.Constraint.Func)
	}
	for i := range q.Dims {
		if q.Dims[i].Kind == relq.JoinBand {
			return nil, fmt.Errorf("baseline: Top-k cannot refine join predicates")
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	before := e.Snapshot()
	rows, err := e.ViolationScan(q)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := int(q.Constraint.Target)

	// Rank by total violation (the ORDER BY key), precomputed once so
	// the sort compares plain floats; ties break on row id so the
	// result is deterministic.
	keys := make([]float64, len(rows))
	perm := make([]int32, len(rows))
	for i := range rows {
		keys[i] = l1(rows[i].Viol)
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		i, j := perm[a], perm[b]
		if keys[i] != keys[j] {
			return keys[i] < keys[j]
		}
		return rows[i].Row < rows[j].Row
	})
	if k > len(rows) {
		k = len(rows)
	}
	selected := make([]exec.RowViolations, k)
	for i := 0; i < k; i++ {
		selected[i] = rows[perm[i]]
	}

	// Induced refinement: per-dimension maximum violation across the
	// selected tuples (the tightest refined query admitting them all).
	scores := make([]float64, len(q.Dims))
	for _, r := range selected {
		for i, v := range r.Viol {
			if v > scores[i] {
				scores[i] = v
			}
		}
	}

	out := &Outcome{
		Method:    "Top-k",
		Aggregate: float64(len(selected)),
		Scores:    scores,
		QScore:    l1(scores),
	}
	if len(selected) == int(q.Constraint.Target) {
		out.Satisfied = true
		out.Err = 0
	} else {
		out.Err = (q.Constraint.Target - float64(len(selected))) / q.Constraint.Target
	}
	after := e.Snapshot()
	out.Executions = after.Queries - before.Queries
	return out, nil
}
