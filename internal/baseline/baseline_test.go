package baseline

import (
	"math"
	"testing"

	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/relq"
)

// lineEngine builds t(x, y) where x = 1..n and y = n..1, so
// COUNT(x <= a AND y <= b) is computable by hand and the two
// dimensions pull in opposite directions.
func lineEngine(t testing.TB, n int) *exec.Engine {
	t.Helper()
	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
	))
	for i := 1; i <= n; i++ {
		if err := tbl.AppendRow(data.FloatValue(float64(i)), data.FloatValue(float64(n+1-i))); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return exec.New(cat)
}

func leDim(col string, bound float64) relq.Dimension {
	return relq.Dimension{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: col}, Bound: bound, Width: 100}
}

func countQuery(target float64, dims ...relq.Dimension) *relq.Query {
	return &relq.Query{
		Tables:     []string{"t"},
		Dims:       dims,
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: target},
	}
}

func TestTopK(t *testing.T) {
	e := lineEngine(t, 100)
	// x <= 10 admits rows 1..10 with violation 0; target 25 selects the
	// 25 least-violating rows (x = 1..25).
	q := countQuery(25, leDim("x", 10))
	out, err := TopK(e, q)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if !out.Satisfied || out.Aggregate != 25 || out.Err != 0 {
		t.Errorf("outcome = %+v", out)
	}
	// Induced refinement: row x=25 violates by 15 (Width 100).
	if math.Abs(out.Scores[0]-15) > 1e-9 {
		t.Errorf("induced refinement = %v, want 15", out.Scores[0])
	}
	if out.Executions != 1 {
		t.Errorf("executions = %d, want 1 (single ranked scan)", out.Executions)
	}
}

func TestTopKShortTable(t *testing.T) {
	e := lineEngine(t, 10)
	q := countQuery(50, leDim("x", 5))
	out, err := TopK(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfied || out.Aggregate != 10 {
		t.Errorf("short table outcome = %+v", out)
	}
	if out.Err <= 0 {
		t.Errorf("err = %v, want positive undershoot", out.Err)
	}
}

func TestTopKRejections(t *testing.T) {
	e := lineEngine(t, 10)
	sum := countQuery(5, leDim("x", 5))
	sum.Constraint = relq.Constraint{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "t", Column: "x"}, Op: relq.CmpGE, Target: 5}
	if _, err := TopK(e, sum); err == nil {
		t.Error("SUM constraint: expected error")
	}
	jq := &relq.Query{
		Tables: []string{"t"},
		Dims: []relq.Dimension{
			{Kind: relq.JoinBand, Left: relq.ColumnRef{Table: "t", Column: "x"}, Right: relq.ColumnRef{Table: "u", Column: "x"}, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 5},
	}
	if _, err := TopK(e, jq); err == nil {
		t.Error("join refinement: expected error")
	}
}

func TestBinSearchConverges(t *testing.T) {
	e := lineEngine(t, 1000)
	q := countQuery(400, leDim("x", 100))
	out, err := BinSearch(e, q, BinSearchOptions{Delta: 0.01})
	if err != nil {
		t.Fatalf("BinSearch: %v", err)
	}
	if !out.Satisfied {
		t.Fatalf("outcome = %+v", out)
	}
	if math.Abs(out.Aggregate-400) > 400*0.01 {
		t.Errorf("aggregate = %v, want 400±1%%", out.Aggregate)
	}
	// One predicate: refinement should land near 300 score units.
	if math.Abs(out.Scores[0]-300) > 20 {
		t.Errorf("scores = %v, want ≈300", out.Scores)
	}
}

func TestBinSearchOrderSensitivity(t *testing.T) {
	e := lineEngine(t, 1000)
	// x <= 100 (count 100), y <= 0 (count 0 alone). Joint count of
	// (x <= a, y <= b): rows i with i <= a and 1001-i <= b, i.e.
	// max(0, min(a, 1000) - (1001-b) + 1).
	q := countQuery(300, leDim("x", 100), leDim("y", 0))
	first, err := BinSearch(e, q, BinSearchOptions{Delta: 0.01, Order: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	second, err := BinSearch(e, q, BinSearchOptions{Delta: 0.01, Order: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Both run; the refinements they produce differ with order —
	// the §8.4.1 instability in miniature.
	if first.QScore == second.QScore && first.Err == second.Err {
		t.Logf("orders coincidentally agreed: %+v vs %+v", first, second)
	}
	if !first.Satisfied && !second.Satisfied {
		t.Errorf("neither order satisfied: %+v %+v", first, second)
	}
}

func TestBinSearchValidation(t *testing.T) {
	e := lineEngine(t, 10)
	q := countQuery(5, leDim("x", 5))
	if _, err := BinSearch(e, q, BinSearchOptions{Order: []int{0, 1}}); err == nil {
		t.Error("order arity: expected error")
	}
	if _, err := BinSearch(e, q, BinSearchOptions{Order: []int{5}}); err == nil {
		t.Error("order out of range: expected error")
	}
}

func TestBinSearchUnreachableTarget(t *testing.T) {
	e := lineEngine(t, 100)
	q := countQuery(1e6, leDim("x", 10))
	out, err := BinSearch(e, q, BinSearchOptions{Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfied {
		t.Errorf("cannot satisfy: %+v", out)
	}
	if out.Aggregate != 100 {
		t.Errorf("closest aggregate = %v, want 100 (full expansion)", out.Aggregate)
	}
}

func TestTQGenConverges(t *testing.T) {
	e := lineEngine(t, 1000)
	q := countQuery(400, leDim("x", 100))
	out, err := TQGen(e, q, TQGenOptions{Delta: 0.01})
	if err != nil {
		t.Fatalf("TQGen: %v", err)
	}
	if !out.Satisfied {
		t.Fatalf("outcome = %+v", out)
	}
	if math.Abs(out.Aggregate-400) > 400*0.01 {
		t.Errorf("aggregate = %v", out.Aggregate)
	}
}

func TestTQGenExponentialExecutions(t *testing.T) {
	e := lineEngine(t, 200)
	one := countQuery(150, leDim("x", 100))
	two := countQuery(150, leDim("x", 100), leDim("y", 100))
	o1, err := TQGen(e, one, TQGenOptions{Delta: 1e-9, GridK: 4, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := TQGen(e, two, TQGenOptions{Delta: 1e-9, GridK: 4, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	// k^d per round: 4 vs 16 (Figure 9.a's exponential growth).
	if o2.Executions < 3*o1.Executions {
		t.Errorf("executions %d vs %d: expected k^d growth", o1.Executions, o2.Executions)
	}
}

func TestTQGenGridValues(t *testing.T) {
	vs := gridValues(0, 10, 5)
	if len(vs) != 5 || vs[0] != 0 || vs[4] != 10 {
		t.Errorf("gridValues = %v", vs)
	}
	if vs := gridValues(3, 3, 5); len(vs) != 1 || vs[0] != 3 {
		t.Errorf("degenerate gridValues = %v", vs)
	}
	if vs := gridValues(0, 10, 1); len(vs) != 1 || vs[0] != 5 {
		t.Errorf("k=1 gridValues = %v", vs)
	}
}

func TestOutcomesComparableAcrossMethods(t *testing.T) {
	e := lineEngine(t, 500)
	q := countQuery(200, leDim("x", 50))
	delta := 0.05

	topk, err := TopK(e, q)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := BinSearch(e, q, BinSearchOptions{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	tq, err := TQGen(e, q, TQGenOptions{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*Outcome{topk, bs, tq} {
		if !o.Satisfied {
			t.Errorf("%s failed to satisfy an easy target: %+v", o.Method, o)
		}
		if len(o.Scores) != 1 {
			t.Errorf("%s scores = %v", o.Method, o.Scores)
		}
	}
	// TQGen executes far more queries than BinSearch (§8.4.1).
	if tq.Executions <= bs.Executions {
		t.Errorf("TQGen executions %d should exceed BinSearch %d", tq.Executions, bs.Executions)
	}
}
