// Package baseline implements the three comparison techniques of §8.2,
// each extended as the paper describes to address the ACQ problem, and
// each running against the same exec.Evaluator evaluation layer as
// ACQUIRE so execution-time comparisons count identical work:
//
//   - Top-k: ORDER BY the normalized-violation expression LIMIT A_exp
//     (tuple-oriented; COUNT only; no join refinement; no query output).
//   - BinSearch [Mishra, Koudas, Zuzarte; SIGMOD'08]: per-predicate
//     binary search toward the target cardinality, sensitive to
//     predicate order.
//   - TQGen [same source]: iterative grid search over predicate-value
//     combinations, executing k^d whole queries per zoom round.
package baseline

import (
	"context"
	"fmt"
	"math"

	"acquire/internal/agg"
	"acquire/internal/exec"
	"acquire/internal/relq"
)

// Outcome is the uniform result record the harness compares across
// methods.
type Outcome struct {
	// Method names the technique.
	Method string
	// Satisfied reports whether the aggregate landed within δ.
	Satisfied bool
	// Aggregate is the attained aggregate value.
	Aggregate float64
	// Err is the aggregate error against the constraint target.
	Err float64
	// Scores is the induced per-dimension refinement (PScore units);
	// nil when the method does not produce a refined query (Top-k
	// produces tuples, and its induced refinement is the bounding
	// expansion of the selected set).
	Scores []float64
	// QScore is the L1 refinement score of Scores — the paper's
	// cross-method comparison metric (Figures 8.c, 9.c).
	QScore float64
	// Executions counts evaluation-layer query executions.
	Executions int64
}

func l1(scores []float64) float64 {
	s := 0.0
	for _, v := range scores {
		s += v
	}
	return s
}

// maxScores computes each dimension's domain-spanning refinement score,
// shared search-bound logic for BinSearch and TQGen.
func maxScores(e exec.Evaluator, q *relq.Query) ([]float64, error) {
	cat := e.Catalog()
	stats := func(ref relq.ColumnRef) (minV, maxV float64, err error) {
		t, err := cat.Table(ref.Table)
		if err != nil {
			return 0, 0, err
		}
		ord := t.Schema().Ordinal(ref.Column)
		if ord < 0 {
			return 0, 0, fmt.Errorf("baseline: table %s has no column %q", ref.Table, ref.Column)
		}
		s, err := t.Stats(ord)
		if err != nil {
			return 0, 0, err
		}
		return s.Min, s.Max, nil
	}
	out := make([]float64, len(q.Dims))
	for i := range q.Dims {
		d := &q.Dims[i]
		switch d.Kind {
		case relq.SelectLE:
			_, maxV, err := stats(d.Col)
			if err != nil {
				return nil, err
			}
			out[i] = d.Violation(maxV)
		case relq.SelectGE:
			minV, _, err := stats(d.Col)
			if err != nil {
				return nil, err
			}
			out[i] = d.Violation(minV)
		case relq.SelectEQ:
			minV, maxV, err := stats(d.Col)
			if err != nil {
				return nil, err
			}
			out[i] = math.Max(d.Violation(minV), d.Violation(maxV))
		case relq.JoinBand:
			lMin, lMax, err := stats(d.Left)
			if err != nil {
				return nil, err
			}
			rMin, rMax, err := stats(d.Right)
			if err != nil {
				return nil, err
			}
			out[i] = math.Max(d.JoinViolation(lMax, rMin), d.JoinViolation(lMin, rMax))
		}
	}
	return out, nil
}

// evalAt executes the whole refined query at the score vector and
// returns the aggregate value. Every baseline probe passes through
// here, so the context check makes all three methods cancellable at
// probe granularity.
func evalAt(ctx context.Context, e exec.Evaluator, q *relq.Query, spec agg.Spec, scores []float64) (float64, error) {
	parts, err := e.AggregateBatch(ctx, q, []relq.Region{relq.PrefixRegion(scores)})
	if err != nil {
		return 0, err
	}
	return spec.Final(parts[0]), nil
}
