// Package histogram implements the estimation evaluation layer of §3:
// per-column equi-depth histograms answer COUNT-constrained refinement
// searches without touching the data at query time, under the textbook
// attribute-independence assumption. Estimation error is bounded by
// bucket resolution; the search's δ threshold must be read against it.
package histogram

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"acquire/internal/agg"
	"acquire/internal/data"
	"acquire/internal/relq"
)

// Histogram is an equi-depth (equal-frequency) histogram of one
// numeric column.
type Histogram struct {
	// bounds[i] .. bounds[i+1] delimit bucket i (len = buckets + 1).
	bounds []float64
	// counts[i] is the number of rows in bucket i.
	counts []float64
	total  float64
}

// BuildColumn builds an equi-depth histogram with the given bucket
// count.
func BuildColumn(t *data.Table, column string, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histogram: buckets must be >= 1, got %d", buckets)
	}
	ord := t.Schema().Ordinal(column)
	if ord < 0 {
		return nil, fmt.Errorf("histogram: table %s has no column %q", t.Name(), column)
	}
	vec, err := t.NumericColumn(ord)
	if err != nil {
		return nil, err
	}
	if len(vec) == 0 {
		return nil, fmt.Errorf("histogram: table %s is empty", t.Name())
	}
	sorted := append([]float64(nil), vec...)
	sort.Float64s(sorted)

	h := &Histogram{total: float64(len(sorted))}
	n := len(sorted)
	if buckets > n {
		buckets = n
	}
	h.bounds = append(h.bounds, sorted[0])
	prevIdx := 0
	for b := 1; b <= buckets; b++ {
		idx := b * n / buckets
		if idx <= prevIdx {
			continue
		}
		h.bounds = append(h.bounds, sorted[idx-1])
		h.counts = append(h.counts, float64(idx-prevIdx))
		prevIdx = idx
	}
	return h, nil
}

// SelectivityLE estimates P(v <= x) with linear interpolation inside
// the bucket containing x.
func (h *Histogram) SelectivityLE(x float64) float64 {
	if x < h.bounds[0] {
		return 0
	}
	if x >= h.bounds[len(h.bounds)-1] {
		return 1
	}
	acc := 0.0
	for i, c := range h.counts {
		lo, hi := h.bounds[i], h.bounds[i+1]
		if x >= hi {
			acc += c
			continue
		}
		if hi > lo {
			acc += c * (x - lo) / (hi - lo)
		}
		break
	}
	return acc / h.total
}

// SelectivityRange estimates P(lo <= v <= hi).
func (h *Histogram) SelectivityRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	s := h.SelectivityLE(hi) - h.SelectivityLE(lo)
	if s < 0 {
		return 0
	}
	return s
}

// Evaluator is a core.Evaluator answering COUNT aggregates from
// histograms: estimated count = |T| · Π_i selectivity(pred_i), the
// independence assumption. Equi-joins are estimated with the textbook
// containment formula |R ⋈ S| ≈ |R|·|S| / max(V(R.k), V(S.k)) using
// exact per-column distinct counts; refinable join bands are not
// estimable (their selectivity needs the joint key distribution).
type Evaluator struct {
	cat   *data.Catalog
	hists map[string]map[string]*Histogram // table -> column -> histogram
	// Estimates counts estimator invocations (the analogue of engine
	// query executions). Updated atomically so concurrent searches over
	// one evaluator stay race-free; read it with Estimates.Load().
	Estimates atomic.Int64
}

// NewEvaluator builds histograms (with the given bucket count) for
// every numeric column of every table in the catalog.
func NewEvaluator(cat *data.Catalog, buckets int) (*Evaluator, error) {
	ev := &Evaluator{cat: cat, hists: make(map[string]map[string]*Histogram)}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		cols := make(map[string]*Histogram)
		for _, c := range t.Schema().Columns {
			if !c.Type.Numeric() {
				continue
			}
			h, err := BuildColumn(t, c.Name, buckets)
			if err != nil {
				return nil, err
			}
			cols[strings.ToLower(c.Name)] = h
		}
		ev.hists[strings.ToLower(name)] = cols
	}
	return ev, nil
}

// Catalog implements core.Evaluator.
func (ev *Evaluator) Catalog() *data.Catalog { return ev.cat }

// AggregateBatch implements core.Evaluator. Estimation never touches
// the data, so each region costs microseconds and a serial loop with a
// per-region cancellation check beats spawning workers.
func (ev *Evaluator) AggregateBatch(ctx context.Context, q *relq.Query, regions []relq.Region) ([]agg.Partial, error) {
	out := make([]agg.Partial, len(regions))
	for i, r := range regions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := ev.Aggregate(q, r)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Aggregate implements core.Evaluator for COUNT queries over
// conjunctive selections and NOREFINE equi-joins.
func (ev *Evaluator) Aggregate(q *relq.Query, region relq.Region) (agg.Partial, error) {
	if q.Constraint.Func != relq.AggCount {
		return agg.Zero(), fmt.Errorf("histogram: only COUNT constraints are estimable, got %s", q.Constraint.Func)
	}
	if len(region) != len(q.Dims) {
		return agg.Zero(), fmt.Errorf("histogram: region has %d dims, query has %d", len(region), len(q.Dims))
	}
	hist := func(ref relq.ColumnRef) (*Histogram, error) {
		cols, ok := ev.hists[strings.ToLower(ref.Table)]
		if !ok {
			return nil, fmt.Errorf("histogram: no statistics for table %q", ref.Table)
		}
		h, ok := cols[strings.ToLower(ref.Column)]
		if !ok {
			return nil, fmt.Errorf("histogram: no statistics for column %s", ref)
		}
		return h, nil
	}
	ev.Estimates.Add(1)

	// Cross-product size, then multiply selectivities and divide by
	// join key diversity (containment assumption).
	sel := 1.0
	cross := 1.0
	for _, name := range q.Tables {
		t, err := ev.cat.Table(name)
		if err != nil {
			return agg.Zero(), err
		}
		cross *= float64(t.NumRows())
	}

	distinct := func(ref relq.ColumnRef) (float64, error) {
		t, err := ev.cat.Table(ref.Table)
		if err != nil {
			return 0, err
		}
		ord := t.Schema().Ordinal(ref.Column)
		if ord < 0 {
			return 0, fmt.Errorf("histogram: table %s has no column %q", ref.Table, ref.Column)
		}
		st, err := t.Stats(ord)
		if err != nil {
			return 0, err
		}
		return math.Max(float64(st.Distinct), 1), nil
	}

	for i := range q.Fixed {
		p := &q.Fixed[i]
		switch p.Kind {
		case relq.FixedRange:
			h, err := hist(p.Col)
			if err != nil {
				return agg.Zero(), err
			}
			sel *= h.SelectivityRange(p.Lo, p.Hi)
		case relq.FixedStringIn:
			// No string statistics: assume the filter keeps everything
			// (a conservative over-estimate, reported in docs).
		case relq.FixedEquiJoin:
			vl, err := distinct(p.Left)
			if err != nil {
				return agg.Zero(), err
			}
			vr, err := distinct(p.Right)
			if err != nil {
				return agg.Zero(), err
			}
			sel /= math.Max(vl, vr)
		default:
			return agg.Zero(), fmt.Errorf("histogram: unsupported fixed predicate for estimation")
		}
	}
	for i := range q.Dims {
		d := &q.Dims[i]
		h, err := hist(d.Col)
		if err != nil {
			return agg.Zero(), err
		}
		iv := region[i]
		if iv.Hi < 0 {
			return agg.Zero(), nil
		}
		var s float64
		switch d.Kind {
		case relq.SelectLE:
			hiB := d.BoundAt(iv.Hi)
			loB := math.Inf(-1)
			if iv.Lo >= 0 {
				loB = d.BoundAt(iv.Lo)
			}
			s = h.SelectivityRange(loB, hiB)
		case relq.SelectGE:
			loB := d.BoundAt(iv.Hi)
			hiB := math.Inf(1)
			if iv.Lo >= 0 {
				hiB = d.BoundAt(iv.Lo)
			}
			s = h.SelectivityRange(loB, hiB)
		case relq.SelectEQ:
			bandHi := d.BoundAt(iv.Hi)
			if iv.Lo <= 0 {
				s = h.SelectivityRange(d.Bound-bandHi, d.Bound+bandHi)
			} else {
				bandLo := d.BoundAt(iv.Lo)
				s = h.SelectivityRange(d.Bound-bandHi, d.Bound-bandLo) +
					h.SelectivityRange(d.Bound+bandLo, d.Bound+bandHi)
			}
		default:
			return agg.Zero(), fmt.Errorf("histogram: join dimensions are not estimable")
		}
		sel *= s
	}

	est := sel * cross
	p := agg.Zero()
	p.Count = int64(math.Round(est))
	p.Sum = est // COUNT(*) steps feed 1 per row; keep Sum consistent
	return p, nil
}
