package histogram

import (
	"math"
	"math/rand"
	"testing"

	"acquire/internal/core"
	"acquire/internal/data"
	"acquire/internal/exec"
	"acquire/internal/relq"
)

func uniformTable(t *testing.T, n int, seed int64) *data.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := data.NewTable("t", data.MustSchema(
		data.Column{Name: "x", Type: data.Float64},
		data.Column{Name: "y", Type: data.Float64},
		data.Column{Name: "s", Type: data.String},
	))
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(
			data.FloatValue(rng.Float64()*100),
			data.FloatValue(rng.Float64()*100),
			data.StringValue("a"),
		); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestBuildColumnValidation(t *testing.T) {
	tbl := uniformTable(t, 100, 1)
	if _, err := BuildColumn(tbl, "x", 0); err == nil {
		t.Error("zero buckets: expected error")
	}
	if _, err := BuildColumn(tbl, "nope", 8); err == nil {
		t.Error("unknown column: expected error")
	}
	if _, err := BuildColumn(tbl, "s", 8); err == nil {
		t.Error("TEXT column: expected error")
	}
	empty := data.NewTable("e", data.MustSchema(data.Column{Name: "x", Type: data.Float64}))
	if _, err := BuildColumn(empty, "x", 8); err == nil {
		t.Error("empty table: expected error")
	}
}

func TestSelectivityAccuracy(t *testing.T) {
	tbl := uniformTable(t, 20000, 2)
	h, err := BuildColumn(tbl, "x", 64)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform [0, 100): P(x <= c) ≈ c/100.
	for _, c := range []float64{10, 25, 50, 75, 95} {
		got := h.SelectivityLE(c)
		if math.Abs(got-c/100) > 0.03 {
			t.Errorf("SelectivityLE(%v) = %v, want ≈%v", c, got, c/100)
		}
	}
	if h.SelectivityLE(-5) != 0 || h.SelectivityLE(500) != 1 {
		t.Error("boundary selectivities wrong")
	}
	if got := h.SelectivityRange(25, 75); math.Abs(got-0.5) > 0.03 {
		t.Errorf("SelectivityRange(25,75) = %v", got)
	}
	if h.SelectivityRange(75, 25) != 0 {
		t.Error("inverted range should be 0")
	}
}

func evaluatorFixture(t *testing.T, n int) (*Evaluator, *exec.Engine, *relq.Query) {
	t.Helper()
	tbl := uniformTable(t, n, 3)
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(cat, 64)
	if err != nil {
		t.Fatal(err)
	}
	q := &relq.Query{
		Tables: []string{"t"},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "x"}, Bound: 30, Width: 100},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "y"}, Bound: 30, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	return ev, exec.New(cat), q
}

func TestEvaluatorMatchesExactWithinTolerance(t *testing.T) {
	ev, eng, q := evaluatorFixture(t, 20000)
	for _, scores := range [][]float64{{0, 0}, {10, 5}, {30, 30}, {0, 50}} {
		region := relq.PrefixRegion(scores)
		est, err := ev.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := eng.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Count == 0 {
			continue
		}
		rel := math.Abs(float64(est.Count)-float64(exact.Count)) / float64(exact.Count)
		if rel > 0.10 {
			t.Errorf("scores %v: estimate %d vs exact %d (rel %v)", scores, est.Count, exact.Count, rel)
		}
	}
	if ev.Estimates.Load() == 0 {
		t.Error("Estimates counter not advanced")
	}
}

func TestEvaluatorDrivesACQUIRE(t *testing.T) {
	ev, eng, q := evaluatorFixture(t, 20000)
	// Estimation-driven refinement: no data is scanned during the
	// search; the returned query is then validated on the real engine.
	q.Constraint.Target = 4000
	res, err := core.Run(ev, q, core.Options{Gamma: 10, Delta: 0.05})
	if err != nil {
		t.Fatalf("estimation-driven Run: %v", err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: %+v", res)
	}
	// True aggregate of the recommended query is close to the target —
	// within δ plus the estimator's own tolerance.
	exact, err := eng.Aggregate(q, relq.PrefixRegion(res.Best.Scores))
	if err != nil {
		t.Fatal(err)
	}
	trueErr := math.Abs(float64(exact.Count)-4000) / 4000
	if trueErr > 0.05+0.10 {
		t.Errorf("true error %v too large (estimate said %v)", trueErr, res.Best.Aggregate)
	}
}

func TestEvaluatorRejections(t *testing.T) {
	ev, _, q := evaluatorFixture(t, 500)
	multi := &relq.Query{
		Tables:     []string{"t", "u"},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	if _, err := ev.Aggregate(multi, relq.Region{}); err == nil {
		t.Error("multi-table: expected error")
	}
	sum := q.Clone()
	sum.Constraint = relq.Constraint{Func: relq.AggSum, Attr: relq.ColumnRef{Table: "t", Column: "x"}, Op: relq.CmpGE, Target: 1}
	if _, err := ev.Aggregate(sum, relq.PrefixRegion([]float64{0, 0})); err == nil {
		t.Error("SUM: expected error")
	}
	if _, err := ev.Aggregate(q, relq.Region{}); err == nil {
		t.Error("region arity: expected error")
	}
	join := &relq.Query{
		Tables: []string{"t"},
		Dims: []relq.Dimension{
			{Kind: relq.JoinBand, Left: relq.ColumnRef{Table: "t", Column: "x"}, Right: relq.ColumnRef{Table: "u", Column: "x"}, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	if _, err := ev.Aggregate(join, relq.PrefixRegion([]float64{0})); err == nil {
		t.Error("join dim: expected error")
	}
	ghost := q.Clone()
	ghost.Dims[0].Col.Column = "ghost"
	if _, err := ev.Aggregate(ghost, relq.PrefixRegion([]float64{0, 0})); err == nil {
		t.Error("unknown column: expected error")
	}
}

func TestEvaluatorFixedPredicates(t *testing.T) {
	tbl := uniformTable(t, 10000, 5)
	cat := data.NewCatalog()
	if err := cat.Register(tbl); err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(cat, 64)
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.New(cat)
	q := &relq.Query{
		Tables: []string{"t"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedRange, Col: relq.ColumnRef{Table: "t", Column: "y"}, Lo: 20, Hi: 60},
			{Kind: relq.FixedStringIn, Col: relq.ColumnRef{Table: "t", Column: "s"}, Values: []string{"a"}},
		},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "t", Column: "x"}, Bound: 50, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	region := relq.PrefixRegion([]float64{0})
	est, err := ev.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := eng.Aggregate(q, region)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(float64(est.Count)-float64(exact.Count)) / float64(exact.Count)
	if rel > 0.10 {
		t.Errorf("estimate %d vs exact %d", est.Count, exact.Count)
	}
}

// Property: SelectivityLE is monotone non-decreasing.
func TestSelectivityMonotone(t *testing.T) {
	tbl := uniformTable(t, 5000, 7)
	h, err := BuildColumn(tbl, "x", 32)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for x := -10.0; x <= 110; x += 0.7 {
		s := h.SelectivityLE(x)
		if s < prev-1e-12 {
			t.Fatalf("selectivity decreased at %v: %v after %v", x, s, prev)
		}
		if s < 0 || s > 1 {
			t.Fatalf("selectivity out of range at %v: %v", x, s)
		}
		prev = s
	}
}

// Join estimation: the containment formula lands near the exact joined
// count on key-joined tables with independent filters.
func TestJoinEstimation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	nPart, fanout := 500, 4
	part := data.NewTable("part", data.MustSchema(
		data.Column{Name: "p_partkey", Type: data.Int64},
		data.Column{Name: "p_price", Type: data.Float64},
	))
	for i := 0; i < nPart; i++ {
		if err := part.AppendRow(data.IntValue(int64(i)), data.FloatValue(rng.Float64()*100)); err != nil {
			t.Fatal(err)
		}
	}
	ps := data.NewTable("partsupp", data.MustSchema(
		data.Column{Name: "ps_partkey", Type: data.Int64},
		data.Column{Name: "ps_qty", Type: data.Float64},
	))
	for i := 0; i < nPart; i++ {
		for j := 0; j < fanout; j++ {
			if err := ps.AppendRow(data.IntValue(int64(i)), data.FloatValue(rng.Float64()*100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cat := data.NewCatalog()
	for _, tb := range []*data.Table{part, ps} {
		if err := cat.Register(tb); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := NewEvaluator(cat, 64)
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.New(cat)

	q := &relq.Query{
		Tables: []string{"part", "partsupp"},
		Fixed: []relq.FixedPred{
			{Kind: relq.FixedEquiJoin,
				Left:  relq.ColumnRef{Table: "part", Column: "p_partkey"},
				Right: relq.ColumnRef{Table: "partsupp", Column: "ps_partkey"}},
		},
		Dims: []relq.Dimension{
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "part", Column: "p_price"}, Bound: 40, Width: 100},
			{Kind: relq.SelectLE, Col: relq.ColumnRef{Table: "partsupp", Column: "ps_qty"}, Bound: 60, Width: 100},
		},
		Constraint: relq.Constraint{Func: relq.AggCount, Op: relq.CmpEQ, Target: 1},
	}
	for _, scores := range [][]float64{{0, 0}, {20, 10}} {
		region := relq.PrefixRegion(scores)
		est, err := ev.Aggregate(q, region)
		if err != nil {
			t.Fatalf("estimate: %v", err)
		}
		exact, err := eng.Aggregate(q, region)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(est.Count)-float64(exact.Count)) / float64(exact.Count)
		if rel > 0.15 {
			t.Errorf("scores %v: estimate %d vs exact %d (rel %v)", scores, est.Count, exact.Count, rel)
		}
	}
}
